file(REMOVE_RECURSE
  "libparsyrk_support.a"
)
