# Empty dependencies file for parsyrk_support.
# This may be replaced when dependencies are built.
