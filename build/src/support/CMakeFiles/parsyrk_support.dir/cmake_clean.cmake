file(REMOVE_RECURSE
  "CMakeFiles/parsyrk_support.dir/cli.cpp.o"
  "CMakeFiles/parsyrk_support.dir/cli.cpp.o.d"
  "CMakeFiles/parsyrk_support.dir/prime.cpp.o"
  "CMakeFiles/parsyrk_support.dir/prime.cpp.o.d"
  "CMakeFiles/parsyrk_support.dir/table.cpp.o"
  "CMakeFiles/parsyrk_support.dir/table.cpp.o.d"
  "libparsyrk_support.a"
  "libparsyrk_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsyrk_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
