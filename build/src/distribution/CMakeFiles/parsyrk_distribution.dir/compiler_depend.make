# Empty compiler generated dependencies file for parsyrk_distribution.
# This may be replaced when dependencies are built.
