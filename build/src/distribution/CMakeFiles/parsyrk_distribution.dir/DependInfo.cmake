
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/distribution/render.cpp" "src/distribution/CMakeFiles/parsyrk_distribution.dir/render.cpp.o" "gcc" "src/distribution/CMakeFiles/parsyrk_distribution.dir/render.cpp.o.d"
  "/root/repo/src/distribution/triangle_block.cpp" "src/distribution/CMakeFiles/parsyrk_distribution.dir/triangle_block.cpp.o" "gcc" "src/distribution/CMakeFiles/parsyrk_distribution.dir/triangle_block.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/parsyrk_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
