file(REMOVE_RECURSE
  "libparsyrk_distribution.a"
)
