file(REMOVE_RECURSE
  "CMakeFiles/parsyrk_distribution.dir/render.cpp.o"
  "CMakeFiles/parsyrk_distribution.dir/render.cpp.o.d"
  "CMakeFiles/parsyrk_distribution.dir/triangle_block.cpp.o"
  "CMakeFiles/parsyrk_distribution.dir/triangle_block.cpp.o.d"
  "libparsyrk_distribution.a"
  "libparsyrk_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsyrk_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
