file(REMOVE_RECURSE
  "CMakeFiles/parsyrk_core.dir/cholesky.cpp.o"
  "CMakeFiles/parsyrk_core.dir/cholesky.cpp.o.d"
  "CMakeFiles/parsyrk_core.dir/distributed.cpp.o"
  "CMakeFiles/parsyrk_core.dir/distributed.cpp.o.d"
  "CMakeFiles/parsyrk_core.dir/memory.cpp.o"
  "CMakeFiles/parsyrk_core.dir/memory.cpp.o.d"
  "CMakeFiles/parsyrk_core.dir/session.cpp.o"
  "CMakeFiles/parsyrk_core.dir/session.cpp.o.d"
  "CMakeFiles/parsyrk_core.dir/symm.cpp.o"
  "CMakeFiles/parsyrk_core.dir/symm.cpp.o.d"
  "CMakeFiles/parsyrk_core.dir/syr2k.cpp.o"
  "CMakeFiles/parsyrk_core.dir/syr2k.cpp.o.d"
  "CMakeFiles/parsyrk_core.dir/syrk.cpp.o"
  "CMakeFiles/parsyrk_core.dir/syrk.cpp.o.d"
  "CMakeFiles/parsyrk_core.dir/syrk_internal.cpp.o"
  "CMakeFiles/parsyrk_core.dir/syrk_internal.cpp.o.d"
  "libparsyrk_core.a"
  "libparsyrk_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsyrk_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
