file(REMOVE_RECURSE
  "libparsyrk_core.a"
)
