
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cholesky.cpp" "src/core/CMakeFiles/parsyrk_core.dir/cholesky.cpp.o" "gcc" "src/core/CMakeFiles/parsyrk_core.dir/cholesky.cpp.o.d"
  "/root/repo/src/core/distributed.cpp" "src/core/CMakeFiles/parsyrk_core.dir/distributed.cpp.o" "gcc" "src/core/CMakeFiles/parsyrk_core.dir/distributed.cpp.o.d"
  "/root/repo/src/core/memory.cpp" "src/core/CMakeFiles/parsyrk_core.dir/memory.cpp.o" "gcc" "src/core/CMakeFiles/parsyrk_core.dir/memory.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/core/CMakeFiles/parsyrk_core.dir/session.cpp.o" "gcc" "src/core/CMakeFiles/parsyrk_core.dir/session.cpp.o.d"
  "/root/repo/src/core/symm.cpp" "src/core/CMakeFiles/parsyrk_core.dir/symm.cpp.o" "gcc" "src/core/CMakeFiles/parsyrk_core.dir/symm.cpp.o.d"
  "/root/repo/src/core/syr2k.cpp" "src/core/CMakeFiles/parsyrk_core.dir/syr2k.cpp.o" "gcc" "src/core/CMakeFiles/parsyrk_core.dir/syr2k.cpp.o.d"
  "/root/repo/src/core/syrk.cpp" "src/core/CMakeFiles/parsyrk_core.dir/syrk.cpp.o" "gcc" "src/core/CMakeFiles/parsyrk_core.dir/syrk.cpp.o.d"
  "/root/repo/src/core/syrk_internal.cpp" "src/core/CMakeFiles/parsyrk_core.dir/syrk_internal.cpp.o" "gcc" "src/core/CMakeFiles/parsyrk_core.dir/syrk_internal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/parsyrk_support.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/parsyrk_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/parsyrk_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/distribution/CMakeFiles/parsyrk_distribution.dir/DependInfo.cmake"
  "/root/repo/build/src/bounds/CMakeFiles/parsyrk_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/parsyrk_costmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
