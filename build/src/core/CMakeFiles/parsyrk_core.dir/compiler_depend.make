# Empty compiler generated dependencies file for parsyrk_core.
# This may be replaced when dependencies are built.
