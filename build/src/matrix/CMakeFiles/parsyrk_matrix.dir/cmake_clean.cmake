file(REMOVE_RECURSE
  "CMakeFiles/parsyrk_matrix.dir/factor.cpp.o"
  "CMakeFiles/parsyrk_matrix.dir/factor.cpp.o.d"
  "CMakeFiles/parsyrk_matrix.dir/io.cpp.o"
  "CMakeFiles/parsyrk_matrix.dir/io.cpp.o.d"
  "CMakeFiles/parsyrk_matrix.dir/kernels.cpp.o"
  "CMakeFiles/parsyrk_matrix.dir/kernels.cpp.o.d"
  "CMakeFiles/parsyrk_matrix.dir/matrix.cpp.o"
  "CMakeFiles/parsyrk_matrix.dir/matrix.cpp.o.d"
  "CMakeFiles/parsyrk_matrix.dir/packed.cpp.o"
  "CMakeFiles/parsyrk_matrix.dir/packed.cpp.o.d"
  "libparsyrk_matrix.a"
  "libparsyrk_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsyrk_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
