# Empty dependencies file for parsyrk_matrix.
# This may be replaced when dependencies are built.
