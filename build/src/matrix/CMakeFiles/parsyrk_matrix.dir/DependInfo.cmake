
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matrix/factor.cpp" "src/matrix/CMakeFiles/parsyrk_matrix.dir/factor.cpp.o" "gcc" "src/matrix/CMakeFiles/parsyrk_matrix.dir/factor.cpp.o.d"
  "/root/repo/src/matrix/io.cpp" "src/matrix/CMakeFiles/parsyrk_matrix.dir/io.cpp.o" "gcc" "src/matrix/CMakeFiles/parsyrk_matrix.dir/io.cpp.o.d"
  "/root/repo/src/matrix/kernels.cpp" "src/matrix/CMakeFiles/parsyrk_matrix.dir/kernels.cpp.o" "gcc" "src/matrix/CMakeFiles/parsyrk_matrix.dir/kernels.cpp.o.d"
  "/root/repo/src/matrix/matrix.cpp" "src/matrix/CMakeFiles/parsyrk_matrix.dir/matrix.cpp.o" "gcc" "src/matrix/CMakeFiles/parsyrk_matrix.dir/matrix.cpp.o.d"
  "/root/repo/src/matrix/packed.cpp" "src/matrix/CMakeFiles/parsyrk_matrix.dir/packed.cpp.o" "gcc" "src/matrix/CMakeFiles/parsyrk_matrix.dir/packed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/parsyrk_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
