file(REMOVE_RECURSE
  "libparsyrk_matrix.a"
)
