file(REMOVE_RECURSE
  "CMakeFiles/parsyrk_simmpi.dir/comm.cpp.o"
  "CMakeFiles/parsyrk_simmpi.dir/comm.cpp.o.d"
  "CMakeFiles/parsyrk_simmpi.dir/job_queue.cpp.o"
  "CMakeFiles/parsyrk_simmpi.dir/job_queue.cpp.o.d"
  "CMakeFiles/parsyrk_simmpi.dir/ledger.cpp.o"
  "CMakeFiles/parsyrk_simmpi.dir/ledger.cpp.o.d"
  "CMakeFiles/parsyrk_simmpi.dir/worker_pool.cpp.o"
  "CMakeFiles/parsyrk_simmpi.dir/worker_pool.cpp.o.d"
  "libparsyrk_simmpi.a"
  "libparsyrk_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsyrk_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
