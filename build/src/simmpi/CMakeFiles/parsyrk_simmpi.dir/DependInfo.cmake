
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simmpi/comm.cpp" "src/simmpi/CMakeFiles/parsyrk_simmpi.dir/comm.cpp.o" "gcc" "src/simmpi/CMakeFiles/parsyrk_simmpi.dir/comm.cpp.o.d"
  "/root/repo/src/simmpi/job_queue.cpp" "src/simmpi/CMakeFiles/parsyrk_simmpi.dir/job_queue.cpp.o" "gcc" "src/simmpi/CMakeFiles/parsyrk_simmpi.dir/job_queue.cpp.o.d"
  "/root/repo/src/simmpi/ledger.cpp" "src/simmpi/CMakeFiles/parsyrk_simmpi.dir/ledger.cpp.o" "gcc" "src/simmpi/CMakeFiles/parsyrk_simmpi.dir/ledger.cpp.o.d"
  "/root/repo/src/simmpi/worker_pool.cpp" "src/simmpi/CMakeFiles/parsyrk_simmpi.dir/worker_pool.cpp.o" "gcc" "src/simmpi/CMakeFiles/parsyrk_simmpi.dir/worker_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/parsyrk_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
