file(REMOVE_RECURSE
  "libparsyrk_simmpi.a"
)
