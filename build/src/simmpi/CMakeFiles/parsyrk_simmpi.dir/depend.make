# Empty dependencies file for parsyrk_simmpi.
# This may be replaced when dependencies are built.
