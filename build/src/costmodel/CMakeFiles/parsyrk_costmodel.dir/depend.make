# Empty dependencies file for parsyrk_costmodel.
# This may be replaced when dependencies are built.
