file(REMOVE_RECURSE
  "libparsyrk_costmodel.a"
)
