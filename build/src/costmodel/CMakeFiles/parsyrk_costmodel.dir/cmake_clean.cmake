file(REMOVE_RECURSE
  "CMakeFiles/parsyrk_costmodel.dir/algorithm_costs.cpp.o"
  "CMakeFiles/parsyrk_costmodel.dir/algorithm_costs.cpp.o.d"
  "libparsyrk_costmodel.a"
  "libparsyrk_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsyrk_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
