file(REMOVE_RECURSE
  "CMakeFiles/parsyrk_baseline.dir/gemm.cpp.o"
  "CMakeFiles/parsyrk_baseline.dir/gemm.cpp.o.d"
  "libparsyrk_baseline.a"
  "libparsyrk_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsyrk_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
