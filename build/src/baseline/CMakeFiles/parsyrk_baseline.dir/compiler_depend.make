# Empty compiler generated dependencies file for parsyrk_baseline.
# This may be replaced when dependencies are built.
