file(REMOVE_RECURSE
  "libparsyrk_baseline.a"
)
