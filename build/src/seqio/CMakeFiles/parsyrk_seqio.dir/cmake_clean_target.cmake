file(REMOVE_RECURSE
  "libparsyrk_seqio.a"
)
