# Empty dependencies file for parsyrk_seqio.
# This may be replaced when dependencies are built.
