file(REMOVE_RECURSE
  "CMakeFiles/parsyrk_seqio.dir/seq_cholesky.cpp.o"
  "CMakeFiles/parsyrk_seqio.dir/seq_cholesky.cpp.o.d"
  "CMakeFiles/parsyrk_seqio.dir/seq_syrk.cpp.o"
  "CMakeFiles/parsyrk_seqio.dir/seq_syrk.cpp.o.d"
  "libparsyrk_seqio.a"
  "libparsyrk_seqio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsyrk_seqio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
