file(REMOVE_RECURSE
  "CMakeFiles/parsyrk_sparse.dir/csr.cpp.o"
  "CMakeFiles/parsyrk_sparse.dir/csr.cpp.o.d"
  "CMakeFiles/parsyrk_sparse.dir/kernels.cpp.o"
  "CMakeFiles/parsyrk_sparse.dir/kernels.cpp.o.d"
  "CMakeFiles/parsyrk_sparse.dir/parallel.cpp.o"
  "CMakeFiles/parsyrk_sparse.dir/parallel.cpp.o.d"
  "libparsyrk_sparse.a"
  "libparsyrk_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsyrk_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
