# Empty dependencies file for parsyrk_sparse.
# This may be replaced when dependencies are built.
