file(REMOVE_RECURSE
  "libparsyrk_sparse.a"
)
