file(REMOVE_RECURSE
  "libparsyrk_bounds.a"
)
