file(REMOVE_RECURSE
  "CMakeFiles/parsyrk_bounds.dir/exhaustive.cpp.o"
  "CMakeFiles/parsyrk_bounds.dir/exhaustive.cpp.o.d"
  "CMakeFiles/parsyrk_bounds.dir/lemma3.cpp.o"
  "CMakeFiles/parsyrk_bounds.dir/lemma3.cpp.o.d"
  "CMakeFiles/parsyrk_bounds.dir/lemma4.cpp.o"
  "CMakeFiles/parsyrk_bounds.dir/lemma4.cpp.o.d"
  "CMakeFiles/parsyrk_bounds.dir/schedule_analysis.cpp.o"
  "CMakeFiles/parsyrk_bounds.dir/schedule_analysis.cpp.o.d"
  "CMakeFiles/parsyrk_bounds.dir/syr2k_bounds.cpp.o"
  "CMakeFiles/parsyrk_bounds.dir/syr2k_bounds.cpp.o.d"
  "CMakeFiles/parsyrk_bounds.dir/syrk_bounds.cpp.o"
  "CMakeFiles/parsyrk_bounds.dir/syrk_bounds.cpp.o.d"
  "libparsyrk_bounds.a"
  "libparsyrk_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsyrk_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
