# Empty dependencies file for parsyrk_bounds.
# This may be replaced when dependencies are built.
