
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bounds/exhaustive.cpp" "src/bounds/CMakeFiles/parsyrk_bounds.dir/exhaustive.cpp.o" "gcc" "src/bounds/CMakeFiles/parsyrk_bounds.dir/exhaustive.cpp.o.d"
  "/root/repo/src/bounds/lemma3.cpp" "src/bounds/CMakeFiles/parsyrk_bounds.dir/lemma3.cpp.o" "gcc" "src/bounds/CMakeFiles/parsyrk_bounds.dir/lemma3.cpp.o.d"
  "/root/repo/src/bounds/lemma4.cpp" "src/bounds/CMakeFiles/parsyrk_bounds.dir/lemma4.cpp.o" "gcc" "src/bounds/CMakeFiles/parsyrk_bounds.dir/lemma4.cpp.o.d"
  "/root/repo/src/bounds/schedule_analysis.cpp" "src/bounds/CMakeFiles/parsyrk_bounds.dir/schedule_analysis.cpp.o" "gcc" "src/bounds/CMakeFiles/parsyrk_bounds.dir/schedule_analysis.cpp.o.d"
  "/root/repo/src/bounds/syr2k_bounds.cpp" "src/bounds/CMakeFiles/parsyrk_bounds.dir/syr2k_bounds.cpp.o" "gcc" "src/bounds/CMakeFiles/parsyrk_bounds.dir/syr2k_bounds.cpp.o.d"
  "/root/repo/src/bounds/syrk_bounds.cpp" "src/bounds/CMakeFiles/parsyrk_bounds.dir/syrk_bounds.cpp.o" "gcc" "src/bounds/CMakeFiles/parsyrk_bounds.dir/syrk_bounds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/parsyrk_support.dir/DependInfo.cmake"
  "/root/repo/build/src/distribution/CMakeFiles/parsyrk_distribution.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
