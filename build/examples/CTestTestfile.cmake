# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_cholesky_qr]=] "/root/repo/build/examples/cholesky_qr")
set_tests_properties([=[example_cholesky_qr]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_covariance]=] "/root/repo/build/examples/covariance")
set_tests_properties([=[example_covariance]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_scaling_study]=] "/root/repo/build/examples/scaling_study")
set_tests_properties([=[example_scaling_study]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_normal_equations]=] "/root/repo/build/examples/normal_equations")
set_tests_properties([=[example_normal_equations]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_gram_svd]=] "/root/repo/build/examples/gram_svd")
set_tests_properties([=[example_gram_svd]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_spd_solve]=] "/root/repo/build/examples/spd_solve")
set_tests_properties([=[example_spd_solve]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_streaming_covariance]=] "/root/repo/build/examples/streaming_covariance")
set_tests_properties([=[example_streaming_covariance]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
