file(REMOVE_RECURSE
  "CMakeFiles/normal_equations.dir/normal_equations.cpp.o"
  "CMakeFiles/normal_equations.dir/normal_equations.cpp.o.d"
  "normal_equations"
  "normal_equations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/normal_equations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
