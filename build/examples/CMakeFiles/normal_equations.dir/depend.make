# Empty dependencies file for normal_equations.
# This may be replaced when dependencies are built.
