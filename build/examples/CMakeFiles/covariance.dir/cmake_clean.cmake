file(REMOVE_RECURSE
  "CMakeFiles/covariance.dir/covariance.cpp.o"
  "CMakeFiles/covariance.dir/covariance.cpp.o.d"
  "covariance"
  "covariance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
