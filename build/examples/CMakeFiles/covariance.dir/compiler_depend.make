# Empty compiler generated dependencies file for covariance.
# This may be replaced when dependencies are built.
