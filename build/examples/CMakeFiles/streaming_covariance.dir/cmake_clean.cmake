file(REMOVE_RECURSE
  "CMakeFiles/streaming_covariance.dir/streaming_covariance.cpp.o"
  "CMakeFiles/streaming_covariance.dir/streaming_covariance.cpp.o.d"
  "streaming_covariance"
  "streaming_covariance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_covariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
