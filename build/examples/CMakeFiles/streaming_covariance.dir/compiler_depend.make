# Empty compiler generated dependencies file for streaming_covariance.
# This may be replaced when dependencies are built.
