# Empty dependencies file for spd_solve.
# This may be replaced when dependencies are built.
