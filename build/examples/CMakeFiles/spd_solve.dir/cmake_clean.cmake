file(REMOVE_RECURSE
  "CMakeFiles/spd_solve.dir/spd_solve.cpp.o"
  "CMakeFiles/spd_solve.dir/spd_solve.cpp.o.d"
  "spd_solve"
  "spd_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spd_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
