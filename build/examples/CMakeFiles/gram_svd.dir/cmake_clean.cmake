file(REMOVE_RECURSE
  "CMakeFiles/gram_svd.dir/gram_svd.cpp.o"
  "CMakeFiles/gram_svd.dir/gram_svd.cpp.o.d"
  "gram_svd"
  "gram_svd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gram_svd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
