# Empty compiler generated dependencies file for gram_svd.
# This may be replaced when dependencies are built.
