# Empty compiler generated dependencies file for cholesky_qr.
# This may be replaced when dependencies are built.
