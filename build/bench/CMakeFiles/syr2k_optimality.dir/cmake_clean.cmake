file(REMOVE_RECURSE
  "CMakeFiles/syr2k_optimality.dir/syr2k_optimality.cpp.o"
  "CMakeFiles/syr2k_optimality.dir/syr2k_optimality.cpp.o.d"
  "syr2k_optimality"
  "syr2k_optimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syr2k_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
