# Empty compiler generated dependencies file for syr2k_optimality.
# This may be replaced when dependencies are built.
