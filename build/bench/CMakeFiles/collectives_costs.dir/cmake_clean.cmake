file(REMOVE_RECURSE
  "CMakeFiles/collectives_costs.dir/collectives_costs.cpp.o"
  "CMakeFiles/collectives_costs.dir/collectives_costs.cpp.o.d"
  "collectives_costs"
  "collectives_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collectives_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
