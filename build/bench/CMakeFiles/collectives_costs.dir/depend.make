# Empty dependencies file for collectives_costs.
# This may be replaced when dependencies are built.
