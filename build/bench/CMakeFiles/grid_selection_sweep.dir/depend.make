# Empty dependencies file for grid_selection_sweep.
# This may be replaced when dependencies are built.
