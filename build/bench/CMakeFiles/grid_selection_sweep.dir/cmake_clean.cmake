file(REMOVE_RECURSE
  "CMakeFiles/grid_selection_sweep.dir/grid_selection_sweep.cpp.o"
  "CMakeFiles/grid_selection_sweep.dir/grid_selection_sweep.cpp.o.d"
  "grid_selection_sweep"
  "grid_selection_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_selection_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
