# Empty dependencies file for lemma3_property_check.
# This may be replaced when dependencies are built.
