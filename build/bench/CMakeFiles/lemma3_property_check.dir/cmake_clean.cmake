file(REMOVE_RECURSE
  "CMakeFiles/lemma3_property_check.dir/lemma3_property_check.cpp.o"
  "CMakeFiles/lemma3_property_check.dir/lemma3_property_check.cpp.o.d"
  "lemma3_property_check"
  "lemma3_property_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma3_property_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
