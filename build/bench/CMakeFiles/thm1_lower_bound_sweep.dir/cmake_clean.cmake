file(REMOVE_RECURSE
  "CMakeFiles/thm1_lower_bound_sweep.dir/thm1_lower_bound_sweep.cpp.o"
  "CMakeFiles/thm1_lower_bound_sweep.dir/thm1_lower_bound_sweep.cpp.o.d"
  "thm1_lower_bound_sweep"
  "thm1_lower_bound_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm1_lower_bound_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
