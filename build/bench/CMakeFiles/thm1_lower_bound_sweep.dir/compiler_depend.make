# Empty compiler generated dependencies file for thm1_lower_bound_sweep.
# This may be replaced when dependencies are built.
