# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for thm1_lower_bound_sweep.
