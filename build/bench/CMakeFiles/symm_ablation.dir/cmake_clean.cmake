file(REMOVE_RECURSE
  "CMakeFiles/symm_ablation.dir/symm_ablation.cpp.o"
  "CMakeFiles/symm_ablation.dir/symm_ablation.cpp.o.d"
  "symm_ablation"
  "symm_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symm_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
