# Empty compiler generated dependencies file for symm_ablation.
# This may be replaced when dependencies are built.
