# Empty dependencies file for latency_ablation.
# This may be replaced when dependencies are built.
