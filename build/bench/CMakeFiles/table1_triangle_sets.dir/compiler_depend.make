# Empty compiler generated dependencies file for table1_triangle_sets.
# This may be replaced when dependencies are built.
