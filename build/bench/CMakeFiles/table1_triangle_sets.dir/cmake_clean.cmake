file(REMOVE_RECURSE
  "CMakeFiles/table1_triangle_sets.dir/table1_triangle_sets.cpp.o"
  "CMakeFiles/table1_triangle_sets.dir/table1_triangle_sets.cpp.o.d"
  "table1_triangle_sets"
  "table1_triangle_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_triangle_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
