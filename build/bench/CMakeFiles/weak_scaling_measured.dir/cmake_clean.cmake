file(REMOVE_RECURSE
  "CMakeFiles/weak_scaling_measured.dir/weak_scaling_measured.cpp.o"
  "CMakeFiles/weak_scaling_measured.dir/weak_scaling_measured.cpp.o.d"
  "weak_scaling_measured"
  "weak_scaling_measured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weak_scaling_measured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
