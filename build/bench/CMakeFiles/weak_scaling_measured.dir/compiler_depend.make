# Empty compiler generated dependencies file for weak_scaling_measured.
# This may be replaced when dependencies are built.
