file(REMOVE_RECURSE
  "CMakeFiles/fig2_distribution_2d.dir/fig2_distribution_2d.cpp.o"
  "CMakeFiles/fig2_distribution_2d.dir/fig2_distribution_2d.cpp.o.d"
  "fig2_distribution_2d"
  "fig2_distribution_2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_distribution_2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
