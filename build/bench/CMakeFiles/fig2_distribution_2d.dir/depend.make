# Empty dependencies file for fig2_distribution_2d.
# This may be replaced when dependencies are built.
