file(REMOVE_RECURSE
  "CMakeFiles/modeled_time_comparison.dir/modeled_time_comparison.cpp.o"
  "CMakeFiles/modeled_time_comparison.dir/modeled_time_comparison.cpp.o.d"
  "modeled_time_comparison"
  "modeled_time_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modeled_time_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
