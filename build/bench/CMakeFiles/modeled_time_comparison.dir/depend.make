# Empty dependencies file for modeled_time_comparison.
# This may be replaced when dependencies are built.
