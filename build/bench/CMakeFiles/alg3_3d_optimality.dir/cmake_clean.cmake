file(REMOVE_RECURSE
  "CMakeFiles/alg3_3d_optimality.dir/alg3_3d_optimality.cpp.o"
  "CMakeFiles/alg3_3d_optimality.dir/alg3_3d_optimality.cpp.o.d"
  "alg3_3d_optimality"
  "alg3_3d_optimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alg3_3d_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
