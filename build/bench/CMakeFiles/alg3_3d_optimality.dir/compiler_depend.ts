# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for alg3_3d_optimality.
