# Empty dependencies file for alg3_3d_optimality.
# This may be replaced when dependencies are built.
