file(REMOVE_RECURSE
  "CMakeFiles/seqio_triangle_blocking.dir/seqio_triangle_blocking.cpp.o"
  "CMakeFiles/seqio_triangle_blocking.dir/seqio_triangle_blocking.cpp.o.d"
  "seqio_triangle_blocking"
  "seqio_triangle_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seqio_triangle_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
