# Empty compiler generated dependencies file for seqio_triangle_blocking.
# This may be replaced when dependencies are built.
