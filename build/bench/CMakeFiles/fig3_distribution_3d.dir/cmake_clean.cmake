file(REMOVE_RECURSE
  "CMakeFiles/fig3_distribution_3d.dir/fig3_distribution_3d.cpp.o"
  "CMakeFiles/fig3_distribution_3d.dir/fig3_distribution_3d.cpp.o.d"
  "fig3_distribution_3d"
  "fig3_distribution_3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_distribution_3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
