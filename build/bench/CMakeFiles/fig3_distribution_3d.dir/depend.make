# Empty dependencies file for fig3_distribution_3d.
# This may be replaced when dependencies are built.
