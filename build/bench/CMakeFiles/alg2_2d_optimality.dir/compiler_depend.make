# Empty compiler generated dependencies file for alg2_2d_optimality.
# This may be replaced when dependencies are built.
