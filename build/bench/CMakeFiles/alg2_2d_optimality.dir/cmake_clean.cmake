file(REMOVE_RECURSE
  "CMakeFiles/alg2_2d_optimality.dir/alg2_2d_optimality.cpp.o"
  "CMakeFiles/alg2_2d_optimality.dir/alg2_2d_optimality.cpp.o.d"
  "alg2_2d_optimality"
  "alg2_2d_optimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alg2_2d_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
