# Empty compiler generated dependencies file for fig1_iteration_space.
# This may be replaced when dependencies are built.
