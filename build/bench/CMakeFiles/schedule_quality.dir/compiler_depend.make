# Empty compiler generated dependencies file for schedule_quality.
# This may be replaced when dependencies are built.
