file(REMOVE_RECURSE
  "CMakeFiles/schedule_quality.dir/schedule_quality.cpp.o"
  "CMakeFiles/schedule_quality.dir/schedule_quality.cpp.o.d"
  "schedule_quality"
  "schedule_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
