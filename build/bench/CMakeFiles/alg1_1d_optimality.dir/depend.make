# Empty dependencies file for alg1_1d_optimality.
# This may be replaced when dependencies are built.
