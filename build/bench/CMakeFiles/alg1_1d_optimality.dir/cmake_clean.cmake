file(REMOVE_RECURSE
  "CMakeFiles/alg1_1d_optimality.dir/alg1_1d_optimality.cpp.o"
  "CMakeFiles/alg1_1d_optimality.dir/alg1_1d_optimality.cpp.o.d"
  "alg1_1d_optimality"
  "alg1_1d_optimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alg1_1d_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
