file(REMOVE_RECURSE
  "CMakeFiles/executor_throughput.dir/executor_throughput.cpp.o"
  "CMakeFiles/executor_throughput.dir/executor_throughput.cpp.o.d"
  "executor_throughput"
  "executor_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
