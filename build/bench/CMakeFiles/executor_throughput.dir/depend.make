# Empty dependencies file for executor_throughput.
# This may be replaced when dependencies are built.
