file(REMOVE_RECURSE
  "CMakeFiles/load_balance_ablation.dir/load_balance_ablation.cpp.o"
  "CMakeFiles/load_balance_ablation.dir/load_balance_ablation.cpp.o.d"
  "load_balance_ablation"
  "load_balance_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_balance_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
