file(REMOVE_RECURSE
  "CMakeFiles/seq_cholesky_io.dir/seq_cholesky_io.cpp.o"
  "CMakeFiles/seq_cholesky_io.dir/seq_cholesky_io.cpp.o.d"
  "seq_cholesky_io"
  "seq_cholesky_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_cholesky_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
