# Empty compiler generated dependencies file for seq_cholesky_io.
# This may be replaced when dependencies are built.
