# Empty compiler generated dependencies file for syrk_vs_gemm_factor2.
# This may be replaced when dependencies are built.
