file(REMOVE_RECURSE
  "CMakeFiles/syrk_vs_gemm_factor2.dir/syrk_vs_gemm_factor2.cpp.o"
  "CMakeFiles/syrk_vs_gemm_factor2.dir/syrk_vs_gemm_factor2.cpp.o.d"
  "syrk_vs_gemm_factor2"
  "syrk_vs_gemm_factor2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syrk_vs_gemm_factor2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
