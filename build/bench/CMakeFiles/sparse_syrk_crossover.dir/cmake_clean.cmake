file(REMOVE_RECURSE
  "CMakeFiles/sparse_syrk_crossover.dir/sparse_syrk_crossover.cpp.o"
  "CMakeFiles/sparse_syrk_crossover.dir/sparse_syrk_crossover.cpp.o.d"
  "sparse_syrk_crossover"
  "sparse_syrk_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_syrk_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
