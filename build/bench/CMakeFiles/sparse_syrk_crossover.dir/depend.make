# Empty dependencies file for sparse_syrk_crossover.
# This may be replaced when dependencies are built.
