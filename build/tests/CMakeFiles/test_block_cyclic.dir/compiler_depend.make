# Empty compiler generated dependencies file for test_block_cyclic.
# This may be replaced when dependencies are built.
