file(REMOVE_RECURSE
  "CMakeFiles/test_seqio.dir/test_seqio.cpp.o"
  "CMakeFiles/test_seqio.dir/test_seqio.cpp.o.d"
  "test_seqio"
  "test_seqio.pdb"
  "test_seqio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seqio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
