# Empty compiler generated dependencies file for test_seqio.
# This may be replaced when dependencies are built.
