file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_cholesky.dir/test_parallel_cholesky.cpp.o"
  "CMakeFiles/test_parallel_cholesky.dir/test_parallel_cholesky.cpp.o.d"
  "test_parallel_cholesky"
  "test_parallel_cholesky.pdb"
  "test_parallel_cholesky[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_cholesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
