# Empty compiler generated dependencies file for test_parallel_cholesky.
# This may be replaced when dependencies are built.
