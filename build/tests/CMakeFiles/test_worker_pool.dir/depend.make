# Empty dependencies file for test_worker_pool.
# This may be replaced when dependencies are built.
