file(REMOVE_RECURSE
  "CMakeFiles/test_worker_pool.dir/test_worker_pool.cpp.o"
  "CMakeFiles/test_worker_pool.dir/test_worker_pool.cpp.o.d"
  "test_worker_pool"
  "test_worker_pool.pdb"
  "test_worker_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_worker_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
