
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_worker_pool.cpp" "tests/CMakeFiles/test_worker_pool.dir/test_worker_pool.cpp.o" "gcc" "tests/CMakeFiles/test_worker_pool.dir/test_worker_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/parsyrk_support.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/parsyrk_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/parsyrk_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/parsyrk_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/distribution/CMakeFiles/parsyrk_distribution.dir/DependInfo.cmake"
  "/root/repo/build/src/bounds/CMakeFiles/parsyrk_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/seqio/CMakeFiles/parsyrk_seqio.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/parsyrk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/parsyrk_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/parsyrk_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
