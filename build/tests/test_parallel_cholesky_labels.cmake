foreach(t IN LISTS test_parallel_cholesky_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "tier1")
endforeach()
