# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_costmodel[1]_include.cmake")
include("/root/repo/build/tests/test_simmpi[1]_include.cmake")
include("/root/repo/build/tests/test_distribution[1]_include.cmake")
include("/root/repo/build/tests/test_bounds[1]_include.cmake")
include("/root/repo/build/tests/test_seqio[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_factor[1]_include.cmake")
include("/root/repo/build/tests/test_block_cyclic[1]_include.cmake")
include("/root/repo/build/tests/test_simmpi_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_parallel_cholesky[1]_include.cmake")
include("/root/repo/build/tests/test_sparse[1]_include.cmake")
