foreach(t IN LISTS test_worker_pool_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "tier1;simmpi")
endforeach()
