foreach(t IN LISTS test_core_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "tier1")
endforeach()
