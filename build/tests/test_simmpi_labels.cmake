foreach(t IN LISTS test_simmpi_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "tier1;simmpi")
endforeach()
