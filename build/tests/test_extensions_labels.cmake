foreach(t IN LISTS test_extensions_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "tier1")
endforeach()
