foreach(t IN LISTS test_costmodel_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "tier1")
endforeach()
