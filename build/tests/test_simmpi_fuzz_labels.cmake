foreach(t IN LISTS test_simmpi_fuzz_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "tier1;simmpi")
endforeach()
