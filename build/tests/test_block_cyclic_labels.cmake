foreach(t IN LISTS test_block_cyclic_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "tier1")
endforeach()
