file(REMOVE_RECURSE
  "CMakeFiles/parsyrk.dir/parsyrk_cli.cpp.o"
  "CMakeFiles/parsyrk.dir/parsyrk_cli.cpp.o.d"
  "parsyrk"
  "parsyrk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsyrk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
