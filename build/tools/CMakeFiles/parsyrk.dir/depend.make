# Empty dependencies file for parsyrk.
# This may be replaced when dependencies are built.
