// trace_lint: offline SPMD trace verification.
//
// Replays committed PSYRKTRC golden traces (or any write_binary capture)
// through the same invariant engine the dynamic verifier uses — pair flow
// balance, tier balance, completeness — without executing anything.
//
//   trace_lint tests/golden/trace_1d.bin tests/golden/trace_2d.bin
//   trace_lint --ranks-per-node 4 capture.bin
//
// Exit status is 0 when every trace is coherent and 1 when any finding is
// reported (or a file cannot be read). Wired into ctest under the "lint"
// label and into tools/run_lint.
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/simmpi/trace.hpp"
#include "src/trace/export.hpp"
#include "src/verify/lint.hpp"

namespace {

using parsyrk::comm::JobTrace;
using parsyrk::comm::TraceDir;

/// Adapts a decoded JobTrace to the runtime-independent lint input. The
/// binary golden format does not persist topology metadata, so a flat
/// machine is assumed unless the caller overrides ranks_per_node.
parsyrk::verify::LintInput to_lint_input(const JobTrace& trace,
                                         int ranks_per_node) {
  parsyrk::verify::LintInput input;
  input.job = trace.job_id;
  input.ranks = static_cast<int>(trace.ranks);
  if (ranks_per_node > 0) {
    input.ranks_per_node = ranks_per_node;
  } else {
    input.ranks_per_node =
        trace.ranks_per_node > 0 ? static_cast<int>(trace.ranks_per_node) : 1;
  }
  input.dropped = trace.dropped != 0;
  input.events.reserve(trace.events.size());
  for (const auto& e : trace.events) {
    parsyrk::verify::LintEvent le;
    le.rank = e.rank;
    le.peer = e.peer;
    le.sent = e.dir == TraceDir::kSend;
    le.kind = static_cast<std::uint8_t>(e.kind);
    le.kind_name = parsyrk::comm::op_kind_name(e.kind);
    le.words = e.words;
    le.phase = trace.phase_name(e);
    input.events.push_back(std::move(le));
  }
  return input;
}

int lint_file(const std::string& path, int ranks_per_node) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) {
    std::cerr << "trace_lint: cannot open " << path << "\n";
    return 1;
  }
  JobTrace trace;
  try {
    trace = parsyrk::trace::read_binary(is);
  } catch (const std::exception& e) {
    std::cerr << "trace_lint: " << path << ": " << e.what() << "\n";
    return 1;
  }
  if (trace.poisoned) {
    // A poisoned job legitimately has unmatched sends (the failing rank
    // stopped receiving); balance findings would be noise, not defects.
    std::cout << path << ": SKIP (poisoned trace; " << trace.events.size()
              << " events not certifiable)\n";
    return 0;
  }
  const auto report =
      parsyrk::verify::lint_trace(to_lint_input(trace, ranks_per_node));
  if (report.empty()) {
    std::cout << path << ": OK (" << trace.events.size() << " events, "
              << trace.ranks << " ranks, " << trace.phases.size()
              << " phases)\n";
    return 0;
  }
  std::cerr << path << ": " << report.findings.size() << " finding(s)\n"
            << report.to_string();
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  int ranks_per_node = 0;  // 0 = honor the trace's own metadata (flat if none)
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ranks-per-node") == 0 && i + 1 < argc) {
      ranks_per_node = std::atoi(argv[++i]);
      continue;
    }
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::cout << "usage: trace_lint [--ranks-per-node N] trace.bin...\n";
      return 0;
    }
    paths.emplace_back(argv[i]);
  }
  if (paths.empty()) {
    std::cerr << "usage: trace_lint [--ranks-per-node N] trace.bin...\n";
    return 2;
  }
  int rc = 0;
  for (const auto& p : paths) rc |= lint_file(p, ranks_per_node);
  return rc;
}
