// parsyrk — command-line driver for the library.
//
// Runs any of the parallel kernels on a synthetic matrix, prints the plan,
// the measured per-phase communication, the matching lower bound, and
// verifies the result against the serial reference.
//
//   parsyrk --op syrk  --n1 144 --n2 96 --procs 12
//   parsyrk --op syrk  --n1 360 --n2 8  --procs 30 --algo 2d --c 5
//   parsyrk --op syr2k --n1 100 --n2 12 --procs 30 --algo 2d --c 5
//   parsyrk --op symm  --n1 100 --n2 12 --procs 30 --c 5
//   parsyrk --op bound --n1 1000 --n2 1000 --procs 4096
//   parsyrk --op syrk  --n1 128 --n2 2048 --procs 24 --audit
//   parsyrk --op syrk  --n1 144 --n2 96 --procs 12 --trace-out run.json
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <vector>

#include "bounds/syr2k_bounds.hpp"
#include "core/cholesky.hpp"
#include "core/memory.hpp"
#include "core/session.hpp"
#include "core/symm.hpp"
#include "core/syr2k.hpp"
#include "matrix/factor.hpp"
#include "matrix/io.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "service/service.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "trace/audit.hpp"
#include "trace/export.hpp"

using namespace parsyrk;

namespace {

int run_bound(std::uint64_t n1, std::uint64_t n2, std::uint64_t p) {
  const auto b = bounds::syrk_lower_bound(n1, n2, p);
  const auto b2 = bounds::syr2k_lower_bound(n1, n2, p);
  Table t({"kernel", "case", "W (data)", "communicated bound"});
  t.add_row({"SYRK", bounds::regime_name(b.regime), fmt_double(b.w, 8),
             fmt_double(b.communicated, 8)});
  t.add_row({"SYR2K", bounds::regime_name(b2.regime), fmt_double(b2.w, 8),
             fmt_double(b2.communicated, 8)});
  t.print(std::cout);
  return EXIT_SUCCESS;
}

void report(comm::World& world, double err, double bound_comm) {
  const auto total = world.ledger().summary();
  Table t({"phase", "max words/rank", "max msgs/rank"});
  for (const auto& phase : world.ledger().phases()) {
    const auto s = world.ledger().summary(phase);
    t.add_row({phase, std::to_string(s.max.words_sent),
               std::to_string(s.max.msgs_sent)});
  }
  t.add_row({"total", std::to_string(total.max.words_sent),
             std::to_string(total.max.msgs_sent)});
  t.print(std::cout);
  std::cout << "max |result - reference| = " << err << "\n";
  if (bound_comm > 0) {
    std::cout << "lower bound = " << fmt_double(bound_comm, 6)
              << " words; measured/bound = "
              << fmt_double(
                     static_cast<double>(total.critical_path_words()) /
                         bound_comm,
                     4)
              << "\n";
  }
}

/// Per-phase report for a unified-API run: request-scoped summaries.
int report_run(const core::SyrkRun& run, double err) {
  Table t({"phase", "max words/rank", "max msgs/rank"});
  const std::pair<const char*, const comm::CostSummary*> phases[] = {
      {"scatter_A", &run.scatter_a},
      {"gather_A", &run.gather_a},
      {"reduce_C", &run.reduce_c},
  };
  for (const auto& [name, s] : phases) {
    if (s->max.words_sent == 0 && s->max.msgs_sent == 0) continue;
    t.add_row({name, std::to_string(s->max.words_sent),
               std::to_string(s->max.msgs_sent)});
  }
  t.add_row({"total", std::to_string(run.total.max.words_sent),
             std::to_string(run.total.max.msgs_sent)});
  t.print(std::cout);
  std::cout << "max |result - reference| = " << err << "\n";
  if (run.bound.communicated > 0) {
    std::cout << "lower bound = " << fmt_double(run.bound.communicated, 6)
              << " words; measured/bound = "
              << fmt_double(
                     static_cast<double>(run.total.critical_path_words()) /
                         run.bound.communicated,
                     4)
              << "\n";
  }
  return err < 1e-8 ? EXIT_SUCCESS : EXIT_FAILURE;
}

/// --audit / --trace-out handling for a finished (traced) SYRK run.
/// Returns EXIT_FAILURE when the audit flags a violation.
int report_trace(const core::SyrkRun& run, std::uint64_t n1, std::uint64_t n2,
                 bool audit, const std::string& trace_out) {
  int rc = EXIT_SUCCESS;
  if (audit) {
    trace::BoundAuditor auditor;
    const auto rep = auditor.audit(
        n1, n2, run, run.trace ? &run.trace.value() : nullptr);
    trace::print_audit(std::cout, rep);
    if (!rep.ok()) rc = EXIT_FAILURE;
  }
  if (!trace_out.empty()) {
    PARSYRK_REQUIRE(run.trace.has_value(),
                    "--trace-out needs a traced run (internal error)");
    std::ofstream out(trace_out);
    PARSYRK_REQUIRE(out.good(), "cannot open ", trace_out, " for writing");
    trace::write_chrome_json(out, *run.trace);
    std::cout << "trace (" << run.trace->events.size() << " events) -> "
              << trace_out << "\n";
  }
  return rc;
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// --serve: replay a deterministic mixed small/medium/large workload
/// through service::SyrkService (async submit, batched rounds, plan cache)
/// and print throughput, latency percentiles, and scheduler/cache stats.
int run_serve(int procs, int jobs, std::uint64_t seed, bool audit,
              service::SchedMode sched) {
  struct ShapeSpec {
    std::uint64_t n1, n2, cap;
  };
  // Small jobs at caps that pack several to a round, plus a full-size job
  // every few requests that must run solo.
  const std::vector<ShapeSpec> mix = {
      {16, 64, 2},
      {24, 96, 3},
      {32, 64, 4},
      {48, 96, 6},
      {64, 128, static_cast<std::uint64_t>(procs)},
  };
  service::ServiceOptions opts;
  opts.procs = procs;
  opts.scheduler = sched;
  service::SyrkService svc(opts);

  // The service references request matrices; reserve so growth never moves
  // one under an in-flight ticket.
  std::vector<Matrix> inputs;
  inputs.reserve(static_cast<std::size_t>(jobs));
  std::vector<service::SyrkTicket> tickets;
  tickets.reserve(static_cast<std::size_t>(jobs));
  const auto t0 = std::chrono::steady_clock::now();
  for (int j = 0; j < jobs; ++j) {
    const ShapeSpec& s = mix[static_cast<std::size_t>(j) % mix.size()];
    inputs.push_back(
        random_matrix(s.n1, s.n2, seed + static_cast<std::uint64_t>(j)));
    core::SyrkRequest req(inputs.back());
    req.on_procs(s.cap);
    if (audit) req.with_audit();
    tickets.push_back(svc.submit(std::move(req)));
  }

  double max_err = 0.0;
  int audit_violations = 0;
  bool fifo = true;
  std::uint64_t prev_seq = 0;
  std::vector<std::uint64_t> seqs;
  std::vector<double> queue_s, total_s;
  std::uint64_t batched = 0;
  for (std::size_t j = 0; j < tickets.size(); ++j) {
    const service::SyrkResult& r = tickets[j].wait();
    max_err = std::max(max_err, max_abs_diff(
        r.run.c.view(), syrk_reference(inputs[j].view()).view()));
    if (r.audit && !r.audit->ok()) ++audit_violations;
    if (r.completion_seq < prev_seq) fifo = false;
    prev_seq = r.completion_seq;
    seqs.push_back(r.completion_seq);
    queue_s.push_back(r.latency.queue_seconds);
    total_s.push_back(r.latency.total_seconds);
    if (r.batched) ++batched;
  }
  // Rounds mode completes strictly in submission order; streaming may
  // legitimately finish a small follower before a long-running straggler,
  // so there only the completion sequence numbers must be distinct.
  std::sort(seqs.begin(), seqs.end());
  const bool seqs_distinct =
      std::adjacent_find(seqs.begin(), seqs.end()) == seqs.end();
  const bool order_ok =
      sched == service::SchedMode::kRounds ? fifo : seqs_distinct;
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const auto st = svc.stats();
  Table t({"metric", "value"});
  t.add_row({"scheduler", sched == service::SchedMode::kRounds
                              ? "rounds (barrier)"
                              : "streaming (work-conserving)"});
  t.add_row({"requests", std::to_string(st.completed)});
  t.add_row({"throughput (req/s)",
             fmt_double(static_cast<double>(jobs) / wall, 6)});
  t.add_row({"rounds", std::to_string(st.rounds)});
  t.add_row({"rounds with >= 2 jobs", std::to_string(st.batched_rounds)});
  t.add_row({"jobs batched / solo", std::to_string(st.batched_jobs) + " / " +
                                        std::to_string(st.solo_jobs)});
  t.add_row({"plan cache hits / misses",
             std::to_string(st.plan_cache.hits) + " / " +
                 std::to_string(st.plan_cache.misses)});
  t.add_row({"queue p50 / p99 (us)",
             fmt_double(1e6 * percentile(queue_s, 0.5), 5) + " / " +
                 fmt_double(1e6 * percentile(queue_s, 0.99), 5)});
  t.add_row({"total p50 / p99 (us)",
             fmt_double(1e6 * percentile(total_s, 0.5), 5) + " / " +
                 fmt_double(1e6 * percentile(total_s, 0.99), 5)});
  if (sched == service::SchedMode::kStreaming) {
    t.add_row({"interleaved jobs", std::to_string(st.interleaved_jobs)});
    t.add_row({"scheduler gap (rank-us)",
               fmt_double(1e6 * st.scheduler_gap_seconds, 5)});
  }
  t.add_row({"completion order",
             fifo ? "FIFO"
                  : (order_ok ? "out of order (streaming)" : "CORRUPT")});
  if (audit) {
    t.add_row({"Theorem-1 audit violations",
               std::to_string(audit_violations)});
  }
  t.print(std::cout);
  std::cout << "max |C - AAᵀ| over all requests = " << max_err << "\n";
  const bool ok =
      max_err < 1e-8 && order_ok && audit_violations == 0 && batched > 0;
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("op", "kernel to run: syrk | syr2k | symm | cholesky | bound",
               "syrk");
  cli.add_flag("n1", "rows of A (order of C); for symm: order of S", "144");
  cli.add_flag("n2", "cols of A; for symm: cols of B", "96");
  cli.add_flag("procs", "processor budget", "12");
  cli.add_flag("algo", "force algorithm: auto | 1d | 2d | 3d", "auto");
  cli.add_flag("c", "triangle-distribution prime (2d/3d)", "0");
  cli.add_flag("p2", "slice count for 3d", "1");
  cli.add_flag("memory", "per-rank memory budget in words (0 = unlimited)",
               "0");
  cli.add_flag("chunks", "pipelined-collective segment count for syrk "
               "(0 = blocking; clamped to the plan's available segments)",
               "0");
  cli.add_flag("ranks-per-node", "two-level topology: consecutive ranks per "
               "node (1 = flat machine; syrk only)", "1");
  cli.add_flag("strategy", "collective realization for syrk: auto (planner "
               "picks per topology) | pairwise | hierarchical", "auto");
  cli.add_flag("seed", "RNG seed for the synthetic input", "1");
  cli.add_flag("input", "read A from a MatrixMarket file instead of "
               "synthesizing it (overrides --n1/--n2)", std::nullopt);
  cli.add_flag("explain-plan", "print the planner's full candidate ranking "
               "(chosen and rejected plans with modeled costs; syrk only)");
  cli.add_flag("audit", "audit the measured words against the Theorem 1 "
               "bound and the algorithm's modeled cost (syrk only)");
  cli.add_flag("trace-out", "write the run's per-message trace as Chrome "
               "tracing JSON to this file (syrk only)", std::nullopt);
  cli.add_flag("serve", "replay a mixed synthetic SYRK workload through the "
               "async batching service and print throughput, latency, and "
               "plan-cache stats");
  cli.add_flag("jobs", "request count for --serve", "60");
  cli.add_flag("sched", "--serve executor: streaming (work-conserving "
               "mid-round interleaving, the default) | rounds (barrier "
               "batching)", "streaming");
  cli.add_flag("help", "print this help");
  try {
    cli.parse(argc, argv);
    if (cli.has("help") && cli.get("help") == "true") {
      std::cout << cli.help("parsyrk",
                            "communication-optimal parallel SYRK & friends");
      return EXIT_SUCCESS;
    }
    // Range-checked reads: garbage ("banana") and overflow both surface as
    // a flag-named InvalidArgument caught below, never a silent truncation.
    auto n1 = static_cast<std::uint64_t>(
        cli.get_int_in("n1", 1, std::int64_t{1} << 32));
    auto n2 = static_cast<std::uint64_t>(
        cli.get_int_in("n2", 1, std::int64_t{1} << 32));
    const auto procs =
        static_cast<std::uint64_t>(cli.get_int_in("procs", 1, 1 << 24));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const std::string op = cli.get("op");
    const int chunks = static_cast<int>(cli.get_int_in("chunks", 0, 1 << 24));
    const int ranks_per_node =
        static_cast<int>(cli.get_int_in("ranks-per-node", 1, 1 << 24));
    const std::string strategy = cli.get("strategy");
    PARSYRK_REQUIRE(strategy == "auto" || strategy == "pairwise" ||
                        strategy == "hierarchical",
                    "unknown --strategy ", strategy,
                    " (want auto | pairwise | hierarchical)");
    PARSYRK_REQUIRE(chunks == 0 || strategy != "hierarchical",
                    "--chunks requires pairwise collectives; drop "
                    "--strategy hierarchical");
    auto apply_exec_options = [&](core::SyrkRequest& req) {
      if (chunks >= 1) req.with_pipeline(chunks);
      if (ranks_per_node > 1) req.with_topology(ranks_per_node);
      if (strategy == "hierarchical") {
        req.with_reduce(core::ReduceKind::kHierarchical)
            .with_exchange(core::ExchangeKind::kHierarchical);
      }
      // "pairwise" is the default kinds; "auto" leaves the planner's
      // strategy pick (mapped inside core::syrk) in charge.
    };

    Matrix a;
    if (cli.has("input")) {
      a = read_matrix_market_file(cli.get("input"));
      n1 = a.rows();
      n2 = a.cols();
      std::cout << "Loaded " << n1 << "x" << n2 << " matrix from "
                << cli.get("input") << "\n";
    }

    if (op == "bound") return run_bound(n1, n2, procs);
    if (cli.has("serve") && cli.get("serve") == "true") {
      const std::string sched = cli.get("sched");
      PARSYRK_REQUIRE(sched == "streaming" || sched == "rounds",
                      "unknown --sched ", sched,
                      " (want streaming | rounds)");
      return run_serve(static_cast<int>(procs),
                       static_cast<int>(cli.get_int("jobs")), seed,
                       cli.has("audit") && cli.get("audit") == "true",
                       sched == "rounds" ? service::SchedMode::kRounds
                                         : service::SchedMode::kStreaming);
    }

    const auto memory = static_cast<std::uint64_t>(cli.get_int("memory"));
    std::string algo = cli.get("algo");
    auto c_flag = static_cast<std::uint64_t>(cli.get_int("c"));
    auto p2_flag = static_cast<std::uint64_t>(cli.get_int("p2"));

    if (a.empty()) a = random_matrix(n1, n2, seed);

    const bool audit = cli.has("audit") && cli.get("audit") == "true";
    const bool explain =
        cli.has("explain-plan") && cli.get("explain-plan") == "true";
    const std::string trace_out =
        cli.has("trace-out") ? cli.get("trace-out") : std::string();
    const bool tracing = audit || !trace_out.empty();

    if (op == "syrk" && algo == "auto" && memory == 0) {
      core::Session session(static_cast<int>(procs));
      core::SyrkRequest req(a);
      if (audit) req.with_audit();
      else if (tracing) req.with_trace();
      apply_exec_options(req);
      if (explain) core::resolve_plan_report(session, req).explain(std::cout);
      const auto run = core::syrk(session, req);
      std::cout << "Plan: " << run.plan << "\n";
      if (run.nodes >= 2) {
        std::cout << "Topology: " << run.nodes << " nodes x "
                  << ranks_per_node << " ranks; busiest node sent "
                  << run.total_inter.max.words_sent
                  << " inter-node words\n";
      }
      const double err =
          max_abs_diff(run.c.view(), syrk_reference(a.view()).view());
      Table t({"phase", "max words/rank"});
      t.add_row({"gather_A", std::to_string(run.gather_a.max.words_sent)});
      t.add_row({"reduce_C", std::to_string(run.reduce_c.max.words_sent)});
      t.add_row({"total", std::to_string(run.total.max.words_sent)});
      t.print(std::cout);
      std::cout << "max |C - AAᵀ| = " << err << "; bound = "
                << fmt_double(run.bound.communicated, 6) << " words\n";
      const int trc = report_trace(run, n1, n2, audit, trace_out);
      return err < 1e-8 ? trc : EXIT_FAILURE;
    }
    if (op == "syrk" && memory != 0) {
      const auto choice =
          core::plan_syrk_memory_aware(n1, n2, procs, memory);
      if (!choice) {
        std::cout << "No plan fits within " << memory
                  << " words/rank; memory-dependent bound = "
                  << fmt_double(core::syrk_memory_dependent_bound(
                                    n1, n2, procs, memory),
                                6)
                  << "\n";
        return EXIT_FAILURE;
      }
      std::cout << "Memory-aware plan: " << choice->plan << " (footprint "
                << fmt_double(choice->footprint_words, 6) << " words)\n";
      c_flag = choice->plan.c;
      p2_flag = choice->plan.p2;
      const char* names[] = {"1d", "2d", "3d"};
      algo = names[static_cast<int>(choice->plan.algorithm)];
    }

    // Explicit algorithm runs.
    auto need_c = [&]() {
      PARSYRK_REQUIRE(c_flag >= 2, "--c is required for 2d/3d runs");
      return c_flag;
    };
    if (op == "syrk") {
      core::SyrkRequest req(a);
      if (audit) req.with_audit();
      else if (tracing) req.with_trace();
      apply_exec_options(req);
      if (algo == "1d") {
        req.use_1d();
      } else if (algo == "2d") {
        req.use_2d(need_c());
      } else if (algo == "3d") {
        req.use_3d(need_c(), p2_flag);
      } else {
        PARSYRK_REQUIRE(false, "unknown --algo ", algo);
      }
      // The session is sized to the request: procs for 1D, the grid's rank
      // count for 2D/3D.
      const std::uint64_t ranks =
          algo == "1d" ? procs : c_flag * (c_flag + 1) * (algo == "3d" ? p2_flag : 1);
      core::Session session(static_cast<int>(ranks));
      if (explain) core::resolve_plan_report(session, req).explain(std::cout);
      const auto run = core::syrk(session, req);
      const int rc = report_run(
          run, max_abs_diff(run.c.view(), syrk_reference(a.view()).view()));
      const int trc = report_trace(run, n1, n2, audit, trace_out);
      return rc != EXIT_SUCCESS ? rc : trc;
    }
    if (op == "syr2k") {
      Matrix b = random_matrix(n1, n2, seed + 1);
      Matrix ref = syr2k_reference(a.view(), b.view());
      if (algo == "2d" || algo == "auto") {
        const auto c = need_c();
        core::Session session(static_cast<int>(c * (c + 1)));
        Matrix out = core::syr2k_2d(session.world(), a, b, c);
        report(session.world(), max_abs_diff(out.view(), ref.view()),
               bounds::syr2k_lower_bound(n1, n2, c * (c + 1)).communicated);
      } else if (algo == "1d") {
        core::Session session(static_cast<int>(procs));
        Matrix out = core::syr2k_1d(session.world(), a, b);
        report(session.world(), max_abs_diff(out.view(), ref.view()),
               bounds::syr2k_lower_bound(n1, n2, procs).communicated);
      } else {
        const auto c = need_c();
        core::Session session(static_cast<int>(c * (c + 1) * p2_flag));
        Matrix out = core::syr2k_3d(session.world(), a, b, c, p2_flag);
        report(session.world(), max_abs_diff(out.view(), ref.view()),
               bounds::syr2k_lower_bound(n1, n2, c * (c + 1) * p2_flag)
                   .communicated);
      }
      return EXIT_SUCCESS;
    }
    if (op == "cholesky") {
      // Build an SPD G = A·Aᵀ + n1·I, factor it on a grid.
      const auto grid = static_cast<std::uint64_t>(
          std::sqrt(static_cast<double>(procs)));
      PARSYRK_REQUIRE(grid >= 1, "cholesky needs at least one rank");
      Matrix g = syrk_reference(a.view());
      for (std::size_t i = 0; i < n1; ++i) {
        g(i, i) += static_cast<double>(n1);
      }
      core::Session session(static_cast<int>(grid * grid));
      const std::size_t tile =
          std::max<std::size_t>(1, n1 / (2 * grid));
      Matrix l = core::parallel_cholesky(session.world(), g, grid, tile);
      Matrix ref = cholesky_lower(g.view());
      report(session.world(), max_abs_diff(l.view(), ref.view()), 0.0);
      return EXIT_SUCCESS;
    }
    if (op == "symm") {
      const auto c = need_c();
      Matrix s = syrk_reference(random_matrix(n1, 8, seed + 2).view());
      Matrix b = random_matrix(n1, n2, seed + 3);
      core::Session session(static_cast<int>(c * (c + 1)));
      Matrix out = core::symm_2d(session.world(), s, b, c);
      report(session.world(),
             max_abs_diff(out.view(), symm_reference(s.view(), b.view()).view()),
             0.0);
      return EXIT_SUCCESS;
    }
    PARSYRK_REQUIRE(false, "unknown --op ", op);
  } catch (const InvalidArgument& e) {
    std::cerr << "error: " << e.what() << "\n\n"
              << cli.help("parsyrk",
                          "communication-optimal parallel SYRK & friends");
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
