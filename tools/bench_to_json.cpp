// Kernel perf snapshot tool: times the local-kernel tiers and emits the
// machine-readable trajectory committed as BENCH_KERNELS.json.
//
//   bench_to_json [--out FILE] [--min-time SECONDS]
//       runs the full suite and writes the JSON snapshot (stdout if no
//       --out). Rates are reported as GMAC/s (multiply-adds, the unit the
//       microbenchmarks also use; GF/s = 2x) together with the bytes the
//       engine packed per call.
//
//   bench_to_json --smoke [--factor F]
//       cheap perf gate for ctest: asserts the packed syrk_lower beats the
//       naive oracle by at least F (default 1.3 — far below the measured
//       margin, so scheduler noise cannot flake the suite) at n=256 and
//       exits nonzero otherwise.
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "matrix/kernels.hpp"
#include "matrix/pack.hpp"
#include "matrix/random.hpp"
#include "matrix/ukernel.hpp"

namespace {

using namespace parsyrk;
using Clock = std::chrono::steady_clock;

struct Row {
  std::string kernel;  // syrk_lower, gemm_nt, ...
  std::string impl;    // naive | blocked | packed
  std::size_t n = 0;
  std::size_t k = 0;
  double gmacs_per_sec = 0.0;
  std::uint64_t bytes_packed_per_call = 0;
};

/// Times `body` (which performs `macs` multiply-adds per call): repeats
/// until `min_time` seconds have elapsed, returns the best-iteration rate.
template <typename F>
double measure_gmacs(F&& body, double macs, double min_time) {
  body();  // warm-up: page in operands, resolve dispatch, grow the arena
  double best = 0.0;
  double elapsed = 0.0;
  while (elapsed < min_time) {
    const auto t0 = Clock::now();
    body();
    const std::chrono::duration<double> dt = Clock::now() - t0;
    elapsed += dt.count();
    best = std::max(best, macs / dt.count() / 1e9);
  }
  return best;
}

template <typename F>
Row run_case(const std::string& kernel, const std::string& impl,
             std::size_t n, std::size_t k, double macs, double min_time,
             F&& body) {
  kern::reset_pack_bytes();
  body();
  const std::uint64_t bytes_per_call = kern::pack_bytes();
  Row row;
  row.kernel = kernel;
  row.impl = impl;
  row.n = n;
  row.k = k;
  row.gmacs_per_sec = measure_gmacs(body, macs, min_time);
  row.bytes_packed_per_call = bytes_per_call;
  return row;
}

std::vector<Row> run_suite(double min_time) {
  std::vector<Row> rows;
  const std::vector<std::size_t> sizes = {128, 256, 512};
  for (std::size_t n : sizes) {
    const std::size_t k = n / 4;
    Matrix a = random_matrix(n, k, 3);
    Matrix b = random_matrix(n, k, 4);
    Matrix c(n, n);
    const double syrk_macs = double(n) * double(n) * double(k) / 2.0;
    auto syrk_case = [&](const char* impl, auto fn) {
      rows.push_back(run_case("syrk_lower", impl, n, k, syrk_macs, min_time,
                              [&] { c.fill(0.0); fn(a.view(), c.view()); }));
    };
    if (n <= 256) syrk_case("naive", syrk_lower_naive);
    syrk_case("blocked", syrk_lower_blocked);
    syrk_case("packed", syrk_lower);

    const double syr2k_macs = double(n) * double(n) * double(k);
    auto syr2k_case = [&](const char* impl, auto fn) {
      rows.push_back(
          run_case("syr2k_lower", impl, n, k, syr2k_macs, min_time,
                   [&] { c.fill(0.0); fn(a.view(), b.view(), c.view()); }));
    };
    if (n <= 256) syr2k_case("naive", syr2k_lower_naive);
    syr2k_case("blocked", syr2k_lower_blocked);
    syr2k_case("packed", syr2k_lower);
  }
  for (std::size_t n : sizes) {
    Matrix a = random_matrix(n, n, 1);
    Matrix b = random_matrix(n, n, 2);
    Matrix c(n, n);
    const double macs = double(n) * double(n) * double(n);
    auto gemm_case = [&](const char* impl, auto fn) {
      rows.push_back(
          run_case("gemm_nt", impl, n, n, macs, min_time,
                   [&] { c.fill(0.0); fn(a.view(), b.view(), c.view()); }));
    };
    if (n <= 256) gemm_case("naive", gemm_nt_naive);
    gemm_case("blocked", gemm_nt_blocked);
    gemm_case("packed", gemm_nt);

    auto symm_case = [&](const char* impl, auto fn) {
      rows.push_back(
          run_case("symm_lower_left", impl, n, n, macs, min_time,
                   [&] { c.fill(0.0); fn(a.view(), b.view(), c.view()); }));
    };
    if (n <= 256) symm_case("naive", symm_lower_left_naive);
    symm_case("packed", symm_lower_left);
  }
  return rows;
}

std::string to_json(const std::vector<Row>& rows) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"unit\": \"gmacs_per_sec = 1e9 multiply-adds per second "
        "(GF/s = 2x)\",\n";
  os << "  \"ukernel\": \"" << kern::active_ukernel().name << "\",\n";
  os << "  \"entries\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"kernel\": \"" << r.kernel << "\", \"impl\": \"" << r.impl
       << "\", \"n\": " << r.n << ", \"k\": " << r.k
       << ", \"gmacs_per_sec\": " << r.gmacs_per_sec
       << ", \"bytes_packed_per_call\": " << r.bytes_packed_per_call << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

int run_smoke(double factor) {
  const std::size_t n = 256, k = 64;
  Matrix a = random_matrix(n, k, 3);
  Matrix c(n, n);
  const double macs = double(n) * double(n) * double(k) / 2.0;
  const double naive = measure_gmacs(
      [&] { c.fill(0.0); syrk_lower_naive(a.view(), c.view()); }, macs, 0.1);
  const double packed = measure_gmacs(
      [&] { c.fill(0.0); syrk_lower(a.view(), c.view()); }, macs, 0.1);
  std::cout << "syrk_lower n=" << n << " k=" << k << ": naive " << naive
            << " GMAC/s, packed " << packed << " GMAC/s (" << packed / naive
            << "x, ukernel=" << kern::active_ukernel().name << ")\n";
  if (packed < factor * naive) {
    std::cerr << "FAIL: packed < " << factor << "x naive\n";
    return 1;
  }
  std::cout << "OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out;
  double min_time = 0.25;
  bool smoke = false;
  double factor = 1.3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else if (arg == "--min-time" && i + 1 < argc) {
      min_time = std::strtod(argv[++i], nullptr);
    } else if (arg == "--factor" && i + 1 < argc) {
      factor = std::strtod(argv[++i], nullptr);
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "usage: bench_to_json [--out FILE] [--min-time S] "
                   "[--smoke [--factor F]]\n";
      return 2;
    }
  }
  if (smoke) return run_smoke(factor);
  const std::string json = to_json(run_suite(min_time));
  if (out.empty()) {
    std::cout << json;
  } else {
    std::ofstream f(out);
    f << json;
    if (!f) {
      std::cerr << "cannot write " << out << "\n";
      return 1;
    }
    std::cout << "wrote " << out << "\n";
  }
  return 0;
}
