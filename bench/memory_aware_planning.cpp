// E17 — §6 limited-memory regime: per-rank footprints of the three
// algorithms, the memory-dependent lower bound, and the memory-aware
// planner's choices as local memory shrinks (the 1D algorithm's full
// triangle falls out first; eventually nothing fits and the run must be
// rejected — the regime the paper leaves to future work).
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/memory.hpp"
#include "core/session.hpp"
#include "core/syrk.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "support/table.hpp"

using namespace parsyrk;

int main() {
  bench::heading("E17 / Memory-aware planning and the memory-dependent bound");

  const std::uint64_t n1 = 144, n2 = 144, p = 24;
  std::cout << "Problem: n1 = n2 = " << n1 << ", up to P = " << p
            << " ranks\n\n";

  Table t({"M (words/rank)", "chosen plan", "grid", "predicted words",
           "footprint", "MI bound", "MD bound", "executed words",
           "correct"});
  bool ok = true;
  core::Algorithm last = core::Algorithm::kOneD;
  bool saw_exclusion = false;
  for (std::uint64_t mem : {1u << 20, 12000u, 8000u, 7000u, 4000u}) {
    const auto choice = core::plan_syrk_memory_aware(n1, n2, p, mem);
    const double mi = bounds::syrk_lower_bound(n1, n2, p).communicated;
    const double md = core::syrk_memory_dependent_bound(n1, n2, p, mem);
    if (!choice) {
      t.add_row({fmt_count(mem), "none fits", "-", "-", "-",
                 fmt_double(mi, 6), fmt_double(md, 6), "-", "-"});
      saw_exclusion = true;
      continue;
    }
    // Execute the chosen plan and confirm it is correct and within budget.
    Matrix a = random_matrix(n1, n2, 51);
    core::Session session(static_cast<int>(p));
    const auto run =
        core::syrk(session, core::SyrkRequest(a).with_memory_limit(mem));
    const bool correct =
        max_abs_diff(run.c.view(), syrk_reference(a.view()).view()) < 1e-9 &&
        run.plan.algorithm == choice->plan.algorithm &&
        run.plan.procs == choice->plan.procs;
    const double executed =
        static_cast<double>(run.total.critical_path_words());
    ok = ok && correct && choice->footprint_words <= static_cast<double>(mem);
    last = choice->plan.algorithm;
    t.add_row({fmt_count(mem),
               core::algorithm_name(choice->plan.algorithm),
               std::to_string(choice->plan.p1) + "x" +
                   std::to_string(choice->plan.p2),
               fmt_double(choice->predicted_words, 6),
               fmt_double(choice->footprint_words, 6), fmt_double(mi, 6),
               fmt_double(md, 6), fmt_double(executed, 6),
               correct ? "yes" : "NO"});
  }
  t.print(std::cout);
  ok = ok && saw_exclusion;

  std::cout << "\nCrossover of the bounds: MD = MI at M* ≈ "
            << fmt_double(std::pow(144.0 * 144.0 * 144.0 /
                                       (std::sqrt(2.0) * 24.0 *
                                        bounds::syrk_lower_bound(144, 144, 24)
                                            .communicated),
                                   2.0),
                          6)
            << " words — below that, the memory-dependent bound is the "
               "binding one and the attainability of Theorem 1 is open "
               "(§6).\n";
  std::cout << "Memory-aware planning: " << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
