// E23 — Sparse SYRK (§6's closing extension direction): as the fill of A
// drops, the local flops shrink with the squared column fill while the
// reduce-scattered output triangle stays dense — so the computation-to-
// communication ratio collapses and sparse SYRK goes communication-bound
// far earlier than dense. Also shows the nnz-balanced column split
// restoring load balance on skewed matrices.
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "sparse/csr.hpp"
#include "sparse/kernels.hpp"
#include "sparse/parallel.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using namespace parsyrk;
using sparse::ColumnSplit;
using sparse::Csr;

namespace {

Matrix sparse_dense(std::size_t rows, std::size_t cols, double fill,
                    std::uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (rng.uniform() < fill) m(i, j) = rng.uniform(-1, 1);
    }
  }
  return m;
}

}  // namespace

int main() {
  bench::heading("E23 / Sparse SYRK: compute shrinks, communication doesn't");

  const std::size_t n1 = 128, n2 = 512;
  const int p = 8;
  const double dense_flops =
      static_cast<double>(n1) * (n1 + 1) / 2.0 * n2;

  Table t({"fill", "nnz", "flops (sum nnz_k(nnz_k+1)/2)", "flops/dense",
           "words/rank (measured)", "flops-per-word", "correct"});
  bool ok = true;
  double prev_fpw = 1e300;
  for (double fill : {1.0, 0.3, 0.1, 0.03, 0.01}) {
    Matrix m = sparse_dense(n1, n2, fill, 81);
    Csr s = Csr::from_dense(m.view());
    comm::World world(p);
    Matrix c = sparse::sparse_syrk_1d(world, s);
    const bool correct =
        max_abs_diff(c.view(), syrk_reference(m.view()).view()) < 1e-9;
    const double flops = static_cast<double>(sparse::sparse_syrk_flops(s));
    const double words = static_cast<double>(
        world.ledger().summary().critical_path_words());
    const double fpw = flops / static_cast<double>(p) / words;
    ok = ok && correct && fpw < prev_fpw;  // monotone collapse
    prev_fpw = fpw;
    t.add_row({fmt_double(fill, 3), fmt_count(s.nnz()), fmt_double(flops, 6),
               fmt_double(flops / dense_flops, 3), fmt_double(words, 6),
               fmt_double(fpw, 4), correct ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nThe communicated words are fill-independent (the output "
               "triangle is dense), so operational intensity collapses "
               "quadratically with fill — the §6 sparse regime where new "
               "bounds are needed.\n\n";

  // Load-balance sub-experiment on a skewed matrix.
  {
    std::vector<std::tuple<std::size_t, std::size_t, double>> trip;
    Rng rng(82);
    for (std::size_t k = 0; k < 16; ++k) {
      for (std::size_t i = 0; i < n1; ++i) trip.emplace_back(i, k, 0.5);
    }
    for (std::size_t k = 16; k < n2; ++k) {
      for (int d = 0; d < 3; ++d) {
        trip.emplace_back(rng.uniform_int(0, n1 - 1), k, 0.5);
      }
    }
    Csr s = Csr::from_triplets(n1, n2, std::move(trip));
    auto imbalance = [&](ColumnSplit split) {
      const auto ranges = sparse::column_ranges(s, p, split);
      std::uint64_t mx = 0, total = 0;
      for (const auto& [lo, hi] : ranges) {
        const auto f = hi > lo
                           ? sparse::sparse_syrk_flops(
                                 s.column_slice(lo, hi - lo))
                           : 0;
        mx = std::max<std::uint64_t>(mx, f);
        total += f;
      }
      return static_cast<double>(mx) / (static_cast<double>(total) / p);
    };
    const double uni = imbalance(ColumnSplit::kUniform);
    const double bal = imbalance(ColumnSplit::kNnzBalanced);
    ok = ok && bal < uni && bal < 1.8;
    std::cout << "Skewed fill (16 dense + 496 sparse columns): flop "
                 "imbalance uniform split = "
              << fmt_double(uni, 4)
              << ", nnz-balanced split = " << fmt_double(bal, 4) << "\n";
  }
  // The mirror image: symmetric SDDMM has a sparse OUTPUT, so the reduced
  // volume shrinks with the mask while sparse SYRK's stayed dense.
  std::cout << "\nSymmetric SDDMM (sparse output) on the same runtime:\n";
  {
    Table t2({"mask fill", "nnz(mask)", "words/rank (measured)",
              "dense-triangle words"});
    Matrix a = sparse_dense(n1, n2, 1.0, 83);
    Rng rng(84);
    const double dense_words =
        (1.0 - 1.0 / p) * static_cast<double>(n1 * (n1 + 1) / 2);
    for (double fill : {0.5, 0.1, 0.02}) {
      std::vector<std::tuple<std::size_t, std::size_t, double>> trip;
      for (std::size_t i = 0; i < n1; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
          if (rng.uniform() < fill) trip.emplace_back(i, j, 1.0);
        }
      }
      Csr mask = Csr::from_triplets(n1, n1, std::move(trip));
      comm::World world(p);
      sparse::sddmm_syrk_1d(world, mask, a.view());
      const double words = static_cast<double>(
          world.ledger().summary().critical_path_words());
      ok = ok && words < dense_words;
      t2.add_row({fmt_double(fill, 3), fmt_count(mask.nnz()),
                  fmt_double(words, 6), fmt_double(dense_words, 6)});
    }
    t2.print(std::cout);
    std::cout << "SDDMM communication tracks nnz(mask): sparse output is "
                 "where sparsity DOES cut the words.\n";
  }

  std::cout << "\nSparse SYRK crossover: " << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
