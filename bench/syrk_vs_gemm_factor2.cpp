// E8 — The headline comparison (§1, §6): the triangle-block SYRK algorithms
// move half the words of communication-optimal GEMM computing the same
// C = A·Aᵀ, and half the words of a ScaLAPACK-style SYRK (which halves
// flops but communicates like GEMM). One section per regime. Both measured
// (runtime ledger) and analytic (lower bounds) ratios are reported.
#include <cstdlib>
#include <iostream>

#include "baseline/gemm.hpp"
#include "bench/bench_util.hpp"
#include "bounds/syrk_bounds.hpp"
#include "core/session.hpp"
#include "core/syrk.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "support/table.hpp"

using namespace parsyrk;

namespace {

struct Row {
  std::string regime;
  std::string setup;
  double syrk_words;
  double gemm_words;
  double bound_ratio;
  bool correct;
};

double max_words(comm::World& w) {
  return static_cast<double>(w.ledger().summary().critical_path_words());
}

double max_words(const core::SyrkRun& run) {
  return static_cast<double>(run.total.critical_path_words());
}

}  // namespace

int main() {
  bench::heading("E8 / SYRK vs GEMM: the factor-2 communication reduction");

  std::vector<Row> rows;
  bool ok = true;

  {
    // Regime 1 (short-wide): 1D SYRK vs 1D GEMM on identical worlds.
    const std::size_t n1 = 128, n2 = 16384;
    const int p = 16;
    Matrix a = random_matrix(n1, n2, 4);
    Matrix ref = syrk_reference(a.view());
    core::Session ss(p);
    const auto rs = core::syrk(ss, core::SyrkRequest(a).use_1d());
    comm::World wg(p);
    Matrix cg = baseline::gemm_1d(wg, a, a);
    const bool correct = max_abs_diff(rs.c.view(), ref.view()) < 1e-9 &&
                         max_abs_diff(cg.view(), ref.view()) < 1e-9;
    const auto bs = bounds::syrk_lower_bound(n1, n2, p);
    const auto bg = bounds::gemm_lower_bound(n1, n2, p);
    rows.push_back({"1 (1D)", "P=16, n1=128, n2=16384", max_words(rs),
                    max_words(wg), bg.communicated / bs.communicated,
                    correct});
  }
  {
    // Regime 2 (tall-skinny): 2D triangle SYRK (P = c(c+1) = 132) vs 2D
    // GEMM and ScaLAPACK-style SYRK on an 11x11 grid (P = 121).
    const std::size_t n1 = 484, n2 = 12;
    Matrix a = random_matrix(n1, n2, 5);
    Matrix ref = syrk_reference(a.view());
    core::Session st(132);
    const auto rt = core::syrk(st, core::SyrkRequest(a).use_2d(11));
    comm::World wg(121), wsc(121);
    Matrix cg = baseline::gemm_2d(wg, a, a, 11);
    Matrix csc = baseline::scalapack_syrk(wsc, a, 11);
    const bool correct = max_abs_diff(rt.c.view(), ref.view()) < 1e-9 &&
                         max_abs_diff(cg.view(), ref.view()) < 1e-9 &&
                         max_abs_diff(csc.view(), ref.view()) < 1e-9;
    const auto bs = bounds::syrk_lower_bound(n1, n2, 132);
    const auto bg = bounds::gemm_lower_bound(n1, n2, 121);
    rows.push_back({"2 (2D)", "triangle P=132 vs grid 11x11",
                    max_words(rt), max_words(wg),
                    bg.communicated / bs.communicated, correct});
    std::cout << "ScaLAPACK-style SYRK words/rank: " << max_words(wsc)
              << " (equal to GEMM: "
              << (max_words(wsc) == max_words(wg) ? "yes" : "no")
              << "), triangle SYRK words/rank: " << max_words(rt) << "\n";
  }
  {
    // Regime 3 (large P, square): 3D SYRK (p1=30, p2=5, P=150) vs 3D GEMM
    // (5x5x6 grid, P=150).
    const std::size_t n1 = 300, n2 = 300;
    Matrix a = random_matrix(n1, n2, 6);
    Matrix ref = syrk_reference(a.view());
    core::Session ss(150);
    const auto rs = core::syrk(ss, core::SyrkRequest(a).use_3d(5, 5));
    comm::World wg(150);
    Matrix cg = baseline::gemm_3d(wg, a, a, 5, 6);
    const bool correct = max_abs_diff(rs.c.view(), ref.view()) < 1e-9 &&
                         max_abs_diff(cg.view(), ref.view()) < 1e-9;
    const auto bs = bounds::syrk_lower_bound(n1, n2, 150);
    const auto bg = bounds::gemm_lower_bound(n1, n2, 150);
    rows.push_back({"3 (3D)", "P=150: 30x5 vs 5x5x6", max_words(rs),
                    max_words(wg), bg.communicated / bs.communicated,
                    correct});
  }

  Table t({"regime", "setup", "SYRK words/rank", "GEMM words/rank",
           "measured GEMM/SYRK", "bound GEMM/SYRK", "correct"});
  for (const auto& r : rows) {
    const double measured_ratio = r.gemm_words / r.syrk_words;
    // The paper's claim is a factor-2 leading-order separation; finite-P
    // grids land within ~±30% of 2 at these sizes.
    ok = ok && r.correct && measured_ratio > 1.4 && measured_ratio < 2.7 &&
         std::abs(r.bound_ratio - 2.0) < 0.1;
    t.add_row({r.regime, r.setup, fmt_double(r.syrk_words, 8),
               fmt_double(r.gemm_words, 8), fmt_double(measured_ratio, 4),
               fmt_double(r.bound_ratio, 4), r.correct ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nSYRK halves GEMM communication in every regime: "
            << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
