// E11 — Lemma 3 (the symmetric Loomis–Whitney extension): property sweep
// over random subsets of the SYRK iteration prism (the inequality always
// holds) and tightness measurements on triangle blocks (the extremal sets
// that make the 2D/3D algorithms optimal), contrasted with square blocks
// (√2 worse — exactly the constant the paper's distribution recovers).
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.hpp"
#include "bounds/lemma3.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using namespace parsyrk;
using bounds::Point3;

int main() {
  bench::heading("E11 / Lemma 3: symmetric Loomis-Whitney property checks");

  // 1. Random subsets: the inequality must hold for every V with j < i.
  Rng rng(2023);
  int violations = 0;
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    std::vector<Point3> pts;
    const int n = static_cast<int>(rng.uniform_int(1, 400));
    for (int q = 0; q < n; ++q) {
      const auto i = rng.uniform_int(1, 30);
      pts.push_back({i, rng.uniform_int(0, i - 1), rng.uniform_int(0, 20)});
    }
    if (!bounds::lemma3_holds(pts)) ++violations;
  }
  std::cout << "Random subsets of the iteration prism: " << trials
            << " trials, " << violations << " violations\n\n";

  // 2. Tightness on triangle blocks of growing size: rhs/lhs -> 1.
  Table t({"rows s", "depth k", "|V|", "|phi_i u phi_j|", "|phi_k|",
           "rhs/lhs (>= 1, -> 1)"});
  bool monotone = true;
  double prev = std::numeric_limits<double>::infinity();
  for (std::int64_t s : {4, 8, 16, 32, 64}) {
    std::vector<std::int64_t> rows(s);
    for (std::int64_t i = 0; i < s; ++i) rows[i] = i;
    const auto pts = bounds::triangle_block_points(rows, s);
    const auto pr = bounds::project(pts);
    const double ratio = bounds::lemma3_tightness(pts);
    monotone = monotone && ratio <= prev && ratio >= 1.0;
    prev = ratio;
    t.add_row({std::to_string(s), std::to_string(s),
               fmt_count(pts.size()), fmt_count(pr.phi_i_union_j),
               fmt_count(pr.phi_k), fmt_double(ratio, 6)});
  }
  t.print(std::cout);

  // 3. Square blocks at the same |phi_k| budget waste a factor sqrt(2).
  std::cout << "\nSquare vs triangle blocks (equal C footprint):\n";
  Table t2({"shape", "|V|", "|phi_i u phi_j|", "|phi_k|", "rhs/lhs"});
  const std::int64_t s = 32, d = 32;
  std::vector<Point3> square;
  for (std::int64_t i = s; i < 2 * s; ++i) {
    for (std::int64_t j = 0; j < s; ++j) {
      for (std::int64_t k = 0; k < d; ++k) square.push_back({i, j, k});
    }
  }
  const auto prs = bounds::project(square);
  t2.add_row({"square " + std::to_string(s) + "x" + std::to_string(s),
              fmt_count(square.size()), fmt_count(prs.phi_i_union_j),
              fmt_count(prs.phi_k),
              fmt_double(bounds::lemma3_tightness(square), 6)});
  std::vector<std::int64_t> rows(2 * s);
  for (std::int64_t i = 0; i < 2 * s; ++i) rows[i] = i;
  const auto tri = bounds::triangle_block_points(rows, d);
  const auto prt = bounds::project(tri);
  t2.add_row({"triangle over " + std::to_string(2 * s) + " rows",
              fmt_count(tri.size()), fmt_count(prt.phi_i_union_j),
              fmt_count(prt.phi_k),
              fmt_double(bounds::lemma3_tightness(tri), 6)});
  t2.print(std::cout);
  const double sq_ratio = bounds::lemma3_tightness(square);
  std::cout << "\nsquare rhs/lhs = " << fmt_double(sq_ratio, 4)
            << " ~ sqrt(2): the data-efficiency gap triangle blocking "
               "closes.\n";

  const bool ok = violations == 0 && monotone &&
                  std::abs(sq_ratio - std::sqrt(2.0)) < 0.05;
  std::cout << "\nLemma 3 property checks: " << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
