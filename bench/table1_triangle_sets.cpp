// E1 — Regenerates paper Table 1: the row block sets R_k, diagonal sets D_k,
// and processor sets Q_i of the Triangle Block Distribution for c = 3,
// P = 12, and verifies the output cell-for-cell against the published table.
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench/bench_util.hpp"
#include "distribution/triangle_block.hpp"
#include "support/table.hpp"

using namespace parsyrk;

namespace {

std::string set_str(const std::vector<std::uint64_t>& v) {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < v.size(); ++i) os << (i ? "," : "") << v[i];
  os << "}";
  return os.str();
}

}  // namespace

int main() {
  bench::heading(
      "E1 / Table 1: Triangle Block Distribution sets for c = 3, P = 12");

  dist::TriangleBlockDistribution d(3);

  Table left({"k", "R_k", "D_k"});
  for (std::uint64_t k = 0; k < d.num_procs(); ++k) {
    const auto dk = d.diagonal_block(k);
    left.add_row({std::to_string(k), set_str(d.row_block_set(k)),
                  dk ? "{" + std::to_string(*dk) + "}" : "{}"});
  }
  left.print(std::cout);

  std::cout << "\n";
  Table right({"i", "Q_i"});
  for (std::uint64_t i = 0; i < d.num_block_rows(); ++i) {
    right.add_row({std::to_string(i), set_str(d.processor_set(i))});
  }
  right.print(std::cout);

  // The published table, verbatim.
  const std::vector<std::vector<std::uint64_t>> paper_r = {
      {0, 3, 6}, {0, 4, 7}, {0, 5, 8}, {1, 3, 7}, {1, 4, 8}, {1, 5, 6},
      {2, 3, 8}, {2, 4, 6}, {2, 5, 7}, {0, 1, 2}, {3, 4, 5}, {6, 7, 8}};
  const std::vector<long> paper_d = {-1, -1, -1, 1, 4, 5, 2, 6, 7, 0, 3, 8};
  const std::vector<std::vector<std::uint64_t>> paper_q = {
      {0, 1, 2, 9},  {3, 4, 5, 9},  {6, 7, 8, 9},
      {0, 3, 6, 10}, {1, 4, 7, 10}, {2, 5, 8, 10},
      {0, 5, 7, 11}, {1, 3, 8, 11}, {2, 4, 6, 11}};

  bool ok = true;
  for (std::uint64_t k = 0; k < 12; ++k) {
    if (d.row_block_set(k) != paper_r[k]) ok = false;
    const auto dk = d.diagonal_block(k);
    const long got = dk ? static_cast<long>(*dk) : -1;
    if (got != paper_d[k]) ok = false;
  }
  for (std::uint64_t i = 0; i < 9; ++i) {
    if (d.processor_set(i) != paper_q[i]) ok = false;
  }

  std::string why;
  const bool valid = d.validate(&why);
  std::cout << "\nCell-for-cell match with paper Table 1: "
            << (ok ? "YES" : "NO") << "\n";
  std::cout << "Structural validity: " << (valid ? "PASS" : "FAIL " + why)
            << "\n";
  return ok && valid ? EXIT_SUCCESS : EXIT_FAILURE;
}
