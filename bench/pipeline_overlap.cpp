// Pipelined-overlap snapshot: quantifies how far with_pipeline(chunks) moves
// a communication-bound 3D SYRK from `comm + comp` toward the overlap lower
// envelope `max(comm, comp)` — the schedule-side free lunch Theorem 1's
// volume bounds leave on the table. Emits the machine-readable snapshot
// committed as BENCH_PIPELINE.json.
//
//   pipeline_overlap [--out FILE]
//       runs every pipelined configuration on a warm worker pool, verifies
//       bitwise/volume equivalence and BoundAuditor + ledger cross-checks on
//       each, replays the recorded overlap intervals into a measured
//       makespan, and writes the JSON snapshot (stdout if no --out).
//
//   pipeline_overlap --smoke [--factor F]
//       cheap perf gate for ctest: asserts the pipelined modeled time is
//       at most F (default 0.9) of the blocking modeled time on the
//       comm-bound shape, and that one chunked execution stays bitwise- and
//       volume-identical to the blocking run with a green audit.
//
// Two quantities per configuration:
//
//   - modeled: plan_modeled_seconds_pipelined vs plan_modeled_seconds — the
//     closed-form αβγ prediction, on a bandwidth-dominated machine
//     (α = 1e-8 s): pipelining multiplies the latency term by the chunk
//     count, so it only pays off when words·β dominates messages·α — the
//     regime this bench (and any sane deployment of the knob) targets.
//   - measured: the executed schedule's reduce-phase makespan, replayed
//     from the overlap intervals the runtime actually recorded (per-chunk
//     words sent+received and overlapped flops, with the warm pool —
//     chunk boundaries as executed, not as predicted):
//
//       makespan(rank) = comp_0 + Σ_g max(comm_g, comp_{g+1})
//
//     where comp_0 (the pipe-fill compute of group 0, which nothing hides)
//     is estimated as the mean recorded group compute — groups partition
//     the output items contiguously, so sizes differ by at most one item.
//     The acceptance check: max-over-ranks makespan within 15% of the
//     max-over-ranks overlap bound max(Σ comm_g, comp).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "core/session.hpp"
#include "costmodel/model.hpp"
#include "matrix/random.hpp"
#include "trace/audit.hpp"

namespace {

using namespace parsyrk;
using Clock = std::chrono::steady_clock;

// The comm-bound 3D shape: c = 3, p2 = 2 on 24 ranks, n1 = 1440, n2 = 32.
// Per reduce-phase chunk the wire moves ~1.56x the words the overlapped
// gemm can hide (cw = n2/p2 = 16 columns per k-slice), so the phase is
// communication-bound and the exposed pipe-fill compute is comp/G — well
// inside the 15% acceptance band at G = 6 groups per rank.
constexpr std::uint64_t kN1 = 1440;
constexpr std::uint64_t kN2 = 32;
constexpr std::uint64_t kC = 3;
constexpr std::uint64_t kP2 = 2;
constexpr int kRanks = 24;  // c(c+1) * p2
constexpr std::uint64_t kSeed = 77;

/// Bandwidth-dominated machine the modeled numbers are priced on.
costmodel::Machine bench_machine() {
  costmodel::Machine m;
  m.alpha = 1e-8;
  return m;
}

struct RunResult {
  core::SyrkRun run;
  double wall_seconds = 0.0;
};

RunResult run_once(core::Session& session, const Matrix& a, int chunks) {
  core::SyrkRequest req(a);
  req.use_3d(kC, kP2).with_trace();
  if (chunks > 0) req.with_pipeline(chunks);
  RunResult out;
  const auto t0 = Clock::now();
  out.run = core::syrk(session, req);
  out.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  return out;
}

bool bitwise_equal(const Matrix& x, const Matrix& y) {
  if (x.rows() != y.rows() || x.cols() != y.cols()) return false;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    if (std::memcmp(x.data() + i * x.ld(), y.data() + i * y.ld(),
                    x.cols() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

/// Reduce-phase schedule replay from the recorded overlap intervals.
struct Replay {
  double makespan_seconds = 0.0;  // max over ranks of the replayed makespan
  double bound_seconds = 0.0;     // max over ranks of max(comm, comp)
  double comm_seconds = 0.0;      // busiest rank's summed chunk comm
  double comp_seconds = 0.0;      // busiest rank's total (incl. est. comp_0)
  int max_groups = 0;
};

Replay replay_overlaps(const comm::JobTrace& trace,
                       const costmodel::Machine& m) {
  std::map<std::int32_t, std::vector<comm::OverlapInterval>> by_rank;
  for (const auto& o : trace.overlaps) by_rank[o.rank].push_back(o);
  Replay out;
  for (auto& [rank, intervals] : by_rank) {
    std::sort(intervals.begin(), intervals.end(),
              [](const comm::OverlapInterval& a,
                 const comm::OverlapInterval& b) { return a.chunk < b.chunk; });
    const int groups = static_cast<int>(intervals.size());
    // comp_0: group 0's compute is recorded in no window (it fills the
    // pipe before the first post) — estimate it as the mean group compute.
    double comp_sum = 0.0;
    int comp_n = 0;
    for (const auto& o : intervals) {
      if (o.flops > 0) {
        comp_sum += static_cast<double>(o.flops) * m.gamma;
        ++comp_n;
      }
    }
    const double comp0 = comp_n > 0 ? comp_sum / comp_n : 0.0;
    double makespan = comp0, comm = 0.0, comp = comp0 + comp_sum;
    for (const auto& o : intervals) {
      // Pairwise reduce-scatter over p2 ranks: p2 - 1 message rounds per
      // chunk; the recorded words are the chunk's send+receive volume.
      const double comm_g = static_cast<double>(o.words) * m.beta +
                            static_cast<double>(kP2 - 1) * m.alpha;
      const double comp_g = static_cast<double>(o.flops) * m.gamma;
      comm += comm_g;
      makespan += std::max(comm_g, comp_g);
    }
    const double bound = std::max(comm, comp);
    if (makespan > out.makespan_seconds) {
      out.makespan_seconds = makespan;
      out.comm_seconds = comm;
      out.comp_seconds = comp;
    }
    out.bound_seconds = std::max(out.bound_seconds, bound);
    out.max_groups = std::max(out.max_groups, groups);
  }
  return out;
}

struct ConfigReport {
  int chunks = 0;
  double wall_seconds = 0.0;
  double modeled_seconds = 0.0;
  bool bitwise_equal_blocking = false;
  bool words_equal = false;
  bool audit_ok = false;
  bool trace_consistent = false;
  const char* verdict = "";
};

int run_bench(const std::string& out_path, bool smoke, double factor) {
  const costmodel::Machine m = bench_machine();
  Matrix a = random_matrix(kN1, kN2, kSeed);
  core::Session session(kRanks);

  // Warm the pool (thread creation + first-touch) before anything timed.
  run_once(session, a, /*chunks=*/0);

  const RunResult blocking = run_once(session, a, /*chunks=*/0);
  const core::Plan plan = blocking.run.plan;
  const double modeled_blocking =
      core::plan_modeled_seconds(kN1, kN2, plan, m);
  const costmodel::CollectiveCost cost =
      core::plan_collective_cost(kN1, kN2, plan);
  const double modeled_comm = static_cast<double>(cost.messages) * m.alpha +
                              static_cast<double>(cost.words) * m.beta +
                              cost.flops * m.gamma;
  const double modeled_comp =
      costmodel::syrk_flops_per_rank({kN1, kN2}, plan.logical_ranks()) *
      m.gamma;
  const bool comm_bound = modeled_comm > modeled_comp;

  const std::vector<int> chunk_counts = smoke ? std::vector<int>{4}
                                              : std::vector<int>{1, 2, 4, 6};
  std::vector<ConfigReport> configs;
  Replay replay;  // from the deepest-pipelined configuration
  bool all_green = true;
  for (int chunks : chunk_counts) {
    const RunResult r = run_once(session, a, chunks);
    ConfigReport rep;
    rep.chunks = chunks;
    rep.wall_seconds = r.wall_seconds;
    rep.modeled_seconds =
        core::plan_modeled_seconds_pipelined(kN1, kN2, plan, chunks, m);
    rep.bitwise_equal_blocking = bitwise_equal(r.run.c, blocking.run.c);
    rep.words_equal =
        r.run.total.total.words_sent == blocking.run.total.total.words_sent &&
        r.run.total.total.words_recv == blocking.run.total.total.words_recv &&
        r.run.total.max.words_sent == blocking.run.total.max.words_sent;
    const trace::AuditReport audit =
        trace::BoundAuditor().audit(kN1, kN2, r.run, &*r.run.trace);
    rep.audit_ok = audit.ok();
    rep.trace_consistent = audit.trace_checked && audit.trace_consistent;
    rep.verdict = trace::audit_verdict_name(audit.verdict);
    if (!rep.bitwise_equal_blocking || !rep.words_equal || !rep.audit_ok ||
        !rep.trace_consistent) {
      std::cerr << "FAIL: chunks=" << chunks << " bitwise="
                << rep.bitwise_equal_blocking << " words=" << rep.words_equal
                << " audit=" << rep.audit_ok
                << " trace=" << rep.trace_consistent << "\n";
      all_green = false;
    }
    if (chunks > 1) replay = replay_overlaps(*r.run.trace, m);
    configs.push_back(rep);
  }

  const double replay_ratio = replay.bound_seconds > 0.0
                                  ? replay.makespan_seconds /
                                        replay.bound_seconds
                                  : 0.0;
  const double best_piped_modeled =
      configs.back().modeled_seconds;  // deepest pipeline
  const double modeled_ratio = best_piped_modeled / modeled_blocking;

  std::cout << "pipeline overlap (" << kN1 << "x" << kN2 << ", 3D c=" << kC
            << " p2=" << kP2 << ", " << kRanks << " ranks, "
            << (comm_bound ? "comm-bound" : "comp-bound") << "):\n"
            << "  modeled blocking " << modeled_blocking * 1e6
            << " us, pipelined " << best_piped_modeled * 1e6 << " us ("
            << modeled_ratio << "x)\n"
            << "  reduce-phase replay: makespan "
            << replay.makespan_seconds * 1e6 << " us vs max(comm, comp) "
            << replay.bound_seconds * 1e6 << " us (" << replay_ratio
            << "x, " << replay.max_groups << " groups)\n";

  bool ok = all_green;
  if (!comm_bound) {
    std::cerr << "FAIL: shape is not comm-bound (comm " << modeled_comm
              << " s <= comp " << modeled_comp << " s)\n";
    ok = false;
  }
  if (smoke) {
    if (modeled_ratio > factor) {
      std::cerr << "FAIL: pipelined modeled time " << modeled_ratio
                << "x blocking > " << factor << "x\n";
      ok = false;
    }
    std::cout << (ok ? "OK\n" : "") << std::flush;
    return ok ? 0 : 1;
  }
  if (replay_ratio > 1.15 || replay_ratio <= 0.0) {
    std::cerr << "FAIL: replayed makespan " << replay_ratio
              << "x the overlap bound (want <= 1.15)\n";
    ok = false;
  }

  std::ostringstream os;
  os << "{\n";
  os << "  \"shape\": {\"n1\": " << kN1 << ", \"n2\": " << kN2
     << ", \"algorithm\": \"3d\", \"c\": " << kC << ", \"p2\": " << kP2
     << ", \"ranks\": " << kRanks << "},\n";
  os << "  \"machine\": {\"alpha\": " << m.alpha << ", \"beta\": " << m.beta
     << ", \"gamma\": " << m.gamma << "},\n";
  os << "  \"modeled\": {\"blocking_seconds\": " << modeled_blocking
     << ", \"comm_seconds\": " << modeled_comm
     << ", \"comp_seconds\": " << modeled_comp
     << ", \"comm_bound\": " << (comm_bound ? "true" : "false") << "},\n";
  os << "  \"reduce_phase_replay\": {\"measured_makespan_seconds\": "
     << replay.makespan_seconds
     << ", \"overlap_bound_seconds\": " << replay.bound_seconds
     << ", \"ratio_to_bound\": " << replay_ratio
     << ", \"comm_seconds\": " << replay.comm_seconds
     << ", \"comp_seconds\": " << replay.comp_seconds
     << ", \"groups\": " << replay.max_groups
     << ", \"comp0_estimated\": true},\n";
  os << "  \"configs\": [\n";
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const ConfigReport& c = configs[i];
    os << "    {\"chunks\": " << c.chunks
       << ", \"wall_seconds\": " << c.wall_seconds
       << ", \"modeled_seconds\": " << c.modeled_seconds
       << ", \"modeled_vs_blocking\": " << c.modeled_seconds / modeled_blocking
       << ", \"bitwise_equal_blocking\": "
       << (c.bitwise_equal_blocking ? "true" : "false")
       << ", \"words_equal\": " << (c.words_equal ? "true" : "false")
       << ", \"audit_verdict\": \"" << c.verdict << "\""
       << ", \"audit_ok\": " << (c.audit_ok ? "true" : "false")
       << ", \"trace_consistent\": " << (c.trace_consistent ? "true" : "false")
       << "}" << (i + 1 < configs.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";

  if (out_path.empty()) {
    std::cout << os.str();
  } else {
    std::ofstream f(out_path);
    f << os.str();
    if (!f) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    std::cout << "wrote " << out_path << "\n";
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out;
  bool smoke = false;
  double factor = 0.9;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else if (arg == "--factor" && i + 1 < argc) {
      factor = std::strtod(argv[++i], nullptr);
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "usage: pipeline_overlap [--out FILE] "
                   "[--smoke [--factor F]]\n";
      return 2;
    }
  }
  return run_bench(out, smoke, factor);
}
