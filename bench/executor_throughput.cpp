// Executor throughput: jobs/sec for small SYRKs, fresh-world-per-job
// (the pre-pool execution model: P threads created and joined per call)
// versus a warm Session reusing parked pool workers. Small problems are
// dominated by dispatch overhead, which is exactly what the persistent
// executor removes. Emits one JSON line for machine consumption.
//
//   $ ./bench/executor_throughput [n1] [n2] [procs] [jobs]
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/session.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "matrix/ukernel.hpp"
#include "simmpi/worker_pool.hpp"
#include "support/table.hpp"

using namespace parsyrk;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n1 = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;
  const std::size_t n2 = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 64;
  const int procs = argc > 3 ? std::atoi(argv[3]) : 12;
  const int jobs = argc > 4 ? std::atoi(argv[4]) : 200;

  Matrix a = random_matrix(n1, n2, /*seed=*/5);
  Matrix ref;
  {
    core::Session ref_session(procs);
    ref = core::syrk(ref_session, core::SyrkRequest(a)).c;
  }

  std::cout << "Executor throughput: " << jobs << " jobs of " << n1 << "x"
            << n2 << " 1D SYRK at P = " << procs << "\n\n";

  // Dispatch-only baseline: empty SPMD bodies isolate the executor cost
  // (thread creation + join versus a condition-variable handoff to parked
  // workers) from the SYRK compute and traffic every job pays either way.
  const auto t_fresh_empty = Clock::now();
  for (int j = 0; j < jobs; ++j) {
    comm::WorkerPool fresh_pool;
    comm::World world(procs, fresh_pool);
    world.run([](comm::Comm&) {});
  }
  const double fresh_empty_sec = seconds_since(t_fresh_empty);
  double warm_empty_sec = 0.0;
  {
    comm::WorkerPool warm_pool;
    comm::World world(procs, warm_pool);
    world.run([](comm::Comm&) {});  // warmup
    const auto t_warm_empty = Clock::now();
    for (int j = 0; j < jobs; ++j) world.run([](comm::Comm&) {});
    warm_empty_sec = seconds_since(t_warm_empty);
  }
  const double dispatch_speedup = fresh_empty_sec / warm_empty_sec;
  std::cout << "dispatch only (empty job): fresh "
            << fmt_double(1e6 * fresh_empty_sec / jobs, 4) << " us/job, warm "
            << fmt_double(1e6 * warm_empty_sec / jobs, 4) << " us/job ("
            << fmt_double(dispatch_speedup, 3) << "x)\n\n";

  // Fresh world per job: a private, discarded pool per job forces the old
  // execution model — every job pays P thread creations and joins.
  double fresh_err = 0.0;
  std::uint64_t fresh_threads = 0;
  const auto t_fresh = Clock::now();
  for (int j = 0; j < jobs; ++j) {
    comm::WorkerPool pool;
    core::Session throwaway(procs, pool);
    const auto run = core::syrk(throwaway, core::SyrkRequest(a).use_1d());
    fresh_err = std::max(fresh_err, max_abs_diff(run.c.view(), ref.view()));
    fresh_threads += pool.threads_created();
  }
  const double fresh_sec = seconds_since(t_fresh);

  // Warm session: one lease, every job dispatches to parked workers.
  double warm_err = 0.0;
  comm::WorkerPool pool;
  core::Session session(procs, pool);
  const std::uint64_t warm_threads = pool.threads_created();
  const auto t_warm = Clock::now();
  for (int j = 0; j < jobs; ++j) {
    const auto run = core::syrk(session, core::SyrkRequest(a).use_1d());
    warm_err = std::max(warm_err, max_abs_diff(run.c.view(), ref.view()));
  }
  const double warm_sec = seconds_since(t_warm);

  // Warm session with per-message tracing: same jobs, each draining its
  // JobTrace. Overhead should stay under a few percent (one branch plus a
  // relaxed ring push per message); it is exactly zero when tracing is off,
  // which the warm run above demonstrates (same binary, sink pointer null).
  double traced_err = 0.0;
  std::uint64_t traced_events = 0;
  session.enable_tracing();
  const auto t_traced = Clock::now();
  for (int j = 0; j < jobs; ++j) {
    const auto run =
        core::syrk(session, core::SyrkRequest(a).use_1d().with_trace());
    traced_err = std::max(traced_err, max_abs_diff(run.c.view(), ref.view()));
    traced_events += run.trace ? run.trace->events.size() : 0;
  }
  const double traced_sec = seconds_since(t_traced);

  // Warm session with SPMD protocol verification: same jobs again under
  // the full dynamic verifier (collective matching, watchdog registration,
  // leak and ledger checks at job end). The hot-path cost is one null-check
  // plus the inline topology test per message; docs/VERIFY.md records the
  // <= 10% budget this measures.
  double verified_err = 0.0;
  session.world().disable_tracing();  // isolate verify cost from trace cost
  const auto t_verified = Clock::now();
  for (int j = 0; j < jobs; ++j) {
    const auto run =
        core::syrk(session, core::SyrkRequest(a).use_1d().with_verify());
    verified_err =
        std::max(verified_err, max_abs_diff(run.c.view(), ref.view()));
  }
  const double verified_sec = seconds_since(t_verified);

  // Local-kernel time: the gamma the planner's cost model should use on this
  // host, for both kernel tiers (docs/PLANNING.md records the calibration).
  const double gamma_packed = bench::measured_gamma_syrk(
      [](const ConstMatrixView& av, const MatrixView& cv) {
        syrk_lower(av, cv);
      });
  const double gamma_blocked = bench::measured_gamma_syrk(
      [](const ConstMatrixView& av, const MatrixView& cv) {
        syrk_lower_blocked(av, cv);
      });
  std::cout << "local kernel gamma (s/MAC, 512x128 syrk_lower): packed "
            << gamma_packed << " (" << kern::active_ukernel().name
            << " ukernel), blocked " << gamma_blocked << "\n\n";

  const double fresh_jps = jobs / fresh_sec;
  const double warm_jps = jobs / warm_sec;
  const double traced_jps = jobs / traced_sec;
  const double verified_jps = jobs / verified_sec;
  const double speedup = warm_jps / fresh_jps;
  const double trace_overhead_pct = 100.0 * (traced_sec / warm_sec - 1.0);
  const double verify_overhead_pct = 100.0 * (verified_sec / warm_sec - 1.0);

  Table t({"executor", "jobs/sec", "threads created", "max err"});
  t.add_row({"fresh world per job", fmt_double(fresh_jps, 6),
             std::to_string(fresh_threads), fmt_double(fresh_err, 3)});
  t.add_row({"warm session", fmt_double(warm_jps, 6),
             std::to_string(warm_threads), fmt_double(warm_err, 3)});
  t.add_row({"warm session, traced", fmt_double(traced_jps, 6),
             std::to_string(warm_threads), fmt_double(traced_err, 3)});
  t.add_row({"warm session, verified", fmt_double(verified_jps, 6),
             std::to_string(warm_threads), fmt_double(verified_err, 3)});
  t.print(std::cout);
  std::cout << "\nspeedup (warm/fresh): " << fmt_double(speedup, 4) << "x\n";
  std::cout << "trace overhead (traced vs warm): "
            << fmt_double(trace_overhead_pct, 3) << "% over " << traced_events
            << " events\n";
  std::cout << "verify overhead (verified vs warm): "
            << fmt_double(verify_overhead_pct, 3) << "%\n";

  // Machine-readable summary (one line).
  std::cout << "\n{\"bench\":\"executor_throughput\",\"n1\":" << n1
            << ",\"n2\":" << n2 << ",\"procs\":" << procs << ",\"jobs\":"
            << jobs << ",\"fresh_jobs_per_sec\":" << fresh_jps
            << ",\"warm_jobs_per_sec\":" << warm_jps << ",\"speedup\":"
            << speedup << ",\"dispatch_speedup\":" << dispatch_speedup
            << ",\"warm_threads_created\":" << warm_threads
            << ",\"traced_jobs_per_sec\":" << traced_jps
            << ",\"trace_overhead_pct\":" << trace_overhead_pct
            << ",\"traced_events\":" << traced_events
            << ",\"verified_jobs_per_sec\":" << verified_jps
            << ",\"verify_overhead_pct\":" << verify_overhead_pct
            << ",\"gamma_packed\":" << gamma_packed
            << ",\"gamma_blocked\":" << gamma_blocked
            << ",\"ukernel\":\"" << kern::active_ukernel().name << "\"}\n";

  return (fresh_err < 1e-9 && warm_err < 1e-9 && traced_err < 1e-9 &&
          verified_err < 1e-9)
             ? EXIT_SUCCESS
             : EXIT_FAILURE;
}
