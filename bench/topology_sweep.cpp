// Two-level topology snapshot: quantifies how much scarce inter-node volume
// the hierarchical collectives save over the flat pairwise schedule when the
// same ranks are packed onto nodes. For each ranks-per-node setting the 1D
// reduce moves T = n1(n1+1)/2 packed words; the busiest node's inter-tier
// share is
//
//   pairwise (tier-split):  R * (T/P) * (P - R)   words
//   hierarchical:           (1 - 1/N) * T         words
//
// so the hierarchy wins by ~R/2 once leaders aggregate their node's
// contribution before touching the scarce tier. Emits the machine-readable
// snapshot committed as BENCH_TOPOLOGY.json.
//
//   topology_sweep [--out FILE]
//       runs every (ranks_per_node, strategy) configuration, verifies each
//       against the flat blocking run bitwise and through BoundAuditor
//       (including the Theorem 1 @ P = #nodes inter check), and writes the
//       JSON snapshot (stdout if no --out).
//
//   topology_sweep --smoke
//       cheap perf gate for ctest: asserts the hierarchical schedule's
//       busiest-node inter volume strictly undercuts the pairwise tier
//       split at every swept ranks_per_node, with everything bitwise-equal
//       to flat and every audit green.
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "core/session.hpp"
#include "costmodel/model.hpp"
#include "matrix/matrix.hpp"
#include "trace/audit.hpp"

namespace {

using namespace parsyrk;

// 1D reduce-dominated shape on 8 ranks: every rpn in the sweep divides P
// and leaves >= 2 nodes, so both the tier split and the hierarchy apply.
constexpr std::uint64_t kN1 = 96;
constexpr std::uint64_t kN2 = 48;
constexpr int kRanks = 8;

/// Integer-valued input: the hierarchical reduce sums in a different order
/// than the pairwise schedule, and small-integer dot products are exact in
/// doubles under any association — so "bitwise equal to flat" stays a
/// meaningful cross-schedule check.
Matrix integer_matrix(std::uint64_t n1, std::uint64_t n2) {
  Matrix a(n1, n2);
  for (std::uint64_t i = 0; i < n1; ++i) {
    for (std::uint64_t j = 0; j < n2; ++j) {
      a(i, j) = static_cast<double>((i * 7 + j * 3) % 5) - 2.0;
    }
  }
  return a;
}

bool bitwise_equal(const Matrix& x, const Matrix& y) {
  if (x.rows() != y.rows() || x.cols() != y.cols()) return false;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    if (std::memcmp(x.data() + i * x.ld(), y.data() + i * y.ld(),
                    x.cols() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

struct ConfigReport {
  int ranks_per_node = 0;
  int nodes = 0;
  const char* strategy = "";
  std::uint64_t inter_words = 0;    // busiest node, scarce tier
  std::uint64_t total_words = 0;    // both tiers, whole job
  double modeled_seconds = 0.0;     // two-tier alpha-beta-gamma price
  double inter_ratio_vs_bound = 0.0;
  bool bitwise_equal_flat = false;
  bool audit_ok = false;
  const char* verdict = "";
};

ConfigReport run_config(core::Session& session, const Matrix& a,
                        const Matrix& flat_c, int rpn, bool hierarchical,
                        const costmodel::Machine& m) {
  core::SyrkRequest req(a);
  req.use_1d().with_topology(rpn).with_trace();
  if (hierarchical) req.with_reduce(core::ReduceKind::kHierarchical);
  const core::SyrkRun run = core::syrk(session, req);
  const trace::AuditReport audit =
      trace::BoundAuditor().audit(kN1, kN2, run, &*run.trace);

  ConfigReport rep;
  rep.ranks_per_node = rpn;
  rep.nodes = run.nodes;
  rep.strategy = hierarchical ? "hierarchical" : "pairwise";
  rep.inter_words = run.total_inter.critical_path_words();
  rep.total_words = run.total.total.words_sent;
  rep.modeled_seconds = core::plan_modeled_seconds(kN1, kN2, run.plan, m, rpn);
  rep.inter_ratio_vs_bound = audit.ratio_inter_vs_bound;
  rep.bitwise_equal_flat = bitwise_equal(run.c, flat_c);
  rep.audit_ok = audit.ok() && audit.trace_checked && audit.trace_consistent &&
                 audit.inter_checked;
  rep.verdict = trace::audit_verdict_name(audit.verdict);
  return rep;
}

int run_bench(const std::string& out_path, bool smoke) {
  const costmodel::Machine m;  // default two-tier machine
  Matrix a = integer_matrix(kN1, kN2);
  core::Session session(kRanks);

  const core::SyrkRun flat =
      core::syrk(session, core::SyrkRequest(a).use_1d());
  const std::uint64_t tri = kN1 * (kN1 + 1) / 2;

  const std::vector<int> rpns = {2, 4};
  std::vector<ConfigReport> configs;
  bool ok = true;
  for (int rpn : rpns) {
    const ConfigReport pairwise =
        run_config(session, a, flat.c, rpn, /*hierarchical=*/false, m);
    const ConfigReport hier =
        run_config(session, a, flat.c, rpn, /*hierarchical=*/true, m);
    for (const ConfigReport& rep : {pairwise, hier}) {
      if (!rep.bitwise_equal_flat || !rep.audit_ok) {
        std::cerr << "FAIL: rpn=" << rep.ranks_per_node << " "
                  << rep.strategy << " bitwise=" << rep.bitwise_equal_flat
                  << " audit=" << rep.audit_ok << " verdict=" << rep.verdict
                  << "\n";
        ok = false;
      }
    }
    // The whole point of the hierarchy: strictly less scarce-tier traffic.
    if (hier.inter_words >= pairwise.inter_words) {
      std::cerr << "FAIL: rpn=" << rpn << " hierarchical inter "
                << hier.inter_words << " words >= pairwise "
                << pairwise.inter_words << "\n";
      ok = false;
    }
    // Closed forms the docs advertise; drift here means the schedule or the
    // ledger's tier attribution changed.
    const std::uint64_t nodes = static_cast<std::uint64_t>(kRanks) / rpn;
    const std::uint64_t hier_expect = tri - tri / nodes;
    const std::uint64_t pair_expect = static_cast<std::uint64_t>(rpn) *
                                      (tri / kRanks) *
                                      (kRanks - static_cast<std::uint64_t>(rpn));
    if (hier.inter_words != hier_expect ||
        pairwise.inter_words != pair_expect) {
      std::cerr << "FAIL: rpn=" << rpn << " inter words off closed form: "
                << "hier " << hier.inter_words << " (want " << hier_expect
                << "), pairwise " << pairwise.inter_words << " (want "
                << pair_expect << ")\n";
      ok = false;
    }
    configs.push_back(pairwise);
    configs.push_back(hier);
  }

  std::cout << "topology sweep (" << kN1 << "x" << kN2 << ", 1D on "
            << kRanks << " ranks, T = " << tri << " packed words):\n";
  for (const ConfigReport& c : configs) {
    std::cout << "  rpn=" << c.ranks_per_node << " (" << c.nodes
              << " nodes) " << c.strategy << ": busiest node "
              << c.inter_words << " inter words, "
              << c.inter_ratio_vs_bound << "x Theorem 1 @ P=" << c.nodes
              << ", modeled " << c.modeled_seconds * 1e6 << " us\n";
  }

  if (smoke) {
    std::cout << (ok ? "OK\n" : "") << std::flush;
    return ok ? 0 : 1;
  }

  std::ostringstream os;
  os << "{\n";
  os << "  \"shape\": {\"n1\": " << kN1 << ", \"n2\": " << kN2
     << ", \"algorithm\": \"1d\", \"ranks\": " << kRanks
     << ", \"packed_triangle_words\": " << tri << "},\n";
  os << "  \"machine\": {\"alpha\": " << m.alpha << ", \"beta\": " << m.beta
     << ", \"alpha_intra\": " << m.alpha_intra
     << ", \"beta_intra\": " << m.beta_intra << ", \"gamma\": " << m.gamma
     << "},\n";
  os << "  \"configs\": [\n";
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const ConfigReport& c = configs[i];
    os << "    {\"ranks_per_node\": " << c.ranks_per_node
       << ", \"nodes\": " << c.nodes << ", \"strategy\": \"" << c.strategy
       << "\", \"inter_words_busiest_node\": " << c.inter_words
       << ", \"total_words\": " << c.total_words
       << ", \"modeled_seconds\": " << c.modeled_seconds
       << ", \"inter_ratio_vs_bound\": " << c.inter_ratio_vs_bound
       << ", \"bitwise_equal_flat\": "
       << (c.bitwise_equal_flat ? "true" : "false")
       << ", \"audit_verdict\": \"" << c.verdict << "\""
       << ", \"audit_ok\": " << (c.audit_ok ? "true" : "false") << "}"
       << (i + 1 < configs.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";

  if (out_path.empty()) {
    std::cout << os.str();
  } else {
    std::ofstream f(out_path);
    f << os.str();
    if (!f) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    std::cout << "wrote " << out_path << "\n";
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "usage: topology_sweep [--out FILE] [--smoke]\n";
      return 2;
    }
  }
  return run_bench(out, smoke);
}
