// E5 — Algorithm 1 (1D) optimality: runs the 1D algorithm on short-wide
// matrices across a P sweep, comparing the measured per-rank communication
// against eq. (3) (exact) and against the Theorem 1 case-1 lower bound
// (ratio → 1; the residual slack is the (n1+1)/(n1−1) diagonal term).
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.hpp"
#include "bounds/syrk_bounds.hpp"
#include "core/session.hpp"
#include "core/syrk.hpp"
#include "costmodel/algorithm_costs.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "support/table.hpp"

using namespace parsyrk;

int main() {
  bench::heading("E5 / Algorithm 1 (1D SYRK) vs Theorem 1 case 1");

  const std::size_t n1 = 96;
  const std::size_t n2 = 36000;  // wide enough to stay in case 1 for all P
  Matrix a = random_matrix(n1, n2, 1);
  Matrix ref = syrk_reference(a.view());

  Table t({"P", "case", "measured words/rank", "eq.(3) words", "bound words",
           "meas/eq3", "meas/bound", "correct"});
  bool ok = true;
  for (int p : {2, 4, 8, 16, 32, 64}) {
    core::Session session(p);
    const auto run = core::syrk(session, core::SyrkRequest(a).use_1d());
    const double err = max_abs_diff(run.c.view(), ref.view());
    const auto measured =
        static_cast<double>(run.total.critical_path_words());
    const double eq3 = costmodel::syrk_1d_cost({n1, n2}, p).words;
    const auto bound = bounds::syrk_lower_bound(n1, n2, p);
    const double r_eq3 = measured / eq3;
    const double r_bound = measured / bound.communicated;
    ok = ok && err < 1e-9 && bound.regime == bounds::Regime::kOneD &&
         r_eq3 > 0.99 && r_eq3 < 1.01 && r_bound >= 0.999 && r_bound < 1.10;
    t.add_row({std::to_string(p), bounds::regime_name(bound.regime),
               fmt_double(measured, 8), fmt_double(eq3, 8),
               fmt_double(bound.communicated, 8), fmt_double(r_eq3, 4),
               fmt_double(r_bound, 4), err < 1e-9 ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\n1D algorithm attains the case-1 bound constant: "
            << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
