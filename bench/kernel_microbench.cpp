// E13 — google-benchmark microbenchmarks of the local kernels and runtime
// collectives. Not a paper claim (the paper's results are communication
// volumes); this is the engineering sanity layer: the perf trajectory
// naive < blocked < packed must hold, and collective wall time must scale
// with volume. Items processed = multiply-adds, so the rate column reads as
// MAC/s across all three tiers.
#include <benchmark/benchmark.h>

#include "matrix/kernels.hpp"
#include "matrix/pack.hpp"
#include "matrix/random.hpp"
#include "matrix/ukernel.hpp"
#include "simmpi/comm.hpp"
#include "sparse/csr.hpp"
#include "support/rng.hpp"

namespace {

using namespace parsyrk;

// --- GEMM-NT tiers: C (n×n) += A·Bᵀ, k = n. MACs = n³. ---

template <void (*Kernel)(const ConstMatrixView&, const ConstMatrixView&,
                         const MatrixView&)>
void BM_GemmNtTier(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix a = random_matrix(n, n, 1);
  Matrix b = random_matrix(n, n, 2);
  Matrix c(n, n);
  for (auto _ : state) {
    c.fill(0.0);
    Kernel(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmNtTier<gemm_nt_naive>)
    ->Name("BM_GemmNtNaive")->Arg(64)->Arg(128)->Arg(256);
BENCHMARK(BM_GemmNtTier<gemm_nt_blocked>)
    ->Name("BM_GemmNtBlocked")->Arg(64)->Arg(128)->Arg(256)->Arg(512);
BENCHMARK(BM_GemmNtTier<gemm_nt>)
    ->Name("BM_GemmNtPacked")->Arg(64)->Arg(128)->Arg(256)->Arg(512);

// --- SYRK tiers: C (n×n lower) += A·Aᵀ, k = n/4. MACs = n²k/2. ---

template <void (*Kernel)(const ConstMatrixView&, const MatrixView&)>
void BM_SyrkTier(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix a = random_matrix(n, n / 4, 3);
  Matrix c(n, n);
  kern::reset_pack_bytes();
  for (auto _ : state) {
    c.fill(0.0);
    Kernel(a.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * (n / 4) / 2);
  state.counters["pack_bytes_per_iter"] = benchmark::Counter(
      static_cast<double>(kern::pack_bytes()) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_SyrkTier<syrk_lower_naive>)
    ->Name("BM_SyrkLowerNaive")->Arg(128)->Arg(256);
BENCHMARK(BM_SyrkTier<syrk_lower_blocked>)
    ->Name("BM_SyrkLower")->Arg(128)->Arg(256)->Arg(512);
BENCHMARK(BM_SyrkTier<syrk_lower>)
    ->Name("BM_SyrkLowerPacked")->Arg(128)->Arg(256)->Arg(512);

// --- SYR2K tiers: C (n×n lower) += A·Bᵀ + B·Aᵀ, k = n/4. MACs = n²k. ---

template <void (*Kernel)(const ConstMatrixView&, const ConstMatrixView&,
                         const MatrixView&)>
void BM_Syr2kTier(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix a = random_matrix(n, n / 4, 4);
  Matrix b = random_matrix(n, n / 4, 5);
  Matrix c(n, n);
  for (auto _ : state) {
    c.fill(0.0);
    Kernel(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * (n / 4));
}
BENCHMARK(BM_Syr2kTier<syr2k_lower_naive>)
    ->Name("BM_Syr2kLowerNaive")->Arg(128)->Arg(256);
BENCHMARK(BM_Syr2kTier<syr2k_lower_blocked>)
    ->Name("BM_Syr2kLower")->Arg(128)->Arg(256);
BENCHMARK(BM_Syr2kTier<syr2k_lower>)
    ->Name("BM_Syr2kLowerPacked")->Arg(128)->Arg(256)->Arg(512);

// --- SYMM tiers: C (n×m) += S·B, S n×n symmetric, m = n. MACs = n²m. ---

template <void (*Kernel)(const ConstMatrixView&, const ConstMatrixView&,
                         const MatrixView&)>
void BM_SymmTier(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix s = random_matrix(n, n, 7);
  Matrix b = random_matrix(n, n, 8);
  Matrix c(n, n);
  for (auto _ : state) {
    c.fill(0.0);
    Kernel(s.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_SymmTier<symm_lower_left_naive>)
    ->Name("BM_SymmLowerLeftNaive")->Arg(128)->Arg(256);
BENCHMARK(BM_SymmTier<symm_lower_left>)
    ->Name("BM_SymmLowerLeftPacked")->Arg(128)->Arg(256)->Arg(512);

void BM_SparseSyrk(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double fill = static_cast<double>(state.range(1)) / 100.0;
  Matrix m(n, 2 * n);
  Rng rng(6);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 2 * n; ++j) {
      if (rng.uniform() < fill) m(i, j) = rng.uniform(-1, 1);
    }
  }
  const sparse::Csr s = sparse::Csr::from_dense(m.view());
  Matrix c(n, n);
  for (auto _ : state) {
    c.fill(0.0);
    sparse::sparse_syrk_lower(s, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          sparse::sparse_syrk_flops(s));
}
BENCHMARK(BM_SparseSyrk)->Args({256, 10})->Args({256, 2});

void BM_AllToAll(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const auto block = static_cast<std::size_t>(state.range(1));
  comm::World world(p);
  for (auto _ : state) {
    world.run([&](comm::Comm& comm) {
      std::vector<std::vector<double>> send(
          p, std::vector<double>(block, 1.0));
      auto out = comm.all_to_all_v(send);
      benchmark::DoNotOptimize(out.data());
    });
  }
  state.SetItemsProcessed(state.iterations() * p * (p - 1) * block);
}
BENCHMARK(BM_AllToAll)->Args({4, 1024})->Args({8, 1024})->Args({16, 1024});

void BM_ReduceScatter(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const auto block = static_cast<std::size_t>(state.range(1));
  comm::World world(p);
  for (auto _ : state) {
    world.run([&](comm::Comm& comm) {
      std::vector<double> data(block * p, 1.0);
      auto out = comm.reduce_scatter_equal(data);
      benchmark::DoNotOptimize(out.data());
    });
  }
  state.SetItemsProcessed(state.iterations() * p * (p - 1) * block);
}
BENCHMARK(BM_ReduceScatter)->Args({4, 1024})->Args({8, 1024})->Args({16, 1024});

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::AddCustomContext("ukernel", kern::active_ukernel().name);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
