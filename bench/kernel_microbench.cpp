// E13 — google-benchmark microbenchmarks of the local kernels and runtime
// collectives. Not a paper claim (the paper's results are communication
// volumes); this is the engineering sanity layer: blocked kernels must beat
// naive, and collective wall time must scale with volume.
#include <benchmark/benchmark.h>

#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "simmpi/comm.hpp"
#include "sparse/csr.hpp"
#include "support/rng.hpp"

namespace {

using namespace parsyrk;

void BM_GemmNtNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix a = random_matrix(n, n, 1);
  Matrix b = random_matrix(n, n, 2);
  Matrix c(n, n);
  for (auto _ : state) {
    c.fill(0.0);
    gemm_nt_naive(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmNtNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNtBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix a = random_matrix(n, n, 1);
  Matrix b = random_matrix(n, n, 2);
  Matrix c(n, n);
  for (auto _ : state) {
    c.fill(0.0);
    gemm_nt(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmNtBlocked)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_SyrkLower(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix a = random_matrix(n, n / 4, 3);
  Matrix c(n, n);
  for (auto _ : state) {
    c.fill(0.0);
    syrk_lower(a.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * (n / 4) / 2);
}
BENCHMARK(BM_SyrkLower)->Arg(128)->Arg(256)->Arg(512);

void BM_Syr2kLower(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix a = random_matrix(n, n / 4, 4);
  Matrix b = random_matrix(n, n / 4, 5);
  Matrix c(n, n);
  for (auto _ : state) {
    c.fill(0.0);
    syr2k_lower(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * (n / 4));
}
BENCHMARK(BM_Syr2kLower)->Arg(128)->Arg(256);

void BM_SparseSyrk(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double fill = static_cast<double>(state.range(1)) / 100.0;
  Matrix m(n, 2 * n);
  Rng rng(6);
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (rng.uniform() < fill) m.data()[i] = rng.uniform(-1, 1);
  }
  const sparse::Csr s = sparse::Csr::from_dense(m.view());
  Matrix c(n, n);
  for (auto _ : state) {
    c.fill(0.0);
    sparse::sparse_syrk_lower(s, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          sparse::sparse_syrk_flops(s));
}
BENCHMARK(BM_SparseSyrk)->Args({256, 10})->Args({256, 2});

void BM_AllToAll(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const auto block = static_cast<std::size_t>(state.range(1));
  comm::World world(p);
  for (auto _ : state) {
    world.run([&](comm::Comm& comm) {
      std::vector<std::vector<double>> send(
          p, std::vector<double>(block, 1.0));
      auto out = comm.all_to_all_v(send);
      benchmark::DoNotOptimize(out.data());
    });
  }
  state.SetItemsProcessed(state.iterations() * p * (p - 1) * block);
}
BENCHMARK(BM_AllToAll)->Args({4, 1024})->Args({8, 1024})->Args({16, 1024});

void BM_ReduceScatter(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const auto block = static_cast<std::size_t>(state.range(1));
  comm::World world(p);
  for (auto _ : state) {
    world.run([&](comm::Comm& comm) {
      std::vector<double> data(block * p, 1.0);
      auto out = comm.reduce_scatter_equal(data);
      benchmark::DoNotOptimize(out.data());
    });
  }
  state.SetItemsProcessed(state.iterations() * p * (p - 1) * block);
}
BENCHMARK(BM_ReduceScatter)->Args({4, 1024})->Args({8, 1024})->Args({16, 1024});

}  // namespace

BENCHMARK_MAIN();
