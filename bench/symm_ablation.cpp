// E15 — SYMM (§6 extension): triangle-block distribution of the symmetric
// INPUT. Owner-computes on the triangle blocks of S means S never moves;
// only B row blocks (gather) and partial C rows (reduce) travel. A
// GEMM-based SYMM hauls n²/√P-word panels of the expanded S, so the gap
// grows with n/m — measured here across aspect ratios.
#include <cstdlib>
#include <iostream>

#include "baseline/gemm.hpp"
#include "bench/bench_util.hpp"
#include "core/symm.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "support/table.hpp"

using namespace parsyrk;

int main() {
  bench::heading("E15 / SYMM: triangle-block input distribution vs GEMM");

  Table t({"n", "m", "triangle words/rank (P=132)", "GEMM words/rank (P=121)",
           "GEMM/triangle", "correct"});
  bool ok = true;
  double prev_ratio = 0.0;
  for (std::size_t m : {96, 24, 12, 4}) {
    const std::size_t n = 484;  // 4·11², triangle grid c = 11
    Matrix s = syrk_reference(random_matrix(n, 8, 31).view());
    Matrix b = random_matrix(n, m, 32);
    Matrix ref = symm_reference(s.view(), b.view());
    comm::World wt(132), wg(121);
    Matrix ct = core::symm_2d(wt, s, b, 11);
    Matrix cg = baseline::symm_gemm_baseline(wg, s, b, 11);
    const bool correct = max_abs_diff(ct.view(), ref.view()) < 1e-8 &&
                         max_abs_diff(cg.view(), ref.view()) < 1e-8;
    const double tri =
        static_cast<double>(wt.ledger().summary().critical_path_words());
    const double gem =
        static_cast<double>(wg.ledger().summary().critical_path_words());
    const double ratio = gem / tri;
    ok = ok && correct && ratio > prev_ratio;  // gap grows as m shrinks
    prev_ratio = ratio;
    t.add_row({std::to_string(n), std::to_string(m), fmt_double(tri, 8),
               fmt_double(gem, 8), fmt_double(ratio, 4),
               correct ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nS panels are " << fmt_double(484.0 * 484.0 / 11.0, 6)
            << "-word gathers in the GEMM scheme and zero in the "
               "triangle scheme; the advantage scales with n/m.\n";
  std::cout << "SYMM triangle distribution eliminates S movement: "
            << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
