// E7 — Algorithm 3 (3D) optimality: runs the 3D algorithm with the §5.4
// processor grid on square-ish matrices, comparing measured communication
// against the §5.3.2 closed form (eq. (12)) and the Theorem 1 case-3 bound
// (3/2)(n1(n1−1)n2/P)^{2/3} (ratio → 1 as P grows).
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.hpp"
#include "bounds/syrk_bounds.hpp"
#include "core/session.hpp"
#include "core/syrk.hpp"
#include "costmodel/algorithm_costs.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "support/table.hpp"

using namespace parsyrk;

int main() {
  bench::heading("E7 / Algorithm 3 (3D SYRK) vs Theorem 1 case 3");

  struct Config {
    std::size_t n1, n2;
    std::uint64_t c, p2;
  };
  // Square problems; grids follow §5.4's p1 ≈ P^{2/3}, p2 ≈ P^{1/3} for
  // n1 = n2 (p1 = c(c+1) rounded to the prime-pronic lattice).
  const Config configs[] = {
      {144, 144, 2, 2},    // P = 12:  p1 = 6  ≈ 12^{2/3} = 5.2
      {144, 144, 2, 3},    // P = 18
      {180, 180, 3, 3},    // P = 36:  p1 = 12 ≈ 36^{2/3} = 10.9
      {180, 180, 3, 4},    // P = 48
      {300, 300, 5, 5},    // P = 150: p1 = 30 ≈ 150^{2/3} = 28.2
  };

  Table t({"P", "grid p1 x p2", "n1=n2", "case", "measured words/rank",
           "eq.(12) words", "bound words", "meas/eq12", "meas/bound",
           "correct"});
  bool ok = true;
  double prev_ratio = 1e9;
  for (const auto& cfg : configs) {
    const std::uint64_t p1 = cfg.c * (cfg.c + 1);
    const auto p = static_cast<int>(p1 * cfg.p2);
    Matrix a = random_matrix(cfg.n1, cfg.n2, 3);
    Matrix ref = syrk_reference(a.view());
    core::Session session(p);
    const auto run =
        core::syrk(session, core::SyrkRequest(a).use_3d(cfg.c, cfg.p2));
    const double err = max_abs_diff(run.c.view(), ref.view());
    const auto measured =
        static_cast<double>(run.total.critical_path_words());
    const double eq12 =
        costmodel::syrk_3d_cost({cfg.n1, cfg.n2}, cfg.c, cfg.p2).words;
    const auto bound = bounds::syrk_lower_bound(cfg.n1, cfg.n2, p);
    const double r12 = measured / eq12;
    const double rb = measured / bound.communicated;
    ok = ok && err < 1e-9 && bound.regime == bounds::Regime::kThreeD &&
         r12 > 0.8 && r12 < 1.05 && rb > 0.9 && rb < 2.2;
    prev_ratio = rb;
    t.add_row({std::to_string(p),
               std::to_string(p1) + " x " + std::to_string(cfg.p2),
               std::to_string(cfg.n1), bounds::regime_name(bound.regime),
               fmt_double(measured, 8), fmt_double(eq12, 8),
               fmt_double(bound.communicated, 8), fmt_double(r12, 4),
               fmt_double(rb, 4), err < 1e-9 ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\n3D algorithm tracks the case-3 bound (constants converge "
               "with P; the gap is the prime-pronic grid rounding): "
            << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
