// E14 — SYR2K (§6 extension): the triangle-block SYR2K algorithms against
// the extended lower bound (bounds/syr2k_bounds.hpp) and against the 2-GEMM
// baseline — the same factor-2 story as SYRK, with the A-phase volume
// exactly doubled because both factors travel.
#include <cstdlib>
#include <iostream>

#include "baseline/gemm.hpp"
#include "bench/bench_util.hpp"
#include "bounds/syr2k_bounds.hpp"
#include "core/syr2k.hpp"
#include "core/syrk.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "support/table.hpp"

using namespace parsyrk;

int main() {
  bench::heading("E14 / SYR2K: triangle-block algorithms vs extended bound");

  bool ok = true;
  Table t({"algo", "n1", "n2", "P", "case", "measured words/rank",
           "bound words", "meas/bound", "correct"});

  // 1D regime.
  {
    const std::size_t n1 = 96, n2 = 36000;
    const int p = 8;
    Matrix a = random_matrix(n1, n2, 21), b = random_matrix(n1, n2, 22);
    comm::World world(p);
    Matrix c = core::syr2k_1d(world, a, b);
    const double err =
        max_abs_diff(c.view(), syr2k_reference(a.view(), b.view()).view());
    const auto bound = bounds::syr2k_lower_bound(n1, n2, p);
    const double measured = static_cast<double>(
        world.ledger().summary().critical_path_words());
    const double r = measured / bound.communicated;
    ok = ok && err < 1e-8 && bound.regime == bounds::Regime::kOneD &&
         r > 0.99 && r < 1.10;
    t.add_row({"1D", std::to_string(n1), std::to_string(n2),
               std::to_string(p), bounds::regime_name(bound.regime),
               fmt_double(measured, 8), fmt_double(bound.communicated, 8),
               fmt_double(r, 4), err < 1e-8 ? "yes" : "NO"});
  }
  // 2D regime, converging c sweep (n2 = c+1 keeps chunks even AND keeps
  // P = c(c+1) below the SYR2K case-2 threshold n1(n1−1)/(4n2²)).
  for (std::uint64_t c : {3, 5, 7, 11}) {
    const std::size_t n1 = 4 * c * c;
    const std::size_t n2 = c + 1;
    const auto p = static_cast<int>(c * (c + 1));
    Matrix a = random_matrix(n1, n2, 23), b = random_matrix(n1, n2, 24);
    comm::World world(p);
    Matrix out = core::syr2k_2d(world, a, b, c);
    const double err =
        max_abs_diff(out.view(), syr2k_reference(a.view(), b.view()).view());
    const auto bound = bounds::syr2k_lower_bound(n1, n2, p);
    const double measured = static_cast<double>(
        world.ledger().summary().critical_path_words());
    const double r = measured / bound.communicated;
    ok = ok && err < 1e-8 && bound.regime == bounds::Regime::kTwoD &&
         r > 0.9 && r < 1.6;
    t.add_row({"2D", std::to_string(n1), std::to_string(n2),
               std::to_string(p), bounds::regime_name(bound.regime),
               fmt_double(measured, 8), fmt_double(bound.communicated, 8),
               fmt_double(r, 4), err < 1e-8 ? "yes" : "NO"});
  }
  // 3D regime.
  {
    const std::size_t n1 = 180, n2 = 180;
    const std::uint64_t c = 3, p2 = 3;
    Matrix a = random_matrix(n1, n2, 25), b = random_matrix(n1, n2, 26);
    comm::World world(36);
    Matrix out = core::syr2k_3d(world, a, b, c, p2);
    const double err =
        max_abs_diff(out.view(), syr2k_reference(a.view(), b.view()).view());
    const auto bound = bounds::syr2k_lower_bound(n1, n2, 36);
    const double measured = static_cast<double>(
        world.ledger().summary().critical_path_words());
    const double r = measured / bound.communicated;
    ok = ok && err < 1e-8 && bound.regime == bounds::Regime::kThreeD &&
         r > 0.8 && r < 2.0;
    t.add_row({"3D", std::to_string(n1), std::to_string(n2), "36",
               bounds::regime_name(bound.regime), fmt_double(measured, 8),
               fmt_double(bound.communicated, 8), fmt_double(r, 4),
               err < 1e-8 ? "yes" : "NO"});
  }
  t.print(std::cout);

  // Factor 2 vs the 2-GEMM composition.
  {
    const std::size_t n1 = 242, n2 = 12;
    Matrix a = random_matrix(n1, n2, 27), b = random_matrix(n1, n2, 28);
    comm::World wt(132), wg(121);
    Matrix ct = core::syr2k_2d(wt, a, b, 11);
    Matrix cg = baseline::syr2k_gemm_baseline(wg, a, b, 11);
    const bool same = max_abs_diff(ct.view(), cg.view()) < 1e-8;
    const double tri =
        static_cast<double>(wt.ledger().summary().max.words_sent);
    const double gem =
        static_cast<double>(wg.ledger().summary().max.words_sent);
    ok = ok && same && gem / tri > 1.8 && gem / tri < 2.2;
    std::cout << "\n2-GEMM baseline words / triangle SYR2K words = "
              << fmt_double(gem / tri, 4) << " (factor 2 as for SYRK)\n";
  }
  std::cout << "\nSYR2K extension attains its bound and halves the 2-GEMM "
               "baseline: "
            << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
