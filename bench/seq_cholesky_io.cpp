// E20 — Cholesky context: measured I/O of sequential blocked Cholesky (the
// kernel SYRK lives inside) under two trailing-update stagings, against the
// classical n³/(3√M) reference and Beaumont et al.'s √2-improved
// symmetric-aware bound. Panel residency removes the panel re-reads; the
// remaining gap to the improved bound is exactly the symmetry-aware
// blocking of [Beaumont et al. 2022], which this library covers for SYRK
// (E10) and which the paper extends to the parallel case.
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "seqio/seq_cholesky.hpp"
#include "support/table.hpp"

using namespace parsyrk;

int main() {
  bench::heading("E20 / Sequential Cholesky I/O (SYRK's host kernel)");

  const std::size_t n = 360;
  Matrix g = syrk_reference(random_matrix(n, n + 5, 61).view());
  for (std::size_t i = 0; i < n; ++i) g(i, i) += static_cast<double>(n);

  Table t({"M (words)", "scheme", "tile b", "loads", "stores", "total I/O",
           "I/O / classical", "I/O / sqrt2-bound", "correct"});
  bool ok = true;
  bool panel_wins_when_it_fits = false;
  for (std::uint64_t m : {3000, 12000, 48000}) {
    const double classical = seqio::seq_cholesky_io_reference(n, m);
    const double improved = seqio::seq_cholesky_io_lower_bound(n, m);
    const auto pair = seqio::seq_cholesky_tile_pair(g.view(), m);
    const auto panel = seqio::seq_cholesky_panel_resident(g.view(), m);
    for (const auto& [name, r] :
         {std::pair{"tile-pair", &pair}, std::pair{"panel-resident", &panel}}) {
      Matrix recon(n, n);
      gemm_nt(r->l.view(), r->l.view(), recon.view());
      const bool correct = max_abs_diff_lower(recon.view(), g.view()) < 1e-7;
      ok = ok && correct;
      t.add_row({fmt_count(m), name, std::to_string(r->tile),
                 fmt_count(r->loads), fmt_count(r->stores),
                 fmt_count(r->total_io()),
                 fmt_double(static_cast<double>(r->total_io()) / classical, 4),
                 fmt_double(static_cast<double>(r->total_io()) / improved, 4),
                 correct ? "yes" : "NO"});
    }
    // Panel residency pays off once the panel actually fits (M >~ n·√M):
    // at the largest memory it must win; at starved memory its forced tiny
    // tiles lose — the trade-off the table shows.
    if (m == 48000 && panel.total_io() < pair.total_io()) {
      panel_wins_when_it_fits = true;
    }
  }
  ok = ok && panel_wins_when_it_fits;
  t.print(std::cout);
  std::cout << "\nclassical reference / sqrt2-improved bound = "
            << fmt_double(std::sqrt(2.0), 4)
            << " — the symmetric-aware factor Beaumont et al. prove and this "
               "paper carries to parallel SYRK.\n";
  std::cout << "Sequential Cholesky I/O: " << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
