// E21 — The paper's concluding prediction (§1/§6): because SYRK halves both
// the flops AND the communicated words relative to GEMM, it should run
// ~2x faster "whether the time is computation or communication bound".
// This harness evaluates the α-β-γ model over a P sweep on three machine
// profiles and reports the predicted SYRK/GEMM speedup in each regime.
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.hpp"
#include "costmodel/algorithm_costs.hpp"
#include "costmodel/model.hpp"
#include "matrix/kernels.hpp"
#include "matrix/ukernel.hpp"
#include "support/prime.hpp"
#include "support/table.hpp"

using namespace parsyrk;
using costmodel::CollectiveCost;
using costmodel::Machine;
using costmodel::SyrkShape;

namespace {

/// Model time of the best SYRK algorithm at P (1D / 2D / 3D by regime).
double syrk_time(SyrkShape s, std::uint64_t p, const Machine& m) {
  CollectiveCost comm;
  const double flops =
      static_cast<double>(s.n1) * s.n1 * s.n2 / 2.0 / static_cast<double>(p);
  // Pick the cheapest of the available algorithm shapes at this P.
  double best = std::numeric_limits<double>::infinity();
  {
    CollectiveCost c = costmodel::syrk_1d_cost(s, p);
    best = std::min(best, c.seconds(m) + flops * m.gamma);
  }
  if (auto pron = largest_prime_pronic_at_most(p)) {
    const auto c2 = *as_prime_pronic(*pron);
    CollectiveCost c = costmodel::syrk_2d_cost(s, c2);
    best = std::min(best, c.seconds(m) + flops * m.gamma);
    for (std::uint64_t p2 = 2; *pron * p2 <= p; p2 *= 2) {
      CollectiveCost c3 = costmodel::syrk_3d_cost(s, c2, p2);
      best = std::min(best, c3.seconds(m) + flops * m.gamma);
    }
  }
  // Smaller pronic grids with more slices can win too.
  for (std::uint64_t cc : {2, 3, 5, 7, 11, 13}) {
    const std::uint64_t p1 = cc * (cc + 1);
    if (p1 > p) break;
    const std::uint64_t p2 = p / p1;
    if (p2 < 1) continue;
    CollectiveCost c3 = costmodel::syrk_3d_cost(s, cc, p2);
    const double f =
        static_cast<double>(s.n1) * s.n1 * s.n2 / 2.0 / (p1 * p2);
    best = std::min(best, c3.seconds(m) + f * m.gamma);
  }
  (void)comm;
  return best;
}

/// Model time of the best GEMM (computing the same A·Aᵀ without symmetry).
double gemm_time(SyrkShape s, std::uint64_t p, const Machine& m) {
  const double flops =
      static_cast<double>(s.n1) * s.n1 * s.n2 / static_cast<double>(p);
  double best = costmodel::gemm_1d_cost(s, p).seconds(m) + flops * m.gamma;
  for (std::uint64_t r = 2; r * r <= p; ++r) {
    const double f2 =
        static_cast<double>(s.n1) * s.n1 * s.n2 / (r * r);
    best = std::min(best,
                    costmodel::gemm_2d_cost(s, r).seconds(m) + f2 * m.gamma);
    for (std::uint64_t t = 2; r * r * t <= p; t *= 2) {
      const double f3 =
          static_cast<double>(s.n1) * s.n1 * s.n2 / (r * r * t);
      best = std::min(best, costmodel::gemm_3d_cost(s, r, t).seconds(m) +
                                f3 * m.gamma);
    }
  }
  return best;
}

}  // namespace

int main() {
  bench::heading("E21 / Modeled SYRK vs GEMM time (alpha-beta-gamma)");

  // The fourth profile uses the gamma actually measured on this host's
  // packed syrk_lower kernel (the others are paper-style nominal machines);
  // the ~2x prediction must hold for the real kernel speed too.
  const double gamma_here = bench::measured_gamma_syrk(
      [](const ConstMatrixView& av, const MatrixView& cv) {
        syrk_lower(av, cv);
      });
  std::cout << "measured local-kernel gamma: " << gamma_here << " s/MAC ("
            << kern::active_ukernel().name << " ukernel)\n";

  const Machine profiles[] = {
      {.alpha = 1e-6, .beta = 1e-9, .gamma = 1e-11},   // balanced cluster
      {.alpha = 1e-6, .beta = 2e-8, .gamma = 1e-12},   // communication-bound
      {.alpha = 1e-7, .beta = 1e-10, .gamma = 5e-11},  // computation-bound
      {.alpha = 1e-6, .beta = 1e-9, .gamma = gamma_here},  // this host
  };
  const char* names[] = {"balanced", "comm-bound", "compute-bound",
                         "this-host"};
  const SyrkShape shape{20000, 20000};

  Table t({"machine", "P", "SYRK time (s)", "GEMM time (s)",
           "predicted speedup"});
  bool ok = true;
  for (int prof = 0; prof < 4; ++prof) {
    for (std::uint64_t p : {64, 512, 4096}) {
      const double ts = syrk_time(shape, p, profiles[prof]);
      const double tg = gemm_time(shape, p, profiles[prof]);
      const double speedup = tg / ts;
      ok = ok && speedup > 1.4 && speedup < 2.4;
      t.add_row({names[prof], std::to_string(p), fmt_double(ts, 5),
                 fmt_double(tg, 5), fmt_double(speedup, 4)});
    }
  }
  t.print(std::cout);
  std::cout << "\nSYRK is predicted ~2x faster than GEMM in every regime — "
               "the paper's closing claim (\"whether the time is computation "
               "or communication bound\"): "
            << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
