// Plan-quality sweep for the cost-model-driven enumerator: for every
// P = 1..512 and three aspect ratios (tall, square, wide), runs the full
// plan search and records (a) that the chosen plan never over-allocates
// (procs <= P), (b) how far the chosen plan sits from the best enumerated
// (the zero-idle preference may displace the argmin by at most the 10%
// utilization slack), and (c) how often the search reaches for padding and
// folding. Emits one JSON document on stdout for dashboard ingestion.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench/bench_util.hpp"
#include "core/planner.hpp"
#include "core/syrk.hpp"
#include "support/table.hpp"

using namespace parsyrk;

namespace {

struct ShapeStats {
  std::string label;
  std::uint64_t n1 = 0, n2 = 0;
  std::uint64_t one_d = 0, two_d = 0, three_d = 0;
  std::uint64_t folded = 0, padded = 0, zero_idle = 0;
  std::uint64_t over_allocations = 0;   // procs > P (must stay 0)
  std::uint64_t slack_violations = 0;   // chosen/best > 1.10 (must stay 0)
  double worst_ratio = 1.0;
  std::uint64_t worst_ratio_p = 0;
};

constexpr std::uint64_t kMaxProcs = 512;
constexpr double kSlack = 1.10;

ShapeStats sweep(const std::string& label, std::uint64_t n1, std::uint64_t n2) {
  ShapeStats s;
  s.label = label;
  s.n1 = n1;
  s.n2 = n2;
  for (std::uint64_t p = 1; p <= kMaxProcs; ++p) {
    const auto report = core::enumerate_syrk_plans(n1, n2, p);
    const core::Plan plan = report.plan();
    if (plan.procs > p) ++s.over_allocations;
    const double ratio = report.chosen_vs_best();
    if (ratio > kSlack + 1e-12) ++s.slack_violations;
    if (ratio > s.worst_ratio) {
      s.worst_ratio = ratio;
      s.worst_ratio_p = p;
    }
    switch (plan.algorithm) {
      case core::Algorithm::kOneD: ++s.one_d; break;
      case core::Algorithm::kTwoD: ++s.two_d; break;
      case core::Algorithm::kThreeD: ++s.three_d; break;
    }
    if (plan.folded()) ++s.folded;
    if (plan.padded_n1 != 0) ++s.padded;
    if (plan.procs == p) ++s.zero_idle;
  }
  return s;
}

void emit_json(std::ostream& os, const ShapeStats& s, bool last) {
  os << "    {\"shape\": \"" << s.label << "\", \"n1\": " << s.n1
     << ", \"n2\": " << s.n2 << ", \"sweep_max_procs\": " << kMaxProcs
     << ",\n     \"chosen_1d\": " << s.one_d << ", \"chosen_2d\": " << s.two_d
     << ", \"chosen_3d\": " << s.three_d << ",\n     \"folded\": " << s.folded
     << ", \"padded\": " << s.padded << ", \"zero_idle\": " << s.zero_idle
     << ",\n     \"worst_chosen_vs_best\": " << fmt_double(s.worst_ratio, 6)
     << ", \"worst_chosen_vs_best_at_p\": " << s.worst_ratio_p
     << ",\n     \"over_allocations\": " << s.over_allocations
     << ", \"slack_violations\": " << s.slack_violations << "}"
     << (last ? "\n" : ",\n");
}

}  // namespace

int main() {
  const ShapeStats stats[] = {
      sweep("tall", 3600, 16),
      sweep("square", 720, 720),
      sweep("wide", 64, 4096),
  };

  std::cout << "{\n  \"bench\": \"plan_quality\", \"utilization_slack\": "
            << fmt_double(kSlack - 1.0, 2) << ",\n  \"shapes\": [\n";
  bool ok = true;
  for (std::size_t i = 0; i < 3; ++i) {
    emit_json(std::cout, stats[i], i == 2);
    ok = ok && stats[i].over_allocations == 0 && stats[i].slack_violations == 0;
  }
  std::cout << "  ],\n  \"ok\": " << (ok ? "true" : "false") << "\n}\n";

  // Human-readable summary on stderr so stdout stays valid JSON.
  Table t({"shape", "1D", "2D", "3D", "folded", "padded", "zero-idle",
           "worst chosen/best", "at P"});
  for (const auto& s : stats) {
    t.add_row({s.label, std::to_string(s.one_d), std::to_string(s.two_d),
               std::to_string(s.three_d), std::to_string(s.folded),
               std::to_string(s.padded), std::to_string(s.zero_idle),
               fmt_double(s.worst_ratio, 4), std::to_string(s.worst_ratio_p)});
  }
  t.print(std::cerr);
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
