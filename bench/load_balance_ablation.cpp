// E19 — Load balance vs communication across C layouts. ScaLAPACK-style
// libraries fix the triangular-work imbalance of a plain block layout by
// going block-cyclic (cf. Beaumont et al.'s symmetric block-cyclic Cholesky
// [6]); but no cyclic layout reduces the communicated words below GEMM
// levels. The triangle-block distribution achieves balanced work AND half
// the communication — both measured here.
#include <cstdlib>
#include <iostream>
#include <map>

#include "bench/bench_util.hpp"
#include "distribution/block_cyclic.hpp"
#include "distribution/triangle_block.hpp"
#include "support/table.hpp"

using namespace parsyrk;

namespace {

struct LayoutStats {
  double flop_imbalance = 0.0;  // max/avg over strict-lower elements
  double comm_words = 0.0;      // leading-order words per rank (model)
};

}  // namespace

int main() {
  bench::heading(
      "E19 / C layouts: work balance vs communication (block, cyclic, "
      "triangle)");

  const std::size_t n1 = 484, n2 = 90;
  // Matched grids: 11×11 = 121 ranks for the library layouts vs the
  // triangle distribution's P = c(c+1) = 132 with c = 11.
  const int r = 11;
  const std::uint64_t c = 11;
  dist::TriangleBlockDistribution tri(c);

  auto imbalance = [&](int procs, auto owner_of) {
    std::map<int, std::size_t> work;
    std::size_t total = 0;
    for (std::size_t i = 1; i < n1; ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        ++work[owner_of(i, j)];
        ++total;
      }
    }
    std::size_t mx = 0;
    for (const auto& [rank, w] : work) mx = std::max(mx, w);
    return static_cast<double>(mx) /
           (static_cast<double>(total) / static_cast<double>(procs));
  };

  dist::BlockCyclic2D block_layout(n1, n1, n1 / r, n1 / r, r, r);
  dist::BlockCyclic2D cyclic_layout(n1, n1, 4, 4, r, r);
  const std::size_t nb = n1 / tri.num_block_rows();

  LayoutStats block_stats{
      imbalance(r * r,
                [&](std::size_t i, std::size_t j) {
                  return block_layout.owner_rank(i, j);
                }),
      2.0 * (1.0 - 1.0 / r) * n1 * n2 / r};
  LayoutStats cyclic_stats{
      imbalance(r * r,
                [&](std::size_t i, std::size_t j) {
                  return cyclic_layout.owner_rank(i, j);
                }),
      2.0 * (1.0 - 1.0 / r) * n1 * n2 / r};
  LayoutStats tri_stats{
      imbalance(static_cast<int>(tri.num_procs()),
                [&](std::size_t i, std::size_t j) {
                  const std::size_t bi = i / nb, bj = j / nb;
                  return static_cast<int>(
                      bi == bj ? tri.owner_diagonal(bi)
                               : tri.owner_off_diagonal(bi, bj));
                }),
      static_cast<double>(n1) * n2 / (c + 1.0)};

  Table t({"layout", "P", "flop imbalance (max/avg)",
           "comm words/rank (model)"});
  t.add_row({"block grid (one tile per proc)", "121",
             fmt_double(block_stats.flop_imbalance, 4),
             fmt_double(block_stats.comm_words, 6)});
  t.add_row({"block-cyclic 4x4 (ScaLAPACK-style)", "121",
             fmt_double(cyclic_stats.flop_imbalance, 4),
             fmt_double(cyclic_stats.comm_words, 6)});
  t.add_row({"triangle-block (paper §5.2)", "132",
             fmt_double(tri_stats.flop_imbalance, 4),
             fmt_double(tri_stats.comm_words, 6)});
  t.print(std::cout);

  const bool ok = block_stats.flop_imbalance > 1.6 &&
                  cyclic_stats.flop_imbalance < 1.3 &&
                  tri_stats.flop_imbalance < 1.15 &&
                  tri_stats.comm_words < 0.6 * cyclic_stats.comm_words;
  std::cout
      << "\nCyclic layouts fix the balance; only the triangle-block layout "
         "also halves the words (and on fewer processors): "
      << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
