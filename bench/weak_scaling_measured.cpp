// E22 — Measured weak scaling: per-rank work held ~constant (n³/P ≈ const,
// square A) while P grows; the 3D SYRK and 3D GEMM run on matched processor
// counts and the per-rank communicated words are measured. In the case-3
// regime both curves follow (n²·n/P)^{2/3} and their ratio stays ≈ 2 — the
// measured version of the model series in E21.
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "baseline/gemm.hpp"
#include "bench/bench_util.hpp"
#include "bounds/syrk_bounds.hpp"
#include "core/session.hpp"
#include "core/syrk.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "support/table.hpp"

using namespace parsyrk;

int main() {
  bench::heading("E22 / Measured weak scaling: SYRK vs GEMM, case-3 regime");

  struct Config {
    std::size_t n;            // n1 = n2
    std::uint64_t c, p2;      // SYRK grid (P = c(c+1)·p2)
    std::uint64_t gr, gt;     // GEMM grid (P = gr²·gt)
  };
  // n ∝ P^{1/3} keeps flops/rank within ±15% across the sweep.
  const Config configs[] = {
      {108, 2, 2, 2, 3},   // P = 12
      {144, 2, 4, 2, 6},   // P = 24
      {180, 3, 4, 4, 3},   // P = 48
      {216, 3, 8, 4, 6},   // P = 96
  };

  Table t({"P", "n", "flops/rank", "SYRK words/rank", "GEMM words/rank",
           "GEMM/SYRK", "SYRK/bound", "correct"});
  bool ok = true;
  double prev_scaled = 0.0;
  bool scaling_flat = true;
  for (const auto& cfg : configs) {
    const auto p = static_cast<int>(cfg.c * (cfg.c + 1) * cfg.p2);
    PARSYRK_CHECK(static_cast<std::uint64_t>(p) == cfg.gr * cfg.gr * cfg.gt);
    Matrix a = random_matrix(cfg.n, cfg.n, 71);
    Matrix ref = syrk_reference(a.view());
    core::Session ss(p);
    const auto rs =
        core::syrk(ss, core::SyrkRequest(a).use_3d(cfg.c, cfg.p2));
    comm::World wg(p);
    Matrix cg = baseline::gemm_3d(wg, a, a, cfg.gr, cfg.gt);
    const bool correct = max_abs_diff(rs.c.view(), ref.view()) < 1e-9 &&
                         max_abs_diff(cg.view(), ref.view()) < 1e-9;
    const double sw =
        static_cast<double>(rs.total.critical_path_words());
    const double gw = static_cast<double>(
        wg.ledger().summary().critical_path_words());
    const double flops = static_cast<double>(cfg.n) * cfg.n * cfg.n / 2.0 / p;
    const auto bound = bounds::syrk_lower_bound(cfg.n, cfg.n, p);
    const double ratio = gw / sw;
    ok = ok && correct && ratio > 1.5 && ratio < 2.4;
    // Weak-scaling flatness: words/(n³/P)^{2/3} should be ~constant.
    const double scaled = sw / std::pow(flops * 2.0, 2.0 / 3.0);
    if (prev_scaled > 0.0 &&
        (scaled / prev_scaled > 1.35 || scaled / prev_scaled < 0.65)) {
      scaling_flat = false;
    }
    prev_scaled = scaled;
    t.add_row({std::to_string(p), std::to_string(cfg.n),
               fmt_double(flops, 6), fmt_double(sw, 8), fmt_double(gw, 8),
               fmt_double(ratio, 4),
               fmt_double(sw / bound.communicated, 4),
               correct ? "yes" : "NO"});
  }
  t.print(std::cout);
  ok = ok && scaling_flat;
  std::cout << "\nWords/rank track (flops/rank)^{2/3} across the sweep "
               "(weak-scaling flat in the case-3 sense) and GEMM/SYRK "
               "stays ~2: "
            << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
