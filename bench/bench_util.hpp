// Shared helpers for the experiment harnesses in bench/.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "support/table.hpp"

namespace parsyrk::bench {

inline void heading(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

inline std::string ratio_str(double measured, double bound) {
  return fmt_double(measured / bound, 4);
}

}  // namespace parsyrk::bench
