// Shared helpers for the experiment harnesses in bench/.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>

#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "support/table.hpp"

namespace parsyrk::bench {

inline void heading(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

inline std::string ratio_str(double measured, double bound) {
  return fmt_double(measured / bound, 4);
}

/// Measured seconds per multiply-add of a local SYRK kernel — the machine
/// gamma of the alpha-beta-gamma model, in the unit the model's flop counts
/// use (n1²n2/2 MACs for the lower triangle). Times `kernel` on an n x k
/// local block and keeps the best rate over ~0.2 s of repeats.
template <typename KernelFn>
double measured_gamma_syrk(KernelFn&& kernel, std::size_t n = 512,
                           std::size_t k = 128) {
  using Clock = std::chrono::steady_clock;
  Matrix a = random_matrix(n, k, 17);
  Matrix c(n, n);
  kernel(a.view(), c.view());  // warm-up: dispatch resolution, arena growth
  const double macs = static_cast<double>(n) * static_cast<double>(n) *
                      static_cast<double>(k) / 2.0;
  double best_rate = 0.0;
  double elapsed = 0.0;
  while (elapsed < 0.2) {
    c.fill(0.0);
    const auto t0 = Clock::now();
    kernel(a.view(), c.view());
    const std::chrono::duration<double> dt = Clock::now() - t0;
    elapsed += dt.count();
    best_rate = std::max(best_rate, macs / dt.count());
  }
  return 1.0 / best_rate;  // seconds per MAC
}

}  // namespace parsyrk::bench
