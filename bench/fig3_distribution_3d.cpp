// E3 — Regenerates paper Figure 3: the 3D distribution with p1 = 6 (c = 2)
// and p2 = 3, then demonstrates the layout is executable by running the 3D
// algorithm on that exact grid and reporting the per-phase traffic.
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/session.hpp"
#include "core/syrk.hpp"
#include "core/syrk_internal.hpp"
#include "distribution/render.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"

using namespace parsyrk;

int main() {
  bench::heading("E3 / Figure 3: 3D Triangle Block Distribution, p1=6, p2=3");

  dist::TriangleBlockDistribution d(2);
  std::cout << dist::render_3d_layout(d, 3) << "\n";

  // Execute on the pictured grid.
  const std::size_t n1 = 24, n2 = 12;
  Matrix a = random_matrix(n1, n2, 33);
  core::Session session(18);
  const auto run =
      core::syrk(session, core::SyrkRequest(a).use_3d(/*prime_c=*/2,
                                                      /*slices=*/3));
  Matrix ref = syrk_reference(a.view());
  const double err = max_abs_diff(run.c.view(), ref.view());

  const auto& gather = run.gather_a;
  const auto& reduce = run.reduce_c;
  std::cout << "Executed 3D SYRK on the pictured grid (n1=" << n1
            << ", n2=" << n2 << "):\n";
  Table t({"phase", "max words/rank", "max msgs/rank"});
  t.add_row({"All-to-All of A (within slices)",
             std::to_string(gather.max.words_sent),
             std::to_string(gather.max.msgs_sent)});
  t.add_row({"Reduce-Scatter of C (across slices)",
             std::to_string(reduce.max.words_sent),
             std::to_string(reduce.max.msgs_sent)});
  t.print(std::cout);
  std::cout << "max |C - reference| = " << err << "\n";
  return err < 1e-10 ? EXIT_SUCCESS : EXIT_FAILURE;
}
