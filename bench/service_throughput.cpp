// Service throughput snapshot: replays a mixed small/medium SYRK workload
// through service::SyrkService twice — serialized (batching off: one job
// per scheduled round) and batched (the scheduler packs queued jobs onto
// disjoint rank subsets of one round) — and reports requests/sec, p50/p99
// latency (modeled and measured), and the plan cache's hit/miss counters
// against the number of enumerator runs. Emits the machine-readable
// snapshot committed as BENCH_SERVICE.json.
//
//   service_throughput [--out FILE] [--jobs N] [--procs P]
//       runs the workload and writes the JSON snapshot (stdout if no
//       --out).
//
//   service_throughput --smoke [--factor F] [--straggler-factor G]
//       cheap perf gate for ctest: asserts batched throughput beats the
//       serialized baseline by at least F (default 1.3) on the
//       dispatch-dominated workload, that the streaming scheduler beats
//       the round-barrier executor by at least G (default 1.15) on the
//       straggler mix below, AND that every batched/streamed job's result
//       matrix and ledger counters are bitwise-identical to the same
//       request run solo. Exits nonzero otherwise.
//
// The straggler mix is the scenario the streaming scheduler exists for:
// one large pipelined 3D job submitted ahead of many small 1D jobs. The
// round-barrier executor packs a couple of smalls beside the straggler,
// then barriers the whole round on it — every later small waits for the
// 3D job even though 4 ranks sat idle the entire time. The streaming
// executor keeps cycling smalls through the leftover ranks while the
// straggler runs (mid-round interleaving on nonblocking range handles),
// so its makespan approaches the straggler's own runtime.
//
// Why batching wins even on this simulated runtime: every scheduled round
// pays one condition-variable dispatch handoff to the session's parked
// worker threads. Serialized, k jobs pay k handoffs; batched, jobs that
// fit side by side share one. The jobs themselves are tiny, so the
// handoff dominates — the same regime a real service is in when flooded
// with small requests.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "core/session.hpp"
#include "matrix/random.hpp"
#include "service/service.hpp"

namespace {

using namespace parsyrk;
using Clock = std::chrono::steady_clock;

struct Shape {
  std::uint64_t n1, n2, cap;
};

/// The replayed mixed workload: distinct shapes × rank caps chosen so the
/// planner (folding disabled) yields unfolded 1D plans at 2/3/4/6 ranks —
/// jobs that pack 2–6 to a 12-rank round.
std::vector<Shape> workload_shapes() {
  return {
      {16, 64, 2}, {24, 96, 3}, {32, 64, 4},
      {48, 96, 6}, {16, 96, 3}, {24, 64, 4},
  };
}

service::ServiceOptions service_options(int procs, bool batching) {
  service::ServiceOptions opts;
  opts.procs = procs;
  opts.batching = batching;
  // Folded plans cannot share a round; keep the whole workload packable.
  opts.plan_options.allow_folding = false;
  // Generous round budget: let rank capacity, not modeled cost, limit
  // packing (the workload's jobs are communication-tiny).
  opts.admission.modeled_seconds_per_round = 10.0;
  opts.admission.max_jobs_per_round = 16;
  return opts;
}

bool bitwise_equal(const Matrix& x, const Matrix& y) {
  if (x.rows() != y.rows() || x.cols() != y.cols()) return false;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    if (std::memcmp(x.data() + i * x.ld(), y.data() + i * y.ld(),
                    x.cols() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

struct ModeResult {
  double seconds = 0.0;
  std::vector<service::SyrkResult> results;
  service::ServiceStats stats;
};

/// Submits the whole workload asynchronously, waits for every ticket, and
/// returns wall time + per-request results.
ModeResult run_mode(const std::vector<Shape>& shapes,
                    const std::vector<Matrix>& inputs, int procs,
                    bool batching) {
  service::SyrkService svc(service_options(procs, batching));
  ModeResult out;
  const auto t0 = Clock::now();
  std::vector<service::SyrkTicket> tickets;
  tickets.reserve(inputs.size());
  for (std::size_t j = 0; j < inputs.size(); ++j) {
    const Shape& s = shapes[j % shapes.size()];
    tickets.push_back(
        svc.submit(core::SyrkRequest(inputs[j]).on_procs(s.cap)));
  }
  out.results.reserve(tickets.size());
  for (auto& t : tickets) out.results.push_back(t.wait());
  out.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  out.stats = svc.stats();
  return out;
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

std::vector<double> totals(const ModeResult& m) {
  std::vector<double> v;
  v.reserve(m.results.size());
  for (const auto& r : m.results) v.push_back(r.latency.total_seconds);
  return v;
}

/// Solo references: every request executed alone on a plain session with
/// the same plan options. Batched results must match these bitwise.
std::vector<core::SyrkRun> solo_references(const std::vector<Shape>& shapes,
                                           const std::vector<Matrix>& inputs,
                                           int procs) {
  core::Session session(procs);
  core::PlanSearchOptions plan_options;
  plan_options.allow_folding = false;
  session.set_plan_options(plan_options);
  std::vector<core::SyrkRun> refs;
  refs.reserve(inputs.size());
  for (std::size_t j = 0; j < inputs.size(); ++j) {
    const Shape& s = shapes[j % shapes.size()];
    refs.push_back(
        core::syrk(session, core::SyrkRequest(inputs[j]).on_procs(s.cap)));
  }
  return refs;
}

/// Counts batched-vs-solo mismatches (result bits or ledger counters).
int equivalence_failures(const ModeResult& batched,
                         const std::vector<core::SyrkRun>& refs) {
  int failures = 0;
  for (std::size_t j = 0; j < batched.results.size(); ++j) {
    const auto& run = batched.results[j].run;
    const auto& ref = refs[j];
    const bool ok = bitwise_equal(run.c, ref.c) &&
                    run.total.total == ref.total.total &&
                    run.total.max == ref.total.max &&
                    run.gather_a.total == ref.gather_a.total &&
                    run.reduce_c.total == ref.reduce_c.total;
    if (!ok) {
      ++failures;
      std::cerr << "equivalence failure at request " << j << "\n";
    }
  }
  return failures;
}

/// Measures the enumeration cost a cache hit skips: wall time of a cold
/// enumerate_syrk_plans call vs a warm PlanCache::resolve of the same key.
struct CacheTiming {
  double enumerate_us = 0.0;
  double hit_us = 0.0;
};

CacheTiming measure_cache_timing(const Shape& s) {
  core::PlanSearchOptions opts;
  opts.allow_folding = false;
  CacheTiming out;
  const int reps = 1000;
  {
    const auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i) {
      core::enumerate_syrk_plans(s.n1, s.n2, s.cap, opts);
    }
    out.enumerate_us =
        std::chrono::duration<double>(Clock::now() - t0).count() * 1e6 / reps;
  }
  {
    service::PlanCache cache;
    cache.resolve(s.n1, s.n2, s.cap, opts);  // prime: the one miss
    const auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i) cache.resolve(s.n1, s.n2, s.cap, opts);
    out.hit_us =
        std::chrono::duration<double>(Clock::now() - t0).count() * 1e6 / reps;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Straggler mix: one large 3D job + many small 1D jobs
// ---------------------------------------------------------------------------

struct StragglerMix {
  int procs = 16;       // 3D straggler on 12 ranks leaves a 4-rank side lane
  int smalls = 24;      // small 1D jobs riding behind the straggler
  std::uint64_t big_n1 = 96, big_n2 = 64;    // use_3d(2, 2): 12 ranks
  std::uint64_t small_n1 = 16, small_n2 = 32;  // 1D at 2 ranks
};

std::vector<Matrix> straggler_inputs(const StragglerMix& mix) {
  std::vector<Matrix> inputs;
  inputs.reserve(static_cast<std::size_t>(mix.smalls) + 1);
  inputs.push_back(random_matrix(mix.big_n1, mix.big_n2, 7100));
  for (int j = 0; j < mix.smalls; ++j) {
    inputs.push_back(random_matrix(mix.small_n1, mix.small_n2,
                                   7200 + static_cast<std::uint64_t>(j)));
  }
  return inputs;
}

core::SyrkRequest straggler_request(const StragglerMix& mix,
                                    const std::vector<Matrix>& inputs,
                                    std::size_t j) {
  if (j == 0) {
    // The straggler: pipelined 3D, its all-gather phase chunked through
    // the segmented nonblocking path.
    return core::SyrkRequest(inputs[0]).use_3d(2, 2).with_pipeline(4);
  }
  return core::SyrkRequest(inputs[j]).use_1d(2);
}

ModeResult run_straggler_mix(const StragglerMix& mix,
                             const std::vector<Matrix>& inputs,
                             service::SchedMode mode) {
  auto opts = service_options(mix.procs, /*batching=*/true);
  opts.scheduler = mode;
  service::SyrkService svc(opts);
  ModeResult out;
  const auto t0 = Clock::now();
  std::vector<service::SyrkTicket> tickets;
  tickets.reserve(inputs.size());
  for (std::size_t j = 0; j < inputs.size(); ++j) {
    tickets.push_back(svc.submit(straggler_request(mix, inputs, j)));
  }
  out.results.reserve(tickets.size());
  for (auto& t : tickets) out.results.push_back(t.wait());
  out.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  out.stats = svc.stats();
  return out;
}

std::vector<core::SyrkRun> straggler_references(
    const StragglerMix& mix, const std::vector<Matrix>& inputs) {
  core::Session session(mix.procs);
  core::PlanSearchOptions plan_options;
  plan_options.allow_folding = false;
  session.set_plan_options(plan_options);
  std::vector<core::SyrkRun> refs;
  refs.reserve(inputs.size());
  for (std::size_t j = 0; j < inputs.size(); ++j) {
    refs.push_back(core::syrk(session, straggler_request(mix, inputs, j)));
  }
  return refs;
}

int run_bench(int jobs, int procs, const std::string& out_path, bool smoke,
              double factor, double straggler_factor) {
  const auto shapes = workload_shapes();
  std::vector<Matrix> inputs;
  inputs.reserve(static_cast<std::size_t>(jobs));
  for (int j = 0; j < jobs; ++j) {
    const Shape& s = shapes[static_cast<std::size_t>(j) % shapes.size()];
    inputs.push_back(
        random_matrix(s.n1, s.n2, 900 + static_cast<std::uint64_t>(j)));
  }

  // Warm the shared pool once so neither mode pays thread creation.
  run_mode(shapes, inputs, procs, /*batching=*/false);

  // Best-of-3 per mode: the workload is dispatch-dominated, so a single
  // descheduling blip would otherwise dominate the ratio.
  ModeResult serialized, batched;
  double best_serial = 1e30, best_batched = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    auto s = run_mode(shapes, inputs, procs, /*batching=*/false);
    if (s.seconds < best_serial) {
      best_serial = s.seconds;
      serialized = std::move(s);
    }
    auto b = run_mode(shapes, inputs, procs, /*batching=*/true);
    if (b.seconds < best_batched) {
      best_batched = b.seconds;
      batched = std::move(b);
    }
  }

  const auto refs = solo_references(shapes, inputs, procs);
  const int eq_failures = equivalence_failures(batched, refs);

  // Straggler mix: round-barrier vs streaming makespan, best-of-3 each.
  const StragglerMix mix;
  const auto mix_inputs = straggler_inputs(mix);
  run_straggler_mix(mix, mix_inputs, service::SchedMode::kRounds);  // warm
  ModeResult mix_rounds, mix_stream;
  double best_rounds = 1e30, best_stream = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    auto r = run_straggler_mix(mix, mix_inputs, service::SchedMode::kRounds);
    if (r.seconds < best_rounds) {
      best_rounds = r.seconds;
      mix_rounds = std::move(r);
    }
    auto s = run_straggler_mix(mix, mix_inputs,
                               service::SchedMode::kStreaming);
    if (s.seconds < best_stream) {
      best_stream = s.seconds;
      mix_stream = std::move(s);
    }
  }
  const double mix_speedup = mix_rounds.seconds / mix_stream.seconds;
  const auto mix_refs = straggler_references(mix, mix_inputs);
  const int mix_eq_failures = equivalence_failures(mix_stream, mix_refs) +
                              equivalence_failures(mix_rounds, mix_refs);

  const double n = static_cast<double>(jobs);
  const double rps_serial = n / serialized.seconds;
  const double rps_batched = n / batched.seconds;
  const double speedup = serialized.seconds / batched.seconds;
  // Timed on the workload's largest rank cap — the widest candidate
  // lattice, i.e. the most representative enumeration cost a hit skips.
  const auto cache_timing = measure_cache_timing(shapes[3]);

  std::vector<double> modeled;
  modeled.reserve(batched.results.size());
  for (const auto& r : batched.results) {
    modeled.push_back(r.latency.modeled_seconds);
  }

  std::cout << "service throughput (" << jobs << " requests, " << procs
            << "-rank service):\n"
            << "  serialized: " << serialized.seconds * 1e3 << " ms ("
            << rps_serial << " req/s, " << serialized.stats.rounds
            << " rounds)\n"
            << "  batched:    " << batched.seconds * 1e3 << " ms ("
            << rps_batched << " req/s, " << batched.stats.rounds
            << " rounds, " << batched.stats.batched_rounds
            << " carrying >= 2 jobs)\n"
            << "  speedup:    " << speedup << "x\n"
            << "  plan cache: " << batched.stats.plan_cache.hits << " hits, "
            << batched.stats.plan_cache.misses
            << " misses (enumerator runs) for " << shapes.size()
            << " distinct shapes\n"
            << "  cache-hit resolve " << cache_timing.hit_us
            << " us vs enumeration " << cache_timing.enumerate_us << " us\n"
            << "  batched-vs-solo equivalence failures: " << eq_failures
            << "\n"
            << "straggler mix (1 pipelined 3D straggler + " << mix.smalls
            << " small 1D jobs, " << mix.procs << "-rank service):\n"
            << "  round-barrier: " << mix_rounds.seconds * 1e3 << " ms ("
            << mix_rounds.stats.rounds << " rounds)\n"
            << "  streaming:     " << mix_stream.seconds * 1e3 << " ms ("
            << mix_stream.stats.interleaved_jobs << " interleaved jobs, gap "
            << mix_stream.stats.scheduler_gap_seconds * 1e3 << " rank-ms)\n"
            << "  speedup:       " << mix_speedup << "x\n"
            << "  streamed-vs-solo equivalence failures: " << mix_eq_failures
            << "\n";

  bool ok = eq_failures == 0 && mix_eq_failures == 0;
  // The cache must have enumerated once per distinct shape, no more.
  if (batched.stats.plan_cache.misses != shapes.size()) {
    std::cerr << "FAIL: expected " << shapes.size()
              << " enumerator runs (one per distinct shape), measured "
              << batched.stats.plan_cache.misses << "\n";
    ok = false;
  }
  if (cache_timing.hit_us >= cache_timing.enumerate_us) {
    std::cerr << "FAIL: cache hit (" << cache_timing.hit_us
              << " us) not cheaper than enumeration ("
              << cache_timing.enumerate_us << " us)\n";
    ok = false;
  }
  if (smoke) {
    if (speedup < factor) {
      std::cerr << "FAIL: batched speedup " << speedup << "x < " << factor
                << "x\n";
      ok = false;
    }
    if (mix_speedup < straggler_factor) {
      std::cerr << "FAIL: straggler-mix streaming speedup " << mix_speedup
                << "x < " << straggler_factor << "x\n";
      ok = false;
    }
    std::cout << (ok ? "OK\n" : "") << std::flush;
    return ok ? 0 : 1;
  }

  std::ostringstream os;
  os << "{\n";
  os << "  \"workload\": {\"requests\": " << jobs
     << ", \"distinct_shapes\": " << shapes.size()
     << ", \"service_ranks\": " << procs << "},\n";
  os << "  \"serialized\": {\"seconds\": " << serialized.seconds
     << ", \"requests_per_sec\": " << rps_serial
     << ", \"rounds\": " << serialized.stats.rounds << "},\n";
  os << "  \"batched\": {\"seconds\": " << batched.seconds
     << ", \"requests_per_sec\": " << rps_batched
     << ", \"rounds\": " << batched.stats.rounds
     << ", \"batched_rounds\": " << batched.stats.batched_rounds
     << ", \"batched_jobs\": " << batched.stats.batched_jobs << "},\n";
  os << "  \"speedup\": " << speedup << ",\n";
  os << "  \"latency_seconds\": {\"modeled_p50\": "
     << percentile(modeled, 0.50)
     << ", \"modeled_p99\": " << percentile(modeled, 0.99)
     << ", \"serialized_total_p50\": " << percentile(totals(serialized), 0.50)
     << ", \"serialized_total_p99\": " << percentile(totals(serialized), 0.99)
     << ", \"batched_total_p50\": " << percentile(totals(batched), 0.50)
     << ", \"batched_total_p99\": " << percentile(totals(batched), 0.99)
     << "},\n";
  os << "  \"plan_cache\": {\"hits\": " << batched.stats.plan_cache.hits
     << ", \"misses\": " << batched.stats.plan_cache.misses
     << ", \"hit_resolve_us\": " << cache_timing.hit_us
     << ", \"enumerate_us\": " << cache_timing.enumerate_us << "},\n";
  os << "  \"batched_vs_solo_equivalence_failures\": " << eq_failures
     << ",\n";
  os << "  \"straggler_mix\": {\"smalls\": " << mix.smalls
     << ", \"service_ranks\": " << mix.procs
     << ", \"rounds_seconds\": " << mix_rounds.seconds
     << ", \"rounds_count\": " << mix_rounds.stats.rounds
     << ", \"streaming_seconds\": " << mix_stream.seconds
     << ", \"streaming_dispatches\": " << mix_stream.stats.rounds
     << ", \"interleaved_jobs\": " << mix_stream.stats.interleaved_jobs
     << ", \"scheduler_gap_seconds\": "
     << mix_stream.stats.scheduler_gap_seconds
     << ", \"speedup\": " << mix_speedup
     << ", \"streamed_vs_solo_equivalence_failures\": " << mix_eq_failures
     << "}\n";
  os << "}\n";

  if (out_path.empty()) {
    std::cout << os.str();
  } else {
    std::ofstream f(out_path);
    f << os.str();
    if (!f) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    std::cout << "wrote " << out_path << "\n";
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out;
  int jobs = 48;
  int procs = 12;
  bool smoke = false;
  double factor = 1.3;
  double straggler_factor = 1.15;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (arg == "--procs" && i + 1 < argc) {
      procs = std::atoi(argv[++i]);
    } else if (arg == "--factor" && i + 1 < argc) {
      factor = std::strtod(argv[++i], nullptr);
    } else if (arg == "--straggler-factor" && i + 1 < argc) {
      straggler_factor = std::strtod(argv[++i], nullptr);
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "usage: service_throughput [--out FILE] [--jobs N] "
                   "[--procs P] [--smoke [--factor F] "
                   "[--straggler-factor G]]\n";
      return 2;
    }
  }
  return run_bench(jobs, procs, out, smoke, factor, straggler_factor);
}
