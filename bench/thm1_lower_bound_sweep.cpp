// E4 — Theorem 1: sweeps P for three matrix shapes (short-wide, square,
// tall-skinny) and prints the lower bound W, the active case, and the
// communicated-words bound; cross-checks the analytic Lemma 6 optimum
// against a numeric minimizer and the KKT conditions at every point; checks
// continuity at the case boundaries.
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.hpp"
#include "bounds/syrk_bounds.hpp"
#include "support/table.hpp"

using namespace parsyrk;
using bounds::Regime;

namespace {

bool sweep(const char* label, std::uint64_t n1, std::uint64_t n2) {
  std::cout << label << " (n1 = " << n1 << ", n2 = " << n2 << ")\n";
  Table t({"P", "case", "W (data accessed)", "comm bound (words)",
           "numeric/analytic", "KKT"});
  bool ok = true;
  double prev_w = std::numeric_limits<double>::infinity();
  for (std::uint64_t p = 1; p <= 1u << 20; p *= 4) {
    const auto b = bounds::syrk_lower_bound(n1, n2, p);
    const auto numeric = bounds::solve_lemma6_numeric(
        static_cast<double>(n1), static_cast<double>(n2),
        static_cast<double>(p));
    const double nr = numeric.objective() / b.solution.objective();
    std::string why;
    const bool kkt = bounds::verify_kkt(static_cast<double>(n1),
                                        static_cast<double>(n2),
                                        static_cast<double>(p), b.solution,
                                        1e-8, &why);
    ok = ok && kkt && std::abs(nr - 1.0) < 1e-3 && b.w <= prev_w * 1.0001;
    prev_w = b.w;
    t.add_row({std::to_string(p), bounds::regime_name(b.regime),
               fmt_double(b.w, 6), fmt_double(b.communicated, 6),
               fmt_double(nr, 6), kkt ? "pass" : "FAIL: " + why});
  }
  t.print(std::cout);
  std::cout << "\n";
  return ok;
}

bool boundary_continuity(std::uint64_t n1, std::uint64_t n2) {
  const double d1 = static_cast<double>(n1), d2 = static_cast<double>(n2);
  const double pstar = d1 <= d2 ? d2 / std::sqrt(d1 * (d1 - 1))
                                : d1 * (d1 - 1) / (d2 * d2);
  const auto below = bounds::syrk_lower_bound(
      n1, n2, static_cast<std::uint64_t>(pstar * 0.999));
  const auto above = bounds::syrk_lower_bound(
      n1, n2, static_cast<std::uint64_t>(pstar * 1.001) + 1);
  const double jump = std::abs(below.w - above.w) / below.w;
  std::cout << "Boundary continuity at P* = " << fmt_double(pstar, 6)
            << " (n1 = " << n1 << ", n2 = " << n2
            << "): relative jump = " << fmt_double(jump, 3) << "\n";
  return jump < 0.02;
}

}  // namespace

int main() {
  bench::heading("E4 / Theorem 1: lower bound sweep and verification");
  bool ok = true;
  ok &= sweep("Short-wide A (normal equations regime)", 1000, 1000000);
  ok &= sweep("Square A", 10000, 10000);
  ok &= sweep("Tall-skinny A (Cholesky / Gram regime)", 1000000, 100);
  ok &= boundary_continuity(1000, 1000000);
  ok &= boundary_continuity(1000000, 100);
  std::cout << "\nAll bound checks: " << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
