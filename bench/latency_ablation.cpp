// E16 — §6 latency trade-off: the 2D algorithm with pairwise-exchange vs
// butterfly All-to-All. Pairwise is bandwidth-optimal at latency P−1;
// butterfly reaches ceil(log2 P) messages at a ~(log2 P)/2 bandwidth
// factor. Modeled α-β execution times show where each wins.
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/session.hpp"
#include "core/syrk.hpp"
#include "costmodel/model.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "support/table.hpp"

using namespace parsyrk;

int main() {
  bench::heading("E16 / 2D SYRK: pairwise vs butterfly All-to-All (§6)");

  Table t({"c", "P", "exchange", "words/rank", "msgs/rank", "correct"});
  bool ok = true;
  struct Row {
    std::uint64_t p;
    double pw_words, pw_msgs, bf_words, bf_msgs;
  };
  std::vector<Row> rows;
  for (std::uint64_t c : {3, 5, 7, 11}) {
    const std::size_t n1 = 4 * c * c;
    const std::size_t n2 = 2 * (c + 1);
    const auto p = static_cast<int>(c * (c + 1));
    Matrix a = random_matrix(n1, n2, 41);
    Matrix ref = syrk_reference(a.view());
    core::Session session(p);
    const auto runp = core::syrk(
        session, core::SyrkRequest(a).use_2d(c).with_exchange(
                     core::ExchangeKind::kPairwise));
    const auto runb = core::syrk(
        session, core::SyrkRequest(a).use_2d(c).with_exchange(
                     core::ExchangeKind::kButterfly));
    const bool correct = max_abs_diff(runp.c.view(), ref.view()) < 1e-9 &&
                         max_abs_diff(runb.c.view(), ref.view()) < 1e-9;
    const auto& sp = runp.total;
    const auto& sb = runb.total;
    ok = ok && correct && sb.max.msgs_sent < sp.max.msgs_sent &&
         sb.max.words_sent > sp.max.words_sent;
    rows.push_back({static_cast<std::uint64_t>(p),
                    static_cast<double>(sp.max.words_sent),
                    static_cast<double>(sp.max.msgs_sent),
                    static_cast<double>(sb.max.words_sent),
                    static_cast<double>(sb.max.msgs_sent)});
    t.add_row({std::to_string(c), std::to_string(p), "pairwise",
               std::to_string(sp.max.words_sent),
               std::to_string(sp.max.msgs_sent), correct ? "yes" : "NO"});
    t.add_row({std::to_string(c), std::to_string(p), "butterfly",
               std::to_string(sb.max.words_sent),
               std::to_string(sb.max.msgs_sent), correct ? "yes" : "NO"});
  }
  t.print(std::cout);

  // Modeled execution time under two machine regimes.
  std::cout << "\nModeled α·msgs + β·words (per rank):\n";
  Table t2({"P", "machine", "pairwise (s)", "butterfly (s)", "winner"});
  const costmodel::Machine latency_bound{.alpha = 1e-4, .beta = 1e-9};
  const costmodel::Machine bandwidth_bound{.alpha = 1e-7, .beta = 1e-6};
  for (const auto& r : rows) {
    for (const auto& [name, m] :
         {std::pair{"latency-dominated", latency_bound},
          std::pair{"bandwidth-dominated", bandwidth_bound}}) {
      const double pw = r.pw_msgs * m.alpha + r.pw_words * m.beta;
      const double bf = r.bf_msgs * m.alpha + r.bf_words * m.beta;
      t2.add_row({std::to_string(r.p), name, fmt_double(pw, 4),
                  fmt_double(bf, 4), bf < pw ? "butterfly" : "pairwise"});
    }
  }
  t2.print(std::cout);
  std::cout << "\nButterfly wins on latency-dominated machines, pairwise on "
               "bandwidth-dominated ones — the §6 open question is whether "
               "an algorithm can get both.\n";
  std::cout << "Latency ablation: " << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
