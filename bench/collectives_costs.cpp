// E12 — §3.2 / §6 collective costs: measured ledger traffic of the runtime's
// pairwise-exchange All-to-All and Reduce-Scatter against the closed forms
// (latency P−1, bandwidth (1−1/P)·w), and the §6 latency/bandwidth
// trade-offs of Bruck all-gather and butterfly all-to-all.
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.hpp"
#include "costmodel/model.hpp"
#include "simmpi/comm.hpp"
#include "support/table.hpp"

using namespace parsyrk;

namespace {

struct Measured {
  double words;
  double msgs;
};

Measured run(int p, const std::function<void(comm::Comm&)>& body) {
  comm::World world(p);
  world.run(body);
  const auto s = world.ledger().summary();
  return {static_cast<double>(s.max.words_sent),
          static_cast<double>(s.max.msgs_sent)};
}

}  // namespace

int main() {
  bench::heading("E12 / Collective costs: measured vs closed form");

  const std::size_t block = 64;
  Table t({"collective", "P", "w (words/rank)", "measured words",
           "model words", "measured msgs", "model msgs", "match"});
  bool ok = true;
  for (int p : {4, 8, 16, 32}) {
    const double w = static_cast<double>(block * p);
    {
      auto m = run(p, [&](comm::Comm& c) {
        std::vector<std::vector<double>> send(
            p, std::vector<double>(block, 1.0));
        c.all_to_all_v(send);
      });
      const auto model = costmodel::all_to_all_pairwise(p, w);
      const bool match = m.words == model.words && m.msgs == model.messages;
      ok = ok && match;
      t.add_row({"All-to-All (pairwise)", std::to_string(p), fmt_double(w, 8),
                 fmt_double(m.words, 8), fmt_double(model.words, 8),
                 fmt_double(m.msgs, 4), fmt_double(model.messages, 4),
                 match ? "exact" : "NO"});
    }
    {
      auto m = run(p, [&](comm::Comm& c) {
        std::vector<double> data(block * p, 1.0);
        c.reduce_scatter_equal(data);
      });
      const auto model = costmodel::reduce_scatter_pairwise(p, w);
      const bool match = m.words == model.words && m.msgs == model.messages;
      ok = ok && match;
      t.add_row({"Reduce-Scatter (pairwise)", std::to_string(p),
                 fmt_double(w, 8), fmt_double(m.words, 8),
                 fmt_double(model.words, 8), fmt_double(m.msgs, 4),
                 fmt_double(model.messages, 4), match ? "exact" : "NO"});
    }
    {
      auto m = run(p, [&](comm::Comm& c) {
        std::vector<double> mine(block, 1.0);
        c.all_gather(mine);
      });
      const auto model = costmodel::all_gather_pairwise(p, w);
      const bool match = m.words == model.words && m.msgs == model.messages;
      ok = ok && match;
      t.add_row({"All-Gather (pairwise)", std::to_string(p), fmt_double(w, 8),
                 fmt_double(m.words, 8), fmt_double(model.words, 8),
                 fmt_double(m.msgs, 4), fmt_double(model.messages, 4),
                 match ? "exact" : "NO"});
    }
    {
      auto m = run(p, [&](comm::Comm& c) {
        std::vector<double> data(block * p, 1.0);
        c.reduce_scatter_bruck(data);
      });
      const auto model = costmodel::reduce_scatter_bruck(p, w);
      const bool match = m.words == model.words && m.msgs == model.messages;
      ok = ok && match;
      t.add_row({"Reduce-Scatter (Bruck, §6)", std::to_string(p),
                 fmt_double(w, 8), fmt_double(m.words, 8),
                 fmt_double(model.words, 8), fmt_double(m.msgs, 4),
                 fmt_double(model.messages, 4), match ? "exact" : "NO"});
    }
    {
      auto m = run(p, [&](comm::Comm& c) {
        std::vector<double> mine(block, 1.0);
        c.all_gather_bruck(mine);
      });
      const auto model = costmodel::all_gather_bruck(p, w);
      const bool match = m.words == model.words && m.msgs == model.messages;
      ok = ok && match;
      t.add_row({"All-Gather (Bruck, §6)", std::to_string(p),
                 fmt_double(w, 8), fmt_double(m.words, 8),
                 fmt_double(model.words, 8), fmt_double(m.msgs, 4),
                 fmt_double(model.messages, 4), match ? "exact" : "NO"});
    }
    {
      auto m = run(p, [&](comm::Comm& c) {
        std::vector<double> send(block * p, 1.0);
        c.all_to_all_butterfly(send, block);
      });
      const auto model = costmodel::all_to_all_butterfly(p, w);
      // For power-of-two P the butterfly moves exactly (w/2)·log2(P).
      const bool match = m.words == model.words && m.msgs == model.messages;
      ok = ok && match;
      t.add_row({"All-to-All (butterfly, §6)", std::to_string(p),
                 fmt_double(w, 8), fmt_double(m.words, 8),
                 fmt_double(model.words, 8), fmt_double(m.msgs, 4),
                 fmt_double(model.messages, 4), match ? "exact" : "NO"});
    }
  }
  t.print(std::cout);

  std::cout
      << "\nTrade-off (§6): Bruck all-gather AND the Bruck-adapted "
         "Reduce-Scatter are bandwidth- and latency-optimal simultaneously "
         "(so Algs. 1 and 3 can be doubly optimal);\nbutterfly all-to-all "
         "cuts latency from P-1 to ceil(log2 P) at a log2(P)/2 bandwidth "
         "factor — which is why the 2D algorithm (cast as All-to-All) "
         "cannot get both, the paper's open question.\n";
  std::cout << "\nMeasured collective costs match closed forms: "
            << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
