// E10 — Sequential I/O (the Beaumont et al. substrate of §1/§6): measured
// slow-fast memory traffic of triangle-block vs square-block sequential
// SYRK against the (1/√2)·n1²·n2/√M lower bound. Each row pairs a matrix
// size with a fast-memory size whose ideal triangle set (s ≈ √(2M)) lands
// on an available prime c, so the scheme is exercised near its design
// point; the A-traffic ratio approaches √2 as c grows.
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "seqio/seq_syrk.hpp"
#include "support/table.hpp"

using namespace parsyrk;

int main() {
  bench::heading("E10 / Sequential SYRK I/O: triangle vs square blocking");

  struct Config {
    std::size_t n1, n2;
    std::uint64_t m;
  };
  // n1 chosen so a prime c with c² | n1 gives s = n1/c ≈ √(2M).
  const Config configs[] = {
      {490, 64, 2400},    // c = 7,  s = 70,  √(2M) = 69.3
      {968, 64, 3700},    // c = 11, s = 88,  √(2M) = 86.0
      {1014, 64, 3100},   // c = 13, s = 78,  √(2M) = 78.7
  };

  Table t({"n1", "M", "scheme", "param", "A loads", "C stores", "total I/O",
           "A loads/bound", "correct"});
  bool ok = true;
  for (const auto& cfg : configs) {
    Matrix a = random_matrix(cfg.n1, cfg.n2, 8);
    Matrix ref = syrk_reference(a.view());
    const double lb = seqio::seq_syrk_io_lower_bound(cfg.n1, cfg.n2, cfg.m);
    const auto sq = seqio::seq_syrk_square(a.view(), cfg.m);
    const auto tr = seqio::seq_syrk_triangle(a.view(), cfg.m);
    const bool c_sq = max_abs_diff(sq.c.view(), ref.view()) < 1e-9;
    const bool c_tr = max_abs_diff(tr.c.view(), ref.view()) < 1e-9;
    const double a_ratio =
        static_cast<double>(sq.loads) / static_cast<double>(tr.loads);
    ok = ok && c_sq && c_tr && tr.total_io() < sq.total_io() &&
         a_ratio > 1.2 && a_ratio < std::sqrt(2.0) * 1.05;
    t.add_row({std::to_string(cfg.n1), fmt_count(cfg.m), "square",
               "b=" + std::to_string(sq.parameter), fmt_count(sq.loads),
               fmt_count(sq.stores), fmt_count(sq.total_io()),
               fmt_double(static_cast<double>(sq.loads) / lb, 4),
               c_sq ? "yes" : "NO"});
    t.add_row({std::to_string(cfg.n1), fmt_count(cfg.m), "triangle",
               "c=" + std::to_string(tr.parameter), fmt_count(tr.loads),
               fmt_count(tr.stores), fmt_count(tr.total_io()),
               fmt_double(static_cast<double>(tr.loads) / lb, 4),
               c_tr ? "yes" : "NO"});
    std::cout << "n1 = " << cfg.n1
              << ": square/triangle A-traffic ratio = " << fmt_double(a_ratio, 4)
              << " (ideal sqrt(2)·c/(c+1) = "
              << fmt_double(std::sqrt(2.0) * tr.parameter / (tr.parameter + 1),
                            4)
              << ")\n";
  }
  std::cout << "\n";
  t.print(std::cout);

  // The naive scheme for context.
  {
    const std::size_t n1 = 490, n2 = 64;
    Matrix a = random_matrix(n1, n2, 8);
    const auto naive = seqio::seq_syrk_naive(a.view(), 2400);
    std::cout << "\nNaive row-streaming (n1 = 490, M = 2400): total I/O = "
              << fmt_count(naive.total_io()) << " = "
              << fmt_double(static_cast<double>(naive.total_io()) /
                                seqio::seq_syrk_io_lower_bound(n1, n2, 2400),
                            4)
              << "x the lower bound\n";
    std::cout << "Sequential GEMM bound / SYRK bound = 2^{3/2} = "
              << fmt_double(seqio::seq_gemm_io_lower_bound(n1, n2, 2400) /
                                seqio::seq_syrk_io_lower_bound(n1, n2, 2400),
                            4)
              << "\n";
  }
  std::cout << "\nTriangle blocking beats square blocking at every size: "
            << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
