// E0 — Regenerates paper Figure 1: the SYRK iteration space (a triangular
// prism of n1(n1+1)n2/2 points, here the strict-lower part), one sample
// iteration (i, j, k) with its symmetric partner (j, i, k), and the three
// projections onto A, Aᵀ and C that drive the whole lower-bound machinery.
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.hpp"
#include "bounds/lemma3.hpp"
#include "support/table.hpp"

using namespace parsyrk;
using bounds::Point3;

int main() {
  bench::heading("E0 / Figure 1: the SYRK iteration space");

  const std::int64_t n1 = 6, n2 = 4;
  const std::int64_t si = 4, sj = 1, sk = 2;  // sample iteration (i, j, k)

  std::cout << "Strict-lower iteration space for n1 = " << n1
            << ", n2 = " << n2 << " — one k-slice per panel; '*' marks the "
            << "sample iteration (" << si << "," << sj << "," << sk
            << "), '+' its symmetric partner (" << sj << "," << si << ","
            << sk << ") used in Lemma 3:\n\n";
  for (std::int64_t k = 0; k < n2; ++k) {
    std::cout << "k = " << k << "\n";
    for (std::int64_t i = 0; i < n1; ++i) {
      std::cout << "  i=" << i << " |";
      for (std::int64_t j = 0; j < n1; ++j) {
        char cell = ' ';
        if (j < i) cell = '.';
        if (j == i) cell = '\\';
        if (j > i && i == sj && j == si && k == sk) cell = '+';
        if (i == si && j == sj && k == sk) cell = '*';
        std::cout << ' ' << cell;
      }
      std::cout << "\n";
    }
  }

  // The projections of the sample point and of the whole space.
  const auto all = bounds::syrk_iteration_space(n1, n2);
  const auto pr = bounds::project(all);
  std::cout << "\nSample iteration (" << si << "," << sj << "," << sk
            << ") touches A(" << si << "," << sk << "), A(" << sj << ","
            << sk << ") and contributes to C(" << si << "," << sj << ").\n\n";

  Table t({"quantity", "value", "formula"});
  t.add_row({"iteration points (strict lower)", fmt_count(all.size()),
             "n1(n1-1)n2/2 = " + fmt_count(n1 * (n1 - 1) * n2 / 2)});
  t.add_row({"|phi_i U phi_j| (A entries touched)",
             fmt_count(pr.phi_i_union_j),
             "n1*n2 = " + fmt_count(n1 * n2)});
  t.add_row({"|phi_k| (C entries)", fmt_count(pr.phi_k),
             "n1(n1-1)/2 = " + fmt_count(n1 * (n1 - 1) / 2)});
  t.print(std::cout);

  const bool ok =
      all.size() == static_cast<std::size_t>(n1 * (n1 - 1) * n2 / 2) &&
      pr.phi_i_union_j == static_cast<std::size_t>(n1 * n2) &&
      pr.phi_k == static_cast<std::size_t>(n1 * (n1 - 1) / 2) &&
      bounds::lemma3_holds(all);
  std::cout << "\nLemma 3 holds on the full prism; projection counts match "
               "the Fig. 1 annotations: "
            << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
