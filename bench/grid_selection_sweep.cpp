// E9 — §5.4 grid selection: for a fixed problem and processor budget,
// sweeps all usable (p1 = c(c+1), p2) grids and shows that measured
// communication is minimized at (or adjacent to) the paper's analytic
// choice p1 = (n1/n2)^{2/3}·P^{2/3}, p2 = (n2/n1)^{2/3}·P^{1/3}.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <limits>

#include "bench/bench_util.hpp"
#include "bounds/syrk_bounds.hpp"
#include "core/session.hpp"
#include "core/syrk.hpp"
#include "costmodel/algorithm_costs.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "support/prime.hpp"
#include "support/table.hpp"

using namespace parsyrk;

int main() {
  bench::heading("E9 / Processor grid selection (Section 5.4)");

  const std::size_t n1 = 900, n2 = 900;  // divisible by 2², 3², 5²
  const std::uint64_t budget = 160;
  const double p1_star = std::pow(static_cast<double>(budget), 2.0 / 3.0);
  std::cout << "n1 = n2 = " << n1 << ", processor budget = " << budget
            << "; analytic grid: p1* = " << fmt_double(p1_star, 4)
            << ", p2* = " << fmt_double(budget / p1_star, 4) << "\n\n";

  Matrix a = random_matrix(n1, n2, 7);
  Matrix ref = syrk_reference(a.view());

  Table t({"c", "p1", "p2", "P", "measured words/rank", "eq.(12) words",
           "bound at P", "meas/bound", "correct"});
  double best_words = std::numeric_limits<double>::infinity();
  std::uint64_t best_p1 = 0;
  bool all_correct = true;
  for (std::uint64_t c : {2, 3, 5}) {
    const std::uint64_t p1 = c * (c + 1);
    if (n1 % (c * c) != 0) continue;
    const std::uint64_t p2 = budget / p1;
    if (p2 == 0) continue;
    const auto p = static_cast<int>(p1 * p2);
    core::Session session(p);
    const auto run = core::syrk(session, core::SyrkRequest(a).use_3d(c, p2));
    const bool correct = max_abs_diff(run.c.view(), ref.view()) < 1e-9;
    all_correct = all_correct && correct;
    const auto measured =
        static_cast<double>(run.total.critical_path_words());
    const double eq12 = costmodel::syrk_3d_cost({n1, n2}, c, p2).words;
    const auto bound = bounds::syrk_lower_bound(n1, n2, p);
    if (measured < best_words) {
      best_words = measured;
      best_p1 = p1;
    }
    t.add_row({std::to_string(c), std::to_string(p1), std::to_string(p2),
               std::to_string(p), fmt_double(measured, 8),
               fmt_double(eq12, 8), fmt_double(bound.communicated, 8),
               fmt_double(measured / bound.communicated, 4),
               correct ? "yes" : "NO"});
  }
  t.print(std::cout);

  // The analytic optimum p1* ≈ 29.6 sits nearest the c = 5 grid (p1 = 30).
  const bool picked_analytic = best_p1 == 30;
  std::cout << "\nMeasured-minimum grid: p1 = " << best_p1
            << " (analytic prediction: p1 = 30 for p1* = "
            << fmt_double(p1_star, 4) << ") — "
            << (picked_analytic ? "MATCH" : "MISMATCH") << "\n";
  return all_correct && picked_analytic ? EXIT_SUCCESS : EXIT_FAILURE;
}
