// E2 — Regenerates paper Figure 2: the 2D Triangle Block Distribution of C
// and A for c = 3, P = 12, as ASCII ownership maps, and re-validates the
// structure for a sweep of primes.
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.hpp"
#include "distribution/render.hpp"
#include "distribution/triangle_block.hpp"

using namespace parsyrk;

int main() {
  bench::heading("E2 / Figure 2: 2D Triangle Block Distribution, c = 3");

  dist::TriangleBlockDistribution d(3);
  std::cout << dist::render_c_ownership(d) << "\n";
  std::cout << dist::render_a_ownership(d) << "\n";

  std::cout << "Structural checks across primes:\n";
  Table t({"c", "P=c(c+1)", "block rows c^2", "off-diag blocks/proc",
           "valid"});
  bool all_ok = true;
  for (std::uint64_t c : {2, 3, 5, 7, 11, 13}) {
    dist::TriangleBlockDistribution dc(c);
    std::string why;
    const bool ok = dc.validate(&why);
    all_ok = all_ok && ok;
    t.add_row({std::to_string(c), std::to_string(dc.num_procs()),
               std::to_string(dc.num_block_rows()),
               std::to_string(c * (c - 1) / 2), ok ? "yes" : "NO: " + why});
  }
  t.print(std::cout);
  return all_ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
