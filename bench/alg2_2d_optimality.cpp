// E6 — Algorithm 2 (2D) optimality: runs the 2D triangle-block algorithm on
// tall-skinny matrices across a c sweep (P = c(c+1)), comparing measured
// communication against eq. (10)/(11) and the Theorem 1 case-2 bound
// (ratio → 1 as c grows; the finite-P gap is the (√(1+1/4P)+1/(2√P)) factor
// of eq. (11)).
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.hpp"
#include "bounds/syrk_bounds.hpp"
#include "core/session.hpp"
#include "core/syrk.hpp"
#include "costmodel/algorithm_costs.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "support/table.hpp"

using namespace parsyrk;

int main() {
  bench::heading("E6 / Algorithm 2 (2D SYRK) vs Theorem 1 case 2");

  // n1 divisible by c² for c in {2,3,5,7,11}: lcm(4,9,25,49,121) = 44100.
  // That is large for a 1-core container, so sweep per-c sizes instead,
  // fixing n1/c² = 4 rows per block and n2 = 2(c+1) columns for even chunks.
  Table t({"c", "P", "n1", "n2", "case", "measured words/rank",
           "eq.(10) words", "bound words", "meas/eq10", "meas/bound",
           "correct"});
  bool ok = true;
  for (std::uint64_t c : {2, 3, 5, 7, 11}) {
    const std::size_t n1 = 4 * c * c;
    const std::size_t n2 = 2 * (c + 1);
    const auto p = static_cast<int>(c * (c + 1));
    Matrix a = random_matrix(n1, n2, 2);
    Matrix ref = syrk_reference(a.view());
    core::Session session(p);
    const auto run = core::syrk(session, core::SyrkRequest(a).use_2d(c));
    const double err = max_abs_diff(run.c.view(), ref.view());
    const auto measured =
        static_cast<double>(run.total.critical_path_words());
    const double eq10 = costmodel::syrk_2d_cost({n1, n2}, c).words;
    const auto bound = bounds::syrk_lower_bound(n1, n2, p);
    const double r_eq10 = measured / eq10;
    const double r_bound = measured / bound.communicated;
    // measured = c²·(w/P) vs eq10 = (P−1)·(w/P): ratio c²/(c²+c−1) → 1.
    const double expect_ratio = static_cast<double>(c * c) / (p - 1);
    ok = ok && err < 1e-9 && bound.regime == bounds::Regime::kTwoD &&
         std::abs(r_eq10 - expect_ratio) < 0.01 && r_bound > 0.9 &&
         r_bound < 1.6;
    t.add_row({std::to_string(c), std::to_string(p), std::to_string(n1),
               std::to_string(n2), bounds::regime_name(bound.regime),
               fmt_double(measured, 8), fmt_double(eq10, 8),
               fmt_double(bound.communicated, 8), fmt_double(r_eq10, 4),
               fmt_double(r_bound, 4), err < 1e-9 ? "yes" : "NO"});
  }
  t.print(std::cout);

  std::cout << "\nConvergence of meas/bound toward 1 as P grows "
               "(leading-order optimality), plus the eq.(11) finite-P "
               "factor shown above.\n";
  std::cout << "2D algorithm attains the case-2 bound constant: "
            << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
