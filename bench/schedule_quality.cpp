// E18 — Why triangle blocking: projects the per-processor data requirement
// (|ϕ_i ∪ ϕ_j|·n2 + |ϕ_k| — exactly the quantities of the Theorem 1 proof)
// of five assignment schemes of the SYRK iteration space, against the
// Lemma 6 optimum. The triangle-block distribution is the only scheme that
// sits at the optimum; everything a library typically does (block rows,
// square grids, cyclic) pays a measurable data premium.
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.hpp"
#include "bounds/schedule_analysis.hpp"
#include "support/table.hpp"

using namespace parsyrk;

int main() {
  bench::heading("E18 / Distribution quality: data per processor vs Lemma 6");

  const std::uint64_t n1 = 180, n2 = 60;
  dist::TriangleBlockDistribution d(3);  // 12 processors

  struct Scheme {
    const char* name;
    int procs;
    bounds::ColumnAssignment assign;
  };
  const Scheme schemes[] = {
      {"triangle-block (paper §5.2)", 12,
       bounds::triangle_block_assignment(d, n1)},
      {"block rows of C", 12, bounds::block_row_assignment(n1, 12)},
      {"square grid 4x4", 16, bounds::grid_assignment(n1, 4)},
      {"cyclic (i+j) mod P", 12, bounds::cyclic_assignment(12)},
      {"random owner", 12, bounds::random_assignment(12, 7)},
  };

  Table t({"scheme", "P", "max A words", "max C words", "max data",
           "lemma6 opt", "data/opt", "flop balance"});
  double triangle_ratio = 0.0;
  bool ok = true;
  for (const auto& s : schemes) {
    const auto stats =
        bounds::analyze_column_schedule(n1, n2, s.procs, s.assign);
    if (triangle_ratio == 0.0) triangle_ratio = stats.data_vs_optimum;
    ok = ok && stats.data_vs_optimum >= triangle_ratio - 1e-9;
    t.add_row({s.name, std::to_string(s.procs),
               fmt_count(stats.max_a_elements),
               fmt_count(stats.max_c_elements), fmt_count(stats.max_data),
               fmt_double(stats.lemma6_optimum, 6),
               fmt_double(stats.data_vs_optimum, 4),
               fmt_double(stats.balance, 4)});
  }
  t.print(std::cout);
  ok = ok && triangle_ratio < 1.3;

  // The 3D (k-split) regime: the paper's Alg. 3 assignment vs a GEMM-style
  // 3D grid at matched processor counts.
  std::cout << "\nPoint-level (k-split) schedules, case-3 regime "
               "(n1 = n2 = 96, P = 36):\n";
  {
    const std::uint64_t n1 = 96, n2p = 96;
    dist::TriangleBlockDistribution d3(2);  // p1 = 6
    Table t3({"scheme", "P", "max A words", "max C words", "max data",
              "lemma6 opt", "data/opt", "flop balance"});
    const auto tri3 = bounds::analyze_point_schedule(
        n1, n2p, 36, bounds::triangle_3d_assignment(d3, n1, n2p, 6));
    const auto grid3 = bounds::analyze_point_schedule(
        n1, n2p, 36, bounds::grid_3d_assignment(n1, n2p, 3, 4));
    for (const auto& [name, st] :
         {std::pair{"triangle x k-slices (Alg. 3)", &tri3},
          std::pair{"3x3x4 grid (GEMM-style)", &grid3}}) {
      t3.add_row({name, "36", fmt_count(st->max_a_elements),
                  fmt_count(st->max_c_elements), fmt_count(st->max_data),
                  fmt_double(st->lemma6_optimum, 6),
                  fmt_double(st->data_vs_optimum, 4),
                  fmt_double(st->balance, 4)});
    }
    t3.print(std::cout);
    ok = ok && tri3.data_vs_optimum < grid3.data_vs_optimum &&
         tri3.data_vs_optimum < 1.6;
  }

  std::cout << "\nTriangle blocking sits within "
            << fmt_double((triangle_ratio - 1.0) * 100, 3)
            << "% of the Lemma 6 data optimum in the 2D regime and beats "
               "the grid layout in the 3D regime; every other scheme needs "
               "strictly more data per processor: "
            << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
