#include "matrix/factor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/check.hpp"

namespace parsyrk {

Matrix cholesky_lower(const ConstMatrixView& g) {
  PARSYRK_REQUIRE(g.rows() == g.cols(), "Cholesky needs a square matrix");
  const std::size_t n = g.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = g(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    PARSYRK_REQUIRE(d > 0.0, "matrix is not positive definite (pivot ", j,
                    " = ", d, ")");
    l(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = g(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
    }
  }
  return l;
}

void solve_lower(const ConstMatrixView& l, std::vector<double>& b) {
  const std::size_t n = l.rows();
  PARSYRK_CHECK(b.size() == n && l.cols() == n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * b[k];
    b[i] = s / l(i, i);
  }
}

void solve_lower_transposed(const ConstMatrixView& l, std::vector<double>& b) {
  const std::size_t n = l.rows();
  PARSYRK_CHECK(b.size() == n && l.cols() == n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * b[k];
    b[ii] = s / l(ii, ii);
  }
}

std::vector<double> cholesky_solve(const ConstMatrixView& l,
                                   std::vector<double> b) {
  solve_lower(l, b);
  solve_lower_transposed(l, b);
  return b;
}

EigenResult jacobi_eigen_symmetric(const ConstMatrixView& s, double tol,
                                   int max_sweeps) {
  PARSYRK_REQUIRE(s.rows() == s.cols(), "eigensolver needs a square matrix");
  const std::size_t n = s.rows();
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = j <= i ? s(i, j) : s(j, i);  // symmetrize from the lower part
    }
  }
  Matrix v(n, n);
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  const double norm = [&] {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) acc += a(i, j) * a(i, j);
    }
    return std::sqrt(acc);
  }();
  const double threshold = tol * std::max(norm, 1.0);

  EigenResult out;
  for (out.sweeps = 0; out.sweeps < max_sweeps; ++out.sweeps) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) off += a(i, j) * a(i, j);
    }
    if (std::sqrt(2.0 * off) <= threshold) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::abs(a(p, q)) <= threshold / (n * n)) continue;
        // Classic symmetric Schur rotation zeroing a(p, q).
        const double theta = (a(q, q) - a(p, p)) / (2.0 * a(p, q));
        const double t = std::copysign(1.0, theta) /
                         (std::abs(theta) + std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double sn = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - sn * akq;
          a(k, q) = sn * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - sn * aqk;
          a(q, k) = sn * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - sn * vkq;
          v(k, q) = sn * vkp + c * vkq;
        }
      }
    }
  }

  // Sort descending, permuting the eigenvector columns along.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return a(x, x) > a(y, y);
  });
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = a(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, j) = v(i, order[j]);
  }
  return out;
}

}  // namespace parsyrk
