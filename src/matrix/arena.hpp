// Reusable, 64-byte-aligned kernel scratch space.
//
// The packed kernel engine needs two pack buffers (left and right operand
// panels) per call. Allocating them inside the kernels would put a malloc on
// the hot path of every Local-SYRK a worker runs; instead each long-lived
// pool worker (simmpi::WorkerPool) owns a KernelArena that grows to the
// high-water mark of the jobs it has run and is then reused allocation-free.
// Threads that are not pool workers (tests, benchmarks, the main thread)
// fall back to a thread_local arena with the same behavior.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "matrix/align.hpp"

namespace parsyrk::kern {

class KernelArena {
 public:
  static constexpr int kSlots = 2;
  static constexpr int kSlotPackA = 0;
  static constexpr int kSlotPackB = 1;

  KernelArena() = default;
  KernelArena(const KernelArena&) = delete;
  KernelArena& operator=(const KernelArena&) = delete;

  /// A 64-byte-aligned buffer of at least `count` doubles. The buffer is
  /// owned by the arena and reused across calls: a second request for the
  /// same slot invalidates the first. Contents are uninitialized.
  double* buffer(int slot, std::size_t count);

  /// Number of times any slot had to (re)allocate — flat across warm
  /// same-shape jobs, which tests assert.
  std::uint64_t grow_count() const {
    return grows_.load(std::memory_order_relaxed);
  }

  /// Total doubles currently reserved across slots.
  std::size_t doubles_reserved() const;

  /// The arena for the calling thread: the pool worker's own arena when set
  /// (WorkerPool installs it via set_current at thread start), otherwise a
  /// lazily created thread_local fallback.
  static KernelArena& current();

  /// Installs `arena` as the calling thread's arena (nullptr restores the
  /// thread_local fallback). Called by the worker pool, not by kernels.
  static void set_current(KernelArena* arena);

 private:
  AlignedVector slots_[kSlots];
  std::atomic<std::uint64_t> grows_{0};
};

}  // namespace parsyrk::kern
