#include "matrix/ukernel.hpp"

#include <cstdlib>
#include <cstring>

namespace parsyrk::kern {

namespace {

#define PARSYRK_UK_RESTRICT __restrict__
#define PARSYRK_UKERNEL_NAME ukernel_f64_generic
#include "matrix/ukernel_body.inc"
#undef PARSYRK_UKERNEL_NAME

}  // namespace

#if defined(PARSYRK_HAVE_NATIVE_UKERNEL)
namespace detail {
// Defined in ukernel_native.cpp (compiled with -march=native).
MicroKernelFn native_ukernel_fn();
bool native_host_supported();
}  // namespace detail
#endif

bool native_ukernel_available() {
#if defined(PARSYRK_HAVE_NATIVE_UKERNEL)
  return detail::native_host_supported();
#else
  return false;
#endif
}

const Ukernel& active_ukernel() {
  static const Ukernel chosen = [] {
    const Ukernel generic{&ukernel_f64_generic, "generic"};
#if defined(PARSYRK_HAVE_NATIVE_UKERNEL)
    const Ukernel native{detail::native_ukernel_fn(), "native"};
    const char* force = std::getenv("PARSYRK_UKERNEL");
    if (force != nullptr) {
      if (std::strcmp(force, "generic") == 0) return generic;
      if (std::strcmp(force, "native") == 0) return native;
    }
    if (detail::native_host_supported()) return native;
#else
    const char* force = std::getenv("PARSYRK_UKERNEL");
    (void)force;  // only "generic" exists in this binary
#endif
    return generic;
  }();
  return chosen;
}

}  // namespace parsyrk::kern
