#include "matrix/matrix.hpp"

#include <algorithm>

namespace parsyrk {

Matrix Matrix::from_rows(
    std::initializer_list<std::initializer_list<double>> rows) {
  const std::size_t nr = rows.size();
  const std::size_t nc = nr == 0 ? 0 : rows.begin()->size();
  Matrix m(nr, nc);
  std::size_t i = 0;
  for (const auto& row : rows) {
    PARSYRK_CHECK_MSG(row.size() == nc, "ragged initializer row ", i);
    std::size_t j = 0;
    for (double v : row) m(i, j++) = v;
    ++i;
  }
  return m;
}

bool Matrix::operator==(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* a = data_.data() + i * ld_;
    const double* b = other.data_.data() + i * other.ld_;
    if (!std::equal(a, a + cols_, b)) return false;
  }
  return true;
}

MatrixView Matrix::block(std::size_t r0, std::size_t c0, std::size_t nr,
                         std::size_t nc) {
  PARSYRK_CHECK(r0 + nr <= rows_ && c0 + nc <= cols_);
  return {data_.data() + r0 * ld_ + c0, nr, nc, ld_};
}

ConstMatrixView Matrix::block(std::size_t r0, std::size_t c0, std::size_t nr,
                              std::size_t nc) const {
  PARSYRK_CHECK(r0 + nr <= rows_ && c0 + nc <= cols_);
  return {data_.data() + r0 * ld_ + c0, nr, nc, ld_};
}

MatrixView Matrix::view() { return {data_.data(), rows_, cols_, ld_}; }

ConstMatrixView Matrix::view() const {
  return {data_.data(), rows_, cols_, ld_};
}

void MatrixView::assign(const ConstMatrixView& src) const {
  PARSYRK_CHECK(src.rows() == rows_ && src.cols() == cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* s = src.data() + i * src.ld();
    std::copy(s, s + cols_, p_ + i * ld_);
  }
}

void MatrixView::fill(double v) const {
  for (std::size_t i = 0; i < rows_; ++i) {
    std::fill(p_ + i * ld_, p_ + i * ld_ + cols_, v);
  }
}

Matrix ConstMatrixView::to_matrix() const {
  Matrix m(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* s = p_ + i * ld_;
    std::copy(s, s + cols_, m.data() + i * m.ld());
  }
  return m;
}

std::vector<double> flat_copy(const ConstMatrixView& m) {
  return flat_copy(m, 0, m.rows() * m.cols());
}

std::vector<double> flat_copy(const ConstMatrixView& m, std::size_t lo,
                              std::size_t hi) {
  PARSYRK_CHECK(lo <= hi && hi <= m.rows() * m.cols());
  std::vector<double> out;
  out.reserve(hi - lo);
  const std::size_t nc = m.cols();
  std::size_t t = lo;
  while (t < hi) {
    const std::size_t i = t / nc;
    const std::size_t j = t % nc;
    const std::size_t run = std::min(nc - j, hi - t);
    const double* row = m.data() + i * m.ld() + j;
    out.insert(out.end(), row, row + run);
    t += run;
  }
  return out;
}

void flat_append(const ConstMatrixView& m, std::vector<double>& out) {
  out.reserve(out.size() + m.rows() * m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* row = m.data() + i * m.ld();
    out.insert(out.end(), row, row + m.cols());
  }
}

void flat_assign(const MatrixView& m, std::size_t lo,
                 std::span<const double> src) {
  const std::size_t hi = lo + src.size();
  PARSYRK_CHECK(hi <= m.rows() * m.cols());
  const std::size_t nc = m.cols();
  std::size_t t = lo;
  const double* s = src.data();
  while (t < hi) {
    const std::size_t i = t / nc;
    const std::size_t j = t % nc;
    const std::size_t run = std::min(nc - j, hi - t);
    std::copy(s, s + run, m.data() + i * m.ld() + j);
    s += run;
    t += run;
  }
}

}  // namespace parsyrk
