#include "matrix/matrix.hpp"

#include <algorithm>

namespace parsyrk {

Matrix Matrix::from_rows(
    std::initializer_list<std::initializer_list<double>> rows) {
  const std::size_t nr = rows.size();
  const std::size_t nc = nr == 0 ? 0 : rows.begin()->size();
  Matrix m(nr, nc);
  std::size_t i = 0;
  for (const auto& row : rows) {
    PARSYRK_CHECK_MSG(row.size() == nc, "ragged initializer row ", i);
    std::size_t j = 0;
    for (double v : row) m(i, j++) = v;
    ++i;
  }
  return m;
}

MatrixView Matrix::block(std::size_t r0, std::size_t c0, std::size_t nr,
                         std::size_t nc) {
  PARSYRK_CHECK(r0 + nr <= rows_ && c0 + nc <= cols_);
  return {data_.data() + r0 * cols_ + c0, nr, nc, cols_};
}

ConstMatrixView Matrix::block(std::size_t r0, std::size_t c0, std::size_t nr,
                              std::size_t nc) const {
  PARSYRK_CHECK(r0 + nr <= rows_ && c0 + nc <= cols_);
  return {data_.data() + r0 * cols_ + c0, nr, nc, cols_};
}

MatrixView Matrix::view() { return {data_.data(), rows_, cols_, cols_}; }

ConstMatrixView Matrix::view() const {
  return {data_.data(), rows_, cols_, cols_};
}

void MatrixView::assign(const ConstMatrixView& src) const {
  PARSYRK_CHECK(src.rows() == rows_ && src.cols() == cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* s = src.data() + i * src.ld();
    std::copy(s, s + cols_, p_ + i * ld_);
  }
}

void MatrixView::fill(double v) const {
  for (std::size_t i = 0; i < rows_; ++i) {
    std::fill(p_ + i * ld_, p_ + i * ld_ + cols_, v);
  }
}

Matrix ConstMatrixView::to_matrix() const {
  Matrix m(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* s = p_ + i * ld_;
    std::copy(s, s + cols_, m.data() + i * cols_);
  }
  return m;
}

}  // namespace parsyrk
