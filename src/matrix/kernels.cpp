#include "matrix/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "matrix/arena.hpp"
#include "matrix/pack.hpp"
#include "matrix/ukernel.hpp"

namespace parsyrk {

namespace {

// Tile sizes of the previous-generation _blocked kernels, kept verbatim as
// the mid-tier reference of the perf trajectory.
constexpr std::size_t kTileM = 64;
constexpr std::size_t kTileN = 64;
constexpr std::size_t kTileK = 256;

using kern::kKC;
using kern::kMC;
using kern::kMR;
using kern::kNR;

constexpr std::size_t strips_of(std::size_t n) { return (n + kMR - 1) / kMR; }

/// C block (i0.., j0..) += acc tile, clipped to me x ne.
inline void add_tile(const double* acc, const MatrixView& c, std::size_t i0,
                     std::size_t j0, std::size_t me, std::size_t ne) {
  for (std::size_t i = 0; i < me; ++i) {
    double* crow = c.data() + (i0 + i) * c.ld() + j0;
    const double* arow = acc + i * kNR;
    for (std::size_t j = 0; j < ne; ++j) crow[j] += arow[j];
  }
}

/// Same, but only entries with global row >= global column (the diagonal
/// micro-tiles of syrk_lower / syr2k_lower; i0 == j0 there).
inline void add_tile_lower(const double* acc, const MatrixView& c,
                           std::size_t i0, std::size_t j0, std::size_t me,
                           std::size_t ne) {
  for (std::size_t i = 0; i < me; ++i) {
    const std::size_t gi = i0 + i;
    double* crow = c.data() + gi * c.ld() + j0;
    const double* arow = acc + i * kNR;
    const std::size_t jend = gi >= j0 ? std::min(ne, gi - j0 + 1) : 0;
    for (std::size_t j = 0; j < jend; ++j) crow[j] += arow[j];
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Naive oracles (unchanged)
// ---------------------------------------------------------------------------

void gemm_nt_naive(const ConstMatrixView& a, const ConstMatrixView& b,
                   const MatrixView& c) {
  PARSYRK_CHECK(a.rows() == c.rows() && b.rows() == c.cols() &&
                a.cols() == b.cols());
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j < c.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(j, k);
      c(i, j) += acc;
    }
  }
}

void syrk_lower_naive(const ConstMatrixView& a, const MatrixView& c) {
  PARSYRK_CHECK(c.rows() == c.cols() && a.rows() == c.rows());
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * a(j, k);
      c(i, j) += acc;
    }
  }
}

void syr2k_lower_naive(const ConstMatrixView& a, const ConstMatrixView& b,
                       const MatrixView& c) {
  PARSYRK_CHECK(c.rows() == c.cols() && a.rows() == c.rows() &&
                b.rows() == a.rows() && b.cols() == a.cols());
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc += a(i, k) * b(j, k) + b(i, k) * a(j, k);
      }
      c(i, j) += acc;
    }
  }
}

void symm_lower_left_naive(const ConstMatrixView& s_lower,
                           const ConstMatrixView& b, const MatrixView& c) {
  PARSYRK_CHECK(s_lower.rows() == s_lower.cols() &&
                b.rows() == s_lower.rows() && c.rows() == s_lower.rows() &&
                c.cols() == b.cols());
  const std::size_t n = s_lower.rows(), m = b.cols();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double s = j <= i ? s_lower(i, j) : s_lower(j, i);
      const double* brow = b.data() + j * b.ld();
      double* crow = c.data() + i * c.ld();
      for (std::size_t t = 0; t < m; ++t) crow[t] += s * brow[t];
    }
  }
}

// ---------------------------------------------------------------------------
// Previous-generation blocked kernels (perf-trajectory reference)
// ---------------------------------------------------------------------------

void gemm_nt_blocked(const ConstMatrixView& a, const ConstMatrixView& b,
                     const MatrixView& c) {
  PARSYRK_CHECK(a.rows() == c.rows() && b.rows() == c.cols() &&
                a.cols() == b.cols());
  const std::size_t m = c.rows(), n = c.cols(), kk = a.cols();
  for (std::size_t i0 = 0; i0 < m; i0 += kTileM) {
    const std::size_t im = std::min(i0 + kTileM, m);
    for (std::size_t j0 = 0; j0 < n; j0 += kTileN) {
      const std::size_t jm = std::min(j0 + kTileN, n);
      for (std::size_t k0 = 0; k0 < kk; k0 += kTileK) {
        const std::size_t km = std::min(k0 + kTileK, kk);
        for (std::size_t i = i0; i < im; ++i) {
          const double* arow = a.data() + i * a.ld();
          double* crow = c.data() + i * c.ld();
          for (std::size_t j = j0; j < jm; ++j) {
            const double* brow = b.data() + j * b.ld();
            double acc = 0.0;
            for (std::size_t k = k0; k < km; ++k) acc += arow[k] * brow[k];
            crow[j] += acc;
          }
        }
      }
    }
  }
}

void syrk_lower_blocked(const ConstMatrixView& a, const MatrixView& c) {
  PARSYRK_CHECK(c.rows() == c.cols() && a.rows() == c.rows());
  const std::size_t m = c.rows(), kk = a.cols();
  for (std::size_t i0 = 0; i0 < m; i0 += kTileM) {
    const std::size_t im = std::min(i0 + kTileM, m);
    for (std::size_t j0 = 0; j0 <= i0; j0 += kTileN) {
      const std::size_t jm = std::min(j0 + kTileN, m);
      for (std::size_t k0 = 0; k0 < kk; k0 += kTileK) {
        const std::size_t km = std::min(k0 + kTileK, kk);
        for (std::size_t i = i0; i < im; ++i) {
          const double* arow = a.data() + i * a.ld();
          double* crow = c.data() + i * c.ld();
          const std::size_t jend = std::min(jm, i + 1);
          for (std::size_t j = j0; j < jend; ++j) {
            const double* brow = a.data() + j * a.ld();
            double acc = 0.0;
            for (std::size_t k = k0; k < km; ++k) acc += arow[k] * brow[k];
            crow[j] += acc;
          }
        }
      }
    }
  }
}

void syr2k_lower_blocked(const ConstMatrixView& a, const ConstMatrixView& b,
                         const MatrixView& c) {
  PARSYRK_CHECK(c.rows() == c.cols() && a.rows() == c.rows() &&
                b.rows() == a.rows() && b.cols() == a.cols());
  const std::size_t m = c.rows(), kk = a.cols();
  for (std::size_t i0 = 0; i0 < m; i0 += kTileM) {
    const std::size_t im = std::min(i0 + kTileM, m);
    for (std::size_t j0 = 0; j0 <= i0; j0 += kTileN) {
      const std::size_t jm = std::min(j0 + kTileN, m);
      for (std::size_t k0 = 0; k0 < kk; k0 += kTileK) {
        const std::size_t km = std::min(k0 + kTileK, kk);
        for (std::size_t i = i0; i < im; ++i) {
          const double* ai = a.data() + i * a.ld();
          const double* bi = b.data() + i * b.ld();
          double* crow = c.data() + i * c.ld();
          const std::size_t jend = std::min(jm, i + 1);
          for (std::size_t j = j0; j < jend; ++j) {
            const double* aj = a.data() + j * a.ld();
            const double* bj = b.data() + j * b.ld();
            double acc = 0.0;
            for (std::size_t k = k0; k < km; ++k) {
              acc += ai[k] * bj[k] + bi[k] * aj[k];
            }
            crow[j] += acc;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Packed micro-kernel engine
// ---------------------------------------------------------------------------

void gemm_nt(const ConstMatrixView& a, const ConstMatrixView& b,
             const MatrixView& c) {
  PARSYRK_CHECK(a.rows() == c.rows() && b.rows() == c.cols() &&
                a.cols() == b.cols());
  const std::size_t m = c.rows(), n = c.cols(), kk = a.cols();
  if (m == 0 || n == 0 || kk == 0) return;
  const auto uk = kern::active_ukernel().fn;
  kern::KernelArena& arena = kern::KernelArena::current();
  const std::size_t nsb = strips_of(n);
  alignas(kMatrixAlignment) double acc[kMR * kNR];
  for (std::size_t k0 = 0; k0 < kk; k0 += kKC) {
    const std::size_t kc = std::min(kKC, kk - k0);
    double* bbuf = arena.buffer(kern::KernelArena::kSlotPackB,
                                kern::packed_panel_doubles(n, kc));
    kern::pack_rows(b, 0, n, k0, kc, bbuf);
    for (std::size_t i0 = 0; i0 < m; i0 += kMC) {
      const std::size_t mc = std::min(kMC, m - i0);
      double* abuf = arena.buffer(kern::KernelArena::kSlotPackA,
                                  kern::packed_panel_doubles(mc, kc));
      kern::pack_rows(a, i0, mc, k0, kc, abuf);
      const std::size_t nsa = strips_of(mc);
      for (std::size_t ir = 0; ir < nsa; ++ir) {
        const std::size_t ib = i0 + ir * kMR;
        const std::size_t me = std::min(kMR, m - ib);
        for (std::size_t jr = 0; jr < nsb; ++jr) {
          const std::size_t jb = jr * kNR;
          std::memset(acc, 0, sizeof(acc));
          uk(kc, abuf + ir * kMR * kc, bbuf + jr * kNR * kc, acc);
          add_tile(acc, c, ib, jb, me, std::min(kNR, n - jb));
        }
      }
    }
  }
}

void syrk_lower(const ConstMatrixView& a, const MatrixView& c) {
  PARSYRK_CHECK(c.rows() == c.cols() && a.rows() == c.rows());
  const std::size_t m = c.rows(), kk = a.cols();
  if (m == 0 || kk == 0) return;
  const auto uk = kern::active_ukernel().fn;
  kern::KernelArena& arena = kern::KernelArena::current();
  const std::size_t ns = strips_of(m);
  alignas(kMatrixAlignment) double acc[kMR * kNR];
  for (std::size_t k0 = 0; k0 < kk; k0 += kKC) {
    const std::size_t kc = std::min(kKC, kk - k0);
    // One pack of the whole A panel serves as BOTH operands of every C tile
    // — the cache-level mirror of the paper's halved communication.
    double* abuf = arena.buffer(kern::KernelArena::kSlotPackA,
                                kern::packed_panel_doubles(m, kc));
    kern::pack_rows(a, 0, m, k0, kc, abuf);
    for (std::size_t ir = 0; ir < ns; ++ir) {
      const std::size_t ib = ir * kMR;
      const std::size_t me = std::min(kMR, m - ib);
      for (std::size_t jr = 0; jr <= ir; ++jr) {
        const std::size_t jb = jr * kNR;
        std::memset(acc, 0, sizeof(acc));
        uk(kc, abuf + ir * kMR * kc, abuf + jr * kNR * kc, acc);
        const std::size_t ne = std::min(kNR, m - jb);
        if (ir == jr) {
          add_tile_lower(acc, c, ib, jb, me, ne);
        } else {
          add_tile(acc, c, ib, jb, me, ne);
        }
      }
    }
  }
}

void syr2k_lower(const ConstMatrixView& a, const ConstMatrixView& b,
                 const MatrixView& c) {
  PARSYRK_CHECK(c.rows() == c.cols() && a.rows() == c.rows() &&
                b.rows() == a.rows() && b.cols() == a.cols());
  const std::size_t m = c.rows(), kk = a.cols();
  if (m == 0 || kk == 0) return;
  const auto uk = kern::active_ukernel().fn;
  kern::KernelArena& arena = kern::KernelArena::current();
  const std::size_t ns = strips_of(m);
  alignas(kMatrixAlignment) double acc[kMR * kNR];
  for (std::size_t k0 = 0; k0 < kk; k0 += kKC) {
    const std::size_t kc = std::min(kKC, kk - k0);
    // Both panels packed once; each is reused as left and right operand.
    double* abuf = arena.buffer(kern::KernelArena::kSlotPackA,
                                kern::packed_panel_doubles(m, kc));
    double* bbuf = arena.buffer(kern::KernelArena::kSlotPackB,
                                kern::packed_panel_doubles(m, kc));
    kern::pack_rows(a, 0, m, k0, kc, abuf);
    kern::pack_rows(b, 0, m, k0, kc, bbuf);
    for (std::size_t ir = 0; ir < ns; ++ir) {
      const std::size_t ib = ir * kMR;
      const std::size_t me = std::min(kMR, m - ib);
      for (std::size_t jr = 0; jr <= ir; ++jr) {
        const std::size_t jb = jr * kNR;
        std::memset(acc, 0, sizeof(acc));
        uk(kc, abuf + ir * kMR * kc, bbuf + jr * kNR * kc, acc);
        uk(kc, bbuf + ir * kMR * kc, abuf + jr * kNR * kc, acc);
        const std::size_t ne = std::min(kNR, m - jb);
        if (ir == jr) {
          add_tile_lower(acc, c, ib, jb, me, ne);
        } else {
          add_tile(acc, c, ib, jb, me, ne);
        }
      }
    }
  }
}

void symm_lower_left(const ConstMatrixView& s_lower, const ConstMatrixView& b,
                     const MatrixView& c) {
  PARSYRK_CHECK(s_lower.rows() == s_lower.cols() &&
                b.rows() == s_lower.rows() && c.rows() == s_lower.rows() &&
                c.cols() == b.cols());
  const std::size_t n = s_lower.rows(), m = b.cols();
  if (n == 0 || m == 0) return;
  const auto uk = kern::active_ukernel().fn;
  kern::KernelArena& arena = kern::KernelArena::current();
  const std::size_t nsb = strips_of(m);
  alignas(kMatrixAlignment) double acc[kMR * kNR];
  for (std::size_t k0 = 0; k0 < n; k0 += kKC) {  // reduction over S columns
    const std::size_t kc = std::min(kKC, n - k0);
    double* bbuf = arena.buffer(kern::KernelArena::kSlotPackB,
                                kern::packed_panel_doubles(m, kc));
    kern::pack_cols(b, 0, m, k0, kc, bbuf);
    for (std::size_t i0 = 0; i0 < n; i0 += kMC) {
      const std::size_t mc = std::min(kMC, n - i0);
      double* abuf = arena.buffer(kern::KernelArena::kSlotPackA,
                                  kern::packed_panel_doubles(mc, kc));
      kern::pack_rows_symm(s_lower, i0, mc, k0, kc, abuf);
      const std::size_t nsa = strips_of(mc);
      for (std::size_t ir = 0; ir < nsa; ++ir) {
        const std::size_t ib = i0 + ir * kMR;
        const std::size_t me = std::min(kMR, n - ib);
        for (std::size_t jr = 0; jr < nsb; ++jr) {
          const std::size_t jb = jr * kNR;
          std::memset(acc, 0, sizeof(acc));
          uk(kc, abuf + ir * kMR * kc, bbuf + jr * kNR * kc, acc);
          add_tile(acc, c, ib, jb, me, std::min(kNR, m - jb));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Oracles and utilities
// ---------------------------------------------------------------------------

Matrix syr2k_reference(const ConstMatrixView& a, const ConstMatrixView& b) {
  Matrix c(a.rows(), a.rows());
  syr2k_lower_naive(a, b, c.view());
  symmetrize_from_lower(c);
  return c;
}

Matrix symm_reference(const ConstMatrixView& s_lower,
                      const ConstMatrixView& b) {
  Matrix c(b.rows(), b.cols());
  symm_lower_left_naive(s_lower, b, c.view());
  return c;
}

Matrix syrk_reference(const ConstMatrixView& a) {
  Matrix c(a.rows(), a.rows());
  syrk_lower_naive(a, c.view());
  symmetrize_from_lower(c);
  return c;
}

Matrix transpose(const ConstMatrixView& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  }
  return t;
}

void symmetrize_from_lower(Matrix& c) {
  PARSYRK_CHECK(c.rows() == c.cols());
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = i + 1; j < c.cols(); ++j) c(i, j) = c(j, i);
  }
}

double max_abs_diff(const ConstMatrixView& a, const ConstMatrixView& b) {
  PARSYRK_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
    }
  }
  return m;
}

double max_abs_diff_lower(const ConstMatrixView& a, const ConstMatrixView& b) {
  PARSYRK_CHECK(a.rows() == b.rows() && a.cols() == b.cols() &&
                a.rows() == a.cols());
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
    }
  }
  return m;
}

double frobenius_norm(const ConstMatrixView& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * a(i, j);
  }
  return std::sqrt(s);
}

}  // namespace parsyrk
