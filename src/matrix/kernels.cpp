#include "matrix/kernels.hpp"

#include <algorithm>
#include <cmath>

namespace parsyrk {

namespace {
// Tile sizes chosen so one C tile plus the corresponding A/B panels fit in L1
// on commodity cores; the experiments measure words, not cycles, so these are
// not load-bearing for the reproduction.
constexpr std::size_t kTileM = 64;
constexpr std::size_t kTileN = 64;
constexpr std::size_t kTileK = 256;
}  // namespace

void gemm_nt_naive(const ConstMatrixView& a, const ConstMatrixView& b,
                   const MatrixView& c) {
  PARSYRK_CHECK(a.rows() == c.rows() && b.rows() == c.cols() &&
                a.cols() == b.cols());
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j < c.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(j, k);
      c(i, j) += acc;
    }
  }
}

void gemm_nt(const ConstMatrixView& a, const ConstMatrixView& b,
             const MatrixView& c) {
  PARSYRK_CHECK(a.rows() == c.rows() && b.rows() == c.cols() &&
                a.cols() == b.cols());
  const std::size_t m = c.rows(), n = c.cols(), kk = a.cols();
  for (std::size_t i0 = 0; i0 < m; i0 += kTileM) {
    const std::size_t im = std::min(i0 + kTileM, m);
    for (std::size_t j0 = 0; j0 < n; j0 += kTileN) {
      const std::size_t jm = std::min(j0 + kTileN, n);
      for (std::size_t k0 = 0; k0 < kk; k0 += kTileK) {
        const std::size_t km = std::min(k0 + kTileK, kk);
        for (std::size_t i = i0; i < im; ++i) {
          const double* arow = a.data() + i * a.ld();
          double* crow = c.data() + i * c.ld();
          for (std::size_t j = j0; j < jm; ++j) {
            const double* brow = b.data() + j * b.ld();
            double acc = 0.0;
            for (std::size_t k = k0; k < km; ++k) acc += arow[k] * brow[k];
            crow[j] += acc;
          }
        }
      }
    }
  }
}

void syrk_lower_naive(const ConstMatrixView& a, const MatrixView& c) {
  PARSYRK_CHECK(c.rows() == c.cols() && a.rows() == c.rows());
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * a(j, k);
      c(i, j) += acc;
    }
  }
}

void syrk_lower(const ConstMatrixView& a, const MatrixView& c) {
  PARSYRK_CHECK(c.rows() == c.cols() && a.rows() == c.rows());
  const std::size_t m = c.rows(), kk = a.cols();
  for (std::size_t i0 = 0; i0 < m; i0 += kTileM) {
    const std::size_t im = std::min(i0 + kTileM, m);
    for (std::size_t j0 = 0; j0 <= i0; j0 += kTileN) {
      const std::size_t jm = std::min(j0 + kTileN, m);
      for (std::size_t k0 = 0; k0 < kk; k0 += kTileK) {
        const std::size_t km = std::min(k0 + kTileK, kk);
        for (std::size_t i = i0; i < im; ++i) {
          const double* arow = a.data() + i * a.ld();
          double* crow = c.data() + i * c.ld();
          const std::size_t jend = std::min(jm, i + 1);
          for (std::size_t j = j0; j < jend; ++j) {
            const double* brow = a.data() + j * a.ld();
            double acc = 0.0;
            for (std::size_t k = k0; k < km; ++k) acc += arow[k] * brow[k];
            crow[j] += acc;
          }
        }
      }
    }
  }
}

void syr2k_lower_naive(const ConstMatrixView& a, const ConstMatrixView& b,
                       const MatrixView& c) {
  PARSYRK_CHECK(c.rows() == c.cols() && a.rows() == c.rows() &&
                b.rows() == a.rows() && b.cols() == a.cols());
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc += a(i, k) * b(j, k) + b(i, k) * a(j, k);
      }
      c(i, j) += acc;
    }
  }
}

void syr2k_lower(const ConstMatrixView& a, const ConstMatrixView& b,
                 const MatrixView& c) {
  PARSYRK_CHECK(c.rows() == c.cols() && a.rows() == c.rows() &&
                b.rows() == a.rows() && b.cols() == a.cols());
  const std::size_t m = c.rows(), kk = a.cols();
  for (std::size_t i0 = 0; i0 < m; i0 += kTileM) {
    const std::size_t im = std::min(i0 + kTileM, m);
    for (std::size_t j0 = 0; j0 <= i0; j0 += kTileN) {
      const std::size_t jm = std::min(j0 + kTileN, m);
      for (std::size_t k0 = 0; k0 < kk; k0 += kTileK) {
        const std::size_t km = std::min(k0 + kTileK, kk);
        for (std::size_t i = i0; i < im; ++i) {
          const double* ai = a.data() + i * a.ld();
          const double* bi = b.data() + i * b.ld();
          double* crow = c.data() + i * c.ld();
          const std::size_t jend = std::min(jm, i + 1);
          for (std::size_t j = j0; j < jend; ++j) {
            const double* aj = a.data() + j * a.ld();
            const double* bj = b.data() + j * b.ld();
            double acc = 0.0;
            for (std::size_t k = k0; k < km; ++k) {
              acc += ai[k] * bj[k] + bi[k] * aj[k];
            }
            crow[j] += acc;
          }
        }
      }
    }
  }
}

Matrix syr2k_reference(const ConstMatrixView& a, const ConstMatrixView& b) {
  Matrix c(a.rows(), a.rows());
  syr2k_lower_naive(a, b, c.view());
  symmetrize_from_lower(c);
  return c;
}

void symm_lower_left(const ConstMatrixView& s_lower, const ConstMatrixView& b,
                     const MatrixView& c) {
  PARSYRK_CHECK(s_lower.rows() == s_lower.cols() &&
                b.rows() == s_lower.rows() && c.rows() == s_lower.rows() &&
                c.cols() == b.cols());
  const std::size_t n = s_lower.rows(), m = b.cols();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double s = j <= i ? s_lower(i, j) : s_lower(j, i);
      for (std::size_t t = 0; t < m; ++t) c(i, t) += s * b(j, t);
    }
  }
}

Matrix symm_reference(const ConstMatrixView& s_lower,
                      const ConstMatrixView& b) {
  Matrix c(b.rows(), b.cols());
  symm_lower_left(s_lower, b, c.view());
  return c;
}

Matrix syrk_reference(const ConstMatrixView& a) {
  Matrix c(a.rows(), a.rows());
  syrk_lower_naive(a, c.view());
  symmetrize_from_lower(c);
  return c;
}

Matrix transpose(const ConstMatrixView& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  }
  return t;
}

void symmetrize_from_lower(Matrix& c) {
  PARSYRK_CHECK(c.rows() == c.cols());
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = i + 1; j < c.cols(); ++j) c(i, j) = c(j, i);
  }
}

double max_abs_diff(const ConstMatrixView& a, const ConstMatrixView& b) {
  PARSYRK_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
    }
  }
  return m;
}

double max_abs_diff_lower(const ConstMatrixView& a, const ConstMatrixView& b) {
  PARSYRK_CHECK(a.rows() == b.rows() && a.cols() == b.cols() &&
                a.rows() == a.cols());
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
    }
  }
  return m;
}

double frobenius_norm(const ConstMatrixView& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * a(i, j);
  }
  return std::sqrt(s);
}

}  // namespace parsyrk
