#include "matrix/io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace parsyrk {

namespace {

std::string lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

Matrix read_matrix_market(std::istream& in) {
  std::string line;
  PARSYRK_REQUIRE(std::getline(in, line), "empty MatrixMarket stream");
  std::istringstream header(lowercase(line));
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  PARSYRK_REQUIRE(banner == "%%matrixmarket", "missing %%MatrixMarket banner");
  PARSYRK_REQUIRE(object == "matrix", "unsupported object '", object, "'");
  PARSYRK_REQUIRE(format == "array", "only the dense 'array' format is "
                  "supported; got '", format, "'");
  PARSYRK_REQUIRE(field == "real", "only real matrices are supported");
  PARSYRK_REQUIRE(symmetry == "general" || symmetry == "symmetric",
                  "unsupported symmetry '", symmetry, "'");

  // Skip comments.
  do {
    PARSYRK_REQUIRE(std::getline(in, line),
                    "MatrixMarket stream ended before the size line");
  } while (!line.empty() && line[0] == '%');

  std::istringstream size_line(line);
  long long rows = 0, cols = 0;
  size_line >> rows >> cols;
  PARSYRK_REQUIRE(rows > 0 && cols > 0, "bad size line '", line, "'");
  if (symmetry == "symmetric") {
    PARSYRK_REQUIRE(rows == cols, "symmetric matrix must be square");
  }

  Matrix m(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  // Array format is column-major; symmetric stores the lower triangle only.
  if (symmetry == "general") {
    for (long long j = 0; j < cols; ++j) {
      for (long long i = 0; i < rows; ++i) {
        double v = 0.0;
        PARSYRK_REQUIRE(static_cast<bool>(in >> v),
                        "short data section at (", i, ",", j, ")");
        m(i, j) = v;
      }
    }
  } else {
    for (long long j = 0; j < cols; ++j) {
      for (long long i = j; i < rows; ++i) {
        double v = 0.0;
        PARSYRK_REQUIRE(static_cast<bool>(in >> v),
                        "short data section at (", i, ",", j, ")");
        m(i, j) = v;
        m(j, i) = v;
      }
    }
  }
  return m;
}

Matrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  PARSYRK_REQUIRE(in.good(), "cannot open '", path, "'");
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const ConstMatrixView& m) {
  out << "%%MatrixMarket matrix array real general\n";
  out << "% written by parsyrk\n";
  out << m.rows() << " " << m.cols() << "\n";
  out.precision(17);
  for (std::size_t j = 0; j < m.cols(); ++j) {
    for (std::size_t i = 0; i < m.rows(); ++i) {
      out << m(i, j) << "\n";
    }
  }
}

void write_matrix_market_file(const std::string& path,
                              const ConstMatrixView& m) {
  std::ofstream out(path);
  PARSYRK_REQUIRE(out.good(), "cannot open '", path, "' for writing");
  write_matrix_market(out, m);
}

}  // namespace parsyrk
