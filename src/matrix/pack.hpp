// Panel packing for the micro-kernel engine.
//
// Every packed panel is a sequence of strips of width kMR (== kNR): strip s
// covers R consecutive rows (or columns) and occupies R*kc contiguous
// doubles laid out k-major — for each k step, the R values the micro-kernel
// consumes with one aligned vector load. Rows beyond the operand edge are
// zero-padded inside the strip, so the micro-kernel never needs an edge
// case; the store path clips instead.
//
// Because kMR == kNR, a packed panel serves as either operand. SYRK exploits
// this: its single A panel is packed once per k block and used as both the
// left and the right operand of every C tile — halving pack traffic exactly
// the way the paper's algorithms halve communication by computing only the
// lower triangle.
#pragma once

#include <cstddef>
#include <cstdint>

#include "matrix/matrix.hpp"
#include "matrix/ukernel.hpp"

namespace parsyrk::kern {

/// Doubles a packed panel of `count` rows/cols by `kc` k-steps occupies.
constexpr std::size_t packed_panel_doubles(std::size_t count, std::size_t kc) {
  return (count + kMR - 1) / kMR * kMR * kc;
}

/// Packs rows [r0, r0+nrows) x cols [k0, k0+kc) of `m` into kMR-strips.
/// `buf` must hold packed_panel_doubles(nrows, kc).
void pack_rows(const ConstMatrixView& m, std::size_t r0, std::size_t nrows,
               std::size_t k0, std::size_t kc, double* buf);

/// Packs cols [c0, c0+ncols) x rows [k0, k0+kc) of `m` into kNR-strips with
/// the rows as the k dimension (the right operand of a non-transposed
/// product, e.g. B in SYMM's S·B).
void pack_cols(const ConstMatrixView& m, std::size_t c0, std::size_t ncols,
               std::size_t k0, std::size_t kc, double* buf);

/// Packs rows [r0, r0+nrows) x cols [k0, k0+kc) of the symmetric matrix
/// whose lower triangle is stored in `s_lower`: element (i, j) reads
/// s_lower(i, j) when j <= i and s_lower(j, i) otherwise. Entries strictly
/// above the diagonal of `s_lower` are never read.
void pack_rows_symm(const ConstMatrixView& s_lower, std::size_t r0,
                    std::size_t nrows, std::size_t k0, std::size_t kc,
                    double* buf);

/// Bytes written into pack buffers by the calling thread since the last
/// reset (bench instrumentation for the BENCH_KERNELS.json trajectory).
std::uint64_t pack_bytes();
void reset_pack_bytes();

}  // namespace parsyrk::kern
