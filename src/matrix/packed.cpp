#include "matrix/packed.hpp"

namespace parsyrk {

PackedLower PackedLower::from_full(const ConstMatrixView& m) {
  PARSYRK_CHECK(m.rows() == m.cols());
  PackedLower p(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) p(i, j) = m(i, j);
  }
  return p;
}

Matrix PackedLower::to_full_symmetric() const {
  Matrix m(n_, n_);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      m(i, j) = (*this)(i, j);
      m(j, i) = (*this)(i, j);
    }
  }
  return m;
}

Matrix PackedLower::to_full_lower() const {
  Matrix m(n_, n_);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) m(i, j) = (*this)(i, j);
  }
  return m;
}

}  // namespace parsyrk
