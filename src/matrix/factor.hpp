// Small dense factorizations used by the example applications.
//
// The paper motivates SYRK via CholeskyQR, the normal equations, and the
// Gram SVD (§1); these serial routines factor the small Gram/covariance
// outputs that the parallel SYRK produces. They are deliberately simple —
// the k×k factor matrices are tiny next to the n1×n2 inputs.
#pragma once

#include <vector>

#include "matrix/matrix.hpp"

namespace parsyrk {

/// Lower Cholesky factor of a symmetric positive-definite matrix:
/// G = L·Lᵀ. Only the lower triangle of `g` is read. Throws
/// InvalidArgument if a non-positive pivot appears.
Matrix cholesky_lower(const ConstMatrixView& g);

/// Solves L·y = b in place (forward substitution); L lower-triangular.
void solve_lower(const ConstMatrixView& l, std::vector<double>& b);

/// Solves Lᵀ·x = b in place (back substitution with the transpose of L).
void solve_lower_transposed(const ConstMatrixView& l, std::vector<double>& b);

/// Solves (L·Lᵀ)·x = b; returns x.
std::vector<double> cholesky_solve(const ConstMatrixView& l,
                                   std::vector<double> b);

/// Eigendecomposition of a symmetric matrix by cyclic Jacobi rotations:
/// S = V·diag(values)·Vᵀ with V orthogonal. Eigenvalues are returned in
/// descending order with the matching columns of V.
struct EigenResult {
  std::vector<double> values;
  Matrix vectors;  // column j is the eigenvector of values[j]
  int sweeps = 0;  // Jacobi sweeps used
};

EigenResult jacobi_eigen_symmetric(const ConstMatrixView& s,
                                   double tol = 1e-12, int max_sweeps = 64);

}  // namespace parsyrk
