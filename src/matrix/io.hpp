// Matrix file I/O in the MatrixMarket dense ("array") format, so the CLI
// and examples can run on real data instead of synthetic inputs.
//
// Format accepted/produced:
//   %%MatrixMarket matrix array real general
//   % optional comment lines
//   <rows> <cols>
//   <value>            (column-major, one per line, as in the MM spec)
#pragma once

#include <iosfwd>
#include <string>

#include "matrix/matrix.hpp"

namespace parsyrk {

/// Parses a dense MatrixMarket array stream; throws InvalidArgument on any
/// malformed header or short data section.
Matrix read_matrix_market(std::istream& in);
Matrix read_matrix_market_file(const std::string& path);

/// Writes in the same format (column-major values).
void write_matrix_market(std::ostream& out, const ConstMatrixView& m);
void write_matrix_market_file(const std::string& path,
                              const ConstMatrixView& m);

}  // namespace parsyrk
