#include "matrix/pack.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace parsyrk::kern {

namespace {
thread_local std::uint64_t tls_pack_bytes = 0;
}  // namespace

std::uint64_t pack_bytes() { return tls_pack_bytes; }
void reset_pack_bytes() { tls_pack_bytes = 0; }

void pack_rows(const ConstMatrixView& m, std::size_t r0, std::size_t nrows,
               std::size_t k0, std::size_t kc, double* buf) {
  PARSYRK_CHECK(r0 + nrows <= m.rows() && k0 + kc <= m.cols());
  const std::size_t strips = (nrows + kMR - 1) / kMR;
  for (std::size_t s = 0; s < strips; ++s) {
    double* dst = buf + s * kMR * kc;
    const std::size_t rows_here = std::min(kMR, nrows - s * kMR);
    for (std::size_t i = 0; i < rows_here; ++i) {
      const double* src = m.data() + (r0 + s * kMR + i) * m.ld() + k0;
      for (std::size_t k = 0; k < kc; ++k) dst[k * kMR + i] = src[k];
    }
    for (std::size_t i = rows_here; i < kMR; ++i) {
      for (std::size_t k = 0; k < kc; ++k) dst[k * kMR + i] = 0.0;
    }
  }
  tls_pack_bytes += strips * kMR * kc * sizeof(double);
}

void pack_cols(const ConstMatrixView& m, std::size_t c0, std::size_t ncols,
               std::size_t k0, std::size_t kc, double* buf) {
  PARSYRK_CHECK(c0 + ncols <= m.cols() && k0 + kc <= m.rows());
  const std::size_t strips = (ncols + kNR - 1) / kNR;
  for (std::size_t s = 0; s < strips; ++s) {
    double* dst = buf + s * kNR * kc;
    const std::size_t cols_here = std::min(kNR, ncols - s * kNR);
    for (std::size_t k = 0; k < kc; ++k) {
      const double* src = m.data() + (k0 + k) * m.ld() + c0 + s * kNR;
      std::size_t j = 0;
      for (; j < cols_here; ++j) dst[k * kNR + j] = src[j];
      for (; j < kNR; ++j) dst[k * kNR + j] = 0.0;
    }
  }
  tls_pack_bytes += strips * kNR * kc * sizeof(double);
}

void pack_rows_symm(const ConstMatrixView& s_lower, std::size_t r0,
                    std::size_t nrows, std::size_t k0, std::size_t kc,
                    double* buf) {
  PARSYRK_CHECK(s_lower.rows() == s_lower.cols());
  PARSYRK_CHECK(r0 + nrows <= s_lower.rows() && k0 + kc <= s_lower.cols());
  const std::size_t strips = (nrows + kMR - 1) / kMR;
  for (std::size_t s = 0; s < strips; ++s) {
    double* dst = buf + s * kMR * kc;
    const std::size_t rows_here = std::min(kMR, nrows - s * kMR);
    for (std::size_t i = 0; i < rows_here; ++i) {
      const std::size_t r = r0 + s * kMR + i;
      // Row r of the full symmetric matrix splits at the diagonal: columns
      // j <= r read the stored row r (contiguous), columns j > r reflect to
      // the stored column r (stride ld).
      const std::size_t row_end = std::min(kc, r >= k0 ? r - k0 + 1 : 0);
      const double* row = s_lower.data() + r * s_lower.ld() + k0;
      for (std::size_t k = 0; k < row_end; ++k) dst[k * kMR + i] = row[k];
      for (std::size_t k = row_end; k < kc; ++k) {
        dst[k * kMR + i] = s_lower(k0 + k, r);
      }
    }
    for (std::size_t i = rows_here; i < kMR; ++i) {
      for (std::size_t k = 0; k < kc; ++k) dst[k * kMR + i] = 0.0;
    }
  }
  tls_pack_bytes += strips * kMR * kc * sizeof(double);
}

}  // namespace parsyrk::kern
