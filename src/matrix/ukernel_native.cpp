// The -march=native instantiation of the micro-kernel. This translation unit
// is only added to the build when PARSYRK_NATIVE=ON; everything else in the
// library keeps the baseline ISA, so the binary stays runnable on older
// machines — ukernel.cpp checks native_host_supported() before dispatching
// here.
//
// Unlike the generic TU, the hot path here is written with intrinsics: GCC's
// autovectorizer spills the 8x8 accumulator block of the portable body to the
// stack, which caps it near the blocked kernels. The explicit forms keep all
// eight accumulator rows in registers for the whole k loop.
#include "matrix/ukernel.hpp"

#if defined(__AVX512F__) || defined(__AVX2__)
#include <immintrin.h>
#endif

namespace parsyrk::kern {

namespace {

#if defined(__AVX512F__)

// 8 zmm accumulator rows; each k step is one b-row load plus eight FMAs with
// an embedded broadcast of a[k*8+i] — FMA-throughput bound.
void ukernel_f64_native(std::size_t kc, const double* __restrict__ a,
                        const double* __restrict__ b,
                        double* __restrict__ acc) {
  static_assert(kMR == 8 && kNR == 8);
  __m512d c0 = _mm512_loadu_pd(acc + 0 * 8);
  __m512d c1 = _mm512_loadu_pd(acc + 1 * 8);
  __m512d c2 = _mm512_loadu_pd(acc + 2 * 8);
  __m512d c3 = _mm512_loadu_pd(acc + 3 * 8);
  __m512d c4 = _mm512_loadu_pd(acc + 4 * 8);
  __m512d c5 = _mm512_loadu_pd(acc + 5 * 8);
  __m512d c6 = _mm512_loadu_pd(acc + 6 * 8);
  __m512d c7 = _mm512_loadu_pd(acc + 7 * 8);
  for (std::size_t k = 0; k < kc; ++k) {
    const __m512d bv = _mm512_loadu_pd(b + k * 8);
    const double* ak = a + k * 8;
    c0 = _mm512_fmadd_pd(_mm512_set1_pd(ak[0]), bv, c0);
    c1 = _mm512_fmadd_pd(_mm512_set1_pd(ak[1]), bv, c1);
    c2 = _mm512_fmadd_pd(_mm512_set1_pd(ak[2]), bv, c2);
    c3 = _mm512_fmadd_pd(_mm512_set1_pd(ak[3]), bv, c3);
    c4 = _mm512_fmadd_pd(_mm512_set1_pd(ak[4]), bv, c4);
    c5 = _mm512_fmadd_pd(_mm512_set1_pd(ak[5]), bv, c5);
    c6 = _mm512_fmadd_pd(_mm512_set1_pd(ak[6]), bv, c6);
    c7 = _mm512_fmadd_pd(_mm512_set1_pd(ak[7]), bv, c7);
  }
  _mm512_storeu_pd(acc + 0 * 8, c0);
  _mm512_storeu_pd(acc + 1 * 8, c1);
  _mm512_storeu_pd(acc + 2 * 8, c2);
  _mm512_storeu_pd(acc + 3 * 8, c3);
  _mm512_storeu_pd(acc + 4 * 8, c4);
  _mm512_storeu_pd(acc + 5 * 8, c5);
  _mm512_storeu_pd(acc + 6 * 8, c6);
  _mm512_storeu_pd(acc + 7 * 8, c7);
}

#elif defined(__AVX2__) && defined(__FMA__)

// Two passes of 4 rows x 8 cols: 8 ymm accumulators + 2 b vectors + 1
// broadcast stay inside the 16 ymm registers.
void ukernel_f64_native(std::size_t kc, const double* __restrict__ a,
                        const double* __restrict__ b,
                        double* __restrict__ acc) {
  static_assert(kMR == 8 && kNR == 8);
  for (std::size_t half = 0; half < 2; ++half) {
    const double* arow = a + half * 4;
    double* crow = acc + half * 4 * 8;
    __m256d c00 = _mm256_loadu_pd(crow + 0), c01 = _mm256_loadu_pd(crow + 4);
    __m256d c10 = _mm256_loadu_pd(crow + 8), c11 = _mm256_loadu_pd(crow + 12);
    __m256d c20 = _mm256_loadu_pd(crow + 16), c21 = _mm256_loadu_pd(crow + 20);
    __m256d c30 = _mm256_loadu_pd(crow + 24), c31 = _mm256_loadu_pd(crow + 28);
    for (std::size_t k = 0; k < kc; ++k) {
      const __m256d b0 = _mm256_loadu_pd(b + k * 8);
      const __m256d b1 = _mm256_loadu_pd(b + k * 8 + 4);
      const double* ak = arow + k * 8;
      __m256d ai = _mm256_set1_pd(ak[0]);
      c00 = _mm256_fmadd_pd(ai, b0, c00);
      c01 = _mm256_fmadd_pd(ai, b1, c01);
      ai = _mm256_set1_pd(ak[1]);
      c10 = _mm256_fmadd_pd(ai, b0, c10);
      c11 = _mm256_fmadd_pd(ai, b1, c11);
      ai = _mm256_set1_pd(ak[2]);
      c20 = _mm256_fmadd_pd(ai, b0, c20);
      c21 = _mm256_fmadd_pd(ai, b1, c21);
      ai = _mm256_set1_pd(ak[3]);
      c30 = _mm256_fmadd_pd(ai, b0, c30);
      c31 = _mm256_fmadd_pd(ai, b1, c31);
    }
    _mm256_storeu_pd(crow + 0, c00);
    _mm256_storeu_pd(crow + 4, c01);
    _mm256_storeu_pd(crow + 8, c10);
    _mm256_storeu_pd(crow + 12, c11);
    _mm256_storeu_pd(crow + 16, c20);
    _mm256_storeu_pd(crow + 20, c21);
    _mm256_storeu_pd(crow + 24, c30);
    _mm256_storeu_pd(crow + 28, c31);
  }
}

#else

// -march=native resolved to an ISA without AVX2/AVX-512 (or a non-x86
// architecture): fall back to the portable body under native flags.
#define PARSYRK_UK_RESTRICT __restrict__
#define PARSYRK_UKERNEL_NAME ukernel_f64_native
#include "matrix/ukernel_body.inc"
#undef PARSYRK_UKERNEL_NAME

#endif

}  // namespace

namespace detail {

MicroKernelFn native_ukernel_fn() { return &ukernel_f64_native; }

// The feature tests mirror what this TU was actually compiled to assume:
// the __AVX…__ macros are defined from this file's own -march flags, and
// __builtin_cpu_supports checks the running CPU. x86 only; on other
// architectures -march=native implies the build host's ISA with no runtime
// probe available here, so be conservative and require an explicit opt-in
// via PARSYRK_UKERNEL=native.
bool native_host_supported() {
#if defined(__x86_64__) || defined(__i386__)
#if defined(__AVX512F__)
  if (!__builtin_cpu_supports("avx512f")) return false;
#endif
#if defined(__AVX512VL__)
  if (!__builtin_cpu_supports("avx512vl")) return false;
#endif
#if defined(__AVX2__)
  if (!__builtin_cpu_supports("avx2")) return false;
#endif
#if defined(__FMA__)
  if (!__builtin_cpu_supports("fma")) return false;
#endif
#if defined(__AVX__)
  if (!__builtin_cpu_supports("avx")) return false;
#endif
  return true;
#else
  return false;
#endif
}

}  // namespace detail

}  // namespace parsyrk::kern
