#include "matrix/arena.hpp"

#include "support/check.hpp"

namespace parsyrk::kern {

namespace {
thread_local KernelArena* tls_arena = nullptr;
}  // namespace

double* KernelArena::buffer(int slot, std::size_t count) {
  PARSYRK_CHECK(slot >= 0 && slot < kSlots);
  AlignedVector& buf = slots_[slot];
  if (buf.size() < count) {
    buf.resize(count);
    grows_.fetch_add(1, std::memory_order_relaxed);
  }
  return buf.data();
}

std::size_t KernelArena::doubles_reserved() const {
  std::size_t total = 0;
  for (const auto& s : slots_) total += s.size();
  return total;
}

KernelArena& KernelArena::current() {
  if (tls_arena != nullptr) return *tls_arena;
  static thread_local KernelArena fallback;
  return fallback;
}

void KernelArena::set_current(KernelArena* arena) { tls_arena = arena; }

}  // namespace parsyrk::kern
