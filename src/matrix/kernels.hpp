// Local (single-rank) dense kernels.
//
// Each SPMD rank of the parallel algorithms calls these on its local blocks:
//   * gemm_nt:    C += A · Bᵀ          (paper Alg. 2, line 16 "Local-GEMM")
//   * syrk_lower: C += A · Aᵀ (lower)  (paper Algs. 1–2, "Local-SYRK")
//
// Three tiers per kernel:
//   * the unsuffixed kernels run the packed micro-kernel engine (pack.hpp +
//     ukernel.hpp): BLIS-style packed panels, a register-blocked FMA
//     micro-tile, per-worker arena scratch (arena.hpp) — the production
//     path every SPMD rank executes;
//   * the _blocked variants are the previous generation (cache tiling over
//     the raw row-major operands, no packing) kept as the mid-tier
//     reference point of the BENCH_KERNELS.json perf trajectory;
//   * the _naive variants are the triple-loop oracles the tests compare
//     everything against.
#pragma once

#include <cstddef>

#include "matrix/matrix.hpp"

namespace parsyrk {

/// C (m×n) += A (m×k) · Bᵀ where B is n×k. Packed micro-kernel engine.
void gemm_nt(const ConstMatrixView& a, const ConstMatrixView& b,
             const MatrixView& c);

/// Previous-generation cache-blocked gemm_nt (no packing).
void gemm_nt_blocked(const ConstMatrixView& a, const ConstMatrixView& b,
                     const MatrixView& c);

/// Reference implementation of gemm_nt (triple loop, no tiling).
void gemm_nt_naive(const ConstMatrixView& a, const ConstMatrixView& b,
                   const MatrixView& c);

/// C (m×m, lower triangle incl. diagonal) += A (m×k) · Aᵀ.
/// Entries strictly above the diagonal of C are not touched. The engine
/// packs the A panel once per k block and uses it as both operands.
void syrk_lower(const ConstMatrixView& a, const MatrixView& c);

/// Previous-generation cache-blocked syrk_lower (no packing).
void syrk_lower_blocked(const ConstMatrixView& a, const MatrixView& c);

/// Reference implementation of syrk_lower.
void syrk_lower_naive(const ConstMatrixView& a, const MatrixView& c);

/// C (m×m, lower triangle incl. diagonal) += A·Bᵀ + B·Aᵀ for A, B both m×k
/// (the SYR2K local kernel — §6's first extension target).
void syr2k_lower(const ConstMatrixView& a, const ConstMatrixView& b,
                 const MatrixView& c);

/// Previous-generation cache-blocked syr2k_lower (no packing).
void syr2k_lower_blocked(const ConstMatrixView& a, const ConstMatrixView& b,
                         const MatrixView& c);

/// Reference implementation of syr2k_lower.
void syr2k_lower_naive(const ConstMatrixView& a, const ConstMatrixView& b,
                       const MatrixView& c);

/// Full serial SYR2K oracle: symmetric A·Bᵀ + B·Aᵀ.
Matrix syr2k_reference(const ConstMatrixView& a, const ConstMatrixView& b);

/// C (m×n) += S·B where S is m×m symmetric given by its lower triangle
/// (entries above the diagonal of `s_lower` are ignored) and B is m×n
/// (the SYMM local kernel — §6's second extension target). The engine packs
/// S rows with diagonal reflection, so the product never materializes the
/// full square S.
void symm_lower_left(const ConstMatrixView& s_lower, const ConstMatrixView& b,
                     const MatrixView& c);

/// Reference implementation of symm_lower_left (branchy triple loop).
void symm_lower_left_naive(const ConstMatrixView& s_lower,
                           const ConstMatrixView& b, const MatrixView& c);

/// Full serial SYMM oracle.
Matrix symm_reference(const ConstMatrixView& s_lower,
                      const ConstMatrixView& b);

/// Full serial SYRK: returns the n1×n1 matrix with the lower triangle of
/// A·Aᵀ filled in and the strict upper triangle mirrored (symmetric result).
/// This is the oracle all parallel algorithms are validated against.
Matrix syrk_reference(const ConstMatrixView& a);

/// Returns Aᵀ as a fresh matrix.
Matrix transpose(const ConstMatrixView& a);

/// Copies the strict upper triangle onto the strict lower (or vice versa) so
/// a triangular result can be compared entry-for-entry with a full one.
void symmetrize_from_lower(Matrix& c);

/// max_{i,j} |a(i,j) - b(i,j)|; shapes must match.
double max_abs_diff(const ConstMatrixView& a, const ConstMatrixView& b);

/// max_{i>=j} |a(i,j) - b(i,j)| over the lower triangle only.
double max_abs_diff_lower(const ConstMatrixView& a, const ConstMatrixView& b);

/// Frobenius norm.
double frobenius_norm(const ConstMatrixView& a);

}  // namespace parsyrk
