// Packed lower-triangular storage.
//
// The 1D algorithm reduce-scatters the n1(n1+1)/2 entries of the lower
// triangle of C (paper §5.1.2 counts exactly this many words); packing the
// triangle into a contiguous array makes the communicated volume equal the
// mathematical count instead of the padded n1² square.
#pragma once

#include <cstddef>
#include <vector>

#include "matrix/matrix.hpp"

namespace parsyrk {

/// Lower-triangular (including diagonal) n×n matrix stored row-packed:
/// element (i, j), j <= i, lives at index i(i+1)/2 + j.
class PackedLower {
 public:
  PackedLower() = default;
  explicit PackedLower(std::size_t n) : n_(n), data_(packed_size(n), 0.0) {}

  static std::size_t packed_size(std::size_t n) { return n * (n + 1) / 2; }

  std::size_t n() const { return n_; }
  std::size_t size() const { return data_.size(); }

  double& operator()(std::size_t i, std::size_t j) {
    PARSYRK_CHECK(j <= i && i < n_);
    return data_[i * (i + 1) / 2 + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    PARSYRK_CHECK(j <= i && i < n_);
    return data_[i * (i + 1) / 2 + j];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::span<double> span() { return {data_.data(), data_.size()}; }
  std::span<const double> span() const { return {data_.data(), data_.size()}; }

  /// Packs the lower triangle of a full square matrix.
  static PackedLower from_full(const ConstMatrixView& m);

  /// Expands to a full symmetric matrix (upper triangle mirrored).
  Matrix to_full_symmetric() const;

  /// Expands to a full matrix with zeros above the diagonal.
  Matrix to_full_lower() const;

 private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

}  // namespace parsyrk
