// Aligned allocation for matrix and kernel-scratch storage.
//
// The packed micro-kernel engine (ukernel.hpp) reads its operands with
// full-width vector loads; rows therefore start on 64-byte boundaries:
// matrices allocate with a leading dimension rounded up to the vector
// granule and a 64-byte-aligned base pointer.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace parsyrk {

/// Alignment (bytes) of every Matrix / kernel-scratch allocation: one cache
/// line, which is also the widest vector register (AVX-512) in play.
inline constexpr std::size_t kMatrixAlignment = 64;

/// Leading-dimension granule in doubles: rows are padded so each starts on a
/// kMatrixAlignment boundary.
inline constexpr std::size_t kLdGranule = kMatrixAlignment / sizeof(double);

/// Smallest multiple of kLdGranule that is >= cols (0 stays 0).
constexpr std::size_t padded_ld(std::size_t cols) {
  return (cols + kLdGranule - 1) / kLdGranule * kLdGranule;
}

/// Minimal allocator handing out kMatrixAlignment-aligned storage.
template <class T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U>&) {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(kMatrixAlignment)));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t(kMatrixAlignment));
  }

  template <class U>
  bool operator==(const AlignedAllocator<U>&) const {
    return true;
  }
};

/// 64-byte-aligned growable buffer of doubles.
using AlignedVector = std::vector<double, AlignedAllocator<double>>;

}  // namespace parsyrk
