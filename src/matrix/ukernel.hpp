// Register-blocked micro-kernel with runtime ISA dispatch.
//
// The local-kernel engine (kernels.cpp) tiles every dense kernel down to
// kMR x kNR accumulator tiles fed from packed panels (pack.hpp) and calls
// one micro-kernel in the innermost position. Two implementations of that
// micro-kernel can exist in the binary:
//
//   * generic — compiled with the project's baseline flags; portable.
//   * native  — the same C++ body compiled in its own translation unit with
//     -march=native (CMake option PARSYRK_NATIVE=ON), so the autovectorizer
//     emits the widest FMA the build machine supports.
//
// Selection happens once, at first use: the native kernel is chosen only if
// it was compiled in AND the running CPU reports (via CPUID) every ISA
// feature the native TU was compiled to assume — a binary built on an
// AVX-512 box therefore still runs (on the generic path) on an SSE2 box.
// PARSYRK_UKERNEL=generic|native in the environment overrides the choice
// (used by tests to cross-check both paths bit-for-bit... numerically).
#pragma once

#include <cstddef>

namespace parsyrk::kern {

/// Micro-tile rows. Equal to kNR so a symmetric pack (SYRK/SYR2K) serves as
/// both the left and the right operand panel.
inline constexpr std::size_t kMR = 8;
/// Micro-tile columns.
inline constexpr std::size_t kNR = 8;
/// k-dimension cache block (doubles): one kMR/kNR strip pair stays in L1.
inline constexpr std::size_t kKC = 256;
/// m-dimension cache block: the left-operand pack (kMC x kKC) stays in L2.
inline constexpr std::size_t kMC = 512;

/// C tile (kMR x kNR, row-major accumulator) += Apanel · Bpanelᵀ over kc
/// packed k-steps. Panels are packed strips (pack.hpp).
using MicroKernelFn = void (*)(std::size_t kc, const double* a,
                               const double* b, double* acc);

struct Ukernel {
  MicroKernelFn fn;
  const char* name;  // "generic" or "native"
};

/// The micro-kernel selected for this process (resolved once, thread-safe).
const Ukernel& active_ukernel();

/// True when the binary contains the -march=native translation unit AND the
/// running CPU supports it (regardless of any PARSYRK_UKERNEL override).
bool native_ukernel_available();

}  // namespace parsyrk::kern
