// Dense row-major matrix container and lightweight views.
//
// The library works exclusively in double precision (the BLAS-3 SYRK the
// paper analyzes is dtype-agnostic; communication volumes are measured in
// words). Views carry a leading dimension so sub-blocks of a distributed
// matrix can be addressed without copies.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace parsyrk {

class MatrixView;
class ConstMatrixView;

/// Owning dense matrix, row-major.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix from_rows(
      std::initializer_list<std::initializer_list<double>> rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) {
    PARSYRK_CHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    PARSYRK_CHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::span<double> span() { return {data_.data(), data_.size()}; }
  std::span<const double> span() const { return {data_.data(), data_.size()}; }

  /// Mutable view of the sub-block [r0, r0+nr) x [c0, c0+nc).
  MatrixView block(std::size_t r0, std::size_t c0, std::size_t nr,
                   std::size_t nc);
  ConstMatrixView block(std::size_t r0, std::size_t c0, std::size_t nr,
                        std::size_t nc) const;
  MatrixView view();
  ConstMatrixView view() const;

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Non-owning mutable view with a leading dimension (row stride).
class MatrixView {
 public:
  MatrixView(double* p, std::size_t rows, std::size_t cols, std::size_t ld)
      : p_(p), rows_(rows), cols_(cols), ld_(ld) {
    PARSYRK_CHECK(ld >= cols);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t ld() const { return ld_; }
  double* data() const { return p_; }

  double& operator()(std::size_t i, std::size_t j) const {
    PARSYRK_CHECK(i < rows_ && j < cols_);
    return p_[i * ld_ + j];
  }

  MatrixView block(std::size_t r0, std::size_t c0, std::size_t nr,
                   std::size_t nc) const {
    PARSYRK_CHECK(r0 + nr <= rows_ && c0 + nc <= cols_);
    return {p_ + r0 * ld_ + c0, nr, nc, ld_};
  }

  /// Copies `src` into this view; shapes must match.
  void assign(const ConstMatrixView& src) const;
  void fill(double v) const;

 private:
  double* p_;
  std::size_t rows_, cols_, ld_;
};

/// Non-owning read-only view with a leading dimension.
class ConstMatrixView {
 public:
  ConstMatrixView(const double* p, std::size_t rows, std::size_t cols,
                  std::size_t ld)
      : p_(p), rows_(rows), cols_(cols), ld_(ld) {
    PARSYRK_CHECK(ld >= cols);
  }
  // Implicit: a mutable view is usable wherever a const view is expected.
  ConstMatrixView(const MatrixView& v)  // NOLINT(google-explicit-constructor)
      : p_(v.data()), rows_(v.rows()), cols_(v.cols()), ld_(v.ld()) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t ld() const { return ld_; }
  const double* data() const { return p_; }

  double operator()(std::size_t i, std::size_t j) const {
    PARSYRK_CHECK(i < rows_ && j < cols_);
    return p_[i * ld_ + j];
  }

  ConstMatrixView block(std::size_t r0, std::size_t c0, std::size_t nr,
                        std::size_t nc) const {
    PARSYRK_CHECK(r0 + nr <= rows_ && c0 + nc <= cols_);
    return {p_ + r0 * ld_ + c0, nr, nc, ld_};
  }

  /// Materializes the view into an owning Matrix.
  Matrix to_matrix() const;

 private:
  const double* p_;
  std::size_t rows_, cols_, ld_;
};

/// Fills `m` with uniform random entries using the given seed.
class Rng;

}  // namespace parsyrk
