// Dense row-major matrix container and lightweight views.
//
// The library works exclusively in double precision (the BLAS-3 SYRK the
// paper analyzes is dtype-agnostic; communication volumes are measured in
// words). Views carry a leading dimension so sub-blocks of a distributed
// matrix can be addressed without copies.
//
// Storage is 64-byte aligned with the leading dimension rounded up to the
// vector granule (align.hpp), so every row starts on a cache-line boundary
// and the packed kernel engine can use full-width vector loads. The padding
// is never part of the logical matrix: size() counts rows()*cols(), equality
// compares logical entries, and communication paths flatten logically via
// the flat_* helpers below — never by walking raw storage.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "matrix/align.hpp"
#include "support/check.hpp"

namespace parsyrk {

class MatrixView;
class ConstMatrixView;

/// Owning dense matrix, row-major, 64-byte aligned, ld() >= cols().
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows),
        cols_(cols),
        ld_(padded_ld(cols)),
        data_(rows * padded_ld(cols), fill) {}

  static Matrix from_rows(
      std::initializer_list<std::initializer_list<double>> rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  /// Row stride of the aligned storage; >= cols(), multiple of kLdGranule.
  std::size_t ld() const { return ld_; }
  /// Logical element count rows()*cols() — excludes alignment padding.
  std::size_t size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t i, std::size_t j) {
    PARSYRK_CHECK(i < rows_ && j < cols_);
    return data_[i * ld_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    PARSYRK_CHECK(i < rows_ && j < cols_);
    return data_[i * ld_ + j];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Mutable view of the sub-block [r0, r0+nr) x [c0, c0+nc).
  MatrixView block(std::size_t r0, std::size_t c0, std::size_t nr,
                   std::size_t nc);
  ConstMatrixView block(std::size_t r0, std::size_t c0, std::size_t nr,
                        std::size_t nc) const;
  MatrixView view();
  ConstMatrixView view() const;

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// Logical equality: same shape, same entries (padding ignored).
  bool operator==(const Matrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t ld_ = 0;
  AlignedVector data_;
};

/// Non-owning mutable view with a leading dimension (row stride).
class MatrixView {
 public:
  MatrixView(double* p, std::size_t rows, std::size_t cols, std::size_t ld)
      : p_(p), rows_(rows), cols_(cols), ld_(ld) {
    PARSYRK_CHECK(ld >= cols);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t ld() const { return ld_; }
  double* data() const { return p_; }

  double& operator()(std::size_t i, std::size_t j) const {
    PARSYRK_CHECK(i < rows_ && j < cols_);
    return p_[i * ld_ + j];
  }

  MatrixView block(std::size_t r0, std::size_t c0, std::size_t nr,
                   std::size_t nc) const {
    PARSYRK_CHECK(r0 + nr <= rows_ && c0 + nc <= cols_);
    return {p_ + r0 * ld_ + c0, nr, nc, ld_};
  }

  /// Copies `src` into this view; shapes must match.
  void assign(const ConstMatrixView& src) const;
  void fill(double v) const;

 private:
  double* p_;
  std::size_t rows_, cols_, ld_;
};

/// Non-owning read-only view with a leading dimension.
class ConstMatrixView {
 public:
  ConstMatrixView(const double* p, std::size_t rows, std::size_t cols,
                  std::size_t ld)
      : p_(p), rows_(rows), cols_(cols), ld_(ld) {
    PARSYRK_CHECK(ld >= cols);
  }
  // Implicit: a mutable view is usable wherever a const view is expected.
  ConstMatrixView(const MatrixView& v)  // NOLINT(google-explicit-constructor)
      : p_(v.data()), rows_(v.rows()), cols_(v.cols()), ld_(v.ld()) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t ld() const { return ld_; }
  const double* data() const { return p_; }

  double operator()(std::size_t i, std::size_t j) const {
    PARSYRK_CHECK(i < rows_ && j < cols_);
    return p_[i * ld_ + j];
  }

  ConstMatrixView block(std::size_t r0, std::size_t c0, std::size_t nr,
                        std::size_t nc) const {
    PARSYRK_CHECK(r0 + nr <= rows_ && c0 + nc <= cols_);
    return {p_ + r0 * ld_ + c0, nr, nc, ld_};
  }

  /// Materializes the view into an owning Matrix.
  Matrix to_matrix() const;

 private:
  const double* p_;
  std::size_t rows_, cols_, ld_;
};

// --- Logical (row-major) flat addressing -----------------------------------
//
// The SPMD algorithms address matrices by flat index t <-> (t/cols, t%cols)
// when chunking them for collectives. With padded storage that mapping no
// longer coincides with raw memory, so every such walk goes through these
// helpers; the values (and therefore every communication ledger and golden
// trace) are identical to the historical contiguous layout.

/// Row-major flatten of the whole view.
std::vector<double> flat_copy(const ConstMatrixView& m);

/// Row-major flatten of flat indices [lo, hi).
std::vector<double> flat_copy(const ConstMatrixView& m, std::size_t lo,
                              std::size_t hi);

/// Appends the row-major flatten of `m` to `out`.
void flat_append(const ConstMatrixView& m, std::vector<double>& out);

/// Writes `src` into the view at flat indices [lo, lo + src.size()).
void flat_assign(const MatrixView& m, std::size_t lo,
                 std::span<const double> src);

/// Fills `m` with uniform random entries using the given seed.
class Rng;

}  // namespace parsyrk
