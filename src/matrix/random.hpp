// Seeded test-matrix generation.
#pragma once

#include <cstdint>

#include "matrix/matrix.hpp"
#include "support/rng.hpp"

namespace parsyrk {

/// Matrix with i.i.d. uniform entries in [-1, 1).
inline Matrix random_matrix(std::size_t rows, std::size_t cols,
                            std::uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  // Logical row-major draw order: entry values are independent of the padded
  // leading dimension, so golden traces survive layout changes.
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.uniform(-1, 1);
  }
  return m;
}

/// Matrix whose entry (i, j) equals a deterministic function of (i, j); handy
/// for tests that reshuffle blocks, since the expected value at any position
/// is computable without reference to the original buffer.
inline Matrix indexed_matrix(std::size_t rows, std::size_t cols) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m(i, j) = static_cast<double>(i * 1000 + j);
    }
  }
  return m;
}

}  // namespace parsyrk
