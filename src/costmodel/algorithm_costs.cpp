#include "costmodel/algorithm_costs.hpp"

#include "support/check.hpp"

namespace parsyrk::costmodel {

CollectiveCost syrk_1d_cost(SyrkShape s, std::uint64_t p) {
  // Alg. 1 communicates once: Reduce-Scatter of the packed lower triangle,
  // n1(n1+1)/2 words per rank before the collective (paper eq. (3)).
  const double tri = 0.5 * static_cast<double>(s.n1) *
                     (static_cast<double>(s.n1) + 1.0);
  return reduce_scatter_pairwise(p, tri);
}

CollectiveCost syrk_2d_cost(SyrkShape s, std::uint64_t c) {
  // Alg. 2 communicates once: All-to-All with a buffer of n1·n2/c words per
  // rank (paper eq. (10)), on P = c(c+1) ranks.
  const std::uint64_t p = c * (c + 1);
  const double w = static_cast<double>(s.n1) * static_cast<double>(s.n2) /
                   static_cast<double>(c);
  return all_to_all_pairwise(p, w);
}

CollectiveCost syrk_3d_cost(SyrkShape s, std::uint64_t c, std::uint64_t p2) {
  // Paper §5.3.2: the 2D algorithm on each slice handles n2/p2 columns on
  // p1 = c(c+1) ranks, then C (a triangle block of blocks plus at most one
  // diagonal block) is reduce-scattered over p2 ranks.
  PARSYRK_CHECK(p2 >= 1);
  SyrkShape slice{s.n1, s.n2 / p2};
  CollectiveCost cost = syrk_2d_cost(slice, c);
  const double n1 = static_cast<double>(s.n1);
  const double c2 = static_cast<double>(c) * static_cast<double>(c);
  const double blk = n1 / c2;  // block dimension n1/c²
  const double ck = static_cast<double>(c);
  const double tri_words =
      0.5 * ck * (ck - 1.0) * blk * blk + 0.5 * blk * (blk + 1.0);
  cost += reduce_scatter_pairwise(p2, tri_words);
  return cost;
}

CollectiveCost syrk_1d_cost_hier(SyrkShape s, std::uint64_t nodes,
                                 std::uint64_t ranks_per_node) {
  const double tri = 0.5 * static_cast<double>(s.n1) *
                     (static_cast<double>(s.n1) + 1.0);
  return reduce_scatter_hier(nodes, ranks_per_node, tri);
}

CollectiveCost syrk_2d_cost_hier(SyrkShape s, std::uint64_t c,
                                 std::uint64_t ranks_per_node) {
  const std::uint64_t p = c * (c + 1);
  PARSYRK_CHECK(ranks_per_node >= 1 && p % ranks_per_node == 0);
  const double w = static_cast<double>(s.n1) * static_cast<double>(s.n2) /
                   static_cast<double>(c);
  return all_to_all_hier(p / ranks_per_node, ranks_per_node, w);
}

double syrk_flops_per_rank(SyrkShape s, std::uint64_t p) {
  return static_cast<double>(s.n1) * static_cast<double>(s.n1) *
         static_cast<double>(s.n2) / (2.0 * static_cast<double>(p)) * 1.0 *
         1.0;  // scalar multiplications below+on the diagonal, halved vs GEMM
}

CollectiveCost gemm_1d_cost(SyrkShape s, std::uint64_t p) {
  // 1D GEMM for C = A·Bᵀ with the k dimension partitioned: each rank holds a
  // column block of A and of B, computes a full n1×n1 contribution, and the
  // result is reduce-scattered. Without symmetry the buffer is the full n1².
  const double full = static_cast<double>(s.n1) * static_cast<double>(s.n1);
  return reduce_scatter_pairwise(p, full);
}

CollectiveCost gemm_2d_cost(SyrkShape s, std::uint64_t grid_r) {
  // r×r grid; rank (i,j) computes C_ij = A_i · B_jᵀ. A_i is all-gathered
  // among the r ranks of grid row i, B_j among grid column j; each gather
  // ends with n1·n2/r words resident.
  const double w = static_cast<double>(s.n1) * static_cast<double>(s.n2) /
                   static_cast<double>(grid_r);
  CollectiveCost cost = all_gather_pairwise(grid_r, w);
  cost += all_gather_pairwise(grid_r, w);
  return cost;
}

CollectiveCost gemm_3d_cost(SyrkShape s, std::uint64_t grid_r,
                            std::uint64_t slices) {
  // `slices` cuts the k dimension; each slice runs the 2D scheme on n2/slices
  // columns, then the full C is reduce-scattered across slices.
  SyrkShape slice{s.n1, s.n2 / slices};
  CollectiveCost cost = gemm_2d_cost(slice, grid_r);
  const double c_per_rank = static_cast<double>(s.n1) *
                            static_cast<double>(s.n1) /
                            (static_cast<double>(grid_r) * grid_r);
  cost += reduce_scatter_pairwise(slices, c_per_rank);
  return cost;
}

CollectiveCost scalapack_syrk_cost(SyrkShape s, std::uint64_t grid_r) {
  // Same data movement as the 2D GEMM scheme: the symmetry of C halves the
  // flops (only lower blocks are computed) but every rank still gathers full
  // row and column panels of A.
  return gemm_2d_cost(s, grid_r);
}

}  // namespace parsyrk::costmodel
