// The α-β-γ machine model of §3.2 and closed-form collective costs.
//
// α: per-message latency, β: per-word bandwidth, γ: per-flop compute. The
// paper assumes pairwise-exchange All-to-All and Reduce-Scatter (latency
// P−1, bandwidth (1−1/P)·w); §6 discusses Bruck all-gather and butterfly
// all-to-all trade-offs, which are also modelled here for the E12 ablation.
#pragma once

#include <cmath>
#include <cstdint>

namespace parsyrk::costmodel {

/// Machine parameters. Defaults are representative of a commodity cluster
/// (only ratios matter for the experiments: they rank algorithms, the
/// theorems are about the β term's coefficient).
struct Machine {
  double alpha = 1.0e-6;  // seconds per message
  double beta = 1.0e-9;   // seconds per word
  double gamma = 1.0e-11; // seconds per flop
};

/// Cost of one collective expressed in (messages, words, flops) along the
/// critical path of a single participating processor.
struct CollectiveCost {
  double messages = 0.0;
  double words = 0.0;
  double flops = 0.0;

  double seconds(const Machine& m) const {
    return messages * m.alpha + words * m.beta + flops * m.gamma;
  }
  CollectiveCost& operator+=(const CollectiveCost& o) {
    messages += o.messages;
    words += o.words;
    flops += o.flops;
    return *this;
  }
};

inline CollectiveCost operator+(CollectiveCost a, const CollectiveCost& b) {
  a += b;
  return a;
}

/// Pairwise-exchange All-to-All on P ranks, w words resident per rank before
/// and after: latency P−1, bandwidth (1−1/P)·w (paper §3.2).
inline CollectiveCost all_to_all_pairwise(std::uint64_t p, double w) {
  if (p <= 1) return {};
  const double pd = static_cast<double>(p);
  return {pd - 1.0, (1.0 - 1.0 / pd) * w, 0.0};
}

/// Pairwise-exchange Reduce-Scatter on P ranks, w words per rank before the
/// collective: latency P−1, bandwidth (1−1/P)·w, plus (1−1/P)·w adds.
inline CollectiveCost reduce_scatter_pairwise(std::uint64_t p, double w) {
  if (p <= 1) return {};
  const double pd = static_cast<double>(p);
  const double vol = (1.0 - 1.0 / pd) * w;
  return {pd - 1.0, vol, vol};
}

/// Pairwise-exchange All-Gather (dual of reduce-scatter, no arithmetic);
/// w is the total words resident per rank *after* the collective.
inline CollectiveCost all_gather_pairwise(std::uint64_t p, double w) {
  if (p <= 1) return {};
  const double pd = static_cast<double>(p);
  return {pd - 1.0, (1.0 - 1.0 / pd) * w, 0.0};
}

/// All-reduce composed as reduce-scatter + all-gather (bandwidth-optimal):
/// 2·(1−1/P)·w words, 2(P−1) messages, (1−1/P)·w adds.
inline CollectiveCost all_reduce_pairwise(std::uint64_t p, double w) {
  return reduce_scatter_pairwise(p, w) + all_gather_pairwise(p, w);
}

/// Bruck concatenation all-gather (§6): ceil(log2 P) messages and the same
/// (1−1/P)·w bandwidth — latency- and bandwidth-optimal simultaneously.
inline CollectiveCost all_gather_bruck(std::uint64_t p, double w) {
  if (p <= 1) return {};
  const double pd = static_cast<double>(p);
  return {std::ceil(std::log2(pd)), (1.0 - 1.0 / pd) * w, 0.0};
}

/// Bruck-style Reduce-Scatter (§6): both latency- and bandwidth-optimal —
/// ceil(log2 P) messages at (1−1/P)·w words plus (1−1/P)·w adds.
inline CollectiveCost reduce_scatter_bruck(std::uint64_t p, double w) {
  if (p <= 1) return {};
  const double pd = static_cast<double>(p);
  const double vol = (1.0 - 1.0 / pd) * w;
  return {std::ceil(std::log2(pd)), vol, vol};
}

/// Makespan of a software-pipelined phase: communication time `comm_s`
/// overlapped against compute time `comp_s` in `chunks` equal segments.
/// Steady state runs at the larger of the two; one segment of the smaller
/// term is exposed at each end of the pipe (the first segment's compute has
/// nothing to hide behind, the last segment's flight nothing to hide).
/// chunks <= 1 degenerates to the serial sum comm_s + comp_s. Latency
/// scaling (message count grows with the chunk count) is the caller's
/// responsibility: fold messages·α·chunks into comm_s before calling.
inline double pipelined_seconds(double comm_s, double comp_s, int chunks) {
  if (chunks <= 1) return comm_s + comp_s;
  const double s = static_cast<double>(chunks);
  return (comm_s > comp_s ? comm_s : comp_s) +
         (comm_s > comp_s ? comp_s : comm_s) / s;
}

/// Butterfly (Bruck) All-to-All (§6): latency ceil(log2 P) at the price of a
/// bandwidth factor: (w/2)·ceil(log2 P) words.
inline CollectiveCost all_to_all_butterfly(std::uint64_t p, double w) {
  if (p <= 1) return {};
  const double pd = static_cast<double>(p);
  const double rounds = std::ceil(std::log2(pd));
  return {rounds, 0.5 * w * rounds, 0.0};
}

}  // namespace parsyrk::costmodel
