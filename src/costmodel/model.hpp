// The α-β-γ machine model of §3.2 and closed-form collective costs.
//
// α: per-message latency, β: per-word bandwidth, γ: per-flop compute. The
// paper assumes pairwise-exchange All-to-All and Reduce-Scatter (latency
// P−1, bandwidth (1−1/P)·w); §6 discusses Bruck all-gather and butterfly
// all-to-all trade-offs, which are also modelled here for the E12 ablation.
#pragma once

#include <cmath>
#include <cstdint>

namespace parsyrk::costmodel {

/// Machine parameters. Defaults are representative of a commodity cluster
/// (only ratios matter for the experiments: they rank algorithms, the
/// theorems are about the β term's coefficient). `alpha`/`beta` price the
/// scarce inter-node tier of a two-level nodes × ranks-per-node machine —
/// which on a flat topology is the only tier; `alpha_intra`/`beta_intra`
/// price the cheap intra-node tier (shared-memory / NVLink-class links,
/// roughly 10–20× cheaper than the network on commodity clusters — see
/// docs/TOPOLOGY.md for the calibration note).
struct Machine {
  double alpha = 1.0e-6;  // seconds per inter-node message
  double beta = 1.0e-9;   // seconds per inter-node word
  double gamma = 1.0e-11; // seconds per flop
  double alpha_intra = 1.0e-7;  // seconds per intra-node message
  double beta_intra = 5.0e-11;  // seconds per intra-node word
};

/// Cost of one collective expressed in (messages, words, flops) along the
/// critical path of a single participating processor. `messages`/`words`
/// ride the inter-node tier; the `_intra` fields (zero for every flat
/// collective, so existing call sites are unchanged) ride the cheap tier.
struct CollectiveCost {
  double messages = 0.0;
  double words = 0.0;
  double flops = 0.0;
  double messages_intra = 0.0;
  double words_intra = 0.0;

  double seconds(const Machine& m) const {
    return messages * m.alpha + words * m.beta + flops * m.gamma +
           messages_intra * m.alpha_intra + words_intra * m.beta_intra;
  }
  CollectiveCost& operator+=(const CollectiveCost& o) {
    messages += o.messages;
    words += o.words;
    flops += o.flops;
    messages_intra += o.messages_intra;
    words_intra += o.words_intra;
    return *this;
  }
};

inline CollectiveCost operator+(CollectiveCost a, const CollectiveCost& b) {
  a += b;
  return a;
}

/// Pairwise-exchange All-to-All on P ranks, w words resident per rank before
/// and after: latency P−1, bandwidth (1−1/P)·w (paper §3.2).
inline CollectiveCost all_to_all_pairwise(std::uint64_t p, double w) {
  if (p <= 1) return {};
  const double pd = static_cast<double>(p);
  return {pd - 1.0, (1.0 - 1.0 / pd) * w, 0.0};
}

/// Pairwise-exchange Reduce-Scatter on P ranks, w words per rank before the
/// collective: latency P−1, bandwidth (1−1/P)·w, plus (1−1/P)·w adds.
inline CollectiveCost reduce_scatter_pairwise(std::uint64_t p, double w) {
  if (p <= 1) return {};
  const double pd = static_cast<double>(p);
  const double vol = (1.0 - 1.0 / pd) * w;
  return {pd - 1.0, vol, vol};
}

/// Pairwise-exchange All-Gather (dual of reduce-scatter, no arithmetic);
/// w is the total words resident per rank *after* the collective.
inline CollectiveCost all_gather_pairwise(std::uint64_t p, double w) {
  if (p <= 1) return {};
  const double pd = static_cast<double>(p);
  return {pd - 1.0, (1.0 - 1.0 / pd) * w, 0.0};
}

/// All-reduce composed as reduce-scatter + all-gather (bandwidth-optimal):
/// 2·(1−1/P)·w words, 2(P−1) messages, (1−1/P)·w adds.
inline CollectiveCost all_reduce_pairwise(std::uint64_t p, double w) {
  return reduce_scatter_pairwise(p, w) + all_gather_pairwise(p, w);
}

/// Bruck concatenation all-gather (§6): ceil(log2 P) messages and the same
/// (1−1/P)·w bandwidth — latency- and bandwidth-optimal simultaneously.
inline CollectiveCost all_gather_bruck(std::uint64_t p, double w) {
  if (p <= 1) return {};
  const double pd = static_cast<double>(p);
  return {std::ceil(std::log2(pd)), (1.0 - 1.0 / pd) * w, 0.0};
}

/// Bruck-style Reduce-Scatter (§6): both latency- and bandwidth-optimal —
/// ceil(log2 P) messages at (1−1/P)·w words plus (1−1/P)·w adds.
inline CollectiveCost reduce_scatter_bruck(std::uint64_t p, double w) {
  if (p <= 1) return {};
  const double pd = static_cast<double>(p);
  const double vol = (1.0 - 1.0 / pd) * w;
  return {std::ceil(std::log2(pd)), vol, vol};
}

/// Makespan of a software-pipelined phase: communication time `comm_s`
/// overlapped against compute time `comp_s` in `chunks` equal segments.
/// Steady state runs at the larger of the two; one segment of the smaller
/// term is exposed at each end of the pipe (the first segment's compute has
/// nothing to hide behind, the last segment's flight nothing to hide).
/// chunks <= 1 degenerates to the serial sum comm_s + comp_s. Latency
/// scaling (message count grows with the chunk count) is the caller's
/// responsibility: fold messages·α·chunks into comm_s before calling.
inline double pipelined_seconds(double comm_s, double comp_s, int chunks) {
  if (chunks <= 1) return comm_s + comp_s;
  const double s = static_cast<double>(chunks);
  return (comm_s > comp_s ? comm_s : comp_s) +
         (comm_s > comp_s ? comp_s : comm_s) / s;
}

/// Butterfly (Bruck) All-to-All (§6): latency ceil(log2 P) at the price of a
/// bandwidth factor: (w/2)·ceil(log2 P) words.
inline CollectiveCost all_to_all_butterfly(std::uint64_t p, double w) {
  if (p <= 1) return {};
  const double pd = static_cast<double>(p);
  const double rounds = std::ceil(std::log2(pd));
  return {rounds, 0.5 * w * rounds, 0.0};
}

// ---------------------------------------------------------------------------
// Two-level topology (nodes × ranks-per-node) costs
// ---------------------------------------------------------------------------

/// Reprices a *flat* pairwise collective on a two-level machine: of a
/// rank's P−1 pairwise partners, P−R are off-node, so the inter fraction of
/// its messages and words is (P−R)/(P−1); the remainder moves to the cheap
/// intra tier. Flops are untouched. Identity when ranks_per_node <= 1.
inline CollectiveCost split_tiers(CollectiveCost flat, std::uint64_t p,
                                  std::uint64_t ranks_per_node) {
  if (ranks_per_node <= 1 || p <= 1 || p % ranks_per_node != 0 ||
      p / ranks_per_node < 2) {
    return flat;
  }
  const double pd = static_cast<double>(p);
  const double inter_frac =
      (pd - static_cast<double>(ranks_per_node)) / (pd - 1.0);
  CollectiveCost c;
  c.flops = flat.flops;
  c.messages = flat.messages * inter_frac;
  c.words = flat.words * inter_frac;
  c.messages_intra = flat.messages_intra + flat.messages * (1.0 - inter_frac);
  c.words_intra = flat.words_intra + flat.words * (1.0 - inter_frac);
  return c;
}

/// Hierarchical Reduce-Scatter on N nodes of R ranks (P = N·R), w words per
/// rank before the collective: a binomial intra-node reduce to the leader
/// (ceil(log2 R) messages of w words each along the leader's critical
/// path), a leader-only pairwise reduce-scatter of the node aggregates
/// (N−1 messages, (1−1/N)·w inter words), and an intra-node scatter of the
/// R−1 member segments ((1−1/R)·(w/N) intra words). The busiest rank is
/// the leader; its inter volume (1−1/N)·w is what Theorem 1 bounds at
/// P = N nodes.
inline CollectiveCost reduce_scatter_hier(std::uint64_t nodes,
                                          std::uint64_t ranks_per_node,
                                          double w) {
  if (nodes <= 1 || ranks_per_node < 1) {
    return reduce_scatter_pairwise(nodes * ranks_per_node, w);
  }
  const double nd = static_cast<double>(nodes);
  const double rd = static_cast<double>(ranks_per_node);
  CollectiveCost c;
  // Intra reduce: leader receives ceil(log2 R) partials of w words, adds them.
  const double reduce_rounds = ranks_per_node > 1 ? std::ceil(std::log2(rd)) : 0.0;
  c.messages_intra = reduce_rounds;
  c.words_intra = reduce_rounds * w;
  c.flops = reduce_rounds * w;
  // Inter reduce-scatter between leaders.
  const CollectiveCost inter = reduce_scatter_pairwise(nodes, w);
  c.messages += inter.messages;
  c.words += inter.words;
  c.flops += inter.flops;
  // Intra scatter of the node block (w/N words split over R members).
  if (ranks_per_node > 1) {
    c.messages_intra += rd - 1.0;
    c.words_intra += (1.0 - 1.0 / rd) * (w / nd);
  }
  return c;
}

/// Hierarchical personalized All-to-All on N nodes of R ranks, w words
/// resident per rank: members gather their full images at the leader
/// (R−1 intra messages, (R−1)·w words at the leader), leaders exchange
/// node aggregates pairwise (N−1 messages, R·w·(1−1/N) inter words — the
/// leader carries its whole node's off-node volume), and scatter the
/// regrouped inbound streams (R−1 messages, (R−1)·w intra words).
inline CollectiveCost all_to_all_hier(std::uint64_t nodes,
                                      std::uint64_t ranks_per_node,
                                      double w) {
  if (nodes <= 1 || ranks_per_node < 1) {
    return all_to_all_pairwise(nodes * ranks_per_node, w);
  }
  const double nd = static_cast<double>(nodes);
  const double rd = static_cast<double>(ranks_per_node);
  CollectiveCost c;
  c.messages_intra = 2.0 * (rd - 1.0);             // gather + scatter
  c.words_intra = 2.0 * (rd - 1.0) * w;            // at the leader
  c.messages = nd - 1.0;                           // leader exchange
  c.words = rd * w * (1.0 - 1.0 / nd);
  return c;
}

}  // namespace parsyrk::costmodel
