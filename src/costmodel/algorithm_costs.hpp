// Closed-form per-algorithm cost functions from the paper's §5 analysis.
//
// These are the analytic curves the measured ledgers are checked against:
//   eq. (3):  1D SYRK — Reduce-Scatter of the n1(n1+1)/2 triangle.
//   eq. (10): 2D SYRK — All-to-All of n1·n2/c words.
//   eq. (12): 3D SYRK — All-to-All of A within slices + Reduce-Scatter of C.
//   eq. (9):  leading-order flops n1²n2/P (+ lower-order imbalance).
// GEMM analogues (the factor-2 comparators) follow Al Daas et al. SPAA '22.
#pragma once

#include <cstdint>

#include "costmodel/model.hpp"

namespace parsyrk::costmodel {

struct SyrkShape {
  std::uint64_t n1 = 0;  // rows of A (and order of C)
  std::uint64_t n2 = 0;  // columns of A
};

/// Paper eq. (3): bandwidth/latency of Alg. 1 on P ranks.
CollectiveCost syrk_1d_cost(SyrkShape s, std::uint64_t p);

/// Paper eq. (10): bandwidth/latency of Alg. 2 on P = c(c+1) ranks.
/// `c` must satisfy c(c+1) == p.
CollectiveCost syrk_2d_cost(SyrkShape s, std::uint64_t c);

/// Paper §5.3.2: bandwidth/latency of Alg. 3 on a p1×p2 grid, p1 = c(c+1).
CollectiveCost syrk_3d_cost(SyrkShape s, std::uint64_t c, std::uint64_t p2);

/// Two-level topology variants (nodes × ranks_per_node = P): the same
/// collectives realized hierarchically — intra-node reduce/gather to a node
/// leader on the cheap tier, leader-only exchange on the scarce tier. The
/// inter-node word volume drops to the per-node aggregate, which is what the
/// BoundAuditor checks against Theorem 1 at P = nodes.
CollectiveCost syrk_1d_cost_hier(SyrkShape s, std::uint64_t nodes,
                                 std::uint64_t ranks_per_node);
CollectiveCost syrk_2d_cost_hier(SyrkShape s, std::uint64_t c,
                                 std::uint64_t ranks_per_node);

/// Leading-order local flop count of the SYRK algorithms (eq. (9) and the 1D
/// analogue): n1²·n2 / P multiply-adds counted as one "operation" each, per
/// the paper's γ accounting of scalar multiplications.
double syrk_flops_per_rank(SyrkShape s, std::uint64_t p);

/// Communication of the communication-optimal GEMM baselines used in E8,
/// specialised to C = A·Bᵀ with both factors n1×n2 (so m = n = n1, k = n2).
CollectiveCost gemm_1d_cost(SyrkShape s, std::uint64_t p);
CollectiveCost gemm_2d_cost(SyrkShape s, std::uint64_t grid_r);
CollectiveCost gemm_3d_cost(SyrkShape s, std::uint64_t grid_r,
                            std::uint64_t slices);

/// ScaLAPACK-style SYRK (half flops, GEMM-level communication): equals
/// gemm_2d_cost in words, half of it in flops.
CollectiveCost scalapack_syrk_cost(SyrkShape s, std::uint64_t grid_r);

}  // namespace parsyrk::costmodel
