// Explicitly managed fast memory for sequential I/O experiments.
//
// The sequential lower bounds (Beaumont et al., the substrate of the paper's
// 2^{3/2} sequential story) are stated in the ideal "red-blue pebble"
// model: an algorithm stages blocks into a fast memory of M words and every
// word moved between slow and fast memory is one unit of I/O. FastMemory
// enforces the capacity invariant and counts the traffic; the blocked
// algorithms in seq_syrk.hpp do real arithmetic while staging through it.
#pragma once

#include <cstdint>

#include "support/check.hpp"

namespace parsyrk::seqio {

class FastMemory {
 public:
  explicit FastMemory(std::uint64_t capacity_words)
      : capacity_(capacity_words) {}

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t resident() const { return resident_; }
  std::uint64_t loads() const { return loads_; }
  std::uint64_t stores() const { return stores_; }
  std::uint64_t total_io() const { return loads_ + stores_; }

  /// Brings n words from slow memory; counts n loads.
  void load(std::uint64_t n) {
    loads_ += n;
    resident_ += n;
    PARSYRK_CHECK_MSG(resident_ <= capacity_, "fast memory overflow: ",
                      resident_, " > ", capacity_);
  }

  /// Allocates n words in fast memory without I/O (e.g. a C block whose
  /// initial value is zero — no load is required to start accumulating).
  void allocate(std::uint64_t n) {
    resident_ += n;
    PARSYRK_CHECK_MSG(resident_ <= capacity_, "fast memory overflow: ",
                      resident_, " > ", capacity_);
  }

  /// Writes n words back to slow memory and frees them; counts n stores.
  void store_and_evict(std::uint64_t n) {
    PARSYRK_CHECK(n <= resident_);
    stores_ += n;
    resident_ -= n;
  }

  /// Frees n clean words without I/O.
  void evict(std::uint64_t n) {
    PARSYRK_CHECK(n <= resident_);
    resident_ -= n;
  }

 private:
  std::uint64_t capacity_;
  std::uint64_t resident_ = 0;
  std::uint64_t loads_ = 0;
  std::uint64_t stores_ = 0;
};

}  // namespace parsyrk::seqio
