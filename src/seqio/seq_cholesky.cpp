#include "seqio/seq_cholesky.hpp"

#include <algorithm>
#include <cmath>

#include "seqio/fast_memory.hpp"
#include "support/check.hpp"

namespace parsyrk::seqio {

namespace {

/// Unblocked Cholesky of the tile held at w.block(k0, k0, nb, nb), in place.
void factor_diag(Matrix& w, std::size_t k0, std::size_t nb) {
  for (std::size_t j = 0; j < nb; ++j) {
    double d = w(k0 + j, k0 + j);
    for (std::size_t t = 0; t < j; ++t) {
      d -= w(k0 + j, k0 + t) * w(k0 + j, k0 + t);
    }
    PARSYRK_REQUIRE(d > 0.0, "matrix is not positive definite (tile pivot ",
                    k0 + j, " = ", d, ")");
    w(k0 + j, k0 + j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < nb; ++i) {
      double s = w(k0 + i, k0 + j);
      for (std::size_t t = 0; t < j; ++t) {
        s -= w(k0 + i, k0 + t) * w(k0 + j, k0 + t);
      }
      w(k0 + i, k0 + j) = s / w(k0 + j, k0 + j);
    }
  }
}

/// In-place triangular solve of tile (i0, k0) against the factored diagonal
/// tile (k0, k0): W(i0.., k0..) := W(i0.., k0..) · L(k0,k0)⁻ᵀ.
void solve_panel_tile(Matrix& w, std::size_t i0, std::size_t k0,
                      std::size_t ni, std::size_t nb) {
  for (std::size_t r = 0; r < ni; ++r) {
    for (std::size_t j = 0; j < nb; ++j) {
      double s = w(i0 + r, k0 + j);
      for (std::size_t t = 0; t < j; ++t) {
        s -= w(i0 + r, k0 + t) * w(k0 + j, k0 + t);
      }
      w(i0 + r, k0 + j) = s / w(k0 + j, k0 + j);
    }
  }
}

/// Trailing tile update: W(i0.., j0..) −= L(i0.., k0..)·L(j0.., k0..)ᵀ,
/// lower part only when on the diagonal.
void update_trailing_tile(Matrix& w, std::size_t i0, std::size_t j0,
                          std::size_t k0, std::size_t ni, std::size_t nj,
                          std::size_t nb, bool diag) {
  for (std::size_t r = 0; r < ni; ++r) {
    const std::size_t cmax = diag ? std::min(nj, r + 1) : nj;
    for (std::size_t cc = 0; cc < cmax; ++cc) {
      double acc = 0.0;
      for (std::size_t t = 0; t < nb; ++t) {
        acc += w(i0 + r, k0 + t) * w(j0 + cc, k0 + t);
      }
      w(i0 + r, j0 + cc) -= acc;
    }
  }
}

struct TileGrid {
  std::size_t n = 0, b = 0, ntiles = 0;
  std::size_t begin(std::size_t t) const { return t * b; }
  std::size_t size(std::size_t t) const {
    return std::min(b, n - t * b);
  }
};

SeqCholResult run(const ConstMatrixView& g, std::uint64_t m,
                  bool panel_resident) {
  PARSYRK_REQUIRE(g.rows() == g.cols(), "Cholesky needs a square matrix");
  const std::size_t n = g.rows();
  // Tile size: 3 tiles resident for tile-pair; panel (n·b) + 2 tiles for
  // panel-resident.
  std::size_t b;
  if (panel_resident) {
    b = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(m) /
                                    (static_cast<double>(n) + 1.0) / 1.2));
    while (b > 1 && n * b + 2 * b * b > m) --b;
    PARSYRK_REQUIRE(n * 1 + 2 <= m, "fast memory too small: need n + 2");
  } else {
    b = static_cast<std::size_t>(std::sqrt(static_cast<double>(m) / 3.0));
    PARSYRK_REQUIRE(b >= 1, "fast memory too small for one tile triple");
  }
  b = std::min(b, n);

  TileGrid grid{n, b, (n + b - 1) / b};
  FastMemory fm(m);
  SeqCholResult out;
  out.tile = b;
  // Working copy (slow memory); only the lower triangle is meaningful.
  Matrix w(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) w(i, j) = g(i, j);
  }

  const std::size_t k_tiles = grid.ntiles;
  for (std::size_t k = 0; k < k_tiles; ++k) {
    const std::size_t k0 = grid.begin(k), nb = grid.size(k);
    // Factor the diagonal tile.
    fm.load(nb * (nb + 1) / 2);
    factor_diag(w, k0, nb);
    // With panel_resident the factored tiles stay pinned for the trailing
    // update; their writeback is counted here, eviction happens at step end.
    if (panel_resident) out.stores += nb * (nb + 1) / 2;
    std::uint64_t pinned = nb * (nb + 1) / 2;
    for (std::size_t i = k + 1; i < k_tiles; ++i) {
      const std::size_t i0 = grid.begin(i), ni = grid.size(i);
      fm.load(ni * nb);
      solve_panel_tile(w, i0, k0, ni, nb);
      if (panel_resident) {
        // Stays resident (also written back so slow memory holds L).
        out.stores += ni * nb;
        pinned += ni * nb;
      } else {
        fm.store_and_evict(ni * nb);
      }
    }
    if (!panel_resident) fm.store_and_evict(nb * (nb + 1) / 2);

    // Trailing SYRK with the step-k panel.
    for (std::size_t i = k + 1; i < k_tiles; ++i) {
      const std::size_t i0 = grid.begin(i), ni = grid.size(i);
      for (std::size_t j = k + 1; j <= i; ++j) {
        const std::size_t j0 = grid.begin(j), nj = grid.size(j);
        const bool diag = i == j;
        const std::size_t c_words = diag ? ni * (ni + 1) / 2 : ni * nj;
        fm.load(c_words);
        if (!panel_resident) {
          fm.load(ni * nb);
          if (!diag) fm.load(nj * nb);
        }
        update_trailing_tile(w, i0, j0, k0, ni, nj, nb, diag);
        fm.store_and_evict(c_words);
        if (!panel_resident) {
          fm.evict(ni * nb);
          if (!diag) fm.evict(nj * nb);
        }
      }
    }
    if (panel_resident) {
      fm.evict(pinned);  // panel was written back as it was produced
    }
  }
  out.loads = fm.loads();
  out.stores += fm.stores();

  // Extract L (zeroing the strict upper).
  out.l = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) out.l(i, j) = w(i, j);
  }
  return out;
}

}  // namespace

SeqCholResult seq_cholesky_tile_pair(const ConstMatrixView& g,
                                     std::uint64_t m) {
  return run(g, m, /*panel_resident=*/false);
}

SeqCholResult seq_cholesky_panel_resident(const ConstMatrixView& g,
                                          std::uint64_t m) {
  return run(g, m, /*panel_resident=*/true);
}

double seq_cholesky_io_reference(std::uint64_t n, std::uint64_t m) {
  const double dn = static_cast<double>(n);
  return dn * dn * dn / (3.0 * std::sqrt(static_cast<double>(m)));
}

double seq_cholesky_io_lower_bound(std::uint64_t n, std::uint64_t m) {
  const double dn = static_cast<double>(n);
  return dn * dn * dn / (3.0 * std::sqrt(2.0 * static_cast<double>(m)));
}

}  // namespace parsyrk::seqio
