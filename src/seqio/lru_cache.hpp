// Word-granular fully-associative LRU cache simulator.
//
// Complements FastMemory: where FastMemory models an algorithm that manages
// its own staging (the ideal-cache assumption of the sequential bounds),
// LruCache models a hardware-like cache under an *unmodified* access stream
// — used to show the naive triple loop really does incur ~n1²·n2/2 misses.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "support/check.hpp"

namespace parsyrk::seqio {

class LruCache {
 public:
  explicit LruCache(std::uint64_t capacity_words) : capacity_(capacity_words) {
    PARSYRK_REQUIRE(capacity_words > 0, "cache capacity must be positive");
  }

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t hits() const { return accesses_ - misses_; }

  /// Touches one word; returns true on a miss.
  bool access(std::uint64_t addr) {
    ++accesses_;
    auto it = index_.find(addr);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return false;
    }
    ++misses_;
    if (lru_.size() == capacity_) {
      index_.erase(lru_.back());
      lru_.pop_back();
    }
    lru_.push_front(addr);
    index_[addr] = lru_.begin();
    return true;
  }

 private:
  std::uint64_t capacity_;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
  std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> index_;
};

}  // namespace parsyrk::seqio
