// Sequential blocked Cholesky with measured I/O — the kernel SYRK lives
// inside (§1: "the computation gets its name from its use ... within
// algorithms for computing the Cholesky decomposition").
//
// Right-looking tile Cholesky of an SPD matrix through a FastMemory of M
// words. The trailing update of step k is exactly a SYRK with the freshly
// factored panel, and its staging dominates the I/O:
//   * tile-pair: each trailing tile update loads both panel tiles it needs
//     — I/O ≈ n³/(3b) + n³/(3b) for panel re-reads (the classical scheme);
//   * panel-resident: the whole panel of step k stays in fast memory while
//     the trailing tiles stream — panel re-reads vanish, leaving the
//     irreducible trailing-tile traffic ≈ n³/(3b), b ≈ √(M).
// (The further √2 of Beaumont et al.'s symmetric-aware Cholesky blocking is
// their contribution, out of scope here; the bound is provided as the
// reference line.)
#pragma once

#include <cstdint>

#include "matrix/matrix.hpp"

namespace parsyrk::seqio {

struct SeqCholResult {
  Matrix l;                 // lower Cholesky factor
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t total_io() const { return loads + stores; }
  std::uint64_t tile = 0;   // tile size used
};

/// Tile-pair staging: every trailing tile update loads its two panel tiles.
/// Requires 3 tiles to fit: 3·b² <= m.
SeqCholResult seq_cholesky_tile_pair(const ConstMatrixView& g,
                                     std::uint64_t m);

/// Panel-resident staging: the step-k panel (up to n·b words) is pinned
/// while trailing tiles stream; falls back to smaller tiles so that
/// n·b + 2b² <= m.
SeqCholResult seq_cholesky_panel_resident(const ConstMatrixView& g,
                                          std::uint64_t m);

/// Classical sequential Cholesky I/O reference: n³/(3·√M) (leading order).
double seq_cholesky_io_reference(std::uint64_t n, std::uint64_t m);

/// The √2-improved symmetric-aware bound of Beaumont et al.:
/// n³/(3·√(2M)).
double seq_cholesky_io_lower_bound(std::uint64_t n, std::uint64_t m);

}  // namespace parsyrk::seqio
