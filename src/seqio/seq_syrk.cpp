#include "seqio/seq_syrk.hpp"

#include <algorithm>
#include <cmath>

#include "distribution/triangle_block.hpp"
#include "support/check.hpp"
#include "support/prime.hpp"

namespace parsyrk::seqio {

namespace {

/// Accumulates a(rows I, k0..k1) · a(rows J, k0..k1)ᵀ into `block`
/// (full for I != J, lower triangle for I == J).
void update_block(const ConstMatrixView& a, std::size_t i0, std::size_t ni,
                  std::size_t j0, std::size_t nj, std::size_t k0,
                  std::size_t k1, MatrixView block, bool lower_only) {
  for (std::size_t r = 0; r < ni; ++r) {
    const std::size_t jmax = lower_only ? std::min(nj, (i0 + r) - j0 + 1) : nj;
    for (std::size_t c = 0; c < jmax; ++c) {
      double acc = 0.0;
      for (std::size_t k = k0; k < k1; ++k) {
        acc += a(i0 + r, k) * a(j0 + c, k);
      }
      block(r, c) += acc;
    }
  }
}

}  // namespace

SeqSyrkResult seq_syrk_naive(const ConstMatrixView& a, std::uint64_t m) {
  const std::size_t n1 = a.rows();
  const std::size_t n2 = a.cols();
  PARSYRK_REQUIRE(m >= 2 * n2 + 1, "naive scheme needs m >= 2·n2 + 1; m = ",
                  m, ", n2 = ", n2);
  FastMemory fm(m);
  SeqSyrkResult out;
  out.c = Matrix(n1, n1);
  for (std::size_t i = 0; i < n1; ++i) {
    fm.load(n2);  // row i stays resident across the j sweep
    for (std::size_t j = 0; j <= i; ++j) {
      if (j < i) fm.load(n2);  // stream row j
      fm.allocate(1);
      double acc = 0.0;
      for (std::size_t k = 0; k < n2; ++k) acc += a(i, k) * a(j, k);
      out.c(i, j) = acc;
      out.c(j, i) = acc;
      fm.store_and_evict(1);
      if (j < i) fm.evict(n2);
    }
    fm.evict(n2);
  }
  out.loads = fm.loads();
  out.stores = fm.stores();
  out.parameter = 0;
  return out;
}

SeqSyrkResult seq_syrk_square(const ConstMatrixView& a, std::uint64_t m) {
  const std::size_t n1 = a.rows();
  const std::size_t n2 = a.cols();
  // b² for the C block plus two streamed A panel chunks of width kc >= 1;
  // maximizing b (≈ √M) is what attains the n1²·n2/√M I/O of square
  // blocking — the chunk width only affects constant-free lower-order terms.
  auto b = static_cast<std::size_t>(std::sqrt(static_cast<double>(m)));
  while (b >= 1 && b * b + 2 * b > m) --b;
  b = std::min(b, n1);
  PARSYRK_REQUIRE(b >= 1, "square scheme needs m >= 3");
  std::size_t kc = std::max<std::size_t>(1, (m - b * b) / (2 * b));
  kc = std::min(kc, n2);
  FastMemory fm(m);
  SeqSyrkResult out;
  out.c = Matrix(n1, n1);
  out.parameter = b;
  const std::size_t nblk = (n1 + b - 1) / b;
  for (std::size_t bi = 0; bi < nblk; ++bi) {
    const std::size_t i0 = bi * b, ni = std::min(b, n1 - i0);
    for (std::size_t bj = 0; bj <= bi; ++bj) {
      const std::size_t j0 = bj * b, nj = std::min(b, n1 - j0);
      const bool diag = bi == bj;
      fm.allocate(ni * nj);  // C block accumulates from zero: no load
      Matrix block(ni, nj);
      for (std::size_t k0 = 0; k0 < n2; k0 += kc) {
        const std::size_t k1 = std::min(k0 + kc, n2);
        fm.load(ni * (k1 - k0));            // A panel chunk, rows i0..
        if (!diag) fm.load(nj * (k1 - k0)); // A panel chunk, rows j0..
        update_block(a, i0, ni, j0, nj, k0, k1, block.view(), diag);
        fm.evict(ni * (k1 - k0));
        if (!diag) fm.evict(nj * (k1 - k0));
      }
      for (std::size_t r = 0; r < ni; ++r) {
        const std::size_t cmax = diag ? std::min(nj, r + 1) : nj;
        for (std::size_t c = 0; c < cmax; ++c) {
          out.c(i0 + r, j0 + c) = block(r, c);
          out.c(j0 + c, i0 + r) = block(r, c);
        }
      }
      fm.store_and_evict(ni * nj);
    }
  }
  out.loads = fm.loads();
  out.stores = fm.stores();
  return out;
}

SeqSyrkResult seq_syrk_triangle(const ConstMatrixView& a, std::uint64_t m) {
  const std::size_t n1 = a.rows();
  const std::size_t n2 = a.cols();
  // Pick the smallest prime c such that the row groups divide n1 and one
  // triangle set's working space fits: the C blocks of the set plus one
  // k-chunk of all c·nb resident A rows.
  std::optional<std::uint64_t> chosen;
  for (std::uint64_t c = 2; c * c <= n1; c = next_prime(c + 1)) {
    if (n1 % (c * c) != 0) continue;
    const std::uint64_t nb = n1 / (c * c);
    const std::uint64_t cset =
        c * (c - 1) / 2 * nb * nb + nb * (nb + 1) / 2;
    const std::uint64_t rows = c * nb;  // = n1/c resident A rows
    if (cset + rows <= m) {  // at least kc = 1 must fit
      chosen = c;
      break;
    }
  }
  PARSYRK_REQUIRE(chosen.has_value(),
                  "no usable triangle-block prime: need a prime c with "
                  "n1 % c² == 0 and the set working space within m = ", m);
  const std::uint64_t c = *chosen;
  const std::uint64_t nb = n1 / (c * c);
  const std::uint64_t cset = c * (c - 1) / 2 * nb * nb + nb * (nb + 1) / 2;
  const std::uint64_t rows = c * nb;
  std::size_t kc = std::max<std::uint64_t>(1, (m - cset) / rows);
  kc = std::min<std::size_t>(kc, n2);

  dist::TriangleBlockDistribution d(c);
  FastMemory fm(m);
  SeqSyrkResult out;
  out.c = Matrix(n1, n1);
  out.parameter = c;

  for (std::uint64_t k = 0; k < d.num_procs(); ++k) {
    const auto pairs = d.owned_pairs(k);
    const auto diag = d.diagonal_block(k);
    // Allocate the set's C blocks (accumulate from zero: no load I/O).
    std::vector<Matrix> blocks(pairs.size(), Matrix(nb, nb));
    Matrix diag_block(nb, nb);
    std::uint64_t cwords = pairs.size() * nb * nb;
    if (diag) cwords += nb * (nb + 1) / 2;
    fm.allocate(cwords);

    for (std::size_t k0 = 0; k0 < n2; k0 += kc) {
      const std::size_t k1 = std::min(k0 + kc, n2);
      // One load brings the k-chunk of ALL the set's rows; every pair in the
      // set reuses it — this is the higher operational intensity of triangle
      // blocks (Beaumont et al.).
      fm.load(rows * (k1 - k0));
      for (std::size_t t = 0; t < pairs.size(); ++t) {
        const auto [bi, bj] = pairs[t];
        update_block(a, bi * nb, nb, bj * nb, nb, k0, k1, blocks[t].view(),
                     /*lower_only=*/false);
      }
      if (diag) {
        update_block(a, *diag * nb, nb, *diag * nb, nb, k0, k1,
                     diag_block.view(), /*lower_only=*/true);
      }
      fm.evict(rows * (k1 - k0));
    }
    for (std::size_t t = 0; t < pairs.size(); ++t) {
      const auto [bi, bj] = pairs[t];
      for (std::size_t r = 0; r < nb; ++r) {
        for (std::size_t cc = 0; cc < nb; ++cc) {
          out.c(bi * nb + r, bj * nb + cc) = blocks[t](r, cc);
          out.c(bj * nb + cc, bi * nb + r) = blocks[t](r, cc);
        }
      }
    }
    if (diag) {
      for (std::size_t r = 0; r < nb; ++r) {
        for (std::size_t cc = 0; cc <= r; ++cc) {
          out.c(*diag * nb + r, *diag * nb + cc) = diag_block(r, cc);
          out.c(*diag * nb + cc, *diag * nb + r) = diag_block(r, cc);
        }
      }
    }
    fm.store_and_evict(cwords);
  }
  out.loads = fm.loads();
  out.stores = fm.stores();
  return out;
}

double seq_syrk_io_lower_bound(std::uint64_t n1, std::uint64_t n2,
                               std::uint64_t m) {
  const double d1 = static_cast<double>(n1);
  const double d2 = static_cast<double>(n2);
  return d1 * d1 * d2 / std::sqrt(2.0 * static_cast<double>(m));
}

double seq_gemm_io_lower_bound(std::uint64_t n1, std::uint64_t n2,
                               std::uint64_t m) {
  const double d1 = static_cast<double>(n1);
  const double d2 = static_cast<double>(n2);
  return 2.0 * d1 * d1 * d2 / std::sqrt(static_cast<double>(m));
}

}  // namespace parsyrk::seqio
