// Sequential SYRK variants with measured I/O (E10).
//
// Three schemes compute the lower triangle of C = A·Aᵀ while staging data
// through a FastMemory of M words:
//   * naive: row-pair streaming, no C blocking — I/O ≈ n1²·n2/2;
//   * square: square cache blocks of C — I/O ≈ n1²·n2/√M (the "GEMM-style,
//     flops halved" scheme);
//   * triangle: Beaumont et al.'s triangle-block scheme, reusing the
//     triangle-block index family from the distribution module — I/O ≈
//     (1/√2)·n1²·n2/√M, a factor √2 better, matching the sequential lower
//     bound's constant.
// Every scheme returns the computed matrix so tests can verify the
// restructuring did not change the arithmetic.
#pragma once

#include <cstdint>

#include "matrix/matrix.hpp"
#include "seqio/fast_memory.hpp"

namespace parsyrk::seqio {

struct SeqSyrkResult {
  Matrix c;                 // full symmetric result
  std::uint64_t loads = 0;  // words moved slow -> fast
  std::uint64_t stores = 0; // words moved fast -> slow
  std::uint64_t total_io() const { return loads + stores; }
  /// Parameter actually used by the scheme (block size b, or triangle
  /// distribution prime c); 0 for the naive scheme.
  std::uint64_t parameter = 0;
};

/// Row-pair streaming: keeps one row of A resident, streams the others.
/// Requires 2·n2 + 1 <= m words.
SeqSyrkResult seq_syrk_naive(const ConstMatrixView& a, std::uint64_t m);

/// Square blocking: C blocks of dimension b with b² + 2·b·kc <= m; the A
/// panels are streamed through fast memory in k-chunks of width kc.
SeqSyrkResult seq_syrk_square(const ConstMatrixView& a, std::uint64_t m);

/// Triangle blocking (Beaumont): rows are grouped into c² groups; the
/// triangle-block index family covers every group pair exactly once with
/// c-element sets, each processed with all its A rows resident.
/// Requires a prime c such that the working set fits in m and n1 % c² == 0.
SeqSyrkResult seq_syrk_triangle(const ConstMatrixView& a, std::uint64_t m);

/// The sequential I/O lower bound of Beaumont et al.: (1/√2)·n1²·n2/√M
/// (leading order).
double seq_syrk_io_lower_bound(std::uint64_t n1, std::uint64_t n2,
                               std::uint64_t m);

/// The tight sequential GEMM I/O bound (Smith et al.): 2·n1²·n2/√M, the
/// 2^{3/2}-factor comparator.
double seq_gemm_io_lower_bound(std::uint64_t n1, std::uint64_t n2,
                               std::uint64_t m);

}  // namespace parsyrk::seqio
