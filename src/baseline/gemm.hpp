// Communication-optimal parallel GEMM baselines (Al Daas et al., SPAA '22
// style), specialised to C = A·Bᵀ with two independent n1×n2 factors.
//
// These are the comparators for the paper's headline claim: SYRK with the
// triangle-block algorithms moves half the words of the corresponding
// optimal GEMM in every regime. The GEMM algorithms deliberately ignore the
// symmetry available when B == A — they model how C = A·Aᵀ would run through
// a general matrix-multiplication stack.
#pragma once

#include <cstdint>

#include "matrix/matrix.hpp"
#include "simmpi/comm.hpp"

namespace parsyrk::baseline {

/// 1D GEMM: the k (= n2) dimension is partitioned across world.size() ranks;
/// each rank multiplies its column panels of A and B and the full n1×n1
/// result is reduce-scattered. Optimal for n1 <= n2 and small P.
Matrix gemm_1d(comm::World& world, const Matrix& a, const Matrix& b);

/// 2D GEMM on an r×r grid (world.size() == r²): rank (i,j) computes
/// C_ij = A_i·B_jᵀ after all-gathers of the row panels within grid rows and
/// columns. Optimal for n1 > n2 and moderate P.
Matrix gemm_2d(comm::World& world, const Matrix& a, const Matrix& b,
               std::uint64_t grid_r);

/// 3D GEMM on an r×r×t grid (world.size() == r²·t): each of the t slices
/// runs the 2D scheme on a column slab of the k dimension, then C is
/// reduce-scattered across slices. Optimal for large P with
/// t = (n2/n1)^{2/3}·P^{1/3}.
Matrix gemm_3d(comm::World& world, const Matrix& a, const Matrix& b,
               std::uint64_t grid_r, std::uint64_t slices);

/// GEMM-based SYMM baseline: expands the symmetric S to a full matrix and
/// runs a SUMMA-style 2D product C = S·B on an r×r grid. Every rank gathers
/// an n×(n/r) panel of S — the n²/√P-word cost that the triangle-block
/// SYMM (core/symm.hpp) eliminates entirely. world.size() == r².
Matrix symm_gemm_baseline(comm::World& world, const Matrix& s_lower,
                          const Matrix& b, std::uint64_t grid_r);

/// 2-GEMM SYR2K baseline: computes A·Bᵀ and B·Aᵀ as two independent 2D
/// GEMMs on the same grid (the symmetry of the output is ignored, as in a
/// GEMM-composed implementation) and adds them. world.size() == r².
Matrix syr2k_gemm_baseline(comm::World& world, const Matrix& a,
                           const Matrix& b, std::uint64_t grid_r);

/// ScaLAPACK-style PSYRK: a 2D block distribution of C where each rank
/// (i, j) with i >= j computes C_ij = A_i·A_jᵀ. The symmetry of C halves
/// the flops (upper blocks are skipped) but *not* the communication: every
/// rank still gathers full row and column panels of A — the behaviour the
/// paper attributes to ScaLAPACK and Elemental (§1). world.size() == r².
Matrix scalapack_syrk(comm::World& world, const Matrix& a,
                      std::uint64_t grid_r);

}  // namespace parsyrk::baseline
