#include "baseline/gemm.hpp"

#include <algorithm>

#include "distribution/block1d.hpp"
#include "matrix/kernels.hpp"
#include "support/check.hpp"

namespace parsyrk::baseline {

namespace {

constexpr const char* kPhaseGatherA = "gather_A";
constexpr const char* kPhaseGatherB = "gather_B";
constexpr const char* kPhaseReduceC = "reduce_C";

/// Geometry + data of the C block one grid rank owns after the 2D scheme.
struct GridBlock {
  std::size_t row0 = 0, rows = 0;
  std::size_t col0 = 0, cols = 0;
  Matrix block;
};

/// Reads this rank's even chunk of the flattened row panel `panel_row` of
/// `m` (panel = rows [r0, r0+nr), all cols), all-gathers the panel within
/// `along`, and returns it assembled.
Matrix gather_panel(comm::Comm& along, const ConstMatrixView& m,
                    std::size_t r0, std::size_t nr) {
  const int parts = along.size();
  const int me = along.rank();
  const std::size_t n2 = m.cols();
  const std::size_t flat = nr * n2;
  const std::size_t lo = dist::chunk_begin(flat, parts, me);
  const std::size_t hi = dist::chunk_end(flat, parts, me);
  std::vector<double> mine;
  mine.reserve(hi - lo);
  for (std::size_t t = lo; t < hi; ++t) {
    mine.push_back(m(r0 + t / n2, t % n2));
  }
  auto gathered = along.all_gather_v(mine);
  Matrix panel(nr, n2);
  for (int q = 0; q < parts; ++q) {
    const std::size_t qlo = dist::chunk_begin(flat, parts, q);
    PARSYRK_CHECK(gathered[q].size() == dist::chunk_size(flat, parts, q));
    flat_assign(panel.view(), qlo, gathered[q]);
  }
  return panel;
}

/// The 2D SUMMA-like body: rank (i, j) of an r×r grid gathers row panel i of
/// `a` and row panel j of `b`, then (if `compute` says so) multiplies them.
GridBlock gemm_2d_spmd(comm::Comm& grid, const ConstMatrixView& a,
                       const ConstMatrixView& b, std::uint64_t r,
                       bool lower_only) {
  PARSYRK_REQUIRE(static_cast<std::uint64_t>(grid.size()) == r * r,
                  "2D grid of ", r, "x", r, " needs ", r * r,
                  " ranks; communicator has ", grid.size());
  const int i = grid.rank() / static_cast<int>(r);
  const int j = grid.rank() % static_cast<int>(r);
  const std::size_t n1 = a.rows();
  PARSYRK_CHECK(b.rows() == n1 && b.cols() == a.cols());

  GridBlock out;
  out.row0 = dist::chunk_begin(n1, static_cast<int>(r), i);
  out.rows = dist::chunk_size(n1, static_cast<int>(r), i);
  out.col0 = dist::chunk_begin(n1, static_cast<int>(r), j);
  out.cols = dist::chunk_size(n1, static_cast<int>(r), j);

  comm::Comm row = grid.split(/*color=*/i, /*key=*/j);
  comm::Comm col = grid.split(/*color=*/j, /*key=*/i);

  grid.set_phase(kPhaseGatherA);
  Matrix ai = gather_panel(row, a, out.row0, out.rows);
  grid.set_phase(kPhaseGatherB);
  Matrix bj = gather_panel(col, b, out.col0, out.cols);

  out.block = Matrix(out.rows, out.cols);
  if (!lower_only || i >= j) {
    gemm_nt(ai.view(), bj.view(), out.block.view());
  }
  return out;
}

}  // namespace

Matrix gemm_1d(comm::World& world, const Matrix& a, const Matrix& b) {
  PARSYRK_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                  "gemm_1d computes A·Bᵀ for same-shape A and B");
  const std::size_t n1 = a.rows();
  const std::size_t n2 = a.cols();
  Matrix c_full(n1, n1);
  world.run([&](comm::Comm& comm) {
    const int p = comm.size();
    const int rk = comm.rank();
    const std::size_t c0 = dist::chunk_begin(n2, p, rk);
    const std::size_t cw = dist::chunk_size(n2, p, rk);
    Matrix cbar(n1, n1);
    if (cw > 0) {
      gemm_nt(a.view().block(0, c0, n1, cw), b.view().block(0, c0, n1, cw),
              cbar.view());
    }
    comm.set_phase(kPhaseReduceC);
    std::vector<std::size_t> sizes(p);
    for (int q = 0; q < p; ++q) sizes[q] = dist::chunk_size(n1 * n1, p, q);
    auto mine = comm.reduce_scatter(flat_copy(cbar.view()), sizes);
    std::size_t t = dist::chunk_begin(n1 * n1, p, rk);
    for (double v : mine) {
      c_full(t / n1, t % n1) = v;
      ++t;
    }
  });
  return c_full;
}

Matrix gemm_2d(comm::World& world, const Matrix& a, const Matrix& b,
               std::uint64_t grid_r) {
  PARSYRK_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                  "gemm_2d computes A·Bᵀ for same-shape A and B");
  Matrix c_full(a.rows(), a.rows());
  world.run([&](comm::Comm& comm) {
    GridBlock gb = gemm_2d_spmd(comm, a.view(), b.view(), grid_r,
                                /*lower_only=*/false);
    c_full.block(gb.row0, gb.col0, gb.rows, gb.cols).assign(gb.block.view());
  });
  return c_full;
}

Matrix gemm_3d(comm::World& world, const Matrix& a, const Matrix& b,
               std::uint64_t grid_r, std::uint64_t slices) {
  PARSYRK_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                  "gemm_3d computes A·Bᵀ for same-shape A and B");
  PARSYRK_REQUIRE(
      static_cast<std::uint64_t>(world.size()) == grid_r * grid_r * slices,
      "3D grid ", grid_r, "x", grid_r, "x", slices, " needs ",
      grid_r * grid_r * slices, " ranks; world has ", world.size());
  const std::size_t n2 = a.cols();
  Matrix c_full(a.rows(), a.rows());
  world.run([&](comm::Comm& comm) {
    const int grid_sz = static_cast<int>(grid_r * grid_r);
    const int s = comm.rank() / grid_sz;
    const int within = comm.rank() % grid_sz;
    comm::Comm slice = comm.split(/*color=*/s, /*key=*/within);
    const std::size_t k0 = dist::chunk_begin(n2, static_cast<int>(slices), s);
    const std::size_t kw = dist::chunk_size(n2, static_cast<int>(slices), s);
    auto a_slab = a.view().block(0, k0, a.rows(), kw);
    auto b_slab = b.view().block(0, k0, b.rows(), kw);
    GridBlock gb = gemm_2d_spmd(slice, a_slab, b_slab, grid_r,
                                /*lower_only=*/false);

    comm::Comm depth = comm.split(/*color=*/within, /*key=*/s);
    comm.set_phase(kPhaseReduceC);
    const std::size_t flat = gb.rows * gb.cols;
    std::vector<std::size_t> sizes(slices);
    for (std::uint64_t q = 0; q < slices; ++q) {
      sizes[q] = dist::chunk_size(flat, static_cast<int>(slices),
                                  static_cast<int>(q));
    }
    auto mine = depth.reduce_scatter(flat_copy(gb.block.view()), sizes);
    std::size_t t = dist::chunk_begin(flat, static_cast<int>(slices), s);
    for (double v : mine) {
      c_full(gb.row0 + t / gb.cols, gb.col0 + t % gb.cols) = v;
      ++t;
    }
  });
  return c_full;
}

Matrix symm_gemm_baseline(comm::World& world, const Matrix& s_lower,
                          const Matrix& b, std::uint64_t grid_r) {
  PARSYRK_REQUIRE(s_lower.rows() == s_lower.cols() &&
                      s_lower.rows() == b.rows(),
                  "SYMM shapes: S must be n x n and B n x m");
  PARSYRK_REQUIRE(
      static_cast<std::uint64_t>(world.size()) == grid_r * grid_r,
      "2D grid needs ", grid_r * grid_r, " ranks; world has ", world.size());
  const std::size_t n = s_lower.rows();
  const std::size_t m = b.cols();
  // Expand the symmetric input once (outside the measured run): the GEMM
  // stack sees a dense S.
  Matrix s(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      s(i, j) = s_lower(i, j);
      s(j, i) = s_lower(i, j);
    }
  }
  Matrix bt = transpose(b.view());  // m×n: gather_panel works on row panels
  Matrix c_full(n, m);
  world.run([&](comm::Comm& comm) {
    const int r = static_cast<int>(grid_r);
    const int gi = comm.rank() / r;
    const int gj = comm.rank() % r;
    comm::Comm row = comm.split(gi, gj);
    comm::Comm col = comm.split(gj, gi);
    // C block (rows i0.., cols j0..) = S(rows i0.., :) · B(:, cols j0..).
    const std::size_t i0 = dist::chunk_begin(n, r, gi);
    const std::size_t ni = dist::chunk_size(n, r, gi);
    const std::size_t j0 = dist::chunk_begin(m, r, gj);
    const std::size_t nj = dist::chunk_size(m, r, gj);
    comm.set_phase(kPhaseGatherA);
    Matrix si = gather_panel(row, s.view(), i0, ni);  // ni×n panel of S
    comm.set_phase(kPhaseGatherB);
    Matrix bj = gather_panel(col, bt.view(), j0, nj);  // nj×n panel of Bᵀ
    Matrix block(ni, nj);
    gemm_nt(si.view(), bj.view(), block.view());
    c_full.block(i0, j0, ni, nj).assign(block.view());
  });
  return c_full;
}

Matrix syr2k_gemm_baseline(comm::World& world, const Matrix& a,
                           const Matrix& b, std::uint64_t grid_r) {
  PARSYRK_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                  "SYR2K needs same-shape A and B");
  Matrix abt = gemm_2d(world, a, b, grid_r);
  Matrix bat = gemm_2d(world, b, a, grid_r);
  Matrix c(a.rows(), a.rows());
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j < c.cols(); ++j) {
      c(i, j) = abt(i, j) + bat(i, j);
    }
  }
  return c;
}

Matrix scalapack_syrk(comm::World& world, const Matrix& a,
                      std::uint64_t grid_r) {
  Matrix c_full(a.rows(), a.rows());
  world.run([&](comm::Comm& comm) {
    GridBlock gb = gemm_2d_spmd(comm, a.view(), a.view(), grid_r,
                                /*lower_only=*/true);
    const int i = comm.rank() / static_cast<int>(grid_r);
    const int j = comm.rank() % static_cast<int>(grid_r);
    if (i < j) return;  // upper block: skipped computation (the flop saving)
    for (std::size_t r = 0; r < gb.rows; ++r) {
      for (std::size_t cc = 0; cc < gb.cols; ++cc) {
        const std::size_t gi = gb.row0 + r;
        const std::size_t gj = gb.col0 + cc;
        if (gj > gi) continue;  // diagonal blocks: only the lower half
        c_full(gi, gj) = gb.block(r, cc);
        c_full(gj, gi) = gb.block(r, cc);
      }
    }
  });
  return c_full;
}

}  // namespace parsyrk::baseline
