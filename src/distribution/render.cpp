#include "distribution/render.hpp"

#include <sstream>

namespace parsyrk::dist {

namespace {
std::string pad(const std::string& s, std::size_t w) {
  return s + std::string(w > s.size() ? w - s.size() : 0, ' ');
}
}  // namespace

std::string render_c_ownership(const TriangleBlockDistribution& d) {
  const std::uint64_t nb = d.num_block_rows();
  const std::size_t w = std::to_string(d.num_procs() - 1).size() + 2;
  std::ostringstream os;
  os << "C block ownership (rows/cols are block indices 0.." << nb - 1
     << "; [k] marks a diagonal block owned by processor k):\n";
  for (std::uint64_t i = 0; i < nb; ++i) {
    os << pad(std::to_string(i), 4) << "|";
    for (std::uint64_t j = 0; j <= i; ++j) {
      if (j == i) {
        os << pad("[" + std::to_string(d.owner_diagonal(i)) + "]", w);
      } else {
        os << pad(" " + std::to_string(d.owner_off_diagonal(i, j)), w);
      }
    }
    os << "\n";
  }
  return os.str();
}

std::string render_a_ownership(const TriangleBlockDistribution& d) {
  const std::uint64_t nb = d.num_block_rows();
  std::ostringstream os;
  os << "A row blocks and their processor sets Q_i (each A_i is split evenly "
        "across its c+1 processors):\n";
  for (std::uint64_t i = 0; i < nb; ++i) {
    os << "  A_" << pad(std::to_string(i), 3) << " -> { ";
    for (std::uint64_t k : d.processor_set(i)) os << k << " ";
    os << "}\n";
  }
  return os.str();
}

std::string render_3d_layout(const TriangleBlockDistribution& d,
                             std::uint64_t p2) {
  std::ostringstream os;
  os << "3D layout with p1 = " << d.num_procs() << " (c = " << d.c()
     << "), p2 = " << p2 << ":\n\n";
  os << "Every slice l in 0.." << p2 - 1
     << " applies the same triangle-block distribution to its column block "
        "A_{*,l}:\n\n";
  os << render_c_ownership(d) << "\n";
  os << "A blocks A_{i,l} are owned by Q_i x {l}:\n";
  const std::uint64_t nb = d.num_block_rows();
  for (std::uint64_t i = 0; i < nb; ++i) {
    os << "  A_" << pad(std::to_string(i), 3) << " -> { ";
    for (std::uint64_t k : d.processor_set(i)) os << k << " ";
    os << "} x {0.." << p2 - 1 << "}\n";
  }
  os << "\nEach processor (k, l) holds 1/" << p2
     << " of triangle block C_k after the Reduce-Scatter over Pi_{k*}.\n";
  return os.str();
}

}  // namespace parsyrk::dist
