// Triangle-block distribution of a symmetric matrix (paper §5.2.1).
//
// For P = c(c+1) processors with c prime, the lower triangle of C is split
// into c² × c² square blocks; each processor is assigned c(c−1)/2
// off-diagonal blocks that form a *triangle block of blocks* — the strict
// lower triangle of R_k × R_k for a c-element row-block index set R_k — plus
// at most one diagonal block (D_k ⊂ R_k). The conformal distribution of A
// shares each row block A_i among the c+1 processors Q_i = {k : i ∈ R_k}.
//
// This implements the paper's cyclic (c,c)-indexing family, eqs. (4)–(8),
// and the validity checks behind the claim that every off-diagonal block is
// covered exactly once and every pair of processors shares at most one Q_i.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace parsyrk::dist {

class TriangleBlockDistribution {
 public:
  /// Requires prime c (the paper's sufficient validity condition).
  explicit TriangleBlockDistribution(std::uint64_t c);

  std::uint64_t c() const { return c_; }
  /// P = c(c+1).
  std::uint64_t num_procs() const { return c_ * (c_ + 1); }
  /// C is partitioned into this many block rows (c²).
  std::uint64_t num_block_rows() const { return c_ * c_; }

  /// Paper eq. (4): f_k(u) — the row index of the block assigned to
  /// processor k in the u-th zone of the first zone column.
  std::uint64_t f(std::uint64_t k, std::uint64_t u) const;

  /// Paper eq. (7): h_i(q) — the processor assigned block C_{i,q} in the
  /// first zone column.
  std::uint64_t h(std::uint64_t i, std::uint64_t q) const;

  /// Paper eq. (5): R_k, the c-element row-block index set of processor k,
  /// sorted ascending.
  const std::vector<std::uint64_t>& row_block_set(std::uint64_t k) const;

  /// Paper eq. (6): D_k — the index of processor k's diagonal block, if any.
  std::optional<std::uint64_t> diagonal_block(std::uint64_t k) const;

  /// Paper eq. (8): Q_i, the c+1 processors sharing row block A_i, sorted
  /// ascending.
  const std::vector<std::uint64_t>& processor_set(std::uint64_t i) const;

  /// Owner of off-diagonal block C_{ij} (requires i > j); the unique k with
  /// {i, j} ⊆ R_k.
  std::uint64_t owner_off_diagonal(std::uint64_t i, std::uint64_t j) const;

  /// Owner of diagonal block C_{ii}.
  std::uint64_t owner_diagonal(std::uint64_t i) const;

  /// Position of processor k within sorted Q_i (which even chunk of A_i it
  /// holds in the conformal distribution). k must be a member of Q_i.
  std::size_t chunk_index(std::uint64_t i, std::uint64_t k) const;

  /// Sorted list of (i, j) off-diagonal block pairs owned by k (i > j); the
  /// strict lower triangle of R_k × R_k, row-major order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> owned_pairs(
      std::uint64_t k) const;

  /// The unique row-block index shared by the R sets of processors k and k',
  /// or nullopt. (Validity guarantees at most one, so each pair of
  /// processors exchanges at most one chunk in the All-to-All.)
  std::optional<std::uint64_t> shared_block(std::uint64_t k,
                                            std::uint64_t k2) const;

  /// Full structural validation; returns false and a reason on failure.
  /// Checks: every R_k has c distinct indices; every off-diagonal block pair
  /// covered exactly once; D_k ⊂ R_k with every diagonal block assigned
  /// exactly once and |D_k| ≤ 1; Q_i consistency (k ∈ Q_i ⟺ i ∈ R_k,
  /// |Q_i| = c+1); no two processors share more than one Q_i.
  bool validate(std::string* why = nullptr) const;

 private:
  std::uint64_t c_;
  std::vector<std::vector<std::uint64_t>> r_sets_;   // k -> sorted R_k
  std::vector<std::optional<std::uint64_t>> d_sets_; // k -> D_k
  std::vector<std::vector<std::uint64_t>> q_sets_;   // i -> sorted Q_i
  std::vector<std::vector<std::uint64_t>> off_owner_;  // [i][j], j < i
  std::vector<std::uint64_t> diag_owner_;              // [i]
};

}  // namespace parsyrk::dist
