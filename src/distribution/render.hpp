// ASCII renderings of the paper's distribution figures (Fig. 2 and Fig. 3).
#pragma once

#include <string>

#include "distribution/triangle_block.hpp"

namespace parsyrk::dist {

/// Fig. 2: the lower triangle of C as a c²×c² grid of blocks, each cell
/// showing the owning processor rank. Diagonal cells are bracketed.
std::string render_c_ownership(const TriangleBlockDistribution& d);

/// Fig. 2 (right half): the c² row blocks of A, each annotated with its
/// processor set Q_i.
std::string render_a_ownership(const TriangleBlockDistribution& d);

/// Fig. 3: the 3D layout — C ownership shared across p2 slices, and A as a
/// c²×p2 grid of blocks with their Q_i×{ℓ} owners.
std::string render_3d_layout(const TriangleBlockDistribution& d,
                             std::uint64_t p2);

}  // namespace parsyrk::dist
