#include "distribution/triangle_block.hpp"

#include <algorithm>
#include <set>

#include "support/check.hpp"
#include "support/prime.hpp"

namespace parsyrk::dist {

namespace {
constexpr std::uint64_t kUnowned = ~std::uint64_t{0};

/// Mathematical mod for possibly-negative left operand.
std::uint64_t pos_mod(std::int64_t a, std::int64_t m) {
  std::int64_t r = a % m;
  if (r < 0) r += m;
  return static_cast<std::uint64_t>(r);
}
}  // namespace

TriangleBlockDistribution::TriangleBlockDistribution(std::uint64_t c) : c_(c) {
  PARSYRK_REQUIRE(is_prime(c), "triangle-block distribution requires prime c; "
                  "got c = ", c);
  const std::uint64_t p = num_procs();
  const std::uint64_t nb = num_block_rows();

  // R_k (eq. (5)).
  r_sets_.resize(p);
  for (std::uint64_t k = 0; k < p; ++k) {
    auto& r = r_sets_[k];
    if (k < c_ * c_) {
      r.push_back(k / c_);
      for (std::uint64_t u = 1; u < c_; ++u) r.push_back(f(k, u));
    } else {
      for (std::uint64_t u = 0; u < c_; ++u) r.push_back((k - c_ * c_) * c_ + u);
    }
    std::sort(r.begin(), r.end());
    PARSYRK_CHECK_MSG(std::adjacent_find(r.begin(), r.end()) == r.end(),
                      "R_", k, " has repeated indices");
  }

  // D_k (eq. (6)).
  d_sets_.resize(p);
  for (std::uint64_t k = 0; k < p; ++k) {
    if (k < c_) {
      d_sets_[k] = std::nullopt;
    } else if (k < c_ * c_ && k % c_ == 0) {
      d_sets_[k] = k / c_;
    } else if (k < c_ * c_) {
      d_sets_[k] = f(k, k / c_);
    } else {
      d_sets_[k] = f(c_ * (k - c_ * c_), k - c_ * c_);
    }
  }

  // Q_i (eq. (8)).
  q_sets_.resize(nb);
  for (std::uint64_t i = 0; i < nb; ++i) {
    auto& q = q_sets_[i];
    if (i < c_) {
      for (std::uint64_t qq = 0; qq < c_; ++qq) q.push_back(c_ * i + qq);
      q.push_back(c_ * c_);
    } else {
      for (std::uint64_t qq = 0; qq < c_; ++qq) q.push_back(h(i, qq));
      q.push_back(c_ * c_ + i / c_);
    }
    std::sort(q.begin(), q.end());
  }

  // Owner maps, with uniqueness checks (the "valid partition" property).
  off_owner_.resize(nb);
  for (std::uint64_t i = 0; i < nb; ++i) off_owner_[i].assign(i, kUnowned);
  diag_owner_.assign(nb, kUnowned);
  for (std::uint64_t k = 0; k < p; ++k) {
    const auto& r = r_sets_[k];
    for (std::size_t a = 0; a < r.size(); ++a) {
      for (std::size_t b = 0; b < a; ++b) {
        const std::uint64_t i = r[a], j = r[b];  // sorted, so i > j
        PARSYRK_CHECK_MSG(off_owner_[i][j] == kUnowned,
                          "block (", i, ",", j, ") covered twice: processors ",
                          off_owner_[i][j], " and ", k);
        off_owner_[i][j] = k;
      }
    }
    if (d_sets_[k]) {
      const std::uint64_t i = *d_sets_[k];
      PARSYRK_CHECK_MSG(diag_owner_[i] == kUnowned, "diagonal block ", i,
                        " assigned twice");
      diag_owner_[i] = k;
    }
  }
}

std::uint64_t TriangleBlockDistribution::f(std::uint64_t k,
                                           std::uint64_t u) const {
  // f_k(u) = (⌊k/c⌋·(u−1) + k) mod c + c·u, with the u = 0 case exercising
  // a negative left operand.
  const auto ci = static_cast<std::int64_t>(c_);
  const auto kz = static_cast<std::int64_t>(k / c_);
  const auto lhs = kz * (static_cast<std::int64_t>(u) - 1) +
                   static_cast<std::int64_t>(k);
  return pos_mod(lhs, ci) + c_ * u;
}

std::uint64_t TriangleBlockDistribution::h(std::uint64_t i,
                                           std::uint64_t q) const {
  // h_i(q) = (i − (⌊i/c⌋ − 1)·q) mod c + c·q.
  const auto ci = static_cast<std::int64_t>(c_);
  const auto iz = static_cast<std::int64_t>(i / c_);
  const auto lhs = static_cast<std::int64_t>(i) -
                   (iz - 1) * static_cast<std::int64_t>(q);
  return pos_mod(lhs, ci) + c_ * q;
}

const std::vector<std::uint64_t>& TriangleBlockDistribution::row_block_set(
    std::uint64_t k) const {
  PARSYRK_CHECK(k < num_procs());
  return r_sets_[k];
}

std::optional<std::uint64_t> TriangleBlockDistribution::diagonal_block(
    std::uint64_t k) const {
  PARSYRK_CHECK(k < num_procs());
  return d_sets_[k];
}

const std::vector<std::uint64_t>& TriangleBlockDistribution::processor_set(
    std::uint64_t i) const {
  PARSYRK_CHECK(i < num_block_rows());
  return q_sets_[i];
}

std::uint64_t TriangleBlockDistribution::owner_off_diagonal(
    std::uint64_t i, std::uint64_t j) const {
  PARSYRK_CHECK_MSG(j < i && i < num_block_rows(),
                    "off-diagonal block needs i > j; got (", i, ",", j, ")");
  const std::uint64_t k = off_owner_[i][j];
  PARSYRK_CHECK(k != kUnowned);
  return k;
}

std::uint64_t TriangleBlockDistribution::owner_diagonal(std::uint64_t i) const {
  PARSYRK_CHECK(i < num_block_rows());
  const std::uint64_t k = diag_owner_[i];
  PARSYRK_CHECK(k != kUnowned);
  return k;
}

std::size_t TriangleBlockDistribution::chunk_index(std::uint64_t i,
                                                   std::uint64_t k) const {
  const auto& q = processor_set(i);
  auto it = std::lower_bound(q.begin(), q.end(), k);
  PARSYRK_CHECK_MSG(it != q.end() && *it == k, "processor ", k,
                    " is not a member of Q_", i);
  return static_cast<std::size_t>(it - q.begin());
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
TriangleBlockDistribution::owned_pairs(std::uint64_t k) const {
  const auto& r = row_block_set(k);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;
  pairs.reserve(r.size() * (r.size() - 1) / 2);
  for (std::size_t a = 0; a < r.size(); ++a) {
    for (std::size_t b = 0; b < a; ++b) pairs.emplace_back(r[a], r[b]);
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

std::optional<std::uint64_t> TriangleBlockDistribution::shared_block(
    std::uint64_t k, std::uint64_t k2) const {
  const auto& r1 = row_block_set(k);
  const auto& r2 = row_block_set(k2);
  std::vector<std::uint64_t> common;
  std::set_intersection(r1.begin(), r1.end(), r2.begin(), r2.end(),
                        std::back_inserter(common));
  PARSYRK_CHECK_MSG(common.size() <= 1, "processors ", k, " and ", k2,
                    " share ", common.size(), " row blocks; distribution "
                    "validity is violated");
  if (common.empty()) return std::nullopt;
  return common[0];
}

bool TriangleBlockDistribution::validate(std::string* why) const {
  auto fail = [&](std::string msg) {
    if (why != nullptr) *why = std::move(msg);
    return false;
  };
  const std::uint64_t p = num_procs();
  const std::uint64_t nb = num_block_rows();

  for (std::uint64_t k = 0; k < p; ++k) {
    if (r_sets_[k].size() != c_) return fail(strcat_all("|R_", k, "| != c"));
    for (std::uint64_t i : r_sets_[k]) {
      if (i >= nb) return fail(strcat_all("R_", k, " holds out-of-range ", i));
    }
    if (d_sets_[k]) {
      const auto& r = r_sets_[k];
      if (!std::binary_search(r.begin(), r.end(), *d_sets_[k])) {
        return fail(strcat_all("D_", k, " not a subset of R_", k));
      }
    }
  }
  // Coverage of all off-diagonal and diagonal blocks (constructor enforces
  // "at most once"; here we confirm "at least once").
  for (std::uint64_t i = 0; i < nb; ++i) {
    if (diag_owner_[i] == kUnowned) {
      return fail(strcat_all("diagonal block ", i, " unassigned"));
    }
    for (std::uint64_t j = 0; j < i; ++j) {
      if (off_owner_[i][j] == kUnowned) {
        return fail(strcat_all("block (", i, ",", j, ") unassigned"));
      }
    }
  }
  // Q_i consistency with R_k.
  for (std::uint64_t i = 0; i < nb; ++i) {
    if (q_sets_[i].size() != c_ + 1) {
      return fail(strcat_all("|Q_", i, "| != c+1"));
    }
    for (std::uint64_t k : q_sets_[i]) {
      const auto& r = r_sets_[k];
      if (!std::binary_search(r.begin(), r.end(), i)) {
        return fail(strcat_all(k, " in Q_", i, " but ", i, " not in R_", k));
      }
    }
  }
  std::uint64_t total_q = 0;
  for (std::uint64_t k = 0; k < p; ++k) {
    std::uint64_t appearances = 0;
    for (std::uint64_t i = 0; i < nb; ++i) {
      appearances += std::binary_search(q_sets_[i].begin(), q_sets_[i].end(),
                                        k)
                         ? 1
                         : 0;
    }
    if (appearances != c_) {
      return fail(strcat_all("processor ", k, " appears in ", appearances,
                             " Q sets, expected c"));
    }
    total_q += appearances;
  }
  if (total_q != nb * (c_ + 1)) return fail("Q membership count mismatch");
  // No two processors share more than one Q_i (checked via R intersections).
  for (std::uint64_t k = 0; k < p; ++k) {
    for (std::uint64_t k2 = 0; k2 < k; ++k2) {
      const auto& r1 = r_sets_[k];
      const auto& r2 = r_sets_[k2];
      std::vector<std::uint64_t> common;
      std::set_intersection(r1.begin(), r1.end(), r2.begin(), r2.end(),
                            std::back_inserter(common));
      if (common.size() > 1) {
        return fail(strcat_all("processors ", k, " and ", k2, " share ",
                               common.size(), " row blocks"));
      }
    }
  }
  return true;
}

}  // namespace parsyrk::dist
