// Even 1D block partitioning with floor-based boundaries.
//
// chunk r of n items over p parts is [floor(n·r/p), floor(n·(r+1)/p)); sizes
// differ by at most one, which keeps the load-balance assumptions of
// Theorem 1 intact without divisibility requirements.
#pragma once

#include <cstdint>

namespace parsyrk::dist {

inline std::size_t chunk_begin(std::size_t n, int parts, int r) {
  return n * static_cast<std::size_t>(r) / static_cast<std::size_t>(parts);
}

inline std::size_t chunk_end(std::size_t n, int parts, int r) {
  return chunk_begin(n, parts, r + 1);
}

inline std::size_t chunk_size(std::size_t n, int parts, int r) {
  return chunk_end(n, parts, r) - chunk_begin(n, parts, r);
}

/// The part that owns item `idx` under the floor-based partition.
inline int chunk_owner(std::size_t n, int parts, std::size_t idx) {
  // owner r satisfies floor(n r / p) <= idx < floor(n (r+1) / p);
  // r = floor((idx * p + p - 1) / n) overshoots; search locally instead.
  int r = static_cast<int>((idx * static_cast<std::size_t>(parts)) / n);
  while (chunk_begin(n, parts, r) > idx) --r;
  while (chunk_end(n, parts, r) <= idx) ++r;
  return r;
}

}  // namespace parsyrk::dist
