// 2D block-cyclic distribution (the ScaLAPACK/Elemental layout).
//
// The matrix is tiled with mb×nb blocks; block (bi, bj) lives on process
// grid coordinate (bi mod pr, bj mod pc). This is the layout the paper's
// library comparators use: it balances triangular *work* well (blocks of
// the lower triangle spread evenly across the grid as the matrix grows) but
// cannot reduce the *communication* below GEMM levels — the contrast with
// the triangle-block distribution measured in E19.
#pragma once

#include <cstdint>
#include <utility>

#include "support/check.hpp"

namespace parsyrk::dist {

class BlockCyclic2D {
 public:
  BlockCyclic2D(std::size_t rows, std::size_t cols, std::size_t block_rows,
                std::size_t block_cols, int grid_rows, int grid_cols)
      : rows_(rows),
        cols_(cols),
        mb_(block_rows),
        nb_(block_cols),
        pr_(grid_rows),
        pc_(grid_cols) {
    PARSYRK_REQUIRE(block_rows > 0 && block_cols > 0,
                    "block dimensions must be positive");
    PARSYRK_REQUIRE(grid_rows > 0 && grid_cols > 0,
                    "grid dimensions must be positive");
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t block_rows() const { return mb_; }
  std::size_t block_cols() const { return nb_; }
  int grid_rows() const { return pr_; }
  int grid_cols() const { return pc_; }
  int num_procs() const { return pr_ * pc_; }

  std::size_t num_block_rows() const { return (rows_ + mb_ - 1) / mb_; }
  std::size_t num_block_cols() const { return (cols_ + nb_ - 1) / nb_; }

  /// Grid coordinates owning element (i, j).
  std::pair<int, int> owner_coords(std::size_t i, std::size_t j) const {
    PARSYRK_CHECK(i < rows_ && j < cols_);
    return {static_cast<int>((i / mb_) % pr_),
            static_cast<int>((j / nb_) % pc_)};
  }

  /// Row-major rank of the owner of element (i, j).
  int owner_rank(std::size_t i, std::size_t j) const {
    const auto [p, q] = owner_coords(i, j);
    return p * pc_ + q;
  }

  /// Local storage dimensions on grid row p / grid column q.
  std::size_t local_rows(int p) const {
    return count_local(rows_, mb_, pr_, p);
  }
  std::size_t local_cols(int q) const {
    return count_local(cols_, nb_, pc_, q);
  }

  /// Local (li, lj) of global (i, j) on its owner.
  std::pair<std::size_t, std::size_t> global_to_local(std::size_t i,
                                                      std::size_t j) const {
    PARSYRK_CHECK(i < rows_ && j < cols_);
    const std::size_t li = (i / (mb_ * pr_)) * mb_ + i % mb_;
    const std::size_t lj = (j / (nb_ * pc_)) * nb_ + j % nb_;
    return {li, lj};
  }

  /// Global (i, j) of local (li, lj) on grid coordinate (p, q).
  std::pair<std::size_t, std::size_t> local_to_global(int p, int q,
                                                      std::size_t li,
                                                      std::size_t lj) const {
    const std::size_t i = (li / mb_) * (mb_ * pr_) + p * mb_ + li % mb_;
    const std::size_t j = (lj / nb_) * (nb_ * pc_) + q * nb_ + lj % nb_;
    PARSYRK_CHECK(i < rows_ && j < cols_);
    return {i, j};
  }

 private:
  static std::size_t count_local(std::size_t n, std::size_t b, int p,
                                 int me) {
    // Elements i in [0, n) whose block index (i/b) is congruent to me mod p;
    // the final block may be ragged.
    std::size_t count = 0;
    const std::size_t nblocks = (n + b - 1) / b;
    for (std::size_t blk = me; blk < nblocks;
         blk += static_cast<std::size_t>(p)) {
      count += std::min(b, n - blk * b);
    }
    return count;
  }

  std::size_t rows_, cols_, mb_, nb_;
  int pr_, pc_;
};

}  // namespace parsyrk::dist
