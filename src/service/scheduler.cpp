#include "service/scheduler.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace parsyrk::service {

RoundPlan plan_round(const std::vector<JobSpec>& queue, int world_size,
                     const AdmissionLimits& limits) {
  PARSYRK_REQUIRE(!queue.empty(), "plan_round needs a non-empty queue");
  PARSYRK_REQUIRE(world_size >= 1, "plan_round needs a world");
  RoundPlan round;
  const std::size_t max_jobs = std::max<std::size_t>(
      std::size_t{1}, limits.max_jobs_per_round);

  // The head is always admitted: admission bounds what rides along, it
  // never blocks the front of the queue (that would starve, not protect).
  std::uint64_t base = 0;
  round.placements.push_back({0, 0});
  round.modeled_sum_seconds = queue[0].modeled_seconds;
  round.modeled_max_seconds = queue[0].modeled_seconds;
  if (queue[0].solo) return round;
  base = queue[0].ranks;

  // FIFO prefix: stop at the first job that does not fit — by rank budget,
  // job-count cap, modeled-cost budget, or because it must run solo.
  // Skipping it to pack a later job would reorder completions.
  for (std::size_t j = 1; j < queue.size(); ++j) {
    const JobSpec& job = queue[j];
    if (round.placements.size() >= max_jobs) break;
    if (job.solo) break;
    if (base + job.ranks > static_cast<std::uint64_t>(world_size)) break;
    if (round.modeled_sum_seconds + job.modeled_seconds >
        limits.modeled_seconds_per_round) {
      break;
    }
    round.placements.push_back({j, static_cast<int>(base)});
    base += job.ranks;
    round.modeled_sum_seconds += job.modeled_seconds;
    round.modeled_max_seconds =
        std::max(round.modeled_max_seconds, job.modeled_seconds);
  }
  return round;
}

}  // namespace parsyrk::service
