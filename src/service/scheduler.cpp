#include "service/scheduler.hpp"

#include <algorithm>
#include <limits>

#include "support/check.hpp"

namespace parsyrk::service {

RoundPlan plan_round(const std::vector<JobSpec>& queue, int world_size,
                     const AdmissionLimits& limits) {
  PARSYRK_REQUIRE(!queue.empty(), "plan_round needs a non-empty queue");
  PARSYRK_REQUIRE(world_size >= 1, "plan_round needs a world");
  RoundPlan round;
  const std::size_t max_jobs = std::max<std::size_t>(
      std::size_t{1}, limits.max_jobs_per_round);

  // The head is always admitted: admission bounds what rides along, it
  // never blocks the front of the queue (that would starve, not protect).
  std::uint64_t base = 0;
  round.placements.push_back({0, 0});
  round.modeled_sum_seconds = queue[0].modeled_seconds;
  round.modeled_max_seconds = queue[0].modeled_seconds;
  if (queue[0].solo) return round;
  base = queue[0].ranks;

  // Follower budget accounting: an oversized head (cost alone above the
  // budget) runs on its own terms and stops consuming follower budget —
  // otherwise it would also block tiny followers that fit on the leftover
  // ranks, starving exactly the jobs a straggler round should carry along.
  double budget_used =
      queue[0].modeled_seconds > limits.modeled_seconds_per_round
          ? 0.0
          : queue[0].modeled_seconds;

  // FIFO prefix: stop at the first job that does not fit — by rank budget,
  // job-count cap, modeled-cost budget, or because it must run solo.
  // Skipping it to pack a later job would reorder completions.
  for (std::size_t j = 1; j < queue.size(); ++j) {
    const JobSpec& job = queue[j];
    if (round.placements.size() >= max_jobs) break;
    if (job.solo) break;
    if (base + job.ranks > static_cast<std::uint64_t>(world_size)) break;
    if (budget_used + job.modeled_seconds >
        limits.modeled_seconds_per_round) {
      break;
    }
    round.placements.push_back({j, static_cast<int>(base)});
    base += job.ranks;
    budget_used += job.modeled_seconds;
    round.modeled_sum_seconds += job.modeled_seconds;
    round.modeled_max_seconds =
        std::max(round.modeled_max_seconds, job.modeled_seconds);
  }
  return round;
}

std::vector<Placement> plan_stream_step(const std::vector<JobSpec>& queue,
                                        const std::vector<RankInterval>& free,
                                        double inflight_modeled_seconds,
                                        std::size_t inflight_jobs,
                                        const AdmissionLimits& limits) {
  const std::size_t max_jobs =
      std::max<std::size_t>(std::size_t{1}, limits.max_jobs_per_round);
  std::vector<Placement> placed;
  std::vector<RankInterval> holes = free;
  double budget_used = inflight_modeled_seconds;
  for (std::size_t j = 0; j < queue.size(); ++j) {
    const JobSpec& job = queue[j];
    // Solo jobs need a quiesced world; the caller drains the stream and
    // runs them alone. FIFO: nothing behind them dispatches either.
    if (job.solo) break;
    if (inflight_jobs + placed.size() >= max_jobs) break;
    // The no-starvation rule carries over from plan_round: with an idle
    // world the head always dispatches, and when its cost alone exceeds
    // the budget it does not consume follower budget either.
    const bool head_exempt = inflight_jobs == 0 && placed.empty();
    if (!head_exempt && budget_used + job.modeled_seconds >
                            limits.modeled_seconds_per_round) {
      break;
    }
    // First-fit leftmost within the free intervals. A job that fits
    // nowhere right now ends the step — dispatching a later job over it
    // would reorder completions arbitrarily far.
    std::size_t hole = holes.size();
    for (std::size_t h = 0; h < holes.size(); ++h) {
      if (static_cast<std::uint64_t>(holes[h].extent) >= job.ranks) {
        hole = h;
        break;
      }
    }
    if (hole == holes.size()) break;
    placed.push_back({j, holes[hole].base});
    holes[hole].base += static_cast<int>(job.ranks);
    holes[hole].extent -= static_cast<int>(job.ranks);
    if (!(head_exempt &&
          job.modeled_seconds > limits.modeled_seconds_per_round)) {
      budget_used += job.modeled_seconds;
    }
  }
  return placed;
}

double streaming_makespan(const std::vector<JobSpec>& queue, int world_size) {
  PARSYRK_REQUIRE(world_size >= 1, "streaming_makespan needs a world");
  std::vector<double> busy(static_cast<std::size_t>(world_size), 0.0);
  // FIFO dispatch: job j+1 cannot start before job j did (the scheduler
  // never overtakes), so each start is clamped to the previous one.
  double prev_start = 0.0;
  for (const JobSpec& job : queue) {
    PARSYRK_REQUIRE(job.ranks >= 1 &&
                        job.ranks <= static_cast<std::uint64_t>(world_size),
                    "job needs ", job.ranks, " ranks on a world of ",
                    world_size);
    const int p = static_cast<int>(job.ranks);
    if (job.solo) {
      // Solo jobs quiesce the stream: they start when every rank drained
      // and hold the whole world while they run.
      double start = prev_start;
      for (double b : busy) start = std::max(start, b);
      std::fill(busy.begin(), busy.end(), start + job.modeled_seconds);
      prev_start = start;
      continue;
    }
    // The job dispatches onto the contiguous window that frees earliest
    // (leftmost on ties) — the list-scheduling placement the streaming
    // executor converges to.
    int best_base = 0;
    double best_start = std::numeric_limits<double>::infinity();
    for (int base = 0; base + p <= world_size; ++base) {
      double start = 0.0;
      for (int r = base; r < base + p; ++r) {
        start = std::max(start, busy[static_cast<std::size_t>(r)]);
      }
      if (start < best_start) {
        best_start = start;
        best_base = base;
      }
    }
    const double start = std::max(best_start, prev_start);
    for (int r = best_base; r < best_base + p; ++r) {
      busy[static_cast<std::size_t>(r)] = start + job.modeled_seconds;
    }
    prev_start = start;
  }
  double makespan = 0.0;
  for (double b : busy) makespan = std::max(makespan, b);
  return makespan;
}

}  // namespace parsyrk::service
