// Shape-keyed plan cache: the service layer's front end to the PR 3 plan
// enumerator.
//
// Every planner-path request costs one enumerate_syrk_plans() — a sweep of
// the whole (c, p2) candidate lattice. A service replaying a mixed workload
// sees the same few shapes over and over, so the cache keys the full
// PlanReport by (n1, n2, max_procs, search options) and hands out shared
// ownership of the immutable report; repeated shapes skip the enumerator
// entirely (the hit/miss counters in Stats make that measurable —
// misses == enumerator runs).
//
// Correctness guard: a report's fold factors and idle-rank accounting are
// only valid for the physical worker count the search ran against. The
// cache is therefore bound to a worker count (bind_worker_count); rebinding
// to a different count drops every entry, so a resized service can never
// serve a stale folded plan. Stats::invalidations counts those drops.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "core/planner.hpp"

namespace parsyrk::service {

/// Thread-safe lookup-or-enumerate cache of PlanReports. One per
/// SyrkService; usable standalone wherever repeated plan searches hurt.
class PlanCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    /// Misses == times the enumerator actually ran.
    std::uint64_t misses = 0;
    /// Times rebinding the worker count dropped the cached entries.
    std::uint64_t invalidations = 0;
    std::uint64_t entries = 0;
  };

  /// Returns the cached report for this exact search, running
  /// enumerate_syrk_plans on a miss. The returned report is immutable and
  /// shared; it stays valid after invalidation for holders that already
  /// have it.
  std::shared_ptr<const core::PlanReport> resolve(
      std::uint64_t n1, std::uint64_t n2, std::uint64_t max_procs,
      const core::PlanSearchOptions& options);

  /// Drops every entry (counters keep accumulating).
  void invalidate();

  /// Binds the cache to the physical worker count its consumers run on.
  /// Rebinding to a different count invalidates all entries — cached fold
  /// factors are a hazard across a resize. The first bind sets the count
  /// without invalidating.
  void bind_worker_count(int procs);

  Stats stats() const;

 private:
  // Every plan-affecting search knob participates here; a knob left out
  // would let one option set serve another's cached plan. Plan-neutral
  // request options (pipeline_chunks, reduce/exchange kinds, root) are
  // deliberately absent — they shape execution, never the chosen plan.
  struct Key {
    std::uint64_t n1;
    std::uint64_t n2;
    std::uint64_t max_procs;
    bool n1_divisibility;
    bool allow_padding;
    bool allow_folding;
    std::uint64_t max_fold;
    double utilization_slack;
    double alpha;
    double beta;
    double gamma;
    // Topology changes both the pricing and the strategy pick; the intra
    // tier's coefficients change which realization wins.
    int ranks_per_node;
    double alpha_intra;
    double beta_intra;

    bool operator<(const Key& o) const;
  };

  mutable std::mutex mu_;
  std::map<Key, std::shared_ptr<const core::PlanReport>> entries_;
  int bound_procs_ = 0;  // 0 = not yet bound
  Stats stats_;
};

}  // namespace parsyrk::service
