#include "service/plan_cache.hpp"

#include <tuple>
#include <utility>

namespace parsyrk::service {

bool PlanCache::Key::operator<(const Key& o) const {
  return std::tie(n1, n2, max_procs, n1_divisibility, allow_padding,
                  allow_folding, max_fold, utilization_slack, alpha, beta,
                  gamma, ranks_per_node, alpha_intra, beta_intra) <
         std::tie(o.n1, o.n2, o.max_procs, o.n1_divisibility, o.allow_padding,
                  o.allow_folding, o.max_fold, o.utilization_slack, o.alpha,
                  o.beta, o.gamma, o.ranks_per_node, o.alpha_intra,
                  o.beta_intra);
}

std::shared_ptr<const core::PlanReport> PlanCache::resolve(
    std::uint64_t n1, std::uint64_t n2, std::uint64_t max_procs,
    const core::PlanSearchOptions& options) {
  const Key key{n1,
                n2,
                max_procs,
                options.n1_divisibility,
                options.allow_padding,
                options.allow_folding,
                options.max_fold,
                options.utilization_slack,
                options.machine.alpha,
                options.machine.beta,
                options.machine.gamma,
                options.ranks_per_node,
                options.machine.alpha_intra,
                options.machine.beta_intra};
  {
    std::lock_guard lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      return it->second;
    }
  }
  // Enumerate outside the lock: a miss is the expensive path, and holding
  // the lock across it would serialize unrelated lookups behind the search.
  auto report = std::make_shared<const core::PlanReport>(
      core::enumerate_syrk_plans(n1, n2, max_procs, options));
  std::lock_guard lock(mu_);
  ++stats_.misses;
  auto [it, inserted] = entries_.emplace(key, std::move(report));
  stats_.entries = entries_.size();
  return it->second;  // a racing miss kept the first insert; share it
}

void PlanCache::invalidate() {
  std::lock_guard lock(mu_);
  entries_.clear();
  stats_.entries = 0;
}

void PlanCache::bind_worker_count(int procs) {
  std::lock_guard lock(mu_);
  if (bound_procs_ != 0 && bound_procs_ != procs) {
    entries_.clear();
    stats_.entries = 0;
    ++stats_.invalidations;
  }
  bound_procs_ = procs;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace parsyrk::service
