// High-throughput SYRK service: an asynchronous, batching front end over
// core::Session.
//
//   service::SyrkService svc({.procs = 12});
//   auto t1 = svc.submit(core::SyrkRequest(a).on_procs(3));
//   auto t2 = svc.submit(core::SyrkRequest(b).on_procs(6).with_trace());
//   const SyrkResult& r1 = t1.wait();          // blocks until executed
//
// Three cooperating pieces (docs/SERVICE.md has the full architecture):
//
//   - a PlanCache installed as the session's plan resolver, so repeated
//     shapes skip the PR 3 enumerator (hit/miss counters in stats());
//   - a batch scheduler (scheduler.hpp) that packs queued small/medium
//     requests onto disjoint rank subsets and runs them as ONE world job —
//     a single dispatch handoff to the parked worker pool amortized over
//     the whole round — while folded/full-size jobs run solo;
//   - admission control bounding the modeled αβγ cost in flight per round,
//     so a huge request cannot starve the small ones queued behind it.
//
// Every accounting guarantee of the solo path survives batching: a job
// packed at any base rank produces bitwise-identical result matrices,
// per-job ledger summaries (rank-range-restricted snapshot diffs), and
// per-job traces (rank-range extraction with rebasing) to the same request
// run solo on an equally sized session. test_service pins this down.
//
// Blocking use is submit+wait — SyrkService::syrk(req) is exactly that, and
// core::syrk(session, req) remains the single underlying execution path
// (the service's solo rounds call it directly; batched rounds share its
// rank-level internals).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "core/session.hpp"
#include "service/plan_cache.hpp"
#include "service/scheduler.hpp"
#include "trace/audit.hpp"
#include "trace/timeline.hpp"

namespace parsyrk::service {

enum class TicketStatus {
  kQueued,   // submitted, not yet dispatched into a round
  kRunning,  // executing in the current round
  kDone,     // result available
  kFailed,   // wait()/try_get() rethrow the error
};

const char* ticket_status_name(TicketStatus s);

/// Wall-clock latency decomposition of one request, plus its modeled cost.
struct RequestLatency {
  double queue_seconds = 0.0;    // submit -> round dispatch
  double service_seconds = 0.0;  // round dispatch -> completion
  double total_seconds = 0.0;    // submit -> completion
  /// Planner-modeled runtime of the executed plan (admission currency).
  double modeled_seconds = 0.0;
};

/// What a ticket resolves to.
struct SyrkResult {
  core::SyrkRun run;
  /// Theorem-1 bound audit, present when the request asked with_audit().
  std::optional<trace::AuditReport> audit;
  RequestLatency latency;
  /// Whether the job shared its round with others (solo otherwise).
  bool batched = false;
  /// First world rank of the job's subset within its round (0 for solo).
  int base_rank = 0;
  /// 1-based completion sequence number across the service's lifetime;
  /// FIFO fairness means these come out in submission order.
  std::uint64_t completion_seq = 0;
};

namespace detail {
struct TicketState;
}  // namespace detail

/// Future-like handle to a submitted request. Cheap to copy; all copies
/// observe the same state.
class SyrkTicket {
 public:
  SyrkTicket() = default;

  bool valid() const { return state_ != nullptr; }
  TicketStatus status() const;

  /// Blocks until the request completes; returns the result or rethrows
  /// the request's failure. Idempotent.
  const SyrkResult& wait();

  /// Non-blocking: the result if done, nullptr while queued/running.
  /// Rethrows if the request failed.
  const SyrkResult* try_get();

 private:
  friend class SyrkService;
  explicit SyrkTicket(std::shared_ptr<detail::TicketState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::TicketState> state_;
};

struct ServiceOptions {
  /// Worker (world) size of the service's session. Required.
  int procs = 0;
  /// When false, every job runs solo (the serialized baseline the
  /// throughput bench compares against). Forces SchedMode::kRounds.
  bool batching = true;
  /// How the queue executes: barrier-synchronized plan_round batches, or
  /// the continuous streaming scheduler that dispatches the next FIFO job
  /// the moment a rank subset drains. Streaming is the default — it is
  /// work-conserving and keeps every per-job accounting guarantee — but
  /// completion order is no longer globally FIFO (a short job placed after
  /// a straggler may finish first; dispatch order stays FIFO).
  SchedMode scheduler = SchedMode::kStreaming;
  AdmissionLimits admission;
  /// Plan-search options for planner-path requests (and the cache key).
  /// Services that want maximal packing typically disable folding — folded
  /// plans cannot share a round.
  core::PlanSearchOptions plan_options;
  /// Worker pool to lease from (nullptr = the process-shared pool).
  comm::WorkerPool* pool = nullptr;
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rounds = 0;          // world jobs dispatched
  std::uint64_t batched_rounds = 0;  // rounds carrying >= 2 jobs
  std::uint64_t batched_jobs = 0;
  std::uint64_t solo_jobs = 0;
  /// Jobs rerun solo after a batch-mate poisoned their round.
  std::uint64_t retried_jobs = 0;
  /// Jobs executed with pipelined chunked collectives (with_pipeline).
  std::uint64_t pipelined_jobs = 0;
  /// Streamed jobs dispatched while at least one other job was mid-flight
  /// (the mid-round interleaving the round-barrier executor could not do).
  std::uint64_t interleaved_jobs = 0;
  /// Work-conservation gap: summed idle rank-seconds between a rank
  /// becoming free (or the dispatched job being submitted, whichever is
  /// later) and its next streamed dispatch. Zero in rounds mode; small
  /// values mean the streaming scheduler is keeping freed ranks fed.
  double scheduler_gap_seconds = 0.0;
  double total_queue_seconds = 0.0;
  double total_service_seconds = 0.0;
  PlanCache::Stats plan_cache;
};

/// The concurrent SYRK front end. submit() is thread-safe; one internal
/// scheduler thread owns the session and executes rounds FIFO.
class SyrkService {
 public:
  explicit SyrkService(ServiceOptions options);
  /// Drains the queue (pending requests still execute), then stops.
  ~SyrkService();

  SyrkService(const SyrkService&) = delete;
  SyrkService& operator=(const SyrkService&) = delete;

  /// Enqueues one request and returns immediately. The request's matrix is
  /// referenced, not copied — it must stay alive until the ticket
  /// completes. Invalid requests (oversized plan, bad root, impossible
  /// memory limit) fail at execution: the error surfaces at wait().
  SyrkTicket submit(core::SyrkRequest request);

  /// Blocking call: submit + wait. The service-side spelling of
  /// core::syrk(session, request).
  SyrkResult syrk(core::SyrkRequest request);

  /// Blocks until every submitted request has completed or failed.
  void drain();

  /// Drains, then re-points the service at a session of `procs` workers.
  /// Cached plans are invalidated (PlanCache::bind_worker_count): fold
  /// factors enumerated for the old worker count are stale at the new one.
  void resize(int procs);

  int procs() const;
  ServiceStats stats() const;
  /// Per-rank busy/idle lanes of every dispatched job (wall-clock seconds
  /// since service construction). Copied out under the service lock.
  trace::ServiceTimeline timeline() const;
  PlanCache& plan_cache() { return cache_; }

  /// The underlying session. Only safe to touch when the queue is drained
  /// (the scheduler thread owns it while requests are in flight).
  core::Session& session() { return *session_; }

 private:
  struct BatchJob;
  struct StreamJob;

  void scheduler_loop();
  /// PR 6 executor: barrier-synchronized plan_round batches.
  void rounds_loop(std::unique_lock<std::mutex>& lock);
  /// Continuous executor: dispatches FIFO jobs onto freed rank subsets via
  /// World::launch_ranks, reaping completions as they land.
  void streaming_loop(std::unique_lock<std::mutex>& lock);
  /// Finalizes one cleanly-completed streamed job: rank-range ledger
  /// summaries, range trace drain + extraction, result truncation, finish().
  /// Runs on the scheduler thread without holding mu_.
  void finalize_stream_job(StreamJob& job);
  /// Resolves the ticket's plan/modeled cost against the current session.
  /// Returns false (ticket failed) when the request is invalid.
  bool admit(detail::TicketState& st);
  void execute_round(std::vector<std::shared_ptr<detail::TicketState>> batch,
                     const RoundPlan& round);
  void run_solo(const std::shared_ptr<detail::TicketState>& st, bool retry);
  void run_batched(
      const std::vector<std::shared_ptr<detail::TicketState>>& batch,
      const RoundPlan& round);
  void finish(const std::shared_ptr<detail::TicketState>& st,
              core::SyrkRun run, bool batched, int base_rank);
  void fail(const std::shared_ptr<detail::TicketState>& st,
            std::exception_ptr error);
  void install_cache_resolver();

  ServiceOptions options_;
  comm::WorkerPool* pool_;
  std::unique_ptr<core::Session> session_;
  PlanCache cache_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // scheduler wakeup
  std::condition_variable idle_cv_;  // drain() wakeup
  std::deque<std::shared_ptr<detail::TicketState>> queue_;
  bool round_in_flight_ = false;
  bool stop_ = false;
  ServiceStats stats_;
  std::uint64_t completion_seq_ = 0;
  /// Streamed jobs whose last rank returned, awaiting the scheduler
  /// thread's reap (raw pointers into streaming_loop's in-flight set; only
  /// the scheduler thread dereferences them).
  std::vector<StreamJob*> stream_completed_;
  trace::ServiceTimeline timeline_;
  std::chrono::steady_clock::time_point epoch_;

  std::thread scheduler_;  // last member: joins before the rest tears down
};

}  // namespace parsyrk::service
