// Batched-round scheduling: FIFO prefix packing of queued SYRK jobs onto
// disjoint rank subsets of one world, sdpb-style.
//
// sdpb precomputes a Blas_Job_Schedule that maps many block SYRKs onto the
// available ranks instead of serializing whole-pool runs; plan_round is the
// analogous step here. Given the FIFO queue of admitted jobs — each already
// priced by the planner's modeled αβγ cost — it packs the longest prefix of
// the queue that fits side by side into the world:
//
//   - placement is contiguous: job k occupies ranks [base_k, base_k + P_k)
//     with bases assigned left to right, so every job sees the same
//     rank-relative structure it would see running solo;
//   - strictly FIFO: packing stops at the first job that does not fit (no
//     skipping ahead), which is what makes completion order match
//     submission order — the fairness property test_service pins down;
//   - admission-bounded: the summed modeled seconds of a round may not
//     exceed the per-round budget, so one huge request cannot ride along
//     and starve the queue behind it — except that the queue head is always
//     admitted (alone if need be), so nothing starves forever;
//   - solo jobs (folded plans, whose accounting needs a dedicated world)
//     are never packed with others.
//
// plan_round is pure (no service state, no clocks) so the packing policy is
// unit-testable without running a single job.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace parsyrk::service {

/// Per-round admission limits. Defaults are sized for small/medium jobs on
/// the modeled machine (alpha = 1us): a round of ~50ms modeled work packs
/// dozens of small SYRKs but only a couple of medium ones.
struct AdmissionLimits {
  /// Summed modeled seconds a round may carry (queue head exempt).
  double modeled_seconds_per_round = 0.05;
  /// Cap on jobs per round regardless of modeled cost.
  std::size_t max_jobs_per_round = 16;
};

/// One queued job as the packer sees it.
struct JobSpec {
  /// World ranks the job's plan occupies (plan.logical_ranks()).
  std::uint64_t ranks = 0;
  /// Planner-modeled runtime (core::plan_modeled_seconds).
  double modeled_seconds = 0.0;
  /// Must run alone on the session (folded plans).
  bool solo = false;
};

/// One job's slot in a round: queue index and first world rank.
struct Placement {
  std::size_t job = 0;  // index into the queue plan_round was given
  int base_rank = 0;
};

/// The schedule for one world job. Placements are in queue (FIFO) order and
/// always form a prefix of the queue.
struct RoundPlan {
  std::vector<Placement> placements;
  /// Summed modeled seconds of the placed jobs (the admission currency).
  double modeled_sum_seconds = 0.0;
  /// Max modeled seconds over placed jobs — the round's modeled makespan
  /// (placed jobs run concurrently on disjoint ranks).
  double modeled_max_seconds = 0.0;
};

/// Packs the longest admissible FIFO prefix of `queue` into a world of
/// `world_size` ranks. `queue` must be non-empty; the head is always placed.
/// The head is exempt from the cost budget; when its cost alone exceeds the
/// budget it also stops consuming follower budget, so tiny followers still
/// pack onto the leftover ranks behind an oversized head.
RoundPlan plan_round(const std::vector<JobSpec>& queue, int world_size,
                     const AdmissionLimits& limits);

// ---- Streaming (work-conserving) mode ----
//
// The streaming scheduler keeps plan_round's pure admission policy but
// drops the round barrier: whenever a job's rank subset drains, the next
// admissible FIFO jobs are dispatched onto the freed ranks immediately.
// plan_stream_step is the per-wakeup decision — which queue prefix to
// launch onto the currently free rank intervals — and streaming_makespan
// is the matching cost model: a list-scheduling bound (max over per-rank
// busy time) instead of plan_round's max-over-round-members.

/// How the service executes its queue.
enum class SchedMode {
  kRounds,     ///< barrier-synchronized plan_round batches (PR 6 semantics)
  kStreaming,  ///< continuous dispatch onto freed ranks (work-conserving)
};

/// One maximal run of currently-free consecutive world ranks.
struct RankInterval {
  int base = 0;
  int extent = 0;
};

/// Picks the FIFO prefix of `queue` to dispatch right now onto the free
/// intervals. Strictly FIFO (stops at the first job that does not fit — a
/// later job never overtakes), first-fit leftmost within the free
/// intervals, admission-bounded: in-flight modeled seconds plus the newly
/// placed sum may not exceed the budget, and in-flight plus placed jobs may
/// not exceed the job cap. When nothing is in flight the queue head is
/// exempt from the cost budget (plan_round's no-starvation rule), and an
/// oversized head does not consume follower budget. Solo jobs are never
/// placed (the caller quiesces the stream and runs them alone). Placement
/// base ranks refer to world ranks; `job` indexes into `queue`.
std::vector<Placement> plan_stream_step(const std::vector<JobSpec>& queue,
                                        const std::vector<RankInterval>& free,
                                        double inflight_modeled_seconds,
                                        std::size_t inflight_jobs,
                                        const AdmissionLimits& limits);

/// List-scheduling makespan bound of running `queue` FIFO through the
/// streaming scheduler on `world_size` ranks: jobs start in order, each on
/// the contiguous window that frees earliest (leftmost on ties), solo jobs
/// quiesce the world. Returns the max per-rank busy time — the modeled
/// quantity the service prices streamed admission against, and the number
/// the straggler-mix bench compares to plan_round's barrier makespan.
double streaming_makespan(const std::vector<JobSpec>& queue, int world_size);

}  // namespace parsyrk::service
