// Batched-round scheduling: FIFO prefix packing of queued SYRK jobs onto
// disjoint rank subsets of one world, sdpb-style.
//
// sdpb precomputes a Blas_Job_Schedule that maps many block SYRKs onto the
// available ranks instead of serializing whole-pool runs; plan_round is the
// analogous step here. Given the FIFO queue of admitted jobs — each already
// priced by the planner's modeled αβγ cost — it packs the longest prefix of
// the queue that fits side by side into the world:
//
//   - placement is contiguous: job k occupies ranks [base_k, base_k + P_k)
//     with bases assigned left to right, so every job sees the same
//     rank-relative structure it would see running solo;
//   - strictly FIFO: packing stops at the first job that does not fit (no
//     skipping ahead), which is what makes completion order match
//     submission order — the fairness property test_service pins down;
//   - admission-bounded: the summed modeled seconds of a round may not
//     exceed the per-round budget, so one huge request cannot ride along
//     and starve the queue behind it — except that the queue head is always
//     admitted (alone if need be), so nothing starves forever;
//   - solo jobs (folded plans, whose accounting needs a dedicated world)
//     are never packed with others.
//
// plan_round is pure (no service state, no clocks) so the packing policy is
// unit-testable without running a single job.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace parsyrk::service {

/// Per-round admission limits. Defaults are sized for small/medium jobs on
/// the modeled machine (alpha = 1us): a round of ~50ms modeled work packs
/// dozens of small SYRKs but only a couple of medium ones.
struct AdmissionLimits {
  /// Summed modeled seconds a round may carry (queue head exempt).
  double modeled_seconds_per_round = 0.05;
  /// Cap on jobs per round regardless of modeled cost.
  std::size_t max_jobs_per_round = 16;
};

/// One queued job as the packer sees it.
struct JobSpec {
  /// World ranks the job's plan occupies (plan.logical_ranks()).
  std::uint64_t ranks = 0;
  /// Planner-modeled runtime (core::plan_modeled_seconds).
  double modeled_seconds = 0.0;
  /// Must run alone on the session (folded plans).
  bool solo = false;
};

/// One job's slot in a round: queue index and first world rank.
struct Placement {
  std::size_t job = 0;  // index into the queue plan_round was given
  int base_rank = 0;
};

/// The schedule for one world job. Placements are in queue (FIFO) order and
/// always form a prefix of the queue.
struct RoundPlan {
  std::vector<Placement> placements;
  /// Summed modeled seconds of the placed jobs (the admission currency).
  double modeled_sum_seconds = 0.0;
  /// Max modeled seconds over placed jobs — the round's modeled makespan
  /// (placed jobs run concurrently on disjoint ranks).
  double modeled_max_seconds = 0.0;
};

/// Packs the longest admissible FIFO prefix of `queue` into a world of
/// `world_size` ranks. `queue` must be non-empty; the head is always placed.
RoundPlan plan_round(const std::vector<JobSpec>& queue, int world_size,
                     const AdmissionLimits& limits);

}  // namespace parsyrk::service
