#include "service/service.hpp"

#include <algorithm>
#include <exception>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace parsyrk::service {

namespace detail {

/// Shared state behind a SyrkTicket. The submitter writes request and
/// submitted_at; the scheduler thread owns everything else until the status
/// flips to kDone/kFailed under `mu`.
struct TicketState {
  explicit TicketState(core::SyrkRequest req) : request(std::move(req)) {}

  std::mutex mu;
  std::condition_variable cv;
  TicketStatus status = TicketStatus::kQueued;
  SyrkResult result;
  std::exception_ptr error;

  core::SyrkRequest request;
  std::chrono::steady_clock::time_point submitted_at;
  std::chrono::steady_clock::time_point dispatched_at;

  // Admission-time resolution (scheduler thread only). Sticky: a ticket is
  // priced once, even if it waits several rounds for its turn.
  bool admitted = false;
  core::Plan plan;
  double modeled_seconds = 0.0;
};

}  // namespace detail

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

const char* ticket_status_name(TicketStatus s) {
  switch (s) {
    case TicketStatus::kQueued: return "queued";
    case TicketStatus::kRunning: return "running";
    case TicketStatus::kDone: return "done";
    case TicketStatus::kFailed: return "failed";
  }
  return "?";
}

// ---- SyrkTicket ----

TicketStatus SyrkTicket::status() const {
  PARSYRK_REQUIRE(state_ != nullptr, "status() on an empty ticket");
  std::lock_guard lock(state_->mu);
  return state_->status;
}

const SyrkResult& SyrkTicket::wait() {
  PARSYRK_REQUIRE(state_ != nullptr, "wait() on an empty ticket");
  detail::TicketState& s = *state_;
  std::unique_lock lock(s.mu);
  s.cv.wait(lock, [&] {
    return s.status == TicketStatus::kDone || s.status == TicketStatus::kFailed;
  });
  if (s.status == TicketStatus::kFailed) std::rethrow_exception(s.error);
  return s.result;
}

const SyrkResult* SyrkTicket::try_get() {
  PARSYRK_REQUIRE(state_ != nullptr, "try_get() on an empty ticket");
  detail::TicketState& s = *state_;
  std::lock_guard lock(s.mu);
  if (s.status == TicketStatus::kFailed) std::rethrow_exception(s.error);
  return s.status == TicketStatus::kDone ? &s.result : nullptr;
}

// ---- SyrkService ----

SyrkService::SyrkService(ServiceOptions options)
    : options_(std::move(options)),
      pool_(options_.pool != nullptr ? options_.pool
                                     : &comm::WorkerPool::shared()) {
  PARSYRK_REQUIRE(options_.procs >= 1, "service needs at least one worker");
  session_ = std::make_unique<core::Session>(options_.procs, *pool_);
  cache_.bind_worker_count(options_.procs);
  install_cache_resolver();
  epoch_ = std::chrono::steady_clock::now();
  timeline_.set_ranks(options_.procs);
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

SyrkService::~SyrkService() {
  drain();
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  scheduler_.join();
}

void SyrkService::install_cache_resolver() {
  session_->set_plan_options(options_.plan_options);
  session_->set_plan_resolver(
      [this](std::uint64_t n1, std::uint64_t n2, std::uint64_t max_procs,
             const core::PlanSearchOptions& opts) {
        return cache_.resolve(n1, n2, max_procs, opts);
      });
}

SyrkTicket SyrkService::submit(core::SyrkRequest request) {
  PARSYRK_REQUIRE(request.a != nullptr, "request has no input matrix");
  auto st = std::make_shared<detail::TicketState>(std::move(request));
  st->submitted_at = std::chrono::steady_clock::now();
  {
    std::lock_guard lock(mu_);
    PARSYRK_REQUIRE(!stop_, "submit() on a stopped service");
    queue_.push_back(st);
    ++stats_.submitted;
  }
  work_cv_.notify_one();
  return SyrkTicket(std::move(st));
}

SyrkResult SyrkService::syrk(core::SyrkRequest request) {
  return submit(std::move(request)).wait();
}

void SyrkService::drain() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && !round_in_flight_; });
}

void SyrkService::resize(int procs) {
  PARSYRK_REQUIRE(procs >= 1, "service needs at least one worker");
  std::unique_lock lock(mu_);
  // Wait out in-flight work: the scheduler only touches the session while a
  // round is in flight or under this lock, so once idle the swap is safe.
  idle_cv_.wait(lock, [&] { return queue_.empty() && !round_in_flight_; });
  options_.procs = procs;
  session_ = std::make_unique<core::Session>(procs, *pool_);
  // Stale-fold guard: plans enumerated for the old worker count may fold
  // differently (or not at all) at the new one; rebinding drops them.
  cache_.bind_worker_count(procs);
  install_cache_resolver();
}

int SyrkService::procs() const {
  std::lock_guard lock(mu_);
  return session_->size();
}

ServiceStats SyrkService::stats() const {
  std::lock_guard lock(mu_);
  ServiceStats s = stats_;
  s.plan_cache = cache_.stats();
  return s;
}

trace::ServiceTimeline SyrkService::timeline() const {
  std::lock_guard lock(mu_);
  return timeline_;
}

bool SyrkService::admit(detail::TicketState& st) {
  // Resolution goes through the session's resolver, i.e. the plan cache —
  // this is the one resolve every request pays at admission. (Solo rounds
  // re-resolve inside core::syrk; on the planner path that second lookup is
  // a cache hit.)
  try {
    st.plan = core::resolve_plan(*session_, st.request);
    PARSYRK_REQUIRE(
        st.plan.procs <= static_cast<std::uint64_t>(session_->size()),
        "request needs ", st.plan.procs, " ranks; service has ",
        session_->size());
    if (st.request.options.root) {
      PARSYRK_REQUIRE(st.plan.algorithm == core::Algorithm::kOneD,
                      "from_root is only supported with the 1D algorithm");
      PARSYRK_REQUIRE(*st.request.options.root >= 0 &&
                          static_cast<std::uint64_t>(
                              *st.request.options.root) < st.plan.procs,
                      "bad root ", *st.request.options.root);
    }
    // with_pipeline rejects chunks < 1 at request build, but the options
    // struct is an open aggregate — a hand-assembled request can carry any
    // value. Admission is the service's last validation point before the
    // executor, so malformed knobs fail the ticket here, loudly, instead of
    // surfacing as a mid-round executor REQUIRE.
    PARSYRK_REQUIRE(st.request.options.pipeline_chunks >= 0,
                    "pipeline_chunks must be >= 0 (0 = blocking); got ",
                    st.request.options.pipeline_chunks);
    PARSYRK_REQUIRE(st.request.options.ranks_per_node >= 1,
                    "ranks_per_node must be >= 1 (1 = flat); got ",
                    st.request.options.ranks_per_node);
    if (st.request.options.ranks_per_node > 1) {
      PARSYRK_REQUIRE(!st.plan.folded(),
                      "with_topology requires an unfolded plan (folded "
                      "worlds already model co-location)");
    }
    const int rpn = st.request.options.ranks_per_node;
    if (st.request.options.pipeline_chunks >= 1) {
      PARSYRK_REQUIRE(!st.request.options.root,
                      "with_pipeline does not support from_root ingestion");
      PARSYRK_REQUIRE(
          st.request.options.reduce == core::ReduceKind::kPairwise &&
              st.request.options.exchange == core::ExchangeKind::kPairwise,
          "with_pipeline supports pairwise collectives only");
      // Pipelined execution rides pairwise handles; mirror core::syrk's
      // strategy reset so the priced plan matches the executed one.
      st.plan.strategy = core::CollectiveStrategy::kPairwise;
      // Pipelined jobs are priced at their overlapped makespan, so the
      // admission budget and batch bin-packing see the time they actually
      // occupy the round. The ×S latency term inside uses the *effective*
      // segment count (chunks clamped to the plan's available segments).
      st.modeled_seconds = core::plan_modeled_seconds_pipelined(
          st.request.a->rows(), st.request.a->cols(), st.plan,
          st.request.options.pipeline_chunks, options_.plan_options.machine,
          rpn);
    } else {
      st.modeled_seconds = core::plan_modeled_seconds(
          st.request.a->rows(), st.request.a->cols(), st.plan,
          options_.plan_options.machine, rpn);
    }
    st.admitted = true;
    return true;
  } catch (...) {
    st.error = std::current_exception();
    return false;
  }
}

void SyrkService::scheduler_loop() {
  std::unique_lock lock(mu_);
  if (options_.batching && options_.scheduler == SchedMode::kStreaming) {
    streaming_loop(lock);
  } else {
    rounds_loop(lock);
  }
}

void SyrkService::rounds_loop(std::unique_lock<std::mutex>& lock) {
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }

    // Admission: price the FIFO window the packer may look at. Requests
    // that fail resolution (oversized plan, bad root, impossible memory
    // limit) fail their ticket here and leave the queue.
    const std::size_t window =
        options_.batching
            ? std::max<std::size_t>(1, options_.admission.max_jobs_per_round)
            : 1;
    std::vector<std::shared_ptr<detail::TicketState>> candidates;
    std::vector<JobSpec> specs;
    std::size_t i = 0;
    while (i < queue_.size() && candidates.size() < window) {
      std::shared_ptr<detail::TicketState> st = queue_[i];
      if (!st->admitted && !admit(*st)) {
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
        ++stats_.failed;
        fail(st, std::move(st->error));
        continue;
      }
      JobSpec spec;
      spec.ranks = st->plan.logical_ranks();
      spec.modeled_seconds = st->modeled_seconds;
      // Folded plans need a dedicated folded world; topology'd requests
      // stamp set_topology on the world they run on, which a shared batched
      // round cannot honor per-job — both run solo through core::syrk.
      spec.solo =
          st->plan.folded() || st->request.options.ranks_per_node > 1;
      candidates.push_back(std::move(st));
      specs.push_back(spec);
      ++i;
    }
    if (candidates.empty()) {
      if (queue_.empty()) idle_cv_.notify_all();
      continue;
    }

    AdmissionLimits limits = options_.admission;
    if (!options_.batching) limits.max_jobs_per_round = 1;
    const RoundPlan round = plan_round(specs, session_->size(), limits);

    // The placements are a prefix of the queue (strict FIFO): pop them,
    // stamp dispatch time, and mark the tickets running.
    std::vector<std::shared_ptr<detail::TicketState>> batch;
    batch.reserve(round.placements.size());
    const auto dispatched_at = std::chrono::steady_clock::now();
    for (const Placement& p : round.placements) {
      batch.push_back(candidates[p.job]);
    }
    for (std::size_t k = 0; k < batch.size(); ++k) {
      queue_.pop_front();
      batch[k]->dispatched_at = dispatched_at;
      std::lock_guard ticket_lock(batch[k]->mu);
      batch[k]->status = TicketStatus::kRunning;
    }
    round_in_flight_ = true;
    ++stats_.rounds;
    if (batch.size() >= 2) ++stats_.batched_rounds;

    lock.unlock();
    execute_round(std::move(batch), round);
    lock.lock();
    round_in_flight_ = false;
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

/// Per-job execution state of one streamed dispatch. Heap-pinned for its
/// whole flight: the rank bodies capture a raw pointer into it.
struct SyrkService::StreamJob {
  std::shared_ptr<detail::TicketState> st;
  comm::RangeJob handle;
  int base = 0;
  int procs = 0;
  const Matrix* exec_a = nullptr;
  Matrix a_pad;   // storage when the plan pads n1
  Matrix c_exec;  // result assembly target, plan-execution-sized
  /// Ledger snapshot at launch; the job's range is idle then, so
  /// rank-range summaries against it are exact even while other ranges run.
  comm::CostLedger::Snapshot before;
  /// Shared the world with another in-flight job at any point of its
  /// flight (the streaming analogue of riding a batched round).
  bool batched = false;
};

void SyrkService::streaming_loop(std::unique_lock<std::mutex>& lock) {
  // All owned by this thread. StreamJobs live here from dispatch to reap;
  // completion callbacks hand back raw pointers through stream_completed_.
  std::vector<std::unique_ptr<StreamJob>> inflight;
  std::vector<std::chrono::steady_clock::time_point> free_at;
  bool episode_failed = false;
  std::vector<std::shared_ptr<detail::TicketState>> to_retry;

  for (;;) {
    // Anything that changes schedulable state this iteration (a reap, a
    // recovery, a solo run, a launch) warrants another pass before
    // sleeping: the queue head may have become dispatchable.
    bool progressed = false;

    // ---- Reap: finalize streamed jobs whose last rank returned ----
    while (!stream_completed_.empty()) {
      progressed = true;
      StreamJob* done = stream_completed_.back();
      stream_completed_.pop_back();
      auto it = std::find_if(
          inflight.begin(), inflight.end(),
          [&](const std::unique_ptr<StreamJob>& j) { return j.get() == done; });
      PARSYRK_CHECK(it != inflight.end());
      std::unique_ptr<StreamJob> job = std::move(*it);
      inflight.erase(it);
      // Hold drain()/resize() off while the job finalizes outside the lock.
      round_in_flight_ = true;
      lock.unlock();
      job->handle.wait();  // returns immediately; runs the drained check
      const bool job_failed = job->handle.failed() || job->handle.aborted();
      if (!job_failed) finalize_stream_job(*job);
      lock.lock();
      if (job_failed) {
        // A failure poisons the whole world: stop dispatching, collect the
        // casualties (guilty and innocent alike), recover once drained.
        episode_failed = true;
        to_retry.push_back(job->st);
      }
      const auto now = std::chrono::steady_clock::now();
      for (int r = job->base;
           r < job->base + job->procs &&
           r < static_cast<int>(free_at.size());
           ++r) {
        free_at[static_cast<std::size_t>(r)] = now;
      }
    }

    // ---- Failure recovery: rerun the casualties solo once drained ----
    if (episode_failed && inflight.empty()) {
      progressed = true;
      round_in_flight_ = true;
      lock.unlock();
      session_->world().recover_after_failure();
      // The guilty job reports its real error from its solo rerun; the
      // innocent ones complete normally (same policy as a poisoned round).
      for (const auto& st : to_retry) run_solo(st, /*retry=*/true);
      lock.lock();
      to_retry.clear();
      episode_failed = false;
      const auto now = std::chrono::steady_clock::now();
      for (auto& t : free_at) t = now;
    }

    // ---- Dispatch: admit and launch the FIFO prefix that fits ----
    if (!episode_failed && !queue_.empty()) {
      comm::World& world = session_->world();
      const int world_size = world.size();
      if (free_at.size() != static_cast<std::size_t>(world_size)) {
        free_at.assign(static_cast<std::size_t>(world_size),
                       std::chrono::steady_clock::now());
      }

      // Admission window, priced exactly as in rounds mode.
      const std::size_t window =
          std::max<std::size_t>(1, options_.admission.max_jobs_per_round);
      std::vector<std::shared_ptr<detail::TicketState>> candidates;
      std::vector<JobSpec> specs;
      std::size_t i = 0;
      while (i < queue_.size() && candidates.size() < window) {
        std::shared_ptr<detail::TicketState> st = queue_[i];
        if (!st->admitted && !admit(*st)) {
          queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
          ++stats_.failed;
          fail(st, std::move(st->error));
          continue;
        }
        JobSpec spec;
        spec.ranks = st->plan.logical_ranks();
        spec.modeled_seconds = st->modeled_seconds;
        spec.solo =
            st->plan.folded() || st->request.options.ranks_per_node > 1;
        candidates.push_back(std::move(st));
        specs.push_back(spec);
        ++i;
      }

      if (!candidates.empty()) {
        // Quiesce gates: solo jobs need the whole world to themselves, and
        // enabling the trace sink (first traced job) or the protocol
        // verifier (first verify-mode job) must happen between jobs. Strict
        // FIFO means nothing behind them dispatches early.
        const bool head_trace_enable =
            candidates[0]->request.trace && !world.tracing();
        const bool head_verify_enable =
            candidates[0]->request.verify && !world.verifying();
        if (specs[0].solo || head_trace_enable || head_verify_enable) {
          if (inflight.empty()) {
            if (head_trace_enable) world.enable_tracing();
            if (head_verify_enable) world.enable_verify();
            if (specs[0].solo) {
              std::shared_ptr<detail::TicketState> head = candidates[0];
              queue_.pop_front();
              head->dispatched_at = std::chrono::steady_clock::now();
              {
                std::lock_guard ticket_lock(head->mu);
                head->status = TicketStatus::kRunning;
              }
              ++stats_.rounds;
              round_in_flight_ = true;
              progressed = true;
              lock.unlock();
              run_solo(head, /*retry=*/false);
              lock.lock();
              const auto now = std::chrono::steady_clock::now();
              for (auto& t : free_at) t = now;
            }
          }
          // else: wait for the stream to drain, then handle the head.
        }
        if (!specs[0].solo) {
          // Streamed placement onto the currently free rank intervals.
          // A traced job can only launch once the sink is live; truncation
          // keeps FIFO (jobs behind it wait too).
          if (world.ranks_per_node() != 1 && inflight.empty()) {
            // A preceding solo topology'd request stamped the shared
            // world; streamed jobs run flat.
            world.set_topology(1);
          }
          std::vector<char> rank_busy(static_cast<std::size_t>(world_size), 0);
          double inflight_modeled = 0.0;
          for (const auto& j : inflight) {
            for (int r = j->base; r < j->base + j->procs; ++r) {
              rank_busy[static_cast<std::size_t>(r)] = 1;
            }
            inflight_modeled += j->st->modeled_seconds;
          }
          std::vector<RankInterval> holes;
          for (int r = 0; r < world_size;) {
            if (rank_busy[static_cast<std::size_t>(r)]) {
              ++r;
              continue;
            }
            int e = r;
            while (e < world_size && !rank_busy[static_cast<std::size_t>(e)]) {
              ++e;
            }
            holes.push_back({r, e - r});
            r = e;
          }
          std::vector<Placement> placed = plan_stream_step(
              specs, holes, inflight_modeled, inflight.size(),
              options_.admission);
          std::size_t launchable = placed.size();
          for (std::size_t k = 0; k < placed.size(); ++k) {
            const detail::TicketState& c = *candidates[placed[k].job];
            if ((c.request.trace && !world.tracing()) ||
                (c.request.verify && !world.verifying())) {
              launchable = k;
              break;
            }
          }
          const auto dispatched_at = std::chrono::steady_clock::now();
          if (launchable > 0) progressed = true;
          for (std::size_t k = 0; k < launchable; ++k) {
            const Placement& p = placed[k];
            std::shared_ptr<detail::TicketState> st = candidates[p.job];
            queue_.pop_front();
            st->dispatched_at = dispatched_at;
            {
              std::lock_guard ticket_lock(st->mu);
              st->status = TicketStatus::kRunning;
            }

            auto job = std::make_unique<StreamJob>();
            job->st = st;
            job->base = p.base_rank;
            job->procs = static_cast<int>(st->plan.logical_ranks());
            const Matrix& a = *st->request.a;
            const std::uint64_t exec_n1 = st->plan.exec_n1(a.rows());
            job->exec_a = &a;
            if (exec_n1 != a.rows()) {
              job->a_pad = core::internal::pad_rows(a, exec_n1);
              job->exec_a = &job->a_pad;
            }
            job->c_exec = Matrix(exec_n1, exec_n1);
            job->before = world.ledger().snapshot();

            ++stats_.rounds;
            if (!inflight.empty()) {
              ++stats_.interleaved_jobs;
              ++stats_.batched_rounds;
              job->batched = true;
              for (auto& other : inflight) other->batched = true;
            }
            // Work-conservation gap: idle time of the job's ranks since
            // they last freed — or since the job was submitted, if later
            // (a rank cannot run work that does not exist yet).
            for (int r = job->base; r < job->base + job->procs; ++r) {
              const auto could_start =
                  std::max(free_at[static_cast<std::size_t>(r)],
                           st->submitted_at);
              stats_.scheduler_gap_seconds +=
                  std::max(0.0, seconds_between(could_start, dispatched_at));
            }

            StreamJob* raw = job.get();
            job->handle = world.launch_ranks(
                job->base, job->base + job->procs,
                [raw](comm::Comm& c) {
                  core::internal::run_syrk_plan_rank(
                      c, raw->exec_a->view(), raw->st->plan,
                      raw->st->request.options, raw->c_exec);
                },
                [this, raw] {
                  // Notify while holding the lock: this callback runs on a
                  // pool-worker thread, and the scheduler (then ~SyrkService)
                  // may otherwise reap the completion and destroy work_cv_
                  // while the broadcast is still touching it. Holding mu_
                  // orders the broadcast before any waiter can return.
                  std::lock_guard completion_lock(mu_);
                  stream_completed_.push_back(raw);
                  work_cv_.notify_all();
                });
            inflight.push_back(std::move(job));
          }
        }
      }
    }

    round_in_flight_ = !inflight.empty();
    if (queue_.empty() && !round_in_flight_) idle_cv_.notify_all();
    if (stop_ && queue_.empty() && inflight.empty() &&
        stream_completed_.empty()) {
      return;
    }
    if (progressed) continue;  // re-examine the queue before sleeping
    // Sleep until something can change the schedule: a completion, a new
    // submission, or a stop. Waking on a bare non-empty queue would spin
    // when the queue head cannot dispatch yet (busy ranks, full budget).
    const std::uint64_t seen_submitted = stats_.submitted;
    const bool seen_stop = stop_;
    work_cv_.wait(lock, [&] {
      return !stream_completed_.empty() ||
             stats_.submitted != seen_submitted || stop_ != seen_stop;
    });
  }
}

void SyrkService::finalize_stream_job(StreamJob& job) {
  comm::World& world = session_->world();
  const comm::CostLedger& ledger = world.ledger();
  detail::TicketState& st = *job.st;
  const Matrix& a = *st.request.a;
  const int lo = job.base;
  const int hi = job.base + job.procs;
  core::SyrkRun run;
  run.plan = st.plan;
  run.c = core::internal::truncate_result(std::move(job.c_exec), a.rows());
  run.total = ledger.summary_since(job.before, lo, hi);
  run.gather_a =
      ledger.summary_since(job.before, core::internal::kPhaseGatherA, lo, hi);
  run.reduce_c =
      ledger.summary_since(job.before, core::internal::kPhaseReduceC, lo, hi);
  run.scatter_a =
      ledger.summary_since(job.before, core::internal::kPhaseScatterA, lo, hi);
  if (a.rows() >= 2) {
    run.bound = bounds::syrk_lower_bound(a.rows(), a.cols(), run.plan.procs);
  }
  if (st.request.trace) {
    // Range drain + extraction == the solo trace pipeline: the world-shaped
    // range trace holds exactly this job's events, and extract rebases them
    // to the same canonical form a solo drain produces.
    const comm::JobTrace range = world.trace_sink()->drain_ranks(
        /*poisoned=*/false, lo, hi, job.handle.job_id());
    run.trace = comm::extract_rank_range(range, lo, hi);
  }
  finish(job.st, std::move(run), job.batched, job.base);
}

void SyrkService::execute_round(
    std::vector<std::shared_ptr<detail::TicketState>> batch,
    const RoundPlan& round) {
  if (batch.size() == 1) {
    run_solo(batch.front(), /*retry=*/false);
    return;
  }
  run_batched(batch, round);
}

void SyrkService::run_solo(const std::shared_ptr<detail::TicketState>& st,
                           bool retry) {
  if (retry) {
    std::lock_guard lock(mu_);
    ++stats_.retried_jobs;
  }
  try {
    core::SyrkRun run = core::syrk(*session_, st->request);
    finish(st, std::move(run), /*batched=*/false, /*base_rank=*/0);
  } catch (...) {
    {
      std::lock_guard lock(mu_);
      ++stats_.failed;
    }
    fail(st, std::current_exception());
  }
}

/// Per-job execution state of one batched round.
struct SyrkService::BatchJob {
  detail::TicketState* st = nullptr;
  int base = 0;
  int procs = 0;
  const Matrix* exec_a = nullptr;
  Matrix a_pad;   // storage when the plan pads n1
  Matrix c_exec;  // shared result assembly target, plan-execution-sized
};

void SyrkService::run_batched(
    const std::vector<std::shared_ptr<detail::TicketState>>& batch,
    const RoundPlan& round) {
  comm::World& world = session_->world();
  // Batched rounds always run flat (topology'd requests are solo-forced);
  // a preceding solo topology'd request stamped the shared world, so reset.
  world.set_topology(1);
  bool traced = false;
  bool verified = false;
  for (const auto& st : batch) {
    traced = traced || st->request.trace;
    verified = verified || st->request.verify;
  }
  if (traced) world.enable_tracing();
  if (verified) world.enable_verify();

  std::vector<BatchJob> jobs(batch.size());
  std::vector<int> rank_to_job(static_cast<std::size_t>(world.size()), -1);
  for (std::size_t j = 0; j < batch.size(); ++j) {
    detail::TicketState& st = *batch[j];
    BatchJob& job = jobs[j];
    job.st = &st;
    job.base = round.placements[j].base_rank;
    job.procs = static_cast<int>(st.plan.logical_ranks());
    const Matrix& a = *st.request.a;
    const std::uint64_t exec_n1 = st.plan.exec_n1(a.rows());
    job.exec_a = &a;
    if (exec_n1 != a.rows()) {
      job.a_pad = core::internal::pad_rows(a, exec_n1);
      job.exec_a = &job.a_pad;
    }
    job.c_exec = Matrix(exec_n1, exec_n1);
    for (int r = job.base; r < job.base + job.procs; ++r) {
      rank_to_job[static_cast<std::size_t>(r)] = static_cast<int>(j);
    }
  }

  const comm::CostLedger::Snapshot before = world.ledger().snapshot();
  const int idle_color = static_cast<int>(jobs.size());
  try {
    world.run([&](comm::Comm& wc) {
      const int j = rank_to_job[static_cast<std::size_t>(wc.rank())];
      // One collective split partitions the world into the per-job groups
      // (key = world rank, so sub ranks are world-rank-ordered exactly as
      // the solo guard split orders them). The split is ledger-muted setup,
      // so per-job measured volumes match a solo run bit for bit.
      comm::Comm sub = wc.split(j >= 0 ? j : idle_color, wc.rank());
      if (j < 0) return;
      BatchJob& job = jobs[static_cast<std::size_t>(j)];
      core::internal::run_syrk_plan_rank(sub, job.exec_a->view(),
                                         job.st->plan,
                                         job.st->request.options, job.c_exec);
    });
  } catch (...) {
    // A rank failure poisons the whole world, taking the innocent
    // batch-mates down with RankAborted. Re-run every job of the round
    // solo: the guilty job reports its real error, the others complete
    // normally (their solo ledger scope starts at a fresh snapshot, so the
    // poisoned round's partial traffic never leaks into a result; the
    // trace sink likewise discards undrained events at the next job start).
    for (const auto& st : batch) run_solo(st, /*retry=*/true);
    return;
  }

  std::optional<comm::JobTrace> round_trace;
  if (traced) round_trace = world.trace_sink()->drain(/*poisoned=*/false);

  const comm::CostLedger& ledger = world.ledger();
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    BatchJob& job = jobs[j];
    const Matrix& a = *job.st->request.a;
    const int lo = job.base;
    const int hi = job.base + job.procs;
    core::SyrkRun run;
    run.plan = job.st->plan;
    run.c = core::internal::truncate_result(std::move(job.c_exec), a.rows());
    run.total = ledger.summary_since(before, lo, hi);
    run.gather_a =
        ledger.summary_since(before, core::internal::kPhaseGatherA, lo, hi);
    run.reduce_c =
        ledger.summary_since(before, core::internal::kPhaseReduceC, lo, hi);
    run.scatter_a =
        ledger.summary_since(before, core::internal::kPhaseScatterA, lo, hi);
    if (a.rows() >= 2) {
      run.bound =
          bounds::syrk_lower_bound(a.rows(), a.cols(), run.plan.procs);
    }
    if (job.st->request.trace) {
      run.trace = comm::extract_rank_range(*round_trace, lo, hi);
    }
    finish(batch[j], std::move(run), /*batched=*/true, job.base);
  }
}

void SyrkService::finish(const std::shared_ptr<detail::TicketState>& st,
                         core::SyrkRun run, bool batched, int base_rank) {
  const auto now = std::chrono::steady_clock::now();
  SyrkResult res;
  res.run = std::move(run);
  res.batched = batched;
  res.base_rank = base_rank;
  res.latency.queue_seconds = seconds_between(st->submitted_at,
                                              st->dispatched_at);
  res.latency.service_seconds = seconds_between(st->dispatched_at, now);
  res.latency.total_seconds = seconds_between(st->submitted_at, now);
  res.latency.modeled_seconds = st->modeled_seconds;
  if (st->request.audit) {
    const comm::JobTrace* tr =
        res.run.trace.has_value() ? &*res.run.trace : nullptr;
    res.audit = trace::BoundAuditor().audit(st->request.a->rows(),
                                            st->request.a->cols(), res.run,
                                            tr);
  }
  {
    std::lock_guard lock(mu_);
    res.completion_seq = ++completion_seq_;
    ++stats_.completed;
    if (batched) {
      ++stats_.batched_jobs;
    } else {
      ++stats_.solo_jobs;
    }
    if (st->request.options.pipeline_chunks >= 1) ++stats_.pipelined_jobs;
    stats_.total_queue_seconds += res.latency.queue_seconds;
    stats_.total_service_seconds += res.latency.service_seconds;
    trace::TimelineInterval iv;
    iv.job_id = res.completion_seq;
    iv.rank_begin = base_rank;
    iv.rank_end = base_rank + static_cast<int>(st->plan.logical_ranks());
    iv.start_seconds = seconds_between(epoch_, st->dispatched_at);
    iv.end_seconds = seconds_between(epoch_, now);
    iv.solo = !batched;
    timeline_.add(iv);
  }
  {
    std::lock_guard lock(st->mu);
    st->result = std::move(res);
    st->status = TicketStatus::kDone;
  }
  st->cv.notify_all();
}

void SyrkService::fail(const std::shared_ptr<detail::TicketState>& st,
                       std::exception_ptr error) {
  {
    std::lock_guard lock(st->mu);
    st->error = std::move(error);
    st->status = TicketStatus::kFailed;
  }
  st->cv.notify_all();
}

}  // namespace parsyrk::service
