#include "service/service.hpp"

#include <algorithm>
#include <exception>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace parsyrk::service {

namespace detail {

/// Shared state behind a SyrkTicket. The submitter writes request and
/// submitted_at; the scheduler thread owns everything else until the status
/// flips to kDone/kFailed under `mu`.
struct TicketState {
  explicit TicketState(core::SyrkRequest req) : request(std::move(req)) {}

  std::mutex mu;
  std::condition_variable cv;
  TicketStatus status = TicketStatus::kQueued;
  SyrkResult result;
  std::exception_ptr error;

  core::SyrkRequest request;
  std::chrono::steady_clock::time_point submitted_at;
  std::chrono::steady_clock::time_point dispatched_at;

  // Admission-time resolution (scheduler thread only). Sticky: a ticket is
  // priced once, even if it waits several rounds for its turn.
  bool admitted = false;
  core::Plan plan;
  double modeled_seconds = 0.0;
};

}  // namespace detail

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

const char* ticket_status_name(TicketStatus s) {
  switch (s) {
    case TicketStatus::kQueued: return "queued";
    case TicketStatus::kRunning: return "running";
    case TicketStatus::kDone: return "done";
    case TicketStatus::kFailed: return "failed";
  }
  return "?";
}

// ---- SyrkTicket ----

TicketStatus SyrkTicket::status() const {
  PARSYRK_REQUIRE(state_ != nullptr, "status() on an empty ticket");
  std::lock_guard lock(state_->mu);
  return state_->status;
}

const SyrkResult& SyrkTicket::wait() {
  PARSYRK_REQUIRE(state_ != nullptr, "wait() on an empty ticket");
  detail::TicketState& s = *state_;
  std::unique_lock lock(s.mu);
  s.cv.wait(lock, [&] {
    return s.status == TicketStatus::kDone || s.status == TicketStatus::kFailed;
  });
  if (s.status == TicketStatus::kFailed) std::rethrow_exception(s.error);
  return s.result;
}

const SyrkResult* SyrkTicket::try_get() {
  PARSYRK_REQUIRE(state_ != nullptr, "try_get() on an empty ticket");
  detail::TicketState& s = *state_;
  std::lock_guard lock(s.mu);
  if (s.status == TicketStatus::kFailed) std::rethrow_exception(s.error);
  return s.status == TicketStatus::kDone ? &s.result : nullptr;
}

// ---- SyrkService ----

SyrkService::SyrkService(ServiceOptions options)
    : options_(std::move(options)),
      pool_(options_.pool != nullptr ? options_.pool
                                     : &comm::WorkerPool::shared()) {
  PARSYRK_REQUIRE(options_.procs >= 1, "service needs at least one worker");
  session_ = std::make_unique<core::Session>(options_.procs, *pool_);
  cache_.bind_worker_count(options_.procs);
  install_cache_resolver();
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

SyrkService::~SyrkService() {
  drain();
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  scheduler_.join();
}

void SyrkService::install_cache_resolver() {
  session_->set_plan_options(options_.plan_options);
  session_->set_plan_resolver(
      [this](std::uint64_t n1, std::uint64_t n2, std::uint64_t max_procs,
             const core::PlanSearchOptions& opts) {
        return cache_.resolve(n1, n2, max_procs, opts);
      });
}

SyrkTicket SyrkService::submit(core::SyrkRequest request) {
  PARSYRK_REQUIRE(request.a != nullptr, "request has no input matrix");
  auto st = std::make_shared<detail::TicketState>(std::move(request));
  st->submitted_at = std::chrono::steady_clock::now();
  {
    std::lock_guard lock(mu_);
    PARSYRK_REQUIRE(!stop_, "submit() on a stopped service");
    queue_.push_back(st);
    ++stats_.submitted;
  }
  work_cv_.notify_one();
  return SyrkTicket(std::move(st));
}

SyrkResult SyrkService::syrk(core::SyrkRequest request) {
  return submit(std::move(request)).wait();
}

void SyrkService::drain() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && !round_in_flight_; });
}

void SyrkService::resize(int procs) {
  PARSYRK_REQUIRE(procs >= 1, "service needs at least one worker");
  std::unique_lock lock(mu_);
  // Wait out in-flight work: the scheduler only touches the session while a
  // round is in flight or under this lock, so once idle the swap is safe.
  idle_cv_.wait(lock, [&] { return queue_.empty() && !round_in_flight_; });
  options_.procs = procs;
  session_ = std::make_unique<core::Session>(procs, *pool_);
  // Stale-fold guard: plans enumerated for the old worker count may fold
  // differently (or not at all) at the new one; rebinding drops them.
  cache_.bind_worker_count(procs);
  install_cache_resolver();
}

int SyrkService::procs() const {
  std::lock_guard lock(mu_);
  return session_->size();
}

ServiceStats SyrkService::stats() const {
  std::lock_guard lock(mu_);
  ServiceStats s = stats_;
  s.plan_cache = cache_.stats();
  return s;
}

bool SyrkService::admit(detail::TicketState& st) {
  // Resolution goes through the session's resolver, i.e. the plan cache —
  // this is the one resolve every request pays at admission. (Solo rounds
  // re-resolve inside core::syrk; on the planner path that second lookup is
  // a cache hit.)
  try {
    st.plan = core::resolve_plan(*session_, st.request);
    PARSYRK_REQUIRE(
        st.plan.procs <= static_cast<std::uint64_t>(session_->size()),
        "request needs ", st.plan.procs, " ranks; service has ",
        session_->size());
    if (st.request.options.root) {
      PARSYRK_REQUIRE(st.plan.algorithm == core::Algorithm::kOneD,
                      "from_root is only supported with the 1D algorithm");
      PARSYRK_REQUIRE(*st.request.options.root >= 0 &&
                          static_cast<std::uint64_t>(
                              *st.request.options.root) < st.plan.procs,
                      "bad root ", *st.request.options.root);
    }
    // with_pipeline rejects chunks < 1 at request build, but the options
    // struct is an open aggregate — a hand-assembled request can carry any
    // value. Admission is the service's last validation point before the
    // executor, so malformed knobs fail the ticket here, loudly, instead of
    // surfacing as a mid-round executor REQUIRE.
    PARSYRK_REQUIRE(st.request.options.pipeline_chunks >= 0,
                    "pipeline_chunks must be >= 0 (0 = blocking); got ",
                    st.request.options.pipeline_chunks);
    PARSYRK_REQUIRE(st.request.options.ranks_per_node >= 1,
                    "ranks_per_node must be >= 1 (1 = flat); got ",
                    st.request.options.ranks_per_node);
    if (st.request.options.ranks_per_node > 1) {
      PARSYRK_REQUIRE(!st.plan.folded(),
                      "with_topology requires an unfolded plan (folded "
                      "worlds already model co-location)");
    }
    const int rpn = st.request.options.ranks_per_node;
    if (st.request.options.pipeline_chunks >= 1) {
      PARSYRK_REQUIRE(!st.request.options.root,
                      "with_pipeline does not support from_root ingestion");
      PARSYRK_REQUIRE(
          st.request.options.reduce == core::ReduceKind::kPairwise &&
              st.request.options.exchange == core::ExchangeKind::kPairwise,
          "with_pipeline supports pairwise collectives only");
      // Pipelined execution rides pairwise handles; mirror core::syrk's
      // strategy reset so the priced plan matches the executed one.
      st.plan.strategy = core::CollectiveStrategy::kPairwise;
      // Pipelined jobs are priced at their overlapped makespan, so the
      // admission budget and batch bin-packing see the time they actually
      // occupy the round. The ×S latency term inside uses the *effective*
      // segment count (chunks clamped to the plan's available segments).
      st.modeled_seconds = core::plan_modeled_seconds_pipelined(
          st.request.a->rows(), st.request.a->cols(), st.plan,
          st.request.options.pipeline_chunks, options_.plan_options.machine,
          rpn);
    } else {
      st.modeled_seconds = core::plan_modeled_seconds(
          st.request.a->rows(), st.request.a->cols(), st.plan,
          options_.plan_options.machine, rpn);
    }
    st.admitted = true;
    return true;
  } catch (...) {
    st.error = std::current_exception();
    return false;
  }
}

void SyrkService::scheduler_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }

    // Admission: price the FIFO window the packer may look at. Requests
    // that fail resolution (oversized plan, bad root, impossible memory
    // limit) fail their ticket here and leave the queue.
    const std::size_t window =
        options_.batching
            ? std::max<std::size_t>(1, options_.admission.max_jobs_per_round)
            : 1;
    std::vector<std::shared_ptr<detail::TicketState>> candidates;
    std::vector<JobSpec> specs;
    std::size_t i = 0;
    while (i < queue_.size() && candidates.size() < window) {
      std::shared_ptr<detail::TicketState> st = queue_[i];
      if (!st->admitted && !admit(*st)) {
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
        ++stats_.failed;
        fail(st, std::move(st->error));
        continue;
      }
      JobSpec spec;
      spec.ranks = st->plan.logical_ranks();
      spec.modeled_seconds = st->modeled_seconds;
      // Folded plans need a dedicated folded world; topology'd requests
      // stamp set_topology on the world they run on, which a shared batched
      // round cannot honor per-job — both run solo through core::syrk.
      spec.solo =
          st->plan.folded() || st->request.options.ranks_per_node > 1;
      candidates.push_back(std::move(st));
      specs.push_back(spec);
      ++i;
    }
    if (candidates.empty()) {
      if (queue_.empty()) idle_cv_.notify_all();
      continue;
    }

    AdmissionLimits limits = options_.admission;
    if (!options_.batching) limits.max_jobs_per_round = 1;
    const RoundPlan round = plan_round(specs, session_->size(), limits);

    // The placements are a prefix of the queue (strict FIFO): pop them,
    // stamp dispatch time, and mark the tickets running.
    std::vector<std::shared_ptr<detail::TicketState>> batch;
    batch.reserve(round.placements.size());
    const auto dispatched_at = std::chrono::steady_clock::now();
    for (const Placement& p : round.placements) {
      batch.push_back(candidates[p.job]);
    }
    for (std::size_t k = 0; k < batch.size(); ++k) {
      queue_.pop_front();
      batch[k]->dispatched_at = dispatched_at;
      std::lock_guard ticket_lock(batch[k]->mu);
      batch[k]->status = TicketStatus::kRunning;
    }
    round_in_flight_ = true;
    ++stats_.rounds;
    if (batch.size() >= 2) ++stats_.batched_rounds;

    lock.unlock();
    execute_round(std::move(batch), round);
    lock.lock();
    round_in_flight_ = false;
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

void SyrkService::execute_round(
    std::vector<std::shared_ptr<detail::TicketState>> batch,
    const RoundPlan& round) {
  if (batch.size() == 1) {
    run_solo(batch.front(), /*retry=*/false);
    return;
  }
  run_batched(batch, round);
}

void SyrkService::run_solo(const std::shared_ptr<detail::TicketState>& st,
                           bool retry) {
  if (retry) {
    std::lock_guard lock(mu_);
    ++stats_.retried_jobs;
  }
  try {
    core::SyrkRun run = core::syrk(*session_, st->request);
    finish(st, std::move(run), /*batched=*/false, /*base_rank=*/0);
  } catch (...) {
    {
      std::lock_guard lock(mu_);
      ++stats_.failed;
    }
    fail(st, std::current_exception());
  }
}

/// Per-job execution state of one batched round.
struct SyrkService::BatchJob {
  detail::TicketState* st = nullptr;
  int base = 0;
  int procs = 0;
  const Matrix* exec_a = nullptr;
  Matrix a_pad;   // storage when the plan pads n1
  Matrix c_exec;  // shared result assembly target, plan-execution-sized
};

void SyrkService::run_batched(
    const std::vector<std::shared_ptr<detail::TicketState>>& batch,
    const RoundPlan& round) {
  comm::World& world = session_->world();
  // Batched rounds always run flat (topology'd requests are solo-forced);
  // a preceding solo topology'd request stamped the shared world, so reset.
  world.set_topology(1);
  bool traced = false;
  for (const auto& st : batch) traced = traced || st->request.trace;
  if (traced) world.enable_tracing();

  std::vector<BatchJob> jobs(batch.size());
  std::vector<int> rank_to_job(static_cast<std::size_t>(world.size()), -1);
  for (std::size_t j = 0; j < batch.size(); ++j) {
    detail::TicketState& st = *batch[j];
    BatchJob& job = jobs[j];
    job.st = &st;
    job.base = round.placements[j].base_rank;
    job.procs = static_cast<int>(st.plan.logical_ranks());
    const Matrix& a = *st.request.a;
    const std::uint64_t exec_n1 = st.plan.exec_n1(a.rows());
    job.exec_a = &a;
    if (exec_n1 != a.rows()) {
      job.a_pad = core::internal::pad_rows(a, exec_n1);
      job.exec_a = &job.a_pad;
    }
    job.c_exec = Matrix(exec_n1, exec_n1);
    for (int r = job.base; r < job.base + job.procs; ++r) {
      rank_to_job[static_cast<std::size_t>(r)] = static_cast<int>(j);
    }
  }

  const comm::CostLedger::Snapshot before = world.ledger().snapshot();
  const int idle_color = static_cast<int>(jobs.size());
  try {
    world.run([&](comm::Comm& wc) {
      const int j = rank_to_job[static_cast<std::size_t>(wc.rank())];
      // One collective split partitions the world into the per-job groups
      // (key = world rank, so sub ranks are world-rank-ordered exactly as
      // the solo guard split orders them). The split is ledger-muted setup,
      // so per-job measured volumes match a solo run bit for bit.
      comm::Comm sub = wc.split(j >= 0 ? j : idle_color, wc.rank());
      if (j < 0) return;
      BatchJob& job = jobs[static_cast<std::size_t>(j)];
      core::internal::run_syrk_plan_rank(sub, job.exec_a->view(),
                                         job.st->plan,
                                         job.st->request.options, job.c_exec);
    });
  } catch (...) {
    // A rank failure poisons the whole world, taking the innocent
    // batch-mates down with RankAborted. Re-run every job of the round
    // solo: the guilty job reports its real error, the others complete
    // normally (their solo ledger scope starts at a fresh snapshot, so the
    // poisoned round's partial traffic never leaks into a result; the
    // trace sink likewise discards undrained events at the next job start).
    for (const auto& st : batch) run_solo(st, /*retry=*/true);
    return;
  }

  std::optional<comm::JobTrace> round_trace;
  if (traced) round_trace = world.trace_sink()->drain(/*poisoned=*/false);

  const comm::CostLedger& ledger = world.ledger();
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    BatchJob& job = jobs[j];
    const Matrix& a = *job.st->request.a;
    const int lo = job.base;
    const int hi = job.base + job.procs;
    core::SyrkRun run;
    run.plan = job.st->plan;
    run.c = core::internal::truncate_result(std::move(job.c_exec), a.rows());
    run.total = ledger.summary_since(before, lo, hi);
    run.gather_a =
        ledger.summary_since(before, core::internal::kPhaseGatherA, lo, hi);
    run.reduce_c =
        ledger.summary_since(before, core::internal::kPhaseReduceC, lo, hi);
    run.scatter_a =
        ledger.summary_since(before, core::internal::kPhaseScatterA, lo, hi);
    if (a.rows() >= 2) {
      run.bound =
          bounds::syrk_lower_bound(a.rows(), a.cols(), run.plan.procs);
    }
    if (job.st->request.trace) {
      run.trace = comm::extract_rank_range(*round_trace, lo, hi);
    }
    finish(batch[j], std::move(run), /*batched=*/true, job.base);
  }
}

void SyrkService::finish(const std::shared_ptr<detail::TicketState>& st,
                         core::SyrkRun run, bool batched, int base_rank) {
  const auto now = std::chrono::steady_clock::now();
  SyrkResult res;
  res.run = std::move(run);
  res.batched = batched;
  res.base_rank = base_rank;
  res.latency.queue_seconds = seconds_between(st->submitted_at,
                                              st->dispatched_at);
  res.latency.service_seconds = seconds_between(st->dispatched_at, now);
  res.latency.total_seconds = seconds_between(st->submitted_at, now);
  res.latency.modeled_seconds = st->modeled_seconds;
  if (st->request.audit) {
    const comm::JobTrace* tr =
        res.run.trace.has_value() ? &*res.run.trace : nullptr;
    res.audit = trace::BoundAuditor().audit(st->request.a->rows(),
                                            st->request.a->cols(), res.run,
                                            tr);
  }
  {
    std::lock_guard lock(mu_);
    res.completion_seq = ++completion_seq_;
    ++stats_.completed;
    if (batched) {
      ++stats_.batched_jobs;
    } else {
      ++stats_.solo_jobs;
    }
    if (st->request.options.pipeline_chunks >= 1) ++stats_.pipelined_jobs;
    stats_.total_queue_seconds += res.latency.queue_seconds;
    stats_.total_service_seconds += res.latency.service_seconds;
  }
  {
    std::lock_guard lock(st->mu);
    st->result = std::move(res);
    st->status = TicketStatus::kDone;
  }
  st->cv.notify_all();
}

void SyrkService::fail(const std::shared_ptr<detail::TicketState>& st,
                       std::exception_ptr error) {
  {
    std::lock_guard lock(st->mu);
    st->error = std::move(error);
    st->status = TicketStatus::kFailed;
  }
  st->cv.notify_all();
}

}  // namespace parsyrk::service
