#include "bounds/syr2k_bounds.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace parsyrk::bounds {

Syr2kBound syr2k_lower_bound(std::uint64_t n1, std::uint64_t n2,
                             std::uint64_t p) {
  PARSYRK_REQUIRE(n1 >= 2 && n2 >= 1 && p >= 1,
                  "syr2k bound needs n1 >= 2, n2 >= 1, P >= 1");
  const double d1 = static_cast<double>(n1);
  const double d2 = static_cast<double>(n2);
  const double dp = static_cast<double>(p);
  const double tri2 = d1 * (d1 - 1.0);
  Syr2kBound b;
  if (d1 <= d2 && dp <= 2.0 * d2 / std::sqrt(tri2)) {
    b.regime = Regime::kOneD;
    b.w = 2.0 * d1 * d2 / dp + tri2 / 2.0;
  } else if (d1 > d2 && dp <= tri2 / (4.0 * d2 * d2)) {
    b.regime = Regime::kTwoD;
    b.w = 2.0 * d1 * d2 / std::sqrt(dp) + tri2 / (2.0 * dp);
  } else {
    b.regime = Regime::kThreeD;
    b.w = 3.0 * std::pow(tri2 * d2 / (std::sqrt(2.0) * dp), 2.0 / 3.0);
  }
  // One copy each of A, B, and the strict lower triangle of C.
  const double resident = (tri2 / 2.0 + 2.0 * d1 * d2) / dp;
  b.communicated = std::max(0.0, b.w - resident);
  return b;
}

}  // namespace parsyrk::bounds
