// The paper's lower-bound machinery: Lemma 6 (constrained optimization),
// Theorem 1 (communication lower bound for SYRK), and the GEMM comparators.
#pragma once

#include <cstdint>
#include <string>

namespace parsyrk::bounds {

/// Which of the three bound regimes is active (Theorem 1 / Lemma 6 cases).
enum class Regime {
  kOneD = 1,   // n1 <= n2 and P <= n2/sqrt(n1(n1-1))
  kTwoD = 2,   // n1 >  n2 and P <= n1(n1-1)/n2²
  kThreeD = 3  // otherwise
};

const char* regime_name(Regime r);

/// Solution of the Lemma 6 optimization problem:
///   min x1 + x2  s.t.  (n1(n1-1)n2 / (sqrt(2)P))² <= x1²x2,
///                      x1 >= 0,  n1(n1-1)/2P <= x2 <= n1(n1-1)/2.
/// x1 = elements of A accessed, x2 = elements of C contributed to.
struct Lemma6Solution {
  double x1 = 0.0;
  double x2 = 0.0;
  Regime regime = Regime::kThreeD;
  double objective() const { return x1 + x2; }
};

/// Analytic solution (the paper's closed forms, case-selected).
Lemma6Solution solve_lemma6(double n1, double n2, double p);

/// Numeric cross-check: minimizes the same objective by sweeping x2 over the
/// feasible interval and setting x1 to the binding value of the product
/// constraint. Used by tests to confirm the analytic optimum.
Lemma6Solution solve_lemma6_numeric(double n1, double n2, double p,
                                    int grid_points = 200000);

/// Verifies the KKT conditions (Def. 3) at `s` for the Lemma 6 problem with
/// the paper's dual variables; on failure, `why` explains which condition
/// broke. Tolerances are relative.
bool verify_kkt(double n1, double n2, double p, const Lemma6Solution& s,
                double tol, std::string* why = nullptr);

/// Theorem 1: the lower bound on data accessed (W) and on words
/// communicated (W minus the at-most-1/P-th of data a rank may start/end
/// with).
struct SyrkBound {
  Regime regime = Regime::kThreeD;
  double w = 0.0;            // min data a busiest rank must access
  double communicated = 0.0; // w - (n1(n1-1)/2 + n1 n2)/P, clamped at 0
  Lemma6Solution solution;   // the optimizing projections
};

SyrkBound syrk_lower_bound(std::uint64_t n1, std::uint64_t n2,
                           std::uint64_t p);

/// The memory-independent GEMM lower bound of Al Daas et al. (SPAA '22)
/// specialised to C = A·Bᵀ with A and B both n1×n2 (m = n = n1, k = n2):
/// the comparator for the paper's headline factor-2 claim. Values are the
/// leading-order W (data accessed by the busiest rank).
struct GemmBound {
  Regime regime = Regime::kThreeD;
  double w = 0.0;
  double communicated = 0.0;  // w - (2 n1 n2 + n1²)/P, clamped at 0
};

GemmBound gemm_lower_bound(std::uint64_t n1, std::uint64_t n2,
                           std::uint64_t p);

/// The Loomis–Whitney relaxation of the memory-independent GEMM
/// optimization (Al Daas et al. SPAA '22) for C = A·B with A m×k, B k×n:
///   min x1 + x2 + x3  s.t.  x1·x2·x3 >= (mnk/P)²,
///                           0 <= x1 <= mk, 0 <= x2 <= kn, 0 <= x3 <= mn.
/// Solved by the clamping cascade: start at the symmetric interior point
/// L^{2/3}; clamp whichever coordinate exceeds its (smallest) array cap and
/// re-solve the remaining two; cascade as needed. Omits the per-array
/// LOWER-bound constraints, so it is exactly tight in the 3D regime and a
/// valid but weaker bound in the 1D/2D regimes (where gemm_lower_bound's
/// closed forms, which include those constraints, dominate) — the same
/// relationship the tests pin down.
struct GemmProjections {
  double x1 = 0.0;  // elements of A accessed
  double x2 = 0.0;  // elements of B accessed
  double x3 = 0.0;  // elements of C contributed to
  int clamped = 0;  // how many coordinates sit at their array bound
  double w() const { return x1 + x2 + x3; }
};

GemmProjections gemm_projection_bound(double m, double n, double k, double p);

}  // namespace parsyrk::bounds
