#include "bounds/syrk_bounds.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "support/check.hpp"

namespace parsyrk::bounds {

namespace {

/// The case conditions of Lemma 6 / Theorem 1.
Regime classify(double n1, double n2, double p) {
  const double tri2 = n1 * (n1 - 1.0);
  if (n1 <= n2) {
    return p <= n2 / std::sqrt(tri2) ? Regime::kOneD : Regime::kThreeD;
  }
  return p <= tri2 / (n2 * n2) ? Regime::kTwoD : Regime::kThreeD;
}

}  // namespace

const char* regime_name(Regime r) {
  switch (r) {
    case Regime::kOneD: return "1D";
    case Regime::kTwoD: return "2D";
    case Regime::kThreeD: return "3D";
  }
  return "?";
}

Lemma6Solution solve_lemma6(double n1, double n2, double p) {
  PARSYRK_REQUIRE(n1 >= 2 && n2 >= 1 && p >= 1,
                  "lemma 6 needs n1 >= 2, n2 >= 1, P >= 1; got n1 = ", n1,
                  ", n2 = ", n2, ", P = ", p);
  const double tri2 = n1 * (n1 - 1.0);  // = 2 · (# strict-lower entries)
  Lemma6Solution s;
  s.regime = classify(n1, n2, p);
  switch (s.regime) {
    case Regime::kOneD:
      s.x1 = n2 * std::sqrt(tri2) / p;
      s.x2 = tri2 / 2.0;
      break;
    case Regime::kTwoD:
      s.x1 = n2 * std::sqrt(tri2 / p);
      s.x2 = tri2 / (2.0 * p);
      break;
    case Regime::kThreeD: {
      const double t = std::pow(tri2 * n2 / p, 2.0 / 3.0);
      s.x1 = t;
      s.x2 = 0.5 * t;
      break;
    }
  }
  return s;
}

Lemma6Solution solve_lemma6_numeric(double n1, double n2, double p,
                                    int grid_points) {
  const double tri2 = n1 * (n1 - 1.0);
  const double lo = tri2 / (2.0 * p);
  const double hi = tri2 / 2.0;
  const double kprod = tri2 * n2 / (std::sqrt(2.0) * p);
  const double k2 = kprod * kprod;  // x1²·x2 >= k2 must bind at the optimum
  Lemma6Solution best;
  best.x1 = std::sqrt(k2 / lo);
  best.x2 = lo;
  double best_obj = best.objective();
  // Log sweep over the feasible x2 interval; x1 sits on the product
  // constraint boundary (raising x1 above it only worsens the objective).
  const double ratio = hi / lo;
  for (int g = 0; g <= grid_points; ++g) {
    const double x2 =
        lo * std::pow(ratio, static_cast<double>(g) / grid_points);
    const double x1 = std::sqrt(k2 / x2);
    if (x1 + x2 < best_obj) {
      best_obj = x1 + x2;
      best.x1 = x1;
      best.x2 = x2;
    }
  }
  best.regime = classify(n1, n2, p);
  return best;
}

bool verify_kkt(double n1, double n2, double p, const Lemma6Solution& s,
                double tol, std::string* why) {
  auto fail = [&](const std::string& m) {
    if (why != nullptr) *why = m;
    return false;
  };
  const double tri2 = n1 * (n1 - 1.0);
  const double kprod = tri2 * n2 / (std::sqrt(2.0) * p);
  const double k2 = kprod * kprod;
  const double lo = tri2 / (2.0 * p);
  const double hi = tri2 / 2.0;
  const double x1 = s.x1, x2 = s.x2;

  // Primal feasibility (relative slack).
  const double g1 = k2 - x1 * x1 * x2;
  if (g1 > tol * k2) return fail("primal: product constraint violated");
  if (x1 < -tol) return fail("primal: x1 < 0");
  if (lo - x2 > tol * lo) return fail("primal: x2 below lower bound");
  if (x2 - hi > tol * hi) return fail("primal: x2 above upper bound");

  // Dual variables: mu2 = 0 (x1 > 0 at every optimum); mu1 from the first
  // stationarity equation; mu3/mu4 from the second, depending on which x2
  // constraint binds.
  const double mu1 = 1.0 / (2.0 * x1 * x2);
  double mu3 = 0.0, mu4 = 0.0;
  const bool at_lo = std::abs(x2 - lo) <= tol * lo;
  const bool at_hi = std::abs(x2 - hi) <= tol * hi;
  const double resid2 = 1.0 - mu1 * x1 * x1;  // = mu3 - mu4 required
  // When both bounds coincide (P = 1) either multiplier may absorb the
  // residual; pick the sign-feasible one.
  if (at_hi && (!at_lo || resid2 <= tol)) {
    mu4 = -resid2;
  } else if (at_lo) {
    mu3 = resid2;
  } else {
    // Interior in x2: stationarity must hold with mu3 = mu4 = 0.
    if (std::abs(resid2) > tol) {
      return fail("stationarity: interior x2 but 1 - mu1*x1^2 != 0");
    }
  }
  if (mu1 < -tol || mu3 < -tol || mu4 < -tol) {
    return fail("dual feasibility: negative multiplier");
  }
  // Complementary slackness: mu1 = 1/(2·x1·x2) is strictly positive by
  // construction, so the product constraint must be tight (checked in
  // relative terms — mu1 itself can be numerically tiny).
  if (std::abs(g1) > tol * k2) {
    return fail("complementary slackness: mu1 > 0 but constraint slack");
  }
  if (mu3 > tol && !at_lo) return fail("slackness: mu3 > 0 but x2 > lo");
  if (mu4 > tol && !at_hi) return fail("slackness: mu4 > 0 but x2 < hi");
  return true;
}

SyrkBound syrk_lower_bound(std::uint64_t n1, std::uint64_t n2,
                           std::uint64_t p) {
  PARSYRK_REQUIRE(n1 >= 2 && n2 >= 1 && p >= 1,
                  "bound needs n1 >= 2, n2 >= 1, P >= 1");
  const double d1 = static_cast<double>(n1);
  const double d2 = static_cast<double>(n2);
  const double dp = static_cast<double>(p);
  const double tri2 = d1 * (d1 - 1.0);
  SyrkBound b;
  b.solution = solve_lemma6(d1, d2, dp);
  b.regime = b.solution.regime;
  switch (b.regime) {
    case Regime::kOneD:
      b.w = d1 * d2 / dp + tri2 / 2.0;
      break;
    case Regime::kTwoD:
      b.w = d1 * d2 / std::sqrt(dp) + tri2 / (2.0 * dp);
      break;
    case Regime::kThreeD:
      b.w = 1.5 * std::pow(tri2 * d2 / dp, 2.0 / 3.0);
      break;
  }
  const double resident = (tri2 / 2.0 + d1 * d2) / dp;
  b.communicated = std::max(0.0, b.w - resident);
  return b;
}

GemmProjections gemm_projection_bound(double m, double n, double k,
                                      double p) {
  PARSYRK_REQUIRE(m >= 1 && n >= 1 && k >= 1 && p >= 1,
                  "gemm projection bound needs positive dimensions");
  const double l2 = std::pow(m * n * k / p, 2.0);  // product constraint RHS
  // Arrays and their caps, tracked as (cap, which) so the cascade can
  // clamp in increasing cap order.
  struct Var {
    double cap;
    int which;  // 0: A (mk), 1: B (kn), 2: C (mn)
    double value = 0.0;
  };
  std::array<Var, 3> v = {Var{m * k, 0}, Var{k * n, 1}, Var{m * n, 2}};
  std::sort(v.begin(), v.end(),
            [](const Var& a, const Var& b) { return a.cap < b.cap; });

  GemmProjections out;
  // Interior: all equal to L^{2/3}.
  const double sym = std::pow(l2, 1.0 / 3.0);
  if (sym <= v[0].cap) {
    v[0].value = v[1].value = v[2].value = sym;
  } else {
    // Clamp the smallest cap; remaining two equal at sqrt(L²/cap).
    v[0].value = v[0].cap;
    out.clamped = 1;
    const double pair = std::sqrt(l2 / v[0].cap);
    if (pair <= v[1].cap) {
      v[1].value = v[2].value = pair;
    } else {
      // Clamp the two smallest caps; the last takes the residual.
      v[1].value = v[1].cap;
      out.clamped = 2;
      const double rest = l2 / (v[0].cap * v[1].cap);
      // If even the residual exceeds the last cap, the computation fits in
      // the arrays (P below 1-copy territory); cap it — W = total data.
      if (rest > v[2].cap) {
        v[2].value = v[2].cap;
        out.clamped = 3;
      } else {
        v[2].value = rest;
      }
    }
  }
  for (const auto& var : v) {
    if (var.which == 0) out.x1 = var.value;
    if (var.which == 1) out.x2 = var.value;
    if (var.which == 2) out.x3 = var.value;
  }
  return out;
}

GemmBound gemm_lower_bound(std::uint64_t n1, std::uint64_t n2,
                           std::uint64_t p) {
  // Al Daas et al. SPAA '22, specialised to m = n = n1, k = n2. The three
  // regimes mirror the SYRK ones; the boundary thresholds P = n2/n1 and
  // P = n1²/n2² make W continuous in P.
  const double d1 = static_cast<double>(n1);
  const double d2 = static_cast<double>(n2);
  const double dp = static_cast<double>(p);
  GemmBound b;
  if (d1 <= d2 && dp <= d2 / d1) {
    b.regime = Regime::kOneD;
    b.w = 2.0 * d1 * d2 / dp + d1 * d1;
  } else if (d1 > d2 && dp <= (d1 * d1) / (d2 * d2)) {
    b.regime = Regime::kTwoD;
    b.w = 2.0 * d1 * d2 / std::sqrt(dp) + d1 * d1 / dp;
  } else {
    b.regime = Regime::kThreeD;
    b.w = 3.0 * std::pow(d1 * d1 * d2 / dp, 2.0 / 3.0);
  }
  const double resident = (2.0 * d1 * d2 + d1 * d1) / dp;
  b.communicated = std::max(0.0, b.w - resident);
  return b;
}

}  // namespace parsyrk::bounds
