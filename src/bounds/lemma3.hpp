// Lemma 3 — the symmetric extension of the Loomis–Whitney inequality — and
// the classical Loomis–Whitney inequality it builds on, as executable
// checkers over explicit point sets. Used by the E11 property sweep and the
// unit tests to validate the geometric core of the lower-bound proof.
#pragma once

#include <cstdint>
#include <vector>

namespace parsyrk::bounds {

struct Point3 {
  std::int64_t i = 0;
  std::int64_t j = 0;
  std::int64_t k = 0;

  auto operator<=>(const Point3&) const = default;
};

/// Sizes of the three axis projections of a point set (duplicates removed).
struct Projections {
  std::size_t phi_i = 0;        // |{(j,k)}|
  std::size_t phi_j = 0;        // |{(i,k)}|
  std::size_t phi_k = 0;        // |{(i,j)}|
  std::size_t phi_i_union_j = 0;  // |phi_i(V) ∪ phi_j(V)| (as (a,k) pairs)
};

Projections project(const std::vector<Point3>& v);

/// Classical Loomis–Whitney: |V| <= sqrt(|phi_i|·|phi_j|·|phi_k|).
bool loomis_whitney_holds(const std::vector<Point3>& v);

/// Lemma 3 requires every point to satisfy j < i (the strict lower triangle
/// of the SYRK iteration space). Returns true when
///   2|V| <= |phi_i ∪ phi_j| · sqrt(2|phi_k|).
/// Aborts if a point violates j < i.
bool lemma3_holds(const std::vector<Point3>& v);

/// The ratio rhs/lhs of Lemma 3 (>= 1 iff the lemma holds); 0 for empty V.
/// A ratio near 1 means the point set is extremal — triangle blocks achieve
/// this, which is why the distribution in §5.2 is communication-optimal.
double lemma3_tightness(const std::vector<Point3>& v);

/// The iteration points of a triangle block: all (i, j, k) with i, j drawn
/// from `rows` (i > j) and 0 <= k < depth. These are the extremal sets for
/// Lemma 3.
std::vector<Point3> triangle_block_points(
    const std::vector<std::int64_t>& rows, std::int64_t depth);

/// All iteration points of a full SYRK of size n1×n2 (the triangular prism
/// of Fig. 1, strict lower part): (i, j, k) with 0 <= j < i < n1,
/// 0 <= k < n2.
std::vector<Point3> syrk_iteration_space(std::int64_t n1, std::int64_t n2);

/// Lemma 5 as an executable check: a processor performing |V| of the
/// n1(n1−1)n2/2 strict-lower multiplications must access at least
/// |V|/(n1−1) elements of A and contribute to at least |V|/n2 elements of
/// C. Returns true when the projections of V satisfy both inequalities
/// (they always do — the tests sweep random V to confirm, and the
/// harnesses use the quantities directly).
struct Lemma5Check {
  double a_elements = 0.0;      // |ϕ_i(V) ∪ ϕ_j(V)|
  double c_elements = 0.0;      // |ϕ_k(V)|
  double a_lower_bound = 0.0;   // |V| / (n1 − 1)
  double c_lower_bound = 0.0;   // |V| / n2
  bool holds() const {
    return a_elements >= a_lower_bound - 1e-9 &&
           c_elements >= c_lower_bound - 1e-9;
  }
};

Lemma5Check lemma5_check(const std::vector<Point3>& v, std::int64_t n1,
                         std::int64_t n2);

}  // namespace parsyrk::bounds
