#include "bounds/exhaustive.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "bounds/syrk_bounds.hpp"
#include "support/check.hpp"

namespace parsyrk::bounds {

namespace {

struct SearchState {
  std::vector<std::pair<int, int>> columns;  // (i, j) pairs, j < i
  int procs = 0;
  std::size_t min_count = 0, max_count = 0;
  double n2 = 0.0;
  double best = std::numeric_limits<double>::infinity();
  std::uint64_t leaves = 0;

  // Per-processor state.
  std::vector<std::uint32_t> row_mask;  // bitmask of touched row indices
  std::vector<std::size_t> count;       // columns assigned

  double data_of(int p) const {
    return static_cast<double>(__builtin_popcount(row_mask[p])) * n2 +
           static_cast<double>(count[p]);
  }

  void dfs(std::size_t idx, double current_max) {
    if (current_max >= best) return;  // cannot improve
    if (idx == columns.size()) {
      bool balanced = true;
      for (int p = 0; p < procs; ++p) {
        if (count[p] < min_count || count[p] > max_count) balanced = false;
      }
      if (balanced) {
        ++leaves;
        best = std::min(best, current_max);
      }
      return;
    }
    const auto [i, j] = columns[idx];
    const std::size_t remaining = columns.size() - idx;
    for (int p = 0; p < procs; ++p) {
      if (count[p] >= max_count) continue;
      // Feasibility: the others must still be able to reach min_count.
      std::size_t deficit = 0;
      for (int q = 0; q < procs; ++q) {
        const std::size_t c = q == p ? count[q] + 1 : count[q];
        deficit += c < min_count ? min_count - c : 0;
      }
      if (deficit > remaining - 1) continue;
      // Symmetry: the first column always goes to processor 0.
      if (idx == 0 && p != 0) break;
      const auto saved_mask = row_mask[p];
      row_mask[p] |= (1u << i) | (1u << j);
      ++count[p];
      dfs(idx + 1, std::max(current_max, data_of(p)));
      --count[p];
      row_mask[p] = saved_mask;
    }
  }
};

}  // namespace

ExhaustiveResult exhaustive_min_max_data(std::uint64_t n1, std::uint64_t n2,
                                         int procs) {
  PARSYRK_REQUIRE(n1 >= 2 && n1 <= 16, "exhaustive search needs 2 <= n1 <= 16");
  PARSYRK_REQUIRE(procs >= 1 && procs <= 4,
                  "exhaustive search needs 1 <= procs <= 4");
  SearchState st;
  st.procs = procs;
  st.n2 = static_cast<double>(n2);
  for (std::uint64_t i = 1; i < n1; ++i) {
    for (std::uint64_t j = 0; j < i; ++j) {
      st.columns.emplace_back(static_cast<int>(i), static_cast<int>(j));
    }
  }
  const std::size_t m = st.columns.size();
  st.min_count = m / procs;
  st.max_count = (m + procs - 1) / procs;
  st.row_mask.assign(procs, 0);
  st.count.assign(procs, 0);
  st.dfs(0, 0.0);

  ExhaustiveResult out;
  out.min_max_data = st.best;
  out.schedules = st.leaves;
  out.lemma6_optimum = solve_lemma6(static_cast<double>(n1),
                                    static_cast<double>(n2),
                                    static_cast<double>(procs))
                           .objective();
  return out;
}

}  // namespace parsyrk::bounds
