// Exhaustive lower-bound verification on tiny instances.
//
// Theorem 1 says every load-balanced schedule forces some processor to
// access at least x1* + x2* words (Lemma 6). For instances small enough to
// enumerate *every* balanced assignment of the strict-lower iteration
// columns to processors, we can compute the true optimum
//   min over schedules of max over processors of (|rows touched|·n2 + |C
//   entries owned|)
// and confirm it dominates the Lemma 6 value — an end-to-end empirical
// check of the bound machinery, independent of the KKT algebra.
#pragma once

#include <cstdint>

namespace parsyrk::bounds {

struct ExhaustiveResult {
  double min_max_data = 0.0;        // best achievable busiest-processor data
  std::uint64_t schedules = 0;      // leaves explored (after pruning)
  double lemma6_optimum = 0.0;      // x1* + x2* for comparison
};

/// Branch-and-bound over all assignments of the n1(n1−1)/2 strict-lower
/// (i, j) columns to `procs` processors where every processor receives
/// floor(m/P) to ceil(m/P) columns. Feasible only for tiny n1/procs
/// (n1 <= 8, procs <= 3 stay under a second).
ExhaustiveResult exhaustive_min_max_data(std::uint64_t n1, std::uint64_t n2,
                                         int procs);

}  // namespace parsyrk::bounds
