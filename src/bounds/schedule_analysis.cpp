#include "bounds/schedule_analysis.hpp"

#include <algorithm>
#include <memory>
#include <set>

#include "bounds/syrk_bounds.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace parsyrk::bounds {

ScheduleStats analyze_column_schedule(std::uint64_t n1, std::uint64_t n2,
                                      int procs,
                                      const ColumnAssignment& assign) {
  PARSYRK_REQUIRE(procs >= 1, "need at least one processor");
  std::vector<std::set<std::uint64_t>> rows(procs);  // ϕ_i ∪ ϕ_j row indices
  std::vector<std::uint64_t> c_count(procs, 0);      // |ϕ_k|
  std::vector<std::uint64_t> mults(procs, 0);        // |F_p|
  for (std::uint64_t i = 1; i < n1; ++i) {
    for (std::uint64_t j = 0; j < i; ++j) {
      const int p = assign(i, j);
      PARSYRK_CHECK_MSG(p >= 0 && p < procs, "assignment out of range at (",
                        i, ",", j, "): ", p);
      rows[p].insert(i);
      rows[p].insert(j);
      c_count[p] += 1;
      mults[p] += n2;
    }
  }
  ScheduleStats s;
  s.procs = procs;
  std::uint64_t total_mults = 0;
  for (int p = 0; p < procs; ++p) {
    const std::uint64_t a_elems = rows[p].size() * n2;
    s.max_a_elements = std::max(s.max_a_elements, a_elems);
    s.max_c_elements = std::max(s.max_c_elements, c_count[p]);
    s.max_data = std::max(s.max_data, a_elems + c_count[p]);
    s.max_mults = std::max(s.max_mults, mults[p]);
    total_mults += mults[p];
  }
  s.balance = static_cast<double>(s.max_mults) /
              (static_cast<double>(total_mults) / procs);
  const auto opt = solve_lemma6(static_cast<double>(n1),
                                static_cast<double>(n2),
                                static_cast<double>(procs));
  s.lemma6_optimum = opt.objective();
  s.data_vs_optimum = static_cast<double>(s.max_data) / s.lemma6_optimum;
  return s;
}

ScheduleStats analyze_point_schedule(std::uint64_t n1, std::uint64_t n2,
                                     int procs,
                                     const PointAssignment& assign) {
  PARSYRK_REQUIRE(procs >= 1, "need at least one processor");
  std::vector<std::set<std::uint64_t>> a_pairs(procs);  // (row, k) encoded
  std::vector<std::set<std::uint64_t>> c_pairs(procs);  // (i, j) encoded
  std::vector<std::uint64_t> mults(procs, 0);
  for (std::uint64_t i = 1; i < n1; ++i) {
    for (std::uint64_t j = 0; j < i; ++j) {
      for (std::uint64_t k = 0; k < n2; ++k) {
        const int p = assign(i, j, k);
        PARSYRK_CHECK_MSG(p >= 0 && p < procs,
                          "assignment out of range at (", i, ",", j, ",", k,
                          "): ", p);
        a_pairs[p].insert(i * n2 + k);
        a_pairs[p].insert(j * n2 + k);
        c_pairs[p].insert(i * n1 + j);
        mults[p] += 1;
      }
    }
  }
  ScheduleStats s;
  s.procs = procs;
  std::uint64_t total = 0;
  for (int p = 0; p < procs; ++p) {
    const std::uint64_t a = a_pairs[p].size();
    const std::uint64_t c = c_pairs[p].size();
    s.max_a_elements = std::max(s.max_a_elements, a);
    s.max_c_elements = std::max(s.max_c_elements, c);
    s.max_data = std::max(s.max_data, a + c);
    s.max_mults = std::max(s.max_mults, mults[p]);
    total += mults[p];
  }
  s.balance = static_cast<double>(s.max_mults) /
              (static_cast<double>(total) / procs);
  const auto opt = solve_lemma6(static_cast<double>(n1),
                                static_cast<double>(n2),
                                static_cast<double>(procs));
  s.lemma6_optimum = opt.objective();
  s.data_vs_optimum = static_cast<double>(s.max_data) / s.lemma6_optimum;
  return s;
}

PointAssignment triangle_3d_assignment(
    const dist::TriangleBlockDistribution& d, std::uint64_t n1,
    std::uint64_t n2, std::uint64_t p2) {
  PARSYRK_REQUIRE(n1 % d.num_block_rows() == 0,
                  "triangle assignment needs n1 divisible by c²");
  const std::uint64_t nb = n1 / d.num_block_rows();
  const std::uint64_t p1 = d.num_procs();
  return [&d, nb, n2, p1, p2](std::uint64_t i, std::uint64_t j,
                              std::uint64_t k) {
    const std::uint64_t bi = i / nb;
    const std::uint64_t bj = j / nb;
    const std::uint64_t owner = bi == bj ? d.owner_diagonal(bi)
                                         : d.owner_off_diagonal(bi, bj);
    const std::uint64_t slice = k * p2 / n2;
    return static_cast<int>(owner + p1 * slice);
  };
}

PointAssignment grid_3d_assignment(std::uint64_t n1, std::uint64_t n2,
                                   int grid_r, int slices) {
  return [n1, n2, grid_r, slices](std::uint64_t i, std::uint64_t j,
                                  std::uint64_t k) {
    const auto gi = static_cast<int>(i * grid_r / n1);
    const auto gj = static_cast<int>(j * grid_r / n1);
    const auto gk = static_cast<int>(k * slices / n2);
    return (gi * grid_r + gj) + grid_r * grid_r * gk;
  };
}

ColumnAssignment triangle_block_assignment(
    const dist::TriangleBlockDistribution& d, std::uint64_t n1) {
  PARSYRK_REQUIRE(n1 % d.num_block_rows() == 0,
                  "triangle assignment needs n1 divisible by c²");
  const std::uint64_t nb = n1 / d.num_block_rows();
  return [&d, nb](std::uint64_t i, std::uint64_t j) {
    const std::uint64_t bi = i / nb;
    const std::uint64_t bj = j / nb;
    return static_cast<int>(bi == bj ? d.owner_diagonal(bi)
                                     : d.owner_off_diagonal(bi, bj));
  };
}

ColumnAssignment block_row_assignment(std::uint64_t n1, int procs) {
  // Row r contributes r lower-triangle columns; cut rows so each processor
  // gets ~area/P. Precompute the row → proc map.
  const double total = static_cast<double>(n1) * (n1 - 1) / 2.0;
  auto owner = std::make_shared<std::vector<int>>(n1, procs - 1);
  double acc = 0.0;
  int p = 0;
  for (std::uint64_t i = 0; i < n1; ++i) {
    (*owner)[i] = std::min(p, procs - 1);
    acc += static_cast<double>(i);
    if (acc >= total * (p + 1) / procs) ++p;
  }
  return [owner](std::uint64_t i, std::uint64_t /*j*/) {
    return (*owner)[i];
  };
}

ColumnAssignment grid_assignment(std::uint64_t n1, int grid_r) {
  return [n1, grid_r](std::uint64_t i, std::uint64_t j) {
    const auto gi = static_cast<int>(i * grid_r / n1);
    const auto gj = static_cast<int>(j * grid_r / n1);
    return gi * grid_r + gj;
  };
}

ColumnAssignment cyclic_assignment(int procs) {
  return [procs](std::uint64_t i, std::uint64_t j) {
    return static_cast<int>((i + j) % static_cast<std::uint64_t>(procs));
  };
}

ColumnAssignment random_assignment(int procs, std::uint64_t seed) {
  return [procs, seed](std::uint64_t i, std::uint64_t j) {
    // Stateless hash so the assignment is a pure function of (i, j).
    Rng rng(seed ^ (i * 0x9E3779B97F4A7C15ULL) ^ (j + 0x1234567ULL));
    return static_cast<int>(rng.next_u64() %
                            static_cast<std::uint64_t>(procs));
  };
}

}  // namespace parsyrk::bounds
