// Lemma 4: g0(x) = L − x1²·x2 is quasiconvex on the positive quadrant.
//
// Executable form of the definitions in §3.3 (Defs. 1–2), used by tests to
// confirm the quasiconvexity argument that makes the KKT conditions
// sufficient (Lemma 2).
#pragma once

#include <array>

namespace parsyrk::bounds {

/// g0 and its gradient for a fixed constant L.
struct G0 {
  double l = 0.0;

  double value(double x1, double x2) const { return l - x1 * x1 * x2; }
  std::array<double, 2> gradient(double x1, double x2) const {
    return {-2.0 * x1 * x2, -x1 * x1};
  }
};

/// Checks Def. 2 at a pair of points: g(y) <= g(x) must imply
/// <grad g(x), y - x> <= 0. Returns true if the implication holds (or its
/// premise is false) at (x, y).
bool quasiconvex_pair_holds(const G0& g, double x1, double x2, double y1,
                            double y2, double tol = 1e-9);

/// Checks Def. 1 (convexity) of f(x) = x1 + x2 at a pair of points —
/// trivially true; present so the test suite exercises the exact hypothesis
/// set of Lemma 2.
bool affine_objective_convex_pair(double x1, double x2, double y1, double y2);

}  // namespace parsyrk::bounds
