#include "bounds/lemma3.hpp"

#include <cmath>
#include <set>
#include <utility>

#include "support/check.hpp"

namespace parsyrk::bounds {

Projections project(const std::vector<Point3>& v) {
  std::set<std::pair<std::int64_t, std::int64_t>> pi, pj, pk, pij;
  for (const auto& p : v) {
    pi.emplace(p.j, p.k);
    pj.emplace(p.i, p.k);
    pk.emplace(p.i, p.j);
    // phi_i and phi_j both live in (row-index, k) space; their union is the
    // set of A entries the computation touches.
    pij.emplace(p.j, p.k);
    pij.emplace(p.i, p.k);
  }
  return {pi.size(), pj.size(), pk.size(), pij.size()};
}

bool loomis_whitney_holds(const std::vector<Point3>& v) {
  std::set<Point3> unique(v.begin(), v.end());
  const auto pr = project(v);
  const double rhs = std::sqrt(static_cast<double>(pr.phi_i) *
                               static_cast<double>(pr.phi_j) *
                               static_cast<double>(pr.phi_k));
  return static_cast<double>(unique.size()) <= rhs * (1.0 + 1e-12);
}

bool lemma3_holds(const std::vector<Point3>& v) {
  return lemma3_tightness(v) >= 1.0 - 1e-12;
}

double lemma3_tightness(const std::vector<Point3>& v) {
  if (v.empty()) return 0.0;
  std::set<Point3> unique;
  for (const auto& p : v) {
    PARSYRK_CHECK_MSG(p.j < p.i, "lemma 3 point set must satisfy j < i; got (",
                      p.i, ",", p.j, ",", p.k, ")");
    unique.insert(p);
  }
  const auto pr = project(v);
  const double lhs = 2.0 * static_cast<double>(unique.size());
  const double rhs = static_cast<double>(pr.phi_i_union_j) *
                     std::sqrt(2.0 * static_cast<double>(pr.phi_k));
  return rhs / lhs;
}

std::vector<Point3> triangle_block_points(
    const std::vector<std::int64_t>& rows, std::int64_t depth) {
  std::vector<Point3> pts;
  for (std::size_t a = 0; a < rows.size(); ++a) {
    for (std::size_t b = 0; b < rows.size(); ++b) {
      if (rows[a] <= rows[b]) continue;
      for (std::int64_t k = 0; k < depth; ++k) {
        pts.push_back({rows[a], rows[b], k});
      }
    }
  }
  return pts;
}

Lemma5Check lemma5_check(const std::vector<Point3>& v, std::int64_t n1,
                         std::int64_t n2) {
  PARSYRK_CHECK(n1 >= 2 && n2 >= 1);
  std::set<Point3> unique;
  for (const auto& p : v) {
    PARSYRK_CHECK_MSG(p.j < p.i && p.i < n1 && p.j >= 0 && p.k >= 0 &&
                          p.k < n2,
                      "lemma 5 point out of the strict-lower prism");
    unique.insert(p);
  }
  const auto pr = project(v);
  Lemma5Check out;
  out.a_elements = static_cast<double>(pr.phi_i_union_j);
  out.c_elements = static_cast<double>(pr.phi_k);
  out.a_lower_bound =
      static_cast<double>(unique.size()) / static_cast<double>(n1 - 1);
  out.c_lower_bound =
      static_cast<double>(unique.size()) / static_cast<double>(n2);
  return out;
}

std::vector<Point3> syrk_iteration_space(std::int64_t n1, std::int64_t n2) {
  std::vector<Point3> pts;
  pts.reserve(static_cast<std::size_t>(n1 * (n1 - 1) / 2 * n2));
  for (std::int64_t i = 0; i < n1; ++i) {
    for (std::int64_t j = 0; j < i; ++j) {
      for (std::int64_t k = 0; k < n2; ++k) pts.push_back({i, j, k});
    }
  }
  return pts;
}

}  // namespace parsyrk::bounds
