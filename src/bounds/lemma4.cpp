#include "bounds/lemma4.hpp"

namespace parsyrk::bounds {

bool quasiconvex_pair_holds(const G0& g, double x1, double x2, double y1,
                            double y2, double tol) {
  if (g.value(y1, y2) > g.value(x1, x2)) return true;  // premise false
  const auto grad = g.gradient(x1, x2);
  const double inner = grad[0] * (y1 - x1) + grad[1] * (y2 - x2);
  return inner <= tol;
}

bool affine_objective_convex_pair(double x1, double x2, double y1, double y2) {
  // f(y) >= f(x) + <grad f, y - x> holds with equality for affine f.
  const double lhs = y1 + y2;
  const double rhs = (x1 + x2) + (y1 - x1) + (y2 - x2);
  return lhs >= rhs - 1e-12;
}

}  // namespace parsyrk::bounds
