// Communication lower bounds for SYR2K (C = A·Bᵀ + B·Aᵀ), derived with the
// paper's machinery — §6 names SYR2K as the first target for extending the
// approach. Applying Lemma 3 to the A-projections of the pair-iteration set
// (and, by symmetry, to the B-projections) and re-running the Lemma 6
// optimization with objective 2·x1 + x2 gives three cases mirroring
// Theorem 1:
//   case 1 (n1 <= n2, P <= 2n2/√(n1(n1−1))):  W = 2n1n2/P + n1(n1−1)/2
//   case 2 (n1 >  n2, P <= n1(n1−1)/(4n2²)):  W = 2n1n2/√P + n1(n1−1)/2P
//   case 3 (otherwise):            W = 3·(n1(n1−1)n2/(√2·P))^{2/3}
// The triangle-block algorithms in core/syr2k.hpp attain these leading
// constants, which is the empirical evidence the E14 harness reports.
#pragma once

#include <cstdint>

#include "bounds/syrk_bounds.hpp"

namespace parsyrk::bounds {

struct Syr2kBound {
  Regime regime = Regime::kThreeD;
  double w = 0.0;             // data accessed by the busiest rank
  double communicated = 0.0;  // w minus resident (A, B, lower C over P)
};

Syr2kBound syr2k_lower_bound(std::uint64_t n1, std::uint64_t n2,
                             std::uint64_t p);

}  // namespace parsyrk::bounds
