// Schedule analysis: evaluates an arbitrary assignment of SYRK iteration
// points to processors against the Lemma 6 optimum.
//
// For an assignment F_p ⊆ {(i,j,k) : j < i} per processor p, the data a
// processor must access is |ϕ_i(F_p) ∪ ϕ_j(F_p)| elements of A plus
// |ϕ_k(F_p)| elements of C — the exact quantities the lower-bound proof
// (Theorem 1) projects. Comparing canned assignments (triangle-block,
// block-row, cyclic, random) shows *why* the triangle-block distribution is
// the one that attains the bound: it minimizes the A-projection for a given
// C footprint (Lemma 3 tightness).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "distribution/triangle_block.hpp"

namespace parsyrk::bounds {

/// Assignment of a strict-lower iteration column (i, j) (all k values move
/// together when the k dimension is unsplit) to a processor.
using ColumnAssignment =
    std::function<int(std::uint64_t i, std::uint64_t j)>;

struct ScheduleStats {
  std::uint64_t procs = 0;
  // Per the busiest processor:
  std::uint64_t max_a_elements = 0;  // |ϕ_i ∪ ϕ_j| · n2
  std::uint64_t max_c_elements = 0;  // |ϕ_k|
  std::uint64_t max_data = 0;        // their sum
  std::uint64_t max_mults = 0;       // |F_p|
  double balance = 0.0;              // max_mults / (total/P); 1 is perfect
  // The Lemma 6 optimum for this (n1, n2, P): x1 + x2.
  double lemma6_optimum = 0.0;
  double data_vs_optimum = 0.0;  // max_data / lemma6_optimum
};

/// Analyzes a k-unsplit schedule of the n1×n2 SYRK over `procs` processors.
ScheduleStats analyze_column_schedule(std::uint64_t n1, std::uint64_t n2,
                                      int procs,
                                      const ColumnAssignment& assign);

/// Point-level assignment for k-split (3D) schedules: every iteration
/// (i, j, k) of the strict-lower prism gets an owner.
using PointAssignment =
    std::function<int(std::uint64_t i, std::uint64_t j, std::uint64_t k)>;

/// Analyzes a fully 3D schedule. A-data per processor is the number of
/// distinct (row, k) pairs among {(i,k), (j,k)} of its points (the
/// ϕ_i ∪ ϕ_j projection of the Theorem 1 proof); C-data is |ϕ_k|.
/// O(points) time and memory — keep n1³-ish sizes modest.
ScheduleStats analyze_point_schedule(std::uint64_t n1, std::uint64_t n2,
                                     int procs,
                                     const PointAssignment& assign);

/// The 3D algorithm's computation assignment: the triangle-block owner of
/// block (i/nb, j/nb) within a slice, times the k-slice index (p2 slices).
/// procs must equal d.num_procs()·p2; n1 % c² == 0.
PointAssignment triangle_3d_assignment(
    const dist::TriangleBlockDistribution& d, std::uint64_t n1,
    std::uint64_t n2, std::uint64_t p2);

/// An r×r×t block grid over (i, j, k) — the GEMM-style 3D layout.
PointAssignment grid_3d_assignment(std::uint64_t n1, std::uint64_t n2,
                                   int grid_r, int slices);

/// Canned assignments for the E16 ablation. All cover every (i, j), j < i,
/// exactly once.
/// Triangle-block (paper §5.2): requires n1 % c² == 0 and procs == c(c+1).
ColumnAssignment triangle_block_assignment(
    const dist::TriangleBlockDistribution& d, std::uint64_t n1);
/// Contiguous block rows of C, balanced by lower-triangle area.
ColumnAssignment block_row_assignment(std::uint64_t n1, int procs);
/// Square-ish 2D grid over (i, j) blocks (the ScaLAPACK-style layout);
/// procs must be r² for the given r.
ColumnAssignment grid_assignment(std::uint64_t n1, int grid_r);
/// Element-cyclic: (i + j) mod P.
ColumnAssignment cyclic_assignment(int procs);
/// Seeded uniform-random owner per (i, j).
ColumnAssignment random_assignment(int procs, std::uint64_t seed);

}  // namespace parsyrk::bounds
