#include "sparse/csr.hpp"

#include <algorithm>
#include <tuple>

#include "support/check.hpp"

namespace parsyrk::sparse {

Csr Csr::from_triplets(
    std::size_t rows, std::size_t cols,
    std::vector<std::tuple<std::size_t, std::size_t, double>> triplets) {
  for (const auto& [r, c, v] : triplets) {
    PARSYRK_REQUIRE(r < rows && c < cols, "triplet (", r, ",", c,
                    ") out of a ", rows, "x", cols, " matrix");
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const auto& a, const auto& b) {
              return std::tie(std::get<0>(a), std::get<1>(a)) <
                     std::tie(std::get<0>(b), std::get<1>(b));
            });
  Csr m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  for (std::size_t t = 0; t < triplets.size(); ++t) {
    const auto& [r, c, v] = triplets[t];
    if (!m.col_idx_.empty() && t > 0 &&
        std::get<0>(triplets[t - 1]) == r &&
        std::get<1>(triplets[t - 1]) == c) {
      m.values_.back() += v;  // sum duplicates
      continue;
    }
    m.col_idx_.push_back(c);
    m.values_.push_back(v);
    ++m.row_ptr_[r + 1];
  }
  for (std::size_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

Csr Csr::from_dense(const ConstMatrixView& d) {
  std::vector<std::tuple<std::size_t, std::size_t, double>> trip;
  for (std::size_t i = 0; i < d.rows(); ++i) {
    for (std::size_t j = 0; j < d.cols(); ++j) {
      if (d(i, j) != 0.0) trip.emplace_back(i, j, d(i, j));
    }
  }
  return from_triplets(d.rows(), d.cols(), std::move(trip));
}

Matrix Csr::to_dense() const {
  Matrix d(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t t = row_ptr_[r]; t < row_ptr_[r + 1]; ++t) {
      d(r, col_idx_[t]) += values_[t];
    }
  }
  return d;
}

Csr Csr::transpose() const {
  Csr t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(cols_ + 1, 0);
  for (std::size_t c : col_idx_) ++t.row_ptr_[c + 1];
  for (std::size_t c = 0; c < cols_; ++c) t.row_ptr_[c + 1] += t.row_ptr_[c];
  t.col_idx_.resize(nnz());
  t.values_.resize(nnz());
  std::vector<std::size_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      const std::size_t c = col_idx_[p];
      t.col_idx_[cursor[c]] = r;
      t.values_[cursor[c]] = values_[p];
      ++cursor[c];
    }
  }
  return t;
}

Csr Csr::column_slice(std::size_t c0, std::size_t width) const {
  PARSYRK_REQUIRE(c0 + width <= cols_, "column slice out of range");
  Csr s;
  s.rows_ = rows_;
  s.cols_ = width;
  s.row_ptr_.assign(rows_ + 1, 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      const std::size_t c = col_idx_[p];
      if (c >= c0 && c < c0 + width) {
        s.col_idx_.push_back(c - c0);
        s.values_.push_back(values_[p]);
        ++s.row_ptr_[r + 1];
      }
    }
  }
  for (std::size_t r = 0; r < rows_; ++r) s.row_ptr_[r + 1] += s.row_ptr_[r];
  return s;
}

void sparse_syrk_lower(const Csr& a, const MatrixView& c) {
  PARSYRK_CHECK(c.rows() == a.rows() && c.cols() == a.rows());
  // Column-wise outer products: for each column k, every pair of nonzeros
  // (i, v_i), (j, v_j) with i >= j contributes v_i·v_j to C(i, j). Work is
  // sum_k nnz_k², independent of the dense dimensions — the sparse win.
  const Csr at = a.transpose();  // rows of `at` are the columns of `a`
  for (std::size_t k = 0; k < at.rows(); ++k) {
    const std::size_t lo = at.row_ptr()[k], hi = at.row_ptr()[k + 1];
    for (std::size_t p = lo; p < hi; ++p) {
      const std::size_t i = at.col_idx()[p];
      const double vi = at.values()[p];
      for (std::size_t q = lo; q <= p; ++q) {
        c(i, at.col_idx()[q]) += vi * at.values()[q];
      }
    }
  }
}

std::uint64_t sparse_syrk_flops(const Csr& a) {
  const Csr at = a.transpose();
  std::uint64_t flops = 0;
  for (std::size_t k = 0; k < at.rows(); ++k) {
    const std::uint64_t nnz_k = at.row_ptr()[k + 1] - at.row_ptr()[k];
    flops += nnz_k * (nnz_k + 1) / 2;
  }
  return flops;
}

}  // namespace parsyrk::sparse
