// The remaining kernels §6 names: "symmetric sparse matrix times dense
// matrix" (sparse SYMM / SpMM) and "symmetric sampled dense-dense matrix
// multiplication" (SDDMM with a symmetric mask).
//
// SDDMM is the communication mirror image of sparse SYRK: there the input
// is sparse but the communicated output triangle stays dense (E23); here
// the OUTPUT is masked sparse, so the reduced volume is nnz(mask) words and
// communication shrinks with the mask (E24).
#pragma once

#include "matrix/matrix.hpp"
#include "simmpi/comm.hpp"
#include "sparse/csr.hpp"

namespace parsyrk::sparse {

/// C = S·B for a sparse symmetric S given by its lower triangle (diagonal
/// included; entries strictly above the diagonal of the stored pattern are
/// rejected) and dense B. Each stored off-diagonal (i, j, v) acts twice:
/// C_i += v·B_j and C_j += v·B_i.
Matrix sparse_symm_lower(const Csr& s_lower, const ConstMatrixView& b);

/// Symmetric SDDMM: for every stored entry (i, j) of the lower-triangular
/// mask, out(i, j) = mask(i, j) · <A row i, A row j>. Returns a CSR with
/// the mask's pattern. Cost is nnz(mask)·n2, independent of n1².
Csr sddmm_syrk(const Csr& mask_lower, const ConstMatrixView& a);

/// 1D parallel symmetric SDDMM: the k dimension (columns of A) is
/// partitioned; each rank computes partial dot products for every mask
/// entry and the nnz-length value vector is reduce-scattered — the
/// communicated volume is (1−1/P)·nnz(mask) words, shrinking with the mask
/// where sparse SYRK's stays dense.
Csr sddmm_syrk_1d(comm::World& world, const Csr& mask_lower,
                  const ConstMatrixView& a);

}  // namespace parsyrk::sparse
