#include "sparse/kernels.hpp"

#include <algorithm>

#include "distribution/block1d.hpp"
#include "support/check.hpp"

namespace parsyrk::sparse {

namespace {

void require_lower(const Csr& s) {
  PARSYRK_REQUIRE(s.rows() == s.cols(), "symmetric pattern must be square");
  for (std::size_t i = 0; i < s.rows(); ++i) {
    for (std::size_t p = s.row_ptr()[i]; p < s.row_ptr()[i + 1]; ++p) {
      PARSYRK_REQUIRE(s.col_idx()[p] <= i,
                      "pattern entry (", i, ",", s.col_idx()[p],
                      ") is above the diagonal; store the lower triangle");
    }
  }
}

/// Partial SDDMM values over columns [k0, k1) of A, in mask storage order.
std::vector<double> sddmm_partial(const Csr& mask,
                                  const ConstMatrixView& a, std::size_t k0,
                                  std::size_t k1) {
  std::vector<double> vals;
  vals.reserve(mask.nnz());
  for (std::size_t i = 0; i < mask.rows(); ++i) {
    for (std::size_t p = mask.row_ptr()[i]; p < mask.row_ptr()[i + 1]; ++p) {
      const std::size_t j = mask.col_idx()[p];
      double acc = 0.0;
      for (std::size_t k = k0; k < k1; ++k) acc += a(i, k) * a(j, k);
      vals.push_back(acc);
    }
  }
  return vals;
}

/// Rebuilds a CSR with the mask's pattern and the given values scaled by
/// the mask entries.
Csr with_values(const Csr& mask, const std::vector<double>& dots) {
  PARSYRK_CHECK(dots.size() == mask.nnz());
  std::vector<std::tuple<std::size_t, std::size_t, double>> trip;
  trip.reserve(mask.nnz());
  std::size_t t = 0;
  for (std::size_t i = 0; i < mask.rows(); ++i) {
    for (std::size_t p = mask.row_ptr()[i]; p < mask.row_ptr()[i + 1]; ++p) {
      trip.emplace_back(i, mask.col_idx()[p], mask.values()[p] * dots[t++]);
    }
  }
  return Csr::from_triplets(mask.rows(), mask.cols(), std::move(trip));
}

}  // namespace

Matrix sparse_symm_lower(const Csr& s_lower, const ConstMatrixView& b) {
  require_lower(s_lower);
  PARSYRK_REQUIRE(b.rows() == s_lower.rows(), "SYMM shapes: B needs ",
                  s_lower.rows(), " rows; got ", b.rows());
  const std::size_t m = b.cols();
  Matrix c(s_lower.rows(), m);
  for (std::size_t i = 0; i < s_lower.rows(); ++i) {
    for (std::size_t p = s_lower.row_ptr()[i]; p < s_lower.row_ptr()[i + 1];
         ++p) {
      const std::size_t j = s_lower.col_idx()[p];
      const double v = s_lower.values()[p];
      for (std::size_t t = 0; t < m; ++t) c(i, t) += v * b(j, t);
      if (j != i) {
        for (std::size_t t = 0; t < m; ++t) c(j, t) += v * b(i, t);
      }
    }
  }
  return c;
}

Csr sddmm_syrk(const Csr& mask_lower, const ConstMatrixView& a) {
  require_lower(mask_lower);
  PARSYRK_REQUIRE(a.rows() == mask_lower.rows(), "SDDMM shapes: A needs ",
                  mask_lower.rows(), " rows; got ", a.rows());
  return with_values(mask_lower, sddmm_partial(mask_lower, a, 0, a.cols()));
}

Csr sddmm_syrk_1d(comm::World& world, const Csr& mask_lower,
                  const ConstMatrixView& a) {
  require_lower(mask_lower);
  PARSYRK_REQUIRE(a.rows() == mask_lower.rows(), "SDDMM shapes: A needs ",
                  mask_lower.rows(), " rows; got ", a.rows());
  const std::size_t n2 = a.cols();
  const std::size_t nnz = mask_lower.nnz();
  std::vector<double> dots(nnz, 0.0);
  world.run([&](comm::Comm& comm) {
    const int p = comm.size();
    const int r = comm.rank();
    const std::size_t k0 = dist::chunk_begin(n2, p, r);
    const std::size_t k1 = dist::chunk_end(n2, p, r);
    auto partial = sddmm_partial(mask_lower, a, k0, k1);
    // Reduce-scatter over the nnz-length value vector — the sparse-output
    // analogue of Alg. 1's triangle reduction.
    comm.set_phase("reduce_sddmm");
    std::vector<std::size_t> sizes(p);
    for (int q = 0; q < p; ++q) sizes[q] = dist::chunk_size(nnz, p, q);
    auto mine = comm.reduce_scatter(partial, sizes);
    const std::size_t off = dist::chunk_begin(nnz, p, r);
    std::copy(mine.begin(), mine.end(), dots.begin() + off);
  });
  return with_values(mask_lower, dots);
}

}  // namespace parsyrk::sparse
