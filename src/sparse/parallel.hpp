// Parallel sparse SYRK (§6's sparse extension direction).
//
// With sparse A the *output* C = A·Aᵀ is generically dense (any two rows
// sharing one nonzero column collide), so the communication structure of
// the dense 1D algorithm carries over verbatim: partition the columns,
// multiply locally at sum_k nnz_k² cost, reduce-scatter the packed dense
// triangle. What changes is the balance point: compute shrinks with the
// squared column fill while the communicated triangle stays n1(n1+1)/2 —
// sparse SYRK goes communication-bound far earlier than dense (E23).
#pragma once

#include "matrix/matrix.hpp"
#include "simmpi/comm.hpp"
#include "sparse/csr.hpp"

namespace parsyrk::sparse {

/// How the k (column) dimension is split across ranks.
enum class ColumnSplit {
  kUniform,     // equal column counts
  kNnzBalanced  // equal per-rank sparse flops (sum of nnz_k(nnz_k+1)/2)
};

/// 1D parallel sparse SYRK; returns the full symmetric dense C.
/// The ledger records the same Reduce-Scatter as the dense Alg. 1 (phase
/// "reduce_C"), making the sparse-vs-dense communication comparison direct.
Matrix sparse_syrk_1d(comm::World& world, const Csr& a,
                      ColumnSplit split = ColumnSplit::kNnzBalanced);

/// The per-rank column ranges a split produces (exposed for tests and the
/// E23 harness): entry r is [begin_r, end_r).
std::vector<std::pair<std::size_t, std::size_t>> column_ranges(
    const Csr& a, int parts, ColumnSplit split);

}  // namespace parsyrk::sparse
