#include "sparse/parallel.hpp"

#include <algorithm>

#include "core/syrk_internal.hpp"
#include "distribution/block1d.hpp"
#include "matrix/packed.hpp"
#include "support/check.hpp"

namespace parsyrk::sparse {

std::vector<std::pair<std::size_t, std::size_t>> column_ranges(
    const Csr& a, int parts, ColumnSplit split) {
  PARSYRK_REQUIRE(parts >= 1, "need at least one part");
  const std::size_t n2 = a.cols();
  std::vector<std::pair<std::size_t, std::size_t>> out(parts);
  if (split == ColumnSplit::kUniform) {
    for (int r = 0; r < parts; ++r) {
      out[r] = {dist::chunk_begin(n2, parts, r),
                dist::chunk_end(n2, parts, r)};
    }
    return out;
  }
  // nnz-balanced: cut the per-column flop prefix sum into equal parts.
  const Csr at = a.transpose();
  std::vector<double> prefix(n2 + 1, 0.0);
  for (std::size_t k = 0; k < n2; ++k) {
    const double nnz_k =
        static_cast<double>(at.row_ptr()[k + 1] - at.row_ptr()[k]);
    prefix[k + 1] = prefix[k] + nnz_k * (nnz_k + 1.0) / 2.0;
  }
  const double total = prefix[n2];
  std::size_t cut = 0;
  for (int r = 0; r < parts; ++r) {
    const double target = total * (r + 1) / parts;
    std::size_t end = cut;
    while (end < n2 && prefix[end + 1] <= target) ++end;
    // Ensure progress when many empty columns share a prefix value.
    if (r == parts - 1) end = n2;
    out[r] = {cut, end};
    cut = end;
  }
  return out;
}

Matrix sparse_syrk_1d(comm::World& world, const Csr& a, ColumnSplit split) {
  const std::size_t n1 = a.rows();
  const auto ranges = column_ranges(a, world.size(), split);
  Matrix c_full(n1, n1);
  world.run([&](comm::Comm& comm) {
    const int p = comm.size();
    const int r = comm.rank();
    const auto [c0, c1] = ranges[r];
    // Local sparse SYRK over this rank's columns (local data by the 1D
    // distribution assumption; reading the shared CSR costs nothing).
    Matrix cbar(n1, n1);
    if (c1 > c0) {
      const Csr local = a.column_slice(c0, c1 - c0);
      sparse_syrk_lower(local, cbar.view());
    }
    // Identical Reduce-Scatter to the dense Alg. 1: the output triangle is
    // dense regardless of the input sparsity.
    PackedLower packed = PackedLower::from_full(cbar.view());
    comm.set_phase(core::internal::kPhaseReduceC);
    std::vector<std::size_t> sizes(p);
    for (int q = 0; q < p; ++q) {
      sizes[q] = dist::chunk_size(packed.size(), p, q);
    }
    core::internal::PackedChunk chunk;
    chunk.offset = dist::chunk_begin(packed.size(), p, r);
    chunk.data = comm.reduce_scatter(packed.span(), sizes);
    core::internal::scatter_packed_to_full(chunk, c_full);
  });
  return c_full;
}

}  // namespace parsyrk::sparse
