// Compressed sparse row storage — the substrate for §6's last extension
// target ("sparse versions of these kernels such as symmetric sparse matrix
// times dense matrix").
#pragma once

#include <cstdint>
#include <vector>

#include "matrix/matrix.hpp"

namespace parsyrk::sparse {

/// Immutable CSR matrix (double values).
class Csr {
 public:
  Csr() = default;

  /// From triplets; duplicates are summed, entries are sorted per row.
  static Csr from_triplets(
      std::size_t rows, std::size_t cols,
      std::vector<std::tuple<std::size_t, std::size_t, double>> triplets);

  /// Dense → sparse with exact-zero dropping.
  static Csr from_dense(const ConstMatrixView& m);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }
  double density() const {
    return rows_ * cols_ == 0
               ? 0.0
               : static_cast<double>(nnz()) /
                     (static_cast<double>(rows_) * static_cast<double>(cols_));
  }

  /// Row r spans [row_ptr()[r], row_ptr()[r+1]) in col_idx()/values().
  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  Matrix to_dense() const;

  /// Transpose (CSR of Aᵀ — equivalently the CSC view of A).
  Csr transpose() const;

  /// Columns [c0, c0+width) as a new CSR (column indices rebased to 0).
  Csr column_slice(std::size_t c0, std::size_t width) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<std::size_t> row_ptr_{0};
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

/// C (dense, lower triangle incl. diagonal) += A·Aᵀ for sparse A. The
/// output of a sparse SYRK is generically dense (every pair of rows sharing
/// one nonzero column collides), which is why the communication structure —
/// and the triangular reduction — matches the dense case (§6).
void sparse_syrk_lower(const Csr& a, const MatrixView& c);

/// Flop count of sparse_syrk_lower: the number of scalar multiply-adds
/// actually performed (sum over columns k of nnz_k(nnz_k+1)/2).
std::uint64_t sparse_syrk_flops(const Csr& a);

}  // namespace parsyrk::sparse
