#include "verify/verifier.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace parsyrk::verify {
namespace {

std::string render_site(const Verifier::CollectiveSite& site) {
  std::ostringstream os;
  os << site.name << "(count=" << site.count;
  if (site.root >= 0) os << ", root=" << site.root;
  os << ", sig=" << site.signature << ")";
  return os.str();
}

}  // namespace

Verifier::Verifier(int world_size, VerifyOptions options)
    : options_(options),
      hier_depth_(static_cast<std::size_t>(world_size), 0),
      ranks_(static_cast<std::size_t>(world_size)),
      candidates_(static_cast<std::size_t>(world_size)) {}

void Verifier::set_message_probe(MessageProbe probe) {
  std::lock_guard<std::mutex> lk(mu_);
  probe_ = std::move(probe);
}

void Verifier::set_topology(int ranks_per_node) {
  ranks_per_node_ = ranks_per_node < 1 ? 1 : ranks_per_node;
}

void Verifier::register_group(std::uint64_t id, std::vector<int> world_ranks) {
  std::lock_guard<std::mutex> lk(mu_);
  groups_.emplace(id, std::move(world_ranks));
}

void Verifier::begin_scope(int rank_begin, int rank_end, std::uint64_t job) {
  std::lock_guard<std::mutex> lk(mu_);
  // Collective records of groups fully contained in the range restart with
  // the handle-generation reset the runtime performs at job begin. Groups
  // straddling the range keep their slots (their generations were not
  // reset, so stale keys cannot collide).
  for (const auto& [id, members] : groups_) {
    const bool contained =
        std::all_of(members.begin(), members.end(), [&](int r) {
          return r >= rank_begin && r < rank_end;
        });
    if (!contained) continue;
    std::erase_if(collectives_,
                  [&](const auto& kv) { return kv.first.group == id; });
    std::erase_if(posted_,
                  [&](const auto& kv) { return kv.first.group == id; });
    std::erase_if(barriers_,
                  [&](const auto& kv) { return kv.first.group == id; });
  }
  for (int r = rank_begin; r < rank_end; ++r) {
    auto& st = ranks_[static_cast<std::size_t>(r)];
    st.phase = RankPhase::kIdle;
    st.job = job;
    candidates_[static_cast<std::size_t>(r)] = Candidate{};
  }
  std::erase_if(pending_, [&](const Finding& f) {
    return f.rank >= rank_begin && f.rank < rank_end;
  });
}

VerifyReport Verifier::end_scope(int rank_begin, int rank_end) {
  std::lock_guard<std::mutex> lk(mu_);
  VerifyReport report;
  // Deferred findings attributed to ranks in the range (request leaks
  // posted from dying OpStates, runtime add_finding calls).
  auto attributed = [&](const Finding& f) {
    return f.rank < 0 || (f.rank >= rank_begin && f.rank < rank_end);
  };
  for (const Finding& f : pending_) {
    if (attributed(f)) report.findings.push_back(f);
  }
  std::erase_if(pending_, attributed);

  // Sequence-length check: every member of a (group, generation) handle
  // whose group is fully contained in the range must have posted the same
  // number of collectives. A rank that skipped an op leaves a shorter
  // sequence even when every op it did post matched.
  for (const auto& [key, per_rank] : posted_) {
    auto git = groups_.find(key.group);
    if (git == groups_.end()) continue;
    const auto& members = git->second;
    const bool contained =
        std::all_of(members.begin(), members.end(), [&](int r) {
          return r >= rank_begin && r < rank_end;
        });
    if (!contained || per_rank.empty()) continue;
    std::int64_t hi = 0;
    int hi_rank = -1;
    for (const auto& [r, n] : per_rank) {
      if (n > hi || hi_rank < 0) {
        hi = n;
        hi_rank = r;
      }
    }
    for (int r : members) {
      auto it = per_rank.find(r);
      const std::int64_t n = it == per_rank.end() ? 0 : it->second;
      if (n == hi) continue;
      Finding f;
      f.kind = FindingKind::kCollectiveSeqMismatch;
      f.rank = r;
      f.peer = hi_rank;
      f.group = key.group;
      f.job = ranks_[static_cast<std::size_t>(r)].job;
      std::ostringstream os;
      os << "posted " << n << " collective(s) on handle generation "
         << key.gen << " but rank " << hi_rank << " posted " << hi;
      f.detail = os.str();
      report.findings.push_back(std::move(f));
    }
  }
  return report;
}

void Verifier::clear_all() {
  std::lock_guard<std::mutex> lk(mu_);
  collectives_.clear();
  posted_.clear();
  barriers_.clear();
  pending_.clear();
  for (auto& st : ranks_) st = RankState{};
  for (auto& c : candidates_) c = Candidate{};
  std::fill(hier_depth_.begin(), hier_depth_.end(), 0);
}

void Verifier::on_rank_begin(int world_rank, std::uint64_t job) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& st = ranks_[static_cast<std::size_t>(world_rank)];
  st.phase = RankPhase::kRunning;
  st.clean_end = false;
  st.job = job;
  hier_depth_[static_cast<std::size_t>(world_rank)] = 0;
}

void Verifier::on_rank_end(int world_rank, bool clean) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& st = ranks_[static_cast<std::size_t>(world_rank)];
  st.phase = RankPhase::kFinished;
  st.clean_end = clean;
  ++st.unblocks;
  hier_depth_[static_cast<std::size_t>(world_rank)] = 0;
}

void Verifier::on_collective(int world_rank, std::uint64_t group,
                             std::uint32_t handle_gen, std::int64_t op_seq,
                             const CollectiveSite& site) {
  std::lock_guard<std::mutex> lk(mu_);
  ++posted_[HandleKey{group, handle_gen}][world_rank];
  const CollKey key{group, handle_gen, op_seq};
  auto [it, inserted] = collectives_.try_emplace(key);
  CollRecord& rec = it->second;
  if (inserted) {
    rec.kind = site.kind;
    rec.name = site.name;
    rec.signature = site.signature;
    rec.count = site.count;
    rec.root = site.root;
    rec.first_rank = world_rank;
    return;
  }
  Finding f;
  f.rank = world_rank;
  f.peer = rec.first_rank;
  f.group = group;
  f.job = ranks_[static_cast<std::size_t>(world_rank)].job;
  CollectiveSite prev;
  prev.kind = rec.kind;
  prev.name = rec.name.c_str();
  prev.signature = rec.signature;
  prev.count = rec.count;
  prev.root = rec.root;
  std::ostringstream os;
  if (site.kind != rec.kind) {
    f.kind = FindingKind::kCollectiveKindMismatch;
    os << "operation " << op_seq << " of handle generation " << handle_gen
       << " is " << render_site(site) << " here but rank " << rec.first_rank
       << " posted " << render_site(prev);
  } else if (site.root != rec.root) {
    f.kind = FindingKind::kCollectiveRootMismatch;
    os << site.name << " (operation " << op_seq << ") rooted at "
       << site.root << " here but at " << rec.root << " on rank "
       << rec.first_rank;
  } else if (site.signature != rec.signature) {
    f.kind = FindingKind::kCollectiveCountMismatch;
    os << site.name << " (operation " << op_seq << ") posted with "
       << render_site(site) << " here but " << render_site(prev)
       << " on rank " << rec.first_rank;
  } else {
    return;  // compatible repost of the slot
  }
  f.detail = os.str();
  VerifyReport report;
  report.findings.push_back(std::move(f));
  throw VerifyError(std::move(report));
}

void Verifier::on_barrier_arrive(std::uint64_t group, std::uint64_t gen,
                                 int world_rank) {
  std::lock_guard<std::mutex> lk(mu_);
  barriers_[HandleKey{group, static_cast<std::uint32_t>(gen)}].push_back(
      world_rank);
}

void Verifier::on_barrier_release(std::uint64_t group, std::uint64_t gen) {
  std::lock_guard<std::mutex> lk(mu_);
  barriers_.erase(HandleKey{group, static_cast<std::uint32_t>(gen)});
}

std::vector<int> Verifier::wait_edges_locked(int world_rank) const {
  const RankState& st = ranks_[static_cast<std::size_t>(world_rank)];
  if (st.phase != RankPhase::kBlocked) return {};
  if (st.wait.kind == WaitFor::Kind::kMessage) {
    if (st.wait.src_world >= 0) return {st.wait.src_world};
    return {};
  }
  // Barrier: waiting on every member of the group not yet arrived at this
  // generation.
  std::vector<int> edges;
  auto git = groups_.find(st.wait.group);
  if (git == groups_.end()) return edges;
  auto bit = barriers_.find(HandleKey{
      st.wait.group, static_cast<std::uint32_t>(st.wait.barrier_gen)});
  const std::vector<int>* arrived =
      bit == barriers_.end() ? nullptr : &bit->second;
  for (int r : git->second) {
    if (r == world_rank) continue;
    if (arrived && std::find(arrived->begin(), arrived->end(), r) !=
                       arrived->end()) {
      continue;
    }
    edges.push_back(r);
  }
  return edges;
}

bool Verifier::edges_still_blocked_locked(
    const std::vector<int>& members) const {
  for (int r : members) {
    const RankState& st = ranks_[static_cast<std::size_t>(r)];
    if (st.phase != RankPhase::kBlocked) return false;
    if (st.wait.kind == WaitFor::Kind::kMessage) {
      if (!probe_) continue;
      if (probe_(r, st.wait.group, st.wait.src_group_rank, st.wait.tag)) {
        return false;  // awaited message exists: not deadlocked, just slow
      }
    }
  }
  return true;
}

std::string Verifier::describe_wait_locked(int world_rank) const {
  const RankState& st = ranks_[static_cast<std::size_t>(world_rank)];
  std::ostringstream os;
  os << "rank " << world_rank;
  if (st.phase != RankPhase::kBlocked) {
    os << " (" << (st.phase == RankPhase::kFinished ? "finished" : "running")
       << ")";
    return os.str();
  }
  if (st.wait.kind == WaitFor::Kind::kMessage) {
    os << " waiting on message from rank " << st.wait.src_world << " (group "
       << st.wait.group << ", tag " << st.wait.tag << ")";
  } else {
    os << " waiting at barrier generation " << st.wait.barrier_gen
       << " of group " << st.wait.group;
  }
  return os.str();
}

void Verifier::throw_deadlock_locked(int accuser,
                                     const std::vector<int>& members,
                                     bool stall, std::uint64_t job) {
  Finding f;
  f.kind = stall ? FindingKind::kIdleStall : FindingKind::kDeadlockCycle;
  f.rank = accuser;
  f.job = job;
  f.group = ranks_[static_cast<std::size_t>(accuser)].wait.group;
  std::ostringstream os;
  os << (stall ? "all unfinished ranks blocked with no deliverable message"
               : "wait-for cycle")
     << ":";
  for (int r : members) os << "\n    " << describe_wait_locked(r);
  f.detail = os.str();
  VerifyReport report;
  report.findings.push_back(std::move(f));
  throw VerifyError(std::move(report));
}

void Verifier::on_blocked_tick(int world_rank, const WaitFor& wait,
                               const std::function<bool()>& still_waiting) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lk(mu_);
  auto& st = ranks_[static_cast<std::size_t>(world_rank)];
  if (st.phase != RankPhase::kBlocked) {
    st.phase = RankPhase::kBlocked;
    st.blocked_since = now;
  }
  st.wait = wait;
  const std::uint64_t job = st.job;

  // The caller re-checks its wakeup condition under our lock: if satisfied
  // we are racing a wakeup, not blocked.
  if (still_waiting && !still_waiting()) return;

  // Stranded wait: the only rank able to unblock us already finished this
  // job. A finished rank's sends happen-before finishing, so the re-check
  // above proves the message will never arrive. Barrier analogue: a member
  // finished without arriving at our generation. Only a *clean* finish
  // grounds the accusation: a peer that unwound an exception (its own
  // verdict, or a poison abort) was cut short mid-protocol, which proves
  // nothing about this rank — and its error already carries the diagnosis.
  std::vector<int> edges = wait_edges_locked(world_rank);
  for (int peer : edges) {
    const RankState& ps = ranks_[static_cast<std::size_t>(peer)];
    if (ps.phase == RankPhase::kFinished && ps.clean_end && ps.job == job) {
      Finding f;
      f.kind = FindingKind::kStrandedWait;
      f.rank = world_rank;
      f.peer = peer;
      f.group = wait.group;
      f.job = job;
      std::ostringstream os;
      os << describe_wait_locked(world_rank) << ", but rank " << peer
         << " already finished the job";
      f.detail = os.str();
      st.phase = RankPhase::kRunning;
      ++st.unblocks;
      VerifyReport report;
      report.findings.push_back(std::move(f));
      throw VerifyError(std::move(report));
    }
  }

  // Cycle search: walk the wait-for graph from this rank (DFS over blocked
  // ranks) looking for a path back to it.
  Candidate& cand = candidates_[static_cast<std::size_t>(world_rank)];
  std::vector<int> cycle;
  {
    std::vector<int> path;
    std::vector<char> seen(ranks_.size(), 0);
    // Iterative DFS carrying the path; cycles in this graph are simple
    // because message waits have out-degree 1 and barrier fan-out is small.
    std::function<bool(int)> dfs = [&](int r) -> bool {
      if (seen[static_cast<std::size_t>(r)]) return false;
      seen[static_cast<std::size_t>(r)] = 1;
      path.push_back(r);
      for (int next : wait_edges_locked(r)) {
        if (next == world_rank) return true;
        const RankState& ns = ranks_[static_cast<std::size_t>(next)];
        if (ns.phase == RankPhase::kBlocked && dfs(next)) return true;
      }
      path.pop_back();
      return false;
    };
    if (dfs(world_rank)) cycle = path;
  }

  if (!cycle.empty()) {
    std::vector<std::uint64_t> counters;
    counters.reserve(cycle.size());
    for (int r : cycle) {
      counters.push_back(ranks_[static_cast<std::size_t>(r)].unblocks);
    }
    const bool same = cand.valid && !cand.stall && cand.members == cycle &&
                      cand.counters == counters;
    if (!same) {
      cand.valid = true;
      cand.stall = false;
      cand.members = cycle;
      cand.counters = std::move(counters);
      cand.first_seen = now;
      return;
    }
    if (now - cand.first_seen < options_.confirm) return;
    if (!edges_still_blocked_locked(cycle)) {
      cand.valid = false;
      return;
    }
    st.phase = RankPhase::kRunning;
    ++st.unblocks;
    throw_deadlock_locked(world_rank, cycle, /*stall=*/false, job);
  }

  // No cycle through this rank. Backstop: if every unfinished rank of this
  // job is blocked, and has been for the stall horizon, the job can never
  // progress (nobody can send).
  if (now - st.blocked_since < options_.stall) {
    cand.valid = false;
    return;
  }
  std::vector<int> stalled;
  bool all_blocked = true;
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    const RankState& rs = ranks_[r];
    if (rs.job != job || rs.phase == RankPhase::kFinished ||
        rs.phase == RankPhase::kIdle) {
      continue;
    }
    if (rs.phase != RankPhase::kBlocked ||
        now - rs.blocked_since < options_.stall) {
      all_blocked = false;
      break;
    }
    stalled.push_back(static_cast<int>(r));
  }
  if (!all_blocked || stalled.empty()) {
    cand.valid = false;
    return;
  }
  std::vector<std::uint64_t> counters;
  counters.reserve(stalled.size());
  for (int r : stalled) {
    counters.push_back(ranks_[static_cast<std::size_t>(r)].unblocks);
  }
  const bool same = cand.valid && cand.stall && cand.members == stalled &&
                    cand.counters == counters;
  if (!same) {
    cand.valid = true;
    cand.stall = true;
    cand.members = stalled;
    cand.counters = std::move(counters);
    cand.first_seen = now;
    return;
  }
  if (now - cand.first_seen < options_.confirm) return;
  if (!edges_still_blocked_locked(stalled)) {
    cand.valid = false;
    return;
  }
  st.phase = RankPhase::kRunning;
  ++st.unblocks;
  throw_deadlock_locked(world_rank, stalled, /*stall=*/true, job);
}

void Verifier::on_unblocked(int world_rank) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& st = ranks_[static_cast<std::size_t>(world_rank)];
  if (st.phase == RankPhase::kBlocked) {
    st.phase = RankPhase::kRunning;
    ++st.unblocks;
  }
  candidates_[static_cast<std::size_t>(world_rank)].valid = false;
}

void Verifier::on_request_abandoned(int world_rank, std::uint64_t group,
                                    const char* kind_name,
                                    std::size_t rounds_left) {
  std::lock_guard<std::mutex> lk(mu_);
  Finding f;
  f.kind = FindingKind::kRequestLeak;
  f.rank = world_rank;
  f.group = group;
  f.job = world_rank >= 0 &&
                  world_rank < static_cast<int>(ranks_.size())
              ? ranks_[static_cast<std::size_t>(world_rank)].job
              : 0;
  std::ostringstream os;
  os << kind_name << " request abandoned with " << rounds_left
     << " round(s) outstanding (never waited/tested to completion)";
  f.detail = os.str();
  pending_.push_back(std::move(f));
}

Finding Verifier::message_leak(int dst_world, std::uint64_t group,
                               int src_group_rank, std::int64_t tag,
                               std::size_t words) const {
  Finding f;
  f.kind = FindingKind::kMessageLeak;
  f.rank = dst_world;
  f.group = group;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto git = groups_.find(group);
    if (git != groups_.end() && src_group_rank >= 0 &&
        src_group_rank < static_cast<int>(git->second.size())) {
      f.peer = git->second[static_cast<std::size_t>(src_group_rank)];
    }
    f.job = ranks_[static_cast<std::size_t>(dst_world)].job;
  }
  std::ostringstream os;
  os << "message (tag " << tag << ", " << words
     << " word(s)) from group rank " << src_group_rank
     << " never received before job completion";
  f.detail = os.str();
  return f;
}

void Verifier::add_finding(Finding finding) {
  std::lock_guard<std::mutex> lk(mu_);
  pending_.push_back(std::move(finding));
}

void Verifier::on_hier_begin(int world_rank) {
  ++hier_depth_[static_cast<std::size_t>(world_rank)];
}

void Verifier::on_hier_end(int world_rank) {
  --hier_depth_[static_cast<std::size_t>(world_rank)];
}

void Verifier::fail_leader_bypass(int src_world, int dst_world,
                                  std::size_t words) {
  Finding f;
  f.kind = FindingKind::kLeaderBypass;
  f.rank = src_world;
  f.peer = dst_world;
  {
    std::lock_guard<std::mutex> lk(mu_);
    f.job = ranks_[static_cast<std::size_t>(src_world)].job;
  }
  std::ostringstream os;
  os << "inter-node message (" << words
     << " word(s)) inside a hierarchical collective bypasses node leaders"
     << " (ranks_per_node=" << ranks_per_node_ << ")";
  f.detail = os.str();
  VerifyReport report;
  report.findings.push_back(std::move(f));
  throw VerifyError(std::move(report));
}

}  // namespace parsyrk::verify
