// Dynamic SPMD protocol verifier.
//
// An opt-in analysis layer the message-passing runtime hooks into when
// verification is enabled (World::enable_verify / PARSYRK_VERIFY=1). The
// verifier sees only POD facts — ranks, group ids, tags, kinds, counts — so
// it depends on nothing above support/ and simmpi can link it without a
// cycle. Four analyses:
//
//   1. Collective matching. Every collective a rank posts is keyed by its
//      tag-space identity (group, handle generation, op sequence) — exactly
//      the identity message matching relies on — and compared against what
//      the first poster recorded: kind, element-count signature, root. The
//      first divergent rank throws a VerifyError naming both sides. At scope
//      end, members of one handle must also have posted the same *number* of
//      collectives.
//
//   2. Deadlock detection. Blocking receives and barriers that stall past a
//      watchdog tick register in a wait-for graph (rank -> the rank(s) that
//      can unblock it). A cycle of blocked ranks, confirmed stable across
//      ticks with every awaited message verified absent, is reported with
//      the full rank-annotated cycle instead of hanging the test. Waits on
//      ranks that already finished the job (stranded waits) are reported
//      immediately; a global all-blocked stall is the backstop.
//
//   3. Leak analysis. Abandoned nonblocking requests report through
//      on_request_abandoned as soon as their state dies; undrained mailbox
//      messages are collected by the runtime at scope end (the runtime owns
//      the mailboxes) via message_leak(). Both surface from end_scope.
//
//   4. Topology routing. Inside a hierarchical collective (on_hier_begin/
//      end), an inter-node message with a non-leader endpoint throws
//      immediately — the two-level schedules must route scarce-tier words
//      through node leaders only. Ledger balance is checked by the runtime
//      at scope end (the ledger lives there) and folded into the report.
//
// Hot-path cost when enabled: one null-check per message plus the inline
// topology test below; blocked ranks only touch the verifier after a tick
// (default 25 ms) of no progress, so the fast path never locks.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "verify/report.hpp"

namespace parsyrk::verify {

struct VerifyOptions {
  /// How long a blocking wait sleeps before (re-)consulting the deadlock
  /// analysis. Smaller = faster detection, more registry churn.
  std::chrono::milliseconds tick{25};
  /// A candidate deadlock cycle must persist at least this long (with every
  /// participant's unblock counter frozen and every awaited message absent)
  /// before it is reported. Guards against accusing a rank that was woken
  /// but not yet scheduled.
  std::chrono::milliseconds confirm{200};
  /// Global-stall backstop: when every unfinished rank of a job has been
  /// blocked at least this long with no state change, report kIdleStall
  /// even if no simple cycle through the accuser exists.
  std::chrono::milliseconds stall{2000};
};

/// What a blocked rank is waiting for (one wait-for graph node's out-edges).
struct WaitFor {
  enum class Kind : std::uint8_t { kMessage, kBarrier };
  Kind kind = Kind::kMessage;
  std::uint64_t group = 0;
  // kMessage: the sole rank able to send the awaited envelope.
  int src_world = -1;
  int src_group_rank = -1;
  std::int64_t tag = 0;
  // kBarrier: the generation the rank is parked on.
  std::uint64_t barrier_gen = 0;
};

class Verifier {
 public:
  explicit Verifier(int world_size, VerifyOptions options = {});

  const VerifyOptions& options() const { return options_; }
  int world_size() const { return static_cast<int>(hier_depth_.size()); }

  /// Installed by the runtime: probes whether the envelope
  /// (group, src_group_rank, tag) is currently deliverable to dst_world's
  /// mailbox. Used to re-verify every message edge of a candidate deadlock
  /// before accusing (scan-before-accuse).
  using MessageProbe =
      std::function<bool(int dst_world, std::uint64_t group,
                         int src_group_rank, std::int64_t tag)>;
  void set_message_probe(MessageProbe probe);

  /// Two-level topology of the world (1 = flat). Set between jobs.
  void set_topology(int ranks_per_node);

  /// Registers a communicator group's membership (group rank -> world
  /// rank). Idempotent per id. The world group (id 0) and every interned
  /// group must be registered before their first collective.
  void register_group(std::uint64_t id, std::vector<int> world_ranks);

  // ---- Scopes (one per job epoch) ----

  /// Starts a verification scope covering world ranks [rank_begin,
  /// rank_end): clears collective records of groups fully contained in the
  /// range, rank states, and pending findings attributed to those ranks.
  void begin_scope(int rank_begin, int rank_end, std::uint64_t job);

  /// Ends the scope: collective sequence-length checks for contained
  /// groups plus any deferred findings (request leaks, ...) attributed to
  /// ranks in the range. The caller appends runtime-owned checks (mailbox
  /// leaks, ledger balance) and throws VerifyError if non-empty.
  VerifyReport end_scope(int rank_begin, int rank_end);

  /// Drops all state (failure recovery; the poisoned job's bookkeeping is
  /// meaningless once mailboxes are cleared).
  void clear_all();

  // ---- Rank lifecycle ----

  void on_rank_begin(int world_rank, std::uint64_t job);
  /// `clean` is false when the rank ended by unwinding an exception (its own
  /// failure or a poison abort): such a rank proves nothing about its peers'
  /// protocol, so it never grounds a stranded-wait accusation.
  void on_rank_end(int world_rank, bool clean);

  // ---- Analysis 1: collective matching ----

  struct CollectiveSite {
    std::uint8_t kind = 0;        // comm::OpKind value (structural, not
                                  // OpScope-overridden — an all_reduce is
                                  // its RS+AG composition on every rank)
    const char* name = "";        // op_kind_name(kind)
    std::uint64_t signature = 0;  // kind-specific count/layout digest
    std::int64_t count = 0;       // representative element count for reports
    int root = -1;                // rooted collectives only
  };

  /// Called once per collective per rank, at tag allocation. Throws
  /// VerifyError on divergence from the first poster of the same
  /// (group, handle_gen, op_seq) slot.
  void on_collective(int world_rank, std::uint64_t group,
                     std::uint32_t handle_gen, std::int64_t op_seq,
                     const CollectiveSite& site);

  // ---- Analysis 2: deadlock detection ----

  void on_barrier_arrive(std::uint64_t group, std::uint64_t gen,
                         int world_rank);
  void on_barrier_release(std::uint64_t group, std::uint64_t gen);

  /// A blocking wait by `world_rank` has stalled for another tick.
  /// `still_waiting` re-checks the awaited condition (mailbox scan /
  /// barrier generation) at accusation time and must be callable under the
  /// verifier's lock. Throws VerifyError when a deadlock, stranded wait, or
  /// global stall is confirmed; returns normally to keep waiting.
  void on_blocked_tick(int world_rank, const WaitFor& wait,
                       const std::function<bool()>& still_waiting);

  /// The wait completed (message arrived / barrier released / unwound).
  void on_unblocked(int world_rank);

  // ---- Analysis 3: leaks ----

  /// A nonblocking operation's state died with rounds outstanding.
  void on_request_abandoned(int world_rank, std::uint64_t group,
                            const char* kind_name, std::size_t rounds_left);

  /// Builds a message-leak finding for an undrained mailbox entry
  /// (called by the runtime at scope end; it owns the mailboxes).
  Finding message_leak(int dst_world, std::uint64_t group, int src_group_rank,
                       std::int64_t tag, std::size_t words) const;

  /// Queues a runtime-produced finding for the next end_scope.
  void add_finding(Finding finding);

  // ---- Analysis 4: topology routing ----

  void on_hier_begin(int world_rank);
  void on_hier_end(int world_rank);

  /// Per-message fast path: leader-routing check. Muted (setup) traffic is
  /// exempt — communicator bookkeeping is not algorithm communication.
  void on_message(int src_world, int dst_world, std::size_t words,
                  bool muted) {
    if (muted || ranks_per_node_ <= 1) return;
    if (hier_depth_[static_cast<std::size_t>(src_world)] == 0) return;
    const int rpn = ranks_per_node_;
    if (src_world / rpn == dst_world / rpn) return;     // intra-node
    if (src_world % rpn == 0 && dst_world % rpn == 0) return;  // leaders
    fail_leader_bypass(src_world, dst_world, words);
  }

 private:
  struct CollKey {
    std::uint64_t group = 0;
    std::uint32_t gen = 0;
    std::int64_t seq = 0;
    bool operator==(const CollKey&) const = default;
  };
  struct CollKeyHash {
    std::size_t operator()(const CollKey& k) const {
      std::uint64_t h = k.group * 0x9e3779b97f4a7c15ull;
      h ^= (static_cast<std::uint64_t>(k.gen) + 0x517cc1b727220a95ull) +
           (h << 6) + (h >> 2);
      h ^= (static_cast<std::uint64_t>(k.seq) + 0x2545f4914f6cdd1dull) +
           (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };
  struct CollRecord {
    std::uint8_t kind = 0;
    std::string name;
    std::uint64_t signature = 0;
    std::int64_t count = 0;
    int root = -1;
    int first_rank = -1;  // world rank that defined the slot
  };
  struct HandleKey {
    std::uint64_t group = 0;
    std::uint32_t gen = 0;
    bool operator==(const HandleKey&) const = default;
  };
  struct HandleKeyHash {
    std::size_t operator()(const HandleKey& k) const {
      return static_cast<std::size_t>(k.group * 0x9e3779b97f4a7c15ull ^
                                      (static_cast<std::uint64_t>(k.gen)
                                       << 17));
    }
  };

  enum class RankPhase : std::uint8_t { kIdle, kRunning, kBlocked, kFinished };
  struct RankState {
    RankPhase phase = RankPhase::kIdle;
    bool clean_end = false;      // kFinished via normal return, not unwinding
    std::uint64_t job = 0;
    std::uint64_t unblocks = 0;  // bumps on every transition out of kBlocked
    WaitFor wait;                // valid while kBlocked
    std::chrono::steady_clock::time_point blocked_since{};
  };

  /// A deadlock accusation under confirmation: the cycle (or stall set)
  /// plus each member's unblock counter at first observation.
  struct Candidate {
    bool valid = false;
    bool stall = false;  // kIdleStall candidate (whole job blocked)
    std::vector<int> members;
    std::vector<std::uint64_t> counters;
    std::chrono::steady_clock::time_point first_seen{};
  };

  [[noreturn]] void fail_leader_bypass(int src_world, int dst_world,
                                       std::size_t words);
  /// Out-edges of a blocked rank in the wait-for graph. Caller holds mu_.
  std::vector<int> wait_edges_locked(int world_rank) const;
  /// True when every message edge of every member is verified absent and
  /// every barrier edge still open. Caller holds mu_.
  bool edges_still_blocked_locked(const std::vector<int>& members) const;
  std::string describe_wait_locked(int world_rank) const;
  [[noreturn]] void throw_deadlock_locked(int accuser,
                                          const std::vector<int>& members,
                                          bool stall, std::uint64_t job);

  const VerifyOptions options_;
  MessageProbe probe_;

  // Per-rank hierarchical-collective nesting depth; each slot is written
  // and read only by its own rank's thread. `ranks_per_node_` changes only
  // between jobs. Neither needs mu_.
  std::vector<int> hier_depth_;
  int ranks_per_node_ = 1;

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::vector<int>> groups_;
  std::unordered_map<CollKey, CollRecord, CollKeyHash> collectives_;
  // Per (group, handle generation) per world rank: collectives posted.
  std::unordered_map<HandleKey, std::unordered_map<int, std::int64_t>,
                     HandleKeyHash>
      posted_;
  // Per (group, barrier generation): world ranks arrived.
  std::unordered_map<HandleKey, std::vector<int>, HandleKeyHash> barriers_;
  std::vector<RankState> ranks_;
  std::vector<Candidate> candidates_;  // per accuser rank
  std::vector<Finding> pending_;
};

}  // namespace parsyrk::verify
