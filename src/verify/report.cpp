#include "verify/report.hpp"

#include <sstream>

namespace parsyrk::verify {

const char* finding_kind_name(FindingKind kind) {
  switch (kind) {
    case FindingKind::kCollectiveKindMismatch:
      return "collective-kind-mismatch";
    case FindingKind::kCollectiveCountMismatch:
      return "collective-count-mismatch";
    case FindingKind::kCollectiveRootMismatch:
      return "collective-root-mismatch";
    case FindingKind::kCollectiveSeqMismatch:
      return "collective-seq-mismatch";
    case FindingKind::kDeadlockCycle:
      return "deadlock-cycle";
    case FindingKind::kStrandedWait:
      return "stranded-wait";
    case FindingKind::kIdleStall:
      return "idle-stall";
    case FindingKind::kMessageLeak:
      return "message-leak";
    case FindingKind::kRequestLeak:
      return "request-leak";
    case FindingKind::kLeaderBypass:
      return "leader-bypass";
    case FindingKind::kLedgerImbalance:
      return "ledger-imbalance";
    case FindingKind::kTraceImbalance:
      return "trace-imbalance";
  }
  return "unknown";
}

std::string Finding::to_string() const {
  std::ostringstream os;
  os << "[" << finding_kind_name(kind) << "]";
  if (rank >= 0) os << " rank " << rank;
  if (peer >= 0) os << " (peer " << peer << ")";
  if (group != 0 || kind == FindingKind::kCollectiveKindMismatch ||
      kind == FindingKind::kCollectiveCountMismatch ||
      kind == FindingKind::kCollectiveRootMismatch ||
      kind == FindingKind::kCollectiveSeqMismatch) {
    os << " group " << group;
  }
  if (job != 0) os << " job " << job;
  if (!detail.empty()) os << ": " << detail;
  return os.str();
}

bool VerifyReport::has(FindingKind kind) const {
  return first(kind) != nullptr;
}

const Finding* VerifyReport::first(FindingKind kind) const {
  for (const Finding& f : findings) {
    if (f.kind == kind) return &f;
  }
  return nullptr;
}

std::string VerifyReport::to_string() const {
  std::ostringstream os;
  os << "SPMD verification failed with " << findings.size() << " finding"
     << (findings.size() == 1 ? "" : "s") << ":";
  for (const Finding& f : findings) os << "\n  " << f.to_string();
  return os.str();
}

VerifyError::VerifyError(VerifyReport report)
    : std::runtime_error(report.to_string()), report_(std::move(report)) {}

}  // namespace parsyrk::verify
