#include "verify/lint.hpp"

#include <map>
#include <sstream>
#include <tuple>

namespace parsyrk::verify {
namespace {

struct Flow {
  std::uint64_t sent_words = 0;
  std::uint64_t recv_words = 0;
  std::uint64_t sent_msgs = 0;
  std::uint64_t recv_msgs = 0;
  const char* kind_name = "";
};

}  // namespace

VerifyReport lint_trace(const LintInput& input) {
  VerifyReport report;
  if (input.dropped) {
    Finding f;
    f.kind = FindingKind::kTraceImbalance;
    f.job = input.job;
    f.detail =
        "trace recorded with dropped events; flow balance cannot be "
        "certified (raise the event capacity and re-capture)";
    report.findings.push_back(std::move(f));
    return report;
  }

  // Directed channel: (src, dst, kind, phase). Sender entries and receiver
  // entries land in the same slot; a coherent trace leaves every slot with
  // equal sent/recv totals.
  std::map<std::tuple<int, int, std::uint8_t, std::string>, Flow> flows;
  std::uint64_t intra_sent = 0, intra_recv = 0;
  std::uint64_t inter_sent = 0, inter_recv = 0;
  const int rpn = input.ranks_per_node < 1 ? 1 : input.ranks_per_node;
  for (const LintEvent& e : input.events) {
    if (e.peer < 0) continue;  // non-pairwise bookkeeping event
    const int src = e.sent ? e.rank : e.peer;
    const int dst = e.sent ? e.peer : e.rank;
    Flow& flow = flows[{src, dst, e.kind, e.phase}];
    flow.kind_name = e.kind_name;
    if (e.sent) {
      flow.sent_words += e.words;
      ++flow.sent_msgs;
    } else {
      flow.recv_words += e.words;
      ++flow.recv_msgs;
    }
    const bool inter = src / rpn != dst / rpn;
    (e.sent ? (inter ? inter_sent : intra_sent)
            : (inter ? inter_recv : intra_recv)) += e.words;
  }

  for (const auto& [key, flow] : flows) {
    if (flow.sent_words == flow.recv_words &&
        flow.sent_msgs == flow.recv_msgs) {
      continue;
    }
    const auto& [src, dst, kind, phase] = key;
    Finding f;
    f.kind = FindingKind::kTraceImbalance;
    f.rank = src;
    f.peer = dst;
    f.job = input.job;
    std::ostringstream os;
    os << flow.kind_name << " flow " << src << " -> " << dst;
    if (!phase.empty()) os << " (phase \"" << phase << "\")";
    os << ": sender recorded " << flow.sent_words << " word(s) in "
       << flow.sent_msgs << " message(s), receiver recorded "
       << flow.recv_words << " word(s) in " << flow.recv_msgs;
    f.detail = os.str();
    report.findings.push_back(std::move(f));
  }

  if (intra_sent != intra_recv || inter_sent != inter_recv) {
    Finding f;
    f.kind = FindingKind::kTraceImbalance;
    f.job = input.job;
    std::ostringstream os;
    os << "tier totals unbalanced: intra-node sent " << intra_sent
       << " / received " << intra_recv << ", inter-node sent " << inter_sent
       << " / received " << inter_recv << " (ranks_per_node=" << rpn << ")";
    f.detail = os.str();
    report.findings.push_back(std::move(f));
  }
  return report;
}

}  // namespace parsyrk::verify
