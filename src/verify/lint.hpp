// Offline trace lint: replays recorded communication events through the
// same invariant vocabulary as the dynamic verifier.
//
// The input is deliberately POD (LintEvent) rather than simmpi's JobTrace
// so the engine has no dependency on the runtime — tools/trace_lint adapts
// PSYRKTRC files into LintEvents, and unit tests can fabricate streams
// directly. Checks:
//
//   * pair flow balance — for every (src, dst, kind, phase) channel, the
//     words and messages the sender recorded going out must equal what the
//     receiver recorded coming in (the trace is double-entry, like the
//     ledger);
//   * tier balance — total intra-node and inter-node words must each
//     balance between send and receive sides given ranks_per_node;
//   * completeness — a trace flagged as having dropped events cannot be
//     certified and reports a finding instead of silently passing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "verify/report.hpp"

namespace parsyrk::verify {

/// One recorded transfer endpoint. `sent` is true for the sender-side entry
/// (dir == kSend), false for the receiver-side entry.
struct LintEvent {
  int rank = -1;
  int peer = -1;
  bool sent = true;
  std::uint8_t kind = 0;      // comm::OpKind value
  const char* kind_name = ""; // for report text; not part of matching
  std::uint64_t words = 0;
  std::string phase;
};

struct LintInput {
  std::uint64_t job = 0;
  int ranks = 0;
  int ranks_per_node = 1;
  bool dropped = false;  // the recorder overflowed; balance is unknowable
  std::vector<LintEvent> events;
};

/// Runs all offline checks; an empty report means the trace is coherent.
VerifyReport lint_trace(const LintInput& input);

}  // namespace parsyrk::verify
