// Structured findings of the SPMD protocol verifier.
//
// Every analysis (collective matching, deadlock detection, leak analysis,
// topology/ledger invariants, offline trace lint) reports through the same
// Finding record so tests, the service layer, and tools/trace_lint can all
// assert on machine-readable verdicts instead of parsing abort messages.
// A non-empty VerifyReport surfaces as a thrown VerifyError: unlike the
// runtime's PARSYRK_CHECK aborts, verification failures are recoverable —
// the world is reset and the caller decides what to do with the diagnosis.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace parsyrk::verify {

/// Defect classes the verifier can report. Values are stable identifiers
/// (tests and tools switch on them); append only.
enum class FindingKind : std::uint8_t {
  /// Ranks of one communicator posted different collective kinds as the
  /// same operation (tag-space position) of the same handle.
  kCollectiveKindMismatch = 0,
  /// Same collective kind, incompatible element counts / block layouts.
  kCollectiveCountMismatch = 1,
  /// Same rooted collective, different roots.
  kCollectiveRootMismatch = 2,
  /// At job end, members of one communicator handle had posted different
  /// numbers of collectives (a rank skipped or added an operation).
  kCollectiveSeqMismatch = 3,
  /// A cycle of blocked ranks, each waiting on the next (receive or
  /// barrier), none of whose awaited messages exist.
  kDeadlockCycle = 4,
  /// A rank is blocked waiting on a rank that already finished the job
  /// without satisfying the wait (message never sent / barrier skipped).
  kStrandedWait = 5,
  /// Every unfinished rank of the job stayed blocked past the watchdog
  /// horizon with no deliverable message (global stall; the wait-for graph
  /// is attached even when no simple cycle through the accuser exists).
  kIdleStall = 6,
  /// A message was still sitting in a mailbox when its job completed.
  kMessageLeak = 7,
  /// A nonblocking Request was abandoned before completion (its OpState
  /// died with rounds still outstanding).
  kRequestLeak = 8,
  /// An inter-node message inside a hierarchical collective had a
  /// non-leader endpoint (two-level topology routing invariant).
  kLeaderBypass = 9,
  /// Per-phase / per-tier ledger totals do not balance (words sent !=
  /// words received) on a quiesced job.
  kLedgerImbalance = 10,
  /// Offline trace lint: a (src, dst) pair's send volume does not match
  /// the receive volume recorded by the peer.
  kTraceImbalance = 11,
};

const char* finding_kind_name(FindingKind kind);

/// One verified defect, attributed to the rank (and peer, group, job) the
/// analysis pinned it on. `rank`/`peer` are world ranks; -1 means "not
/// applicable / global".
struct Finding {
  FindingKind kind = FindingKind::kCollectiveKindMismatch;
  int rank = -1;
  int peer = -1;
  std::uint64_t group = 0;
  std::uint64_t job = 0;
  std::string detail;

  std::string to_string() const;
};

/// The verdict of one verification scope (a job, a rank range, a trace).
struct VerifyReport {
  std::vector<Finding> findings;

  bool empty() const { return findings.empty(); }
  bool has(FindingKind kind) const;
  /// First finding of `kind`, or nullptr.
  const Finding* first(FindingKind kind) const;
  std::string to_string() const;
};

/// Thrown when verification fails. Carries the structured report; what() is
/// the rendered summary, so unaware callers still get a useful message.
class VerifyError : public std::runtime_error {
 public:
  explicit VerifyError(VerifyReport report);

  const VerifyReport& report() const { return report_; }

 private:
  VerifyReport report_;
};

}  // namespace parsyrk::verify
