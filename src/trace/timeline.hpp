// Per-rank busy/idle lanes of a streamed service schedule.
//
// The streaming scheduler's whole value is work conservation: ranks should
// be running the next queued job the moment their previous one drains. The
// message-level JobTrace cannot show that — it has no cross-job clock — so
// the service records one TimelineInterval per dispatched job (wall-clock
// start/end against the service's epoch, rank range, solo/streamed) into a
// ServiceTimeline. The timeline answers the observability questions the
// scheduler is judged by: per-rank busy and idle seconds, the total
// work-conservation gap (the wall-clock counterpart of
// ServiceStats::scheduler_gap_seconds), and a chrome://tracing export with
// one lane ("thread") per rank so interleaving is visible in a viewer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace parsyrk::trace {

/// One job's occupancy of its rank subset, in seconds since the timeline's
/// epoch (the service's construction).
struct TimelineInterval {
  std::uint64_t job_id = 0;  // World::jobs_run() id of the dispatched job
  int rank_begin = 0;
  int rank_end = 0;
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  bool solo = false;  // ran alone on a quiesced world

  bool operator==(const TimelineInterval&) const = default;
};

/// Append-only record of every job the service dispatched, queryable per
/// rank. Not thread-safe; the service copies it out under its own lock.
class ServiceTimeline {
 public:
  explicit ServiceTimeline(int ranks = 0) : ranks_(ranks) {}

  int ranks() const { return ranks_; }
  void set_ranks(int ranks) { ranks_ = ranks; }

  /// Records one dispatched job. Intervals arrive in dispatch order, so
  /// per-rank occupancy is non-overlapping and start-ordered.
  void add(const TimelineInterval& interval);

  const std::vector<TimelineInterval>& intervals() const { return intervals_; }

  /// Latest end_seconds over all intervals (0 when empty).
  double horizon_seconds() const;

  /// Seconds `rank` spent inside job intervals.
  double busy_seconds(int rank) const;

  /// Seconds `rank` sat idle between its first dispatch and the timeline
  /// horizon — the straggler tax the streaming scheduler exists to remove.
  double idle_seconds(int rank) const;

  /// Summed idle rank-seconds over every rank (the timeline-side gap
  /// measure; compare with ServiceStats::scheduler_gap_seconds, which only
  /// counts gaps a queued job could actually have filled).
  double total_idle_seconds() const;

  /// chrome://tracing Trace Event Format: one complete ("X") event per
  /// (job, rank) with tid = rank, so each rank renders as a busy/idle lane.
  std::string to_chrome_json() const;

 private:
  int ranks_ = 0;
  std::vector<TimelineInterval> intervals_;
};

}  // namespace parsyrk::trace
