#include "trace/timeline.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace parsyrk::trace {

void ServiceTimeline::add(const TimelineInterval& interval) {
  PARSYRK_REQUIRE(interval.rank_begin >= 0 &&
                      interval.rank_begin < interval.rank_end,
                  "timeline interval needs a non-empty rank range");
  PARSYRK_REQUIRE(interval.end_seconds >= interval.start_seconds,
                  "timeline interval ends before it starts");
  ranks_ = std::max(ranks_, interval.rank_end);
  intervals_.push_back(interval);
}

double ServiceTimeline::horizon_seconds() const {
  double h = 0.0;
  for (const TimelineInterval& iv : intervals_) {
    h = std::max(h, iv.end_seconds);
  }
  return h;
}

double ServiceTimeline::busy_seconds(int rank) const {
  double busy = 0.0;
  for (const TimelineInterval& iv : intervals_) {
    if (rank >= iv.rank_begin && rank < iv.rank_end) {
      busy += iv.end_seconds - iv.start_seconds;
    }
  }
  return busy;
}

double ServiceTimeline::idle_seconds(int rank) const {
  // Idle counts from the rank's first dispatch (before that it was never
  // needed) to the timeline horizon (after which nothing is scheduled).
  double first = -1.0;
  for (const TimelineInterval& iv : intervals_) {
    if (rank >= iv.rank_begin && rank < iv.rank_end) {
      first = first < 0.0 ? iv.start_seconds : std::min(first, iv.start_seconds);
    }
  }
  if (first < 0.0) return 0.0;
  return std::max(0.0, horizon_seconds() - first - busy_seconds(rank));
}

double ServiceTimeline::total_idle_seconds() const {
  double total = 0.0;
  for (int r = 0; r < ranks_; ++r) total += idle_seconds(r);
  return total;
}

std::string ServiceTimeline::to_chrome_json() const {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TimelineInterval& iv : intervals_) {
    for (int r = iv.rank_begin; r < iv.rank_end; ++r) {
      if (!first) os << ",";
      first = false;
      // Microsecond timestamps, the unit trace viewers expect.
      os << "{\"name\":\"job " << iv.job_id << (iv.solo ? " (solo)" : "")
         << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << r
         << ",\"ts\":" << iv.start_seconds * 1e6
         << ",\"dur\":" << (iv.end_seconds - iv.start_seconds) * 1e6 << "}";
    }
  }
  os << "]}";
  return os.str();
}

}  // namespace parsyrk::trace
