// Trace exporters and rollups.
//
// Three consumers of a drained JobTrace:
//   1. write_chrome_json — `chrome://tracing` / Perfetto "Trace Event
//      Format" JSON: one complete ("X") event per traced message, pid 0,
//      tid = rank, ts = the per-rank logical ordinal. Load the file in a
//      trace viewer to see the message schedule per rank, colored by phase.
//   2. write_binary / read_binary — the compact golden-trace format used by
//      regression tests: little-endian, fixed-width, no absolute job ids or
//      timestamps, so two runs of the same schedule (fresh world or warm
//      pool, today or in CI) serialize to identical bytes.
//   3. Rollup — per-phase × per-rank Counters recomputed from the events,
//      the cross-check that the trace agrees with the CostLedger.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "simmpi/ledger.hpp"
#include "simmpi/trace.hpp"

namespace parsyrk::trace {

/// Writes the Trace Event Format JSON document for one job.
void write_chrome_json(std::ostream& os, const comm::JobTrace& trace);
/// Convenience: the JSON document as a string.
std::string to_chrome_json(const comm::JobTrace& trace);

/// Serializes the job trace in the golden regression format. Equal traces
/// (same events, phases, ranks, poisoned flag) produce equal bytes; the
/// job id is deliberately excluded so a warm world's Nth job can be compared
/// against a fresh world's first.
void write_binary(std::ostream& os, const comm::JobTrace& trace);
std::string to_binary(const comm::JobTrace& trace);

/// Parses a golden-format trace; throws InvalidArgument on a malformed or
/// version-mismatched stream. The job id reads back as 0.
comm::JobTrace read_binary(std::istream& is);
comm::JobTrace from_binary(const std::string& bytes);

/// Per-phase / per-rank totals recomputed from the raw events.
class Rollup {
 public:
  explicit Rollup(const comm::JobTrace& trace);

  /// Phases seen in the trace, in canonical (sorted) order.
  const std::vector<std::string>& phases() const { return phases_; }
  /// Per-rank counters of one phase (zeros if the phase never ran).
  std::vector<comm::Counters> per_rank(const std::string& phase) const;
  /// Per-rank counters over all phases.
  std::vector<comm::Counters> per_rank() const;
  /// Aggregate of one phase, in the ledger's CostSummary shape. When the
  /// trace came from a folded world (JobTrace::physical_ranks != 0) the
  /// per-field max is taken over physical processors (logical rank r folded
  /// onto r % physical_ranks), matching CostLedger's folded summaries.
  comm::CostSummary summary(const std::string& phase) const;
  /// Aggregate over all phases.
  comm::CostSummary summary() const;

  /// True when the rollup matches a ledger-derived per-rank reading: same
  /// rank count and identical counters per rank. The consistency invariant
  /// the auditor checks — the trace must account for exactly the words and
  /// messages the ledger charged.
  bool matches(const std::vector<comm::Counters>& ledger_per_rank) const;

 private:
  std::uint32_t ranks_;
  std::uint32_t physical_;  // summary fold target; == ranks_ when unfolded
  std::vector<std::string> phases_;
  // phase id -> per-rank counters
  std::vector<std::vector<comm::Counters>> by_phase_;
};

}  // namespace parsyrk::trace
