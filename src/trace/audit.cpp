#include "trace/audit.hpp"

#include <cmath>
#include <limits>
#include <ostream>

#include "costmodel/algorithm_costs.hpp"
#include "support/table.hpp"
#include "trace/export.hpp"

namespace parsyrk::trace {

const char* audit_verdict_name(AuditVerdict v) {
  switch (v) {
    case AuditVerdict::kOk: return "ok";
    case AuditVerdict::kBeatsLowerBound: return "BEATS-LOWER-BOUND";
    case AuditVerdict::kExceedsModel: return "EXCEEDS-MODEL";
  }
  return "unknown";
}

namespace {

/// The closed-form words of the plan's algorithm, including the root-scatter
/// ingestion term when the run used one (the root pushes out all of A but
/// its own block: n1·n2·(1 − 1/P) words, outside eq. (3)'s accounting).
///
/// Padded plans are modeled at the execution shape (the algorithm ran on
/// exec_n1 rows, zero-filled or not); folded plans at fold_factor × the
/// logical grid's per-rank cost — the busiest physical rank hosts
/// fold_factor logical ranks, and co-located traffic (which the ledger
/// skips) only pulls the measurement below this envelope.
double modeled_words(std::uint64_t n1, std::uint64_t n2,
                     const core::SyrkRun& run) {
  const core::Plan& plan = run.plan;
  const costmodel::SyrkShape shape{plan.exec_n1(n1), n2};
  double words = 0.0;
  // A hierarchical run's busiest rank is the node leader, whose critical
  // path carries both tiers (binomial-reduce inflow plus the inter-node
  // exchange) — the flat eq. (3)/(10) envelope does not apply. Model it
  // with the hierarchical closed forms, both tiers summed.
  const bool hier =
      run.nodes >= 2 &&
      plan.strategy == core::CollectiveStrategy::kHierarchical &&
      plan.procs % static_cast<std::uint64_t>(run.nodes) == 0 &&
      plan.algorithm != core::Algorithm::kThreeD;
  const std::uint64_t nodes = hier ? static_cast<std::uint64_t>(run.nodes) : 0;
  const std::uint64_t rpn = hier ? plan.procs / nodes : 1;
  switch (plan.algorithm) {
    case core::Algorithm::kOneD: {
      const costmodel::CollectiveCost c =
          hier ? costmodel::syrk_1d_cost_hier(shape, nodes, rpn)
               : costmodel::syrk_1d_cost(shape, plan.procs);
      words = c.words + c.words_intra;
      break;
    }
    case core::Algorithm::kTwoD: {
      const costmodel::CollectiveCost c =
          hier ? costmodel::syrk_2d_cost_hier(shape, plan.c, rpn)
               : costmodel::syrk_2d_cost(shape, plan.c);
      words = c.words + c.words_intra;
      break;
    }
    case core::Algorithm::kThreeD:
      words = costmodel::syrk_3d_cost(shape, plan.c, plan.p2).words;
      break;
  }
  words *= static_cast<double>(plan.fold_factor());
  if (run.scatter_a.max.words_sent > 0) {
    const double p = static_cast<double>(plan.procs);
    words += static_cast<double>(shape.n1) * static_cast<double>(n2) *
             (1.0 - 1.0 / p);
  }
  return words;
}

}  // namespace

AuditReport BoundAuditor::audit(std::uint64_t n1, std::uint64_t n2,
                                const core::SyrkRun& run,
                                const comm::JobTrace* trace) const {
  AuditReport rep;
  rep.plan = run.plan;
  rep.bound = run.bound;
  rep.measured_words = static_cast<double>(run.total.critical_path_words());
  rep.modeled_words = modeled_words(n1, n2, run);

  const double inf = std::numeric_limits<double>::infinity();
  rep.ratio_vs_bound = rep.bound.communicated > 0.0
                           ? rep.measured_words / rep.bound.communicated
                           : (rep.measured_words > 0.0 ? inf : 1.0);
  rep.ratio_vs_model = rep.modeled_words > 0.0
                           ? rep.measured_words / rep.modeled_words
                           : (rep.measured_words > 0.0 ? inf : 1.0);

  const std::pair<const char*, const comm::CostSummary*> phase_rows[] = {
      {core::internal::kPhaseScatterA, &run.scatter_a},
      {core::internal::kPhaseGatherA, &run.gather_a},
      {core::internal::kPhaseReduceC, &run.reduce_c},
  };
  for (const auto& [name, s] : phase_rows) {
    if (s->max.words_sent == 0 && s->max.msgs_sent == 0) continue;
    rep.phases.push_back({name, s->max.words_sent, s->max.msgs_sent,
                          s->total.words_sent});
  }

  if (rep.bound.communicated > 0.0 &&
      rep.measured_words < (1.0 - opts_.bound_slack) * rep.bound.communicated) {
    rep.verdict = AuditVerdict::kBeatsLowerBound;
  } else if (rep.measured_words >
             (1.0 + opts_.model_tolerance) * rep.modeled_words +
                 static_cast<double>(run.plan.procs)) {
    rep.verdict = AuditVerdict::kExceedsModel;
  }

  // Two-level topology: audit the scarce tier as a machine of N = #nodes
  // ranks. Requires 2 <= nodes < procs (nodes == procs is the flat machine)
  // and n1 >= 2 (Theorem 1's domain).
  if (run.nodes >= 2 &&
      static_cast<std::uint64_t>(run.nodes) < run.plan.procs && n1 >= 2) {
    rep.inter_checked = true;
    rep.nodes = run.nodes;
    rep.inter_bound =
        bounds::syrk_lower_bound(n1, n2, static_cast<std::uint64_t>(run.nodes));
    rep.measured_inter_words =
        static_cast<double>(run.total_inter.critical_path_words());
    rep.ratio_inter_vs_bound =
        rep.inter_bound.communicated > 0.0
            ? rep.measured_inter_words / rep.inter_bound.communicated
            : (rep.measured_inter_words > 0.0 ? inf : 1.0);
    if (rep.verdict == AuditVerdict::kOk &&
        rep.inter_bound.communicated > 0.0 &&
        rep.measured_inter_words <
            (1.0 - opts_.bound_slack) * rep.inter_bound.communicated) {
      rep.verdict = AuditVerdict::kBeatsLowerBound;
    }
  }

  if (trace != nullptr) {
    rep.trace_checked = true;
    // The run may have executed on an active-ranks subset of a larger
    // session world; the trace covers every world rank, idle ones with zero
    // counters, so a direct per-rank comparison against the request-scoped
    // rollup is still exact — provided no events were lost.
    Rollup rollup(*trace);
    const auto per_rank = rollup.per_rank();
    rep.trace_consistent = trace->dropped == 0 && !trace->poisoned;
    if (rep.trace_consistent) {
      comm::Counters total;
      for (const auto& c : per_rank) total += c;
      rep.trace_consistent =
          total == run.total.total &&
          rollup.summary().critical_path_words() ==
              run.total.critical_path_words();
    }
  }
  return rep;
}

void print_audit(std::ostream& os, const AuditReport& rep) {
  os << "Audit: " << core::algorithm_name(rep.plan.algorithm) << " plan on "
     << rep.plan.procs << " ranks";
  if (rep.plan.folded()) {
    os << " (" << rep.plan.logical_ranks() << " logical, folded)";
  }
  os << ", Theorem 1 case " << bounds::regime_name(rep.bound.regime) << "\n";
  Table t({"phase", "max words/rank", "max msgs/rank", "total words"});
  for (const auto& ph : rep.phases) {
    t.add_row({ph.phase, std::to_string(ph.max_words),
               std::to_string(ph.max_msgs), std::to_string(ph.total_words)});
  }
  t.add_row({"total", fmt_double(rep.measured_words, 8), "", ""});
  t.add_row({"theorem-1 bound", fmt_double(rep.bound.communicated, 8), "", ""});
  t.add_row({"modeled cost", fmt_double(rep.modeled_words, 8), "", ""});
  t.print(os);
  os << "measured/bound = " << fmt_double(rep.ratio_vs_bound, 4)
     << ", measured/model = " << fmt_double(rep.ratio_vs_model, 4) << "\n";
  if (rep.inter_checked) {
    os << "inter-node (" << rep.nodes
       << " nodes): busiest node " << fmt_double(rep.measured_inter_words, 8)
       << " words, Theorem 1 @ P=" << rep.nodes << " bound "
       << fmt_double(rep.inter_bound.communicated, 8)
       << ", ratio = " << fmt_double(rep.ratio_inter_vs_bound, 4) << "\n";
  }
  if (rep.trace_checked) {
    os << "trace/ledger consistency: "
       << (rep.trace_consistent ? "ok" : "MISMATCH") << "\n";
  }
  os << "verdict: " << audit_verdict_name(rep.verdict) << "\n";
}

}  // namespace parsyrk::trace
