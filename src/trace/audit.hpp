// Runtime auditing of measured communication against Theorem 1.
//
// A finished SYRK run carries its request-scoped ledger summaries and the
// Theorem 1 bound at the plan's processor count. The auditor turns that into
// a verdict:
//   - measured words (busiest rank) must not BEAT the lower bound — a run
//     that communicates less than the proven minimum indicates an accounting
//     bug (a message the ledger missed), by definition of a lower bound;
//   - measured words must not EXCEED the algorithm's own closed-form cost
//     (paper eqs. (3)/(10)/(12)) by more than a tolerance — that is a
//     regression in the message schedule.
// Both comparisons carry slack for the lower-order terms the closed forms
// drop (the case formulas of Theorem 1 are leading-order; at small n1/n2/P
// an optimal schedule can sit slightly on either side of them).
//
// When the run was traced, the auditor additionally cross-checks the trace
// rollup against the ledger: every word and message the ledger charged must
// be accounted for by exactly one trace event, per rank.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "bounds/syrk_bounds.hpp"
#include "core/syrk.hpp"
#include "simmpi/trace.hpp"

namespace parsyrk::trace {

struct AuditOptions {
  /// Measured below (1 − bound_slack)·bound is flagged as beating the lower
  /// bound. The slack absorbs the lower-order terms dropped by the
  /// Theorem 1 case formulas (e.g. the −n1·n2/P start-data credit).
  double bound_slack = 0.10;
  /// Measured above (1 + model_tolerance)·modeled (plus `procs` words of
  /// absolute slack for collective padding) is flagged as a regression.
  double model_tolerance = 0.02;
};

enum class AuditVerdict {
  kOk,               // bound ≤ measured ≤ model, within tolerances
  kBeatsLowerBound,  // measured < bound: ledger/trace accounting bug
  kExceedsModel,     // measured > modeled algorithm cost: schedule regression
};

const char* audit_verdict_name(AuditVerdict v);

/// One row of the per-phase breakdown.
struct PhaseAudit {
  std::string phase;
  std::uint64_t max_words = 0;  // busiest rank's words sent in this phase
  std::uint64_t max_msgs = 0;
  std::uint64_t total_words = 0;  // summed over ranks
};

struct AuditReport {
  core::Plan plan;
  bounds::SyrkBound bound;      // Theorem 1 at the plan's processor count
  double measured_words = 0.0;  // critical-path words (max over ranks)
  double modeled_words = 0.0;   // the algorithm's closed-form cost
  double ratio_vs_bound = 0.0;  // measured / bound.communicated
  double ratio_vs_model = 0.0;  // measured / modeled
  std::vector<PhaseAudit> phases;
  AuditVerdict verdict = AuditVerdict::kOk;

  /// Two-level-topology runs only (run.nodes >= 2): the inter-node traffic
  /// audited as its own machine — Theorem 1 re-instantiated at P = #nodes
  /// lower-bounds what the busiest node must move across the scarce tier,
  /// since each node computes a 1/N share of the work memory-independently.
  /// A hierarchical schedule should approach this bound; beating it is an
  /// inter-tier accounting bug, same as the flat check.
  bool inter_checked = false;
  int nodes = 0;
  bounds::SyrkBound inter_bound;
  double measured_inter_words = 0.0;  // busiest node's inter-tier words
  double ratio_inter_vs_bound = 0.0;

  /// Trace/ledger cross-check; trace_consistent is meaningful only when a
  /// trace was supplied (trace_checked).
  bool trace_checked = false;
  bool trace_consistent = true;

  bool ok() const {
    return verdict == AuditVerdict::kOk && (!trace_checked || trace_consistent);
  }
};

class BoundAuditor {
 public:
  explicit BoundAuditor(AuditOptions opts = {}) : opts_(opts) {}

  /// Audits one finished run of `core::syrk` for A of shape n1×n2. Pass the
  /// run's JobTrace (run.trace) to additionally verify trace/ledger
  /// consistency.
  AuditReport audit(std::uint64_t n1, std::uint64_t n2,
                    const core::SyrkRun& run,
                    const comm::JobTrace* trace = nullptr) const;

  const AuditOptions& options() const { return opts_; }

 private:
  AuditOptions opts_;
};

/// The human-readable audit table the CLI's --audit flag prints.
void print_audit(std::ostream& os, const AuditReport& report);

}  // namespace parsyrk::trace
