#include "trace/export.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace parsyrk::trace {

// ---------------------------------------------------------------------------
// Chrome tracing JSON
// ---------------------------------------------------------------------------

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(ch >> 4) & 0xF] << hex[ch & 0xF];
        } else {
          os << ch;
        }
    }
  }
}

}  // namespace

void write_chrome_json(std::ostream& os, const comm::JobTrace& trace) {
  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"job\":" << trace.job_id
     << ",\"ranks\":" << trace.ranks
     << ",\"poisoned\":" << (trace.poisoned ? "true" : "false")
     << ",\"dropped\":" << trace.dropped << "},\"traceEvents\":[";
  bool first = true;
  for (std::uint32_t r = 0; r < trace.ranks; ++r) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << r
       << ",\"args\":{\"name\":\"rank " << r << "\"}}";
  }
  // Overlap lanes: one synthetic thread per rank (tid = ranks + rank) so the
  // pipelined in-flight windows render beneath that rank's event lane.
  if (!trace.overlaps.empty()) {
    for (std::uint32_t r = 0; r < trace.ranks; ++r) {
      os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
         << (trace.ranks + r) << ",\"args\":{\"name\":\"rank " << r
         << " overlap\"}}";
    }
  }
  for (const auto& e : trace.events) {
    os << ",\n{\"name\":\"";
    json_escape(os, std::string(op_kind_name(e.kind)) +
                        (e.dir == comm::TraceDir::kSend ? " send" : " recv"));
    os << "\",\"cat\":\"";
    json_escape(os, trace.phase_name(e));
    os << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << e.rank
       << ",\"ts\":" << e.ordinal << ",\"dur\":1,\"args\":{\"peer\":" << e.peer
       << ",\"words\":" << e.words << ",\"bytes\":" << e.bytes()
       << ",\"phase\":\"";
    json_escape(os, trace.phase_name(e));
    os << "\"}}";
  }
  for (const auto& o : trace.overlaps) {
    const std::uint64_t dur = o.complete_ordinal > o.post_ordinal
                                  ? o.complete_ordinal - o.post_ordinal
                                  : 1;
    os << ",\n{\"name\":\"chunk " << o.chunk
       << " in flight\",\"cat\":\"overlap\",\"ph\":\"X\",\"pid\":0,\"tid\":"
       << (trace.ranks + static_cast<std::uint32_t>(o.rank))
       << ",\"ts\":" << o.post_ordinal << ",\"dur\":" << dur
       << ",\"args\":{\"chunk\":" << o.chunk << ",\"words\":" << o.words
       << ",\"flops\":" << o.flops << "}}";
  }
  os << "\n]}\n";
}

std::string to_chrome_json(const comm::JobTrace& trace) {
  std::ostringstream os;
  write_chrome_json(os, trace);
  return os.str();
}

// ---------------------------------------------------------------------------
// Binary golden format
// ---------------------------------------------------------------------------

namespace {

constexpr char kMagic[8] = {'P', 'S', 'Y', 'R', 'K', 'T', 'R', 'C'};
constexpr std::uint32_t kVersion = 1;

void put_u32(std::ostream& os, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  os.write(b, 4);
}

void put_u64(std::ostream& os, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  os.write(b, 8);
}

std::uint32_t get_u32(std::istream& is) {
  unsigned char b[4];
  is.read(reinterpret_cast<char*>(b), 4);
  PARSYRK_REQUIRE(is.good(), "truncated trace stream");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(std::istream& is) {
  unsigned char b[8];
  is.read(reinterpret_cast<char*>(b), 8);
  PARSYRK_REQUIRE(is.good(), "truncated trace stream");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

}  // namespace

void write_binary(std::ostream& os, const comm::JobTrace& trace) {
  os.write(kMagic, sizeof(kMagic));
  put_u32(os, kVersion);
  put_u32(os, trace.ranks);
  put_u32(os, trace.poisoned ? 1 : 0);
  put_u64(os, trace.dropped);
  put_u32(os, static_cast<std::uint32_t>(trace.phases.size()));
  for (const auto& p : trace.phases) {
    put_u32(os, static_cast<std::uint32_t>(p.size()));
    os.write(p.data(), static_cast<std::streamsize>(p.size()));
  }
  put_u64(os, trace.events.size());
  for (const auto& e : trace.events) {
    put_u64(os, e.ordinal);
    put_u64(os, e.words);
    put_u32(os, static_cast<std::uint32_t>(e.rank));
    put_u32(os, static_cast<std::uint32_t>(e.peer));
    put_u32(os, e.phase);
    put_u32(os, (static_cast<std::uint32_t>(e.kind) << 8) |
                    static_cast<std::uint32_t>(e.dir));
  }
  // Overlap section: appended only when a pipelined run recorded intervals,
  // so unpipelined traces stay byte-identical to the pre-overlap format
  // (the reader peeks for EOF). Version stays 1 — the extension is purely
  // additive.
  if (!trace.overlaps.empty()) {
    put_u64(os, trace.overlaps.size());
    for (const auto& o : trace.overlaps) {
      put_u32(os, static_cast<std::uint32_t>(o.rank));
      put_u32(os, o.chunk);
      put_u64(os, o.post_ordinal);
      put_u64(os, o.complete_ordinal);
      put_u64(os, o.words);
      put_u64(os, o.flops);
    }
  }
}

std::string to_binary(const comm::JobTrace& trace) {
  std::ostringstream os;
  write_binary(os, trace);
  return os.str();
}

comm::JobTrace read_binary(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof(magic));
  PARSYRK_REQUIRE(is.good() && std::equal(magic, magic + 8, kMagic),
                  "not a parsyrk trace stream (bad magic)");
  const std::uint32_t version = get_u32(is);
  PARSYRK_REQUIRE(version == kVersion, "trace format version ", version,
                  " unsupported (expected ", kVersion, ")");
  comm::JobTrace t;
  t.ranks = get_u32(is);
  t.poisoned = get_u32(is) != 0;
  t.dropped = get_u64(is);
  const std::uint32_t nphases = get_u32(is);
  t.phases.reserve(nphases);
  for (std::uint32_t i = 0; i < nphases; ++i) {
    const std::uint32_t len = get_u32(is);
    PARSYRK_REQUIRE(len < (1u << 20), "implausible phase-name length ", len);
    std::string name(len, '\0');
    is.read(name.data(), len);
    PARSYRK_REQUIRE(is.good(), "truncated trace stream");
    t.phases.push_back(std::move(name));
  }
  const std::uint64_t nevents = get_u64(is);
  t.events.reserve(nevents);
  for (std::uint64_t i = 0; i < nevents; ++i) {
    comm::TraceEvent e;
    e.ordinal = get_u64(is);
    e.words = get_u64(is);
    e.rank = static_cast<std::int32_t>(get_u32(is));
    e.peer = static_cast<std::int32_t>(get_u32(is));
    e.phase = get_u32(is);
    const std::uint32_t kd = get_u32(is);
    e.kind = static_cast<comm::OpKind>((kd >> 8) & 0xFF);
    e.dir = static_cast<comm::TraceDir>(kd & 0xFF);
    PARSYRK_REQUIRE(e.phase < t.phases.size(), "event references phase ",
                    e.phase, " but the table has ", t.phases.size());
    t.events.push_back(e);
  }
  // Optional overlap section (pipelined runs only): peek for EOF first so
  // legacy streams without the section still read cleanly.
  if (is.peek() != std::istream::traits_type::eof()) {
    const std::uint64_t noverlaps = get_u64(is);
    t.overlaps.reserve(noverlaps);
    for (std::uint64_t i = 0; i < noverlaps; ++i) {
      comm::OverlapInterval o;
      o.rank = static_cast<std::int32_t>(get_u32(is));
      o.chunk = get_u32(is);
      o.post_ordinal = get_u64(is);
      o.complete_ordinal = get_u64(is);
      o.words = get_u64(is);
      o.flops = get_u64(is);
      PARSYRK_REQUIRE(o.rank >= 0 &&
                          static_cast<std::uint32_t>(o.rank) < t.ranks,
                      "overlap interval references rank ", o.rank,
                      " but the trace has ", t.ranks);
      t.overlaps.push_back(o);
    }
  }
  return t;
}

comm::JobTrace from_binary(const std::string& bytes) {
  std::istringstream is(bytes);
  return read_binary(is);
}

// ---------------------------------------------------------------------------
// Rollup
// ---------------------------------------------------------------------------

Rollup::Rollup(const comm::JobTrace& trace)
    : ranks_(trace.ranks),
      physical_(trace.physical_ranks != 0 ? trace.physical_ranks : trace.ranks),
      phases_(trace.phases) {
  by_phase_.assign(phases_.size(), std::vector<comm::Counters>(ranks_));
  for (const auto& e : trace.events) {
    PARSYRK_CHECK_MSG(e.phase < by_phase_.size() &&
                          e.rank >= 0 &&
                          static_cast<std::uint32_t>(e.rank) < ranks_,
                      "trace event out of range (rank ", e.rank, ", phase ",
                      e.phase, ")");
    comm::Counters& c = by_phase_[e.phase][e.rank];
    if (e.dir == comm::TraceDir::kSend) {
      c.words_sent += e.words;
      c.msgs_sent += 1;
    } else {
      c.words_recv += e.words;
      c.msgs_recv += 1;
    }
  }
}

std::vector<comm::Counters> Rollup::per_rank(const std::string& phase) const {
  auto it = std::find(phases_.begin(), phases_.end(), phase);
  if (it == phases_.end()) return std::vector<comm::Counters>(ranks_);
  return by_phase_[static_cast<std::size_t>(it - phases_.begin())];
}

std::vector<comm::Counters> Rollup::per_rank() const {
  std::vector<comm::Counters> out(ranks_);
  for (const auto& phase : by_phase_) {
    for (std::uint32_t r = 0; r < ranks_; ++r) out[r] += phase[r];
  }
  return out;
}

namespace {
// Logical rank i's counters land in physical bucket i % physical before the
// per-field max (critical path belongs to the busiest *processor*); with
// physical == per_rank.size() this is the plain unfolded summary.
comm::CostSummary summarize(const std::vector<comm::Counters>& per_rank,
                            std::uint32_t physical) {
  comm::CostSummary s;
  s.ranks = physical;
  std::vector<comm::Counters> buckets(physical);
  for (std::size_t i = 0; i < per_rank.size(); ++i) {
    s.total += per_rank[i];
    buckets[i % physical] += per_rank[i];
  }
  for (const auto& b : buckets) {
    s.max.words_sent = std::max(s.max.words_sent, b.words_sent);
    s.max.words_recv = std::max(s.max.words_recv, b.words_recv);
    s.max.msgs_sent = std::max(s.max.msgs_sent, b.msgs_sent);
    s.max.msgs_recv = std::max(s.max.msgs_recv, b.msgs_recv);
  }
  return s;
}
}  // namespace

comm::CostSummary Rollup::summary(const std::string& phase) const {
  return summarize(per_rank(phase), physical_);
}

comm::CostSummary Rollup::summary() const {
  return summarize(per_rank(), physical_);
}

bool Rollup::matches(const std::vector<comm::Counters>& ledger_per_rank) const {
  if (ledger_per_rank.size() != ranks_) return false;
  const auto mine = per_rank();
  for (std::uint32_t r = 0; r < ranks_; ++r) {
    if (!(mine[r] == ledger_per_rank[r])) return false;
  }
  return true;
}

}  // namespace parsyrk::trace
