// Distributed tile Cholesky — the computation SYRK is named for (§1).
//
// A right-looking tile Cholesky on an r×r process grid with block-cyclic
// tile ownership (the ScaLAPACK pattern), built entirely on this library's
// runtime: per step the diagonal owner factors and broadcasts down its grid
// column, panel owners solve and broadcast along grid rows, the diagonal
// ranks re-broadcast the panel down grid columns (the transpose routing),
// and every trailing tile update — a SYRK/GEMM with the step's panel — is
// local. Exercises sub-communicators, rooted collectives, and the ledger on
// a full multi-step factorization.
#pragma once

#include <cstdint>

#include "matrix/matrix.hpp"
#include "simmpi/comm.hpp"

namespace parsyrk::core {

/// Factors the SPD matrix `g` (lower triangle read) into L with G = L·Lᵀ.
/// world.size() == grid_r² ranks; `tile` is the block-cyclic tile size.
/// Returns the full lower-triangular L (strict upper zero).
Matrix parallel_cholesky(comm::World& world, const Matrix& g,
                         std::uint64_t grid_r, std::size_t tile);

}  // namespace parsyrk::core
