// Parallel SYR2K: C = A·Bᵀ + B·Aᵀ with symmetric output (§6 extension).
//
// The same three algorithm families as SYRK apply — the output has the same
// triangular structure, so the triangle-block distribution carries over
// verbatim; the only change is that the All-to-All gathers row blocks of
// BOTH factors (doubling the A-phase volume, exactly as the extended bound
// doubles the x1 term).
#pragma once

#include <cstdint>

#include "matrix/matrix.hpp"
#include "simmpi/comm.hpp"

namespace parsyrk::core {

/// 1D SYR2K: n2 partitioned, local SYR2K per rank, Reduce-Scatter of the
/// packed lower triangle. Optimal for n1 <= n2 and small P.
Matrix syr2k_1d(comm::World& world, const Matrix& a, const Matrix& b);

/// 2D SYR2K on the triangle-block distribution: world.size() == c(c+1), c
/// prime, n1 % c² == 0. Gathers A and B row blocks in one All-to-All.
Matrix syr2k_2d(comm::World& world, const Matrix& a, const Matrix& b,
                std::uint64_t c);

/// 3D SYR2K: 2D per column slice, Reduce-Scatter of C across p2 slices;
/// world.size() == c(c+1)·p2.
Matrix syr2k_3d(comm::World& world, const Matrix& a, const Matrix& b,
                std::uint64_t c, std::uint64_t p2);

}  // namespace parsyrk::core
