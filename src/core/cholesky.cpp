#include "core/cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/check.hpp"

namespace parsyrk::core {

namespace {

/// Unblocked Cholesky of a tile (lower in/out).
void factor_tile(MatrixView t) {
  const std::size_t nb = t.rows();
  for (std::size_t j = 0; j < nb; ++j) {
    double d = t(j, j);
    for (std::size_t q = 0; q < j; ++q) d -= t(j, q) * t(j, q);
    PARSYRK_REQUIRE(d > 0.0, "matrix is not positive definite");
    t(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < nb; ++i) {
      double s = t(i, j);
      for (std::size_t q = 0; q < j; ++q) s -= t(i, q) * t(j, q);
      t(i, j) = s / t(j, j);
    }
  }
}

/// Panel tile solve: B := B · L⁻ᵀ for a factored lower tile L.
void solve_tile(MatrixView b, const ConstMatrixView& l) {
  for (std::size_t rr = 0; rr < b.rows(); ++rr) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = b(rr, j);
      for (std::size_t q = 0; q < j; ++q) s -= b(rr, q) * l(j, q);
      b(rr, j) = s / l(j, j);
    }
  }
}

/// Trailing update: C −= A·Bᵀ (lower part only when diag).
void update_tile(MatrixView c, const ConstMatrixView& a,
                 const ConstMatrixView& b, bool diag) {
  for (std::size_t i = 0; i < c.rows(); ++i) {
    const std::size_t jmax = diag ? std::min(c.cols(), i + 1) : c.cols();
    for (std::size_t j = 0; j < jmax; ++j) {
      double acc = 0.0;
      for (std::size_t q = 0; q < a.cols(); ++q) acc += a(i, q) * b(j, q);
      c(i, j) -= acc;
    }
  }
}

}  // namespace

Matrix parallel_cholesky(comm::World& world, const Matrix& g,
                         std::uint64_t grid_r, std::size_t tile) {
  PARSYRK_REQUIRE(g.rows() == g.cols(), "Cholesky needs a square matrix");
  PARSYRK_REQUIRE(tile >= 1, "tile size must be positive");
  const auto r = static_cast<int>(grid_r);
  PARSYRK_REQUIRE(static_cast<std::uint64_t>(world.size()) == grid_r * grid_r,
                  "parallel Cholesky on an ", grid_r, "x", grid_r,
                  " grid needs ", grid_r * grid_r, " ranks; world has ",
                  world.size());
  const std::size_t n = g.rows();
  const std::size_t ntiles = (n + tile - 1) / tile;
  auto tbegin = [&](std::size_t t) { return t * tile; };
  auto tsize = [&](std::size_t t) { return std::min(tile, n - t * tile); };

  // Shared working matrix: tile (bi, bj) is touched only by its owner
  // (bi mod r, bj mod r); all cross-rank reads go through messages.
  Matrix w(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) w(i, j) = g(i, j);
  }

  world.run([&](comm::Comm& comm) {
    const int pi = comm.rank() / r;
    const int pj = comm.rank() % r;
    comm::Comm row_comm = comm.split(pi, pj);  // ordered by pj
    comm::Comm col_comm = comm.split(pj, pi);  // ordered by pi
    auto owns = [&](std::size_t bi, std::size_t bj) {
      return static_cast<int>(bi % grid_r) == pi &&
             static_cast<int>(bj % grid_r) == pj;
    };

    for (std::size_t k = 0; k < ntiles; ++k) {
      const int ko = static_cast<int>(k % grid_r);
      const std::size_t k0 = tbegin(k), nbk = tsize(k);

      // --- 1. Factor the diagonal tile; broadcast it down grid column ko.
      std::vector<double> diag(nbk * nbk, 0.0);
      if (pj == ko) {
        comm.set_phase("bcast_diag");
        if (pi == ko) {
          if (owns(k, k)) {
            factor_tile(w.block(k0, k0, nbk, nbk));
          }
          auto t = w.block(k0, k0, nbk, nbk);
          for (std::size_t i = 0; i < nbk; ++i) {
            for (std::size_t j = 0; j <= i; ++j) diag[i * nbk + j] = t(i, j);
          }
        }
        col_comm.bcast(diag, /*root=*/ko);
      }
      Matrix lkk(nbk, nbk);
      flat_assign(lkk.view(), 0, diag);

      // --- 2. Panel solves on grid column ko.
      // Tiles bi > k with bi ≡ pi owned by (pi, ko).
      std::vector<std::size_t> my_rows;  // bi ≡ pi, bi > k
      for (std::size_t bi = k + 1; bi < ntiles; ++bi) {
        if (static_cast<int>(bi % grid_r) == pi) my_rows.push_back(bi);
      }
      if (pj == ko) {
        for (std::size_t bi : my_rows) {
          solve_tile(w.block(tbegin(bi), k0, tsize(bi), nbk), lkk.view());
        }
      }

      // --- 3. Row broadcast: column-ko ranks share their solved tiles with
      // their whole grid row.
      comm.set_phase("bcast_panel");
      std::size_t row_words = 0;
      for (std::size_t bi : my_rows) row_words += tsize(bi) * nbk;
      std::vector<double> row_buf(row_words, 0.0);
      if (pj == ko) {
        std::size_t off = 0;
        for (std::size_t bi : my_rows) {
          auto t = w.block(tbegin(bi), k0, tsize(bi), nbk);
          for (std::size_t i = 0; i < t.rows(); ++i) {
            for (std::size_t j = 0; j < nbk; ++j) row_buf[off++] = t(i, j);
          }
        }
      }
      row_comm.bcast(row_buf, /*root=*/ko);
      std::map<std::size_t, Matrix> l_row;  // bi -> tile, bi ≡ pi
      {
        std::size_t off = 0;
        for (std::size_t bi : my_rows) {
          Matrix t(tsize(bi), nbk);
          flat_assign(t.view(), 0,
                      std::span<const double>(row_buf.data() + off, t.size()));
          off += t.size();
          l_row.emplace(bi, std::move(t));
        }
      }

      // --- 4. Transpose routing: the diagonal rank of each grid column now
      // holds the tiles bj ≡ pj (they arrived in its row broadcast) and
      // re-broadcasts them down the column.
      std::vector<std::size_t> col_rows;  // bj ≡ pj, bj > k
      for (std::size_t bj = k + 1; bj < ntiles; ++bj) {
        if (static_cast<int>(bj % grid_r) == pj) col_rows.push_back(bj);
      }
      std::size_t col_words = 0;
      for (std::size_t bj : col_rows) col_words += tsize(bj) * nbk;
      std::vector<double> col_buf(col_words, 0.0);
      if (pi == pj) {
        std::size_t off = 0;
        for (std::size_t bj : col_rows) {
          const auto& t = l_row.at(bj);  // pi == pj ⟹ bj ≡ pi as well
          const auto tmp = flat_copy(t.view());
          std::copy(tmp.begin(), tmp.end(), col_buf.begin() + off);
          off += t.size();
        }
      }
      col_comm.bcast(col_buf, /*root=*/pj);
      std::map<std::size_t, Matrix> l_col;  // bj -> tile, bj ≡ pj
      {
        std::size_t off = 0;
        for (std::size_t bj : col_rows) {
          Matrix t(tsize(bj), nbk);
          flat_assign(t.view(), 0,
                      std::span<const double>(col_buf.data() + off, t.size()));
          off += t.size();
          l_col.emplace(bj, std::move(t));
        }
      }

      // --- 5. Local trailing updates on owned tiles.
      for (std::size_t bi : my_rows) {
        for (std::size_t bj : col_rows) {
          if (bj > bi || !owns(bi, bj)) continue;
          update_tile(
              w.block(tbegin(bi), tbegin(bj), tsize(bi), tsize(bj)),
              l_row.at(bi).view(), l_col.at(bj).view(), bi == bj);
        }
      }
      comm.barrier();  // step boundary: owners may now read updated tiles
    }
  });

  // Extract L: zero the strict upper triangle.
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) l(i, j) = w(i, j);
  }
  return l;
}

}  // namespace parsyrk::core
