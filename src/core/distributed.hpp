// Distributed results: keep C where the algorithm left it.
//
// The whole point of a communication-optimal SYRK is that the output stays
// distributed — downstream kernels (Cholesky, trailing updates) consume it
// in place. The convenience drivers in syrk.hpp reassemble C through shared
// memory for validation; this API instead returns a handle holding each
// rank's owned triangle blocks, supports local queries, and makes the
// expensive operation — funnelling everything to one root — explicit and
// visible in the cost ledger.
#pragma once

#include <cstdint>
#include <vector>

#include "core/syrk_internal.hpp"
#include "distribution/triangle_block.hpp"
#include "matrix/matrix.hpp"
#include "simmpi/comm.hpp"

namespace parsyrk::core {

class DistributedSyrkResult {
 public:
  /// Runs the 2D algorithm and captures each rank's owned blocks.
  /// world.size() == c(c+1), n1 % c² == 0.
  static DistributedSyrkResult compute_2d(comm::World& world, const Matrix& a,
                                          std::uint64_t c);

  std::uint64_t n1() const { return n1_; }
  std::uint64_t c() const { return c_; }
  std::uint64_t block_dim() const { return nb_; }
  int num_ranks() const { return static_cast<int>(per_rank_.size()); }

  /// The blocks rank `r` owns (its triangle block of blocks + diagonal).
  const internal::TriangleBlocks& local(int r) const { return per_rank_[r]; }

  /// Entry (i, j) of the symmetric result, looked up on its owner.
  double at(std::uint64_t i, std::uint64_t j) const;

  /// Assembles the full symmetric matrix through shared memory (free — the
  /// validation path).
  Matrix assemble() const;

  /// Gathers every block to `root` over the runtime, paying the
  /// ~n1(n1+1)/2-word funnel that distributed consumers avoid; the cost
  /// lands in `world`'s ledger under phase "gather_result".
  Matrix gather_to_root(comm::World& world, int root) const;

  /// BLAS-style in-place update: this := alpha·(A·Aᵀ) + beta·this, with the
  /// update computed by the 2D algorithm on the same distribution. This is
  /// the streaming use of SYRK (covariance over sample batches, Cholesky
  /// trailing updates): C never leaves its owners while batches of columns
  /// arrive. A must have n1() rows.
  void accumulate_2d(comm::World& world, const Matrix& a, double alpha,
                     double beta);

 private:
  DistributedSyrkResult(std::uint64_t n1, std::uint64_t c)
      : n1_(n1), c_(c), nb_(n1 / (c * c)), dist_(c) {}

  std::uint64_t n1_;
  std::uint64_t c_;
  std::uint64_t nb_;
  dist::TriangleBlockDistribution dist_;
  std::vector<internal::TriangleBlocks> per_rank_;
};

}  // namespace parsyrk::core
