#include "core/syrk.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "core/syrk_internal.hpp"
#include "distribution/block1d.hpp"
#include "matrix/kernels.hpp"
#include "matrix/packed.hpp"
#include "support/check.hpp"
#include "support/prime.hpp"

namespace parsyrk::core {

using internal::PackedChunk;
using internal::TriangleBlocks;

namespace internal {
namespace {

/// Alg. 1 per-rank driver, optionally preceded by the root-scatter
/// ingestion flow (opts.root).
void run_1d_rank(comm::Comm& comm, const ConstMatrixView& a,
                 const SyrkOptions& opts, Matrix& c_full) {
  if (!opts.root) {
    PackedChunk chunk = syrk_1d_spmd(comm, a, opts.reduce);
    // Assembly into the shared result: disjoint entries per rank, free.
    scatter_packed_to_full(chunk, c_full);
    return;
  }
  const int root = *opts.root;
  const std::size_t n1 = a.rows();
  const std::size_t n2 = a.cols();
  const int p = comm.size();
  const int r = comm.rank();
  // Ingestion: the root packs and scatters the 1D column blocks. Only the
  // root reads the shared input; every other rank works purely from its
  // received buffer.
  comm.set_phase(kPhaseScatterA);
  std::vector<std::vector<double>> parts;
  if (r == root) {
    parts.resize(p);
    for (int q = 0; q < p; ++q) {
      const std::size_t c0 = dist::chunk_begin(n2, p, q);
      const std::size_t cw = dist::chunk_size(n2, p, q);
      parts[q].reserve(n1 * cw);
      for (std::size_t i = 0; i < n1; ++i) {
        for (std::size_t j = c0; j < c0 + cw; ++j) {
          parts[q].push_back(a(i, j));
        }
      }
    }
  }
  auto mine = comm.scatter(parts, root);
  const std::size_t cw = dist::chunk_size(n2, p, r);
  PARSYRK_CHECK(mine.size() == n1 * cw);
  Matrix local(n1, cw);
  std::copy(mine.begin(), mine.end(), local.data());

  // Alg. 1 on the scattered block. The packed-triangle chunks are uneven,
  // so the reduction is the pairwise (variable-size) Reduce-Scatter.
  Matrix cbar(n1, n1);
  if (cw > 0) syrk_lower(local.view(), cbar.view());
  PackedLower packed = PackedLower::from_full(cbar.view());
  comm.set_phase(kPhaseReduceC);
  std::vector<std::size_t> sizes(p);
  for (int q = 0; q < p; ++q) {
    sizes[q] = dist::chunk_size(packed.size(), p, q);
  }
  PackedChunk chunk;
  chunk.offset = dist::chunk_begin(packed.size(), p, r);
  chunk.data = comm.reduce_scatter(packed.span(), sizes);
  scatter_packed_to_full(chunk, c_full);
}

/// Alg. 2 per-rank driver.
void run_2d_rank(comm::Comm& comm, const ConstMatrixView& a,
                 const Plan& plan, const SyrkOptions& opts, Matrix& c_full) {
  dist::TriangleBlockDistribution d(plan.c);
  const std::size_t nb = a.rows() / d.num_block_rows();
  TriangleBlocks blocks = syrk_2d_spmd(comm, d, a, opts.exchange);
  auto flat = flatten_triangle_blocks(blocks);
  scatter_flat_to_full(blocks, flat, 0, nb, c_full);
}

/// Alg. 3 per-rank driver.
void run_3d_rank(comm::Comm& comm, const ConstMatrixView& a,
                 const Plan& plan, Matrix& c_full) {
  dist::TriangleBlockDistribution d(plan.c);
  const std::uint64_t p1 = d.num_procs();
  const std::uint64_t p2 = plan.p2;
  const std::size_t n2 = a.cols();
  const std::size_t nb = a.rows() / d.num_block_rows();
  // Grid coordinates: rank w = k + p1·l.
  const auto w = static_cast<std::uint64_t>(comm.rank());
  const int k = static_cast<int>(w % p1);
  const int l = static_cast<int>(w / p1);

  // Slice communicator Pi_{*l} runs the 2D algorithm on column block l
  // (Alg. 3 line 3).
  comm::Comm slice = comm.split(/*color=*/l, /*key=*/k);
  const std::size_t c0 = dist::chunk_begin(n2, static_cast<int>(p2), l);
  const std::size_t cw = dist::chunk_size(n2, static_cast<int>(p2), l);
  auto a_slice = a.block(0, c0, a.rows(), cw);
  TriangleBlocks blocks = syrk_2d_spmd(slice, d, a_slice);

  // Reduce-Scatter of C_k across Pi_{k*} (Alg. 3 line 5).
  comm::Comm row = comm.split(/*color=*/k, /*key=*/l);
  comm.set_phase(kPhaseReduceC);
  auto flat = flatten_triangle_blocks(blocks);
  std::vector<std::size_t> sizes(p2);
  for (std::uint64_t q = 0; q < p2; ++q) {
    sizes[q] = dist::chunk_size(flat.size(), static_cast<int>(p2),
                                static_cast<int>(q));
  }
  auto reduced = row.reduce_scatter(flat, sizes);
  const std::size_t lo =
      dist::chunk_begin(flat.size(), static_cast<int>(p2), l);
  scatter_flat_to_full(blocks, reduced, lo, nb, c_full);
}

}  // namespace

void run_syrk_plan_rank(comm::Comm& comm, const ConstMatrixView& a,
                        const Plan& plan, const SyrkOptions& opts,
                        Matrix& c_full) {
  switch (plan.algorithm) {
    case Algorithm::kOneD:
      run_1d_rank(comm, a, opts, c_full);
      break;
    case Algorithm::kTwoD:
      run_2d_rank(comm, a, plan, opts, c_full);
      break;
    case Algorithm::kThreeD:
      run_3d_rank(comm, a, plan, c_full);
      break;
  }
}

Matrix run_syrk_plan(comm::World& world, const Matrix& a, const Plan& plan,
                     const SyrkOptions& opts) {
  PARSYRK_REQUIRE(static_cast<std::uint64_t>(world.size()) == plan.procs,
                  algorithm_name(plan.algorithm), " plan needs ", plan.procs,
                  " ranks; world has ", world.size());
  if (opts.root) {
    PARSYRK_REQUIRE(plan.algorithm == Algorithm::kOneD,
                    "root-held input is only supported with the 1D algorithm");
    PARSYRK_REQUIRE(*opts.root >= 0 && *opts.root < world.size(), "bad root ",
                    *opts.root);
  }
  Matrix c_full(a.rows(), a.rows());
  world.run([&](comm::Comm& comm) {
    run_syrk_plan_rank(comm, a.view(), plan, opts, c_full);
  });
  return c_full;
}

}  // namespace internal

namespace {

/// The Plan an old-style entry point implies for a world of `procs` ranks.
Plan explicit_plan(Algorithm algorithm, std::uint64_t procs, std::uint64_t c,
                   std::uint64_t p2) {
  Plan plan;
  plan.algorithm = algorithm;
  plan.procs = procs;
  plan.c = c;
  plan.p1 = (algorithm == Algorithm::kOneD) ? 1 : c * (c + 1);
  plan.p2 = (algorithm == Algorithm::kOneD) ? procs : p2;
  return plan;
}

}  // namespace

Matrix syrk_1d(comm::World& world, const Matrix& a, ReduceKind reduce) {
  SyrkOptions opts;
  opts.reduce = reduce;
  const auto p = static_cast<std::uint64_t>(world.size());
  return internal::run_syrk_plan(world, a,
                                 explicit_plan(Algorithm::kOneD, p, 0, p),
                                 opts);
}

Matrix syrk_1d_from_root(comm::World& world, const Matrix& a, int root) {
  PARSYRK_REQUIRE(root >= 0 && root < world.size(), "bad root ", root);
  SyrkOptions opts;
  opts.root = root;
  const auto p = static_cast<std::uint64_t>(world.size());
  return internal::run_syrk_plan(world, a,
                                 explicit_plan(Algorithm::kOneD, p, 0, p),
                                 opts);
}

Matrix syrk_2d(comm::World& world, const Matrix& a, std::uint64_t c,
               ExchangeKind exchange) {
  dist::TriangleBlockDistribution d(c);
  PARSYRK_REQUIRE(static_cast<std::uint64_t>(world.size()) == d.num_procs(),
                  "2D SYRK with c = ", c, " needs ", d.num_procs(),
                  " ranks; world has ", world.size());
  SyrkOptions opts;
  opts.exchange = exchange;
  return internal::run_syrk_plan(
      world, a, explicit_plan(Algorithm::kTwoD, d.num_procs(), c, 1), opts);
}

Matrix syrk_3d(comm::World& world, const Matrix& a, std::uint64_t c,
               std::uint64_t p2) {
  dist::TriangleBlockDistribution d(c);
  const std::uint64_t p1 = d.num_procs();
  PARSYRK_REQUIRE(static_cast<std::uint64_t>(world.size()) == p1 * p2,
                  "3D SYRK with c = ", c, ", p2 = ", p2, " needs ", p1 * p2,
                  " ranks; world has ", world.size());
  PARSYRK_REQUIRE(p2 >= 1, "p2 must be >= 1");
  return internal::run_syrk_plan(
      world, a, explicit_plan(Algorithm::kThreeD, p1 * p2, c, p2),
      SyrkOptions{});
}

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kOneD: return "1D";
    case Algorithm::kTwoD: return "2D";
    case Algorithm::kThreeD: return "3D";
  }
  return "?";
}

namespace {

/// Largest usable triangle-distribution prime c with c(c+1) <= p and
/// (optionally) n1 % c² == 0; nullopt when none exists.
std::optional<std::uint64_t> best_c_at_most(std::uint64_t p, std::uint64_t n1,
                                            bool divisible) {
  std::optional<std::uint64_t> best;
  for (std::uint64_t c = 2; c * (c + 1) <= p; ++c) {
    if (!is_prime(c)) continue;
    if (divisible && n1 % (c * c) != 0) continue;
    best = c;
  }
  return best;
}

}  // namespace

Plan plan_syrk(std::uint64_t n1, std::uint64_t n2, std::uint64_t max_procs,
               bool n1_divisibility) {
  PARSYRK_REQUIRE(n1 >= 2 && n2 >= 1 && max_procs >= 1,
                  "plan needs n1 >= 2, n2 >= 1, max_procs >= 1");
  const auto bound = bounds::syrk_lower_bound(n1, n2, max_procs);
  Plan plan;
  plan.regime = bound.regime;

  auto fall_back_1d = [&] {
    plan.algorithm = Algorithm::kOneD;
    plan.procs = max_procs;
    plan.c = 0;
    plan.p1 = 1;
    plan.p2 = max_procs;
  };

  switch (bound.regime) {
    case bounds::Regime::kOneD:
      fall_back_1d();
      break;
    case bounds::Regime::kTwoD: {
      auto c = best_c_at_most(max_procs, n1, n1_divisibility);
      if (!c) {
        fall_back_1d();
        break;
      }
      plan.algorithm = Algorithm::kTwoD;
      plan.c = *c;
      plan.p1 = *c * (*c + 1);
      plan.p2 = 1;
      plan.procs = plan.p1;
      break;
    }
    case bounds::Regime::kThreeD: {
      // §5.4: p1 = (n1/n2)^{2/3}·P^{2/3}, p2 = (n2/n1)^{2/3}·P^{1/3},
      // rounded to a usable c(c+1) grid.
      const double pd = static_cast<double>(max_procs);
      const double ratio = static_cast<double>(n1) / static_cast<double>(n2);
      const double p1_target = std::pow(ratio, 2.0 / 3.0) * std::pow(pd, 2.0 / 3.0);
      auto c = best_c_at_most(
          static_cast<std::uint64_t>(std::max(1.0, p1_target)), n1,
          n1_divisibility);
      if (!c) {
        fall_back_1d();
        break;
      }
      plan.algorithm = Algorithm::kThreeD;
      plan.c = *c;
      plan.p1 = *c * (*c + 1);
      plan.p2 = std::max<std::uint64_t>(1, max_procs / plan.p1);
      plan.procs = plan.p1 * plan.p2;
      if (plan.p2 == 1) plan.algorithm = Algorithm::kTwoD;
      break;
    }
  }
  return plan;
}

std::ostream& operator<<(std::ostream& os, const Plan& plan) {
  os << "Plan{" << algorithm_name(plan.algorithm) << ", P=" << plan.procs;
  if (plan.c != 0) os << ", c=" << plan.c << ", p1=" << plan.p1;
  os << ", p2=" << plan.p2
     << ", bound case=" << bounds::regime_name(plan.regime) << "}";
  return os;
}

SyrkRun syrk_auto(const Matrix& a, std::uint64_t max_procs) {
  SyrkRun run;
  run.plan = plan_syrk(a.rows(), a.cols(), max_procs);
  comm::World world(static_cast<int>(run.plan.procs));
  run.c = internal::run_syrk_plan(world, a, run.plan, SyrkOptions{});
  run.total = world.ledger().summary();
  run.gather_a = world.ledger().summary(internal::kPhaseGatherA);
  run.reduce_c = world.ledger().summary(internal::kPhaseReduceC);
  run.scatter_a = world.ledger().summary(internal::kPhaseScatterA);
  run.bound = bounds::syrk_lower_bound(a.rows(), a.cols(), run.plan.procs);
  return run;
}

}  // namespace parsyrk::core
