#include "core/syrk.hpp"

#include <algorithm>
#include <ostream>
#include <utility>

#include "core/planner.hpp"
#include "core/syrk_internal.hpp"
#include "distribution/block1d.hpp"
#include "matrix/kernels.hpp"
#include "matrix/packed.hpp"
#include "support/check.hpp"

namespace parsyrk::core {

using internal::PackedChunk;
using internal::TriangleBlocks;

namespace internal {
namespace {

/// Alg. 1 per-rank driver, optionally preceded by the root-scatter
/// ingestion flow (opts.root).
void run_1d_rank(comm::Comm& comm, const ConstMatrixView& a,
                 const SyrkOptions& opts, Matrix& c_full) {
  if (!opts.root) {
    if (opts.pipeline_chunks >= 1) {
      syrk_1d_spmd_pipelined(comm, a, opts.pipeline_chunks, c_full);
      return;
    }
    PackedChunk chunk = syrk_1d_spmd(comm, a, opts.reduce);
    // Assembly into the shared result: disjoint entries per rank, free.
    scatter_packed_to_full(chunk, c_full);
    return;
  }
  const int root = *opts.root;
  const std::size_t n1 = a.rows();
  const std::size_t n2 = a.cols();
  const int p = comm.size();
  const int r = comm.rank();
  // Ingestion: the root packs and scatters the 1D column blocks. Only the
  // root reads the shared input; every other rank works purely from its
  // received buffer.
  comm.set_phase(kPhaseScatterA);
  std::vector<std::vector<double>> parts;
  if (r == root) {
    parts.resize(p);
    for (int q = 0; q < p; ++q) {
      const std::size_t c0 = dist::chunk_begin(n2, p, q);
      const std::size_t cw = dist::chunk_size(n2, p, q);
      parts[q].reserve(n1 * cw);
      for (std::size_t i = 0; i < n1; ++i) {
        for (std::size_t j = c0; j < c0 + cw; ++j) {
          parts[q].push_back(a(i, j));
        }
      }
    }
  }
  auto mine = comm.scatter(parts, root);
  const std::size_t cw = dist::chunk_size(n2, p, r);
  PARSYRK_CHECK(mine.size() == n1 * cw);
  Matrix local(n1, cw);
  flat_assign(local.view(), 0, mine);

  // Alg. 1 on the scattered block. The packed-triangle chunks are uneven,
  // so the reduction is the pairwise (variable-size) Reduce-Scatter.
  Matrix cbar(n1, n1);
  if (cw > 0) syrk_lower(local.view(), cbar.view());
  PackedLower packed = PackedLower::from_full(cbar.view());
  comm.set_phase(kPhaseReduceC);
  std::vector<std::size_t> sizes(p);
  for (int q = 0; q < p; ++q) {
    sizes[q] = dist::chunk_size(packed.size(), p, q);
  }
  PackedChunk chunk;
  chunk.offset = dist::chunk_begin(packed.size(), p, r);
  chunk.data = comm.reduce_scatter(packed.span(), sizes);
  scatter_packed_to_full(chunk, c_full);
}

/// Alg. 2 per-rank driver.
void run_2d_rank(comm::Comm& comm, const ConstMatrixView& a,
                 const Plan& plan, const SyrkOptions& opts, Matrix& c_full) {
  dist::TriangleBlockDistribution d(plan.c);
  const std::size_t nb = a.rows() / d.num_block_rows();
  TriangleBlocks blocks =
      syrk_2d_spmd(comm, d, a, opts.exchange, opts.pipeline_chunks);
  auto flat = flatten_triangle_blocks(blocks);
  scatter_flat_to_full(blocks, flat, 0, nb, c_full);
}

/// Alg. 3 per-rank driver.
void run_3d_rank(comm::Comm& comm, const ConstMatrixView& a,
                 const Plan& plan, const SyrkOptions& opts, Matrix& c_full) {
  dist::TriangleBlockDistribution d(plan.c);
  const std::uint64_t p1 = d.num_procs();
  const std::uint64_t p2 = plan.p2;
  const int p2i = static_cast<int>(p2);
  const std::size_t n2 = a.cols();
  const std::size_t nb = a.rows() / d.num_block_rows();
  // Grid coordinates: rank w = k + p1·l.
  const auto w = static_cast<std::uint64_t>(comm.rank());
  const int k = static_cast<int>(w % p1);
  const int l = static_cast<int>(w / p1);

  // Slice communicator Pi_{*l} runs the 2D algorithm on column block l
  // (Alg. 3 line 3).
  comm::Comm slice = comm.split(/*color=*/l, /*key=*/k);
  const std::size_t c0 = dist::chunk_begin(n2, p2i, l);
  const std::size_t cw = dist::chunk_size(n2, p2i, l);
  auto a_slice = a.block(0, c0, a.rows(), cw);

  if (opts.pipeline_chunks >= 1) {
    // Pipelined Alg. 3: gather/assemble the slice's row blocks with the
    // slice exchange itself segmented (the gather was the one phase the
    // original overlap pass left blocking), then compute the owned output
    // blocks group by group, reduce-scattering each group across Pi_{k*}
    // while the next group's GEMMs run. Whole blocks per group and
    // ownership-range intersections per segment keep every entry's
    // accumulation order identical to blocking, so results are
    // bitwise-equal for ANY chunk count; chunks=1 additionally replays
    // the blocking message schedule bitwise.
    internal::AssembledRowBlocks rb =
        syrk_2d_gather(slice, d, a_slice, ExchangeKind::kPairwise,
                       opts.pipeline_chunks);
    comm::Comm row = comm.split(/*color=*/k, /*key=*/l);
    comm.set_phase(kPhaseReduceC);

    // Output shape and flat layout; sizes are known before any block is
    // computed, which is what lets segments post early.
    TriangleBlocks shape;
    shape.pairs = d.owned_pairs(static_cast<std::uint64_t>(k));
    shape.diag_index = d.diagonal_block(static_cast<std::uint64_t>(k));
    const std::size_t items =
        shape.pairs.size() + (shape.diag_index ? 1 : 0);
    std::vector<std::size_t> item_off(items + 1, 0);
    for (std::size_t t = 0; t < items; ++t) {
      const std::size_t sz =
          t < shape.pairs.size() ? nb * nb : nb * (nb + 1) / 2;
      item_off[t + 1] = item_off[t] + sz;
    }
    const std::size_t total = item_off[items];

    // Computes output items [i0, i1) into `flat_out`, returning the flops.
    auto compute_group = [&](std::size_t i0, std::size_t i1,
                             std::vector<double>& flat_out) {
      flat_out.clear();
      std::uint64_t flops = 0;
      for (std::size_t t = i0; t < i1; ++t) {
        if (t < shape.pairs.size()) {
          const auto [bi, bj] = shape.pairs[t];
          Matrix cij(nb, nb);
          gemm_nt(rb.block_of(bi).view(), rb.block_of(bj).view(), cij.view());
          flat_append(cij.view(), flat_out);
          flops += 2ull * nb * nb * cw;
        } else {
          Matrix diag(nb, nb);
          syrk_lower(rb.block_of(*shape.diag_index).view(), diag.view());
          for (std::size_t rr = 0; rr < nb; ++rr) {
            for (std::size_t cc = 0; cc <= rr; ++cc) {
              flat_out.push_back(diag(rr, cc));
            }
          }
          flops += static_cast<std::uint64_t>(nb) * (nb + 1) * cw;
        }
      }
      return flops;
    };

    const int G = static_cast<int>(std::clamp<std::size_t>(
        static_cast<std::size_t>(opts.pipeline_chunks), 1,
        std::max<std::size_t>(items, 1)));
    std::vector<std::size_t> own_b(p2), own_e(p2);
    for (int q = 0; q < p2i; ++q) {
      own_b[q] = dist::chunk_begin(total, p2i, q);
      own_e[q] = dist::chunk_end(total, p2i, q);
    }
    std::vector<comm::Request> reqs(G);
    std::vector<std::uint64_t> tokens(G), words(G);
    std::vector<std::size_t> my_lo(G);
    std::vector<double> scratch;  // segment payloads are captured at post
    auto post_group = [&](int g) {
      const std::size_t i0 = dist::chunk_begin(items, G, g);
      const std::size_t i1 = dist::chunk_end(items, G, g);
      const std::size_t g_lo = item_off[i0];
      const std::size_t g_hi = item_off[i1];
      const std::uint64_t flops = compute_group(i0, i1, scratch);
      std::vector<std::size_t> sizes(p2);
      for (int q = 0; q < p2i; ++q) {
        const std::size_t b = std::max(own_b[q], g_lo);
        const std::size_t e = std::min(own_e[q], g_hi);
        sizes[q] = e > b ? e - b : 0;
      }
      my_lo[g] = std::max(own_b[l], g_lo);
      words[g] = (g_hi - g_lo - sizes[l]) +
                 static_cast<std::uint64_t>(p2 - 1) * sizes[l];
      tokens[g] = row.overlap_begin();
      reqs[g] = row.ireduce_scatter(scratch, sizes);
      reqs[g].test();  // kick the first round so peers can overlap
      return flops;
    };
    post_group(0);  // group 0's compute has nothing to hide behind
    for (int g = 0; g < G; ++g) {
      std::uint64_t overlapped_flops = 0;
      if (g + 1 < G) overlapped_flops = post_group(g + 1);
      auto reduced = reqs[g].take();
      if (G > 1) {
        row.overlap_end(tokens[g], static_cast<std::uint32_t>(g), words[g],
                        overlapped_flops);
      }
      scatter_flat_to_full(shape, reduced, my_lo[g], nb, c_full);
    }
    return;
  }

  TriangleBlocks blocks = syrk_2d_spmd(slice, d, a_slice);

  // Reduce-Scatter of C_k across Pi_{k*} (Alg. 3 line 5).
  comm::Comm row = comm.split(/*color=*/k, /*key=*/l);
  comm.set_phase(kPhaseReduceC);
  auto flat = flatten_triangle_blocks(blocks);
  std::vector<std::size_t> sizes(p2);
  for (std::uint64_t q = 0; q < p2; ++q) {
    sizes[q] = dist::chunk_size(flat.size(), p2i, static_cast<int>(q));
  }
  auto reduced = row.reduce_scatter(flat, sizes);
  const std::size_t lo = dist::chunk_begin(flat.size(), p2i, l);
  scatter_flat_to_full(blocks, reduced, lo, nb, c_full);
}

}  // namespace

void run_syrk_plan_rank(comm::Comm& comm, const ConstMatrixView& a,
                        const Plan& plan, const SyrkOptions& opts,
                        Matrix& c_full) {
  switch (plan.algorithm) {
    case Algorithm::kOneD:
      run_1d_rank(comm, a, opts, c_full);
      break;
    case Algorithm::kTwoD:
      run_2d_rank(comm, a, plan, opts, c_full);
      break;
    case Algorithm::kThreeD:
      run_3d_rank(comm, a, plan, opts, c_full);
      break;
  }
}

Matrix pad_rows(const Matrix& a, std::uint64_t rows) {
  PARSYRK_CHECK(rows >= a.rows());
  Matrix padded(rows, a.cols());  // zero rows contribute nothing to A·Aᵀ
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) padded(i, j) = a(i, j);
  }
  return padded;
}

Matrix truncate_result(Matrix c_exec, std::uint64_t n1) {
  if (c_exec.rows() == n1) return c_exec;
  Matrix c(n1, n1);
  for (std::size_t i = 0; i < n1; ++i) {
    for (std::size_t j = 0; j < n1; ++j) c(i, j) = c_exec(i, j);
  }
  return c;
}

Matrix run_syrk_plan(comm::World& world, const Matrix& a, const Plan& plan,
                     const SyrkOptions& opts) {
  PARSYRK_REQUIRE(
      static_cast<std::uint64_t>(world.size()) == plan.logical_ranks(),
      algorithm_name(plan.algorithm), " plan needs ", plan.logical_ranks(),
      " ranks; world has ", world.size());
  PARSYRK_REQUIRE(
      !plan.folded() ||
          static_cast<std::uint64_t>(world.physical_size()) == plan.procs,
      "folded plan needs ", plan.procs, " physical ranks; world has ",
      world.physical_size());
  if (opts.root) {
    PARSYRK_REQUIRE(plan.algorithm == Algorithm::kOneD,
                    "root-held input is only supported with the 1D algorithm");
    PARSYRK_REQUIRE(*opts.root >= 0 && *opts.root < world.size(), "bad root ",
                    *opts.root);
  }
  if (opts.pipeline_chunks >= 1) {
    PARSYRK_REQUIRE(!opts.root,
                    "pipelined execution does not support root-held ingestion");
    PARSYRK_REQUIRE(opts.reduce == ReduceKind::kPairwise &&
                        opts.exchange == ExchangeKind::kPairwise,
                    "pipelined execution supports pairwise collectives only");
  }
  const std::uint64_t exec_n1 = plan.exec_n1(a.rows());
  const Matrix* exec_a = &a;
  Matrix padded;
  if (exec_n1 != a.rows()) {
    padded = pad_rows(a, exec_n1);
    exec_a = &padded;
  }
  Matrix c_exec(exec_n1, exec_n1);
  world.run([&](comm::Comm& comm) {
    run_syrk_plan_rank(comm, exec_a->view(), plan, opts, c_exec);
  });
  return truncate_result(std::move(c_exec), a.rows());
}

}  // namespace internal

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kOneD: return "1D";
    case Algorithm::kTwoD: return "2D";
    case Algorithm::kThreeD: return "3D";
  }
  return "?";
}

const char* strategy_name(CollectiveStrategy s) {
  switch (s) {
    case CollectiveStrategy::kPairwise: return "pairwise";
    case CollectiveStrategy::kBruck: return "bruck";
    case CollectiveStrategy::kButterfly: return "butterfly";
    case CollectiveStrategy::kHierarchical: return "hierarchical";
  }
  return "?";
}

Plan plan_syrk(std::uint64_t n1, std::uint64_t n2, std::uint64_t max_procs,
               bool n1_divisibility) {
  PlanSearchOptions opts;
  opts.n1_divisibility = n1_divisibility;
  return enumerate_syrk_plans(n1, n2, max_procs, opts).plan();
}

std::ostream& operator<<(std::ostream& os, const Plan& plan) {
  os << "Plan{" << algorithm_name(plan.algorithm) << ", P=" << plan.procs;
  if (plan.c != 0) os << ", c=" << plan.c << ", p1=" << plan.p1;
  os << ", p2=" << plan.p2;
  if (plan.folded()) os << ", folded " << plan.logical << "->" << plan.procs;
  if (plan.padded_n1 != 0) os << ", padded n1=" << plan.padded_n1;
  if (plan.strategy != CollectiveStrategy::kPairwise) {
    os << ", " << strategy_name(plan.strategy);
  }
  os << ", bound case=" << bounds::regime_name(plan.regime) << "}";
  return os;
}

}  // namespace parsyrk::core
