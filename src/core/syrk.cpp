#include "core/syrk.hpp"

#include <algorithm>
#include <ostream>
#include <utility>

#include "core/planner.hpp"
#include "core/syrk_internal.hpp"
#include "distribution/block1d.hpp"
#include "matrix/kernels.hpp"
#include "matrix/packed.hpp"
#include "support/check.hpp"

namespace parsyrk::core {

using internal::PackedChunk;
using internal::TriangleBlocks;

namespace internal {
namespace {

/// Alg. 1 per-rank driver, optionally preceded by the root-scatter
/// ingestion flow (opts.root).
void run_1d_rank(comm::Comm& comm, const ConstMatrixView& a,
                 const SyrkOptions& opts, Matrix& c_full) {
  if (!opts.root) {
    PackedChunk chunk = syrk_1d_spmd(comm, a, opts.reduce);
    // Assembly into the shared result: disjoint entries per rank, free.
    scatter_packed_to_full(chunk, c_full);
    return;
  }
  const int root = *opts.root;
  const std::size_t n1 = a.rows();
  const std::size_t n2 = a.cols();
  const int p = comm.size();
  const int r = comm.rank();
  // Ingestion: the root packs and scatters the 1D column blocks. Only the
  // root reads the shared input; every other rank works purely from its
  // received buffer.
  comm.set_phase(kPhaseScatterA);
  std::vector<std::vector<double>> parts;
  if (r == root) {
    parts.resize(p);
    for (int q = 0; q < p; ++q) {
      const std::size_t c0 = dist::chunk_begin(n2, p, q);
      const std::size_t cw = dist::chunk_size(n2, p, q);
      parts[q].reserve(n1 * cw);
      for (std::size_t i = 0; i < n1; ++i) {
        for (std::size_t j = c0; j < c0 + cw; ++j) {
          parts[q].push_back(a(i, j));
        }
      }
    }
  }
  auto mine = comm.scatter(parts, root);
  const std::size_t cw = dist::chunk_size(n2, p, r);
  PARSYRK_CHECK(mine.size() == n1 * cw);
  Matrix local(n1, cw);
  flat_assign(local.view(), 0, mine);

  // Alg. 1 on the scattered block. The packed-triangle chunks are uneven,
  // so the reduction is the pairwise (variable-size) Reduce-Scatter.
  Matrix cbar(n1, n1);
  if (cw > 0) syrk_lower(local.view(), cbar.view());
  PackedLower packed = PackedLower::from_full(cbar.view());
  comm.set_phase(kPhaseReduceC);
  std::vector<std::size_t> sizes(p);
  for (int q = 0; q < p; ++q) {
    sizes[q] = dist::chunk_size(packed.size(), p, q);
  }
  PackedChunk chunk;
  chunk.offset = dist::chunk_begin(packed.size(), p, r);
  chunk.data = comm.reduce_scatter(packed.span(), sizes);
  scatter_packed_to_full(chunk, c_full);
}

/// Alg. 2 per-rank driver.
void run_2d_rank(comm::Comm& comm, const ConstMatrixView& a,
                 const Plan& plan, const SyrkOptions& opts, Matrix& c_full) {
  dist::TriangleBlockDistribution d(plan.c);
  const std::size_t nb = a.rows() / d.num_block_rows();
  TriangleBlocks blocks = syrk_2d_spmd(comm, d, a, opts.exchange);
  auto flat = flatten_triangle_blocks(blocks);
  scatter_flat_to_full(blocks, flat, 0, nb, c_full);
}

/// Alg. 3 per-rank driver.
void run_3d_rank(comm::Comm& comm, const ConstMatrixView& a,
                 const Plan& plan, Matrix& c_full) {
  dist::TriangleBlockDistribution d(plan.c);
  const std::uint64_t p1 = d.num_procs();
  const std::uint64_t p2 = plan.p2;
  const std::size_t n2 = a.cols();
  const std::size_t nb = a.rows() / d.num_block_rows();
  // Grid coordinates: rank w = k + p1·l.
  const auto w = static_cast<std::uint64_t>(comm.rank());
  const int k = static_cast<int>(w % p1);
  const int l = static_cast<int>(w / p1);

  // Slice communicator Pi_{*l} runs the 2D algorithm on column block l
  // (Alg. 3 line 3).
  comm::Comm slice = comm.split(/*color=*/l, /*key=*/k);
  const std::size_t c0 = dist::chunk_begin(n2, static_cast<int>(p2), l);
  const std::size_t cw = dist::chunk_size(n2, static_cast<int>(p2), l);
  auto a_slice = a.block(0, c0, a.rows(), cw);
  TriangleBlocks blocks = syrk_2d_spmd(slice, d, a_slice);

  // Reduce-Scatter of C_k across Pi_{k*} (Alg. 3 line 5).
  comm::Comm row = comm.split(/*color=*/k, /*key=*/l);
  comm.set_phase(kPhaseReduceC);
  auto flat = flatten_triangle_blocks(blocks);
  std::vector<std::size_t> sizes(p2);
  for (std::uint64_t q = 0; q < p2; ++q) {
    sizes[q] = dist::chunk_size(flat.size(), static_cast<int>(p2),
                                static_cast<int>(q));
  }
  auto reduced = row.reduce_scatter(flat, sizes);
  const std::size_t lo =
      dist::chunk_begin(flat.size(), static_cast<int>(p2), l);
  scatter_flat_to_full(blocks, reduced, lo, nb, c_full);
}

}  // namespace

void run_syrk_plan_rank(comm::Comm& comm, const ConstMatrixView& a,
                        const Plan& plan, const SyrkOptions& opts,
                        Matrix& c_full) {
  switch (plan.algorithm) {
    case Algorithm::kOneD:
      run_1d_rank(comm, a, opts, c_full);
      break;
    case Algorithm::kTwoD:
      run_2d_rank(comm, a, plan, opts, c_full);
      break;
    case Algorithm::kThreeD:
      run_3d_rank(comm, a, plan, c_full);
      break;
  }
}

Matrix pad_rows(const Matrix& a, std::uint64_t rows) {
  PARSYRK_CHECK(rows >= a.rows());
  Matrix padded(rows, a.cols());  // zero rows contribute nothing to A·Aᵀ
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) padded(i, j) = a(i, j);
  }
  return padded;
}

Matrix truncate_result(Matrix c_exec, std::uint64_t n1) {
  if (c_exec.rows() == n1) return c_exec;
  Matrix c(n1, n1);
  for (std::size_t i = 0; i < n1; ++i) {
    for (std::size_t j = 0; j < n1; ++j) c(i, j) = c_exec(i, j);
  }
  return c;
}

Matrix run_syrk_plan(comm::World& world, const Matrix& a, const Plan& plan,
                     const SyrkOptions& opts) {
  PARSYRK_REQUIRE(
      static_cast<std::uint64_t>(world.size()) == plan.logical_ranks(),
      algorithm_name(plan.algorithm), " plan needs ", plan.logical_ranks(),
      " ranks; world has ", world.size());
  PARSYRK_REQUIRE(
      !plan.folded() ||
          static_cast<std::uint64_t>(world.physical_size()) == plan.procs,
      "folded plan needs ", plan.procs, " physical ranks; world has ",
      world.physical_size());
  if (opts.root) {
    PARSYRK_REQUIRE(plan.algorithm == Algorithm::kOneD,
                    "root-held input is only supported with the 1D algorithm");
    PARSYRK_REQUIRE(*opts.root >= 0 && *opts.root < world.size(), "bad root ",
                    *opts.root);
  }
  const std::uint64_t exec_n1 = plan.exec_n1(a.rows());
  const Matrix* exec_a = &a;
  Matrix padded;
  if (exec_n1 != a.rows()) {
    padded = pad_rows(a, exec_n1);
    exec_a = &padded;
  }
  Matrix c_exec(exec_n1, exec_n1);
  world.run([&](comm::Comm& comm) {
    run_syrk_plan_rank(comm, exec_a->view(), plan, opts, c_exec);
  });
  return truncate_result(std::move(c_exec), a.rows());
}

}  // namespace internal

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kOneD: return "1D";
    case Algorithm::kTwoD: return "2D";
    case Algorithm::kThreeD: return "3D";
  }
  return "?";
}

Plan plan_syrk(std::uint64_t n1, std::uint64_t n2, std::uint64_t max_procs,
               bool n1_divisibility) {
  PlanSearchOptions opts;
  opts.n1_divisibility = n1_divisibility;
  return enumerate_syrk_plans(n1, n2, max_procs, opts).plan();
}

std::ostream& operator<<(std::ostream& os, const Plan& plan) {
  os << "Plan{" << algorithm_name(plan.algorithm) << ", P=" << plan.procs;
  if (plan.c != 0) os << ", c=" << plan.c << ", p1=" << plan.p1;
  os << ", p2=" << plan.p2;
  if (plan.folded()) os << ", folded " << plan.logical << "->" << plan.procs;
  if (plan.padded_n1 != 0) os << ", padded n1=" << plan.padded_n1;
  os << ", bound case=" << bounds::regime_name(plan.regime) << "}";
  return os;
}

}  // namespace parsyrk::core
