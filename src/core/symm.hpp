// Parallel SYMM: C = S·B with S symmetric n×n and B n×m (§6 extension).
//
// Here the symmetry is in the INPUT. Distributing the lower triangle of S
// with the triangle-block scheme and letting owners compute makes S's
// movement zero: a processor owning block S_{ij} (i > j) contributes
// S_{ij}·B_j to C rows i and S_{ij}ᵀ·B_i to C rows j, both of which need
// only the B row blocks indexed by its set R_k. The communication is one
// All-to-All of B (gather) plus per-Q_i Reduce-Scatters of the partial C
// rows — ~2·n·m/√P words, independent of n², whereas a GEMM-based SYMM
// moves the n²/√P-word panels of the (expanded) S. E15 measures the gap.
#pragma once

#include <cstdint>

#include "matrix/matrix.hpp"
#include "simmpi/comm.hpp"

namespace parsyrk::core {

/// Triangle-block SYMM. `s` is n×n with the lower triangle authoritative
/// (entries above the diagonal are ignored); `b` is n×m. Requires
/// world.size() == c(c+1) with c prime and n % c² == 0.
/// Returns the full n×m product S·B.
Matrix symm_2d(comm::World& world, const Matrix& s, const Matrix& b,
               std::uint64_t c);

/// 1D SYMM for the wide-B regime (m >> n): the columns of B are
/// partitioned, the packed lower triangle of S is all-gathered once
/// ((1−1/P)·n(n+1)/2 words), and every output column is computed locally —
/// no reduction. The 1D/2D crossover mirrors the SYRK one: 1D wins while
/// the S triangle is smaller than the B/C panels.
Matrix symm_1d(comm::World& world, const Matrix& s, const Matrix& b);

}  // namespace parsyrk::core
