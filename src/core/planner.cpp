#include "core/planner.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <utility>

#include "distribution/triangle_block.hpp"
#include "support/check.hpp"
#include "support/prime.hpp"
#include "support/table.hpp"

namespace parsyrk::core {

namespace {

/// Modeled runtime of one candidate: the closed-form collective cost plus
/// the leading-order local flops, times the fold factor (co-resident logical
/// ranks serialize on their shared physical rank).
double score_candidate(const costmodel::CollectiveCost& cost,
                       const costmodel::SyrkShape& shape,
                       std::uint64_t logical_ranks, std::uint64_t fold,
                       const costmodel::Machine& m) {
  const double flops = costmodel::syrk_flops_per_rank(shape, logical_ranks);
  return static_cast<double>(fold) * (cost.seconds(m) + flops * m.gamma);
}

/// Reprices a flat-scored candidate for a two-level topology
/// (opts.ranks_per_node > 1): the pairwise schedule's intra-node share moves
/// to the cheap tier, and for the 1D/2D dominant exchange the hierarchical
/// node-leader realization competes — the cheaper one wins and is recorded
/// in plan.strategy. Folded plans and grids that don't split into >= 2 whole
/// nodes keep flat pricing (topology'd execution refuses folds anyway), and
/// 3D stays fully inter-priced and pairwise — its sub-grids are strided
/// across nodes, so that is the conservative bound.
void apply_topology(std::uint64_t n1, std::uint64_t n2,
                    const PlanSearchOptions& opts, PlanCandidate* cand) {
  Plan& plan = cand->plan;
  if (opts.ranks_per_node <= 1 || plan.folded()) return;
  const auto rpn = static_cast<std::uint64_t>(opts.ranks_per_node);
  if (plan.procs % rpn != 0 || plan.procs / rpn < 2) return;
  if (plan.algorithm == Algorithm::kThreeD) return;
  const std::uint64_t nodes = plan.procs / rpn;
  const costmodel::SyrkShape shape{plan.exec_n1(n1), n2};
  const costmodel::CollectiveCost split =
      costmodel::split_tiers(cand->cost, plan.procs, rpn);
  const costmodel::CollectiveCost hier =
      plan.algorithm == Algorithm::kOneD
          ? costmodel::syrk_1d_cost_hier(shape, nodes, rpn)
          : costmodel::syrk_2d_cost_hier(shape, plan.c, rpn);
  if (hier.seconds(opts.machine) < split.seconds(opts.machine)) {
    plan.strategy = CollectiveStrategy::kHierarchical;
    cand->cost = hier;
    if (!cand->note.empty()) cand->note += ", ";
    cand->note += "hierarchical on " + std::to_string(nodes) + " nodes";
  } else {
    cand->cost = split;
  }
  cand->score =
      score_candidate(cand->cost, shape, plan.procs, 1, opts.machine);
}

/// Candidate constructor shared by the 2D/3D enumeration: grid (c, p2) on
/// `max_procs` physical ranks, folded when the logical grid is larger.
/// Returns false when the grid needs a fold beyond opts.max_fold.
bool make_grid_candidate(std::uint64_t n1, std::uint64_t n2,
                         std::uint64_t max_procs, std::uint64_t c,
                         std::uint64_t p2, std::uint64_t exec_n1,
                         const PlanSearchOptions& opts, PlanCandidate* out) {
  const std::uint64_t p1 = c * (c + 1);
  const std::uint64_t logical = p1 * p2;
  Plan plan;
  plan.algorithm = p2 == 1 ? Algorithm::kTwoD : Algorithm::kThreeD;
  plan.c = c;
  plan.p1 = p1;
  plan.p2 = p2;
  plan.padded_n1 = exec_n1 == n1 ? 0 : exec_n1;
  std::uint64_t fold = 1;
  if (logical <= max_procs) {
    plan.procs = logical;
  } else {
    if (!opts.allow_folding) return false;
    fold = (logical + max_procs - 1) / max_procs;
    if (fold > opts.max_fold) return false;
    plan.procs = max_procs;
    plan.logical = logical;
  }
  plan.regime = bounds::syrk_lower_bound(n1, n2, plan.procs).regime;

  const costmodel::SyrkShape shape{exec_n1, n2};
  out->plan = plan;
  out->cost = p2 == 1 ? costmodel::syrk_2d_cost(shape, c)
                      : costmodel::syrk_3d_cost(shape, c, p2);
  out->score = score_candidate(out->cost, shape, logical, fold, opts.machine);
  out->idle_ranks = max_procs - plan.procs;
  std::string note;
  if (plan.padded_n1 != 0) {
    note = "padded n1 " + std::to_string(n1) + "->" + std::to_string(exec_n1);
  }
  if (plan.folded()) {
    if (!note.empty()) note += ", ";
    note += "folded " + std::to_string(logical) + " logical on " +
            std::to_string(max_procs) + " (x" + std::to_string(fold) + ")";
  }
  out->note = std::move(note);
  apply_topology(n1, n2, opts, out);
  return true;
}

/// Enumerates the 2D/3D lattice for one prime c at execution row count
/// `exec_n1` (== n1 for exact grids, the next multiple of c² for padded).
void enumerate_grids_for_c(std::uint64_t n1, std::uint64_t n2,
                           std::uint64_t max_procs, std::uint64_t c,
                           std::uint64_t exec_n1,
                           const PlanSearchOptions& opts,
                           std::vector<PlanCandidate>* out) {
  const std::uint64_t p1 = c * (c + 1);
  const std::uint64_t fold_room =
      opts.allow_folding ? max_procs * opts.max_fold : max_procs;
  // p2 >= 2 slices each own at least one column of A; p2 = 1 is the 2D plan.
  const std::uint64_t p2_max = std::min(n2, fold_room / p1);
  for (std::uint64_t p2 = 1; p2 <= std::max<std::uint64_t>(1, p2_max); ++p2) {
    if (p1 * p2 > fold_room) break;
    PlanCandidate cand;
    if (make_grid_candidate(n1, n2, max_procs, c, p2, exec_n1, opts, &cand)) {
      out->push_back(std::move(cand));
    }
  }
}

}  // namespace

PlanReport enumerate_syrk_plans(std::uint64_t n1, std::uint64_t n2,
                                std::uint64_t max_procs,
                                const PlanSearchOptions& opts) {
  PARSYRK_REQUIRE(n1 >= 2 && n2 >= 1 && max_procs >= 1,
                  "plan needs n1 >= 2, n2 >= 1, max_procs >= 1");
  PARSYRK_REQUIRE(opts.max_fold >= 1, "max_fold must be >= 1");
  PlanReport report;
  report.n1 = n1;
  report.n2 = n2;
  report.max_procs = max_procs;
  report.options = opts;

  // 1D at exactly P: always valid, always zero-idle — the baseline every
  // grid has to beat.
  {
    PlanCandidate cand;
    cand.plan.algorithm = Algorithm::kOneD;
    cand.plan.procs = max_procs;
    cand.plan.c = 0;
    cand.plan.p1 = 1;
    cand.plan.p2 = max_procs;
    cand.plan.regime = bounds::syrk_lower_bound(n1, n2, max_procs).regime;
    const costmodel::SyrkShape shape{n1, n2};
    cand.cost = costmodel::syrk_1d_cost(shape, max_procs);
    cand.score = score_candidate(cand.cost, shape, max_procs, 1, opts.machine);
    cand.idle_ranks = 0;
    apply_topology(n1, n2, opts, &cand);
    report.candidates.push_back(std::move(cand));
  }

  // 2D/3D lattice over every usable prime c. Primes come from the sieve
  // (one O(c_max log log c_max) pass) instead of per-candidate trial
  // division.
  const std::uint64_t fold_room =
      opts.allow_folding ? max_procs * opts.max_fold : max_procs;
  const std::uint64_t c_max = isqrt(fold_room);  // c(c+1) <= fold_room
  bool have_exact_grid = false;
  std::vector<std::uint64_t> padded_primes;
  for (std::uint64_t c : primes_up_to(c_max)) {
    if (c * (c + 1) > fold_room) break;
    if (n1 % (c * c) == 0) {
      enumerate_grids_for_c(n1, n2, max_procs, c, n1, opts,
                            &report.candidates);
      have_exact_grid = true;
    } else if (opts.allow_padding) {
      padded_primes.push_back(c);
    }
  }
  // Padded grids: always in the race when the caller waived divisibility;
  // otherwise only as a fallback so an awkward n1 still gets a 2D/3D plan
  // instead of silently dropping to 1D.
  if (!opts.n1_divisibility || !have_exact_grid) {
    for (std::uint64_t c : padded_primes) {
      const std::uint64_t c2 = c * c;
      const std::uint64_t exec_n1 = (n1 + c2 - 1) / c2 * c2;
      enumerate_grids_for_c(n1, n2, max_procs, c, exec_n1, opts,
                            &report.candidates);
    }
  }

  std::stable_sort(report.candidates.begin(), report.candidates.end(),
                   [](const PlanCandidate& a, const PlanCandidate& b) {
                     return a.score < b.score;
                   });

  // Selection: argmin, unless a zero-idle candidate sits within the
  // utilization slack — then every physical rank works for (at most) a
  // slack-bounded modeled-cost premium.
  report.chosen_index = 0;
  const double limit =
      report.candidates.front().score * (1.0 + opts.utilization_slack);
  if (report.candidates.front().idle_ranks > 0) {
    for (std::size_t i = 1; i < report.candidates.size(); ++i) {
      if (report.candidates[i].score > limit) break;
      if (report.candidates[i].idle_ranks == 0) {
        report.chosen_index = i;
        break;
      }
    }
  }
  report.candidates[report.chosen_index].chosen = true;
  return report;
}

costmodel::CollectiveCost plan_collective_cost(std::uint64_t n1,
                                               std::uint64_t n2,
                                               const Plan& plan,
                                               int ranks_per_node) {
  const costmodel::SyrkShape shape{plan.exec_n1(n1), n2};
  costmodel::CollectiveCost flat;
  switch (plan.algorithm) {
    case Algorithm::kOneD:
      flat = costmodel::syrk_1d_cost(shape, plan.procs);
      break;
    case Algorithm::kTwoD:
      flat = costmodel::syrk_2d_cost(shape, plan.c);
      break;
    case Algorithm::kThreeD:
      flat = costmodel::syrk_3d_cost(shape, plan.c, plan.p2);
      break;
  }
  const auto rpn =
      static_cast<std::uint64_t>(ranks_per_node < 1 ? 1 : ranks_per_node);
  if (rpn <= 1 || plan.folded() || plan.procs % rpn != 0 ||
      plan.procs / rpn < 2 || plan.algorithm == Algorithm::kThreeD) {
    return flat;
  }
  if (plan.strategy == CollectiveStrategy::kHierarchical) {
    return plan.algorithm == Algorithm::kOneD
               ? costmodel::syrk_1d_cost_hier(shape, plan.procs / rpn, rpn)
               : costmodel::syrk_2d_cost_hier(shape, plan.c, rpn);
  }
  return costmodel::split_tiers(flat, plan.procs, rpn);
}

double plan_modeled_seconds(std::uint64_t n1, std::uint64_t n2,
                            const Plan& plan,
                            const costmodel::Machine& machine,
                            int ranks_per_node) {
  const costmodel::SyrkShape shape{plan.exec_n1(n1), n2};
  return score_candidate(plan_collective_cost(n1, n2, plan, ranks_per_node),
                         shape, plan.logical_ranks(), plan.fold_factor(),
                         machine);
}

int plan_effective_pipeline_chunks(std::uint64_t n1, std::uint64_t n2,
                                   const Plan& plan, int chunks) {
  if (chunks < 1) return 1;
  const std::uint64_t exec_n1 = plan.exec_n1(n1);
  std::uint64_t cap = 1;
  switch (plan.algorithm) {
    case Algorithm::kOneD:
      // Segments slice the packed triangle entrywise.
      cap = exec_n1 * (exec_n1 + 1) / 2;
      break;
    case Algorithm::kTwoD: {
      // Segments slice each exchange payload; the smallest nonempty payload
      // is ⌊(n1/c²)·n2/(c+1)⌋ words (see syrk_2d_gather's clamp).
      const std::uint64_t nb = exec_n1 / (plan.c * plan.c);
      cap = std::max<std::uint64_t>(nb * n2 / (plan.c + 1), 1);
      break;
    }
    case Algorithm::kThreeD: {
      // Segments group whole output blocks; the critical path runs through
      // the rank owning the most blocks.
      const dist::TriangleBlockDistribution d(plan.c);
      for (std::uint64_t k = 0; k < d.num_procs(); ++k) {
        const std::uint64_t items =
            d.owned_pairs(k).size() + (d.diagonal_block(k) ? 1 : 0);
        cap = std::max(cap, items);
      }
      break;
    }
  }
  return static_cast<int>(
      std::min<std::uint64_t>(static_cast<std::uint64_t>(chunks), cap));
}

double plan_modeled_seconds_pipelined(std::uint64_t n1, std::uint64_t n2,
                                      const Plan& plan, int chunks,
                                      const costmodel::Machine& machine,
                                      int ranks_per_node) {
  const costmodel::SyrkShape shape{plan.exec_n1(n1), n2};
  const costmodel::CollectiveCost cost =
      plan_collective_cost(n1, n2, plan, ranks_per_node);
  // The execution path clamps the segment count to the plan's available
  // segments; pricing a larger S would charge latency for messages that are
  // never posted.
  const int s_eff = plan_effective_pipeline_chunks(n1, n2, plan, chunks);
  const double s = static_cast<double>(s_eff);
  // Reduction adds ride with the flight time; latency is paid per segment
  // on both tiers.
  const double comm = cost.messages * machine.alpha * s +
                      cost.words * machine.beta +
                      cost.messages_intra * machine.alpha_intra * s +
                      cost.words_intra * machine.beta_intra +
                      cost.flops * machine.gamma;
  const double comp =
      costmodel::syrk_flops_per_rank(shape, plan.logical_ranks()) *
      machine.gamma;
  return static_cast<double>(plan.fold_factor()) *
         costmodel::pipelined_seconds(comm, comp, s_eff);
}

PlanReport report_for_plan(std::uint64_t n1, std::uint64_t n2,
                           std::uint64_t max_procs, const Plan& plan,
                           std::string note) {
  PlanReport report;
  report.n1 = n1;
  report.n2 = n2;
  report.max_procs = max_procs;
  PlanCandidate cand;
  cand.plan = plan;
  cand.cost = plan_collective_cost(n1, n2, plan);
  cand.score =
      plan_modeled_seconds(n1, n2, plan, report.options.machine);
  cand.idle_ranks = max_procs > plan.procs ? max_procs - plan.procs : 0;
  cand.chosen = true;
  cand.note = std::move(note);
  report.candidates.push_back(std::move(cand));
  report.chosen_index = 0;
  return report;
}

void PlanReport::explain(std::ostream& os) const {
  os << "SYRK plan search: n1=" << n1 << " n2=" << n2
     << " max_procs=" << max_procs << " ("
     << (options.n1_divisibility ? "exact grids preferred"
                                 : "padded grids compete")
     << ", folding " << (options.allow_folding ? "on" : "off");
  if (options.ranks_per_node > 1) {
    os << ", topology " << max_procs / options.ranks_per_node << " nodes x "
       << options.ranks_per_node;
  }
  os << ")\n";
  Table t({"", "plan", "procs", "idle", "msgs", "words", "score(s)", "note"});
  for (const auto& cand : candidates) {
    std::ostringstream plan_os;
    plan_os << algorithm_name(cand.plan.algorithm);
    if (cand.plan.c != 0) {
      plan_os << " c=" << cand.plan.c << " p2=" << cand.plan.p2;
    }
    t.add_row({cand.chosen ? "->" : "", plan_os.str(),
               std::to_string(cand.plan.procs),
               std::to_string(cand.idle_ranks),
               fmt_double(cand.cost.messages, 6), fmt_double(cand.cost.words, 8),
               fmt_double(cand.score, 4), cand.note});
  }
  t.print(os);
  os << "chosen/best modeled-cost ratio: " << fmt_double(chosen_vs_best(), 4)
     << "\n";
}

}  // namespace parsyrk::core
