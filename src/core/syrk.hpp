// Public API: communication-optimal parallel SYRK (paper Algorithms 1–3).
//
// Quickstart:
//   parsyrk::comm::World world(12);                      // P = 12 ranks
//   parsyrk::Matrix a = parsyrk::random_matrix(180, 64, /*seed=*/1);
//   parsyrk::Matrix c = parsyrk::core::syrk_2d(world, a, /*c=*/3);
//   auto words = world.ledger().summary().critical_path_words();
//
// Or let the planner pick the algorithm and grid (§5.4):
//   auto run = parsyrk::core::syrk_auto(a, /*max_procs=*/64);
//
// The returned matrix is the full symmetric C = A·Aᵀ, reassembled from the
// distributed owners for convenience and validation; reassembly happens via
// shared memory after the algorithm completes and is NOT counted as
// communication. The world's ledger holds the per-rank measured volumes,
// attributable by phase ("gather_A", "reduce_C").
#pragma once

#include <cstdint>
#include <iosfwd>

#include "bounds/syrk_bounds.hpp"
#include "core/syrk_internal.hpp"
#include "matrix/matrix.hpp"
#include "simmpi/comm.hpp"

namespace parsyrk::core {

using internal::ExchangeKind;
using internal::ReduceKind;

/// Alg. 1 (1D): partitions only the n2 dimension; A is block-column
/// distributed, C is reduce-scattered. Optimal for n1 <= n2 and small P
/// (Theorem 1 case 1). Uses world.size() ranks. With
/// ReduceKind::kBruck the reduction is simultaneously bandwidth- and
/// latency-optimal (§6's observation), making the whole 1D algorithm
/// doubly optimal.
Matrix syrk_1d(comm::World& world, const Matrix& a,
               ReduceKind reduce = ReduceKind::kPairwise);

/// Alg. 2 (2D): partitions both n1 dimensions via the triangle-block
/// distribution. Requires world.size() == c(c+1) with c prime and
/// n1 % c² == 0. Optimal for n1 > n2 and moderate P (Theorem 1 case 2).
/// `exchange` selects the §6 All-to-All realization (pairwise default;
/// butterfly trades bandwidth for O(log P) latency and additionally needs
/// (n1/c²)·n2 divisible by c+1).
Matrix syrk_2d(comm::World& world, const Matrix& a, std::uint64_t c,
               ExchangeKind exchange = ExchangeKind::kPairwise);

/// Real-world ingestion flow: A starts on `root` only. The root scatters
/// the 1D column blocks (measured under ledger phase "scatter_A"), then
/// Alg. 1 runs on the scattered data. Theorem 1 assumes one *distributed*
/// copy of A; this entry point makes the extra ingestion term —
/// n1·n2·(1−1/P) words out of the root — visible and attributable.
Matrix syrk_1d_from_root(comm::World& world, const Matrix& a, int root);

/// Alg. 3 (3D): p1 = c(c+1) by p2 grid; the 2D algorithm per column slice
/// of A followed by a Reduce-Scatter of C across slices. Requires
/// world.size() == c(c+1)·p2 and n1 % c² == 0. Optimal for large P
/// (Theorem 1 case 3) with the §5.4 grid.
Matrix syrk_3d(comm::World& world, const Matrix& a, std::uint64_t c,
               std::uint64_t p2);

/// Which algorithm a plan selects.
enum class Algorithm { kOneD, kTwoD, kThreeD };

const char* algorithm_name(Algorithm a);

/// An executable algorithm + grid choice for a given problem, following the
/// optimal selection rules of §5.4 (with processor counts rounded to the
/// nearest usable c(c+1) grid).
struct Plan {
  Algorithm algorithm = Algorithm::kOneD;
  bounds::Regime regime = bounds::Regime::kOneD;  // bound case at max_procs
  std::uint64_t procs = 1;  // total ranks the plan uses (<= max_procs)
  std::uint64_t c = 0;      // triangle-distribution prime (2D/3D)
  std::uint64_t p1 = 1;     // = c(c+1) for 2D/3D
  std::uint64_t p2 = 1;     // slice count (3D), or procs (1D)
};

/// Chooses algorithm and grid per §5.4 for up to `max_procs` ranks.
/// `n1_divisibility` — when true (default), only grids with n1 % c² == 0
/// are considered so the run communicates exactly the analyzed volumes.
Plan plan_syrk(std::uint64_t n1, std::uint64_t n2, std::uint64_t max_procs,
               bool n1_divisibility = true);

std::ostream& operator<<(std::ostream& os, const Plan& plan);

/// Result of a planned run.
struct SyrkRun {
  Plan plan;
  Matrix c;                        // full symmetric result
  comm::CostSummary total;         // whole-run communication
  comm::CostSummary gather_a;      // "gather_A" phase
  comm::CostSummary reduce_c;      // "reduce_C" phase
  bounds::SyrkBound bound;         // Theorem 1 at the plan's processor count
};

/// Plans and executes SYRK on an internally created world of plan.procs
/// ranks; fills in measured costs and the matching lower bound.
SyrkRun syrk_auto(const Matrix& a, std::uint64_t max_procs);

}  // namespace parsyrk::core
