// Public API: communication-optimal parallel SYRK (paper Algorithms 1–3).
//
// Quickstart (see core/session.hpp for Session and SyrkRequest):
//   parsyrk::core::Session session(12);                  // P = 12 warm ranks
//   parsyrk::Matrix a = parsyrk::random_matrix(180, 64, /*seed=*/1);
//   auto run = parsyrk::core::syrk(session, parsyrk::core::SyrkRequest(a));
//   auto words = run.total.critical_path_words();
//
// The Session owns a World whose workers are leased once from the shared
// pool, so issuing many requests reuses the same parked threads. Requests
// default to the §5.4 planner; explicit algorithm/grid, root-held input,
// and memory-aware planning are selected on the request.
//
// The returned matrix is the full symmetric C = A·Aᵀ, reassembled from the
// distributed owners for convenience and validation; reassembly happens via
// shared memory after the algorithm completes and is NOT counted as
// communication. The run (and the world's ledger) holds the per-rank
// measured volumes, attributable by phase ("gather_A", "reduce_C",
// "scatter_A").
//
// The pre-1.x per-algorithm entry points (syrk_1d/2d/3d/_from_root,
// syrk_auto) are gone; docs/MIGRATION.md maps each one to its
// Session/SyrkRequest spelling. Callers that drive raw Worlds directly can
// still execute an explicit Plan via internal::run_syrk_plan.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>

#include "bounds/syrk_bounds.hpp"
#include "core/syrk_internal.hpp"
#include "matrix/matrix.hpp"
#include "simmpi/comm.hpp"

namespace parsyrk::core {

using internal::ExchangeKind;
using internal::ReduceKind;

/// Execution knobs shared by every SYRK entry point.
struct SyrkOptions {
  /// Reduce-Scatter realization for the 1D/3D algorithms: pairwise exchange
  /// (latency P−1) or the §6 Bruck adaptation (bandwidth- AND
  /// latency-optimal). The root-scatter ingestion path always reduces
  /// pairwise (its blocks are uneven).
  ReduceKind reduce = ReduceKind::kPairwise;
  /// All-to-All realization for the 2D algorithm (§6 trade-off).
  ExchangeKind exchange = ExchangeKind::kPairwise;
  /// When set (1D only): A starts on this rank and is scattered first,
  /// measured under ledger phase "scatter_A". Theorem 1 assumes one
  /// *distributed* copy of A; this makes the extra ingestion term —
  /// n1·n2·(1−1/P) words out of the root — visible and attributable.
  std::optional<int> root;
  /// Pipelined chunked execution (0 = off, the historical blocking path).
  /// When >= 1, the k-phase collective — the packed-triangle Reduce-Scatter
  /// (1D), the All-to-All of A (2D), the per-slice Reduce-Scatter of C
  /// (3D) — runs as this many segments driven by nonblocking handles, so
  /// segment s's local work overlaps segment s+1's communication. Word
  /// volume and every entry's accumulation order are identical to blocking
  /// for ANY chunk count (results match bitwise); message count scales with
  /// the chunk count; chunks=1 replays the blocking schedule bitwise
  /// (ledger AND trace). Requires pairwise collectives and no root
  /// ingestion. Clamped to the available segment count.
  int pipeline_chunks = 0;
  /// Two-level topology: consecutive ranks are grouped into nodes of this
  /// many ranks each (1 = flat machine, the historical default). Intra-node
  /// words are ledgered on the cheap (α0,β0) tier, inter-node words on the
  /// scarce (α1,β1) tier, and hierarchical collectives become available.
  int ranks_per_node = 1;
};

/// Which collective realization a plan selects for its dominant exchange.
/// kPairwise is the paper's baseline (bandwidth-optimal, latency P−1);
/// kBruck and kButterfly are the §6 latency-efficient variants; and
/// kHierarchical is the two-level node-leader scheme that minimizes
/// inter-node words on a nodes × ranks-per-node topology.
enum class CollectiveStrategy { kPairwise, kBruck, kButterfly, kHierarchical };

const char* strategy_name(CollectiveStrategy s);

/// Which algorithm a plan selects.
enum class Algorithm { kOneD, kTwoD, kThreeD };

const char* algorithm_name(Algorithm a);

/// An executable algorithm + grid choice for a given problem. Selected by
/// the cost-model-driven enumerator (core/planner.hpp), which scores every
/// candidate grid with the closed-form §5 costs and may pad n1 up to the
/// next multiple of c² or fold a logical grid onto fewer physical ranks.
struct Plan {
  Algorithm algorithm = Algorithm::kOneD;
  bounds::Regime regime = bounds::Regime::kOneD;  // bound case at `procs`
  std::uint64_t procs = 1;  // physical ranks the plan occupies (<= max_procs)
  std::uint64_t c = 0;      // triangle-distribution prime (2D/3D)
  std::uint64_t p1 = 1;     // = c(c+1) for 2D/3D
  std::uint64_t p2 = 1;     // slice count (3D), or procs (1D)
  /// Execution row count when the planner padded A with zero rows so that
  /// c² | n1 (0 = no padding). The result is truncated back to n1×n1.
  std::uint64_t padded_n1 = 0;
  /// Logical grid size when the plan folds p1·p2 > procs logical ranks onto
  /// `procs` physical ranks round-robin (0 = unfolded). Folding lets the
  /// planner keep the communication-optimal grid at awkward physical P.
  std::uint64_t logical = 0;
  /// Collective realization the planner picked for the dominant exchange
  /// (pairwise unless a two-level topology made hierarchical cheaper).
  CollectiveStrategy strategy = CollectiveStrategy::kPairwise;

  /// Ranks the SPMD body runs on (the world size the plan needs).
  std::uint64_t logical_ranks() const { return logical != 0 ? logical : procs; }
  bool folded() const { return logical != 0; }
  /// Logical ranks co-resident on the busiest physical rank.
  std::uint64_t fold_factor() const {
    return logical != 0 ? (logical + procs - 1) / procs : 1;
  }
  /// The row count the algorithm actually runs on.
  std::uint64_t exec_n1(std::uint64_t n1) const {
    return padded_n1 != 0 ? padded_n1 : n1;
  }
};

/// Chooses algorithm and grid for up to `max_procs` physical ranks by
/// enumerating every candidate plan (1D at P; 2D at each prime pronic; 3D
/// over the (c, p2) lattice, including padded and folded variants) and
/// picking the cheapest under the α-β-γ cost model — see core/planner.hpp
/// for the full search, and enumerate_syrk_plans() for the rejected
/// candidates. `n1_divisibility` — when true (default), grids with
/// n1 % c² != 0 are only considered (with zero-padding) when no exactly
/// divisible grid exists; when false, padded grids always compete.
Plan plan_syrk(std::uint64_t n1, std::uint64_t n2, std::uint64_t max_procs,
               bool n1_divisibility = true);

std::ostream& operator<<(std::ostream& os, const Plan& plan);

/// Result of a planned run.
struct SyrkRun {
  Plan plan;
  Matrix c;                        // full symmetric result
  comm::CostSummary total;         // whole-run communication
  comm::CostSummary gather_a;      // "gather_A" phase
  comm::CostSummary reduce_c;      // "reduce_C" phase
  comm::CostSummary scatter_a;     // "scatter_A" ingestion (root requests)
  bounds::SyrkBound bound;         // Theorem 1 at the plan's processor count
  /// Two-level-topology runs only (nodes >= 2): inter-node traffic alone,
  /// folded to per-node buckets (ranks = node count; max = busiest node).
  /// The BoundAuditor audits this against Theorem 1 at P = nodes.
  comm::CostSummary total_inter;
  /// Node count of the run's topology (0 = flat machine, no inter summary).
  int nodes = 0;
  /// Per-message event trace of this request's job, present when the
  /// request opted in via with_trace(). Feed to trace::write_chrome_json /
  /// write_binary / Rollup / BoundAuditor.
  std::optional<comm::JobTrace> trace;
};

namespace internal {

/// Per-rank body of an executable plan: dispatches to the 1D/2D/3D SPMD
/// routines on `comm` (a communicator of exactly plan.logical_ranks() ranks
/// — the world itself or an active-ranks sub-communicator) and assembles
/// this rank's share of the result into `c_full` via shared memory (free).
/// `a` and `c_full` must already be at the plan's execution size
/// (plan.exec_n1 rows); padding/truncation happens in the caller.
void run_syrk_plan_rank(comm::Comm& comm, const ConstMatrixView& a,
                        const Plan& plan, const SyrkOptions& opts,
                        Matrix& c_full);

/// Copies `a` into the top rows of a `rows`-row zero matrix (planner
/// padding: the zero rows contribute nothing to A·Aᵀ).
Matrix pad_rows(const Matrix& a, std::uint64_t rows);

/// Top-left n1×n1 corner of a padded result (pass-through when sizes match).
Matrix truncate_result(Matrix c_exec, std::uint64_t n1);

/// Executes `plan` as one job on a world of exactly plan.logical_ranks()
/// ranks (folded onto plan.procs physical ranks when the plan folds),
/// applying the plan's zero-row padding and truncating the result back to
/// n1×n1. The single execution path behind every public entry point.
Matrix run_syrk_plan(comm::World& world, const Matrix& a, const Plan& plan,
                     const SyrkOptions& opts);

}  // namespace internal

}  // namespace parsyrk::core
