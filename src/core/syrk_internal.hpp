// SPMD building blocks shared by the 1D/2D/3D drivers.
//
// Each routine is the per-rank body of one of the paper's algorithms,
// operating on a sub-communicator so the 3D algorithm can reuse the 2D body
// per slice (paper Alg. 3 line 3). Data "distribution" is realized by each
// rank reading only its assigned portion of the shared input view during
// setup — reads of local data are free, exactly as in the model, and every
// non-local word is counted by the runtime ledger.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "distribution/triangle_block.hpp"
#include "matrix/matrix.hpp"
#include "simmpi/comm.hpp"

namespace parsyrk::core::internal {

/// Ledger phase labels shared by algorithms, tests, and benches.
inline constexpr const char* kPhaseGatherA = "gather_A";
inline constexpr const char* kPhaseReduceC = "reduce_C";
inline constexpr const char* kPhaseScatterA = "scatter_A";

/// How the 1D/3D algorithms' Reduce-Scatter is realized: pairwise exchange
/// (latency P−1), the §6 Bruck adaptation — bandwidth- AND latency-optimal
/// (ceil(log2 P) messages) at the cost of padding the packed triangle to a
/// multiple of P (< P extra words) — or the two-level hierarchical variant
/// (intra-node reduce to a node leader, leader-only inter-node exchange,
/// intra-node scatter) which minimizes the scarce inter-node word volume on
/// a nodes × ranks-per-node topology. kHierarchical requires the world's
/// topology to have ranks_per_node > 1 and falls back to pairwise otherwise.
enum class ReduceKind { kPairwise, kBruck, kHierarchical };

/// Alg. 1 per-rank body: local SYRK over this rank's column block of A,
/// then a Reduce-Scatter of the packed lower triangle of C.
/// Returns this rank's even chunk of the packed triangle and its offset.
struct PackedChunk {
  std::size_t offset = 0;
  std::vector<double> data;
};
PackedChunk syrk_1d_spmd(comm::Comm& comm, const ConstMatrixView& a,
                         ReduceKind reduce = ReduceKind::kPairwise);

/// Pipelined Alg. 1 body: the packed-triangle Reduce-Scatter is split into
/// `chunks` contiguous segments driven by nonblocking handles, so segment
/// s's result scatters into `c_full` while segment s+1 is in flight. Every
/// segment's per-rank sizes are the intersections of the blocking ownership
/// ranges with the segment, so the summed word volume — and each entry's
/// accumulation order — is identical to the blocking path; chunks=1 replays
/// the blocking schedule exactly (same tags, same event order).
void syrk_1d_spmd_pipelined(comm::Comm& comm, const ConstMatrixView& a,
                            int chunks, Matrix& c_full);

/// How the 2D algorithm's All-to-All is realized (§6 trade-off):
/// pairwise exchange is bandwidth-optimal with latency P−1; the butterfly
/// (Bruck) variant has latency ceil(log2 P) at ~(log2 P)/2 times the words;
/// the hierarchical variant gathers payloads to node leaders, exchanges
/// node-aggregates between leaders, and scatters within the node — cheapest
/// in inter-node words on a two-level topology.
enum class ExchangeKind { kPairwise, kButterfly, kHierarchical };

/// Alg. 2 per-rank body: All-to-All gather of the c row blocks in this
/// rank's row-block set, then local GEMMs for the triangle block of blocks
/// and a local SYRK for the diagonal block if assigned.
struct TriangleBlocks {
  /// Owned off-diagonal block coordinates (i, j), i > j, sorted; one Matrix
  /// per pair in the same order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;
  std::vector<Matrix> off_blocks;
  /// Diagonal block index and data (lower triangle valid) if D_k nonempty.
  std::optional<std::uint64_t> diag_index;
  Matrix diag_block;
};
TriangleBlocks syrk_2d_spmd(comm::Comm& comm,
                            const dist::TriangleBlockDistribution& d,
                            const ConstMatrixView& a,
                            ExchangeKind exchange = ExchangeKind::kPairwise,
                            int pipeline_chunks = 0);

/// Row blocks of A this rank assembled from the All-to-All (the output of
/// the 2D gather stage, input to the compute stage).
struct AssembledRowBlocks {
  std::vector<std::uint64_t> indices;  // R_k, sorted
  std::vector<Matrix> blocks;          // same order
  const Matrix& block_of(std::uint64_t i) const;
};

/// Gather stage of Alg. 2 (lines 3–14): All-to-All exchange of row-block
/// chunks plus assembly. With pipeline_chunks >= 1 the exchange runs as
/// that many segmented nonblocking All-to-Alls (pairwise only): segment s
/// assembles while segment s+1 is in flight. Word volume is identical for
/// any chunk count; chunks <= 1 replays the blocking schedule exactly.
AssembledRowBlocks syrk_2d_gather(comm::Comm& comm,
                                  const dist::TriangleBlockDistribution& d,
                                  const ConstMatrixView& a,
                                  ExchangeKind exchange,
                                  int pipeline_chunks = 0);

/// Compute stage of Alg. 2 (lines 15–20) over assembled row blocks:
/// GEMM per owned off-diagonal pair, SYRK for the diagonal block.
TriangleBlocks syrk_2d_compute(const dist::TriangleBlockDistribution& d,
                               std::uint64_t k, const AssembledRowBlocks& rb);

/// Serializes the blocks a rank owns into the flat buffer the 3D algorithm
/// reduce-scatters: off-diagonal blocks in pair order (row-major within a
/// block), then the diagonal block packed lower. Identical layout across
/// ranks with the same k, which is what makes the per-k Reduce-Scatter of
/// Alg. 3 line 5 well-formed.
std::vector<double> flatten_triangle_blocks(const TriangleBlocks& b);

/// Writes `flat[lo..hi)` of a rank's flattened triangle blocks into the full
/// output matrix (mirroring into the upper triangle), given the block
/// geometry. `nb` is the block dimension n1/c².
void scatter_flat_to_full(const TriangleBlocks& shape,
                          const std::vector<double>& chunk, std::size_t lo,
                          std::size_t nb, Matrix& c_full);

/// Writes one rank's packed-triangle chunk (from the 1D algorithm) into the
/// full symmetric output.
void scatter_packed_to_full(const PackedChunk& chunk, Matrix& c_full);

}  // namespace parsyrk::core::internal
