#include "core/syr2k.hpp"

#include <algorithm>

#include "core/syrk_internal.hpp"
#include "distribution/block1d.hpp"
#include "distribution/triangle_block.hpp"
#include "matrix/kernels.hpp"
#include "matrix/packed.hpp"
#include "support/check.hpp"

namespace parsyrk::core {

namespace {

using internal::TriangleBlocks;

/// 2D SYR2K per-rank body: one All-to-All carries this rank's chunks of
/// both A_i and B_i for every i in R_k (concatenated per destination), then
/// the owned blocks are C_ij = A_i·B_jᵀ + B_i·A_jᵀ.
TriangleBlocks syr2k_2d_spmd(comm::Comm& comm,
                             const dist::TriangleBlockDistribution& d,
                             const ConstMatrixView& a,
                             const ConstMatrixView& b) {
  const auto p = static_cast<std::uint64_t>(comm.size());
  PARSYRK_REQUIRE(p == d.num_procs(), "2D SYR2K needs exactly c(c+1) = ",
                  d.num_procs(), " ranks; communicator has ", p);
  PARSYRK_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  const std::uint64_t nblocks = d.num_block_rows();
  const std::size_t n1 = a.rows();
  const std::size_t n2 = a.cols();
  PARSYRK_REQUIRE(n1 % nblocks == 0, "2D SYR2K needs n1 divisible by c² = ",
                  nblocks, "; got n1 = ", n1);
  const std::size_t nb = n1 / nblocks;
  const std::size_t flat = nb * n2;
  const auto k = static_cast<std::uint64_t>(comm.rank());
  const int parts = static_cast<int>(d.c() + 1);

  comm.set_phase(internal::kPhaseGatherA);
  const auto& rk = d.row_block_set(k);
  auto read_chunk = [&](const ConstMatrixView& m, std::uint64_t i) {
    const int q = static_cast<int>(d.chunk_index(i, k));
    const std::size_t lo = dist::chunk_begin(flat, parts, q);
    const std::size_t hi = dist::chunk_end(flat, parts, q);
    std::vector<double> chunk;
    chunk.reserve(hi - lo);
    for (std::size_t t = lo; t < hi; ++t) {
      chunk.push_back(m(i * nb + t / n2, t % n2));
    }
    return chunk;
  };
  std::vector<std::vector<double>> sendbuf(p);
  for (std::uint64_t i : rk) {
    auto mine_a = read_chunk(a, i);
    auto mine_b = read_chunk(b, i);
    std::vector<double> both;
    both.reserve(mine_a.size() + mine_b.size());
    both.insert(both.end(), mine_a.begin(), mine_a.end());
    both.insert(both.end(), mine_b.begin(), mine_b.end());
    for (std::uint64_t k2 : d.processor_set(i)) {
      if (k2 == k) continue;
      PARSYRK_CHECK(sendbuf[k2].empty());
      sendbuf[k2] = both;
    }
  }
  auto recvbuf = comm.all_to_all_v(sendbuf);

  std::vector<Matrix> local_a, local_b;
  local_a.reserve(rk.size());
  local_b.reserve(rk.size());
  for (std::uint64_t i : rk) {
    Matrix ai(nb, n2), bi(nb, n2);
    for (std::uint64_t k2 : d.processor_set(i)) {
      const int q = static_cast<int>(d.chunk_index(i, k2));
      const std::size_t lo = dist::chunk_begin(flat, parts, q);
      const std::size_t hi = dist::chunk_end(flat, parts, q);
      if (k2 == k) {
        for (std::size_t t = lo; t < hi; ++t) {
          ai(t / n2, t % n2) = a(i * nb + t / n2, t % n2);
          bi(t / n2, t % n2) = b(i * nb + t / n2, t % n2);
        }
      } else {
        const auto& chunk = recvbuf[k2];
        PARSYRK_CHECK(chunk.size() == 2 * (hi - lo));
        flat_assign(ai.view(), lo,
                    std::span<const double>(chunk.data(), hi - lo));
        flat_assign(bi.view(), lo,
                    std::span<const double>(chunk.data() + (hi - lo), hi - lo));
      }
    }
    local_a.push_back(std::move(ai));
    local_b.push_back(std::move(bi));
  }
  auto index_of = [&](std::uint64_t i) {
    auto it = std::lower_bound(rk.begin(), rk.end(), i);
    PARSYRK_CHECK(it != rk.end() && *it == i);
    return static_cast<std::size_t>(it - rk.begin());
  };

  TriangleBlocks out;
  out.pairs = d.owned_pairs(k);
  out.off_blocks.reserve(out.pairs.size());
  for (const auto& [i, j] : out.pairs) {
    Matrix cij(nb, nb);
    gemm_nt(local_a[index_of(i)].view(), local_b[index_of(j)].view(),
            cij.view());
    gemm_nt(local_b[index_of(i)].view(), local_a[index_of(j)].view(),
            cij.view());
    out.off_blocks.push_back(std::move(cij));
  }
  if (auto di = d.diagonal_block(k)) {
    out.diag_index = *di;
    out.diag_block = Matrix(nb, nb);
    syr2k_lower(local_a[index_of(*di)].view(), local_b[index_of(*di)].view(),
                out.diag_block.view());
  }
  return out;
}

}  // namespace

Matrix syr2k_1d(comm::World& world, const Matrix& a, const Matrix& b) {
  PARSYRK_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                  "SYR2K needs same-shape A and B");
  const std::size_t n1 = a.rows();
  const std::size_t n2 = a.cols();
  Matrix c_full(n1, n1);
  world.run([&](comm::Comm& comm) {
    const int p = comm.size();
    const int r = comm.rank();
    const std::size_t c0 = dist::chunk_begin(n2, p, r);
    const std::size_t cw = dist::chunk_size(n2, p, r);
    Matrix cbar(n1, n1);
    if (cw > 0) {
      syr2k_lower(a.view().block(0, c0, n1, cw),
                  b.view().block(0, c0, n1, cw), cbar.view());
    }
    PackedLower packed = PackedLower::from_full(cbar.view());
    comm.set_phase(internal::kPhaseReduceC);
    std::vector<std::size_t> sizes(p);
    for (int q = 0; q < p; ++q) {
      sizes[q] = dist::chunk_size(packed.size(), p, q);
    }
    internal::PackedChunk chunk;
    chunk.offset = dist::chunk_begin(packed.size(), p, r);
    chunk.data = comm.reduce_scatter(packed.span(), sizes);
    internal::scatter_packed_to_full(chunk, c_full);
  });
  return c_full;
}

Matrix syr2k_2d(comm::World& world, const Matrix& a, const Matrix& b,
                std::uint64_t c) {
  dist::TriangleBlockDistribution d(c);
  PARSYRK_REQUIRE(static_cast<std::uint64_t>(world.size()) == d.num_procs(),
                  "2D SYR2K with c = ", c, " needs ", d.num_procs(),
                  " ranks; world has ", world.size());
  const std::size_t nb = a.rows() / d.num_block_rows();
  Matrix c_full(a.rows(), a.rows());
  world.run([&](comm::Comm& comm) {
    TriangleBlocks blocks = syr2k_2d_spmd(comm, d, a.view(), b.view());
    auto flat = internal::flatten_triangle_blocks(blocks);
    internal::scatter_flat_to_full(blocks, flat, 0, nb, c_full);
  });
  return c_full;
}

Matrix syr2k_3d(comm::World& world, const Matrix& a, const Matrix& b,
                std::uint64_t c, std::uint64_t p2) {
  dist::TriangleBlockDistribution d(c);
  const std::uint64_t p1 = d.num_procs();
  PARSYRK_REQUIRE(static_cast<std::uint64_t>(world.size()) == p1 * p2,
                  "3D SYR2K with c = ", c, ", p2 = ", p2, " needs ", p1 * p2,
                  " ranks; world has ", world.size());
  const std::size_t n2 = a.cols();
  const std::size_t nb = a.rows() / d.num_block_rows();
  Matrix c_full(a.rows(), a.rows());
  world.run([&](comm::Comm& comm) {
    const auto w = static_cast<std::uint64_t>(comm.rank());
    const int k = static_cast<int>(w % p1);
    const int l = static_cast<int>(w / p1);
    comm::Comm slice = comm.split(l, k);
    const std::size_t c0 = dist::chunk_begin(n2, static_cast<int>(p2), l);
    const std::size_t cw = dist::chunk_size(n2, static_cast<int>(p2), l);
    TriangleBlocks blocks =
        syr2k_2d_spmd(slice, d, a.view().block(0, c0, a.rows(), cw),
                      b.view().block(0, c0, b.rows(), cw));
    comm::Comm row = comm.split(k, l);
    comm.set_phase(internal::kPhaseReduceC);
    auto flat = internal::flatten_triangle_blocks(blocks);
    std::vector<std::size_t> sizes(p2);
    for (std::uint64_t q = 0; q < p2; ++q) {
      sizes[q] = dist::chunk_size(flat.size(), static_cast<int>(p2),
                                  static_cast<int>(q));
    }
    auto reduced = row.reduce_scatter(flat, sizes);
    const std::size_t lo =
        dist::chunk_begin(flat.size(), static_cast<int>(p2), l);
    internal::scatter_flat_to_full(blocks, reduced, lo, nb, c_full);
  });
  return c_full;
}

}  // namespace parsyrk::core
