// Cost-model-driven SYRK plan search.
//
// The paper's optimal algorithms each want a cooperative processor count —
// 1D runs at any P, 2D at exactly c(c+1) with c prime, 3D at c(c+1)·p2 with
// the §5.4 grid — but a real deployment hands the planner an arbitrary
// max_procs. Instead of mapping P onto those shapes greedily, the planner
// enumerates every candidate plan and scores each with the closed-form §5
// costs under the α-β-γ machine model (messages, words, reduction adds, and
// the n1²n2/2P local flops), picking the cheapest:
//
//   - 1D at exactly P;
//   - 2D at every prime pronic c(c+1) <= P;
//   - 3D over the whole (c, p2) lattice with c(c+1)·p2 <= P and p2 <= n2
//     (the §5.4 target grid is one lattice point; at awkward aspect ratios
//     a neighbour is often cheaper);
//   - padded variants (n1 rounded up to the next multiple of c²) — always
//     competing when n1_divisibility is off, and as a fallback when it is
//     on but no exactly divisible grid exists;
//   - folded variants: a logical grid of c(c+1)·p2 > P ranks executed on P
//     physical ranks round-robin (simmpi's virtual-rank folding), scored at
//     fold_factor × the logical grid's cost. Folding gives awkward P (e.g.
//     P = 4, 5, 7...) access to communication-optimal 2D/3D grids that no
//     unfolded plan reaches, with zero physical ranks left idle.
//
// Tie-breaking: the pure argmin wins, except that a candidate leaving zero
// physical ranks idle is preferred when its score is within
// `utilization_slack` of the argmin — modeled cost within the slack, but
// every rank the caller paid for does work.
//
// enumerate_syrk_plans returns the full ranking (chosen plus rejected
// candidates) for observability: SyrkRequest::explain_plan() and the CLI's
// --explain-plan surface it, and bench/plan_quality tracks the chosen-vs-
// best ratio across sweeps.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/syrk.hpp"
#include "costmodel/algorithm_costs.hpp"
#include "costmodel/model.hpp"

namespace parsyrk::core {

/// One enumerated plan with its modeled cost.
struct PlanCandidate {
  Plan plan;
  /// Closed-form cost of the logical grid on the (possibly padded) shape:
  /// messages, words, and reduction adds per rank (§5 eqs. (3)/(10)/(12)).
  costmodel::CollectiveCost cost;
  /// Modeled runtime in seconds: cost.seconds(machine) plus the local
  /// n1²n2/2P flops, all multiplied by the fold factor. The quantity the
  /// argmin minimizes.
  double score = 0.0;
  /// Physical ranks (out of max_procs) this plan leaves without work.
  std::uint64_t idle_ranks = 0;
  bool chosen = false;
  /// Human-readable qualifier: "", "padded", "folded", ...
  std::string note;
};

/// Search knobs. Defaults match plan_syrk(n1, n2, max_procs).
struct PlanSearchOptions {
  /// When true, grids with n1 % c² != 0 are considered (padded) only if no
  /// exactly divisible grid exists; when false, padded grids always compete.
  bool n1_divisibility = true;
  /// Allow zero-row padding of A up to the next multiple of c².
  bool allow_padding = true;
  /// Allow logical grids larger than max_procs, folded round-robin.
  bool allow_folding = true;
  /// Cap on the fold factor (logical ranks per physical rank, ceiling).
  std::uint64_t max_fold = 4;
  /// A zero-idle candidate within this relative slack of the argmin's score
  /// is chosen over it.
  double utilization_slack = 0.10;
  /// Machine the scores are evaluated on.
  costmodel::Machine machine;
  /// Two-level topology the plans will execute on: consecutive ranks are
  /// grouped into nodes of this many ranks each (1 = flat machine). When
  /// > 1, unfolded candidates whose rank count splits into >= 2 whole nodes
  /// are priced with their intra-node traffic on the cheap (α0,β0) tier,
  /// and the enumerator additionally scores the hierarchical (node-leader)
  /// realization of the 1D/2D dominant exchange — the cheaper realization
  /// wins and is recorded in Plan::strategy.
  int ranks_per_node = 1;
};

/// The full result of one plan search: every candidate, ranked by score.
struct PlanReport {
  std::uint64_t n1 = 0;
  std::uint64_t n2 = 0;
  std::uint64_t max_procs = 0;
  PlanSearchOptions options;
  /// All enumerated candidates in ascending score order. Never empty (the
  /// 1D plan at P always exists).
  std::vector<PlanCandidate> candidates;
  /// Index into `candidates` of the selected plan (0 unless the zero-idle
  /// preference displaced the argmin).
  std::size_t chosen_index = 0;

  const PlanCandidate& chosen() const { return candidates[chosen_index]; }
  const PlanCandidate& best() const { return candidates.front(); }
  Plan plan() const { return chosen().plan; }
  /// Modeled-cost ratio of the chosen plan vs the best enumerated
  /// (1.0 unless the zero-idle preference displaced the argmin; always
  /// <= 1 + options.utilization_slack).
  double chosen_vs_best() const {
    return best().score > 0.0 ? chosen().score / best().score : 1.0;
  }

  /// The human-readable decision table behind the CLI's --explain-plan.
  void explain(std::ostream& os) const;
};

/// Enumerates and scores every candidate plan for A of shape n1×n2 on up to
/// `max_procs` physical ranks. The chosen plan always satisfies
/// plan.procs <= max_procs.
PlanReport enumerate_syrk_plans(std::uint64_t n1, std::uint64_t n2,
                                std::uint64_t max_procs,
                                const PlanSearchOptions& opts = {});

/// Wraps an externally determined plan (explicit algorithm/grid, memory-
/// aware planning) as a single-candidate report with its modeled cost, so
/// explain-plan output exists uniformly whether or not a search ran.
PlanReport report_for_plan(std::uint64_t n1, std::uint64_t n2,
                           std::uint64_t max_procs, const Plan& plan,
                           std::string note);

/// The closed-form §5 collective cost of `plan` on A of shape n1×n2 (at the
/// plan's execution row count when padded). `ranks_per_node` > 1 prices the
/// plan on a two-level topology: the plan's strategy selects the
/// hierarchical closed forms when kHierarchical, otherwise the flat pairwise
/// schedule is tier-split (1D/2D; 3D sub-grids are strided across nodes and
/// stay fully inter-priced, a conservative bound).
costmodel::CollectiveCost plan_collective_cost(std::uint64_t n1,
                                               std::uint64_t n2,
                                               const Plan& plan,
                                               int ranks_per_node = 1);

/// Modeled runtime of `plan` on A of shape n1×n2: the same score the
/// enumerator minimizes — collective cost in seconds plus the local
/// n1²n2/2P flops, times the fold factor. This is the currency the service
/// layer's admission control and batch bin-packing budget in, so a cached
/// or explicitly constructed plan prices identically to an enumerated one.
double plan_modeled_seconds(std::uint64_t n1, std::uint64_t n2,
                            const Plan& plan,
                            const costmodel::Machine& machine = {},
                            int ranks_per_node = 1);

/// The segment count a pipelined execution of `plan` actually runs:
/// `chunks` clamped to the plan's available segments — the packed-triangle
/// entry count (1D), the smallest nonempty exchange payload ⌊(n1/c²)·n2 /
/// (c+1)⌋ (2D), or the busiest rank's owned output-block count (3D).
/// Matches the execution-path clamps exactly, so the modeled ×S latency
/// term never prices segments that cannot exist. Returns >= 1; chunks < 1
/// maps to 1 (the blocking schedule).
int plan_effective_pipeline_chunks(std::uint64_t n1, std::uint64_t n2,
                                   const Plan& plan, int chunks);

/// Modeled runtime of `plan` when executed pipelined in `chunks` segments
/// (SyrkRequest::with_pipeline): the local flops overlap the k-phase
/// collective's flight time, so steady state runs at max(comm, comp) with
/// one segment of the smaller term exposed at each end of the pipe
/// (costmodel::pipelined_seconds). The latency term scales with the
/// *effective* chunk count — plan_effective_pipeline_chunks(chunks) — since
/// message count grows ×S while word volume is unchanged. chunks <= 1
/// equals plan_modeled_seconds exactly.
double plan_modeled_seconds_pipelined(std::uint64_t n1, std::uint64_t n2,
                                      const Plan& plan, int chunks,
                                      const costmodel::Machine& machine = {},
                                      int ranks_per_node = 1);

}  // namespace parsyrk::core
