// The unified SYRK entry point: a Session owning a warm world, and
// syrk(Session&, SyrkRequest) executing one request per call.
//
//   parsyrk::core::Session session(12);          // 12 parked workers, leased
//   parsyrk::Matrix a = parsyrk::random_matrix(180, 64, /*seed=*/1);
//   auto run = parsyrk::core::syrk(session, parsyrk::core::SyrkRequest(a));
//
// A Session acquires its workers from the shared pool once, at
// construction; every request dispatches to the already-parked threads (no
// thread is created or joined per call), which is what makes issuing many
// small SYRKs cheap. Each returned SyrkRun carries ledger summaries scoped
// to that request alone, even though the session's world accumulates across
// requests.
//
// A request defaults to the §5.4 planner over the session's ranks; use the
// fluent setters for an explicit algorithm/grid, root-held input, a planner
// processor cap, or memory-aware planning (§6).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "core/planner.hpp"
#include "core/syrk.hpp"
#include "matrix/matrix.hpp"
#include "simmpi/comm.hpp"
#include "support/check.hpp"

namespace parsyrk::core {

/// Customization point for plan-search resolution: given the problem shape,
/// the effective processor cap, and the search options, produce the full
/// PlanReport. The service layer's plan cache installs one of these on its
/// Session so repeated shapes skip the enumerator; the default (no resolver)
/// runs enumerate_syrk_plans directly. A resolver is only consulted for
/// planner-path requests — explicit algorithms and memory-aware planning
/// never go through it.
using PlanResolver = std::function<std::shared_ptr<const PlanReport>(
    std::uint64_t n1, std::uint64_t n2, std::uint64_t max_procs,
    const PlanSearchOptions& options)>;

/// Owns a warm world of a fixed rank count. Construct once, issue many
/// requests; requests may use up to size() ranks (smaller plans run on an
/// active-ranks sub-communicator, idle ranks sit the job out).
class Session {
 public:
  /// Leases `num_ranks` workers from the process-wide shared pool.
  explicit Session(int num_ranks)
      : world_(num_ranks), pool_(&comm::WorkerPool::shared()) {}
  /// Leases from a caller-owned pool (tests/benches isolate pools this way).
  Session(int num_ranks, comm::WorkerPool& pool)
      : world_(num_ranks, pool), pool_(&pool) {}

  int size() const { return world_.size(); }
  /// Requests executed so far (each syrk() call is one job on the world).
  std::uint64_t jobs_run() const { return world_.jobs_run(); }

  /// The underlying runtime, for callers that mix syrk() with their own
  /// SPMD jobs (e.g. a Cholesky on the SYRK output) on the same warm pool.
  comm::World& world() { return world_; }

  /// The world `plan` executes on: the session's own world for unfolded
  /// plans, or — when the planner folded a logical grid onto fewer physical
  /// ranks — a dedicated folded world of plan.logical_ranks() ranks on
  /// plan.procs physical ranks, leased from the same pool. Folded worlds
  /// are cached by (logical, physical), so repeated folded requests stay
  /// warm just like unfolded ones.
  comm::World& world_for(const Plan& plan);

  /// Enables per-message tracing on the session's world; subsequent traced
  /// requests (SyrkRequest::with_trace) drain their job's events into
  /// SyrkRun::trace. Requests that opt in enable this automatically, so
  /// calling it explicitly is only needed to size the ring buffers.
  void enable_tracing(
      std::size_t capacity_per_rank = comm::TraceSink::kDefaultCapacity) {
    world_.enable_tracing(capacity_per_rank);
  }

  /// Default search options for planner-path requests on this session (and
  /// the options handed to the plan resolver). Set before issuing requests.
  void set_plan_options(PlanSearchOptions options) {
    plan_options_ = std::move(options);
  }
  const PlanSearchOptions& plan_options() const { return plan_options_; }

  /// Installs (or clears, with nullptr) the plan-search resolver consulted
  /// by resolve_plan_report()/syrk() on the planner path. The caller is
  /// responsible for invalidating any cached reports the resolver holds if
  /// they were computed for a different physical worker count — fold
  /// factors in a cached report are only valid for the max_procs they were
  /// enumerated at.
  void set_plan_resolver(PlanResolver resolver) {
    plan_resolver_ = std::move(resolver);
  }
  const PlanResolver& plan_resolver() const { return plan_resolver_; }

 private:
  comm::World world_;
  comm::WorkerPool* pool_;
  std::map<std::pair<int, int>, std::unique_ptr<comm::World>> folded_worlds_;
  PlanSearchOptions plan_options_;
  PlanResolver plan_resolver_;
};

/// One SYRK problem plus how to run it. The matrix is referenced, not
/// copied — it must outlive the syrk() call.
struct SyrkRequest {
  explicit SyrkRequest(const Matrix& matrix) : a(&matrix) {}

  // ---- Algorithm / grid (default: §5.4 planner over the session) ----

  /// Alg. 1 on `procs` ranks (default: every session rank).
  SyrkRequest& use_1d(std::optional<std::uint64_t> procs = std::nullopt) {
    algorithm = Algorithm::kOneD;
    procs_1d = procs;
    return *this;
  }
  /// Alg. 2 on c(c+1) ranks (c prime, n1 % c² == 0).
  SyrkRequest& use_2d(std::uint64_t prime_c) {
    algorithm = Algorithm::kTwoD;
    c = prime_c;
    return *this;
  }
  /// Alg. 3 on a c(c+1) × p2 grid.
  SyrkRequest& use_3d(std::uint64_t prime_c, std::uint64_t slices) {
    algorithm = Algorithm::kThreeD;
    c = prime_c;
    p2 = slices;
    return *this;
  }

  // ---- Planner inputs (ignored when an algorithm is explicit) ----

  /// Caps the planner's processor count below the session size.
  SyrkRequest& on_procs(std::uint64_t procs) {
    max_procs = procs;
    return *this;
  }
  /// Memory-aware planning (§6): cheapest plan whose per-rank footprint
  /// fits in `words`; the request fails when nothing fits.
  SyrkRequest& with_memory_limit(std::uint64_t words) {
    memory_limit_words = words;
    return *this;
  }

  // ---- Execution options ----

  /// 1D only: A starts on rank `rank` and is scattered first (ledger phase
  /// "scatter_A", reported in SyrkRun::scatter_a).
  SyrkRequest& from_root(int rank) {
    options.root = rank;
    return *this;
  }
  SyrkRequest& with_reduce(ReduceKind kind) {
    options.reduce = kind;
    return *this;
  }
  SyrkRequest& with_exchange(ExchangeKind kind) {
    options.exchange = kind;
    return *this;
  }
  /// Pipelined chunked execution: the k-phase collective runs as `chunks`
  /// segments on nonblocking handles so local work overlaps flight time.
  /// Results are bitwise-identical to blocking for any chunk count, and
  /// chunks=1 replays the blocking schedule exactly (ledger AND trace);
  /// chunks>1 keeps word volume identical while message count scales.
  /// Requires pairwise collectives and no from_root ingestion.
  /// Throws InvalidArgument when chunks < 1 — a non-positive chunk count
  /// would otherwise store verbatim and silently select the blocking path.
  SyrkRequest& with_pipeline(int chunks) {
    PARSYRK_REQUIRE(chunks >= 1, "with_pipeline requires chunks >= 1, got ",
                    chunks);
    options.pipeline_chunks = chunks;
    return *this;
  }
  /// Two-level topology: ranks grouped into nodes of `ranks_per_node`
  /// consecutive ranks each. Intra-node traffic is priced/ledgered on the
  /// cheap (α0,β0) tier, inter-node traffic on the scarce (α1,β1) tier, and
  /// the planner may pick hierarchical collectives (node-leader exchange).
  /// ranks_per_node=1 is the flat machine (every rank its own node) and is
  /// byte-identical to not calling this at all.
  SyrkRequest& with_topology(int ranks_per_node) {
    PARSYRK_REQUIRE(ranks_per_node >= 1,
                    "with_topology requires ranks_per_node >= 1, got ",
                    ranks_per_node);
    options.ranks_per_node = ranks_per_node;
    return *this;
  }
  /// Records a per-message trace of this request's job into SyrkRun::trace
  /// (enabling tracing on the session's world if it is not already on).
  SyrkRequest& with_trace() {
    trace = true;
    return *this;
  }
  /// Requests a Theorem-1 bound audit of the run. Implies with_trace() (the
  /// auditor cross-checks the event stream against the ledger). core::syrk
  /// only records the flag and the trace; layers that link the trace
  /// library — service::SyrkService and the CLI — run the BoundAuditor and
  /// attach its report.
  SyrkRequest& with_audit() {
    audit = true;
    trace = true;
    return *this;
  }
  /// Runs this request under the SPMD protocol verifier (collective
  /// matching, deadlock watchdog, leak analysis, topology routing — see
  /// verify/verifier.hpp). Violations throw verify::VerifyError with a
  /// structured, rank-attributed report. Also enabled for every request by
  /// the PARSYRK_VERIFY=1 environment variable.
  SyrkRequest& with_verify() {
    verify = true;
    return *this;
  }

  const Matrix* a = nullptr;
  std::optional<Algorithm> algorithm;          // unset -> planner
  std::uint64_t c = 0;                         // 2D/3D triangle prime
  std::uint64_t p2 = 1;                        // 3D slice count
  std::optional<std::uint64_t> procs_1d;       // 1D rank-count override
  std::optional<std::uint64_t> max_procs;      // planner cap
  std::optional<std::uint64_t> memory_limit_words;  // memory-aware planning
  bool trace = false;                          // drain a JobTrace into the run
  bool audit = false;                          // audit the run (implies trace)
  bool verify = false;                         // SPMD protocol verification
  SyrkOptions options;
};

/// Resolves the request to an executable Plan against the session size
/// (without running anything). Exposed for planning-only callers and tests.
Plan resolve_plan(const Session& session, const SyrkRequest& req);

/// The full plan-search ranking behind resolve_plan: every candidate the
/// enumerator scored, chosen plus rejected, for observability (the CLI's
/// --explain-plan prints PlanReport::explain). Explicit-algorithm and
/// memory-aware requests yield a single-candidate report, since no search
/// ran. resolve_plan(session, req) == resolve_plan_report(session,
/// req).plan() always.
PlanReport resolve_plan_report(const Session& session, const SyrkRequest& req);

/// Executes one request as one job on the session's warm world and returns
/// the result with request-scoped measured costs and the Theorem 1 bound at
/// the plan's processor count. Throws InvalidArgument when the request
/// needs more ranks than the session has, when from_root is combined with a
/// non-1D algorithm, or when no plan fits the memory limit.
SyrkRun syrk(Session& session, const SyrkRequest& req);

}  // namespace parsyrk::core
