#include "core/session.hpp"

#include <utility>

#include "core/memory.hpp"
#include "distribution/triangle_block.hpp"
#include "support/check.hpp"

namespace parsyrk::core {

namespace {

/// Planner-path search options for one request: the session defaults with
/// the request's topology stamped in. The topology travels on the request
/// (with_topology), not the session, so it must reach the enumerator — and,
/// through these options, the service layer's plan-cache key.
PlanSearchOptions search_options(const Session& session,
                                 const SyrkRequest& req) {
  PlanSearchOptions opts = session.plan_options();
  if (req.options.ranks_per_node > 1) {
    opts.ranks_per_node = req.options.ranks_per_node;
  }
  return opts;
}

}  // namespace

comm::World& Session::world_for(const Plan& plan) {
  if (!plan.folded()) return world_;
  const auto key = std::make_pair(static_cast<int>(plan.logical_ranks()),
                                  static_cast<int>(plan.procs));
  auto it = folded_worlds_.find(key);
  if (it == folded_worlds_.end()) {
    it = folded_worlds_
             .emplace(key, std::make_unique<comm::World>(key.first, key.second,
                                                         *pool_))
             .first;
  }
  return *it->second;
}

Plan resolve_plan(const Session& session, const SyrkRequest& req) {
  PARSYRK_REQUIRE(req.a != nullptr, "request has no input matrix");
  const std::uint64_t n1 = req.a->rows();
  const std::uint64_t n2 = req.a->cols();
  const auto session_procs = static_cast<std::uint64_t>(session.size());

  Plan plan;
  if (req.algorithm) {
    switch (*req.algorithm) {
      case Algorithm::kOneD:
        plan.algorithm = Algorithm::kOneD;
        plan.procs = req.procs_1d.value_or(session_procs);
        PARSYRK_REQUIRE(plan.procs >= 1, "1D SYRK needs at least 1 rank");
        plan.c = 0;
        plan.p1 = 1;
        plan.p2 = plan.procs;
        break;
      case Algorithm::kTwoD: {
        dist::TriangleBlockDistribution d(req.c);  // validates c prime
        plan.algorithm = Algorithm::kTwoD;
        plan.c = req.c;
        plan.p1 = d.num_procs();
        plan.p2 = 1;
        plan.procs = plan.p1;
        break;
      }
      case Algorithm::kThreeD: {
        dist::TriangleBlockDistribution d(req.c);
        PARSYRK_REQUIRE(req.p2 >= 1, "p2 must be >= 1");
        plan.algorithm = Algorithm::kThreeD;
        plan.c = req.c;
        plan.p1 = d.num_procs();
        plan.p2 = req.p2;
        plan.procs = plan.p1 * plan.p2;
        break;
      }
    }
    // Theorem 1 is stated for n1 >= 2; a 1-row C is communication-trivial
    // and keeps the Plan's default regime.
    if (n1 >= 2) {
      plan.regime = bounds::syrk_lower_bound(n1, n2, plan.procs).regime;
    }
  } else if (req.memory_limit_words) {
    auto aware = plan_syrk_memory_aware(n1, n2,
                                        req.max_procs.value_or(session_procs),
                                        *req.memory_limit_words);
    PARSYRK_REQUIRE(aware.has_value(), "no SYRK plan for n1=", n1, ", n2=",
                    n2, " fits in ", *req.memory_limit_words,
                    " words of per-rank memory");
    plan = aware->plan;
  } else {
    // Planner path: consult the session's resolver (the service layer's
    // plan cache) when installed, so repeated shapes skip the enumerator.
    const std::uint64_t cap = req.max_procs.value_or(session_procs);
    const PlanSearchOptions opts = search_options(session, req);
    if (const PlanResolver& resolver = session.plan_resolver()) {
      auto report = resolver(n1, n2, cap, opts);
      PARSYRK_REQUIRE(report != nullptr, "plan resolver returned no report");
      plan = report->plan();
    } else {
      plan = enumerate_syrk_plans(n1, n2, cap, opts).plan();
    }
  }
  return plan;
}

PlanReport resolve_plan_report(const Session& session, const SyrkRequest& req) {
  PARSYRK_REQUIRE(req.a != nullptr, "request has no input matrix");
  const std::uint64_t n1 = req.a->rows();
  const std::uint64_t n2 = req.a->cols();
  const std::uint64_t cap =
      req.max_procs.value_or(static_cast<std::uint64_t>(session.size()));
  if (!req.algorithm && !req.memory_limit_words) {
    const PlanSearchOptions opts = search_options(session, req);
    if (const PlanResolver& resolver = session.plan_resolver()) {
      auto report = resolver(n1, n2, cap, opts);
      PARSYRK_REQUIRE(report != nullptr, "plan resolver returned no report");
      return *report;
    }
    return enumerate_syrk_plans(n1, n2, cap, opts);
  }
  // No search ran: wrap the externally determined plan as a one-row report
  // so --explain-plan output exists uniformly.
  return report_for_plan(n1, n2, cap, resolve_plan(session, req),
                         req.algorithm ? "explicitly requested"
                                       : "memory-aware choice");
}

SyrkRun syrk(Session& session, const SyrkRequest& req) {
  const Matrix& a = *req.a;
  Plan plan = resolve_plan(session, req);
  PARSYRK_REQUIRE(plan.procs <= static_cast<std::uint64_t>(session.size()),
                  "request needs ", plan.procs, " ranks; session has ",
                  session.size());
  if (req.options.root) {
    PARSYRK_REQUIRE(plan.algorithm == Algorithm::kOneD,
                    "from_root is only supported with the 1D algorithm");
    PARSYRK_REQUIRE(*req.options.root >= 0 &&
                        static_cast<std::uint64_t>(*req.options.root) <
                            plan.procs,
                    "bad root ", *req.options.root);
  }
  // The builder methods validate these, but the options struct is an open
  // aggregate — catch hand-assembled nonsense before it executes silently.
  PARSYRK_REQUIRE(req.options.pipeline_chunks >= 0,
                  "pipeline_chunks must be >= 0 (0 = blocking); got ",
                  req.options.pipeline_chunks);
  PARSYRK_REQUIRE(req.options.ranks_per_node >= 1,
                  "ranks_per_node must be >= 1 (1 = flat); got ",
                  req.options.ranks_per_node);
  if (req.options.pipeline_chunks >= 1) {
    PARSYRK_REQUIRE(!req.options.root,
                    "with_pipeline does not support from_root ingestion");
    PARSYRK_REQUIRE(req.options.reduce == ReduceKind::kPairwise &&
                        req.options.exchange == ExchangeKind::kPairwise,
                    "with_pipeline supports pairwise collectives only");
    // Pipelined segments ride pairwise handles; a hierarchical plan pick
    // reverts to the (tier-split) pairwise schedule so run.plan reflects
    // what actually executed.
    plan.strategy = CollectiveStrategy::kPairwise;
  }
  if (req.options.ranks_per_node > 1) {
    PARSYRK_REQUIRE(!plan.folded(),
                    "with_topology requires an unfolded plan (folded worlds "
                    "already model co-location)");
  }
  // The planner's hierarchical pick executes through the hierarchical
  // collective kinds; explicit with_reduce/with_exchange choices win.
  SyrkOptions exec_opts = req.options;
  if (plan.strategy == CollectiveStrategy::kHierarchical) {
    if (exec_opts.reduce == ReduceKind::kPairwise) {
      exec_opts.reduce = ReduceKind::kHierarchical;
    }
    if (exec_opts.exchange == ExchangeKind::kPairwise) {
      exec_opts.exchange = ExchangeKind::kHierarchical;
    }
  } else if (req.options.ranks_per_node > 1 &&
             (exec_opts.reduce == ReduceKind::kHierarchical ||
              exec_opts.exchange == ExchangeKind::kHierarchical)) {
    // Explicit with_reduce/with_exchange hierarchical request: record it on
    // the plan so run.plan (and the auditor's model) match the execution.
    plan.strategy = CollectiveStrategy::kHierarchical;
  }

  // Folded plans execute on a dedicated cached world of logical_ranks()
  // ranks folded onto plan.procs physical ranks; everything else runs on
  // the session's own world. The request's topology is stamped on the world
  // it runs on (ranks_per_node=1 restores the flat machine, so a later
  // untopology'd request on the same session world is unaffected).
  comm::World& world = session.world_for(plan);
  world.set_topology(req.options.ranks_per_node);
  if (req.trace) world.enable_tracing();
  if (req.verify) world.enable_verify();
  const comm::CostLedger::Snapshot before = world.ledger().snapshot();
  const std::uint64_t exec_n1 = plan.exec_n1(a.rows());
  const Matrix* exec_a = &a;
  Matrix a_pad;
  if (exec_n1 != a.rows()) {
    a_pad = internal::pad_rows(a, exec_n1);
    exec_a = &a_pad;
  }
  Matrix c_exec(exec_n1, exec_n1);
  const int active_ranks = static_cast<int>(plan.logical_ranks());
  if (active_ranks == world.size()) {
    // Full-size plan (and every folded plan — the folded world is sized to
    // the logical grid exactly): run directly on the world communicator (no
    // per-job split on the hot path).
    world.run([&](comm::Comm& wc) {
      internal::run_syrk_plan_rank(wc, exec_a->view(), plan, exec_opts,
                                   c_exec);
    });
  } else {
    world.run([&](comm::Comm& wc) {
      const bool active = wc.rank() < active_ranks;
      // Every rank takes part in the split (it is collective and
      // ledger-muted, so measured volumes match a world of exactly
      // plan.procs ranks); idle ranks then sit the job out.
      comm::Comm sub = wc.split(active ? 0 : 1, wc.rank());
      if (!active) return;
      internal::run_syrk_plan_rank(sub, exec_a->view(), plan, exec_opts,
                                   c_exec);
    });
  }

  SyrkRun run;
  run.plan = plan;
  run.c = internal::truncate_result(std::move(c_exec), a.rows());
  const comm::CostLedger& ledger = world.ledger();
  run.total = ledger.summary_since(before);
  run.gather_a = ledger.summary_since(before, internal::kPhaseGatherA);
  run.reduce_c = ledger.summary_since(before, internal::kPhaseReduceC);
  run.scatter_a = ledger.summary_since(before, internal::kPhaseScatterA);
  if (world.ranks_per_node() > 1) {
    // Nodes the *plan* spans, not the whole session world — the request may
    // run on an active-ranks prefix of a larger world. Idle ranks record
    // nothing, so the inter summary's busiest node is among the active ones.
    const int rpn = world.ranks_per_node();
    run.nodes = (static_cast<int>(plan.procs) + rpn - 1) / rpn;
    run.total_inter = ledger.inter_summary_since(before);
  }
  if (a.rows() >= 2) {
    run.bound = bounds::syrk_lower_bound(a.rows(), a.cols(), plan.procs);
  }
  if (req.trace) run.trace = world.trace_sink()->drain(/*poisoned=*/false);
  return run;
}

}  // namespace parsyrk::core
