// Per-rank memory footprints and memory-aware planning (§6).
//
// The paper's model assumes each processor has enough local memory; §6
// notes the 3D algorithm may be infeasible under limited memory, where the
// memory-dependent bound (the per-processor extension of the sequential
// Beaumont bound) becomes the tighter one. This module makes that analysis
// executable: exact working-set sizes per algorithm, the memory-dependent
// bound, and a planner that picks the cheapest plan that fits.
#pragma once

#include <cstdint>
#include <optional>

#include "core/syrk.hpp"

namespace parsyrk::core {

/// Peak words a single rank holds while executing `plan` on an n1×n2
/// problem: resident input + gathered row blocks + local C blocks +
/// collective staging, to leading order.
double memory_footprint_per_rank(const Plan& plan, std::uint64_t n1,
                                 std::uint64_t n2);

/// The memory-dependent communication lower bound (per §6: the sequential
/// bound of Beaumont et al. applied to the n1²n2/2P multiplications each
/// processor performs with M words of local memory):
///   W_md = n1²·n2 / (√2 · P · √M).
double syrk_memory_dependent_bound(std::uint64_t n1, std::uint64_t n2,
                                   std::uint64_t p, std::uint64_t m);

/// max(memory-independent Theorem 1, memory-dependent) — the tighter of the
/// two regimes.
double syrk_combined_bound(std::uint64_t n1, std::uint64_t n2,
                           std::uint64_t p, std::uint64_t m);

/// Result of memory-aware planning: the plan plus its predicted cost and
/// footprint.
struct MemoryAwarePlan {
  Plan plan;
  double predicted_words = 0.0;   // closed-form bandwidth (eqs. 3/10/12)
  double footprint_words = 0.0;   // peak per-rank memory
};

/// Enumerates every executable plan (1D; 2D for each usable prime c; 3D
/// over usable (c, p2) grids with c(c+1)·p2 <= max_procs), drops the ones
/// whose footprint exceeds `memory_words`, and returns the cheapest
/// surviving plan by predicted communication. nullopt when nothing fits.
std::optional<MemoryAwarePlan> plan_syrk_memory_aware(
    std::uint64_t n1, std::uint64_t n2, std::uint64_t max_procs,
    std::uint64_t memory_words, bool n1_divisibility = true);

}  // namespace parsyrk::core
