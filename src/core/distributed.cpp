#include "core/distributed.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace parsyrk::core {

DistributedSyrkResult DistributedSyrkResult::compute_2d(comm::World& world,
                                                        const Matrix& a,
                                                        std::uint64_t c) {
  DistributedSyrkResult out(a.rows(), c);
  PARSYRK_REQUIRE(
      static_cast<std::uint64_t>(world.size()) == out.dist_.num_procs(),
      "distributed 2D SYRK with c = ", c, " needs ", out.dist_.num_procs(),
      " ranks; world has ", world.size());
  out.per_rank_.resize(world.size());
  world.run([&](comm::Comm& comm) {
    out.per_rank_[comm.rank()] =
        internal::syrk_2d_spmd(comm, out.dist_, a.view());
  });
  return out;
}

double DistributedSyrkResult::at(std::uint64_t i, std::uint64_t j) const {
  PARSYRK_REQUIRE(i < n1_ && j < n1_, "index (", i, ",", j, ") out of range");
  if (j > i) std::swap(i, j);
  const std::uint64_t bi = i / nb_;
  const std::uint64_t bj = j / nb_;
  const std::uint64_t owner = bi == bj ? dist_.owner_diagonal(bi)
                                       : dist_.owner_off_diagonal(bi, bj);
  const auto& local = per_rank_[owner];
  const std::size_t li = i % nb_;
  const std::size_t lj = j % nb_;
  if (bi == bj) {
    PARSYRK_CHECK(local.diag_index && *local.diag_index == bi);
    return local.diag_block(li, lj);
  }
  const auto key = std::pair{bi, bj};
  const auto it =
      std::lower_bound(local.pairs.begin(), local.pairs.end(), key);
  PARSYRK_CHECK(it != local.pairs.end() && *it == key);
  return local.off_blocks[static_cast<std::size_t>(it - local.pairs.begin())](
      li, lj);
}

Matrix DistributedSyrkResult::assemble() const {
  Matrix full(n1_, n1_);
  for (int r = 0; r < num_ranks(); ++r) {
    const auto& local = per_rank_[r];
    auto flat = internal::flatten_triangle_blocks(local);
    internal::scatter_flat_to_full(local, flat, 0, nb_, full);
  }
  return full;
}

void DistributedSyrkResult::accumulate_2d(comm::World& world, const Matrix& a,
                                          double alpha, double beta) {
  PARSYRK_REQUIRE(a.rows() == n1_, "accumulate needs A with ", n1_,
                  " rows; got ", a.rows());
  PARSYRK_REQUIRE(world.size() == num_ranks(),
                  "accumulate world must match the compute world size");
  world.run([&](comm::Comm& comm) {
    auto update = internal::syrk_2d_spmd(comm, dist_, a.view());
    auto& mine = per_rank_[comm.rank()];
    auto combine = [&](Matrix& old_m, const Matrix& new_m, bool lower_only) {
      for (std::size_t i = 0; i < old_m.rows(); ++i) {
        const std::size_t jmax =
            lower_only ? std::min(old_m.cols(), i + 1) : old_m.cols();
        for (std::size_t j = 0; j < jmax; ++j) {
          old_m(i, j) = beta * old_m(i, j) + alpha * new_m(i, j);
        }
      }
    };
    PARSYRK_CHECK(mine.pairs == update.pairs);
    for (std::size_t t = 0; t < mine.off_blocks.size(); ++t) {
      combine(mine.off_blocks[t], update.off_blocks[t], false);
    }
    if (mine.diag_index) {
      PARSYRK_CHECK(update.diag_index == mine.diag_index);
      combine(mine.diag_block, update.diag_block, true);
    }
  });
}

Matrix DistributedSyrkResult::gather_to_root(comm::World& world,
                                             int root) const {
  PARSYRK_REQUIRE(world.size() == num_ranks(),
                  "gather world must match the compute world size");
  Matrix full(n1_, n1_);
  world.run([&](comm::Comm& comm) {
    comm.set_phase("gather_result");
    const auto& mine = per_rank_[comm.rank()];
    auto flat = internal::flatten_triangle_blocks(mine);
    auto gathered = comm.gather(flat, root);
    if (comm.rank() != root) return;
    for (int r = 0; r < comm.size(); ++r) {
      internal::scatter_flat_to_full(per_rank_[r], gathered[r], 0, nb_, full);
    }
  });
  return full;
}

}  // namespace parsyrk::core
