#include "core/symm.hpp"

#include <algorithm>

#include "core/syrk_internal.hpp"
#include "distribution/block1d.hpp"
#include "distribution/triangle_block.hpp"
#include "matrix/kernels.hpp"
#include "support/check.hpp"

namespace parsyrk::core {

namespace {

/// C_partial (nb×m) += Sij (nb×nb) · Bj (nb×m); transpose=true applies
/// Sijᵀ instead.
void accumulate_block_product(const ConstMatrixView& sij,
                              const ConstMatrixView& bj, bool transpose,
                              const MatrixView& c_partial) {
  const std::size_t nb = sij.rows();
  const std::size_t m = bj.cols();
  for (std::size_t r = 0; r < nb; ++r) {
    for (std::size_t q = 0; q < nb; ++q) {
      const double s = transpose ? sij(q, r) : sij(r, q);
      const double* brow = bj.data() + q * bj.ld();
      double* crow = c_partial.data() + r * c_partial.ld();
      for (std::size_t t = 0; t < m; ++t) crow[t] += s * brow[t];
    }
  }
}

}  // namespace

Matrix symm_1d(comm::World& world, const Matrix& s, const Matrix& b) {
  PARSYRK_REQUIRE(s.rows() == s.cols() && s.rows() == b.rows(),
                  "SYMM shapes: S must be n x n and B n x m");
  const std::size_t n = s.rows();
  const std::size_t m = b.cols();
  const std::size_t tri = n * (n + 1) / 2;
  Matrix c_full(n, m);
  world.run([&](comm::Comm& comm) {
    const int p = comm.size();
    const int r = comm.rank();
    // Each rank starts with an even chunk of the packed lower triangle of S
    // (the distributed state); one all-gather assembles the whole factor.
    comm.set_phase(internal::kPhaseGatherA);
    const std::size_t lo = dist::chunk_begin(tri, p, r);
    const std::size_t hi = dist::chunk_end(tri, p, r);
    std::vector<double> mine;
    mine.reserve(hi - lo);
    {
      // Walk packed indices [lo, hi): t = i(i+1)/2 + j.
      std::size_t i = 0;
      while ((i + 1) * (i + 2) / 2 <= lo) ++i;
      std::size_t j = lo - i * (i + 1) / 2;
      for (std::size_t t = lo; t < hi; ++t) {
        mine.push_back(s(i, j));
        if (++j > i) {
          ++i;
          j = 0;
        }
      }
    }
    auto packed_parts = comm.all_gather_v(mine);
    Matrix s_local(n, n);
    {
      std::size_t i = 0, j = 0;
      for (int q = 0; q < p; ++q) {
        for (double v : packed_parts[q]) {
          s_local(i, j) = v;
          if (++j > i) {
            ++i;
            j = 0;
          }
        }
      }
    }
    // Local SYMM over this rank's column block of B; write into shared C.
    const std::size_t c0 = dist::chunk_begin(m, p, r);
    const std::size_t cw = dist::chunk_size(m, p, r);
    if (cw > 0) {
      symm_lower_left(s_local.view(), b.view().block(0, c0, n, cw),
                      c_full.block(0, c0, n, cw));
    }
  });
  return c_full;
}

Matrix symm_2d(comm::World& world, const Matrix& s, const Matrix& b,
               std::uint64_t c) {
  dist::TriangleBlockDistribution d(c);
  PARSYRK_REQUIRE(static_cast<std::uint64_t>(world.size()) == d.num_procs(),
                  "2D SYMM with c = ", c, " needs ", d.num_procs(),
                  " ranks; world has ", world.size());
  PARSYRK_REQUIRE(s.rows() == s.cols() && s.rows() == b.rows(),
                  "SYMM shapes: S must be n x n and B n x m");
  const std::size_t n = s.rows();
  const std::size_t m = b.cols();
  const std::uint64_t nblocks = d.num_block_rows();
  PARSYRK_REQUIRE(n % nblocks == 0, "2D SYMM needs n divisible by c² = ",
                  nblocks, "; got n = ", n);
  const std::size_t nb = n / nblocks;
  const std::size_t flat = nb * m;  // words per row block of B (and of C)
  const int parts = static_cast<int>(c + 1);

  Matrix c_full(n, m);
  world.run([&](comm::Comm& comm) {
    const auto k = static_cast<std::uint64_t>(comm.rank());
    const auto p = static_cast<std::uint64_t>(comm.size());
    const auto& rk = d.row_block_set(k);

    // --- Phase 1: All-to-All gather of the B row blocks in R_k (the same
    // exchange pattern as SYRK's gather of A; S itself never moves). ---
    comm.set_phase(internal::kPhaseGatherA);
    auto read_chunk = [&](std::uint64_t i, std::uint64_t owner) {
      const int q = static_cast<int>(d.chunk_index(i, owner));
      return std::pair{dist::chunk_begin(flat, parts, q),
                       dist::chunk_end(flat, parts, q)};
    };
    std::vector<std::vector<double>> sendbuf(p);
    for (std::uint64_t i : rk) {
      const auto [lo, hi] = read_chunk(i, k);
      std::vector<double> mine;
      mine.reserve(hi - lo);
      for (std::size_t t = lo; t < hi; ++t) {
        mine.push_back(b(i * nb + t / m, t % m));
      }
      for (std::uint64_t k2 : d.processor_set(i)) {
        if (k2 == k) continue;
        PARSYRK_CHECK(sendbuf[k2].empty());
        sendbuf[k2] = mine;
      }
    }
    auto recvbuf = comm.all_to_all_v(sendbuf);
    std::vector<Matrix> local_b;
    local_b.reserve(rk.size());
    for (std::uint64_t i : rk) {
      Matrix bi(nb, m);
      for (std::uint64_t k2 : d.processor_set(i)) {
        const auto [lo, hi] = read_chunk(i, k2);
        if (k2 == k) {
          for (std::size_t t = lo; t < hi; ++t) {
            bi(t / m, t % m) = b(i * nb + t / m, t % m);
          }
        } else {
          PARSYRK_CHECK(recvbuf[k2].size() == hi - lo);
          flat_assign(bi.view(), lo, recvbuf[k2]);
        }
      }
      local_b.push_back(std::move(bi));
    }
    auto index_of = [&](std::uint64_t i) {
      auto it = std::lower_bound(rk.begin(), rk.end(), i);
      PARSYRK_CHECK(it != rk.end() && *it == i);
      return static_cast<std::size_t>(it - rk.begin());
    };

    // --- Phase 2: owner-computes over the triangle block of S blocks.
    // Partial C rows accumulate locally, one nb×m panel per i in R_k. ---
    std::vector<Matrix> partial(rk.size(), Matrix(nb, m));
    for (const auto& [bi, bj] : d.owned_pairs(k)) {
      auto sij = s.view().block(bi * nb, bj * nb, nb, nb);
      accumulate_block_product(sij, local_b[index_of(bj)].view(),
                               /*transpose=*/false,
                               partial[index_of(bi)].view());
      accumulate_block_product(sij, local_b[index_of(bi)].view(),
                               /*transpose=*/true,
                               partial[index_of(bj)].view());
    }
    if (auto di = d.diagonal_block(k)) {
      auto sii = s.view().block(*di * nb, *di * nb, nb, nb);
      symm_lower_left(sii, local_b[index_of(*di)].view(),
                      partial[index_of(*di)].view());
    }

    // --- Phase 3: reduce the partial C rows within each Q_i group. The
    // groups overlap (each rank sits in c of them), so the reduce-scatter
    // is run with direct messages: every member first posts its chunks for
    // every group (buffered sends — no ordering hazards), then drains. ---
    comm.set_phase(internal::kPhaseReduceC);
    auto chunk_range = [&](std::size_t pos) {
      return std::pair{dist::chunk_begin(flat, parts, static_cast<int>(pos)),
                       dist::chunk_end(flat, parts, static_cast<int>(pos))};
    };
    auto tag_of = [](std::uint64_t i) { return static_cast<int>(i); };
    for (std::uint64_t i : rk) {
      const auto& q = d.processor_set(i);
      const auto& mine = partial[index_of(i)];
      for (std::size_t pos = 0; pos < q.size(); ++pos) {
        if (q[pos] == k) continue;
        const auto [lo, hi] = chunk_range(pos);
        const auto payload = flat_copy(mine.view(), lo, hi);
        comm.send(static_cast<int>(q[pos]), tag_of(i), payload);
      }
    }
    for (std::uint64_t i : rk) {
      const auto& q = d.processor_set(i);
      const std::size_t my_pos = d.chunk_index(i, k);
      const auto [lo, hi] = chunk_range(my_pos);
      std::vector<double> acc = flat_copy(partial[index_of(i)].view(), lo, hi);
      for (std::uint64_t k2 : q) {
        if (k2 == k) continue;
        auto in = comm.recv(static_cast<int>(k2), tag_of(i));
        PARSYRK_CHECK(in.size() == acc.size());
        for (std::size_t t = 0; t < acc.size(); ++t) acc[t] += in[t];
      }
      // Assembly (shared memory, disjoint writes): my chunk of C_i.
      for (std::size_t t = lo; t < hi; ++t) {
        c_full(i * nb + t / m, t % m) = acc[t - lo];
      }
    }
  });
  return c_full;
}

}  // namespace parsyrk::core
