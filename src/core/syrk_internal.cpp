#include "core/syrk_internal.hpp"

#include <algorithm>
#include <cmath>

#include "distribution/block1d.hpp"
#include "matrix/kernels.hpp"
#include "matrix/packed.hpp"
#include "support/check.hpp"

namespace parsyrk::core::internal {

PackedChunk syrk_1d_spmd(comm::Comm& comm, const ConstMatrixView& a,
                         ReduceKind reduce) {
  const int p = comm.size();
  const int r = comm.rank();
  const std::size_t n1 = a.rows();
  const std::size_t n2 = a.cols();

  // Local SYRK over this rank's column block (Alg. 1 line 3). The column
  // block is local data by assumption; reading it from the shared view costs
  // nothing, matching the model.
  const std::size_t c0 = dist::chunk_begin(n2, p, r);
  const std::size_t cw = dist::chunk_size(n2, p, r);
  Matrix cbar(n1, n1);
  if (cw > 0) syrk_lower(a.block(0, c0, n1, cw), cbar.view());
  PackedLower packed = PackedLower::from_full(cbar.view());

  // Reduce-Scatter of the n1(n1+1)/2 packed entries (Alg. 1 line 4).
  comm.set_phase(kPhaseReduceC);
  const std::size_t total = packed.size();
  PackedChunk out;
  if (reduce == ReduceKind::kPairwise) {
    std::vector<std::size_t> sizes(p);
    for (int q = 0; q < p; ++q) sizes[q] = dist::chunk_size(total, p, q);
    out.offset = dist::chunk_begin(total, p, r);
    out.data = comm.reduce_scatter(packed.span(), sizes);
  } else {
    // Bruck needs equal blocks: pad to a multiple of P; trailing zeros of
    // the last rank's block are trimmed after the reduction.
    const std::size_t blk = (total + p - 1) / p;
    std::vector<double> padded(blk * p, 0.0);
    std::copy(packed.data(), packed.data() + total, padded.begin());
    auto mine = comm.reduce_scatter_bruck(padded);
    out.offset = blk * static_cast<std::size_t>(r);
    const std::size_t valid =
        out.offset >= total ? 0 : std::min(blk, total - out.offset);
    mine.resize(valid);
    out.data = std::move(mine);
  }
  return out;
}

TriangleBlocks syrk_2d_spmd(comm::Comm& comm,
                            const dist::TriangleBlockDistribution& d,
                            const ConstMatrixView& a, ExchangeKind exchange) {
  const auto p = static_cast<std::uint64_t>(comm.size());
  PARSYRK_REQUIRE(p == d.num_procs(), "2D SYRK needs exactly c(c+1) = ",
                  d.num_procs(), " ranks; communicator has ", p);
  const std::uint64_t c = d.c();
  const std::uint64_t nblocks = d.num_block_rows();  // c²
  const std::size_t n1 = a.rows();
  const std::size_t n2 = a.cols();
  PARSYRK_REQUIRE(n1 % nblocks == 0, "2D SYRK needs n1 divisible by c² = ",
                  nblocks, "; got n1 = ", n1);
  const std::size_t nb = n1 / nblocks;      // block dimension
  const std::size_t flat = nb * n2;         // words per row block A_i
  const auto k = static_cast<std::uint64_t>(comm.rank());
  const int parts = static_cast<int>(c + 1);

  // --- All-to-All gather of the row blocks in R_k (Alg. 2 lines 3–14) ---
  // This rank holds chunk q = chunk_index(i, k) of each A_i with i in R_k
  // and must send it to the other c members of Q_i. Because the distribution
  // is valid, each pair of processors shares at most one row block, so the
  // exchange is a single personalized All-to-All.
  comm.set_phase(kPhaseGatherA);
  std::vector<std::vector<double>> sendbuf(p);
  const auto& rk = d.row_block_set(k);
  auto read_own_chunk = [&](std::uint64_t i) {
    const int q = static_cast<int>(d.chunk_index(i, k));
    const std::size_t lo = dist::chunk_begin(flat, parts, q);
    const std::size_t hi = dist::chunk_end(flat, parts, q);
    std::vector<double> chunk;
    chunk.reserve(hi - lo);
    for (std::size_t t = lo; t < hi; ++t) {
      chunk.push_back(a(i * nb + t / n2, t % n2));
    }
    return chunk;
  };
  for (std::uint64_t i : rk) {
    auto mine = read_own_chunk(i);
    for (std::uint64_t k2 : d.processor_set(i)) {
      if (k2 == k) continue;
      PARSYRK_CHECK_MSG(sendbuf[k2].empty(), "processors ", k, " and ", k2,
                        " would exchange two chunks; invalid distribution");
      sendbuf[k2] = mine;
    }
  }
  std::vector<std::vector<double>> recvbuf;
  if (exchange == ExchangeKind::kPairwise) {
    recvbuf = comm.all_to_all_v(sendbuf);
  } else {
    // Butterfly needs equal blocks: every nonempty block is one even chunk
    // of a row block; empty destinations are padded with zeros. The extra
    // zeros are the §6 bandwidth price on top of the (log2 P)/2 factor.
    PARSYRK_REQUIRE(flat % parts == 0,
                    "butterfly exchange needs even chunks: (n1/c²)·n2 "
                    "divisible by c+1");
    const std::size_t block = flat / parts;
    std::vector<double> flat_send(block * p, 0.0);
    for (std::uint64_t k2 = 0; k2 < p; ++k2) {
      PARSYRK_CHECK(sendbuf[k2].empty() || sendbuf[k2].size() == block);
      std::copy(sendbuf[k2].begin(), sendbuf[k2].end(),
                flat_send.begin() + k2 * block);
    }
    auto flat_recv = comm.all_to_all_butterfly(flat_send, block);
    recvbuf.resize(p);
    for (std::uint64_t k2 = 0; k2 < p; ++k2) {
      if (k2 == k || !d.shared_block(k, k2)) continue;  // padding: discard
      recvbuf[k2].assign(flat_recv.begin() + k2 * block,
                         flat_recv.begin() + (k2 + 1) * block);
    }
  }

  // Assemble the full row blocks A_i, i in R_k, from own + received chunks.
  std::vector<Matrix> local_a;  // in R_k order
  local_a.reserve(rk.size());
  for (std::uint64_t i : rk) {
    Matrix ai(nb, n2);
    for (std::uint64_t k2 : d.processor_set(i)) {
      const int q = static_cast<int>(d.chunk_index(i, k2));
      const std::size_t lo = dist::chunk_begin(flat, parts, q);
      const std::size_t hi = dist::chunk_end(flat, parts, q);
      if (k2 == k) {
        for (std::size_t t = lo; t < hi; ++t) {
          ai(t / n2, t % n2) = a(i * nb + t / n2, t % n2);
        }
      } else {
        const auto& chunk = recvbuf[k2];
        PARSYRK_CHECK_MSG(chunk.size() == hi - lo, "rank ", k,
                          " expected a chunk of ", hi - lo, " words from ", k2,
                          ", got ", chunk.size());
        flat_assign(ai.view(), lo, chunk);
      }
    }
    local_a.push_back(std::move(ai));
  }
  auto block_of = [&](std::uint64_t i) -> const Matrix& {
    auto it = std::lower_bound(rk.begin(), rk.end(), i);
    PARSYRK_CHECK(it != rk.end() && *it == i);
    return local_a[static_cast<std::size_t>(it - rk.begin())];
  };

  // --- Local computation (Alg. 2 lines 15–20) ---
  TriangleBlocks out;
  out.pairs = d.owned_pairs(k);
  out.off_blocks.reserve(out.pairs.size());
  for (const auto& [i, j] : out.pairs) {
    Matrix cij(nb, nb);
    gemm_nt(block_of(i).view(), block_of(j).view(), cij.view());
    out.off_blocks.push_back(std::move(cij));
  }
  if (auto di = d.diagonal_block(k)) {
    out.diag_index = *di;
    out.diag_block = Matrix(nb, nb);
    syrk_lower(block_of(*di).view(), out.diag_block.view());
  }
  return out;
}

std::vector<double> flatten_triangle_blocks(const TriangleBlocks& b) {
  std::vector<double> flat;
  std::size_t total = 0;
  for (const auto& m : b.off_blocks) total += m.size();
  std::size_t nb = 0;
  if (b.diag_index) {
    nb = b.diag_block.rows();
    total += nb * (nb + 1) / 2;
  }
  flat.reserve(total);
  for (const auto& m : b.off_blocks) {
    flat_append(m.view(), flat);
  }
  if (b.diag_index) {
    for (std::size_t r = 0; r < nb; ++r) {
      for (std::size_t cc = 0; cc <= r; ++cc) {
        flat.push_back(b.diag_block(r, cc));
      }
    }
  }
  return flat;
}

void scatter_flat_to_full(const TriangleBlocks& shape,
                          const std::vector<double>& chunk, std::size_t lo,
                          std::size_t nb, Matrix& c_full) {
  const std::size_t hi = lo + chunk.size();
  std::size_t off = 0;
  auto emit = [&](std::size_t gi, std::size_t gj) {
    if (off >= lo && off < hi) {
      const double v = chunk[off - lo];
      c_full(gi, gj) = v;
      c_full(gj, gi) = v;
    }
    ++off;
  };
  for (std::size_t bidx = 0; bidx < shape.pairs.size(); ++bidx) {
    const auto [bi, bj] = shape.pairs[bidx];
    if (off + nb * nb <= lo || off >= hi) {
      off += nb * nb;
      continue;
    }
    for (std::size_t r = 0; r < nb; ++r) {
      for (std::size_t cc = 0; cc < nb; ++cc) emit(bi * nb + r, bj * nb + cc);
    }
  }
  if (shape.diag_index) {
    const std::uint64_t di = *shape.diag_index;
    for (std::size_t r = 0; r < nb; ++r) {
      for (std::size_t cc = 0; cc <= r; ++cc) emit(di * nb + r, di * nb + cc);
    }
  }
  PARSYRK_CHECK_MSG(hi <= off, "chunk extends past the flattened blocks");
}

void scatter_packed_to_full(const PackedChunk& chunk, Matrix& c_full) {
  // Invert the packed index t = i(i+1)/2 + j once, then walk forward.
  if (chunk.data.empty()) return;
  std::size_t t = chunk.offset;
  auto i = static_cast<std::size_t>(
      (std::sqrt(8.0 * static_cast<double>(t) + 1.0) - 1.0) / 2.0);
  while (i * (i + 1) / 2 > t) --i;
  while ((i + 1) * (i + 2) / 2 <= t) ++i;
  std::size_t j = t - i * (i + 1) / 2;
  for (double v : chunk.data) {
    c_full(i, j) = v;
    c_full(j, i) = v;
    if (++j > i) {
      ++i;
      j = 0;
    }
  }
}

}  // namespace parsyrk::core::internal
