#include "core/syrk_internal.hpp"

#include <algorithm>
#include <cmath>

#include "distribution/block1d.hpp"
#include "matrix/kernels.hpp"
#include "matrix/packed.hpp"
#include "support/check.hpp"

namespace parsyrk::core::internal {

PackedChunk syrk_1d_spmd(comm::Comm& comm, const ConstMatrixView& a,
                         ReduceKind reduce) {
  const int p = comm.size();
  const int r = comm.rank();
  const std::size_t n1 = a.rows();
  const std::size_t n2 = a.cols();

  // Local SYRK over this rank's column block (Alg. 1 line 3). The column
  // block is local data by assumption; reading it from the shared view costs
  // nothing, matching the model.
  const std::size_t c0 = dist::chunk_begin(n2, p, r);
  const std::size_t cw = dist::chunk_size(n2, p, r);
  Matrix cbar(n1, n1);
  if (cw > 0) syrk_lower(a.block(0, c0, n1, cw), cbar.view());
  PackedLower packed = PackedLower::from_full(cbar.view());

  // Reduce-Scatter of the n1(n1+1)/2 packed entries (Alg. 1 line 4).
  comm.set_phase(kPhaseReduceC);
  const std::size_t total = packed.size();
  PackedChunk out;
  if (reduce != ReduceKind::kBruck) {
    std::vector<std::size_t> sizes(p);
    for (int q = 0; q < p; ++q) sizes[q] = dist::chunk_size(total, p, q);
    out.offset = dist::chunk_begin(total, p, r);
    // Hierarchical falls back to flat pairwise when the communicator's
    // members don't form whole nodes of the world's topology.
    out.data = (reduce == ReduceKind::kHierarchical && comm.hier_available())
                   ? comm.reduce_scatter_hier(packed.span(), sizes)
                   : comm.reduce_scatter(packed.span(), sizes);
  } else {
    // Bruck needs equal blocks: pad to a multiple of P; trailing zeros of
    // the last rank's block are trimmed after the reduction.
    const std::size_t blk = (total + p - 1) / p;
    std::vector<double> padded(blk * p, 0.0);
    std::copy(packed.data(), packed.data() + total, padded.begin());
    auto mine = comm.reduce_scatter_bruck(padded);
    out.offset = blk * static_cast<std::size_t>(r);
    const std::size_t valid =
        out.offset >= total ? 0 : std::min(blk, total - out.offset);
    mine.resize(valid);
    out.data = std::move(mine);
  }
  return out;
}

void syrk_1d_spmd_pipelined(comm::Comm& comm, const ConstMatrixView& a,
                            int chunks, Matrix& c_full) {
  const int p = comm.size();
  const int r = comm.rank();
  const std::size_t n1 = a.rows();
  const std::size_t n2 = a.cols();

  // Local SYRK, exactly as in the blocking body.
  const std::size_t c0 = dist::chunk_begin(n2, p, r);
  const std::size_t cw = dist::chunk_size(n2, p, r);
  Matrix cbar(n1, n1);
  if (cw > 0) syrk_lower(a.block(0, c0, n1, cw), cbar.view());
  PackedLower packed = PackedLower::from_full(cbar.view());

  // Segmented Reduce-Scatter: segment s of the packed triangle scatters
  // into c_full while segment s+1 is in flight. Each segment's per-rank
  // sizes are the intersections of the blocking ownership ranges with the
  // segment, so summed words — and each entry's accumulation order — match
  // the blocking path exactly.
  comm.set_phase(kPhaseReduceC);
  const std::size_t total = packed.size();
  const int S = static_cast<int>(std::clamp<std::size_t>(
      static_cast<std::size_t>(std::max(chunks, 1)), 1,
      std::max<std::size_t>(total, 1)));
  std::vector<std::size_t> own_b(p), own_e(p);
  for (int q = 0; q < p; ++q) {
    own_b[q] = dist::chunk_begin(total, p, q);
    own_e[q] = dist::chunk_end(total, p, q);
  }
  auto data = packed.span();
  std::vector<comm::Request> reqs(S);
  std::vector<std::uint64_t> tokens(S), words(S);
  std::vector<std::size_t> my_lo(S);
  auto post = [&](int s) {
    const std::size_t lo = dist::chunk_begin(total, S, s);
    const std::size_t hi = dist::chunk_end(total, S, s);
    std::vector<std::size_t> sizes(p);
    for (int q = 0; q < p; ++q) {
      const std::size_t b = std::max(own_b[q], lo);
      const std::size_t e = std::min(own_e[q], hi);
      sizes[q] = e > b ? e - b : 0;
    }
    my_lo[s] = std::max(own_b[r], lo);
    // Words this rank moves for the segment: every peer's share out, p−1
    // partials of its own share in (logical volume; folding discounts
    // co-located pairs in the ledger, not here).
    words[s] = (hi - lo - sizes[r]) +
               static_cast<std::uint64_t>(p - 1) * sizes[r];
    tokens[s] = comm.overlap_begin();
    reqs[s] = comm.ireduce_scatter(data.subspan(lo, hi - lo), sizes);
    reqs[s].test();  // kick the first round so peers can overlap against it
  };
  post(0);
  for (int s = 0; s < S; ++s) {
    if (s + 1 < S) post(s + 1);
    PackedChunk seg;
    seg.offset = my_lo[s];
    seg.data = reqs[s].take();
    // A single segment has nothing in flight beside it: no overlap window,
    // keeping chunks=1 traces bitwise identical to blocking ones.
    if (S > 1) {
      comm.overlap_end(tokens[s], static_cast<std::uint32_t>(s), words[s],
                       /*flops=*/0);
    }
    scatter_packed_to_full(seg, c_full);
  }
}

const Matrix& AssembledRowBlocks::block_of(std::uint64_t i) const {
  auto it = std::lower_bound(indices.begin(), indices.end(), i);
  PARSYRK_CHECK(it != indices.end() && *it == i);
  return blocks[static_cast<std::size_t>(it - indices.begin())];
}

AssembledRowBlocks syrk_2d_gather(comm::Comm& comm,
                                  const dist::TriangleBlockDistribution& d,
                                  const ConstMatrixView& a,
                                  ExchangeKind exchange, int pipeline_chunks) {
  const auto p = static_cast<std::uint64_t>(comm.size());
  PARSYRK_REQUIRE(p == d.num_procs(), "2D SYRK needs exactly c(c+1) = ",
                  d.num_procs(), " ranks; communicator has ", p);
  const std::uint64_t c = d.c();
  const std::uint64_t nblocks = d.num_block_rows();  // c²
  const std::size_t n1 = a.rows();
  const std::size_t n2 = a.cols();
  PARSYRK_REQUIRE(n1 % nblocks == 0, "2D SYRK needs n1 divisible by c² = ",
                  nblocks, "; got n1 = ", n1);
  const std::size_t nb = n1 / nblocks;      // block dimension
  const std::size_t flat = nb * n2;         // words per row block A_i
  const auto k = static_cast<std::uint64_t>(comm.rank());
  const int parts = static_cast<int>(c + 1);

  // --- All-to-All gather of the row blocks in R_k (Alg. 2 lines 3–14) ---
  // This rank holds chunk q = chunk_index(i, k) of each A_i with i in R_k
  // and must send it to the other c members of Q_i. Because the distribution
  // is valid, each pair of processors shares at most one row block, so the
  // exchange is a single personalized All-to-All.
  comm.set_phase(kPhaseGatherA);
  std::vector<std::vector<double>> sendbuf(p);
  const auto& rk = d.row_block_set(k);
  auto read_own_chunk = [&](std::uint64_t i) {
    const int q = static_cast<int>(d.chunk_index(i, k));
    const std::size_t lo = dist::chunk_begin(flat, parts, q);
    const std::size_t hi = dist::chunk_end(flat, parts, q);
    std::vector<double> chunk;
    chunk.reserve(hi - lo);
    for (std::size_t t = lo; t < hi; ++t) {
      chunk.push_back(a(i * nb + t / n2, t % n2));
    }
    return chunk;
  };
  for (std::uint64_t i : rk) {
    auto mine = read_own_chunk(i);
    for (std::uint64_t k2 : d.processor_set(i)) {
      if (k2 == k) continue;
      PARSYRK_CHECK_MSG(sendbuf[k2].empty(), "processors ", k, " and ", k2,
                        " would exchange two chunks; invalid distribution");
      sendbuf[k2] = mine;
    }
  }
  // Chunk geometry per source: which assembled block a peer's chunk lands
  // in, and where. Each pair of processors shares at most one row block.
  struct SrcInfo {
    std::size_t block_pos = 0;  // index into rk order
    std::size_t lo = 0, hi = 0;  // flat range within the row block
  };
  std::vector<std::optional<SrcInfo>> src_info(p);
  for (std::size_t bi = 0; bi < rk.size(); ++bi) {
    const std::uint64_t i = rk[bi];
    for (std::uint64_t k2 : d.processor_set(i)) {
      if (k2 == k) continue;
      const int q = static_cast<int>(d.chunk_index(i, k2));
      src_info[k2] = SrcInfo{bi, dist::chunk_begin(flat, parts, q),
                             dist::chunk_end(flat, parts, q)};
    }
  }

  AssembledRowBlocks rb;
  rb.indices.assign(rk.begin(), rk.end());
  rb.blocks.reserve(rk.size());
  for (std::uint64_t i : rk) {
    Matrix ai(nb, n2);
    // Own chunk: read straight from the shared view (free, local data).
    const int q = static_cast<int>(d.chunk_index(i, k));
    const std::size_t lo = dist::chunk_begin(flat, parts, q);
    const std::size_t hi = dist::chunk_end(flat, parts, q);
    for (std::size_t t = lo; t < hi; ++t) {
      ai(t / n2, t % n2) = a(i * nb + t / n2, t % n2);
    }
    rb.blocks.push_back(std::move(ai));
  }

  if (pipeline_chunks >= 1) {
    // Segmented nonblocking exchange: every payload is sliced into S
    // contiguous segments (sender and receiver agree on the slicing because
    // chunk sizes are distribution-determined), and segment s assembles
    // while segment s+1 is in flight. Summed words are identical to the
    // blocking exchange; only the message count scales with S.
    PARSYRK_REQUIRE(exchange == ExchangeKind::kPairwise,
                    "pipelined 2D exchange supports pairwise only");
    // Effective segment count: no payload is smaller than ⌊flat/(c+1)⌋
    // words, so clamping there keeps every segment of every nonempty
    // payload nonempty (a larger S would post empty messages, changing the
    // schedule for no overlap gain). The clamp depends only on
    // distribution-level quantities, so sender and receiver agree.
    const int S = static_cast<int>(std::clamp<std::size_t>(
        static_cast<std::size_t>(std::max(pipeline_chunks, 1)), 1,
        std::max<std::size_t>(flat / parts, 1)));
    std::vector<comm::Request> reqs(S);
    std::vector<std::uint64_t> tokens(S), sent(S);
    auto post = [&](int s) {
      std::vector<std::vector<double>> seg(p);
      std::uint64_t w = 0;
      for (std::uint64_t k2 = 0; k2 < p; ++k2) {
        const auto& full = sendbuf[k2];
        const std::size_t lo = dist::chunk_begin(full.size(), S, s);
        const std::size_t hi = dist::chunk_end(full.size(), S, s);
        seg[k2].assign(full.begin() + lo, full.begin() + hi);
        if (k2 != k) w += hi - lo;
      }
      sent[s] = w;
      tokens[s] = comm.overlap_begin();
      reqs[s] = comm.iall_to_all_v(seg);
      reqs[s].test();  // kick the first round so peers can overlap
    };
    post(0);
    for (int s = 0; s < S; ++s) {
      if (s + 1 < S) post(s + 1);
      auto seg_parts = reqs[s].take_parts();
      std::uint64_t recvd = 0;
      for (std::uint64_t k2 = 0; k2 < p; ++k2) {
        if (k2 == k) continue;
        recvd += seg_parts[k2].size();
      }
      if (S > 1) {
        comm.overlap_end(tokens[s], static_cast<std::uint32_t>(s),
                         sent[s] + recvd, /*flops=*/0);
      }
      // Assemble this segment (under the next segment's in-flight window).
      for (std::uint64_t k2 = 0; k2 < p; ++k2) {
        if (k2 == k) continue;
        if (!src_info[k2]) {
          PARSYRK_CHECK_MSG(seg_parts[k2].empty(), "rank ", k,
                            " received an unexpected chunk from ", k2);
          continue;
        }
        const SrcInfo& si = *src_info[k2];
        const std::size_t len = si.hi - si.lo;
        const std::size_t s_lo = dist::chunk_begin(len, S, s);
        const std::size_t s_hi = dist::chunk_end(len, S, s);
        PARSYRK_CHECK_MSG(seg_parts[k2].size() == s_hi - s_lo, "rank ", k,
                          " expected a segment of ", s_hi - s_lo,
                          " words from ", k2, ", got ", seg_parts[k2].size());
        flat_assign(rb.blocks[si.block_pos].view(), si.lo + s_lo,
                    seg_parts[k2]);
      }
    }
    return rb;
  }

  std::vector<std::vector<double>> recvbuf;
  if (exchange == ExchangeKind::kPairwise) {
    recvbuf = comm.all_to_all_v(sendbuf);
  } else if (exchange == ExchangeKind::kHierarchical) {
    // Two-level schedule (falls back to flat pairwise inside when the
    // communicator's members don't form whole nodes). Payloads are moved
    // verbatim, so the assembled blocks are bitwise-identical to pairwise.
    recvbuf = comm.all_to_all_v_hier(sendbuf);
  } else {
    // Butterfly needs equal blocks: every nonempty block is one even chunk
    // of a row block; empty destinations are padded with zeros. The extra
    // zeros are the §6 bandwidth price on top of the (log2 P)/2 factor.
    PARSYRK_REQUIRE(flat % parts == 0,
                    "butterfly exchange needs even chunks: (n1/c²)·n2 "
                    "divisible by c+1");
    const std::size_t block = flat / parts;
    std::vector<double> flat_send(block * p, 0.0);
    for (std::uint64_t k2 = 0; k2 < p; ++k2) {
      PARSYRK_CHECK(sendbuf[k2].empty() || sendbuf[k2].size() == block);
      std::copy(sendbuf[k2].begin(), sendbuf[k2].end(),
                flat_send.begin() + k2 * block);
    }
    auto flat_recv = comm.all_to_all_butterfly(flat_send, block);
    recvbuf.resize(p);
    for (std::uint64_t k2 = 0; k2 < p; ++k2) {
      if (k2 == k || !d.shared_block(k, k2)) continue;  // padding: discard
      recvbuf[k2].assign(flat_recv.begin() + k2 * block,
                         flat_recv.begin() + (k2 + 1) * block);
    }
  }

  // Assemble the received chunks into the row blocks (own chunks were read
  // during preallocation above).
  for (std::uint64_t k2 = 0; k2 < p; ++k2) {
    if (k2 == k || !src_info[k2]) continue;
    const SrcInfo& si = *src_info[k2];
    const auto& chunk = recvbuf[k2];
    PARSYRK_CHECK_MSG(chunk.size() == si.hi - si.lo, "rank ", k,
                      " expected a chunk of ", si.hi - si.lo, " words from ",
                      k2, ", got ", chunk.size());
    flat_assign(rb.blocks[si.block_pos].view(), si.lo, chunk);
  }
  return rb;
}

TriangleBlocks syrk_2d_compute(const dist::TriangleBlockDistribution& d,
                               std::uint64_t k,
                               const AssembledRowBlocks& rb) {
  const std::size_t nb = rb.blocks.empty() ? 0 : rb.blocks.front().rows();
  TriangleBlocks out;
  out.pairs = d.owned_pairs(k);
  out.off_blocks.reserve(out.pairs.size());
  for (const auto& [i, j] : out.pairs) {
    Matrix cij(nb, nb);
    gemm_nt(rb.block_of(i).view(), rb.block_of(j).view(), cij.view());
    out.off_blocks.push_back(std::move(cij));
  }
  if (auto di = d.diagonal_block(k)) {
    out.diag_index = *di;
    out.diag_block = Matrix(nb, nb);
    syrk_lower(rb.block_of(*di).view(), out.diag_block.view());
  }
  return out;
}

TriangleBlocks syrk_2d_spmd(comm::Comm& comm,
                            const dist::TriangleBlockDistribution& d,
                            const ConstMatrixView& a, ExchangeKind exchange,
                            int pipeline_chunks) {
  AssembledRowBlocks rb =
      syrk_2d_gather(comm, d, a, exchange, pipeline_chunks);
  return syrk_2d_compute(d, static_cast<std::uint64_t>(comm.rank()), rb);
}

std::vector<double> flatten_triangle_blocks(const TriangleBlocks& b) {
  std::vector<double> flat;
  std::size_t total = 0;
  for (const auto& m : b.off_blocks) total += m.size();
  std::size_t nb = 0;
  if (b.diag_index) {
    nb = b.diag_block.rows();
    total += nb * (nb + 1) / 2;
  }
  flat.reserve(total);
  for (const auto& m : b.off_blocks) {
    flat_append(m.view(), flat);
  }
  if (b.diag_index) {
    for (std::size_t r = 0; r < nb; ++r) {
      for (std::size_t cc = 0; cc <= r; ++cc) {
        flat.push_back(b.diag_block(r, cc));
      }
    }
  }
  return flat;
}

void scatter_flat_to_full(const TriangleBlocks& shape,
                          const std::vector<double>& chunk, std::size_t lo,
                          std::size_t nb, Matrix& c_full) {
  const std::size_t hi = lo + chunk.size();
  std::size_t off = 0;
  auto emit = [&](std::size_t gi, std::size_t gj) {
    if (off >= lo && off < hi) {
      const double v = chunk[off - lo];
      c_full(gi, gj) = v;
      c_full(gj, gi) = v;
    }
    ++off;
  };
  for (std::size_t bidx = 0; bidx < shape.pairs.size(); ++bidx) {
    const auto [bi, bj] = shape.pairs[bidx];
    if (off + nb * nb <= lo || off >= hi) {
      off += nb * nb;
      continue;
    }
    for (std::size_t r = 0; r < nb; ++r) {
      for (std::size_t cc = 0; cc < nb; ++cc) emit(bi * nb + r, bj * nb + cc);
    }
  }
  if (shape.diag_index) {
    const std::uint64_t di = *shape.diag_index;
    for (std::size_t r = 0; r < nb; ++r) {
      for (std::size_t cc = 0; cc <= r; ++cc) emit(di * nb + r, di * nb + cc);
    }
  }
  PARSYRK_CHECK_MSG(hi <= off, "chunk extends past the flattened blocks");
}

void scatter_packed_to_full(const PackedChunk& chunk, Matrix& c_full) {
  // Invert the packed index t = i(i+1)/2 + j once, then walk forward.
  if (chunk.data.empty()) return;
  std::size_t t = chunk.offset;
  auto i = static_cast<std::size_t>(
      (std::sqrt(8.0 * static_cast<double>(t) + 1.0) - 1.0) / 2.0);
  while (i * (i + 1) / 2 > t) --i;
  while ((i + 1) * (i + 2) / 2 <= t) ++i;
  std::size_t j = t - i * (i + 1) / 2;
  for (double v : chunk.data) {
    c_full(i, j) = v;
    c_full(j, i) = v;
    if (++j > i) {
      ++i;
      j = 0;
    }
  }
}

}  // namespace parsyrk::core::internal
