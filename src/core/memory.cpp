#include "core/memory.hpp"

#include <algorithm>
#include <cmath>

#include "costmodel/algorithm_costs.hpp"
#include "support/check.hpp"
#include "support/prime.hpp"

namespace parsyrk::core {

double memory_footprint_per_rank(const Plan& plan, std::uint64_t n1,
                                 std::uint64_t n2) {
  const double d1 = static_cast<double>(n1);
  const double d2 = static_cast<double>(n2);
  switch (plan.algorithm) {
    case Algorithm::kOneD: {
      // Local column block + the full packed triangle it accumulates into
      // (plus the same again transiently during the reduce-scatter rounds,
      // dropped here as lower order since rounds stream w/P-word chunks).
      const double p = static_cast<double>(plan.procs);
      return d1 * d2 / p + d1 * (d1 + 1.0) / 2.0;
    }
    case Algorithm::kTwoD:
    case Algorithm::kThreeD: {
      const double c = static_cast<double>(plan.c);
      const double p2 = static_cast<double>(plan.p2);
      const double nb = d1 / (c * c);
      const double cols = d2 / p2;  // columns per slice (p2 = 1 for 2D)
      // Gathered row blocks (c of them), the send staging (one chunk per
      // destination ≈ the same c row blocks again), and the owned triangle
      // block of C blocks plus one diagonal block.
      const double gathered = c * nb * cols;
      const double staging = gathered;
      const double c_blocks =
          c * (c - 1.0) / 2.0 * nb * nb + nb * (nb + 1.0) / 2.0;
      return gathered + staging + c_blocks;
    }
  }
  return 0.0;
}

double syrk_memory_dependent_bound(std::uint64_t n1, std::uint64_t n2,
                                   std::uint64_t p, std::uint64_t m) {
  PARSYRK_REQUIRE(m >= 1, "memory size must be positive");
  const double d1 = static_cast<double>(n1);
  const double d2 = static_cast<double>(n2);
  return d1 * d1 * d2 /
         (std::sqrt(2.0) * static_cast<double>(p) *
          std::sqrt(static_cast<double>(m)));
}

double syrk_combined_bound(std::uint64_t n1, std::uint64_t n2,
                           std::uint64_t p, std::uint64_t m) {
  return std::max(bounds::syrk_lower_bound(n1, n2, p).communicated,
                  syrk_memory_dependent_bound(n1, n2, p, m));
}

std::optional<MemoryAwarePlan> plan_syrk_memory_aware(
    std::uint64_t n1, std::uint64_t n2, std::uint64_t max_procs,
    std::uint64_t memory_words, bool n1_divisibility) {
  PARSYRK_REQUIRE(n1 >= 2 && n2 >= 1 && max_procs >= 1,
                  "plan needs n1 >= 2, n2 >= 1, max_procs >= 1");
  std::optional<MemoryAwarePlan> best;
  auto consider = [&](Plan plan, double words) {
    const double footprint = memory_footprint_per_rank(plan, n1, n2);
    if (footprint > static_cast<double>(memory_words)) return;
    if (!best || words < best->predicted_words) {
      best = MemoryAwarePlan{plan, words, footprint};
    }
  };

  {
    Plan p1d;
    p1d.algorithm = Algorithm::kOneD;
    p1d.regime = bounds::syrk_lower_bound(n1, n2, max_procs).regime;
    p1d.procs = max_procs;
    p1d.p2 = max_procs;
    consider(p1d, costmodel::syrk_1d_cost({n1, n2}, max_procs).words);
  }
  for (std::uint64_t c = 2; c * (c + 1) <= max_procs; ++c) {
    if (!is_prime(c)) continue;
    if (n1_divisibility && n1 % (c * c) != 0) continue;
    const std::uint64_t p1 = c * (c + 1);
    for (std::uint64_t p2 = 1; p1 * p2 <= max_procs; ++p2) {
      Plan plan;
      plan.algorithm = p2 == 1 ? Algorithm::kTwoD : Algorithm::kThreeD;
      plan.regime =
          bounds::syrk_lower_bound(n1, n2, p1 * p2).regime;
      plan.c = c;
      plan.p1 = p1;
      plan.p2 = p2;
      plan.procs = p1 * p2;
      consider(plan, costmodel::syrk_3d_cost({n1, n2}, c, p2).words);
    }
  }
  return best;
}

}  // namespace parsyrk::core
