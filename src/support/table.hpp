// Plain-text table formatting for the benchmark harnesses.
//
// Every experiment binary prints rows in the shape of the paper's tables; a
// shared formatter keeps the output aligned and diffable.
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace parsyrk {

/// Column-aligned ASCII table. Usage:
///   Table t({"P", "W_measured", "W_bound", "ratio"});
///   t.add_row({"12", "1024", "1000", "1.024"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row);
  void print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision, trimming trailing zeros.
std::string fmt_double(double v, int precision = 4);

/// Formats v as a human-friendly quantity with thousands separators
/// (integers only), e.g. 1234567 -> "1,234,567".
std::string fmt_count(std::uint64_t v);

}  // namespace parsyrk
