#include "support/cli.hpp"

#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "support/check.hpp"

namespace parsyrk {

void CliParser::add_flag(const std::string& name, const std::string& help,
                         std::optional<std::string> default_value) {
  PARSYRK_CHECK_MSG(flags_.find(name) == flags_.end(), "flag '", name,
                    "' declared twice");
  flags_[name] = Flag{help, std::move(default_value), false};
  declared_order_.push_back(name);
}

void CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> value;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    auto it = flags_.find(name);
    PARSYRK_REQUIRE(it != flags_.end(), "unknown flag --", name);
    if (!value) {
      // --name value form when the next token isn't a flag; otherwise a
      // bare boolean.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = std::move(value);
    it->second.set_on_cli = true;
  }
}

bool CliParser::has(const std::string& name) const {
  auto it = flags_.find(name);
  PARSYRK_REQUIRE(it != flags_.end(), "undeclared flag --", name);
  return it->second.value.has_value();
}

std::string CliParser::get(const std::string& name) const {
  auto it = flags_.find(name);
  PARSYRK_REQUIRE(it != flags_.end(), "undeclared flag --", name);
  PARSYRK_REQUIRE(it->second.value.has_value(), "flag --", name,
                  " was not provided and has no default");
  return *it->second.value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  errno = 0;
  const long long out = std::strtoll(v.c_str(), &end, 10);
  PARSYRK_REQUIRE(end != nullptr && *end == '\0' && !v.empty(),
                  "flag --", name, " expects an integer, got '", v, "'");
  PARSYRK_REQUIRE(errno != ERANGE, "flag --", name,
                  " value '", v, "' does not fit a 64-bit integer");
  return out;
}

std::int64_t CliParser::get_int_in(const std::string& name, std::int64_t lo,
                                   std::int64_t hi) const {
  const std::int64_t out = get_int(name);
  PARSYRK_REQUIRE(out >= lo && out <= hi, "flag --", name, " value ", out,
                  " is outside the accepted range [", lo, ", ", hi, "]");
  return out;
}

double CliParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  errno = 0;
  const double out = std::strtod(v.c_str(), &end);
  PARSYRK_REQUIRE(end != nullptr && *end == '\0' && !v.empty(),
                  "flag --", name, " expects a number, got '", v, "'");
  PARSYRK_REQUIRE(errno != ERANGE, "flag --", name,
                  " value '", v, "' overflows a double");
  return out;
}

std::string CliParser::help(const std::string& program,
                            const std::string& description) const {
  std::ostringstream os;
  os << program << " — " << description << "\n\nFlags:\n";
  for (const auto& name : declared_order_) {
    const auto& f = flags_.at(name);
    os << "  --" << name;
    if (f.value && !f.set_on_cli) os << " (default: " << *f.value << ")";
    os << "\n      " << f.help << "\n";
  }
  return os.str();
}

}  // namespace parsyrk
