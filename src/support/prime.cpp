#include "support/prime.hpp"

#include <cmath>

#include "support/check.hpp"

namespace parsyrk {

bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  if (n % 2 == 0) return n == 2;
  if (n % 3 == 0) return n == 3;
  for (std::uint64_t d = 5; d * d <= n; d += 6) {
    if (n % d == 0 || n % (d + 2) == 0) return false;
  }
  return true;
}

std::uint64_t next_prime(std::uint64_t n) {
  std::uint64_t c = n < 2 ? 2 : n;
  while (!is_prime(c)) ++c;
  return c;
}

std::optional<std::uint64_t> prev_prime(std::uint64_t n) {
  if (n < 2) return std::nullopt;
  std::uint64_t c = n;
  while (c >= 2 && !is_prime(c)) --c;
  if (c < 2) return std::nullopt;
  return c;
}

std::optional<std::uint64_t> as_prime_pronic(std::uint64_t p) {
  // Solve c(c+1) = p: c = floor((sqrt(4p+1)-1)/2), then verify.
  if (p < 6) return std::nullopt;
  auto c = static_cast<std::uint64_t>(
      (std::sqrt(4.0 * static_cast<double>(p) + 1.0) - 1.0) / 2.0);
  for (std::uint64_t cand = (c > 1 ? c - 1 : 1); cand <= c + 1; ++cand) {
    if (cand * (cand + 1) == p && is_prime(cand)) return cand;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> largest_prime_pronic_at_most(std::uint64_t p) {
  if (p < 6) return std::nullopt;
  auto cmax = static_cast<std::uint64_t>(
      (std::sqrt(4.0 * static_cast<double>(p) + 1.0) - 1.0) / 2.0);
  while (cmax >= 2 && (cmax * (cmax + 1) > p || !is_prime(cmax))) --cmax;
  if (cmax < 2) return std::nullopt;
  return cmax * (cmax + 1);
}

std::vector<std::uint64_t> primes_up_to(std::uint64_t n) {
  std::vector<std::uint64_t> out;
  if (n < 2) return out;
  std::vector<bool> composite(n + 1, false);
  for (std::uint64_t i = 2; i <= n; ++i) {
    if (composite[i]) continue;
    out.push_back(i);
    for (std::uint64_t j = i * i; j <= n; j += i) composite[j] = true;
  }
  return out;
}

}  // namespace parsyrk
