#include "support/prime.hpp"

#include "support/check.hpp"

namespace parsyrk {

std::uint64_t isqrt(std::uint64_t n) {
  if (n < 2) return n;
  // Newton's method on x -> (x + n/x)/2, seeded above the root so the
  // iteration descends monotonically; converges in a handful of steps.
  // Seed with n/2 + 1 >= sqrt(n) for n >= 2, not (n + 1)/2 of n itself: the
  // latter overflows to 0 at n = 2^64 - 1 and the next step divides by zero.
  std::uint64_t x = n / 2 + 1;
  std::uint64_t y = (x + n / x) / 2;
  while (y < x) {
    x = y;
    y = (x + n / x) / 2;
  }
  // x = floor(sqrt(n)) exactly: the loop invariant keeps x >= floor(sqrt(n))
  // and stops at the first non-decreasing step.
  return x;
}

bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  if (n % 2 == 0) return n == 2;
  if (n % 3 == 0) return n == 3;
  for (std::uint64_t d = 5; d * d <= n; d += 6) {
    if (n % d == 0 || n % (d + 2) == 0) return false;
  }
  return true;
}

std::uint64_t next_prime(std::uint64_t n) {
  std::uint64_t c = n < 2 ? 2 : n;
  while (!is_prime(c)) ++c;
  return c;
}

std::optional<std::uint64_t> prev_prime(std::uint64_t n) {
  if (n < 2) return std::nullopt;
  std::uint64_t c = n;
  while (c >= 2 && !is_prime(c)) --c;
  if (c < 2) return std::nullopt;
  return c;
}

namespace {

/// c(c+1) <= p, computed without the 64-bit overflow c·(c+1) risks for c
/// near 2^32 (p near 2^64): c(c+1) <= p  ⇔  c <= floor(p / (c+1)).
bool pronic_at_most(std::uint64_t c, std::uint64_t p) {
  return c <= p / (c + 1);
}

}  // namespace

std::optional<std::uint64_t> as_prime_pronic(std::uint64_t p) {
  // If p = c(c+1) then c² <= p < (c+1)², so c = isqrt(p) exactly — no
  // floating-point recovery (the old sqrt(4p+1) double path could be off by
  // one near 2^53 and overflows 4p+1 near 2^62).
  if (p < 6) return std::nullopt;
  const std::uint64_t c = isqrt(p);
  if (p / (c + 1) != c || p % (c + 1) != 0) return std::nullopt;  // p != c(c+1)
  if (!is_prime(c)) return std::nullopt;
  return c;
}

std::optional<std::uint64_t> largest_prime_pronic_at_most(std::uint64_t p) {
  if (p < 6) return std::nullopt;
  // isqrt(p) is either the answer's c or one too large (when p falls in
  // [c², c(c+1)) the pronic at isqrt(p) overshoots); then scan down to a
  // prime.
  std::uint64_t cmax = isqrt(p);
  if (!pronic_at_most(cmax, p)) --cmax;
  while (cmax >= 2 && !is_prime(cmax)) --cmax;
  if (cmax < 2) return std::nullopt;
  return cmax * (cmax + 1);
}

std::vector<std::uint64_t> primes_up_to(std::uint64_t n) {
  std::vector<std::uint64_t> out;
  if (n < 2) return out;
  std::vector<bool> composite(n + 1, false);
  for (std::uint64_t i = 2; i <= n; ++i) {
    if (composite[i]) continue;
    out.push_back(i);
    for (std::uint64_t j = i * i; j <= n; j += i) composite[j] = true;
  }
  return out;
}

}  // namespace parsyrk
