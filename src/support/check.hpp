// Fail-fast assertion and error-reporting utilities.
//
// The SPMD runtime executes rank bodies on many threads; throwing across a
// rank boundary would terminate with an unhelpful message, so library-level
// invariant violations abort with a formatted location + message instead.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace parsyrk {

/// Thrown by user-facing API entry points on invalid arguments
/// (e.g. a processor count that cannot be factored as c(c+1) with c prime).
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::fprintf(stderr, "[parsyrk] check failed: %s at %s:%d%s%s\n", cond, file,
               line, msg.empty() ? "" : " — ", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace detail

/// Builds a std::string from stream-formatted parts: strcat("x=", x).
template <typename... Args>
std::string strcat_all(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

}  // namespace parsyrk

/// Hard invariant: aborts the process on failure. Enabled in all build types —
/// the experiments are only meaningful if the invariants hold.
#define PARSYRK_CHECK(cond)                                                \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::parsyrk::detail::check_failed(#cond, __FILE__, __LINE__, "");      \
    }                                                                      \
  } while (0)

#define PARSYRK_CHECK_MSG(cond, ...)                                       \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::parsyrk::detail::check_failed(#cond, __FILE__, __LINE__,           \
                                      ::parsyrk::strcat_all(__VA_ARGS__)); \
    }                                                                      \
  } while (0)

/// Argument validation at public API boundaries: throws InvalidArgument.
#define PARSYRK_REQUIRE(cond, ...)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      throw ::parsyrk::InvalidArgument(                                    \
          ::parsyrk::strcat_all("parsyrk: requirement '", #cond,           \
                                "' violated: ", __VA_ARGS__));             \
    }                                                                      \
  } while (0)
