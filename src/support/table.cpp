#include "support/table.hpp"

#include <algorithm>
#include <cstdio>

#include "support/check.hpp"

namespace parsyrk {

void Table::add_row(std::vector<std::string> row) {
  PARSYRK_CHECK_MSG(row.size() == header_.size(), "row width ", row.size(),
                    " != header width ", header_.size());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string fmt_count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int since_sep = static_cast<int>(digits.size() % 3);
  if (since_sep == 0) since_sep = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (since_sep == 0) {
      out.push_back(',');
      since_sep = 3;
    }
    out.push_back(digits[i]);
    --since_sep;
  }
  return out;
}

}  // namespace parsyrk
