// Deterministic random-number utilities.
//
// Every stochastic component of the reproduction (test matrices, property
// sweeps, randomized point sets for the Loomis–Whitney checks) draws from a
// seeded engine so runs are bitwise reproducible.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace parsyrk {

/// A small, fast, seeded generator. splitmix64 is used to expand the seed so
/// that nearby seeds give unrelated streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(splitmix(seed)) {}

  /// Uniform in [0, 2^64).
  std::uint64_t next_u64() {
    // xorshift* — adequate statistical quality for test data.
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    const double u = static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    return lo + u * (hi - lo);
  }

  /// Standard normal via Box–Muller (one value per call; cached pair).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 == 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Fill a vector with uniform values in [lo, hi).
  std::vector<double> uniform_vector(std::size_t n, double lo = -1.0,
                                     double hi = 1.0) {
    std::vector<double> v(n);
    for (auto& x : v) x = uniform(lo, hi);
    return v;
  }

 private:
  static std::uint64_t splitmix(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    x = x ^ (x >> 31);
    return x == 0 ? 0x1234567890ABCDEFULL : x;
  }

  std::uint64_t state_;
  bool has_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace parsyrk
