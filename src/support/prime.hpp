// Number-theory helpers for the triangle-block distribution.
//
// The 2D/3D algorithms of the paper require the p1 dimension of the processor
// grid to factor as p1 = c(c+1) with c prime (a sufficient condition for the
// validity of the cyclic (c,c)-indexing family of Beaumont et al. that the
// distribution is built on).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace parsyrk {

/// Floor of the square root of n, computed in integer arithmetic (Newton's
/// method). `std::sqrt` in double precision is wrong for some n near 2^53
/// and above — recovering c from c(c+1) at large pronic p needs exactness.
std::uint64_t isqrt(std::uint64_t n);

/// Deterministic primality test for 64-bit integers (trial division up to
/// sqrt; the c values used by the distribution are tiny, so this is plenty).
bool is_prime(std::uint64_t n);

/// Smallest prime >= n; n must be >= 0 and the result must fit in 64 bits.
std::uint64_t next_prime(std::uint64_t n);

/// Largest prime <= n, or nullopt if n < 2.
std::optional<std::uint64_t> prev_prime(std::uint64_t n);

/// If p == c(c+1) for a prime c, returns c; otherwise nullopt.
std::optional<std::uint64_t> as_prime_pronic(std::uint64_t p);

/// Largest value c(c+1) <= p with c prime, or nullopt when p < 6.
/// Used to round a requested processor count down to a usable grid dimension.
std::optional<std::uint64_t> largest_prime_pronic_at_most(std::uint64_t p);

/// All primes <= n in increasing order (simple sieve).
std::vector<std::uint64_t> primes_up_to(std::uint64_t n);

}  // namespace parsyrk
