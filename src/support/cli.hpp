// Minimal command-line flag parser for the tools and examples.
//
// Supports --name=value, --name value, bare --flag booleans, and positional
// arguments; unknown flags are an error so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace parsyrk {

class CliParser {
 public:
  /// Declares a flag with a help line; flags must be declared before parse.
  void add_flag(const std::string& name, const std::string& help,
                std::optional<std::string> default_value = std::nullopt);

  /// Parses argv; throws InvalidArgument on unknown or malformed flags.
  void parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  /// get_int plus an inclusive range check, so callers narrowing to int (or
  /// rejecting nonsense like --procs 0) fail with a flag-named diagnostic
  /// instead of a silent truncation.
  std::int64_t get_int_in(const std::string& name, std::int64_t lo,
                          std::int64_t hi) const;
  double get_double(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Formatted help text listing all declared flags.
  std::string help(const std::string& program,
                   const std::string& description) const;

 private:
  struct Flag {
    std::string help;
    std::optional<std::string> value;
    bool set_on_cli = false;
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> declared_order_;
  std::vector<std::string> positional_;
};

}  // namespace parsyrk
