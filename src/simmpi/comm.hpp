// SPMD message-passing runtime (the MPI substitute).
//
// A World owns P mailboxes and a cost ledger; World::run executes an SPMD
// body on P OS threads, each receiving a Comm bound to its rank. Comms
// support point-to-point send/recv and the collectives the paper's
// algorithms use, implemented as explicit pairwise-exchange round schedules
// (latency P−1, bandwidth (1−1/P)·w — §3.2) plus the latency-efficient
// variants discussed in §6 (Bruck all-gather, butterfly all-to-all).
// Sub-communicators (Comm::split) give the 3D algorithm its row/column
// slices. Every word that crosses a rank boundary is recorded in the ledger;
// this measured volume is the quantity Theorem 1 bounds.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "simmpi/ledger.hpp"
#include "simmpi/mailbox.hpp"
#include "simmpi/trace.hpp"
#include "simmpi/worker_pool.hpp"
#include "support/check.hpp"

namespace parsyrk::verify {
class Verifier;
}

namespace parsyrk::comm {

class World;
class Comm;

namespace detail {

/// State of one in-flight nonblocking operation (defined in comm.cpp): the
/// posting context (world, group, rank, phase, op kind) captured at
/// creation, plus the operation's round schedule and partial results.
struct OpState;

}  // namespace detail

/// Handle to an in-flight nonblocking operation (isend/irecv/icollectives).
/// Cheap to copy; all copies observe the same state. A handle must be
/// driven to completion (wait(), or test() until true) before the SPMD body
/// returns — an abandoned incomplete handle leaves its messages undrained.
class Request {
 public:
  Request() = default;

  bool valid() const { return state_ != nullptr; }

  /// True once the operation has completed (no progress is attempted).
  bool done() const;

  /// Makes as much progress as possible without blocking (posts due sends,
  /// matches any already-arrived receives — out-of-order completion within
  /// the current round is fine) and returns whether the operation is now
  /// complete. Safe to call in any interleaving across handles.
  bool test();

  /// Drives the operation to completion, blocking on outstanding receives.
  /// Handles on one communicator must be waited in posting order
  /// (non-overtaking): peers drive their handles in posting order too, so
  /// overtaking can deadlock. Throws RankAborted when a peer rank failed.
  void wait();

  /// wait(), then moves out the flat result (reduce_scatter / all_gather /
  /// irecv payload; empty for isend).
  std::vector<double> take();

  /// wait(), then moves out the per-rank result (all_to_all_v).
  std::vector<std::vector<double>> take_parts();

 private:
  friend class Comm;
  /// Posts the operation's first-round sends eagerly (MPI-style: posting
  /// happens at handle creation, not when the handle is first driven).
  explicit Request(std::shared_ptr<detail::OpState> state);

  std::shared_ptr<detail::OpState> state_;
};

namespace detail {

/// State shared by the member ranks of one communicator group.
struct Group {
  std::uint64_t id = 0;
  std::vector<int> world_ranks;  // group rank -> world rank

  // Central sense-reversing barrier; `poisoned` aborts waiters when a peer
  // rank failed mid-run.
  std::mutex bar_mu;
  std::condition_variable bar_cv;
  int bar_count = 0;
  std::uint64_t bar_gen = 0;
  bool poisoned = false;

  // Per-member count of Comm handles obtained for this group in the
  // current job. Each handle instance draws its collective tags from a
  // disjoint block indexed by this generation, so two handles to the same
  // group (repeated identical splits) can never collide, and World resets
  // the counts at every job start so a reused world replays exactly the
  // tag sequence of a fresh one. Each rank touches only its own slot.
  std::vector<std::uint32_t> handle_gen;
};

}  // namespace detail

namespace detail {

/// Shared state of one streamed rank-range job (World::launch_ranks): the
/// per-rank completion count plus the failure verdict, written by the pool
/// workers and read by the scheduler thread through RangeJob.
struct RangeJobState {
  World* world = nullptr;
  int rank_begin = 0;
  int rank_end = 0;
  std::uint64_t job_id = 0;
  std::function<void(Comm&)> body;
  std::function<void()> on_complete;  // fired once by the last rank
  CostLedger::Snapshot verify_snap;   // job-begin ledger state (verify mode)

  std::mutex mu;
  std::condition_variable cv;
  int pending = 0;
  std::exception_ptr error;  // lowest failing rank's exception
  int error_rank = -1;       // group-relative rank, mirrors run()'s rethrow
  bool any_aborted = false;  // a rank unwound with RankAborted
};

}  // namespace detail

/// Handle to one in-flight streamed job on a rank subset of a World
/// (World::launch_ranks). Completion is observed either by polling done(),
/// blocking in wait(), or through the on_complete callback the job was
/// launched with. Unlike World::run, failure is reported through failed() /
/// error() rather than rethrown — the launching thread is not inside the
/// job when it dies.
class RangeJob {
 public:
  RangeJob() = default;

  bool valid() const { return state_ != nullptr; }
  int rank_begin() const { return state_->rank_begin; }
  int rank_end() const { return state_->rank_end; }
  /// World::jobs_run() value assigned to this job at launch.
  std::uint64_t job_id() const { return state_->job_id; }

  /// True once every rank of the job has returned.
  bool done() const;

  /// Blocks until every rank has returned, then (on a clean completion)
  /// checks the job's mailboxes drained — the per-range analogue of
  /// World::run's post-job check. Under verify mode the range's end-of-job
  /// analyses run here too; findings are recorded as the job's error()
  /// (a verify::VerifyError), not thrown. Never throws the job's error;
  /// inspect failed()/aborted()/error() after.
  void wait();

  /// A rank threw a real (non-RankAborted) exception. Valid once done().
  bool failed() const { return state_->error != nullptr; }
  /// A rank unwound with RankAborted (poisoned by a failure elsewhere).
  bool aborted() const { return state_->any_aborted; }
  /// The lowest failing rank's exception (nullptr when !failed()).
  std::exception_ptr error() const { return state_->error; }

 private:
  friend class World;
  explicit RangeJob(std::shared_ptr<detail::RangeJobState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::RangeJobState> state_;
};

/// Per-rank handle to a communicator. Cheap to copy.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return static_cast<int>(group_->world_ranks.size()); }
  int world_rank() const { return group_->world_ranks[rank_]; }
  World& world() const { return *world_; }

  /// Labels subsequent traffic of this rank in the cost ledger.
  void set_phase(const std::string& phase);

  /// Buffered (eager) point-to-point send. Self-sends are disallowed; ranks
  /// keep their own data local.
  void send(int dst, int tag, std::span<const double> data);
  std::vector<double> recv(int src, int tag);

  void barrier();

  // ---- Collectives (pairwise exchange; the paper's §3.2 assumptions) ----

  /// Personalized all-to-all: send[i] goes to rank i; returns recv where
  /// recv[i] came from rank i. Blocks may have arbitrary (even zero) sizes.
  std::vector<std::vector<double>> all_to_all_v(
      const std::vector<std::vector<double>>& send);

  /// Reduce-scatter: every rank passes a buffer laid out as size()
  /// consecutive blocks with the given sizes (identical on all ranks);
  /// returns this rank's block summed over all ranks.
  std::vector<double> reduce_scatter(std::span<const double> data,
                                     const std::vector<std::size_t>& sizes);

  /// Reduce-scatter with equal block sizes; data.size() % size() == 0.
  std::vector<double> reduce_scatter_equal(std::span<const double> data);

  /// All-reduce (sum) composed bandwidth-optimally as reduce-scatter +
  /// all-gather: 2·(1−1/P)·w words, 2(P−1) messages. Requires
  /// data.size() % size() == 0.
  std::vector<double> all_reduce(std::span<const double> data);

  /// All-gather with equal contributions; returns the size()*mine.size()
  /// concatenation in rank order.
  std::vector<double> all_gather(std::span<const double> mine);

  /// All-gather with per-rank contribution sizes; returns one vector per rank.
  std::vector<std::vector<double>> all_gather_v(std::span<const double> mine);

  // ---- Latency-efficient variants (§6 extensions, E12 ablation) ----

  /// Bruck concatenation all-gather: ceil(log2 P) rounds, (1−1/P)·w words.
  std::vector<double> all_gather_bruck(std::span<const double> mine);

  /// Bruck-style Reduce-Scatter (the §6 observation: an adaptation of
  /// Bruck's concatenation algorithm gives bandwidth AND latency optimality
  /// for Reduce-Scatter at any P): ceil(log2 P) rounds, (1−1/P)·w words,
  /// equal block sizes (data.size() % size() == 0). This is the mirror of
  /// all_gather_bruck with summation folded into each round.
  std::vector<double> reduce_scatter_bruck(std::span<const double> data);

  /// Bruck (butterfly) all-to-all with equal block sizes: ceil(log2 P)
  /// rounds, ~(w/2)·log2 P words. `block` is the per-destination block size.
  std::vector<double> all_to_all_butterfly(std::span<const double> send,
                                           std::size_t block);

  // ---- Rooted collectives ----

  /// Binomial-tree broadcast; on non-root ranks `data` supplies the size.
  void bcast(std::span<double> data, int root);

  /// Binomial-tree sum-reduce to root; returns the reduction on root, empty
  /// elsewhere.
  std::vector<double> reduce(std::span<const double> data, int root);

  /// Linear gather of variable-size contributions to root (rank order).
  std::vector<std::vector<double>> gather(std::span<const double> mine,
                                          int root);

  /// Linear scatter from root; `parts` is only read on root.
  std::vector<double> scatter(const std::vector<std::vector<double>>& parts,
                              int root);

  // ---- Hierarchical collectives (two-level topology) ----
  //
  // sdpb shared_memory_comm-style schedules for a nodes × ranks-per-node
  // machine: members first reduce/gather within their node (cheap intra
  // tier), node leaders alone exchange aggregates (scarce inter tier), then
  // leaders scatter within the node. The busiest node's inter volume drops
  // from R·T·(P−R)/P (flat pairwise, R ranks per node) to T·(N−1)/N. Both
  // fall back to the flat pairwise schedule when hier_available() is false.

  /// True when the world has a topology (ranks_per_node > 1) and this
  /// communicator's members form >= 2 complete node-aligned groups, i.e.
  /// the hierarchical collectives will actually run the two-level schedule.
  bool hier_available() const;

  /// Hierarchical reduce-scatter: intra-node binomial reduce to the node
  /// leader, leader-only pairwise reduce-scatter of per-node aggregate
  /// blocks, intra-node scatter of member segments. Same semantics as
  /// reduce_scatter() (summation order differs, so results are exact for
  /// integer-valued data but may differ in final bits otherwise).
  std::vector<double> reduce_scatter_hier(std::span<const double> data,
                                          const std::vector<std::size_t>& sizes);

  /// Hierarchical personalized all-to-all: members serialize per-node
  /// payload blobs, node leaders gather them, exchange node-to-node
  /// aggregates pairwise, and scatter regrouped per-member streams. Same
  /// semantics as all_to_all_v() (payloads are moved verbatim).
  std::vector<std::vector<double>> all_to_all_v_hier(
      const std::vector<std::vector<double>>& send);

  /// Splits into sub-communicators by color; ranks sharing a color form a
  /// group ordered by (key, rank). Collective over this communicator.
  Comm split(int color, int key);

  // ---- Nonblocking primitives (the icollect engine) ----
  //
  // Every blocking collective above is a thin create-then-wait() wrapper
  // over this engine, so blocking and nonblocking runs share one schedule:
  // the same tags, the same per-rank message order, the same ledger volume.
  // A handle captures its ledger phase, trace phase, and operation kind at
  // POST time; every message it later moves is attributed to that posting
  // context even if the rank has since changed phase or a ledger snapshot
  // was taken at a job boundary (in-flight attribution).
  //
  // Completion discipline: handles on one communicator must be *waited* in
  // posting order (non-overtaking) — peers drive theirs in posting order
  // too, so overtaking a pending collective can deadlock. test() never
  // blocks and is safe in any interleaving.

  /// Eager nonblocking send: the payload is buffered immediately, so the
  /// handle is born complete (wait() is a no-op). Exists for symmetry and
  /// for fuzzing the handle lifecycle.
  Request isend(int dst, int tag, std::span<const double> data);

  /// Nonblocking receive; take() yields the payload.
  Request irecv(int src, int tag);

  /// Nonblocking pairwise reduce-scatter; take() yields this rank's summed
  /// block. Block sizes as in reduce_scatter().
  Request ireduce_scatter(std::span<const double> data,
                          const std::vector<std::size_t>& sizes);

  /// Nonblocking pairwise all-gather; take() yields the rank-order
  /// concatenation.
  Request iall_gather(std::span<const double> mine);

  /// Nonblocking personalized all-to-all; take_parts() yields one vector
  /// per source rank.
  Request iall_to_all_v(const std::vector<std::vector<double>>& send);

  // ---- Overlap windows (pipelined-execution trace support) ----

  /// Marks the start of a comm/comp overlap window: returns this rank's
  /// current trace ordinal (0 when tracing is off).
  std::uint64_t overlap_begin() const;

  /// Records the window [token, current ordinal) as pipelined chunk `chunk`
  /// that moved `words` while `flops` of kernel work ran under it. No-op
  /// when tracing is off.
  void overlap_end(std::uint64_t token, std::uint32_t chunk,
                   std::uint64_t words, std::uint64_t flops) const;

 private:
  friend class World;
  friend class Request;
  friend struct detail::OpState;
  Comm(World* world, std::shared_ptr<detail::Group> group, int rank,
       std::uint32_t handle_gen)
      : world_(world),
        group_(std::move(group)),
        rank_(rank),
        tag_base_(static_cast<std::int64_t>(handle_gen) * kOpsPerHandle) {}

  /// Reserves a tag block for the next collective operation. Tags are
  /// negative (disjoint from user tags) and carved per handle generation:
  /// handle g's ops draw from [g·kOpsPerHandle, (g+1)·kOpsPerHandle), so
  /// tag blocks never collide across handles of one group, and the per-job
  /// generation reset keeps the space bounded on a reused world.
  std::int64_t next_op_tag() {
    PARSYRK_CHECK_MSG(op_seq_ < kOpsPerHandle,
                      "collective tag space exhausted: more than ",
                      kOpsPerHandle, " collectives on one communicator "
                      "handle within a single job");
    return -((tag_base_ + ++op_seq_) * kTagStride);
  }

  void send_tagged(int dst, std::int64_t tag, std::span<const double> data);
  std::vector<double> recv_tagged(int src, std::int64_t tag);

  /// Verify-mode hook, called right after next_op_tag() by every collective
  /// builder with the op's *structural* kind and a kind-specific layout
  /// signature. No-op unless the world is verifying.
  void note_collective(OpKind kind, std::uint64_t signature,
                       std::int64_t count, int root = -1) const;

  /// Allocates engine state for one nonblocking operation, capturing the
  /// posting context (kind honours an enclosing OpScope; phase labels are
  /// snapshotted from the ledger/trace).
  std::shared_ptr<detail::OpState> make_op(OpKind kind) const;

  static constexpr std::int64_t kTagStride = 4096;
  static constexpr std::int64_t kOpsPerHandle = std::int64_t{1} << 20;

  /// Labels the traced messages of one collective with its kind; the
  /// outermost operation wins (an All-Reduce's inner Reduce-Scatter stays
  /// labelled all_reduce). Collective methods open one on entry.
  class OpScope {
   public:
    OpScope(Comm& comm, OpKind kind) : comm_(comm), outer_(comm.op_kind_) {
      if (!outer_) comm_.op_kind_ = kind;
    }
    ~OpScope() {
      if (!outer_) comm_.op_kind_.reset();
    }
    OpScope(const OpScope&) = delete;
    OpScope& operator=(const OpScope&) = delete;

   private:
    Comm& comm_;
    std::optional<OpKind> outer_;
  };

  World* world_;
  std::shared_ptr<detail::Group> group_;
  int rank_;
  std::int64_t tag_base_ = 0;  // handle_gen · kOpsPerHandle
  std::int64_t op_seq_ = 0;  // advances identically on all ranks (collectives)
  // The collective this rank is currently inside, for trace attribution;
  // empty between collectives (point-to-point traffic).
  std::optional<OpKind> op_kind_;
  // Communicator setup (split's color/key exchange) is bookkeeping, not
  // algorithm traffic; it is excluded from the cost ledger, matching the
  // paper's accounting where the processor grid exists a priori.
  bool mute_ledger_ = false;
};

/// Owns the mailboxes, ledger, and group registry; runs SPMD bodies on
/// workers leased once from a WorkerPool (the process-shared pool by
/// default), so repeated runs reuse the same warm, parked threads.
///
/// A World may be *folded*: num_ranks logical ranks modelled on a smaller
/// machine of `physical` processors, logical rank r living on physical rank
/// r % physical. The SPMD body still runs one OS thread per logical rank
/// (co-folded ranks executed sequentially would deadlock on blocking
/// collectives — the threads are simulation substrate, not the machine
/// model), but the *accounting* is physical: messages between co-located
/// logical ranks are intra-processor moves and skip the ledger and trace,
/// and CostSummary aggregates per physical rank. This is what lets the
/// planner run a communication-optimal c(c+1)·p2 grid on an awkward
/// physical processor count.
class World {
 public:
  /// Leases size() workers from the process-wide shared pool.
  explicit World(int num_ranks);
  /// Leases from a caller-owned pool (benchmarks and tests use this to
  /// model the old fresh-threads-per-job execution, or to isolate pools).
  World(int num_ranks, WorkerPool& pool);
  /// Folded world: num_ranks logical ranks on `physical` physical ranks
  /// (1 <= physical <= num_ranks), round-robin.
  World(int num_ranks, int physical);
  World(int num_ranks, int physical, WorkerPool& pool);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return static_cast<int>(mailboxes_.size()); }
  /// Physical processor count the accounting folds onto (== size() when
  /// unfolded).
  int physical_size() const { return physical_; }
  bool folded() const { return physical_ < size(); }
  /// Physical rank hosting logical rank r.
  int fold(int logical_rank) const { return logical_rank % physical_; }
  /// Whether two logical ranks share a physical rank (their traffic is
  /// intra-processor and not communication).
  bool colocated(int a, int b) const {
    return a % physical_ == b % physical_;
  }

  // ---- Two-level topology (nodes × ranks-per-node) ----

  /// Groups the physical processors into nodes of `ranks_per_node`
  /// consecutive processors each. 1 (the default) is the flat machine —
  /// every rank its own node — whose accounting is byte-identical to the
  /// pre-topology runtime. Requires ranks_per_node to divide size(), and an
  /// unfolded world when > 1 (folded worlds model co-location already).
  /// Set between jobs only.
  void set_topology(int ranks_per_node);
  int ranks_per_node() const { return ranks_per_node_; }
  int nodes() const { return physical_ / ranks_per_node_; }
  /// Node hosting logical rank r.
  int node_of(int logical_rank) const {
    return (logical_rank % physical_) / ranks_per_node_;
  }
  /// Whether a message between these ranks crosses the scarce inter-node
  /// link (on the flat topology every non-colocated pair does).
  bool inter_node(int a, int b) const { return node_of(a) != node_of(b); }
  Tier tier_between(int a, int b) const {
    return inter_node(a, b) ? Tier::kInter : Tier::kIntra;
  }

  CostLedger& ledger() { return ledger_; }
  /// Jobs executed by this world so far (each run() is one job).
  std::uint64_t jobs_run() const { return jobs_run_; }

  // ---- Per-message tracing (opt-in; see simmpi/trace.hpp) ----

  /// Starts recording every ledger-counted message into per-rank ring
  /// buffers. Idempotent (a second call keeps the existing sink). Must be
  /// called between jobs. When off, the communication path pays a single
  /// null-pointer branch.
  void enable_tracing(std::size_t capacity_per_rank = TraceSink::kDefaultCapacity);
  /// Stops recording and discards any undrained events. Between jobs only.
  void disable_tracing();
  bool tracing() const { return trace_sink_ != nullptr; }
  /// The sink while tracing is enabled (nullptr otherwise). Drain between
  /// jobs to collect the last job's events.
  TraceSink* trace_sink() { return trace_sink_.get(); }

  // ---- SPMD protocol verification (opt-in; see verify/verifier.hpp) ----

  /// Attaches the protocol verifier: collective matching, deadlock
  /// detection (blocking waits become watchdogged), leak analysis at job
  /// boundaries, and topology routing checks. Idempotent; between jobs
  /// only. Also enabled automatically at construction when PARSYRK_VERIFY=1
  /// is set in the environment. Violations surface as verify::VerifyError
  /// through the normal failure path (poison + rethrow), so a broken
  /// schedule diagnoses instead of hanging, and the world stays usable.
  void enable_verify();
  bool verifying() const { return verifier_ != nullptr; }
  /// The verifier while enabled (nullptr otherwise).
  verify::Verifier* verifier() const { return verifier_.get(); }

  /// Executes `body` as one job: the SPMD bodies are handed to the size()
  /// already-parked pool workers (condition-variable handoff — no thread is
  /// created or joined here) and run one per rank. If a rank throws, the
  /// runtime is poisoned so ranks blocked in receives or barriers unwind
  /// with RankAborted; after every rank finishes, the original exception is
  /// rethrown (lowest failing rank wins) and the runtime is reset so the
  /// World — and its leased workers — stay usable for the next job.
  void run(const std::function<void(Comm&)>& body);

  // ---- Streamed execution (work-conserving scheduling substrate) ----
  //
  // launch_ranks is the mid-round interleaving primitive: it starts a job
  // on a rank subset while other disjoint subsets are still mid-flight, so
  // a scheduler can dispatch the next queued job the moment a subset
  // drains instead of barriering on the slowest member of a round. The
  // caller (one scheduling thread) owns the placement discipline:
  //
  //   - ranges of concurrently in-flight jobs must be disjoint, and a
  //     range may be relaunched only after its previous job completed;
  //   - World::run, set_topology, enable/disable_tracing, and a
  //     whole-world launch still require a fully quiesced world;
  //   - after any streamed job fails or aborts, no further launches until
  //     every in-flight job completed and recover_after_failure() ran
  //     (poisoning is world-wide, so innocent in-flight jobs abort too).
  //
  // Each launch is one job epoch for its range only: the trace sink's
  // range ordinals reset, and the handle generations of every group fully
  // contained in the range reset, so the job replays exactly the tag and
  // trace schedule of the same job run solo on a fresh world of the range's
  // size — the property that keeps streamed results bitwise-identical.

  /// Launches `body` on ranks [rank_begin, rank_end) of an unfolded, flat
  /// world and returns immediately. Each rank's Comm spans the range
  /// (size == rank_end - rank_begin, rank 0 == world rank rank_begin).
  /// `on_complete`, if given, fires exactly once on the last finishing
  /// rank's worker thread — it must be cheap and must not launch jobs or
  /// touch the World directly (signal the scheduling thread instead).
  RangeJob launch_ranks(int rank_begin, int rank_end,
                        std::function<void(Comm&)> body,
                        std::function<void()> on_complete = {});

  /// Clears poison and undelivered messages after a streamed job failed,
  /// restoring the world for further launches. Call only once every
  /// in-flight RangeJob has completed.
  void recover_after_failure() { reset_after_failure(); }

 private:
  friend class Comm;
  friend class RangeJob;
  friend struct detail::OpState;  // the nonblocking engine posts/pops directly

  Mailbox& mailbox(int world_rank) { return *mailboxes_[world_rank]; }

  /// Returns the group registered under `signature`, creating it (with the
  /// given members) on first use. Membership must match on every call with
  /// the same signature.
  std::shared_ptr<detail::Group> intern_group(const std::string& signature,
                                              const std::vector<int>& members);

  /// Starts a job epoch: resets every group's per-rank handle generations
  /// so collective tag allocation restarts exactly as on a fresh world.
  void begin_job();

  /// Failure propagation: wakes every blocked receive and barrier.
  void poison_all();
  /// Clears poison state and drops undelivered messages.
  void reset_after_failure();

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  int physical_ = 1;  // physical ranks the accounting folds onto
  int ranks_per_node_ = 1;  // two-level topology; 1 = flat
  CostLedger ledger_;
  std::unique_ptr<TraceSink> trace_sink_;
  std::unique_ptr<verify::Verifier> verifier_;
  WorkerPool::Lease lease_;
  std::shared_ptr<detail::Group> world_group_;
  std::uint64_t jobs_run_ = 0;

  std::mutex groups_mu_;
  std::map<std::string, std::shared_ptr<detail::Group>> group_registry_;
  std::uint64_t next_group_id_ = 1;
};

}  // namespace parsyrk::comm
