// Communication-cost ledger.
//
// The reproduction's measured quantity is the number of words each rank
// sends/receives (the β term of the α-β-γ model) and the number of messages
// (the α term). Every send/recv in the runtime is recorded here, broken down
// by a per-rank "phase" label so one run can attribute volume to, e.g., the
// All-to-All of A vs the Reduce-Scatter of C.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace parsyrk::comm {

/// Which pricing tier a message travelled on under a two-level topology:
/// intra-node (the cheap α0,β0 link) or inter-node (the scarce α1,β1 link).
/// On a flat machine every rank is its own node, so all traffic is
/// conceptually inter-node; the ledger only keeps the separate inter-tier
/// maps when a topology with ranks_per_node > 1 is set, which leaves the
/// flat hot path byte-identical to the pre-topology accounting.
enum class Tier { kIntra, kInter };

struct Counters {
  std::uint64_t words_sent = 0;
  std::uint64_t words_recv = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_recv = 0;

  Counters& operator+=(const Counters& o) {
    words_sent += o.words_sent;
    words_recv += o.words_recv;
    msgs_sent += o.msgs_sent;
    msgs_recv += o.msgs_recv;
    return *this;
  }

  /// Counters only grow, so the per-field difference of a later reading
  /// minus an earlier one is well-defined (job-scoped accounting).
  Counters& operator-=(const Counters& o) {
    words_sent -= o.words_sent;
    words_recv -= o.words_recv;
    msgs_sent -= o.msgs_sent;
    msgs_recv -= o.msgs_recv;
    return *this;
  }

  bool operator==(const Counters&) const = default;
};

/// Aggregate view over all ranks of one phase (or the whole run).
struct CostSummary {
  Counters max;    // per-field maximum over ranks — the critical-path proxy
  Counters total;  // per-field sum over ranks
  std::uint64_t ranks = 0;

  /// The quantity Theorem 1 bounds: words moved by the busiest processor.
  /// Send and receive overlap in the model, so the max of the two is used.
  std::uint64_t critical_path_words() const {
    return max.words_sent > max.words_recv ? max.words_sent : max.words_recv;
  }
};

/// Thread-safe per-rank cost accounting. One instance per World.
class CostLedger {
 public:
  /// A point-in-time copy of every counter, taken between jobs. Diffing the
  /// live ledger against a snapshot scopes the cumulative accounting to one
  /// job on a reused world, without clobbering the whole-session totals.
  class Snapshot {
   public:
    Snapshot() = default;

   private:
    friend class CostLedger;
    std::vector<std::map<std::string, Counters>> by_phase_;
    // Inter-node-tier counters, parallel to by_phase_; all-empty on flat
    // worlds (ranks_per_node == 1), where no inter map is ever written.
    std::vector<std::map<std::string, Counters>> by_phase_inter_;
  };

  explicit CostLedger(int num_ranks);

  /// Folds the *summaries* onto `physical` processors: logical rank i's
  /// traffic lands in bucket i % physical before the per-field max is taken,
  /// and CostSummary::ranks reports the physical count. Recording and
  /// per_rank()/per_rank_since() stay logical-indexed. Defaults to
  /// num_ranks (unfolded). Set once, before any job runs.
  void set_fold(int physical);

  /// Two-level topology: groups the `physical` processors into nodes of
  /// `ranks_per_node` consecutive processors each (must divide the physical
  /// count; 1 = flat, the default). While set > 1, tier-aware recording
  /// additionally accumulates kInter traffic into a separate inter-node
  /// ledger surfaced by inter_summary()/inter_summary_since().
  void set_topology(int ranks_per_node);
  int ranks_per_node() const;

  /// Sets the phase label subsequent traffic of `rank` is attributed to.
  void set_phase(int rank, std::string phase);

  void record_send(int rank, std::uint64_t words);
  void record_recv(int rank, std::uint64_t words);

  // ---- Tier-aware recording (two-level-topology support) ----
  //
  // The runtime classifies each message by whether its endpoints share a
  // node and passes the tier explicitly. kInter traffic is double-entered:
  // once in the ordinary per-phase counters (so totals, goldens, and every
  // pre-topology consumer are unchanged) and once in the inter-node ledger
  // (only when a topology is set). kIntra traffic touches the ordinary
  // counters alone.

  void record_send(int rank, std::uint64_t words, Tier tier);
  void record_recv(int rank, std::uint64_t words, Tier tier);

  // ---- Explicit-phase recording (nonblocking-operation support) ----
  //
  // A nonblocking operation captures the rank's phase when it is *posted*
  // and records every message it later moves under that phase, even if the
  // rank has since advanced to another phase (or another job's snapshot was
  // taken at the boundary). This is what keeps in-flight traffic attributed
  // to the posting job/phase rather than whatever label happened to be
  // current at completion time.

  void record_send(int rank, std::uint64_t words, const std::string& phase);
  void record_recv(int rank, std::uint64_t words, const std::string& phase);
  void record_send(int rank, std::uint64_t words, const std::string& phase,
                   Tier tier);
  void record_recv(int rank, std::uint64_t words, const std::string& phase,
                   Tier tier);

  /// The phase label `rank`'s traffic is currently attributed to (what a
  /// nonblocking operation captures at post time).
  std::string current_phase(int rank) const;

  /// Clears all counters and phases.
  void reset();

  /// Summary across every phase.
  CostSummary summary() const;
  /// Summary of one phase (empty summary if the phase never ran).
  CostSummary summary(const std::string& phase) const;
  /// All phase names seen, in first-use order.
  std::vector<std::string> phases() const;
  /// Raw per-rank counters accumulated over all phases.
  std::vector<Counters> per_rank() const;

  // ---- Job-scoped accounting (persistent-executor support) ----

  /// Captures the current counters; cheap relative to any SPMD job.
  Snapshot snapshot() const;
  /// Summary of traffic recorded after `since` was taken.
  CostSummary summary_since(const Snapshot& since) const;
  /// Per-phase variant of summary_since.
  CostSummary summary_since(const Snapshot& since,
                            const std::string& phase) const;

  // ---- Rank-range accounting (batched-round support) ----
  //
  // When several jobs share one world job on disjoint rank ranges (the
  // service layer's batched rounds), each job's traffic lives entirely in
  // its range [rank_begin, rank_end). The range variants restrict the sum
  // and the per-bucket max to that range while keeping CostSummary::ranks
  // at the world's processor count — so a job placed at any base rank
  // summarizes identically to the same job run solo on this world (where
  // the ranks outside its active set record nothing). Unfolded worlds only.

  CostSummary summary_since(const Snapshot& since, int rank_begin,
                            int rank_end) const;
  CostSummary summary_since(const Snapshot& since, const std::string& phase,
                            int rank_begin, int rank_end) const;

  // ---- Inter-node-tier accounting (two-level-topology support) ----
  //
  // Inter summaries fold to *node* buckets: logical rank i's inter traffic
  // lands in node (i % physical) / ranks_per_node, CostSummary::ranks
  // reports the node count, and critical_path_words() is the busiest
  // node's inter volume — the quantity Theorem 1 bounds at P = #nodes.
  // Requires a topology with ranks_per_node > 1 to have been set.

  CostSummary inter_summary() const;
  CostSummary inter_summary_since(const Snapshot& since) const;
  /// Per-phase variant of inter_summary_since (verify-mode tier balance).
  CostSummary inter_summary_since(const Snapshot& since,
                                  const std::string& phase) const;

  /// Per-rank counters (all phases) recorded after `since` was taken.
  std::vector<Counters> per_rank_since(const Snapshot& since) const;

 private:
  struct RankState {
    std::string phase = "default";
    std::map<std::string, Counters> by_phase;
    std::map<std::string, Counters> by_phase_inter;  // kInter tier only
  };

  CostSummary summarize(const std::string* phase, const Snapshot* since,
                        int rank_begin, int rank_end, bool inter) const;

  mutable std::mutex mu_;
  std::vector<RankState> ranks_;
  int physical_;  // summary fold target; == ranks_.size() when unfolded
  int ranks_per_node_ = 1;  // two-level topology; 1 = flat
  std::vector<std::string> phase_order_;
};

}  // namespace parsyrk::comm
