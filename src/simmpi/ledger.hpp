// Communication-cost ledger.
//
// The reproduction's measured quantity is the number of words each rank
// sends/receives (the β term of the α-β-γ model) and the number of messages
// (the α term). Every send/recv in the runtime is recorded here, broken down
// by a per-rank "phase" label so one run can attribute volume to, e.g., the
// All-to-All of A vs the Reduce-Scatter of C.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace parsyrk::comm {

struct Counters {
  std::uint64_t words_sent = 0;
  std::uint64_t words_recv = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_recv = 0;

  Counters& operator+=(const Counters& o) {
    words_sent += o.words_sent;
    words_recv += o.words_recv;
    msgs_sent += o.msgs_sent;
    msgs_recv += o.msgs_recv;
    return *this;
  }

  /// Counters only grow, so the per-field difference of a later reading
  /// minus an earlier one is well-defined (job-scoped accounting).
  Counters& operator-=(const Counters& o) {
    words_sent -= o.words_sent;
    words_recv -= o.words_recv;
    msgs_sent -= o.msgs_sent;
    msgs_recv -= o.msgs_recv;
    return *this;
  }

  bool operator==(const Counters&) const = default;
};

/// Aggregate view over all ranks of one phase (or the whole run).
struct CostSummary {
  Counters max;    // per-field maximum over ranks — the critical-path proxy
  Counters total;  // per-field sum over ranks
  std::uint64_t ranks = 0;

  /// The quantity Theorem 1 bounds: words moved by the busiest processor.
  /// Send and receive overlap in the model, so the max of the two is used.
  std::uint64_t critical_path_words() const {
    return max.words_sent > max.words_recv ? max.words_sent : max.words_recv;
  }
};

/// Thread-safe per-rank cost accounting. One instance per World.
class CostLedger {
 public:
  /// A point-in-time copy of every counter, taken between jobs. Diffing the
  /// live ledger against a snapshot scopes the cumulative accounting to one
  /// job on a reused world, without clobbering the whole-session totals.
  class Snapshot {
   public:
    Snapshot() = default;

   private:
    friend class CostLedger;
    std::vector<std::map<std::string, Counters>> by_phase_;
  };

  explicit CostLedger(int num_ranks);

  /// Folds the *summaries* onto `physical` processors: logical rank i's
  /// traffic lands in bucket i % physical before the per-field max is taken,
  /// and CostSummary::ranks reports the physical count. Recording and
  /// per_rank()/per_rank_since() stay logical-indexed. Defaults to
  /// num_ranks (unfolded). Set once, before any job runs.
  void set_fold(int physical);

  /// Sets the phase label subsequent traffic of `rank` is attributed to.
  void set_phase(int rank, std::string phase);

  void record_send(int rank, std::uint64_t words);
  void record_recv(int rank, std::uint64_t words);

  // ---- Explicit-phase recording (nonblocking-operation support) ----
  //
  // A nonblocking operation captures the rank's phase when it is *posted*
  // and records every message it later moves under that phase, even if the
  // rank has since advanced to another phase (or another job's snapshot was
  // taken at the boundary). This is what keeps in-flight traffic attributed
  // to the posting job/phase rather than whatever label happened to be
  // current at completion time.

  void record_send(int rank, std::uint64_t words, const std::string& phase);
  void record_recv(int rank, std::uint64_t words, const std::string& phase);

  /// The phase label `rank`'s traffic is currently attributed to (what a
  /// nonblocking operation captures at post time).
  std::string current_phase(int rank) const;

  /// Clears all counters and phases.
  void reset();

  /// Summary across every phase.
  CostSummary summary() const;
  /// Summary of one phase (empty summary if the phase never ran).
  CostSummary summary(const std::string& phase) const;
  /// All phase names seen, in first-use order.
  std::vector<std::string> phases() const;
  /// Raw per-rank counters accumulated over all phases.
  std::vector<Counters> per_rank() const;

  // ---- Job-scoped accounting (persistent-executor support) ----

  /// Captures the current counters; cheap relative to any SPMD job.
  Snapshot snapshot() const;
  /// Summary of traffic recorded after `since` was taken.
  CostSummary summary_since(const Snapshot& since) const;
  /// Per-phase variant of summary_since.
  CostSummary summary_since(const Snapshot& since,
                            const std::string& phase) const;

  // ---- Rank-range accounting (batched-round support) ----
  //
  // When several jobs share one world job on disjoint rank ranges (the
  // service layer's batched rounds), each job's traffic lives entirely in
  // its range [rank_begin, rank_end). The range variants restrict the sum
  // and the per-bucket max to that range while keeping CostSummary::ranks
  // at the world's processor count — so a job placed at any base rank
  // summarizes identically to the same job run solo on this world (where
  // the ranks outside its active set record nothing). Unfolded worlds only.

  CostSummary summary_since(const Snapshot& since, int rank_begin,
                            int rank_end) const;
  CostSummary summary_since(const Snapshot& since, const std::string& phase,
                            int rank_begin, int rank_end) const;

  /// Per-rank counters (all phases) recorded after `since` was taken.
  std::vector<Counters> per_rank_since(const Snapshot& since) const;

 private:
  struct RankState {
    std::string phase = "default";
    std::map<std::string, Counters> by_phase;
  };

  CostSummary summarize(const std::string* phase, const Snapshot* since,
                        int rank_begin, int rank_end) const;

  mutable std::mutex mu_;
  std::vector<RankState> ranks_;
  int physical_;  // summary fold target; == ranks_.size() when unfolded
  std::vector<std::string> phase_order_;
};

}  // namespace parsyrk::comm
