#include "simmpi/ledger.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace parsyrk::comm {

CostLedger::CostLedger(int num_ranks)
    : ranks_(num_ranks), physical_(num_ranks) {
  PARSYRK_CHECK(num_ranks >= 1);
}

void CostLedger::set_fold(int physical) {
  std::lock_guard lock(mu_);
  PARSYRK_CHECK(physical >= 1 && physical <= static_cast<int>(ranks_.size()));
  physical_ = physical;
}

void CostLedger::set_topology(int ranks_per_node) {
  std::lock_guard lock(mu_);
  PARSYRK_CHECK_MSG(ranks_per_node >= 1 && physical_ % ranks_per_node == 0,
                    "topology needs ranks_per_node >= 1 dividing the ",
                    "physical processor count");
  ranks_per_node_ = ranks_per_node;
}

int CostLedger::ranks_per_node() const {
  std::lock_guard lock(mu_);
  return ranks_per_node_;
}

void CostLedger::set_phase(int rank, std::string phase) {
  std::lock_guard lock(mu_);
  PARSYRK_CHECK(rank >= 0 && rank < static_cast<int>(ranks_.size()));
  if (std::find(phase_order_.begin(), phase_order_.end(), phase) ==
      phase_order_.end()) {
    phase_order_.push_back(phase);
  }
  ranks_[rank].phase = std::move(phase);
}

void CostLedger::record_send(int rank, std::uint64_t words) {
  std::lock_guard lock(mu_);
  auto& c = ranks_[rank].by_phase[ranks_[rank].phase];
  c.words_sent += words;
  c.msgs_sent += 1;
}

void CostLedger::record_recv(int rank, std::uint64_t words) {
  std::lock_guard lock(mu_);
  auto& c = ranks_[rank].by_phase[ranks_[rank].phase];
  c.words_recv += words;
  c.msgs_recv += 1;
}

void CostLedger::record_send(int rank, std::uint64_t words,
                             const std::string& phase) {
  std::lock_guard lock(mu_);
  auto& c = ranks_[rank].by_phase[phase];
  c.words_sent += words;
  c.msgs_sent += 1;
}

void CostLedger::record_recv(int rank, std::uint64_t words,
                             const std::string& phase) {
  std::lock_guard lock(mu_);
  auto& c = ranks_[rank].by_phase[phase];
  c.words_recv += words;
  c.msgs_recv += 1;
}

void CostLedger::record_send(int rank, std::uint64_t words, Tier tier) {
  std::lock_guard lock(mu_);
  auto& r = ranks_[rank];
  auto& c = r.by_phase[r.phase];
  c.words_sent += words;
  c.msgs_sent += 1;
  if (tier == Tier::kInter && ranks_per_node_ > 1) {
    auto& ci = r.by_phase_inter[r.phase];
    ci.words_sent += words;
    ci.msgs_sent += 1;
  }
}

void CostLedger::record_recv(int rank, std::uint64_t words, Tier tier) {
  std::lock_guard lock(mu_);
  auto& r = ranks_[rank];
  auto& c = r.by_phase[r.phase];
  c.words_recv += words;
  c.msgs_recv += 1;
  if (tier == Tier::kInter && ranks_per_node_ > 1) {
    auto& ci = r.by_phase_inter[r.phase];
    ci.words_recv += words;
    ci.msgs_recv += 1;
  }
}

void CostLedger::record_send(int rank, std::uint64_t words,
                             const std::string& phase, Tier tier) {
  std::lock_guard lock(mu_);
  auto& r = ranks_[rank];
  auto& c = r.by_phase[phase];
  c.words_sent += words;
  c.msgs_sent += 1;
  if (tier == Tier::kInter && ranks_per_node_ > 1) {
    auto& ci = r.by_phase_inter[phase];
    ci.words_sent += words;
    ci.msgs_sent += 1;
  }
}

void CostLedger::record_recv(int rank, std::uint64_t words,
                             const std::string& phase, Tier tier) {
  std::lock_guard lock(mu_);
  auto& r = ranks_[rank];
  auto& c = r.by_phase[phase];
  c.words_recv += words;
  c.msgs_recv += 1;
  if (tier == Tier::kInter && ranks_per_node_ > 1) {
    auto& ci = r.by_phase_inter[phase];
    ci.words_recv += words;
    ci.msgs_recv += 1;
  }
}

std::string CostLedger::current_phase(int rank) const {
  std::lock_guard lock(mu_);
  PARSYRK_CHECK(rank >= 0 && rank < static_cast<int>(ranks_.size()));
  return ranks_[rank].phase;
}

void CostLedger::reset() {
  std::lock_guard lock(mu_);
  for (auto& r : ranks_) {
    r.phase = "default";
    r.by_phase.clear();
    r.by_phase_inter.clear();
  }
  phase_order_.clear();
}

CostSummary CostLedger::summarize(const std::string* phase,
                                  const Snapshot* since, int rank_begin,
                                  int rank_end, bool inter) const {
  std::lock_guard lock(mu_);
  PARSYRK_CHECK_MSG(since == nullptr || since->by_phase_.size() == ranks_.size(),
                    "ledger snapshot is from a different world");
  PARSYRK_CHECK_MSG(rank_begin >= 0 && rank_begin <= rank_end &&
                        rank_end <= static_cast<int>(ranks_.size()),
                    "bad ledger rank range");
  PARSYRK_CHECK_MSG(rank_begin == 0 ||
                        rank_end == static_cast<int>(ranks_.size()) ||
                        physical_ == static_cast<int>(ranks_.size()),
                    "rank-range summaries need an unfolded world");
  PARSYRK_CHECK_MSG(!inter || ranks_per_node_ > 1,
                    "inter-node summaries need a topology with "
                    "ranks_per_node > 1");
  CostSummary s;
  // Fold logical ranks onto their physical hosts (i % physical_) before
  // taking the per-field max: the critical path belongs to the busiest
  // *processor*, which under folding carries several logical ranks' traffic.
  // Inter-tier summaries fold one level further, onto *nodes*: the busiest
  // node's inter volume is what Theorem 1 bounds at P = #nodes.
  const int bucket_count = inter ? physical_ / ranks_per_node_ : physical_;
  s.ranks = static_cast<std::uint64_t>(bucket_count);
  std::vector<Counters> buckets(bucket_count);
  for (int i = rank_begin; i < rank_end; ++i) {
    const auto& by_phase =
        inter ? ranks_[i].by_phase_inter : ranks_[i].by_phase;
    const auto* snap_phase =
        since != nullptr
            ? (inter ? &since->by_phase_inter_[i] : &since->by_phase_[i])
            : nullptr;
    Counters rank_total;
    for (const auto& [name, c] : by_phase) {
      if (phase != nullptr && name != *phase) continue;
      rank_total += c;
      if (snap_phase != nullptr) {
        auto it = snap_phase->find(name);
        if (it != snap_phase->end()) rank_total -= it->second;
      }
    }
    s.total += rank_total;
    const int host = i % physical_;
    buckets[inter ? host / ranks_per_node_ : host] += rank_total;
  }
  for (const Counters& b : buckets) {
    s.max.words_sent = std::max(s.max.words_sent, b.words_sent);
    s.max.words_recv = std::max(s.max.words_recv, b.words_recv);
    s.max.msgs_sent = std::max(s.max.msgs_sent, b.msgs_sent);
    s.max.msgs_recv = std::max(s.max.msgs_recv, b.msgs_recv);
  }
  return s;
}

CostSummary CostLedger::summary() const {
  return summarize(nullptr, nullptr, 0, static_cast<int>(ranks_.size()),
                   /*inter=*/false);
}

CostSummary CostLedger::summary(const std::string& phase) const {
  return summarize(&phase, nullptr, 0, static_cast<int>(ranks_.size()),
                   /*inter=*/false);
}

CostLedger::Snapshot CostLedger::snapshot() const {
  std::lock_guard lock(mu_);
  Snapshot snap;
  snap.by_phase_.reserve(ranks_.size());
  snap.by_phase_inter_.reserve(ranks_.size());
  for (const auto& r : ranks_) {
    snap.by_phase_.push_back(r.by_phase);
    snap.by_phase_inter_.push_back(r.by_phase_inter);
  }
  return snap;
}

CostSummary CostLedger::summary_since(const Snapshot& since) const {
  return summarize(nullptr, &since, 0, static_cast<int>(ranks_.size()),
                   /*inter=*/false);
}

CostSummary CostLedger::summary_since(const Snapshot& since,
                                      const std::string& phase) const {
  return summarize(&phase, &since, 0, static_cast<int>(ranks_.size()),
                   /*inter=*/false);
}

CostSummary CostLedger::summary_since(const Snapshot& since, int rank_begin,
                                      int rank_end) const {
  return summarize(nullptr, &since, rank_begin, rank_end, /*inter=*/false);
}

CostSummary CostLedger::summary_since(const Snapshot& since,
                                      const std::string& phase,
                                      int rank_begin, int rank_end) const {
  return summarize(&phase, &since, rank_begin, rank_end, /*inter=*/false);
}

CostSummary CostLedger::inter_summary() const {
  return summarize(nullptr, nullptr, 0, static_cast<int>(ranks_.size()),
                   /*inter=*/true);
}

CostSummary CostLedger::inter_summary_since(const Snapshot& since) const {
  return summarize(nullptr, &since, 0, static_cast<int>(ranks_.size()),
                   /*inter=*/true);
}

CostSummary CostLedger::inter_summary_since(const Snapshot& since,
                                            const std::string& phase) const {
  return summarize(&phase, &since, 0, static_cast<int>(ranks_.size()),
                   /*inter=*/true);
}

std::vector<Counters> CostLedger::per_rank_since(const Snapshot& since) const {
  std::lock_guard lock(mu_);
  PARSYRK_CHECK_MSG(since.by_phase_.size() == ranks_.size(),
                    "ledger snapshot is from a different world");
  std::vector<Counters> out(ranks_.size());
  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    for (const auto& [name, c] : ranks_[i].by_phase) {
      out[i] += c;
      auto it = since.by_phase_[i].find(name);
      if (it != since.by_phase_[i].end()) out[i] -= it->second;
    }
  }
  return out;
}

std::vector<std::string> CostLedger::phases() const {
  std::lock_guard lock(mu_);
  return phase_order_;
}

std::vector<Counters> CostLedger::per_rank() const {
  std::lock_guard lock(mu_);
  std::vector<Counters> out(ranks_.size());
  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    for (const auto& [name, c] : ranks_[i].by_phase) out[i] += c;
  }
  return out;
}

}  // namespace parsyrk::comm
