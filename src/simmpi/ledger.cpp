#include "simmpi/ledger.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace parsyrk::comm {

CostLedger::CostLedger(int num_ranks) : ranks_(num_ranks) {
  PARSYRK_CHECK(num_ranks >= 1);
}

void CostLedger::set_phase(int rank, std::string phase) {
  std::lock_guard lock(mu_);
  PARSYRK_CHECK(rank >= 0 && rank < static_cast<int>(ranks_.size()));
  if (std::find(phase_order_.begin(), phase_order_.end(), phase) ==
      phase_order_.end()) {
    phase_order_.push_back(phase);
  }
  ranks_[rank].phase = std::move(phase);
}

void CostLedger::record_send(int rank, std::uint64_t words) {
  std::lock_guard lock(mu_);
  auto& c = ranks_[rank].by_phase[ranks_[rank].phase];
  c.words_sent += words;
  c.msgs_sent += 1;
}

void CostLedger::record_recv(int rank, std::uint64_t words) {
  std::lock_guard lock(mu_);
  auto& c = ranks_[rank].by_phase[ranks_[rank].phase];
  c.words_recv += words;
  c.msgs_recv += 1;
}

void CostLedger::reset() {
  std::lock_guard lock(mu_);
  for (auto& r : ranks_) {
    r.phase = "default";
    r.by_phase.clear();
  }
  phase_order_.clear();
}

CostSummary CostLedger::summarize(const std::string* phase) const {
  std::lock_guard lock(mu_);
  CostSummary s;
  s.ranks = ranks_.size();
  for (const auto& r : ranks_) {
    Counters rank_total;
    for (const auto& [name, c] : r.by_phase) {
      if (phase != nullptr && name != *phase) continue;
      rank_total += c;
    }
    s.total += rank_total;
    s.max.words_sent = std::max(s.max.words_sent, rank_total.words_sent);
    s.max.words_recv = std::max(s.max.words_recv, rank_total.words_recv);
    s.max.msgs_sent = std::max(s.max.msgs_sent, rank_total.msgs_sent);
    s.max.msgs_recv = std::max(s.max.msgs_recv, rank_total.msgs_recv);
  }
  return s;
}

CostSummary CostLedger::summary() const { return summarize(nullptr); }

CostSummary CostLedger::summary(const std::string& phase) const {
  return summarize(&phase);
}

std::vector<std::string> CostLedger::phases() const {
  std::lock_guard lock(mu_);
  return phase_order_;
}

std::vector<Counters> CostLedger::per_rank() const {
  std::lock_guard lock(mu_);
  std::vector<Counters> out(ranks_.size());
  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    for (const auto& [name, c] : ranks_[i].by_phase) out[i] += c;
  }
  return out;
}

}  // namespace parsyrk::comm
