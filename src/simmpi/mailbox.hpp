// Per-rank mailbox: the point-to-point transport under the communicator.
//
// Sends are buffered (the MPI "eager" discipline), so a rank can post all of
// its messages for a collective round before draining its inbox — the
// pairwise-exchange schedules rely on this to avoid deadlock. Receives match
// on (communicator id, source, tag), mirroring MPI envelope matching.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace parsyrk::comm {

/// Thrown out of blocking runtime calls when another rank of the same run
/// failed: the survivors unwind instead of waiting forever for messages
/// that will never arrive. World::run rethrows the original error.
struct RankAborted : std::runtime_error {
  RankAborted()
      : std::runtime_error("rank aborted: a peer rank failed mid-run") {}
};

struct Envelope {
  std::uint64_t comm_id = 0;
  int src = 0;  // rank within the sending communicator
  // 64-bit so collective tag blocks (negative, carved per communicator
  // handle and per job epoch) can never wrap into the non-negative user
  // tag space however many jobs a reused world executes.
  std::int64_t tag = 0;

  bool operator==(const Envelope&) const = default;
};

struct Message {
  Envelope env;
  std::vector<double> payload;
};

class Mailbox {
 public:
  void push(Message msg) {
    {
      std::lock_guard lock(mu_);
      queue_.push_back(std::move(msg));
    }
    cv_.notify_all();
  }

  /// Blocks until a message matching `env` arrives, then removes and returns
  /// its payload. Matching is in arrival order (FIFO per envelope). Throws
  /// RankAborted if the mailbox is poisoned while waiting.
  std::vector<double> pop(const Envelope& env) {
    std::unique_lock lock(mu_);
    for (;;) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->env == env) {
          std::vector<double> payload = std::move(it->payload);
          queue_.erase(it);
          return payload;
        }
      }
      if (poisoned_) throw RankAborted();
      cv_.wait(lock);
    }
  }

  /// Bounded-wait variant of pop() for the verifier's watchdog: waits at
  /// most `timeout` for a match, returning nullopt on expiry so the caller
  /// can consult the deadlock analysis and then resume waiting. Throws
  /// RankAborted under poison like pop().
  std::optional<std::vector<double>> pop_for(
      const Envelope& env, std::chrono::milliseconds timeout) {
    std::unique_lock lock(mu_);
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->env == env) {
          std::vector<double> payload = std::move(it->payload);
          queue_.erase(it);
          return payload;
        }
      }
      if (poisoned_) throw RankAborted();
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        // One last scan under the lock: a push may have slipped in between
        // the scan above and the timed wait expiring.
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
          if (it->env == env) {
            std::vector<double> payload = std::move(it->payload);
            queue_.erase(it);
            return payload;
          }
        }
        return std::nullopt;
      }
    }
  }

  /// Non-blocking variant of pop(): removes and returns the payload of the
  /// first message matching `env` if one is already queued, nullopt
  /// otherwise. The nonblocking engine's test() path polls with this, so it
  /// can make progress without ever parking the rank. A match is delivered
  /// even on a poisoned mailbox only if it is already queued — otherwise the
  /// poison surfaces as RankAborted, exactly as it would from pop().
  std::optional<std::vector<double>> try_pop(const Envelope& env) {
    std::lock_guard lock(mu_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->env == env) {
        std::vector<double> payload = std::move(it->payload);
        queue_.erase(it);
        return payload;
      }
    }
    if (poisoned_) throw RankAborted();
    return std::nullopt;
  }

  /// Wakes every blocked receiver with RankAborted (failure propagation).
  void poison() {
    {
      std::lock_guard lock(mu_);
      poisoned_ = true;
    }
    cv_.notify_all();
  }

  /// Clears poison and drops undelivered messages (between runs).
  void reset() {
    std::lock_guard lock(mu_);
    poisoned_ = false;
    queue_.clear();
  }

  /// True if no messages are pending (used by tests to assert drainage).
  bool empty() const {
    std::lock_guard lock(mu_);
    return queue_.empty();
  }

  /// True if a message matching `env` is currently queued (does not remove
  /// it). The verifier probes candidate deadlock edges with this before
  /// accusing: an edge whose message exists is slowness, not deadlock.
  bool contains(const Envelope& env) const {
    std::lock_guard lock(mu_);
    for (const Message& m : queue_) {
      if (m.env == env) return true;
    }
    return false;
  }

  /// Snapshot of queued messages as (envelope, payload word count) — the
  /// verifier's leak analysis attributes undrained messages from this at
  /// job boundaries without ever touching the send/receive fast paths.
  std::vector<std::pair<Envelope, std::size_t>> pending() const {
    std::lock_guard lock(mu_);
    std::vector<std::pair<Envelope, std::size_t>> out;
    out.reserve(queue_.size());
    for (const Message& m : queue_) {
      out.emplace_back(m.env, m.payload.size());
    }
    return out;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool poisoned_ = false;
};

}  // namespace parsyrk::comm
