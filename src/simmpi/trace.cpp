#include "simmpi/trace.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace parsyrk::comm {

const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::kPointToPoint: return "p2p";
    case OpKind::kAllToAllV: return "all_to_all_v";
    case OpKind::kReduceScatter: return "reduce_scatter";
    case OpKind::kAllGather: return "all_gather";
    case OpKind::kAllGatherV: return "all_gather_v";
    case OpKind::kAllReduce: return "all_reduce";
    case OpKind::kAllGatherBruck: return "all_gather_bruck";
    case OpKind::kReduceScatterBruck: return "reduce_scatter_bruck";
    case OpKind::kAllToAllButterfly: return "all_to_all_butterfly";
    case OpKind::kBcast: return "bcast";
    case OpKind::kReduce: return "reduce";
    case OpKind::kGather: return "gather";
    case OpKind::kScatter: return "scatter";
  }
  return "unknown";
}

JobTrace extract_rank_range(const JobTrace& round, int rank_begin,
                            int rank_end) {
  PARSYRK_CHECK(rank_begin >= 0 && rank_begin <= rank_end &&
                rank_end <= static_cast<int>(round.ranks));
  JobTrace t;
  t.job_id = round.job_id;
  t.ranks = round.ranks;
  t.physical_ranks = round.physical_ranks;
  t.ranks_per_node = round.ranks_per_node;
  t.poisoned = round.poisoned;
  t.dropped = round.dropped;
  std::vector<bool> used(round.phases.size(), false);
  for (const TraceEvent& e : round.events) {
    if (e.rank < rank_begin || e.rank >= rank_end) continue;
    TraceEvent out = e;
    out.rank -= rank_begin;
    out.peer -= rank_begin;
    t.events.push_back(out);
    used[e.phase] = true;
  }
  for (const OverlapInterval& o : round.overlaps) {
    if (o.rank < rank_begin || o.rank >= rank_end) continue;
    OverlapInterval out = o;
    out.rank -= rank_begin;
    t.overlaps.push_back(out);
  }
  // Rebuild the canonical phase table from the phases this range used; the
  // round table is sorted by name, so the filtered subset stays sorted.
  std::vector<std::uint32_t> remap(round.phases.size(), 0);
  for (std::size_t i = 0; i < round.phases.size(); ++i) {
    if (!used[i]) continue;
    remap[i] = static_cast<std::uint32_t>(t.phases.size());
    t.phases.push_back(round.phases[i]);
  }
  for (TraceEvent& e : t.events) e.phase = remap[e.phase];
  return t;
}

namespace detail {

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t c = 1;
  while (c < n) c <<= 1;
  return c;
}
}  // namespace

TraceRing::TraceRing(std::size_t capacity)
    : slots_(round_up_pow2(std::max<std::size_t>(capacity, 2))),
      mask_(slots_.size() - 1) {}

bool TraceRing::try_push(const TraceEvent& e) {
  const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  if (tail - head >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  slots_[tail & mask_] = e;
  tail_.store(tail + 1, std::memory_order_release);
  return true;
}

void TraceRing::drain(std::vector<TraceEvent>& out) {
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  std::uint64_t head = head_.load(std::memory_order_relaxed);
  for (; head != tail; ++head) out.push_back(slots_[head & mask_]);
  head_.store(head, std::memory_order_release);
}

}  // namespace detail

TraceSink::TraceSink(int num_ranks, std::size_t capacity_per_rank,
                     std::uint32_t physical_ranks)
    : physical_ranks_(physical_ranks) {
  PARSYRK_CHECK(num_ranks >= 1);
  per_rank_.reserve(num_ranks);
  for (int r = 0; r < num_ranks; ++r) {
    per_rank_.push_back(std::make_unique<PerRank>(capacity_per_rank));
  }
  intern("default");  // id 0, matching the ledger's initial phase
}

void TraceSink::begin_job(std::uint64_t job_id) {
  job_id_ = job_id;
  begin_ranks(0, ranks());
}

void TraceSink::begin_ranks(int rank_begin, int rank_end) {
  PARSYRK_CHECK(rank_begin >= 0 && rank_begin <= rank_end &&
                rank_end <= ranks());
  std::vector<TraceEvent> discard;
  for (int r = rank_begin; r < rank_end; ++r) {
    PerRank& pr = *per_rank_[r];
    discard.clear();
    pr.ring.drain(discard);
    pr.ring.reset_dropped();
    pr.phase = 0;  // back to "default", exactly as on a fresh world
    pr.ordinal = 0;
    pr.overlaps.clear();
  }
}

std::uint32_t TraceSink::intern(const std::string& phase) {
  std::lock_guard lock(phases_mu_);
  auto it = phase_ids_.find(phase);
  if (it != phase_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(phase_names_.size());
  phase_names_.push_back(phase);
  phase_ids_.emplace(phase, id);
  return id;
}

void TraceSink::set_phase(int rank, const std::string& phase) {
  PARSYRK_CHECK(rank >= 0 && rank < ranks());
  per_rank_[rank]->phase = intern(phase);
}

void TraceSink::record(int rank, int peer, OpKind kind, TraceDir dir,
                       std::uint64_t words) {
  record(rank, peer, kind, dir, words, per_rank_[rank]->phase);
}

void TraceSink::record(int rank, int peer, OpKind kind, TraceDir dir,
                       std::uint64_t words, std::uint32_t phase_id) {
  PerRank& pr = *per_rank_[rank];
  TraceEvent e;
  e.ordinal = pr.ordinal++;
  e.words = words;
  e.rank = rank;
  e.peer = peer;
  e.phase = phase_id;
  e.kind = kind;
  e.dir = dir;
  pr.ring.try_push(e);
}

void TraceSink::record_overlap(const OverlapInterval& interval) {
  per_rank_[interval.rank]->overlaps.push_back(interval);
}

JobTrace TraceSink::drain(bool poisoned) {
  JobTrace t;
  t.job_id = job_id_;
  t.ranks = static_cast<std::uint32_t>(per_rank_.size());
  t.physical_ranks = physical_ranks_;
  t.ranks_per_node = ranks_per_node_;
  t.poisoned = poisoned;
  for (auto& pr : per_rank_) {
    pr->ring.drain(t.events);  // per-ring ordinal order, ranks appended in order
    t.dropped += pr->ring.dropped();
    pr->ring.reset_dropped();
    // Overlap windows are appended in (rank, post_ordinal) order — each rank
    // records its own in posting order.
    t.overlaps.insert(t.overlaps.end(), pr->overlaps.begin(),
                      pr->overlaps.end());
    pr->overlaps.clear();
  }
  canonicalize_phases(t);
  return t;
}

JobTrace TraceSink::drain_ranks(bool poisoned, int rank_begin, int rank_end,
                                std::uint64_t job_id) {
  PARSYRK_CHECK(rank_begin >= 0 && rank_begin <= rank_end &&
                rank_end <= ranks());
  JobTrace t;
  t.job_id = job_id;
  t.ranks = static_cast<std::uint32_t>(per_rank_.size());
  t.physical_ranks = physical_ranks_;
  t.ranks_per_node = ranks_per_node_;
  t.poisoned = poisoned;
  for (int r = rank_begin; r < rank_end; ++r) {
    PerRank& pr = *per_rank_[r];
    pr.ring.drain(t.events);
    t.dropped += pr.ring.dropped();
    pr.ring.reset_dropped();
    t.overlaps.insert(t.overlaps.end(), pr.overlaps.begin(),
                      pr.overlaps.end());
    pr.overlaps.clear();
  }
  canonicalize_phases(t);
  return t;
}

void TraceSink::canonicalize_phases(JobTrace& t) {
  // Canonicalize the phase table: ids in the raw events reflect interning
  // order, which can differ run-to-run when ranks race to name phases. The
  // exported table holds only the phases this job used, sorted by name, and
  // events are remapped — so equal schedules yield bitwise-equal traces.
  std::vector<std::string> used_names;
  {
    std::lock_guard lock(phases_mu_);
    std::vector<bool> used(phase_names_.size(), false);
    for (const auto& e : t.events) used[e.phase] = true;
    for (std::size_t i = 0; i < used.size(); ++i) {
      if (used[i]) used_names.push_back(phase_names_[i]);
    }
  }
  std::sort(used_names.begin(), used_names.end());
  std::map<std::string, std::uint32_t> canon;
  for (std::size_t i = 0; i < used_names.size(); ++i) {
    canon.emplace(used_names[i], static_cast<std::uint32_t>(i));
  }
  {
    std::lock_guard lock(phases_mu_);
    for (auto& e : t.events) e.phase = canon.at(phase_names_[e.phase]);
  }
  t.phases = std::move(used_names);
}

}  // namespace parsyrk::comm
