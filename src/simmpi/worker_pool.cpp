#include "simmpi/worker_pool.hpp"

#include <utility>

#include "support/check.hpp"

namespace parsyrk::comm {

namespace detail {

void CompletionLatch::add(int n) {
  std::lock_guard lock(mu);
  pending += n;
}

void CompletionLatch::done() {
  {
    std::lock_guard lock(mu);
    --pending;
  }
  cv.notify_all();
}

void CompletionLatch::wait() {
  std::unique_lock lock(mu);
  cv.wait(lock, [&] { return pending == 0; });
}

namespace {

void worker_main(PoolWorker* w) {
  kern::KernelArena::set_current(&w->arena);
  std::unique_lock lock(w->mu);
  for (;;) {
    w->cv.wait(lock, [&] { return w->task != nullptr || w->stop; });
    if (w->task) {
      std::function<void()> task = std::move(w->task);
      w->task = nullptr;
      lock.unlock();
      task();
      lock.lock();
    } else if (w->stop) {
      return;
    }
  }
}

}  // namespace
}  // namespace detail

WorkerPool& WorkerPool::shared() {
  static WorkerPool pool;
  return pool;
}

WorkerPool::~WorkerPool() {
  std::vector<detail::PoolWorker*> all;
  {
    std::lock_guard lock(mu_);
    for (auto& w : workers_) all.push_back(w.get());
  }
  for (auto* w : all) {
    {
      std::lock_guard lock(w->mu);
      w->stop = true;
    }
    w->cv.notify_all();
  }
  for (auto* w : all) {
    if (w->thread.joinable()) w->thread.join();
  }
}

WorkerPool::Lease WorkerPool::acquire(int count) {
  PARSYRK_REQUIRE(count >= 1, "worker lease must be positive, got ", count);
  Lease lease;
  lease.pool_ = this;
  lease.latch_ = std::make_shared<detail::CompletionLatch>();
  std::lock_guard lock(mu_);
  lease.workers_.reserve(count);
  while (!free_.empty() && static_cast<int>(lease.workers_.size()) < count) {
    lease.workers_.push_back(free_.back());
    free_.pop_back();
  }
  while (static_cast<int>(lease.workers_.size()) < count) {
    auto w = std::make_unique<detail::PoolWorker>();
    w->thread = std::thread(detail::worker_main, w.get());
    ++threads_created_;
    lease.workers_.push_back(w.get());
    workers_.push_back(std::move(w));
  }
  return lease;
}

std::uint64_t WorkerPool::threads_created() const {
  std::lock_guard lock(mu_);
  return threads_created_;
}

int WorkerPool::idle() const {
  std::lock_guard lock(mu_);
  return static_cast<int>(free_.size());
}

std::uint64_t WorkerPool::arena_grow_count() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->arena.grow_count();
  return total;
}

std::size_t WorkerPool::arena_doubles_reserved() const {
  std::lock_guard lock(mu_);
  std::size_t total = 0;
  for (const auto& w : workers_) total += w->arena.doubles_reserved();
  return total;
}

void WorkerPool::release_workers(std::vector<detail::PoolWorker*>& workers) {
  std::lock_guard lock(mu_);
  for (auto* w : workers) free_.push_back(w);
  workers.clear();
}

// ---------------------------------------------------------------------------
// Lease
// ---------------------------------------------------------------------------

WorkerPool::Lease::Lease(Lease&& o) noexcept
    : pool_(std::exchange(o.pool_, nullptr)),
      workers_(std::move(o.workers_)),
      latch_(std::move(o.latch_)) {
  o.workers_.clear();
}

WorkerPool::Lease& WorkerPool::Lease::operator=(Lease&& o) noexcept {
  if (this != &o) {
    release();
    pool_ = std::exchange(o.pool_, nullptr);
    workers_ = std::move(o.workers_);
    latch_ = std::move(o.latch_);
    o.workers_.clear();
  }
  return *this;
}

WorkerPool::Lease::~Lease() { release(); }

void WorkerPool::Lease::release() {
  if (pool_ == nullptr) return;
  if (latch_) latch_->wait();  // never park a worker with work in flight
  pool_->release_workers(workers_);
  pool_ = nullptr;
  latch_.reset();
}

void WorkerPool::Lease::dispatch(int i, std::function<void()> task) {
  PARSYRK_CHECK_MSG(i >= 0 && i < size(), "bad worker index ", i);
  latch_->add(1);
  detail::PoolWorker* w = workers_[i];
  {
    std::lock_guard lock(w->mu);
    PARSYRK_CHECK_MSG(w->task == nullptr,
                      "worker ", i, " already has a pending task");
    w->task = [latch = latch_, t = std::move(task)] {
      t();
      latch->done();
    };
  }
  w->cv.notify_one();
}

void WorkerPool::Lease::wait() {
  PARSYRK_CHECK_MSG(latch_ != nullptr, "wait() on an empty lease");
  latch_->wait();
}

}  // namespace parsyrk::comm
