// Multi-job execution on a warm world.
//
// A service issuing many independent SYRK jobs wants them to run
// back-to-back on the same parked worker pool, with each job's
// communication attributed separately. JobQueue provides exactly that:
// enqueue SPMD bodies, then drain() executes them in order on the world's
// leased workers. Each result carries a job-scoped ledger summary (a diff
// against the pre-job snapshot, so the world's cumulative ledger is
// untouched), and a failing job poisons only itself — its error is
// captured in the result, the runtime resets, and the remaining jobs
// still run on the surviving pool.
#pragma once

#include <exception>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "simmpi/comm.hpp"
#include "simmpi/trace.hpp"

namespace parsyrk::comm {

class JobQueue {
 public:
  explicit JobQueue(World& world) : world_(world) {}

  struct JobResult {
    std::string name;
    CostSummary cost;           // this job's traffic only
    std::exception_ptr error;   // set when the job's body threw
    /// This job's message trace, drained at the same boundary as the ledger
    /// snapshot diff. Present iff tracing was enabled on the world; for a
    /// failed job the trace is still flushed, with `poisoned` set.
    std::optional<JobTrace> trace;

    bool ok() const { return error == nullptr; }
    /// Rethrows the job's error (no-op when the job succeeded).
    void rethrow() const {
      if (error) std::rethrow_exception(error);
    }
  };

  /// Queues one SPMD body for the next drain().
  void enqueue(std::string name, std::function<void(Comm&)> body);
  /// Same, with an auto-generated "job<N>" name.
  void enqueue(std::function<void(Comm&)> body);

  std::size_t pending() const { return pending_.size(); }

  /// Runs every pending job back-to-back on the warm pool and returns one
  /// result per job, in enqueue order. Never throws a job's exception —
  /// failures are isolated into their JobResult.
  std::vector<JobResult> drain();

 private:
  World& world_;
  std::vector<std::pair<std::string, std::function<void(Comm&)>>> pending_;
  std::size_t named_ = 0;  // monotonic counter for auto names
};

}  // namespace parsyrk::comm
