// Per-message communication tracing: the raw event model under src/trace.
//
// When tracing is enabled on a World, every ledger-counted send and receive
// additionally appends one fixed-size TraceEvent to a lock-free single-
// producer/single-consumer ring buffer owned by that rank. The producer is
// the rank's leased pool worker; the consumer (TraceSink::drain) only runs
// between jobs, at the same points where the ledger is snapshotted, so a
// drain never races a push. Draining yields a JobTrace: the job's events
// merged in (rank, ordinal) order with a canonicalized phase table, which is
// what the exporters and the golden-trace regression format consume.
//
// Ordinals are logical per-rank timestamps (the runtime has no meaningful
// wall clock across simulated ranks); they reset at every job start, so a
// warm world's JobTrace is bitwise identical to a fresh world's — the same
// guarantee the tag-generation reset gives the message schedule itself.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace parsyrk::comm {

/// Which communicator operation a message belongs to. The outermost
/// operation wins: the Reduce-Scatter inside an All-Reduce is labelled
/// kAllReduce. Values are part of the binary golden-trace format — append
/// only, never renumber.
enum class OpKind : std::uint8_t {
  kPointToPoint = 0,
  kAllToAllV = 1,
  kReduceScatter = 2,
  kAllGather = 3,
  kAllGatherV = 4,
  kAllReduce = 5,
  kAllGatherBruck = 6,
  kReduceScatterBruck = 7,
  kAllToAllButterfly = 8,
  kBcast = 9,
  kReduce = 10,
  kGather = 11,
  kScatter = 12,
};

const char* op_kind_name(OpKind k);

/// Message direction, from the recording rank's point of view.
enum class TraceDir : std::uint8_t { kSend = 0, kRecv = 1 };

/// One traced message, as seen by one endpoint. Two endpoints of the same
/// message each record their own event (a send on the sender, a recv on the
/// receiver), mirroring the ledger's two-sided accounting.
struct TraceEvent {
  std::uint64_t ordinal = 0;  // per-rank logical timestamp, resets per job
  std::uint64_t words = 0;    // payload size in doubles
  std::int32_t rank = 0;      // recording world rank
  std::int32_t peer = 0;      // the other endpoint's world rank
  std::uint32_t phase = 0;    // index into JobTrace::phases
  OpKind kind = OpKind::kPointToPoint;
  TraceDir dir = TraceDir::kSend;

  /// Bytes on the wire (the runtime moves doubles).
  std::uint64_t bytes() const { return words * sizeof(double); }

  bool operator==(const TraceEvent&) const = default;
};

/// One comm/comp overlap window of a pipelined phase, as seen by one rank:
/// a nonblocking chunk operation was in flight from post_ordinal until
/// complete_ordinal (rank-local event ordinals bracket the window) while
/// `flops` of local kernel work ran under it. Side data next to the event
/// stream — the events themselves still carry the full volume accounting,
/// so unpipelined traces have no overlaps and keep their byte-exact golden
/// format.
struct OverlapInterval {
  std::int32_t rank = 0;            // recording world rank
  std::uint32_t chunk = 0;          // chunk index within the pipelined phase
  std::uint64_t post_ordinal = 0;   // rank ordinal when the op was posted
  std::uint64_t complete_ordinal = 0;  // rank ordinal when it completed
  std::uint64_t words = 0;          // words the chunk's collective moved
  std::uint64_t flops = 0;          // kernel flops computed while in flight

  bool operator==(const OverlapInterval&) const = default;
};

/// Everything recorded for one job: events of all ranks merged in
/// (rank, ordinal) order, plus the phase-name table the events index.
/// Phase ids are canonical (lexicographically sorted names), so two traces
/// of the same schedule compare equal regardless of which rank happened to
/// intern a phase first.
struct JobTrace {
  std::uint64_t job_id = 0;   // World::jobs_run() of the traced job
  std::uint32_t ranks = 0;    // logical ranks (event rank/peer indices)
  /// Physical processors the job's ranks were folded onto (0 = unfolded).
  /// Events between co-located logical ranks are never recorded, so the
  /// event stream already reflects inter-processor traffic only. Runtime
  /// metadata — not part of the binary golden-trace format.
  std::uint32_t physical_ranks = 0;
  /// Two-level topology the job ran under: ranks per node (0 = flat). With
  /// it, inter-node events are those whose rank/peer land in different
  /// nodes of `ranks_per_node` consecutive ranks. Runtime metadata — not
  /// part of the binary golden-trace format, so flat goldens are unchanged.
  std::uint32_t ranks_per_node = 0;
  bool poisoned = false;      // a rank threw mid-job; sends may be unmatched
  std::uint64_t dropped = 0;  // events lost to ring-buffer overflow
  std::vector<std::string> phases;
  std::vector<TraceEvent> events;
  /// Comm/comp overlap windows of pipelined runs, in (rank, post_ordinal)
  /// order; empty for unpipelined jobs. Serialized by the binary exporter
  /// only when non-empty, so committed unpipelined goldens are unchanged.
  std::vector<OverlapInterval> overlaps;

  const std::string& phase_name(const TraceEvent& e) const {
    return phases[e.phase];
  }
};

/// Extracts the sub-trace of world ranks [rank_begin, rank_end) from a
/// round trace: events recorded by ranks inside the range, with rank and
/// peer rebased by -rank_begin and the canonical phase table rebuilt from
/// the phases the extracted events actually use. When the range hosted one
/// job of a batched round (disjoint-range jobs never message across range
/// boundaries), the result is bitwise identical — job_id aside — to the
/// trace of the same job run solo on a world of the same size, which is
/// what lets batched rounds keep the golden-trace guarantees per job.
JobTrace extract_rank_range(const JobTrace& round, int rank_begin,
                            int rank_end);

namespace detail {

/// Fixed-capacity single-producer/single-consumer event ring. The producer
/// is the owning rank's worker thread; the consumer is the between-jobs
/// drain. Overflow drops the event and counts it — tracing never blocks or
/// reallocates on the communication path.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  /// Producer side. Returns false (and counts a drop) when full.
  bool try_push(const TraceEvent& e);

  /// Consumer side: appends every pending event (ordinal order) to `out`.
  void drain(std::vector<TraceEvent>& out);

  /// Drops since the last reset_dropped().
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  void reset_dropped() { dropped_.store(0, std::memory_order_relaxed); }

 private:
  std::vector<TraceEvent> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};  // consumer index
  std::atomic<std::uint64_t> tail_{0};  // producer index
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace detail

/// Per-world trace state: one ring, current phase, and ordinal counter per
/// rank. Owned by World when tracing is enabled; record() is called from
/// rank threads (each touching only its own slot), begin_job()/drain() only
/// between jobs.
class TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 15;

  /// `physical_ranks` stamps drained JobTraces with the world's fold target
  /// (0 = unfolded).
  TraceSink(int num_ranks, std::size_t capacity_per_rank,
            std::uint32_t physical_ranks = 0);

  /// Starts a job epoch: discards undrained events, resets ordinals and
  /// phases to a fresh world's state, and stamps subsequent events with
  /// `job_id`.
  void begin_job(std::uint64_t job_id);

  /// Range-scoped epoch for streamed jobs: resets only ranks
  /// [rank_begin, rank_end) — ordinals, phases, rings, overlap windows — so
  /// a job can start on a freed rank subset while other subsets are
  /// mid-flight. The ranks being reset must be idle (their previous job
  /// fully drained); other ranks' producer state is untouched.
  void begin_ranks(int rank_begin, int rank_end);

  /// Range-scoped drain for streamed jobs: collects what ranks
  /// [rank_begin, rank_end) recorded since their begin_ranks() into a
  /// world-shaped JobTrace stamped `job_id` (other ranks contribute no
  /// events; feed the result to extract_rank_range for the solo-shaped
  /// sub-trace). The drained ranks must be idle; concurrently running ranks
  /// are safe — their rings are untouched and the phase table is
  /// mutex-interned.
  JobTrace drain_ranks(bool poisoned, int rank_begin, int rank_end,
                       std::uint64_t job_id);

  /// Attributes subsequent events of `rank` to `phase` (interned).
  void set_phase(int rank, const std::string& phase);

  /// Records one message endpoint. Called only by `rank`'s worker thread.
  void record(int rank, int peer, OpKind kind, TraceDir dir,
              std::uint64_t words);

  /// Explicit-phase variant for nonblocking operations: the event is
  /// stamped with `phase_id` (captured via current_phase_id() when the
  /// operation was posted) instead of the rank's current phase.
  void record(int rank, int peer, OpKind kind, TraceDir dir,
              std::uint64_t words, std::uint32_t phase_id);

  /// The interned id of `rank`'s current phase (post-time capture for
  /// nonblocking operations). Called only by `rank`'s worker thread.
  std::uint32_t current_phase_id(int rank) const {
    return per_rank_[rank]->phase;
  }

  /// The next event ordinal `rank` will record (brackets overlap windows).
  /// Called only by `rank`'s worker thread.
  std::uint64_t ordinal(int rank) const { return per_rank_[rank]->ordinal; }

  /// Records one comm/comp overlap window. Called only by `rank`'s worker
  /// thread; drained into JobTrace::overlaps alongside the events.
  void record_overlap(const OverlapInterval& interval);

  /// Stamps subsequently drained JobTraces with the world's two-level
  /// topology (0 = flat). Between jobs only.
  void set_ranks_per_node(std::uint32_t ranks_per_node) {
    ranks_per_node_ = ranks_per_node;
  }

  /// Collects everything recorded since begin_job() as one JobTrace with a
  /// canonical phase table. Must not run concurrently with a job.
  JobTrace drain(bool poisoned);

  int ranks() const { return static_cast<int>(per_rank_.size()); }

 private:
  struct PerRank {
    explicit PerRank(std::size_t capacity) : ring(capacity) {}
    detail::TraceRing ring;
    std::uint32_t phase = 0;      // written only by the owning rank
    std::uint64_t ordinal = 0;    // written only by the owning rank
    // Overlap windows are rare (one per pipelined chunk), so a plain vector
    // written by the owning rank and read by the between-jobs drain is safe.
    std::vector<OverlapInterval> overlaps;
  };

  std::uint32_t intern(const std::string& phase);

  /// Remaps `t.events` onto a canonical phase table (the phases the job
  /// used, sorted by name) so equal schedules yield bitwise-equal traces.
  void canonicalize_phases(JobTrace& t);

  std::vector<std::unique_ptr<PerRank>> per_rank_;
  std::uint32_t physical_ranks_ = 0;
  std::uint32_t ranks_per_node_ = 0;  // two-level topology; 0 = flat
  std::uint64_t job_id_ = 0;

  std::mutex phases_mu_;
  std::vector<std::string> phase_names_;  // id -> name, first-use order
  std::map<std::string, std::uint32_t> phase_ids_;
};

}  // namespace parsyrk::comm
