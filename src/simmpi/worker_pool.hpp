// Persistent worker pool: the execution substrate under the SPMD runtime.
//
// A World used to spawn and join P fresh OS threads on every run; a service
// issuing thousands of SYRK jobs paid thread-creation latency per call. The
// pool instead keeps long-lived workers parked on condition variables: a
// World acquires a Lease of P workers once, at construction, and every
// World::run hands the per-rank bodies to already-parked workers and waits
// on a completion latch — no thread is created or joined on the hot path.
// Workers returned by a destroyed World stay parked in the pool for the
// next World (of any size) to reuse.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "matrix/arena.hpp"

namespace parsyrk::comm {

namespace detail {

/// One parked OS thread. The worker sleeps on `cv` until a task is handed
/// over (or `stop` is set at pool shutdown), runs it, and parks again.
/// Each worker owns a KernelArena, installed as the thread's current arena
/// for its whole lifetime: pack buffers grow to the job's panel sizes on the
/// first run and are reused — warm jobs allocate nothing in the kernels.
struct PoolWorker {
  std::mutex mu;
  std::condition_variable cv;
  std::function<void()> task;  // nonempty while a task is pending/running
  bool stop = false;
  kern::KernelArena arena;
  std::thread thread;
};

/// Counts in-flight tasks of one lease; dispatchers wait for it to drain.
/// Heap-allocated (shared with the task wrappers) so leases stay movable
/// while tasks are in flight.
struct CompletionLatch {
  std::mutex mu;
  std::condition_variable cv;
  int pending = 0;

  void add(int n);
  void done();
  void wait();
};

}  // namespace detail

/// A shared pool of long-lived worker threads. Thread-safe. Workers are
/// created lazily — only when an acquire cannot be served from the parked
/// set — and are never destroyed until the pool itself is.
class WorkerPool {
 public:
  WorkerPool() = default;
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// The process-wide pool every World draws from by default.
  static WorkerPool& shared();

  /// RAII ownership of `count` workers. Movable; returns the workers to the
  /// pool (still parked, still warm) on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& o) noexcept;
    Lease& operator=(Lease&& o) noexcept;
    ~Lease();

    int size() const { return static_cast<int>(workers_.size()); }

    /// Hands `task` to parked worker `i`; returns immediately. The task
    /// must not throw — rank bodies are wrapped in catch-all handlers by
    /// the caller (an escaped exception terminates, exactly as it would
    /// have escaping a raw std::thread).
    void dispatch(int i, std::function<void()> task);

    /// Blocks until every task dispatched through this lease has finished.
    void wait();

   private:
    friend class WorkerPool;
    WorkerPool* pool_ = nullptr;
    std::vector<detail::PoolWorker*> workers_;
    std::shared_ptr<detail::CompletionLatch> latch_;

    void release();
  };

  /// Takes `count` workers out of the parked set, creating threads only for
  /// the shortfall.
  Lease acquire(int count);

  /// Total OS threads this pool ever created (monotonic). Tests assert this
  /// stays flat across jobs — the "no thread creation on the hot path"
  /// guarantee.
  std::uint64_t threads_created() const;

  /// Workers currently parked and unleased.
  int idle() const;

  /// Sum of every worker's KernelArena grow count (monotonic). Tests assert
  /// this stays flat across warm same-shape jobs — the "no kernel scratch
  /// allocation on the hot path" guarantee.
  std::uint64_t arena_grow_count() const;

  /// Sum of every worker's reserved arena scratch, in doubles.
  std::size_t arena_doubles_reserved() const;

 private:
  void release_workers(std::vector<detail::PoolWorker*>& workers);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<detail::PoolWorker>> workers_;
  std::vector<detail::PoolWorker*> free_;
  std::uint64_t threads_created_ = 0;
};

}  // namespace parsyrk::comm
