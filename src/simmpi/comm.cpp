#include "simmpi/comm.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace parsyrk::comm {

// ---------------------------------------------------------------------------
// World
// ---------------------------------------------------------------------------

World::World(int num_ranks) : World(num_ranks, num_ranks, WorkerPool::shared()) {}

World::World(int num_ranks, WorkerPool& pool)
    : World(num_ranks, num_ranks, pool) {}

World::World(int num_ranks, int physical)
    : World(num_ranks, physical, WorkerPool::shared()) {}

World::World(int num_ranks, int physical, WorkerPool& pool)
    : physical_(physical), ledger_(std::max(num_ranks, 1)) {
  PARSYRK_REQUIRE(num_ranks >= 1, "world size must be positive, got ",
                  num_ranks);
  PARSYRK_REQUIRE(physical >= 1 && physical <= num_ranks,
                  "folded world needs 1 <= physical <= num_ranks; got ",
                  physical, " physical for ", num_ranks, " logical ranks");
  ledger_.set_fold(physical);
  // One OS thread per *logical* rank: co-folded ranks run concurrently (the
  // blocking collectives would deadlock a sequential interleaving); the
  // physical machine is modelled in the accounting, not the thread count.
  lease_ = pool.acquire(num_ranks);
  mailboxes_.reserve(num_ranks);
  for (int i = 0; i < num_ranks; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  world_group_ = std::make_shared<detail::Group>();
  world_group_->id = 0;
  world_group_->world_ranks.resize(num_ranks);
  for (int i = 0; i < num_ranks; ++i) world_group_->world_ranks[i] = i;
  world_group_->handle_gen.assign(num_ranks, 0);
}

World::~World() = default;

void World::enable_tracing(std::size_t capacity_per_rank) {
  if (trace_sink_) return;
  trace_sink_ = std::make_unique<TraceSink>(size(), capacity_per_rank,
                                            folded() ? physical_ : 0);
}

void World::disable_tracing() { trace_sink_.reset(); }

void World::begin_job() {
  if (trace_sink_) trace_sink_->begin_job(jobs_run_ + 1);
  std::fill(world_group_->handle_gen.begin(), world_group_->handle_gen.end(),
            0u);
  std::lock_guard lock(groups_mu_);
  for (auto& [sig, g] : group_registry_) {
    std::fill(g->handle_gen.begin(), g->handle_gen.end(), 0u);
  }
}

void World::run(const std::function<void(Comm&)>& body) {
  const int p = size();
  begin_job();
  ++jobs_run_;
  std::vector<std::exception_ptr> errors(p);
  // One byte per rank (vector<bool> would pack bits into shared words and
  // race across threads).
  std::vector<unsigned char> aborted(p, 0);
  // Hand the rank bodies to the leased, already-parked workers. This is the
  // hot path of the executor: no thread is created or joined here, only a
  // condition-variable handoff per rank and one completion latch.
  for (int r = 0; r < p; ++r) {
    lease_.dispatch(r, [this, &body, &errors, &aborted, r] {
      Comm comm(this, world_group_, r, world_group_->handle_gen[r]++);
      try {
        body(comm);
      } catch (const RankAborted&) {
        aborted[r] = 1;  // secondary victim; the root cause is elsewhere
      } catch (...) {
        errors[r] = std::current_exception();
        poison_all();
      }
    });
  }
  lease_.wait();
  for (int r = 0; r < p; ++r) {
    if (errors[r]) {
      reset_after_failure();
      std::rethrow_exception(errors[r]);
    }
  }
  // A clean SPMD body consumes every message it causes to be sent.
  for (int r = 0; r < p; ++r) {
    PARSYRK_CHECK_MSG(mailboxes_[r]->empty(),
                      "rank ", r, " finished with undrained messages");
  }
}

void World::poison_all() {
  for (auto& mb : mailboxes_) mb->poison();
  auto poison_group = [](detail::Group& g) {
    {
      std::lock_guard lock(g.bar_mu);
      g.poisoned = true;
    }
    g.bar_cv.notify_all();
  };
  poison_group(*world_group_);
  std::lock_guard lock(groups_mu_);
  for (auto& [sig, g] : group_registry_) poison_group(*g);
}

void World::reset_after_failure() {
  for (auto& mb : mailboxes_) mb->reset();
  auto reset_group = [](detail::Group& g) {
    std::lock_guard lock(g.bar_mu);
    g.poisoned = false;
    g.bar_count = 0;
  };
  reset_group(*world_group_);
  std::lock_guard lock(groups_mu_);
  for (auto& [sig, g] : group_registry_) reset_group(*g);
}

std::shared_ptr<detail::Group> World::intern_group(
    const std::string& signature, const std::vector<int>& members) {
  std::lock_guard lock(groups_mu_);
  auto it = group_registry_.find(signature);
  if (it != group_registry_.end()) {
    PARSYRK_CHECK_MSG(it->second->world_ranks == members,
                      "group signature collision: ", signature);
    return it->second;
  }
  auto g = std::make_shared<detail::Group>();
  g->id = next_group_id_++;
  g->world_ranks = members;
  g->handle_gen.assign(members.size(), 0);
  group_registry_.emplace(signature, g);
  return g;
}

// ---------------------------------------------------------------------------
// Comm: point-to-point and barrier
// ---------------------------------------------------------------------------

void Comm::set_phase(const std::string& phase) {
  world_->ledger().set_phase(world_rank(), phase);
  if (TraceSink* sink = world_->trace_sink()) {
    sink->set_phase(world_rank(), phase);
  }
}

void Comm::send_tagged(int dst, std::int64_t tag,
                       std::span<const double> data) {
  PARSYRK_CHECK_MSG(dst >= 0 && dst < size() && dst != rank_,
                    "bad destination ", dst, " from rank ", rank_);
  // Co-located endpoints (same physical rank under folding) move data within
  // one processor's memory: delivered, but not communication.
  if (!mute_ledger_ &&
      !world_->colocated(world_rank(), group_->world_ranks[dst])) {
    world_->ledger().record_send(world_rank(), data.size());
    if (TraceSink* sink = world_->trace_sink()) {
      sink->record(world_rank(), group_->world_ranks[dst],
                   op_kind_.value_or(OpKind::kPointToPoint), TraceDir::kSend,
                   data.size());
    }
  }
  Message msg;
  msg.env = Envelope{group_->id, rank_, tag};
  msg.payload.assign(data.begin(), data.end());
  world_->mailbox(group_->world_ranks[dst]).push(std::move(msg));
}

std::vector<double> Comm::recv_tagged(int src, std::int64_t tag) {
  PARSYRK_CHECK_MSG(src >= 0 && src < size() && src != rank_,
                    "bad source ", src, " at rank ", rank_);
  auto payload =
      world_->mailbox(world_rank()).pop(Envelope{group_->id, src, tag});
  if (!mute_ledger_ &&
      !world_->colocated(world_rank(), group_->world_ranks[src])) {
    world_->ledger().record_recv(world_rank(), payload.size());
    if (TraceSink* sink = world_->trace_sink()) {
      sink->record(world_rank(), group_->world_ranks[src],
                   op_kind_.value_or(OpKind::kPointToPoint), TraceDir::kRecv,
                   payload.size());
    }
  }
  return payload;
}

void Comm::send(int dst, int tag, std::span<const double> data) {
  PARSYRK_REQUIRE(tag >= 0, "user tags must be non-negative, got ", tag);
  send_tagged(dst, tag, data);
}

std::vector<double> Comm::recv(int src, int tag) {
  PARSYRK_REQUIRE(tag >= 0, "user tags must be non-negative, got ", tag);
  return recv_tagged(src, tag);
}

void Comm::barrier() {
  auto& g = *group_;
  std::unique_lock lock(g.bar_mu);
  if (g.poisoned) throw RankAborted();
  const std::uint64_t gen = g.bar_gen;
  if (++g.bar_count == size()) {
    g.bar_count = 0;
    ++g.bar_gen;
    g.bar_cv.notify_all();
  } else {
    g.bar_cv.wait(lock, [&] { return g.bar_gen != gen || g.poisoned; });
    if (g.bar_gen == gen && g.poisoned) throw RankAborted();
  }
}

// ---------------------------------------------------------------------------
// Pairwise-exchange collectives
// ---------------------------------------------------------------------------

std::vector<std::vector<double>> Comm::all_to_all_v(
    const std::vector<std::vector<double>>& send) {
  OpScope scope(*this, OpKind::kAllToAllV);
  const int p = size();
  PARSYRK_REQUIRE(static_cast<int>(send.size()) == p,
                  "all_to_all_v needs one block per rank; got ", send.size(),
                  " for ", p, " ranks");
  PARSYRK_CHECK_MSG(p < kTagStride, "communicator too large for tag scheme");
  const std::int64_t tag0 = next_op_tag();
  std::vector<std::vector<double>> recv(p);
  recv[rank_] = send[rank_];  // own block stays local; no cost
  for (int r = 1; r < p; ++r) {
    const int dst = (rank_ + r) % p;
    const int src = (rank_ - r + p) % p;
    send_tagged(dst, tag0 + r, send[dst]);
    recv[src] = recv_tagged(src, tag0 + r);
  }
  return recv;
}

std::vector<double> Comm::reduce_scatter(
    std::span<const double> data, const std::vector<std::size_t>& sizes) {
  OpScope scope(*this, OpKind::kReduceScatter);
  const int p = size();
  PARSYRK_REQUIRE(static_cast<int>(sizes.size()) == p,
                  "reduce_scatter needs one block size per rank");
  std::vector<std::size_t> offset(p + 1, 0);
  for (int i = 0; i < p; ++i) offset[i + 1] = offset[i] + sizes[i];
  PARSYRK_REQUIRE(offset[p] == data.size(), "reduce_scatter buffer is ",
                  data.size(), " words but block sizes sum to ", offset[p]);
  PARSYRK_CHECK_MSG(p < kTagStride, "communicator too large for tag scheme");
  const std::int64_t tag0 = next_op_tag();
  std::vector<double> acc(data.begin() + offset[rank_],
                          data.begin() + offset[rank_ + 1]);
  for (int r = 1; r < p; ++r) {
    const int dst = (rank_ + r) % p;
    const int src = (rank_ - r + p) % p;
    send_tagged(dst, tag0 + r, data.subspan(offset[dst], sizes[dst]));
    auto in = recv_tagged(src, tag0 + r);
    PARSYRK_CHECK(in.size() == acc.size());
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += in[i];
  }
  return acc;
}

std::vector<double> Comm::reduce_scatter_equal(std::span<const double> data) {
  const int p = size();
  PARSYRK_REQUIRE(data.size() % p == 0, "buffer of ", data.size(),
                  " words is not divisible by ", p, " ranks");
  return reduce_scatter(data,
                        std::vector<std::size_t>(p, data.size() / p));
}

std::vector<double> Comm::all_reduce(std::span<const double> data) {
  OpScope scope(*this, OpKind::kAllReduce);
  auto mine = reduce_scatter_equal(data);
  return all_gather(mine);
}

std::vector<double> Comm::all_gather(std::span<const double> mine) {
  OpScope scope(*this, OpKind::kAllGather);
  const int p = size();
  PARSYRK_CHECK_MSG(p < kTagStride, "communicator too large for tag scheme");
  const std::int64_t tag0 = next_op_tag();
  std::vector<double> out(mine.size() * p);
  std::copy(mine.begin(), mine.end(), out.begin() + rank_ * mine.size());
  for (int r = 1; r < p; ++r) {
    const int dst = (rank_ + r) % p;
    const int src = (rank_ - r + p) % p;
    send_tagged(dst, tag0 + r, mine);
    auto in = recv_tagged(src, tag0 + r);
    PARSYRK_CHECK(in.size() == mine.size());
    std::copy(in.begin(), in.end(), out.begin() + src * mine.size());
  }
  return out;
}

std::vector<std::vector<double>> Comm::all_gather_v(
    std::span<const double> mine) {
  OpScope scope(*this, OpKind::kAllGatherV);
  const int p = size();
  PARSYRK_CHECK_MSG(p < kTagStride, "communicator too large for tag scheme");
  const std::int64_t tag0 = next_op_tag();
  std::vector<std::vector<double>> out(p);
  out[rank_].assign(mine.begin(), mine.end());
  for (int r = 1; r < p; ++r) {
    const int dst = (rank_ + r) % p;
    const int src = (rank_ - r + p) % p;
    send_tagged(dst, tag0 + r, mine);
    out[src] = recv_tagged(src, tag0 + r);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Latency-efficient variants (§6)
// ---------------------------------------------------------------------------

std::vector<double> Comm::all_gather_bruck(std::span<const double> mine) {
  OpScope scope(*this, OpKind::kAllGatherBruck);
  const int p = size();
  const std::size_t n = mine.size();
  const std::int64_t tag0 = next_op_tag();
  // rel[t] holds the contribution of rank (rank_ + t) mod p.
  std::vector<std::vector<double>> rel;
  rel.reserve(p);
  rel.emplace_back(mine.begin(), mine.end());
  int round = 0;
  for (int d = 1; d < p; d <<= 1) {
    const int count = std::min(d, p - d);
    const int dst = (rank_ - d + p) % p;
    const int src = (rank_ + d) % p;
    std::vector<double> flat;
    flat.reserve(count * n);
    for (int t = 0; t < count; ++t) {
      flat.insert(flat.end(), rel[t].begin(), rel[t].end());
    }
    send_tagged(dst, tag0 + round, flat);
    auto in = recv_tagged(src, tag0 + round);
    PARSYRK_CHECK(in.size() == static_cast<std::size_t>(count) * n);
    for (int t = 0; t < count; ++t) {
      rel.emplace_back(in.begin() + t * n, in.begin() + (t + 1) * n);
    }
    ++round;
  }
  std::vector<double> out(n * p);
  for (int t = 0; t < p; ++t) {
    const int owner = (rank_ + t) % p;
    std::copy(rel[t].begin(), rel[t].end(), out.begin() + owner * n);
  }
  return out;
}

std::vector<double> Comm::reduce_scatter_bruck(std::span<const double> data) {
  OpScope scope(*this, OpKind::kReduceScatterBruck);
  const int p = size();
  PARSYRK_REQUIRE(data.size() % p == 0, "buffer of ", data.size(),
                  " words is not divisible by ", p, " ranks");
  const std::size_t n = data.size() / p;
  const std::int64_t tag0 = next_op_tag();
  // rel[t] = my partial for rank (rank_ + t) mod p. The schedule is the
  // exact reverse of all_gather_bruck with summation folded in: what the
  // gather copied outward, the reduce accumulates inward, so bandwidth
  // (1−1/P)·w and latency ceil(log2 P) are both optimal (§6).
  std::vector<std::vector<double>> rel(p);
  for (int t = 0; t < p; ++t) {
    const int owner = (rank_ + t) % p;
    rel[t].assign(data.begin() + owner * n, data.begin() + (owner + 1) * n);
  }
  // Forward step distances, replayed in reverse.
  std::vector<int> steps;
  for (int d = 1; d < p; d <<= 1) steps.push_back(d);
  int round = 0;
  for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
    const int d = *it;
    const int count = std::min(d, p - d);
    const int dst = (rank_ + d) % p;
    const int src = (rank_ - d + p) % p;
    std::vector<double> flat;
    flat.reserve(count * n);
    for (int t = d; t < d + count; ++t) {
      flat.insert(flat.end(), rel[t].begin(), rel[t].end());
    }
    send_tagged(dst, tag0 + round, flat);
    auto in = recv_tagged(src, tag0 + round);
    PARSYRK_CHECK(in.size() == static_cast<std::size_t>(count) * n);
    for (int t = 0; t < count; ++t) {
      for (std::size_t w = 0; w < n; ++w) {
        rel[t][w] += in[t * n + w];
      }
    }
    ++round;
  }
  return rel[0];
}

std::vector<double> Comm::all_to_all_butterfly(std::span<const double> send,
                                               std::size_t block) {
  OpScope scope(*this, OpKind::kAllToAllButterfly);
  const int p = size();
  PARSYRK_REQUIRE(send.size() == block * p,
                  "butterfly all-to-all needs p equal blocks");
  const std::int64_t tag0 = next_op_tag();
  // Phase 1: local rotation so slot j holds the block destined to rank_+j.
  std::vector<std::vector<double>> buf(p);
  for (int j = 0; j < p; ++j) {
    const int dst = (rank_ + j) % p;
    buf[j].assign(send.begin() + dst * block, send.begin() + (dst + 1) * block);
  }
  // Phase 2: bit-wise exchanges; block j travels a total displacement of j.
  int round = 0;
  for (int bit = 1; bit < p; bit <<= 1) {
    const int dst = (rank_ + bit) % p;
    const int src = (rank_ - bit + p) % p;
    std::vector<int> moved;
    std::vector<double> flat;
    for (int j = 0; j < p; ++j) {
      if ((j & bit) != 0) {
        moved.push_back(j);
        flat.insert(flat.end(), buf[j].begin(), buf[j].end());
      }
    }
    send_tagged(dst, tag0 + round, flat);
    auto in = recv_tagged(src, tag0 + round);
    PARSYRK_CHECK(in.size() == moved.size() * block);
    for (std::size_t m = 0; m < moved.size(); ++m) {
      buf[moved[m]].assign(in.begin() + m * block,
                           in.begin() + (m + 1) * block);
    }
    ++round;
  }
  // Phase 3: slot j now holds the block from rank (rank_ - j); unrotate.
  std::vector<double> out(block * p);
  for (int j = 0; j < p; ++j) {
    const int src = (rank_ - j + p) % p;
    std::copy(buf[j].begin(), buf[j].end(), out.begin() + src * block);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rooted collectives
// ---------------------------------------------------------------------------

void Comm::bcast(std::span<double> data, int root) {
  OpScope scope(*this, OpKind::kBcast);
  const int p = size();
  PARSYRK_REQUIRE(root >= 0 && root < p, "bad bcast root ", root);
  const std::int64_t tag0 = next_op_tag();
  const int vrank = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if ((vrank & mask) != 0) {
      const int src = ((vrank - mask) + root) % p;
      auto in = recv_tagged(src, tag0);
      PARSYRK_CHECK(in.size() == data.size());
      std::copy(in.begin(), in.end(), data.begin());
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < p) {
      const int dst = ((vrank + mask) + root) % p;
      send_tagged(dst, tag0, data);
    }
    mask >>= 1;
  }
}

std::vector<double> Comm::reduce(std::span<const double> data, int root) {
  OpScope scope(*this, OpKind::kReduce);
  const int p = size();
  PARSYRK_REQUIRE(root >= 0 && root < p, "bad reduce root ", root);
  const std::int64_t tag0 = next_op_tag();
  const int vrank = (rank_ - root + p) % p;
  std::vector<double> acc(data.begin(), data.end());
  int mask = 1;
  while (mask < p) {
    if ((vrank & mask) != 0) {
      const int dst = ((vrank - mask) + root) % p;
      send_tagged(dst, tag0, acc);
      return {};
    }
    if (vrank + mask < p) {
      const int src = ((vrank + mask) + root) % p;
      auto in = recv_tagged(src, tag0);
      PARSYRK_CHECK(in.size() == acc.size());
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += in[i];
    }
    mask <<= 1;
  }
  return acc;
}

std::vector<std::vector<double>> Comm::gather(std::span<const double> mine,
                                              int root) {
  OpScope scope(*this, OpKind::kGather);
  const int p = size();
  PARSYRK_REQUIRE(root >= 0 && root < p, "bad gather root ", root);
  const std::int64_t tag0 = next_op_tag();
  if (rank_ != root) {
    send_tagged(root, tag0, mine);
    return {};
  }
  std::vector<std::vector<double>> out(p);
  out[root].assign(mine.begin(), mine.end());
  for (int r = 0; r < p; ++r) {
    if (r == root) continue;
    out[r] = recv_tagged(r, tag0);
  }
  return out;
}

std::vector<double> Comm::scatter(
    const std::vector<std::vector<double>>& parts, int root) {
  OpScope scope(*this, OpKind::kScatter);
  const int p = size();
  PARSYRK_REQUIRE(root >= 0 && root < p, "bad scatter root ", root);
  const std::int64_t tag0 = next_op_tag();
  if (rank_ == root) {
    PARSYRK_REQUIRE(static_cast<int>(parts.size()) == p,
                    "scatter needs one part per rank");
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      send_tagged(r, tag0, parts[r]);
    }
    return parts[root];
  }
  return recv_tagged(root, tag0);
}

// ---------------------------------------------------------------------------
// split
// ---------------------------------------------------------------------------

Comm Comm::split(int color, int key) {
  // Exchange (color, key) so each rank can compute every group's membership.
  const int p = size();
  const std::vector<double> mine = {static_cast<double>(color),
                                    static_cast<double>(key)};
  mute_ledger_ = true;  // setup exchange: not algorithm communication
  auto all = all_gather(mine);
  mute_ledger_ = false;

  struct Entry {
    int color, key, rank;
  };
  std::vector<Entry> members;
  std::string sig = std::to_string(group_->id) + "@" +
                    std::to_string(op_seq_) + ":";
  for (int r = 0; r < p; ++r) {
    const int rc = static_cast<int>(all[2 * r]);
    const int rk = static_cast<int>(all[2 * r + 1]);
    sig += std::to_string(rc) + "," + std::to_string(rk) + ";";
    if (rc == color) members.push_back({rc, rk, r});
  }
  sig += "|" + std::to_string(color);
  std::stable_sort(members.begin(), members.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.key != b.key ? a.key < b.key : a.rank < b.rank;
                   });

  std::vector<int> world_members;
  world_members.reserve(members.size());
  int my_new_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    world_members.push_back(group_->world_ranks[members[i].rank]);
    if (members[i].rank == rank_) my_new_rank = static_cast<int>(i);
  }
  PARSYRK_CHECK(my_new_rank >= 0);
  auto g = world_->intern_group(sig, world_members);
  // Obtaining a group handle is collective, so every member reads the same
  // generation; the bump gives the next handle to this group (a repeated
  // identical split) a disjoint collective-tag block. Generations reset at
  // each job start.
  const std::uint32_t gen = g->handle_gen[my_new_rank]++;
  return Comm(world_, std::move(g), my_new_rank, gen);
}

}  // namespace parsyrk::comm
