#include "simmpi/comm.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>

#include "support/check.hpp"
#include "verify/verifier.hpp"

namespace parsyrk::comm {
namespace {

/// Layout digest for collective matching: order-sensitive FNV-1a over the
/// per-rank block sizes, so two ranks agreeing on the total but not the
/// blocking still diverge.
std::uint64_t sizes_signature(const std::vector<std::size_t>& sizes) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t s : sizes) {
    h ^= static_cast<std::uint64_t>(s);
    h *= 1099511628211ull;
  }
  return h;
}

/// Blocking mailbox pop, watchdogged under verify mode: waits in verifier
/// ticks, reporting to the deadlock analysis each time the tick expires with
/// the message still absent. on_blocked_tick throws VerifyError once a
/// deadlock / stranded wait is confirmed; otherwise we just keep waiting.
std::vector<double> watched_pop(World* world, Mailbox& mb, const Envelope& env,
                                int self_world, int src_world) {
  verify::Verifier* v = world->verifier();
  if (v == nullptr) return mb.pop(env);
  verify::WaitFor wf;
  wf.kind = verify::WaitFor::Kind::kMessage;
  wf.group = env.comm_id;
  wf.src_world = src_world;
  wf.src_group_rank = env.src;
  wf.tag = env.tag;
  bool registered = false;
  try {
    for (;;) {
      auto got = mb.pop_for(env, v->options().tick);
      if (got) {
        if (registered) v->on_unblocked(self_world);
        return std::move(*got);
      }
      registered = true;
      v->on_blocked_tick(self_world, wf, [&] { return !mb.contains(env); });
    }
  } catch (...) {
    // RankAborted from the poisoned mailbox, or the verifier's own verdict:
    // either way this rank is no longer parked.
    if (registered) v->on_unblocked(self_world);
    throw;
  }
}

/// Appends kLedgerImbalance findings when a quiesced job's double-entry
/// accounting does not balance: per phase, words/messages sent must equal
/// words/messages received, both overall and on the inter-node tier.
void append_ledger_balance(const CostLedger& ledger,
                           const CostLedger::Snapshot& snap, int rank_begin,
                           int rank_end, bool check_inter, std::uint64_t job,
                           verify::VerifyReport& report) {
  for (const std::string& phase : ledger.phases()) {
    const CostSummary s =
        ledger.summary_since(snap, phase, rank_begin, rank_end);
    const bool balanced = s.total.words_sent == s.total.words_recv &&
                          s.total.msgs_sent == s.total.msgs_recv;
    CostSummary inter;
    bool inter_balanced = true;
    if (check_inter) {
      inter = ledger.inter_summary_since(snap, phase);
      inter_balanced = inter.total.words_sent == inter.total.words_recv &&
                       inter.total.msgs_sent == inter.total.msgs_recv;
    }
    if (balanced && inter_balanced) continue;
    verify::Finding f;
    f.kind = verify::FindingKind::kLedgerImbalance;
    f.job = job;
    std::string detail = "phase \"" + phase + "\" does not balance:";
    if (!balanced) {
      detail += " sent " + std::to_string(s.total.words_sent) + " word(s)/" +
                std::to_string(s.total.msgs_sent) + " msg(s), received " +
                std::to_string(s.total.words_recv) + "/" +
                std::to_string(s.total.msgs_recv);
    }
    if (!inter_balanced) {
      detail += " [inter-node tier: sent " +
                std::to_string(inter.total.words_sent) + " word(s)/" +
                std::to_string(inter.total.msgs_sent) + " msg(s), received " +
                std::to_string(inter.total.words_recv) + "/" +
                std::to_string(inter.total.msgs_recv) + "]";
    }
    f.detail = std::move(detail);
    report.findings.push_back(std::move(f));
  }
}

/// RAII window for the verifier's leader-routing check: between
/// construction and destruction, every unmuted inter-node message this rank
/// sends must have leader endpoints.
class HierScope {
 public:
  HierScope(World* world, int world_rank)
      : v_(world->verifier()), rank_(world_rank) {
    if (v_) v_->on_hier_begin(rank_);
  }
  ~HierScope() {
    if (v_) v_->on_hier_end(rank_);
  }
  HierScope(const HierScope&) = delete;
  HierScope& operator=(const HierScope&) = delete;

 private:
  verify::Verifier* v_;
  int rank_;
};

}  // namespace

// ---------------------------------------------------------------------------
// World
// ---------------------------------------------------------------------------

World::World(int num_ranks) : World(num_ranks, num_ranks, WorkerPool::shared()) {}

World::World(int num_ranks, WorkerPool& pool)
    : World(num_ranks, num_ranks, pool) {}

World::World(int num_ranks, int physical)
    : World(num_ranks, physical, WorkerPool::shared()) {}

World::World(int num_ranks, int physical, WorkerPool& pool)
    : physical_(physical), ledger_(std::max(num_ranks, 1)) {
  PARSYRK_REQUIRE(num_ranks >= 1, "world size must be positive, got ",
                  num_ranks);
  PARSYRK_REQUIRE(physical >= 1 && physical <= num_ranks,
                  "folded world needs 1 <= physical <= num_ranks; got ",
                  physical, " physical for ", num_ranks, " logical ranks");
  ledger_.set_fold(physical);
  // One OS thread per *logical* rank: co-folded ranks run concurrently (the
  // blocking collectives would deadlock a sequential interleaving); the
  // physical machine is modelled in the accounting, not the thread count.
  lease_ = pool.acquire(num_ranks);
  mailboxes_.reserve(num_ranks);
  for (int i = 0; i < num_ranks; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  world_group_ = std::make_shared<detail::Group>();
  world_group_->id = 0;
  world_group_->world_ranks.resize(num_ranks);
  for (int i = 0; i < num_ranks; ++i) world_group_->world_ranks[i] = i;
  world_group_->handle_gen.assign(num_ranks, 0);
  if (const char* env = std::getenv("PARSYRK_VERIFY");
      env != nullptr && env[0] != '\0' && env[0] != '0') {
    enable_verify();
  }
}

World::~World() = default;

void World::enable_verify() {
  if (verifier_) return;
  verifier_ = std::make_unique<verify::Verifier>(size());
  verifier_->set_topology(ranks_per_node_);
  verifier_->register_group(world_group_->id, world_group_->world_ranks);
  {
    std::lock_guard lock(groups_mu_);
    for (auto& [sig, g] : group_registry_) {
      verifier_->register_group(g->id, g->world_ranks);
    }
  }
  // Deadlock edges are re-probed against the live mailboxes before any
  // accusation: an edge whose message is deliverable is slowness, not
  // deadlock. (Lock order: verifier mutex, then mailbox mutex.)
  verifier_->set_message_probe([this](int dst_world, std::uint64_t group,
                                      int src_group_rank, std::int64_t tag) {
    return mailboxes_[dst_world]->contains(
        Envelope{group, src_group_rank, tag});
  });
}

void World::set_topology(int ranks_per_node) {
  PARSYRK_REQUIRE(ranks_per_node >= 1,
                  "topology needs ranks_per_node >= 1, got ", ranks_per_node);
  if (ranks_per_node > 1) {
    PARSYRK_REQUIRE(!folded(),
                    "two-level topology requires an unfolded world (folded "
                    "worlds already model co-location)");
    PARSYRK_REQUIRE(size() % ranks_per_node == 0, "ranks_per_node ",
                    ranks_per_node, " must divide the world size ", size());
  }
  ranks_per_node_ = ranks_per_node;
  ledger_.set_topology(ranks_per_node);
  if (verifier_) verifier_->set_topology(ranks_per_node);
  if (trace_sink_) {
    trace_sink_->set_ranks_per_node(ranks_per_node > 1 ? ranks_per_node : 0);
  }
}

void World::enable_tracing(std::size_t capacity_per_rank) {
  if (trace_sink_) return;
  trace_sink_ = std::make_unique<TraceSink>(size(), capacity_per_rank,
                                            folded() ? physical_ : 0);
  if (ranks_per_node_ > 1) {
    trace_sink_->set_ranks_per_node(static_cast<std::uint32_t>(ranks_per_node_));
  }
}

void World::disable_tracing() { trace_sink_.reset(); }

void World::begin_job() {
  if (trace_sink_) trace_sink_->begin_job(jobs_run_ + 1);
  if (verifier_) verifier_->begin_scope(0, size(), jobs_run_ + 1);
  std::fill(world_group_->handle_gen.begin(), world_group_->handle_gen.end(),
            0u);
  std::lock_guard lock(groups_mu_);
  for (auto& [sig, g] : group_registry_) {
    std::fill(g->handle_gen.begin(), g->handle_gen.end(), 0u);
  }
}

void World::run(const std::function<void(Comm&)>& body) {
  const int p = size();
  begin_job();
  const std::uint64_t job_id = ++jobs_run_;
  CostLedger::Snapshot verify_snap;
  if (verifier_) verify_snap = ledger_.snapshot();
  std::vector<std::exception_ptr> errors(p);
  // One byte per rank (vector<bool> would pack bits into shared words and
  // race across threads).
  std::vector<unsigned char> aborted(p, 0);
  // Hand the rank bodies to the leased, already-parked workers. This is the
  // hot path of the executor: no thread is created or joined here, only a
  // condition-variable handoff per rank and one completion latch.
  for (int r = 0; r < p; ++r) {
    lease_.dispatch(r, [this, &body, &errors, &aborted, r, job_id] {
      Comm comm(this, world_group_, r, world_group_->handle_gen[r]++);
      if (verifier_) verifier_->on_rank_begin(r, job_id);
      bool clean = true;
      try {
        body(comm);
      } catch (const RankAborted&) {
        aborted[r] = 1;  // secondary victim; the root cause is elsewhere
        clean = false;
      } catch (...) {
        errors[r] = std::current_exception();
        poison_all();
        clean = false;
      }
      if (verifier_) verifier_->on_rank_end(r, clean);
    });
  }
  lease_.wait();
  for (int r = 0; r < p; ++r) {
    if (errors[r]) {
      reset_after_failure();
      std::rethrow_exception(errors[r]);
    }
  }
  // End-of-job verification: the scope's deferred findings (request leaks,
  // sequence-length divergence), undrained mailbox messages, and ledger
  // balance. Runs before the abort checks below so a protocol leak is a
  // recoverable diagnosis (the world is reset), not a process abort.
  if (verifier_) {
    verify::VerifyReport report = verifier_->end_scope(0, p);
    for (int r = 0; r < p; ++r) {
      for (const auto& [env, words] : mailboxes_[r]->pending()) {
        report.findings.push_back(
            verifier_->message_leak(r, env.comm_id, env.src, env.tag, words));
      }
    }
    append_ledger_balance(ledger_, verify_snap, 0, p,
                          /*check_inter=*/ranks_per_node_ > 1, job_id, report);
    if (!report.empty()) {
      reset_after_failure();
      throw verify::VerifyError(std::move(report));
    }
  }
  // A clean SPMD body consumes every message it causes to be sent.
  for (int r = 0; r < p; ++r) {
    PARSYRK_CHECK_MSG(mailboxes_[r]->empty(),
                      "rank ", r, " finished with undrained messages");
  }
}

bool RangeJob::done() const {
  std::lock_guard lock(state_->mu);
  return state_->pending == 0;
}

void RangeJob::wait() {
  detail::RangeJobState& st = *state_;
  {
    std::unique_lock lock(st.mu);
    st.cv.wait(lock, [&] { return st.pending == 0; });
  }
  // A clean streamed job consumes every message it causes to be sent —
  // the per-range analogue of World::run's post-job check. Skipped on
  // failure: poisoned mailboxes legitimately hold undelivered messages
  // until recover_after_failure().
  if (!st.error && !st.any_aborted) {
    // End-of-job verification for the range. wait() is documented never to
    // throw the job's error, and the service's scheduler thread calls it
    // mid-stream — so findings are recorded as the job's error() (and the
    // range's mailboxes drained to keep the world usable), not thrown.
    if (verify::Verifier* v = st.world->verifier()) {
      verify::VerifyReport report = v->end_scope(st.rank_begin, st.rank_end);
      for (int r = st.rank_begin; r < st.rank_end; ++r) {
        for (const auto& [env, words] : st.world->mailboxes_[r]->pending()) {
          report.findings.push_back(
              v->message_leak(r, env.comm_id, env.src, env.tag, words));
        }
      }
      append_ledger_balance(st.world->ledger_, st.verify_snap, st.rank_begin,
                            st.rank_end, /*check_inter=*/false, st.job_id,
                            report);
      if (!report.empty()) {
        for (int r = st.rank_begin; r < st.rank_end; ++r) {
          st.world->mailboxes_[r]->reset();
        }
        std::lock_guard lock(st.mu);
        if (!st.error) {
          st.error = std::make_exception_ptr(
              verify::VerifyError(std::move(report)));
          st.error_rank = 0;
        }
        return;
      }
    }
    for (int r = st.rank_begin; r < st.rank_end; ++r) {
      PARSYRK_CHECK_MSG(st.world->mailboxes_[r]->empty(),
                        "rank ", r, " finished with undrained messages");
    }
  }
}

RangeJob World::launch_ranks(int rank_begin, int rank_end,
                                    std::function<void(Comm&)> body,
                                    std::function<void()> on_complete) {
  PARSYRK_REQUIRE(!folded(),
                  "launch_ranks requires an unfolded world (folded "
                  "accounting spans all ranks)");
  PARSYRK_REQUIRE(ranks_per_node_ == 1,
                  "launch_ranks requires the flat topology (a node-aware "
                  "range would split nodes across jobs)");
  PARSYRK_REQUIRE(rank_begin >= 0 && rank_begin < rank_end &&
                      rank_end <= size(),
                  "launch_ranks range [", rank_begin, ", ", rank_end,
                  ") invalid for a world of ", size(), " ranks");
  const std::uint64_t job_id = ++jobs_run_;
  if (trace_sink_) trace_sink_->begin_ranks(rank_begin, rank_end);

  // One job epoch for this range: reset the handle generations of every
  // group whose members all lie inside it (their ranks are idle by the
  // caller's placement discipline), so the job draws collective tags
  // exactly as the same job would on a fresh world of the range's size.
  const bool whole_world = rank_begin == 0 && rank_end == size();
  {
    std::lock_guard lock(groups_mu_);
    if (whole_world) {
      std::fill(world_group_->handle_gen.begin(),
                world_group_->handle_gen.end(), 0u);
    }
    for (auto& [sig, g] : group_registry_) {
      const bool inside = std::all_of(
          g->world_ranks.begin(), g->world_ranks.end(),
          [&](int r) { return r >= rank_begin && r < rank_end; });
      if (inside) std::fill(g->handle_gen.begin(), g->handle_gen.end(), 0u);
    }
  }
  std::shared_ptr<detail::Group> group;
  if (whole_world) {
    group = world_group_;
  } else {
    std::vector<int> members(rank_end - rank_begin);
    for (int r = rank_begin; r < rank_end; ++r) {
      members[r - rank_begin] = r;
    }
    group = intern_group("range:" + std::to_string(rank_begin) + ":" +
                             std::to_string(rank_end),
                         members);
  }

  auto st = std::make_shared<detail::RangeJobState>();
  st->world = this;
  st->rank_begin = rank_begin;
  st->rank_end = rank_end;
  st->job_id = job_id;
  st->body = std::move(body);
  st->on_complete = std::move(on_complete);
  st->pending = rank_end - rank_begin;
  if (verifier_) {
    verifier_->begin_scope(rank_begin, rank_end, job_id);
    st->verify_snap = ledger_.snapshot();
  }
  for (int r = rank_begin; r < rank_end; ++r) {
    const int gr = r - rank_begin;
    const std::uint32_t gen = group->handle_gen[gr]++;
    lease_.dispatch(r, [this, st, group, gr, gen, r] {
      Comm comm(this, group, gr, gen);
      if (verifier_) verifier_->on_rank_begin(r, st->job_id);
      bool rank_aborted = false;
      std::exception_ptr err;
      try {
        st->body(comm);
      } catch (const RankAborted&) {
        rank_aborted = true;  // secondary victim; the root cause is elsewhere
      } catch (...) {
        err = std::current_exception();
        poison_all();
      }
      if (verifier_) verifier_->on_rank_end(r, !rank_aborted && !err);
      bool last = false;
      {
        std::lock_guard lock(st->mu);
        if (rank_aborted) st->any_aborted = true;
        // Lowest failing rank wins, mirroring World::run's rethrow order.
        if (err && (st->error_rank < 0 || gr < st->error_rank)) {
          st->error = err;
          st->error_rank = gr;
        }
        last = --st->pending == 0;
      }
      st->cv.notify_all();
      if (last && st->on_complete) st->on_complete();
    });
  }
  return RangeJob(std::move(st));
}

void World::poison_all() {
  for (auto& mb : mailboxes_) mb->poison();
  auto poison_group = [](detail::Group& g) {
    {
      std::lock_guard lock(g.bar_mu);
      g.poisoned = true;
    }
    g.bar_cv.notify_all();
  };
  poison_group(*world_group_);
  std::lock_guard lock(groups_mu_);
  for (auto& [sig, g] : group_registry_) poison_group(*g);
}

void World::reset_after_failure() {
  // The failed job's verification bookkeeping (wait-for graph, collective
  // records, deferred findings) is meaningless once the mailboxes drop
  // their messages; start the next job from a clean slate.
  if (verifier_) verifier_->clear_all();
  for (auto& mb : mailboxes_) mb->reset();
  auto reset_group = [](detail::Group& g) {
    std::lock_guard lock(g.bar_mu);
    g.poisoned = false;
    g.bar_count = 0;
  };
  reset_group(*world_group_);
  std::lock_guard lock(groups_mu_);
  for (auto& [sig, g] : group_registry_) reset_group(*g);
}

std::shared_ptr<detail::Group> World::intern_group(
    const std::string& signature, const std::vector<int>& members) {
  std::lock_guard lock(groups_mu_);
  auto it = group_registry_.find(signature);
  if (it != group_registry_.end()) {
    PARSYRK_CHECK_MSG(it->second->world_ranks == members,
                      "group signature collision: ", signature);
    return it->second;
  }
  auto g = std::make_shared<detail::Group>();
  g->id = next_group_id_++;
  g->world_ranks = members;
  g->handle_gen.assign(members.size(), 0);
  group_registry_.emplace(signature, g);
  if (verifier_) verifier_->register_group(g->id, members);
  return g;
}

// ---------------------------------------------------------------------------
// Comm: point-to-point and barrier
// ---------------------------------------------------------------------------

void Comm::set_phase(const std::string& phase) {
  world_->ledger().set_phase(world_rank(), phase);
  if (TraceSink* sink = world_->trace_sink()) {
    sink->set_phase(world_rank(), phase);
  }
}

void Comm::send_tagged(int dst, std::int64_t tag,
                       std::span<const double> data) {
  PARSYRK_CHECK_MSG(dst >= 0 && dst < size() && dst != rank_,
                    "bad destination ", dst, " from rank ", rank_);
  // Co-located endpoints (same physical rank under folding) move data within
  // one processor's memory: delivered, but not communication.
  if (!mute_ledger_ &&
      !world_->colocated(world_rank(), group_->world_ranks[dst])) {
    world_->ledger().record_send(
        world_rank(), data.size(),
        world_->tier_between(world_rank(), group_->world_ranks[dst]));
    if (TraceSink* sink = world_->trace_sink()) {
      sink->record(world_rank(), group_->world_ranks[dst],
                   op_kind_.value_or(OpKind::kPointToPoint), TraceDir::kSend,
                   data.size());
    }
  }
  if (verify::Verifier* v = world_->verifier()) {
    v->on_message(world_rank(), group_->world_ranks[dst], data.size(),
                  mute_ledger_);
  }
  Message msg;
  msg.env = Envelope{group_->id, rank_, tag};
  msg.payload.assign(data.begin(), data.end());
  world_->mailbox(group_->world_ranks[dst]).push(std::move(msg));
}

std::vector<double> Comm::recv_tagged(int src, std::int64_t tag) {
  PARSYRK_CHECK_MSG(src >= 0 && src < size() && src != rank_,
                    "bad source ", src, " at rank ", rank_);
  auto payload =
      watched_pop(world_, world_->mailbox(world_rank()),
                  Envelope{group_->id, src, tag}, world_rank(),
                  group_->world_ranks[src]);
  if (!mute_ledger_ &&
      !world_->colocated(world_rank(), group_->world_ranks[src])) {
    world_->ledger().record_recv(
        world_rank(), payload.size(),
        world_->tier_between(world_rank(), group_->world_ranks[src]));
    if (TraceSink* sink = world_->trace_sink()) {
      sink->record(world_rank(), group_->world_ranks[src],
                   op_kind_.value_or(OpKind::kPointToPoint), TraceDir::kRecv,
                   payload.size());
    }
  }
  return payload;
}

void Comm::send(int dst, int tag, std::span<const double> data) {
  PARSYRK_REQUIRE(tag >= 0, "user tags must be non-negative, got ", tag);
  send_tagged(dst, tag, data);
}

std::vector<double> Comm::recv(int src, int tag) {
  PARSYRK_REQUIRE(tag >= 0, "user tags must be non-negative, got ", tag);
  return recv_tagged(src, tag);
}

void Comm::barrier() {
  auto& g = *group_;
  verify::Verifier* v = world_->verifier();
  std::unique_lock lock(g.bar_mu);
  if (g.poisoned) throw RankAborted();
  const std::uint64_t gen = g.bar_gen;
  if (v) v->on_barrier_arrive(g.id, gen, world_rank());
  if (++g.bar_count == size()) {
    g.bar_count = 0;
    ++g.bar_gen;
    if (v) v->on_barrier_release(g.id, gen);
    g.bar_cv.notify_all();
  } else if (v == nullptr) {
    g.bar_cv.wait(lock, [&] { return g.bar_gen != gen || g.poisoned; });
    if (g.bar_gen == gen && g.poisoned) throw RankAborted();
  } else {
    // Watchdogged park: wake each verifier tick to consult the deadlock
    // analysis (a member finishing the job without arriving here is a
    // stranded wait; a cross-group cycle through this barrier is a
    // deadlock). on_blocked_tick is called holding bar_mu — the verifier
    // never touches barrier state, so the lock order is one-way.
    verify::WaitFor wf;
    wf.kind = verify::WaitFor::Kind::kBarrier;
    wf.group = g.id;
    wf.barrier_gen = gen;
    bool registered = false;
    try {
      while (!g.bar_cv.wait_for(lock, v->options().tick, [&] {
        return g.bar_gen != gen || g.poisoned;
      })) {
        registered = true;
        v->on_blocked_tick(world_rank(), wf,
                           [&] { return g.bar_gen == gen && !g.poisoned; });
      }
    } catch (...) {
      if (registered) v->on_unblocked(world_rank());
      throw;
    }
    if (registered) v->on_unblocked(world_rank());
    if (g.bar_gen == gen && g.poisoned) throw RankAborted();
  }
}

// ---------------------------------------------------------------------------
// Nonblocking engine
// ---------------------------------------------------------------------------
//
// Every collective is described as a list of *rounds*: sends to post, then
// receives to match, then a completion step (accumulate / place / reshape).
// The blocking collectives build the same round lists and immediately
// wait(), so blocking and nonblocking execution share one schedule — same
// tags, same per-rank event order, same ledger volume. Payloads are either
// captured eagerly at construction (pairwise schedules read only the input
// buffer) or built lazily at post time (log-round schedules whose round-k
// payload depends on rounds < k).

namespace detail {

struct OpState {
  struct Send {
    int dst = 0;  // group rank
    std::int64_t tag = 0;
    std::vector<double> payload;                 // used when !build
    std::function<std::vector<double>()> build;  // lazy payload
  };
  struct Recv {
    int src = 0;  // group rank
    std::int64_t tag = 0;
    bool done = false;
    std::vector<double> payload;
  };
  struct Round {
    std::vector<Send> sends;
    std::vector<Recv> recvs;
    std::function<void(Round&)> on_complete;
  };

  // Posting context, captured when the operation is created. Messages the
  // operation moves later are attributed to this context — not to whatever
  // phase the rank has advanced to by completion time.
  World* world = nullptr;
  std::shared_ptr<Group> group;
  int rank = 0;  // group rank of the posting side
  OpKind kind = OpKind::kPointToPoint;
  bool mute = false;
  std::string phase;              // ledger phase at post time
  std::uint32_t trace_phase = 0;  // trace phase id at post time

  std::vector<Round> rounds;
  std::size_t current = 0;
  bool sends_posted = false;  // of rounds[current]

  // Results, populated by completion steps.
  std::vector<double> flat;                // RS / AG / irecv payload
  std::vector<std::vector<double>> parts;  // per-rank results + scratch

  int world_rank() const { return group->world_ranks[rank]; }
  bool complete() const { return current >= rounds.size(); }

  /// Leak detection: a handle abandoned before completion leaves receives
  /// unmatched (its peers' sends rot in the mailbox) — report it the moment
  /// the state dies. Unwinding ranks (a poisoned or failing job) drop their
  /// handles legitimately, so those stay silent; and the finding is
  /// deferred (not thrown) because destructors must not throw.
  ~OpState() {
    if (complete() || world == nullptr) return;
    verify::Verifier* v = world->verifier();
    if (v == nullptr || std::uncaught_exceptions() > 0) return;
    v->on_request_abandoned(world_rank(), group->id, op_kind_name(kind),
                            rounds.size() - current);
  }

  void post_send(Send& s) {
    std::vector<double> payload = s.build ? s.build() : std::move(s.payload);
    const int dst_world = group->world_ranks[s.dst];
    if (verify::Verifier* v = world->verifier()) {
      v->on_message(world_rank(), dst_world, payload.size(), mute);
    }
    if (!mute && !world->colocated(world_rank(), dst_world)) {
      world->ledger().record_send(world_rank(), payload.size(), phase,
                                  world->tier_between(world_rank(), dst_world));
      if (TraceSink* sink = world->trace_sink()) {
        sink->record(world_rank(), dst_world, kind, TraceDir::kSend,
                     payload.size(), trace_phase);
      }
    }
    Message msg;
    msg.env = Envelope{group->id, rank, s.tag};
    msg.payload = std::move(payload);
    world->mailbox(dst_world).push(std::move(msg));
  }

  void record_recv(int src, std::size_t words) {
    const int src_world = group->world_ranks[src];
    if (mute || world->colocated(world_rank(), src_world)) return;
    world->ledger().record_recv(world_rank(), words, phase,
                                world->tier_between(world_rank(), src_world));
    if (TraceSink* sink = world->trace_sink()) {
      sink->record(world_rank(), src_world, kind, TraceDir::kRecv, words,
                   trace_phase);
    }
  }

  void post_current_sends() {
    if (sends_posted) return;
    sends_posted = true;
    for (Send& s : rounds[current].sends) post_send(s);
  }

  void finish_round(Round& r) {
    if (r.on_complete) r.on_complete(r);
    r.sends.clear();
    r.recvs.clear();
    r.on_complete = nullptr;
    ++current;
    sends_posted = false;
  }

  /// Nonblocking progress: posts due sends, matches already-arrived
  /// receives (out of order within the round is fine — completion steps run
  /// only once the whole round is in, in round order, so results stay
  /// deterministic under any test()/wait() interleaving). Returns complete().
  bool try_progress() {
    while (!complete()) {
      Round& r = rounds[current];
      post_current_sends();
      bool ready = true;
      for (Recv& rv : r.recvs) {
        if (rv.done) continue;
        auto got = world->mailbox(world_rank())
                       .try_pop(Envelope{group->id, rv.src, rv.tag});
        if (!got) {
          ready = false;
          continue;
        }
        record_recv(rv.src, got->size());
        rv.payload = std::move(*got);
        rv.done = true;
      }
      if (!ready) return false;
      finish_round(r);
    }
    return true;
  }

  /// Blocking completion: receives are popped in listed order, so a wait()
  /// immediately after creation replays exactly the historical blocking
  /// schedule (golden traces depend on this).
  void wait_all() {
    while (!complete()) {
      Round& r = rounds[current];
      post_current_sends();
      for (Recv& rv : r.recvs) {
        if (rv.done) continue;
        auto payload = watched_pop(world, world->mailbox(world_rank()),
                                   Envelope{group->id, rv.src, rv.tag},
                                   world_rank(), group->world_ranks[rv.src]);
        record_recv(rv.src, payload.size());
        rv.payload = std::move(payload);
        rv.done = true;
      }
      finish_round(r);
    }
  }
};

}  // namespace detail

Request::Request(std::shared_ptr<detail::OpState> state)
    : state_(std::move(state)) {
  // Posting is eager: the first round's sends enter the mailboxes — and the
  // ledger/trace, under the posting context — at handle creation, before
  // the caller ever drives the handle. An in-flight (posted-but-incomplete)
  // send crossing a ledger snapshot boundary is therefore attributed to the
  // job and phase that posted it, never to whoever completes the handle.
  // Per-rank event order is unchanged: a blocking wrapper waits immediately
  // after creation, and round-0 sends precede every receive either way.
  if (state_ && !state_->complete()) state_->post_current_sends();
}

bool Request::done() const { return !state_ || state_->complete(); }

bool Request::test() {
  PARSYRK_CHECK_MSG(state_ != nullptr, "test() on an empty Request");
  return state_->try_progress();
}

void Request::wait() {
  PARSYRK_CHECK_MSG(state_ != nullptr, "wait() on an empty Request");
  state_->wait_all();
}

std::vector<double> Request::take() {
  wait();
  return std::move(state_->flat);
}

std::vector<std::vector<double>> Request::take_parts() {
  wait();
  return std::move(state_->parts);
}

void Comm::note_collective(OpKind kind, std::uint64_t signature,
                           std::int64_t count, int root) const {
  verify::Verifier* v = world_->verifier();
  if (v == nullptr) return;
  verify::Verifier::CollectiveSite site;
  // The *structural* kind, not an enclosing OpScope's label: an all_reduce
  // is its reduce-scatter + all-gather composition on every rank, so the
  // members compare equal exactly when they run the same schedule.
  site.kind = static_cast<std::uint8_t>(kind);
  site.name = op_kind_name(kind);
  site.signature = signature;
  site.count = count;
  site.root = root;
  // op_seq_ was just advanced by next_op_tag(): (group, handle generation,
  // op_seq_) is this collective's tag-space identity — the same key message
  // matching uses, so divergent ranks are caught before their messages can
  // cross-match.
  v->on_collective(world_rank(), group_->id,
                   static_cast<std::uint32_t>(tag_base_ / kOpsPerHandle),
                   op_seq_, site);
}

std::shared_ptr<detail::OpState> Comm::make_op(OpKind kind) const {
  auto st = std::make_shared<detail::OpState>();
  st->world = world_;
  st->group = group_;
  st->rank = rank_;
  st->kind = op_kind_.value_or(kind);
  st->mute = mute_ledger_;
  st->phase = world_->ledger().current_phase(world_rank());
  if (TraceSink* sink = world_->trace_sink()) {
    st->trace_phase = sink->current_phase_id(world_rank());
  }
  return st;
}

std::uint64_t Comm::overlap_begin() const {
  TraceSink* sink = world_->trace_sink();
  return sink ? sink->ordinal(world_rank()) : 0;
}

void Comm::overlap_end(std::uint64_t token, std::uint32_t chunk,
                       std::uint64_t words, std::uint64_t flops) const {
  TraceSink* sink = world_->trace_sink();
  if (sink == nullptr) return;
  OverlapInterval o;
  o.rank = world_rank();
  o.chunk = chunk;
  o.post_ordinal = token;
  o.complete_ordinal = sink->ordinal(world_rank());
  o.words = words;
  o.flops = flops;
  sink->record_overlap(o);
}

Request Comm::isend(int dst, int tag, std::span<const double> data) {
  PARSYRK_REQUIRE(tag >= 0, "user tags must be non-negative, got ", tag);
  PARSYRK_CHECK_MSG(dst >= 0 && dst < size() && dst != rank_,
                    "bad destination ", dst, " from rank ", rank_);
  auto st = make_op(OpKind::kPointToPoint);
  // Eager buffered semantics: the payload is on its way immediately, so the
  // handle is born complete.
  detail::OpState::Send s;
  s.dst = dst;
  s.tag = tag;
  s.payload.assign(data.begin(), data.end());
  st->post_send(s);
  return Request(std::move(st));
}

Request Comm::irecv(int src, int tag) {
  PARSYRK_REQUIRE(tag >= 0, "user tags must be non-negative, got ", tag);
  PARSYRK_CHECK_MSG(src >= 0 && src < size() && src != rank_,
                    "bad source ", src, " at rank ", rank_);
  auto st = make_op(OpKind::kPointToPoint);
  detail::OpState* raw = st.get();
  detail::OpState::Round round;
  round.recvs.push_back({src, tag});
  round.on_complete = [raw](detail::OpState::Round& r) {
    raw->flat = std::move(r.recvs[0].payload);
  };
  st->rounds.push_back(std::move(round));
  return Request(std::move(st));
}

Request Comm::ireduce_scatter(std::span<const double> data,
                              const std::vector<std::size_t>& sizes) {
  const int p = size();
  PARSYRK_REQUIRE(static_cast<int>(sizes.size()) == p,
                  "reduce_scatter needs one block size per rank");
  std::vector<std::size_t> offset(p + 1, 0);
  for (int i = 0; i < p; ++i) offset[i + 1] = offset[i] + sizes[i];
  PARSYRK_REQUIRE(offset[p] == data.size(), "reduce_scatter buffer is ",
                  data.size(), " words but block sizes sum to ", offset[p]);
  PARSYRK_CHECK_MSG(p < kTagStride, "communicator too large for tag scheme");
  const std::int64_t tag0 = next_op_tag();
  note_collective(OpKind::kReduceScatter, sizes_signature(sizes),
                  static_cast<std::int64_t>(data.size()));
  auto st = make_op(OpKind::kReduceScatter);
  st->flat.assign(data.begin() + offset[rank_],
                  data.begin() + offset[rank_ + 1]);
  detail::OpState* raw = st.get();
  st->rounds.reserve(p - 1);
  for (int r = 1; r < p; ++r) {
    const int dst = (rank_ + r) % p;
    const int src = (rank_ - r + p) % p;
    detail::OpState::Round round;
    detail::OpState::Send s;
    s.dst = dst;
    s.tag = tag0 + r;
    s.payload.assign(data.begin() + offset[dst],
                     data.begin() + offset[dst] + sizes[dst]);
    round.sends.push_back(std::move(s));
    round.recvs.push_back({src, tag0 + r});
    round.on_complete = [raw](detail::OpState::Round& rd) {
      const auto& in = rd.recvs[0].payload;
      PARSYRK_CHECK(in.size() == raw->flat.size());
      for (std::size_t i = 0; i < in.size(); ++i) raw->flat[i] += in[i];
    };
    st->rounds.push_back(std::move(round));
  }
  return Request(std::move(st));
}

Request Comm::iall_gather(std::span<const double> mine) {
  const int p = size();
  PARSYRK_CHECK_MSG(p < kTagStride, "communicator too large for tag scheme");
  const std::int64_t tag0 = next_op_tag();
  note_collective(OpKind::kAllGather, mine.size(),
                  static_cast<std::int64_t>(mine.size()));
  auto st = make_op(OpKind::kAllGather);
  const std::size_t n = mine.size();
  st->flat.assign(n * p, 0.0);
  std::copy(mine.begin(), mine.end(), st->flat.begin() + rank_ * n);
  detail::OpState* raw = st.get();
  st->rounds.reserve(p - 1);
  for (int r = 1; r < p; ++r) {
    const int dst = (rank_ + r) % p;
    const int src = (rank_ - r + p) % p;
    detail::OpState::Round round;
    detail::OpState::Send s;
    s.dst = dst;
    s.tag = tag0 + r;
    s.payload.assign(mine.begin(), mine.end());
    round.sends.push_back(std::move(s));
    round.recvs.push_back({src, tag0 + r});
    round.on_complete = [raw, src, n](detail::OpState::Round& rd) {
      const auto& in = rd.recvs[0].payload;
      PARSYRK_CHECK(in.size() == n);
      std::copy(in.begin(), in.end(), raw->flat.begin() + src * n);
    };
    st->rounds.push_back(std::move(round));
  }
  return Request(std::move(st));
}

Request Comm::iall_to_all_v(const std::vector<std::vector<double>>& send) {
  const int p = size();
  PARSYRK_REQUIRE(static_cast<int>(send.size()) == p,
                  "all_to_all_v needs one block per rank; got ", send.size(),
                  " for ", p, " ranks");
  PARSYRK_CHECK_MSG(p < kTagStride, "communicator too large for tag scheme");
  const std::int64_t tag0 = next_op_tag();
  // Per-rank payload sizes legitimately differ in a personalized exchange;
  // only the operation identity is matched.
  note_collective(OpKind::kAllToAllV, 0, p);
  auto st = make_op(OpKind::kAllToAllV);
  st->parts.resize(p);
  st->parts[rank_] = send[rank_];  // own block stays local; no cost
  detail::OpState* raw = st.get();
  st->rounds.reserve(p - 1);
  for (int r = 1; r < p; ++r) {
    const int dst = (rank_ + r) % p;
    const int src = (rank_ - r + p) % p;
    detail::OpState::Round round;
    detail::OpState::Send s;
    s.dst = dst;
    s.tag = tag0 + r;
    s.payload = send[dst];
    round.sends.push_back(std::move(s));
    round.recvs.push_back({src, tag0 + r});
    round.on_complete = [raw, src](detail::OpState::Round& rd) {
      raw->parts[src] = std::move(rd.recvs[0].payload);
    };
    st->rounds.push_back(std::move(round));
  }
  return Request(std::move(st));
}

// ---------------------------------------------------------------------------
// Pairwise-exchange collectives (blocking wrappers over the engine)
// ---------------------------------------------------------------------------

std::vector<std::vector<double>> Comm::all_to_all_v(
    const std::vector<std::vector<double>>& send) {
  return iall_to_all_v(send).take_parts();
}

std::vector<double> Comm::reduce_scatter(
    std::span<const double> data, const std::vector<std::size_t>& sizes) {
  return ireduce_scatter(data, sizes).take();
}

std::vector<double> Comm::reduce_scatter_equal(std::span<const double> data) {
  const int p = size();
  PARSYRK_REQUIRE(data.size() % p == 0, "buffer of ", data.size(),
                  " words is not divisible by ", p, " ranks");
  return reduce_scatter(data,
                        std::vector<std::size_t>(p, data.size() / p));
}

std::vector<double> Comm::all_reduce(std::span<const double> data) {
  OpScope scope(*this, OpKind::kAllReduce);
  auto mine = reduce_scatter_equal(data);
  return all_gather(mine);
}

std::vector<double> Comm::all_gather(std::span<const double> mine) {
  return iall_gather(mine).take();
}

std::vector<std::vector<double>> Comm::all_gather_v(
    std::span<const double> mine) {
  const int p = size();
  PARSYRK_CHECK_MSG(p < kTagStride, "communicator too large for tag scheme");
  const std::int64_t tag0 = next_op_tag();
  note_collective(OpKind::kAllGatherV, 0,
                  static_cast<std::int64_t>(mine.size()));
  auto st = make_op(OpKind::kAllGatherV);
  st->parts.resize(p);
  st->parts[rank_].assign(mine.begin(), mine.end());
  detail::OpState* raw = st.get();
  st->rounds.reserve(p - 1);
  for (int r = 1; r < p; ++r) {
    const int dst = (rank_ + r) % p;
    const int src = (rank_ - r + p) % p;
    detail::OpState::Round round;
    detail::OpState::Send s;
    s.dst = dst;
    s.tag = tag0 + r;
    s.payload.assign(mine.begin(), mine.end());
    round.sends.push_back(std::move(s));
    round.recvs.push_back({src, tag0 + r});
    round.on_complete = [raw, src](detail::OpState::Round& rd) {
      raw->parts[src] = std::move(rd.recvs[0].payload);
    };
    st->rounds.push_back(std::move(round));
  }
  return Request(std::move(st)).take_parts();
}

// ---------------------------------------------------------------------------
// Latency-efficient variants (§6)
// ---------------------------------------------------------------------------

std::vector<double> Comm::all_gather_bruck(std::span<const double> mine) {
  const int p = size();
  const std::size_t n = mine.size();
  const std::int64_t tag0 = next_op_tag();
  note_collective(OpKind::kAllGatherBruck, n, static_cast<std::int64_t>(n));
  auto st = make_op(OpKind::kAllGatherBruck);
  // parts[t] holds the contribution of rank (rank_ + t) mod p; round-k
  // payloads flatten what earlier rounds delivered, so they are built
  // lazily at post time.
  st->parts.reserve(p);
  st->parts.emplace_back(mine.begin(), mine.end());
  detail::OpState* raw = st.get();
  int round_idx = 0;
  for (int d = 1; d < p; d <<= 1) {
    const int count = std::min(d, p - d);
    const int dst = (rank_ - d + p) % p;
    const int src = (rank_ + d) % p;
    detail::OpState::Round round;
    detail::OpState::Send s;
    s.dst = dst;
    s.tag = tag0 + round_idx;
    s.build = [raw, count, n] {
      std::vector<double> flat;
      flat.reserve(count * n);
      for (int t = 0; t < count; ++t) {
        flat.insert(flat.end(), raw->parts[t].begin(), raw->parts[t].end());
      }
      return flat;
    };
    round.sends.push_back(std::move(s));
    round.recvs.push_back({src, tag0 + round_idx});
    round.on_complete = [raw, count, n](detail::OpState::Round& rd) {
      const auto& in = rd.recvs[0].payload;
      PARSYRK_CHECK(in.size() == static_cast<std::size_t>(count) * n);
      for (int t = 0; t < count; ++t) {
        raw->parts.emplace_back(in.begin() + t * n, in.begin() + (t + 1) * n);
      }
    };
    st->rounds.push_back(std::move(round));
    ++round_idx;
  }
  // Final (message-free) round: unrotate the relative slots into rank order.
  const int myrank = rank_;
  detail::OpState::Round fin;
  fin.on_complete = [raw, p, n, myrank](detail::OpState::Round&) {
    raw->flat.assign(n * static_cast<std::size_t>(p), 0.0);
    for (int t = 0; t < p; ++t) {
      const int owner = (myrank + t) % p;
      std::copy(raw->parts[t].begin(), raw->parts[t].end(),
                raw->flat.begin() + owner * n);
    }
    raw->parts.clear();
  };
  st->rounds.push_back(std::move(fin));
  return Request(std::move(st)).take();
}

std::vector<double> Comm::reduce_scatter_bruck(std::span<const double> data) {
  const int p = size();
  PARSYRK_REQUIRE(data.size() % p == 0, "buffer of ", data.size(),
                  " words is not divisible by ", p, " ranks");
  const std::size_t n = data.size() / p;
  const std::int64_t tag0 = next_op_tag();
  note_collective(OpKind::kReduceScatterBruck, data.size(),
                  static_cast<std::int64_t>(data.size()));
  auto st = make_op(OpKind::kReduceScatterBruck);
  // parts[t] = my partial for rank (rank_ + t) mod p. The schedule is the
  // exact reverse of all_gather_bruck with summation folded in: what the
  // gather copied outward, the reduce accumulates inward, so bandwidth
  // (1−1/P)·w and latency ceil(log2 P) are both optimal (§6). Payloads read
  // partials mutated by earlier rounds, so they are built lazily.
  st->parts.resize(p);
  for (int t = 0; t < p; ++t) {
    const int owner = (rank_ + t) % p;
    st->parts[t].assign(data.begin() + owner * n,
                        data.begin() + (owner + 1) * n);
  }
  detail::OpState* raw = st.get();
  // Forward step distances, replayed in reverse.
  std::vector<int> steps;
  for (int d = 1; d < p; d <<= 1) steps.push_back(d);
  int round_idx = 0;
  for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
    const int d = *it;
    const int count = std::min(d, p - d);
    const int dst = (rank_ + d) % p;
    const int src = (rank_ - d + p) % p;
    detail::OpState::Round round;
    detail::OpState::Send s;
    s.dst = dst;
    s.tag = tag0 + round_idx;
    s.build = [raw, d, count, n] {
      std::vector<double> flat;
      flat.reserve(count * n);
      for (int t = d; t < d + count; ++t) {
        flat.insert(flat.end(), raw->parts[t].begin(), raw->parts[t].end());
      }
      return flat;
    };
    round.sends.push_back(std::move(s));
    round.recvs.push_back({src, tag0 + round_idx});
    round.on_complete = [raw, count, n](detail::OpState::Round& rd) {
      const auto& in = rd.recvs[0].payload;
      PARSYRK_CHECK(in.size() == static_cast<std::size_t>(count) * n);
      for (int t = 0; t < count; ++t) {
        for (std::size_t w = 0; w < n; ++w) {
          raw->parts[t][w] += in[t * n + w];
        }
      }
    };
    st->rounds.push_back(std::move(round));
    ++round_idx;
  }
  detail::OpState::Round fin;
  fin.on_complete = [raw](detail::OpState::Round&) {
    raw->flat = std::move(raw->parts[0]);
    raw->parts.clear();
  };
  st->rounds.push_back(std::move(fin));
  return Request(std::move(st)).take();
}

std::vector<double> Comm::all_to_all_butterfly(std::span<const double> send,
                                               std::size_t block) {
  const int p = size();
  PARSYRK_REQUIRE(send.size() == block * p,
                  "butterfly all-to-all needs p equal blocks");
  const std::int64_t tag0 = next_op_tag();
  note_collective(OpKind::kAllToAllButterfly, block,
                  static_cast<std::int64_t>(block));
  auto st = make_op(OpKind::kAllToAllButterfly);
  // Phase 1: local rotation so slot j holds the block destined to rank_+j.
  st->parts.resize(p);
  for (int j = 0; j < p; ++j) {
    const int dst = (rank_ + j) % p;
    st->parts[j].assign(send.begin() + dst * block,
                        send.begin() + (dst + 1) * block);
  }
  detail::OpState* raw = st.get();
  // Phase 2: bit-wise exchanges; block j travels a total displacement of j.
  // Which slots move per round depends only on the bit, so the move lists
  // are precomputed; the payloads read slots rewritten by earlier rounds
  // and are built lazily.
  int round_idx = 0;
  for (int bit = 1; bit < p; bit <<= 1) {
    const int dst = (rank_ + bit) % p;
    const int src = (rank_ - bit + p) % p;
    auto moved = std::make_shared<std::vector<int>>();
    for (int j = 0; j < p; ++j) {
      if ((j & bit) != 0) moved->push_back(j);
    }
    detail::OpState::Round round;
    detail::OpState::Send s;
    s.dst = dst;
    s.tag = tag0 + round_idx;
    s.build = [raw, moved, block] {
      std::vector<double> flat;
      flat.reserve(moved->size() * block);
      for (int j : *moved) {
        flat.insert(flat.end(), raw->parts[j].begin(), raw->parts[j].end());
      }
      return flat;
    };
    round.sends.push_back(std::move(s));
    round.recvs.push_back({src, tag0 + round_idx});
    round.on_complete = [raw, moved, block](detail::OpState::Round& rd) {
      const auto& in = rd.recvs[0].payload;
      PARSYRK_CHECK(in.size() == moved->size() * block);
      for (std::size_t m = 0; m < moved->size(); ++m) {
        raw->parts[(*moved)[m]].assign(in.begin() + m * block,
                                       in.begin() + (m + 1) * block);
      }
    };
    st->rounds.push_back(std::move(round));
    ++round_idx;
  }
  // Phase 3: slot j now holds the block from rank (rank_ - j); unrotate.
  const int myrank = rank_;
  detail::OpState::Round fin;
  fin.on_complete = [raw, p, block, myrank](detail::OpState::Round&) {
    raw->flat.assign(block * static_cast<std::size_t>(p), 0.0);
    for (int j = 0; j < p; ++j) {
      const int src = (myrank - j + p) % p;
      std::copy(raw->parts[j].begin(), raw->parts[j].end(),
                raw->flat.begin() + src * block);
    }
    raw->parts.clear();
  };
  st->rounds.push_back(std::move(fin));
  return Request(std::move(st)).take();
}

// ---------------------------------------------------------------------------
// Rooted collectives
// ---------------------------------------------------------------------------

void Comm::bcast(std::span<double> data, int root) {
  const int p = size();
  PARSYRK_REQUIRE(root >= 0 && root < p, "bad bcast root ", root);
  const std::int64_t tag0 = next_op_tag();
  note_collective(OpKind::kBcast, data.size(),
                  static_cast<std::int64_t>(data.size()), root);
  auto st = make_op(OpKind::kBcast);
  const int vrank = (rank_ - root + p) % p;
  // Binomial tree: receive once (non-root), then forward down the tree. The
  // forward payloads read the just-received data, so they are built lazily;
  // `data` is the caller's buffer and outlives the blocking wait below.
  int mask = 1;
  while (mask < p) {
    if ((vrank & mask) != 0) {
      const int src = ((vrank - mask) + root) % p;
      detail::OpState::Round round;
      round.recvs.push_back({src, tag0});
      round.on_complete = [data](detail::OpState::Round& rd) {
        const auto& in = rd.recvs[0].payload;
        PARSYRK_CHECK(in.size() == data.size());
        std::copy(in.begin(), in.end(), data.begin());
      };
      st->rounds.push_back(std::move(round));
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  detail::OpState::Round fwd;
  while (mask > 0) {
    if (vrank + mask < p) {
      const int dst = ((vrank + mask) + root) % p;
      detail::OpState::Send s;
      s.dst = dst;
      s.tag = tag0;
      s.build = [data] { return std::vector<double>(data.begin(), data.end()); };
      fwd.sends.push_back(std::move(s));
    }
    mask >>= 1;
  }
  if (!fwd.sends.empty()) st->rounds.push_back(std::move(fwd));
  Request(std::move(st)).wait();
}

std::vector<double> Comm::reduce(std::span<const double> data, int root) {
  const int p = size();
  PARSYRK_REQUIRE(root >= 0 && root < p, "bad reduce root ", root);
  const std::int64_t tag0 = next_op_tag();
  note_collective(OpKind::kReduce, data.size(),
                  static_cast<std::int64_t>(data.size()), root);
  auto st = make_op(OpKind::kReduce);
  const int vrank = (rank_ - root + p) % p;
  st->flat.assign(data.begin(), data.end());
  detail::OpState* raw = st.get();
  // Binomial tree: accumulate children in mask order, then (non-root) send
  // the partial up — lazily, since it reads the accumulated result.
  bool sender = false;
  int mask = 1;
  while (mask < p) {
    if ((vrank & mask) != 0) {
      const int dst = ((vrank - mask) + root) % p;
      detail::OpState::Round round;
      detail::OpState::Send s;
      s.dst = dst;
      s.tag = tag0;
      s.build = [raw] { return raw->flat; };
      round.sends.push_back(std::move(s));
      st->rounds.push_back(std::move(round));
      sender = true;
      break;
    }
    if (vrank + mask < p) {
      const int src = ((vrank + mask) + root) % p;
      detail::OpState::Round round;
      round.recvs.push_back({src, tag0});
      round.on_complete = [raw](detail::OpState::Round& rd) {
        const auto& in = rd.recvs[0].payload;
        PARSYRK_CHECK(in.size() == raw->flat.size());
        for (std::size_t i = 0; i < in.size(); ++i) raw->flat[i] += in[i];
      };
      st->rounds.push_back(std::move(round));
    }
    mask <<= 1;
  }
  auto out = Request(std::move(st)).take();
  return sender ? std::vector<double>{} : std::move(out);
}

std::vector<std::vector<double>> Comm::gather(std::span<const double> mine,
                                              int root) {
  const int p = size();
  PARSYRK_REQUIRE(root >= 0 && root < p, "bad gather root ", root);
  const std::int64_t tag0 = next_op_tag();
  // Contribution sizes legitimately differ (variable-size gather).
  note_collective(OpKind::kGather, 0, static_cast<std::int64_t>(mine.size()),
                  root);
  auto st = make_op(OpKind::kGather);
  detail::OpState* raw = st.get();
  if (rank_ != root) {
    detail::OpState::Round round;
    detail::OpState::Send s;
    s.dst = root;
    s.tag = tag0;
    s.payload.assign(mine.begin(), mine.end());
    round.sends.push_back(std::move(s));
    st->rounds.push_back(std::move(round));
    Request(std::move(st)).wait();
    return {};
  }
  st->parts.resize(p);
  st->parts[root].assign(mine.begin(), mine.end());
  detail::OpState::Round round;
  for (int r = 0; r < p; ++r) {
    if (r == root) continue;
    round.recvs.push_back({r, tag0});
  }
  round.on_complete = [raw](detail::OpState::Round& rd) {
    for (auto& rv : rd.recvs) raw->parts[rv.src] = std::move(rv.payload);
  };
  st->rounds.push_back(std::move(round));
  return Request(std::move(st)).take_parts();
}

std::vector<double> Comm::scatter(
    const std::vector<std::vector<double>>& parts, int root) {
  const int p = size();
  PARSYRK_REQUIRE(root >= 0 && root < p, "bad scatter root ", root);
  const std::int64_t tag0 = next_op_tag();
  // Parts are only read on root; non-roots cannot contribute a size.
  note_collective(OpKind::kScatter, 0, 0, root);
  auto st = make_op(OpKind::kScatter);
  detail::OpState* raw = st.get();
  if (rank_ == root) {
    PARSYRK_REQUIRE(static_cast<int>(parts.size()) == p,
                    "scatter needs one part per rank");
    detail::OpState::Round round;
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      detail::OpState::Send s;
      s.dst = r;
      s.tag = tag0;
      s.payload = parts[r];
      round.sends.push_back(std::move(s));
    }
    st->flat = parts[root];
    st->rounds.push_back(std::move(round));
    return Request(std::move(st)).take();
  }
  detail::OpState::Round round;
  round.recvs.push_back({root, tag0});
  round.on_complete = [raw](detail::OpState::Round& rd) {
    raw->flat = std::move(rd.recvs[0].payload);
  };
  st->rounds.push_back(std::move(round));
  return Request(std::move(st)).take();
}

// ---------------------------------------------------------------------------
// Hierarchical collectives (two-level topology)
// ---------------------------------------------------------------------------
//
// Composed from split() plus the rooted and pairwise primitives, so every
// message rides the existing engine (tags, ledger tiers, trace kinds all
// come for free). Node membership is by *world* topology: a communicator
// qualifies when its members form complete, node-aligned groups — which the
// session's contiguous active-ranks splits always do on a topology'd world.

bool Comm::hier_available() const {
  const int rpn = world_->ranks_per_node();
  const int p = size();
  if (rpn <= 1 || p % rpn != 0 || p / rpn < 2) return false;
  for (int base = 0; base < p; base += rpn) {
    const int node = world_->node_of(group_->world_ranks[base]);
    for (int i = 1; i < rpn; ++i) {
      if (world_->node_of(group_->world_ranks[base + i]) != node) return false;
    }
    if (base > 0 && world_->node_of(group_->world_ranks[base - 1]) == node) {
      return false;
    }
  }
  return true;
}

std::vector<double> Comm::reduce_scatter_hier(
    std::span<const double> data, const std::vector<std::size_t>& sizes) {
  if (!hier_available()) return reduce_scatter(data, sizes);
  HierScope hier_scope(world_, world_rank());
  const int p = size();
  PARSYRK_REQUIRE(static_cast<int>(sizes.size()) == p,
                  "reduce_scatter needs one block size per rank");
  const int rpn = world_->ranks_per_node();
  const int nnodes = p / rpn;
  const int my_node = rank_ / rpn;
  const bool leader = rank_ % rpn == 0;
  Comm node = split(my_node, rank_);
  Comm peers = split(leader ? 0 : 1, rank_);
  // Stage 1 (intra tier): binomial reduce of the full buffer to the leader.
  std::vector<double> partial = node.reduce(data, 0);
  // Stage 2 (inter tier): leaders alone reduce-scatter per-node aggregate
  // blocks. A node's members own contiguous segments of the buffer, so its
  // aggregate is one contiguous block and the blocking is well-formed.
  std::vector<std::vector<double>> member_parts;
  if (leader) {
    std::vector<std::size_t> node_sizes(nnodes, 0);
    for (int r = 0; r < p; ++r) node_sizes[r / rpn] += sizes[r];
    std::vector<double> node_block = peers.reduce_scatter(partial, node_sizes);
    // Stage 3 prep: slice the node block back into member segments.
    member_parts.resize(rpn);
    std::size_t off = 0;
    for (int i = 0; i < rpn; ++i) {
      const std::size_t w = sizes[my_node * rpn + i];
      member_parts[i].assign(node_block.begin() + off,
                             node_block.begin() + off + w);
      off += w;
    }
  }
  // Stage 3 (intra tier): leader scatters each member its summed segment.
  return node.scatter(member_parts, 0);
}

std::vector<std::vector<double>> Comm::all_to_all_v_hier(
    const std::vector<std::vector<double>>& send) {
  if (!hier_available()) return all_to_all_v(send);
  HierScope hier_scope(world_, world_rank());
  const int p = size();
  PARSYRK_REQUIRE(static_cast<int>(send.size()) == p,
                  "all_to_all_v needs one block per rank; got ", send.size(),
                  " for ", p, " ranks");
  const int rpn = world_->ranks_per_node();
  const int nnodes = p / rpn;
  const int my_node = rank_ / rpn;
  const bool leader = rank_ % rpn == 0;
  Comm node = split(my_node, rank_);
  Comm peers = split(leader ? 0 : 1, rank_);

  // Wire image: a header of per-destination-node blob sizes, then for each
  // destination node a blob of [payload words][payload] frames in
  // destination-rank order. Frame sizes ride the wire as doubles (payload
  // word counts are far below 2^53, so the encoding is exact).
  std::vector<double> wire;
  {
    std::size_t total = nnodes;
    for (int d = 0; d < p; ++d) total += 1 + send[d].size();
    wire.reserve(total);
    for (int j = 0; j < nnodes; ++j) {
      std::size_t blob = 0;
      for (int i = 0; i < rpn; ++i) blob += 1 + send[j * rpn + i].size();
      wire.push_back(static_cast<double>(blob));
    }
    for (int d = 0; d < p; ++d) {
      wire.push_back(static_cast<double>(send[d].size()));
      wire.insert(wire.end(), send[d].begin(), send[d].end());
    }
  }
  // Stage 1 (intra tier): every member's wire image gathers at the leader.
  std::vector<std::vector<double>> gathered = node.gather(wire, 0);
  // Stage 2 (inter tier): leaders exchange node-to-node aggregates (their
  // own node's aggregate stays local inside all_to_all_v).
  std::vector<std::vector<double>> member_in;
  if (leader) {
    std::vector<std::vector<double>> agg(nnodes);
    for (int j = 0; j < nnodes; ++j) {
      for (int m = 0; m < rpn; ++m) {
        const std::vector<double>& w = gathered[m];
        std::size_t off = nnodes;
        for (int k = 0; k < j; ++k) off += static_cast<std::size_t>(w[k]);
        const std::size_t len = static_cast<std::size_t>(w[j]);
        agg[j].insert(agg[j].end(), w.begin() + off, w.begin() + off + len);
      }
    }
    std::vector<std::vector<double>> from_nodes = peers.all_to_all_v(agg);
    // Regroup into per-local-member streams: frames arrive grouped by
    // (source node, source member, destination member); emitting them per
    // destination in that scan order yields source-rank order streams.
    member_in.assign(rpn, {});
    for (int s = 0; s < nnodes; ++s) {
      const std::vector<double>& blob = from_nodes[s];
      std::size_t off = 0;
      for (int m = 0; m < rpn; ++m) {
        for (int i = 0; i < rpn; ++i) {
          const std::size_t len = static_cast<std::size_t>(blob[off]);
          member_in[i].insert(member_in[i].end(), blob.begin() + off,
                              blob.begin() + off + 1 + len);
          off += 1 + len;
        }
      }
      PARSYRK_CHECK(off == blob.size());
    }
  }
  // Stage 3 (intra tier): each member receives its inbound frame stream
  // (sources in rank order) and decodes.
  std::vector<double> mine = node.scatter(member_in, 0);
  std::vector<std::vector<double>> out(p);
  std::size_t off = 0;
  for (int src = 0; src < p; ++src) {
    const std::size_t len = static_cast<std::size_t>(mine[off]);
    out[src].assign(mine.begin() + off + 1, mine.begin() + off + 1 + len);
    off += 1 + len;
  }
  PARSYRK_CHECK(off == mine.size());
  return out;
}

// ---------------------------------------------------------------------------
// split
// ---------------------------------------------------------------------------

Comm Comm::split(int color, int key) {
  // Exchange (color, key) so each rank can compute every group's membership.
  const int p = size();
  const std::vector<double> mine = {static_cast<double>(color),
                                    static_cast<double>(key)};
  mute_ledger_ = true;  // setup exchange: not algorithm communication
  auto all = all_gather(mine);
  mute_ledger_ = false;

  struct Entry {
    int color, key, rank;
  };
  std::vector<Entry> members;
  std::string sig = std::to_string(group_->id) + "@" +
                    std::to_string(op_seq_) + ":";
  for (int r = 0; r < p; ++r) {
    const int rc = static_cast<int>(all[2 * r]);
    const int rk = static_cast<int>(all[2 * r + 1]);
    sig += std::to_string(rc) + "," + std::to_string(rk) + ";";
    if (rc == color) members.push_back({rc, rk, r});
  }
  sig += "|" + std::to_string(color);
  std::stable_sort(members.begin(), members.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.key != b.key ? a.key < b.key : a.rank < b.rank;
                   });

  std::vector<int> world_members;
  world_members.reserve(members.size());
  int my_new_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    world_members.push_back(group_->world_ranks[members[i].rank]);
    if (members[i].rank == rank_) my_new_rank = static_cast<int>(i);
  }
  PARSYRK_CHECK(my_new_rank >= 0);
  auto g = world_->intern_group(sig, world_members);
  // Obtaining a group handle is collective, so every member reads the same
  // generation; the bump gives the next handle to this group (a repeated
  // identical split) a disjoint collective-tag block. Generations reset at
  // each job start.
  const std::uint32_t gen = g->handle_gen[my_new_rank]++;
  return Comm(world_, std::move(g), my_new_rank, gen);
}

}  // namespace parsyrk::comm
