#include "simmpi/job_queue.hpp"

namespace parsyrk::comm {

void JobQueue::enqueue(std::string name, std::function<void(Comm&)> body) {
  pending_.emplace_back(std::move(name), std::move(body));
  ++named_;
}

void JobQueue::enqueue(std::function<void(Comm&)> body) {
  enqueue("job" + std::to_string(named_), std::move(body));
}

std::vector<JobQueue::JobResult> JobQueue::drain() {
  std::vector<JobResult> results;
  results.reserve(pending_.size());
  for (auto& [name, body] : pending_) {
    JobResult res;
    res.name = name;
    const CostLedger::Snapshot before = world_.ledger().snapshot();
    try {
      world_.run(body);
    } catch (...) {
      res.error = std::current_exception();
    }
    res.cost = world_.ledger().summary_since(before);
    if (TraceSink* sink = world_.trace_sink()) {
      res.trace = sink->drain(res.error != nullptr);
    }
    results.push_back(std::move(res));
  }
  pending_.clear();
  return results;
}

}  // namespace parsyrk::comm
