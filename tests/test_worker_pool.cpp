// Persistent worker-pool executor: leases, warm dispatch, and the JobQueue.
//
// The load-bearing property: after a World's construction, running jobs
// creates NO threads — bodies are handed to already-parked workers. These
// tests pin that down with a private pool whose thread-creation counter is
// observable, and exercise the JobQueue's per-job ledger scoping and
// failure isolation.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "simmpi/comm.hpp"
#include "simmpi/job_queue.hpp"
#include "simmpi/worker_pool.hpp"
#include "support/check.hpp"

namespace parsyrk::comm {
namespace {

TEST(WorkerPool, DispatchRunsEveryTask) {
  WorkerPool pool;
  std::atomic<int> sum{0};
  {
    auto lease = pool.acquire(8);
    ASSERT_EQ(lease.size(), 8);
    for (int i = 0; i < 8; ++i) {
      lease.dispatch(i, [&sum, i] { sum += i + 1; });
    }
    lease.wait();
  }
  EXPECT_EQ(sum.load(), 36);
  EXPECT_EQ(pool.threads_created(), 8u);
}

TEST(WorkerPool, LeasesReuseParkedWorkers) {
  WorkerPool pool;
  for (int round = 0; round < 5; ++round) {
    auto lease = pool.acquire(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 4; ++i) lease.dispatch(i, [&ran] { ++ran; });
    lease.wait();
    EXPECT_EQ(ran.load(), 4);
  }
  // Workers were created once and parked between leases.
  EXPECT_EQ(pool.threads_created(), 4u);
  EXPECT_EQ(pool.idle(), 4);
}

TEST(WorkerPool, GrowsOnlyByTheShortfall) {
  WorkerPool pool;
  { auto lease = pool.acquire(3); }
  EXPECT_EQ(pool.threads_created(), 3u);
  { auto lease = pool.acquire(7); }
  EXPECT_EQ(pool.threads_created(), 7u);
  { auto lease = pool.acquire(5); }
  EXPECT_EQ(pool.threads_created(), 7u);
}

TEST(WorkerPool, ConcurrentLeasesAreDisjoint) {
  WorkerPool pool;
  auto a = pool.acquire(3);
  auto b = pool.acquire(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 3; ++i) {
    a.dispatch(i, [&ran] { ++ran; });
    b.dispatch(i, [&ran] { ++ran; });
  }
  a.wait();
  b.wait();
  EXPECT_EQ(ran.load(), 6);
  EXPECT_EQ(pool.threads_created(), 6u);
}

TEST(WorkerPool, WorldRunCreatesNoThreadsAfterWarmup) {
  // The tentpole acceptance check: 100 jobs on one World, zero thread
  // creation after the lease at construction.
  WorkerPool pool;
  World world(6, pool);
  const std::uint64_t warm = pool.threads_created();
  EXPECT_EQ(warm, 6u);
  for (int job = 0; job < 100; ++job) {
    world.run([&](Comm& comm) {
      auto all = comm.all_gather(std::vector<double>{1.0 * comm.rank()});
      ASSERT_EQ(all.size(), 6u);
      for (int r = 0; r < 6; ++r) ASSERT_DOUBLE_EQ(all[r], 1.0 * r);
    });
  }
  EXPECT_EQ(world.jobs_run(), 100u);
  EXPECT_EQ(pool.threads_created(), warm);
}

TEST(WorkerPool, WorldsShareOneProcessPool) {
  // Sequential Worlds of the same size lease the same parked threads from
  // the shared pool rather than spawning their own.
  { World warmup(4); }
  const std::uint64_t before = WorkerPool::shared().threads_created();
  for (int i = 0; i < 10; ++i) {
    World world(4);
    world.run([](Comm& comm) { comm.barrier(); });
  }
  EXPECT_EQ(WorkerPool::shared().threads_created(), before);
}

TEST(JobQueue, DrainsJobsInOrderWithScopedCosts) {
  WorkerPool pool;
  World world(4, pool);
  JobQueue queue(world);
  // Job 1: every rank sends 3 words to its successor. Job 2: 5 words.
  for (const int words : {3, 5}) {
    queue.enqueue("ring" + std::to_string(words), [words](Comm& comm) {
      const int p = comm.size();
      const int dst = (comm.rank() + 1) % p;
      const int src = (comm.rank() + p - 1) % p;
      comm.send(dst, 0, std::vector<double>(words, 1.0));
      auto got = comm.recv(src, 0);
      ASSERT_EQ(got.size(), static_cast<std::size_t>(words));
    });
  }
  ASSERT_EQ(queue.pending(), 2u);
  auto results = queue.drain();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(queue.pending(), 0u);

  EXPECT_EQ(results[0].name, "ring3");
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[0].cost.total.words_sent, 12u);  // 4 ranks x 3 words
  EXPECT_EQ(results[0].cost.max.msgs_sent, 1u);
  EXPECT_EQ(results[1].cost.total.words_sent, 20u);  // scoped: not 12+20
  // The world's cumulative ledger still holds both jobs.
  EXPECT_EQ(world.ledger().summary().total.words_sent, 32u);
}

TEST(JobQueue, FailingJobPoisonsOnlyItself) {
  WorkerPool pool;
  World world(5, pool);
  const std::uint64_t warm = pool.threads_created();
  JobQueue queue(world);
  queue.enqueue("ok-before", [](Comm& comm) { comm.barrier(); });
  queue.enqueue("boom", [](Comm& comm) {
    if (comm.rank() == 2) throw std::runtime_error("rank 2 failed");
    // Peers block in a collective and must unwind via poisoning.
    comm.all_gather(std::vector<double>{1.0});
  });
  queue.enqueue("ok-after", [](Comm& comm) {
    auto all = comm.all_gather(std::vector<double>{2.0});
    ASSERT_EQ(all.size(), 5u);
  });
  auto results = queue.drain();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_THROW(results[1].rethrow(), std::runtime_error);
  EXPECT_TRUE(results[2].ok());
  // The pool survived the poisoned job: same threads, still reusable.
  EXPECT_EQ(pool.threads_created(), warm);
  world.run([](Comm& comm) { comm.barrier(); });
}

TEST(JobQueue, WarmQueueCostsMatchFreshWorlds) {
  // Per-job ledger scoping on a reused world reports exactly what a fresh
  // world per job would: same words, same messages, per job.
  auto body = [](int words) {
    return [words](Comm& comm) {
      std::vector<double> data(static_cast<std::size_t>(words) *
                               static_cast<std::size_t>(comm.size()));
      auto mine = comm.reduce_scatter_equal(data);
      auto all = comm.all_gather(mine);
      ASSERT_EQ(all.size(), data.size());
    };
  };
  const int kJobs[] = {2, 7, 3, 7, 2};

  std::vector<CostSummary> fresh;
  for (int words : kJobs) {
    World world(6);
    world.run(body(words));
    fresh.push_back(world.ledger().summary());
  }

  World warm(6);
  JobQueue queue(warm);
  for (int words : kJobs) queue.enqueue(body(words));
  auto results = queue.drain();
  ASSERT_EQ(results.size(), std::size(kJobs));
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(results[i].cost.total, fresh[i].total) << "job " << i;
    EXPECT_EQ(results[i].cost.max, fresh[i].max) << "job " << i;
  }
}

TEST(JobQueue, AutoNamesAreSequential) {
  WorkerPool pool;
  World world(2, pool);
  JobQueue queue(world);
  queue.enqueue([](Comm& comm) { comm.barrier(); });
  queue.enqueue("named", [](Comm& comm) { comm.barrier(); });
  queue.enqueue([](Comm& comm) { comm.barrier(); });
  auto results = queue.drain();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].name, "job0");
  EXPECT_EQ(results[1].name, "named");
  EXPECT_EQ(results[2].name, "job2");
}

TEST(LedgerSnapshots, SinceDiffsAreExact) {
  CostLedger ledger(2);
  ledger.set_phase(0, "a");
  ledger.record_send(0, 10);
  auto snap = ledger.snapshot();
  ledger.record_send(0, 7);
  ledger.set_phase(1, "b");
  ledger.record_recv(1, 4);

  const auto since = ledger.summary_since(snap);
  EXPECT_EQ(since.total.words_sent, 7u);
  EXPECT_EQ(since.total.words_recv, 4u);
  EXPECT_EQ(ledger.summary().total.words_sent, 17u);

  const auto phase_a = ledger.summary_since(snap, "a");
  EXPECT_EQ(phase_a.total.words_sent, 7u);
  const auto per_rank = ledger.per_rank_since(snap);
  ASSERT_EQ(per_rank.size(), 2u);
  EXPECT_EQ(per_rank[0].words_sent, 7u);
  EXPECT_EQ(per_rank[1].words_recv, 4u);
}

}  // namespace
}  // namespace parsyrk::comm
