// Tests for src/baseline: correctness of the GEMM baselines and the
// ScaLAPACK-style SYRK, plus the measured communication relationships the
// paper's headline comparison relies on (E8).
#include <gtest/gtest.h>

#include <tuple>

#include "baseline/gemm.hpp"
#include "core/session.hpp"
#include "core/syrk.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"

namespace parsyrk::baseline {
namespace {

constexpr double kTol = 1e-10;

/// Oracle for C = A·Bᵀ.
Matrix gemm_reference(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  gemm_nt_naive(a.view(), b.view(), c.view());
  return c;
}

class Gemm1dShapes : public ::testing::TestWithParam<
                         std::tuple<std::size_t, std::size_t, int>> {};

TEST_P(Gemm1dShapes, MatchesReference) {
  const auto [n1, n2, p] = GetParam();
  Matrix a = random_matrix(n1, n2, 501);
  Matrix b = random_matrix(n1, n2, 502);
  comm::World world(p);
  Matrix c = gemm_1d(world, a, b);
  EXPECT_LT(max_abs_diff(c.view(), gemm_reference(a, b).view()), kTol);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Gemm1dShapes,
                         ::testing::Values(std::make_tuple(8, 64, 4),
                                           std::make_tuple(13, 9, 5),
                                           std::make_tuple(20, 20, 1),
                                           std::make_tuple(6, 100, 7)));

class Gemm2dShapes : public ::testing::TestWithParam<
                         std::tuple<std::size_t, std::size_t, std::uint64_t>> {
};

TEST_P(Gemm2dShapes, MatchesReference) {
  const auto [n1, n2, r] = GetParam();
  Matrix a = random_matrix(n1, n2, 503);
  Matrix b = random_matrix(n1, n2, 504);
  comm::World world(static_cast<int>(r * r));
  Matrix c = gemm_2d(world, a, b, r);
  EXPECT_LT(max_abs_diff(c.view(), gemm_reference(a, b).view()), kTol);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Gemm2dShapes,
                         ::testing::Values(std::make_tuple(24, 8, 2),
                                           std::make_tuple(25, 5, 3),
                                           std::make_tuple(17, 4, 4),
                                           std::make_tuple(9, 30, 3)));

class Gemm3dShapes
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::uint64_t, std::uint64_t>> {
};

TEST_P(Gemm3dShapes, MatchesReference) {
  const auto [n1, n2, r, t] = GetParam();
  Matrix a = random_matrix(n1, n2, 505);
  Matrix b = random_matrix(n1, n2, 506);
  comm::World world(static_cast<int>(r * r * t));
  Matrix c = gemm_3d(world, a, b, r, t);
  EXPECT_LT(max_abs_diff(c.view(), gemm_reference(a, b).view()), kTol);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Gemm3dShapes,
                         ::testing::Values(std::make_tuple(16, 24, 2, 3),
                                           std::make_tuple(18, 7, 3, 2),
                                           std::make_tuple(10, 40, 2, 5),
                                           std::make_tuple(12, 12, 2, 1)));

class ScalapackShapes
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(ScalapackShapes, MatchesSyrkReference) {
  const auto [n1, n2, r] = GetParam();
  Matrix a = random_matrix(n1, n2, 507);
  comm::World world(static_cast<int>(r * r));
  Matrix c = scalapack_syrk(world, a, r);
  EXPECT_LT(max_abs_diff(c.view(), syrk_reference(a.view()).view()), kTol);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScalapackShapes,
                         ::testing::Values(std::make_tuple(24, 8, 2),
                                           std::make_tuple(25, 5, 3),
                                           std::make_tuple(30, 30, 4),
                                           std::make_tuple(7, 3, 2)));

TEST(BaselineCosts, ScalapackCommunicatesLikeGemm2d) {
  // The paper's point about library SYRKs: same words as GEMM, half flops.
  const std::size_t n1 = 64, n2 = 16;
  const std::uint64_t r = 4;
  Matrix a = random_matrix(n1, n2, 508);
  comm::World wg(static_cast<int>(r * r)), ws(static_cast<int>(r * r));
  gemm_2d(wg, a, a, r);
  scalapack_syrk(ws, a, r);
  EXPECT_EQ(wg.ledger().summary().max.words_sent,
            ws.ledger().summary().max.words_sent);
}

TEST(BaselineCosts, Gemm1dMovesTwiceSyrk1d) {
  // 1D GEMM reduce-scatters n1² words; 1D SYRK only the packed triangle.
  const std::size_t n1 = 64, n2 = 512;
  const int p = 8;
  Matrix a = random_matrix(n1, n2, 509);
  comm::World wg(p);
  gemm_1d(wg, a, a);
  core::Session ss(p);
  const auto run = core::syrk(ss, core::SyrkRequest(a).use_1d());
  const double g = static_cast<double>(wg.ledger().summary().max.words_sent);
  const double s = static_cast<double>(run.total.max.words_sent);
  EXPECT_NEAR(g / s, 2.0, 0.05);  // n1²/(n1(n1+1)/2) = 2n1/(n1+1)
}

TEST(BaselineCosts, TriangleSyrkMovesHalfOfScalapack) {
  // Matched processor counts: 2D triangle SYRK on P = c(c+1) = 132 vs
  // ScaLAPACK-style on 11×11 = 121. The words ratio approaches 2 from below
  // as the grids grow (1.98 at c = r = 11).
  const std::size_t n1 = 242, n2 = 12;  // even chunking on both grids
  Matrix a = random_matrix(n1, n2, 510);
  core::Session st(132);
  const auto run = core::syrk(st, core::SyrkRequest(a).use_2d(11));
  comm::World ws(121);
  scalapack_syrk(ws, a, 11);
  const double tri = static_cast<double>(run.total.max.words_sent);
  const double sca = static_cast<double>(ws.ledger().summary().max.words_sent);
  EXPECT_NEAR(sca / tri, 2.0, 0.15);
}

TEST(BaselineCosts, Gemm2dLedgerMatchesClosedForm) {
  const std::size_t n1 = 60, n2 = 10;
  const std::uint64_t r = 3;
  Matrix a = random_matrix(n1, n2, 511);
  comm::World world(9);
  gemm_2d(world, a, a, r);
  // Two all-gathers, each ending with n1·n2/r words resident per rank.
  const double per_gather =
      (1.0 - 1.0 / static_cast<double>(r)) * n1 * n2 / r;
  const auto summary = world.ledger().summary();
  EXPECT_NEAR(static_cast<double>(summary.max.words_sent), 2.0 * per_gather,
              2.0);
}

TEST(BaselineCosts, ShapeMismatchRejected) {
  Matrix a = random_matrix(8, 4, 512);
  Matrix b = random_matrix(8, 5, 513);
  comm::World world(4);
  EXPECT_THROW(gemm_1d(world, a, b), InvalidArgument);
  comm::World w9(9);
  EXPECT_THROW(gemm_3d(w9, a, a, 2, 2), InvalidArgument);  // needs 8 ranks
}

}  // namespace
}  // namespace parsyrk::baseline
