// Tests for src/matrix: container/view semantics, kernels vs naive oracles,
// packed triangular storage.
#include <gtest/gtest.h>

#include <tuple>

#include "matrix/kernels.hpp"
#include "matrix/matrix.hpp"
#include "matrix/packed.hpp"
#include "matrix/random.hpp"

namespace parsyrk {
namespace {

TEST(Matrix, ConstructAndIndex) {
  Matrix m(3, 4, 1.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_DOUBLE_EQ(m(2, 3), 1.5);
  m(1, 2) = -7.0;
  EXPECT_DOUBLE_EQ(m(1, 2), -7.0);
}

TEST(Matrix, FromRows) {
  auto m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(1, 2), 6);
}

TEST(Matrix, RowMajorLayout) {
  auto m = Matrix::from_rows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m.data()[0], 1);
  EXPECT_DOUBLE_EQ(m.data()[1], 2);
  EXPECT_DOUBLE_EQ(m.data()[m.ld()], 3);
  EXPECT_DOUBLE_EQ(m.data()[m.ld() + 1], 4);
}

TEST(Matrix, StorageIsAlignedAndPadded) {
  for (std::size_t cols : {1u, 2u, 7u, 8u, 9u, 100u}) {
    Matrix m(3, cols);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data()) % kMatrixAlignment,
              0u)
        << "cols=" << cols;
    EXPECT_GE(m.ld(), cols);
    EXPECT_EQ(m.ld() % kLdGranule, 0u) << "cols=" << cols;
    EXPECT_EQ(m.size(), 3 * cols);  // logical size, padding excluded
  }
}

TEST(Matrix, FlatHelpersUseLogicalOrder) {
  Matrix m = indexed_matrix(3, 5);  // ld() > cols once padded
  auto flat = flat_copy(m.view());
  ASSERT_EQ(flat.size(), 15u);
  for (std::size_t t = 0; t < flat.size(); ++t) {
    EXPECT_DOUBLE_EQ(flat[t], m(t / 5, t % 5));
  }
  auto mid = flat_copy(m.view(), 4, 11);
  ASSERT_EQ(mid.size(), 7u);
  for (std::size_t t = 0; t < mid.size(); ++t) {
    EXPECT_DOUBLE_EQ(mid[t], flat[4 + t]);
  }
  std::vector<double> appended;
  flat_append(m.view(), appended);
  EXPECT_EQ(appended, flat);
  Matrix r(3, 5);
  flat_assign(r.view(), 4, mid);
  for (std::size_t t = 4; t < 11; ++t) {
    EXPECT_DOUBLE_EQ(r(t / 5, t % 5), flat[t]);
  }
}

TEST(MatrixView, BlockViewAliasesStorage) {
  Matrix m = indexed_matrix(6, 8);
  auto b = m.block(2, 3, 2, 4);
  EXPECT_EQ(b.rows(), 2u);
  EXPECT_EQ(b.cols(), 4u);
  EXPECT_EQ(b.ld(), 8u);
  EXPECT_DOUBLE_EQ(b(0, 0), m(2, 3));
  b(1, 2) = -1.0;
  EXPECT_DOUBLE_EQ(m(3, 5), -1.0);
}

TEST(MatrixView, NestedBlocks) {
  Matrix m = indexed_matrix(10, 10);
  auto outer = m.block(1, 1, 8, 8);
  auto inner = outer.block(2, 3, 2, 2);
  EXPECT_DOUBLE_EQ(inner(0, 0), m(3, 4));
}

TEST(MatrixView, AssignAndFill) {
  Matrix src = indexed_matrix(3, 3);
  Matrix dst(5, 5);
  dst.block(1, 1, 3, 3).assign(src.view());
  EXPECT_DOUBLE_EQ(dst(2, 2), src(1, 1));
  dst.block(0, 0, 2, 2).fill(9.0);
  EXPECT_DOUBLE_EQ(dst(1, 1), 9.0);
  EXPECT_DOUBLE_EQ(dst(2, 2), src(1, 1));  // untouched by the fill
}

TEST(MatrixView, ToMatrixCopies) {
  Matrix m = indexed_matrix(4, 4);
  Matrix copy = ConstMatrixView(m.block(1, 1, 2, 2)).to_matrix();
  EXPECT_EQ(copy.rows(), 2u);
  EXPECT_DOUBLE_EQ(copy(0, 0), m(1, 1));
  copy(0, 0) = 1234.0;
  EXPECT_NE(m(1, 1), 1234.0);
}

TEST(Kernels, TransposeRoundTrip) {
  Matrix a = random_matrix(5, 9, 3);
  Matrix att = transpose(transpose(a.view()).view());
  EXPECT_EQ(max_abs_diff(a.view(), att.view()), 0.0);
}

class GemmShapes : public ::testing::TestWithParam<
                       std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(GemmShapes, BlockedMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Matrix a = random_matrix(m, k, 11);
  Matrix b = random_matrix(n, k, 12);
  Matrix c1(m, n, 0.5), c2(m, n, 0.5);  // nonzero start: kernels accumulate
  gemm_nt_naive(a.view(), b.view(), c1.view());
  gemm_nt(a.view(), b.view(), c2.view());
  EXPECT_LT(max_abs_diff(c1.view(), c2.view()), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(7, 5, 3),
                      std::make_tuple(64, 64, 64), std::make_tuple(65, 63, 70),
                      std::make_tuple(128, 3, 300), std::make_tuple(3, 128, 9),
                      std::make_tuple(100, 100, 1)));

class SyrkShapes : public ::testing::TestWithParam<
                       std::tuple<std::size_t, std::size_t>> {};

TEST_P(SyrkShapes, BlockedMatchesNaive) {
  const auto [n, k] = GetParam();
  Matrix a = random_matrix(n, k, 21);
  Matrix c1(n, n), c2(n, n);
  syrk_lower_naive(a.view(), c1.view());
  syrk_lower(a.view(), c2.view());
  EXPECT_LT(max_abs_diff_lower(c1.view(), c2.view()), 1e-12);
}

TEST_P(SyrkShapes, UpperTriangleUntouched) {
  const auto [n, k] = GetParam();
  Matrix a = random_matrix(n, k, 22);
  Matrix c(n, n, -3.25);
  syrk_lower(a.view(), c.view());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      EXPECT_DOUBLE_EQ(c(i, j), -3.25) << "(" << i << "," << j << ")";
    }
  }
}

TEST_P(SyrkShapes, MatchesGemmWithSelf) {
  const auto [n, k] = GetParam();
  Matrix a = random_matrix(n, k, 23);
  Matrix cs(n, n), cg(n, n);
  syrk_lower(a.view(), cs.view());
  gemm_nt(a.view(), a.view(), cg.view());
  EXPECT_LT(max_abs_diff_lower(cs.view(), cg.view()), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SyrkShapes,
                         ::testing::Values(std::make_tuple(1, 1),
                                           std::make_tuple(5, 7),
                                           std::make_tuple(64, 16),
                                           std::make_tuple(65, 130),
                                           std::make_tuple(129, 2),
                                           std::make_tuple(2, 200)));

TEST(Kernels, SyrkReferenceIsSymmetric) {
  Matrix a = random_matrix(17, 5, 31);
  Matrix c = syrk_reference(a.view());
  for (std::size_t i = 0; i < 17; ++i) {
    for (std::size_t j = 0; j < 17; ++j) {
      EXPECT_DOUBLE_EQ(c(i, j), c(j, i));
    }
  }
}

TEST(Kernels, SyrkReferenceValues) {
  auto a = Matrix::from_rows({{1, 2}, {3, 4}});
  Matrix c = syrk_reference(a.view());
  EXPECT_DOUBLE_EQ(c(0, 0), 5);
  EXPECT_DOUBLE_EQ(c(1, 0), 11);
  EXPECT_DOUBLE_EQ(c(0, 1), 11);
  EXPECT_DOUBLE_EQ(c(1, 1), 25);
}

TEST(Kernels, Norms) {
  auto m = Matrix::from_rows({{3, 4}});
  EXPECT_DOUBLE_EQ(frobenius_norm(m.view()), 5.0);
  auto z = Matrix(2, 2);
  EXPECT_DOUBLE_EQ(frobenius_norm(z.view()), 0.0);
}

TEST(Kernels, MaxAbsDiff) {
  auto a = Matrix::from_rows({{1, 2}, {3, 4}});
  auto b = Matrix::from_rows({{1, 2.5}, {3, 4}});
  EXPECT_DOUBLE_EQ(max_abs_diff(a.view(), b.view()), 0.5);
}

TEST(Packed, SizeFormula) {
  EXPECT_EQ(PackedLower::packed_size(1), 1u);
  EXPECT_EQ(PackedLower::packed_size(4), 10u);
  EXPECT_EQ(PackedLower(6).size(), 21u);
}

TEST(Packed, RoundTripFull) {
  Matrix a = random_matrix(9, 4, 41);
  Matrix c = syrk_reference(a.view());
  PackedLower p = PackedLower::from_full(c.view());
  Matrix back = p.to_full_symmetric();
  EXPECT_LT(max_abs_diff(c.view(), back.view()), 1e-15);
}

TEST(Packed, ToFullLowerZeroesUpper) {
  Matrix c = syrk_reference(random_matrix(5, 3, 42).view());
  Matrix lower = PackedLower::from_full(c.view()).to_full_lower();
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(lower(i, j), 0.0);
    }
    for (std::size_t j = 0; j <= i; ++j) {
      EXPECT_DOUBLE_EQ(lower(i, j), c(i, j));
    }
  }
}

TEST(Packed, IndexLayoutRowPacked) {
  PackedLower p(4);
  // Element (i, j) lives at i(i+1)/2 + j.
  p(2, 1) = 5.0;
  EXPECT_DOUBLE_EQ(p.data()[2 * 3 / 2 + 1], 5.0);
  p(3, 3) = 7.0;
  EXPECT_DOUBLE_EQ(p.data()[3 * 4 / 2 + 3], 7.0);
}

TEST(Random, IndexedMatrixFormula) {
  Matrix m = indexed_matrix(4, 7);
  EXPECT_DOUBLE_EQ(m(2, 5), 2005.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Random, SeededReproducible) {
  Matrix a = random_matrix(8, 8, 99);
  Matrix b = random_matrix(8, 8, 99);
  EXPECT_EQ(max_abs_diff(a.view(), b.view()), 0.0);
}

}  // namespace
}  // namespace parsyrk
