// Packed micro-kernel engine tests: every engine kernel against its naive
// oracle over adversarial shapes (empty, single row, one lane short of /
// past a micro-tile, non-tile-multiples, strided views), strict-upper
// preservation for the triangular kernels, generic-vs-native dispatch
// agreement, and the arena reuse guarantees the worker pool relies on.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "matrix/arena.hpp"
#include "matrix/kernels.hpp"
#include "matrix/pack.hpp"
#include "matrix/random.hpp"
#include "matrix/ukernel.hpp"
#include "simmpi/worker_pool.hpp"

namespace parsyrk {
namespace {

using kern::kMR;
using kern::kNR;

constexpr double kTol = 1e-11;

// Shapes around every blocking boundary: micro-tile (8), kMC (512) is too
// slow to sweep, but kKC boundaries are covered by the k values.
const std::vector<std::size_t> kEdgeDims = {0, 1, kMR - 1, kMR, kMR + 1,
                                            17, 64, 100};
const std::vector<std::size_t> kEdgeK = {0, 1, kMR - 1, kMR + 1, 40, 257};

/// Sentinel matrix whose strict upper triangle must survive a lower-only
/// kernel untouched.
Matrix upper_sentinel(std::size_t n) {
  Matrix c(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) c(i, j) = 1e100 + double(i * n + j);
  }
  return c;
}

void expect_upper_untouched(const Matrix& c) {
  const std::size_t n = c.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      ASSERT_DOUBLE_EQ(c(i, j), 1e100 + double(i * n + j))
          << "strict upper (" << i << "," << j << ") was written";
    }
  }
}

TEST(PackedGemmNt, MatchesNaiveOnEdgeShapes) {
  for (std::size_t m : kEdgeDims) {
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, kMR - 1, kMR + 1,
                          std::size_t{33}}) {
      for (std::size_t k : kEdgeK) {
        Matrix a = random_matrix(m, k, 1000 + m + n + k);
        Matrix b = random_matrix(n, k, 2000 + m + n + k);
        Matrix got(m, n), want(m, n);
        gemm_nt(a.view(), b.view(), got.view());
        gemm_nt_naive(a.view(), b.view(), want.view());
        ASSERT_LT(max_abs_diff(got.view(), want.view()), kTol)
            << "m=" << m << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(PackedGemmNt, AccumulatesIntoExistingC) {
  Matrix a = random_matrix(20, 13, 7);
  Matrix b = random_matrix(11, 13, 8);
  Matrix got = random_matrix(20, 11, 9);
  Matrix want = got;  // logical copy
  gemm_nt(a.view(), b.view(), got.view());
  gemm_nt_naive(a.view(), b.view(), want.view());
  EXPECT_LT(max_abs_diff(got.view(), want.view()), kTol);
}

TEST(PackedGemmNt, WorksOnStridedBlockViews) {
  // Operand and result views carved out of larger matrices: ld > cols on
  // every operand.
  Matrix big_a = random_matrix(40, 50, 11);
  Matrix big_b = random_matrix(30, 50, 12);
  Matrix big_c(45, 45), big_c_want(45, 45);
  auto a = big_a.view().block(3, 5, 21, 19);
  auto b = big_b.view().block(2, 5, 10, 19);
  gemm_nt(a, b, big_c.block(1, 2, 21, 10));
  gemm_nt_naive(a, b, big_c_want.block(1, 2, 21, 10));
  EXPECT_LT(max_abs_diff(big_c.view(), big_c_want.view()), kTol);
}

TEST(PackedSyrkLower, MatchesNaiveOnEdgeShapes) {
  for (std::size_t n : kEdgeDims) {
    for (std::size_t k : kEdgeK) {
      Matrix a = random_matrix(n, k, 3000 + n + k);
      Matrix got(n, n), want(n, n);
      syrk_lower(a.view(), got.view());
      syrk_lower_naive(a.view(), want.view());
      ASSERT_LT(max_abs_diff_lower(got.view(), want.view()), kTol)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(PackedSyrkLower, PreservesStrictUpperTriangle) {
  for (std::size_t n : {kMR - 1, kMR + 1, std::size_t{65}}) {
    Matrix a = random_matrix(n, 33, 41);
    Matrix c = upper_sentinel(n);
    syrk_lower(a.view(), c.view());
    expect_upper_untouched(c);
  }
}

TEST(PackedSyr2kLower, MatchesNaiveOnEdgeShapes) {
  for (std::size_t n : kEdgeDims) {
    for (std::size_t k : kEdgeK) {
      Matrix a = random_matrix(n, k, 4000 + n + k);
      Matrix b = random_matrix(n, k, 5000 + n + k);
      Matrix got(n, n), want(n, n);
      syr2k_lower(a.view(), b.view(), got.view());
      syr2k_lower_naive(a.view(), b.view(), want.view());
      ASSERT_LT(max_abs_diff_lower(got.view(), want.view()), kTol)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(PackedSyr2kLower, PreservesStrictUpperTriangle) {
  Matrix a = random_matrix(43, 19, 42);
  Matrix b = random_matrix(43, 19, 43);
  Matrix c = upper_sentinel(43);
  syr2k_lower(a.view(), b.view(), c.view());
  expect_upper_untouched(c);
}

TEST(PackedSymmLowerLeft, MatchesNaiveOnEdgeShapes) {
  for (std::size_t n : kEdgeDims) {
    for (std::size_t m : {std::size_t{0}, std::size_t{1}, kNR - 1, kNR + 1,
                          std::size_t{29}}) {
      Matrix s = random_matrix(n, n, 6000 + n + m);
      Matrix b = random_matrix(n, m, 7000 + n + m);
      Matrix got(n, m), want(n, m);
      symm_lower_left(s.view(), b.view(), got.view());
      symm_lower_left_naive(s.view(), b.view(), want.view());
      ASSERT_LT(max_abs_diff(got.view(), want.view()), kTol)
          << "n=" << n << " m=" << m;
    }
  }
}

TEST(PackedSymmLowerLeft, NeverReadsStrictUpperOfS) {
  // Poison the strict upper triangle: the result must be unaffected because
  // pack_rows_symm reflects across the diagonal instead of reading it.
  const std::size_t n = 37, m = 21;
  Matrix s = random_matrix(n, n, 51);
  Matrix poisoned = s;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) poisoned(i, j) = 1e300;
  }
  Matrix b = random_matrix(n, m, 52);
  Matrix got(n, m), want(n, m);
  symm_lower_left(poisoned.view(), b.view(), got.view());
  symm_lower_left_naive(s.view(), b.view(), want.view());
  EXPECT_LT(max_abs_diff(got.view(), want.view()), kTol);
}

TEST(Ukernel, GenericAgreesWithActive) {
  // When native dispatch is live this cross-checks two ISA paths; in a
  // baseline build both sides are the same function and the test is a no-op
  // guard.
  const std::size_t kc = 57;
  std::vector<double> a(kMR * kc), b(kNR * kc);
  Rng rng(99);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  alignas(kMatrixAlignment) double got[kMR * kNR] = {};
  kern::active_ukernel().fn(kc, a.data(), b.data(), got);
  for (std::size_t i = 0; i < kMR; ++i) {
    for (std::size_t j = 0; j < kNR; ++j) {
      double want = 0.0;
      for (std::size_t k = 0; k < kc; ++k) {
        want += a[k * kMR + i] * b[k * kNR + j];
      }
      ASSERT_NEAR(got[i * kNR + j], want, 1e-12) << i << "," << j;
    }
  }
}

TEST(Ukernel, EnvOverrideSelectsGeneric) {
  // The override is resolved once per process, so all this can assert here
  // is the plumbing: the active kernel has a name and a function.
  EXPECT_NE(kern::active_ukernel().fn, nullptr);
  EXPECT_NE(kern::active_ukernel().name, nullptr);
}

TEST(PackBytes, CountsPanelTraffic) {
  kern::reset_pack_bytes();
  Matrix a = random_matrix(64, 64, 13);
  Matrix c(64, 64);
  syrk_lower(a.view(), c.view());
  // One 64-row panel packed once (symmetric reuse): 64*64 doubles.
  EXPECT_EQ(kern::pack_bytes(), 64u * 64u * sizeof(double));
  kern::reset_pack_bytes();
  Matrix b = random_matrix(64, 64, 14);
  syr2k_lower(a.view(), b.view(), c.view());
  // SYR2K packs both operands: twice the SYRK traffic.
  EXPECT_EQ(kern::pack_bytes(), 2u * 64u * 64u * sizeof(double));
}

TEST(KernelArena, WarmRepeatDoesNotReallocate) {
  kern::KernelArena arena;
  double* p1 = arena.buffer(kern::KernelArena::kSlotPackA, 1024);
  const auto grows_after_first = arena.grow_count();
  EXPECT_GE(grows_after_first, 1u);
  // Same-or-smaller requests are served from the existing buffer.
  double* p2 = arena.buffer(kern::KernelArena::kSlotPackA, 1024);
  double* p3 = arena.buffer(kern::KernelArena::kSlotPackA, 100);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(p1, p3);
  EXPECT_EQ(arena.grow_count(), grows_after_first);
  // A bigger request grows once.
  arena.buffer(kern::KernelArena::kSlotPackA, 4096);
  EXPECT_EQ(arena.grow_count(), grows_after_first + 1);
  EXPECT_GE(arena.doubles_reserved(), 4096u);
}

TEST(KernelArena, BuffersAreAligned) {
  kern::KernelArena arena;
  for (int slot : {kern::KernelArena::kSlotPackA,
                   kern::KernelArena::kSlotPackB}) {
    double* p = arena.buffer(slot, 333);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kMatrixAlignment, 0u);
  }
}

TEST(KernelArena, PoolWorkersReuseArenasAcrossWarmJobs) {
  comm::WorkerPool pool;
  Matrix a = random_matrix(96, 96, 77);
  auto job = [&] {
    Matrix c(96, 96);
    syrk_lower(a.view(), c.view());
  };
  auto lease = pool.acquire(2);
  lease.dispatch(0, job);
  lease.dispatch(1, job);
  lease.wait();
  const auto grows_cold = pool.arena_grow_count();
  EXPECT_GE(grows_cold, 2u);  // each worker grew its pack slot once
  EXPECT_GT(pool.arena_doubles_reserved(), 0u);
  for (int round = 0; round < 3; ++round) {
    lease.dispatch(0, job);
    lease.dispatch(1, job);
    lease.wait();
  }
  // Warm same-shape jobs never touch the allocator.
  EXPECT_EQ(pool.arena_grow_count(), grows_cold);
}

}  // namespace
}  // namespace parsyrk
